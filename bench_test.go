// Benchmarks regenerating the paper's evaluation (§5). Each benchmark
// corresponds to a table or figure; custom metrics carry the numbers the
// paper reports (pages/s throughput, mean page latency, hit rates).
// EXPERIMENTS.md records a reference run next to the paper's values.
//
// The latency model is the paper-calibrated one scaled down 50x (see
// internal/latency.PaperScaled); absolute numbers are therefore ~50x the
// paper's on the time axis divided by our smaller dataset, but the shape —
// who wins, by what factor, where the curves bend — is the reproduction
// target.
package cachegenie

import (
	"fmt"
	"os"
	"testing"
	"time"

	"cachegenie/internal/core"
	"cachegenie/internal/invbus"
	"cachegenie/internal/kvcache"
	"cachegenie/internal/latency"
	"cachegenie/internal/orm"
	"cachegenie/internal/social"
	"cachegenie/internal/sqldb"
	"cachegenie/internal/workload"
)

func benchOpts() workload.ExpOptions {
	return workload.ExpOptions{Quick: true, LatencyScale: 50}
}

// shortPoints trims a sweep to its last point under -short: the CI bench
// smoke runs every benchmark once so the harness can't bit-rot, it does not
// redraw every curve. Full sweeps need a plain `go test -bench .`.
func shortPoints[T any](xs []T) []T {
	if testing.Short() && len(xs) > 1 {
		return xs[len(xs)-1:]
	}
	return xs
}

// reportRun executes fn b.N times and reports the mean of the returned
// throughput as pages/s.
func reportThroughput(b *testing.B, fn func() (float64, error)) {
	b.Helper()
	var total float64
	for i := 0; i < b.N; i++ {
		tp, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		total += tp
	}
	b.ReportMetric(total/float64(b.N), "pages/s")
	b.ReportMetric(0, "ns/op") // wall time is not the interesting axis here
}

// ---------- §5.3 microbenchmarks ----------

// BenchmarkMicroDBvsCacheLookup reproduces the §5.3 lookup comparison
// (paper: a DB B+tree lookup takes 10-25x a memcached get).
func BenchmarkMicroDBvsCacheLookup(b *testing.B) {
	model := latency.PaperScaled(50)
	db := sqldb.MustOpen(sqldb.Config{Latency: model, BufferPoolPages: 1024})
	if _, err := db.Exec("CREATE TABLE kv (k INT NOT NULL, v TEXT)"); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec("CREATE INDEX idx_kv_k ON kv (k)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := db.Exec("INSERT INTO kv (k, v) VALUES ($1, $2)",
			sqldb.I64(int64(i)), sqldb.Str(fmt.Sprintf("value-%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	cache := kvcache.WithLatency(kvcache.New(0), model.CacheRoundTrip, latency.RealSleeper{})
	cache.Set("kv:1", []byte("value-1"), 0)

	b.Run("DBLookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query("SELECT v FROM kv WHERE k = $1", sqldb.I64(int64(i%2000))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CacheLookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cache.Get("kv:1")
		}
	})
}

// BenchmarkMicroTriggerOverhead reproduces the §5.3 INSERT ladder (paper:
// 6.3ms plain, 6.5ms no-op trigger, 11.9ms trigger opening a remote cache
// connection).
func BenchmarkMicroTriggerOverhead(b *testing.B) {
	model := latency.PaperScaled(50)
	mkDB := func(b *testing.B) *sqldb.DB {
		db := sqldb.MustOpen(sqldb.Config{Latency: model, BufferPoolPages: 4096})
		if _, err := db.Exec("CREATE TABLE t (v TEXT)"); err != nil {
			b.Fatal(err)
		}
		return db
	}
	insertLoop := func(b *testing.B, db *sqldb.DB) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Exec("INSERT INTO t (v) VALUES ($1)", sqldb.Str("x")); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("PlainInsert", func(b *testing.B) {
		insertLoop(b, mkDB(b))
	})
	b.Run("NoopTrigger", func(b *testing.B) {
		db := mkDB(b)
		if err := db.CreateTrigger(sqldb.Trigger{
			Name: "noop", Table: "t", Op: sqldb.TrigInsert,
			Fn: func(q sqldb.Queryer, ev sqldb.TriggerEvent) error { return nil },
		}); err != nil {
			b.Fatal(err)
		}
		insertLoop(b, db)
	})
	b.Run("TriggerWithCacheConnect", func(b *testing.B) {
		db := mkDB(b)
		cache := kvcache.WithLatency(kvcache.New(0), model.CacheRoundTrip, latency.RealSleeper{})
		sleeper := latency.RealSleeper{}
		if err := db.CreateTrigger(sqldb.Trigger{
			Name: "connect", Table: "t", Op: sqldb.TrigInsert,
			Fn: func(q sqldb.Queryer, ev sqldb.TriggerEvent) error {
				sleeper.Sleep(model.CacheConnect)
				cache.Set("k", []byte("v"), 0)
				return nil
			},
		}); err != nil {
			b.Fatal(err)
		}
		insertLoop(b, db)
	})
}

// ---------- Experiment 1: Fig 2a (throughput) and Fig 2b (latency) ----------

// BenchmarkExp1Throughput sweeps client counts for NoCache / Invalidate /
// Update. Expected shape (Fig 2a): Update > Invalidate > NoCache from ~15
// clients, 2-2.5x at saturation; NoCache plateaus first. The meanlat metric
// is the Fig 2b series.
func BenchmarkExp1Throughput(b *testing.B) {
	opt := benchOpts()
	for _, mode := range shortPoints([]workload.Mode{workload.ModeNoCache, workload.ModeInvalidate, workload.ModeUpdate}) {
		for _, clients := range shortPoints(workload.Exp1Clients(true)) {
			b.Run(fmt.Sprintf("%s/clients=%d", mode, clients), func(b *testing.B) {
				var totalTP float64
				var totalLat time.Duration
				for i := 0; i < b.N; i++ {
					rep, err := workload.RunMode(opt, mode, clients, 20, 2.0)
					if err != nil {
						b.Fatal(err)
					}
					totalTP += rep.Throughput
					totalLat += rep.MeanLatency()
				}
				b.ReportMetric(totalTP/float64(b.N), "pages/s")
				b.ReportMetric(float64(totalLat.Milliseconds())/float64(b.N), "meanlat-ms")
				b.ReportMetric(0, "ns/op")
			})
		}
	}
}

// BenchmarkExp1PageLatency reproduces Table 2: per-page-type mean latency
// at the 15-client operating point for each system.
func BenchmarkExp1PageLatency(b *testing.B) {
	opt := benchOpts()
	for _, mode := range shortPoints([]workload.Mode{workload.ModeNoCache, workload.ModeInvalidate, workload.ModeUpdate}) {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := workload.RunMode(opt, mode, 15, 20, 2.0)
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range social.PageTypes() {
					b.ReportMetric(float64(rep.ByPage[p].Mean.Microseconds())/1000, p.String()+"-ms")
				}
			}
			b.ReportMetric(0, "ns/op")
		})
	}
}

// ---------- Experiment 2: Fig 3a (read/write mix) ----------

// BenchmarkExp2WorkloadMix sweeps the read fraction. Expected shape: at 0%
// reads caching is slightly worse than NoCache (trigger overhead on
// writes); at 100% reads it is many times better; the Update-Invalidate
// gap grows with reads and closes again at 100%.
func BenchmarkExp2WorkloadMix(b *testing.B) {
	opt := benchOpts()
	for _, mode := range shortPoints([]workload.Mode{workload.ModeNoCache, workload.ModeInvalidate, workload.ModeUpdate}) {
		for _, readPct := range shortPoints(workload.Exp2ReadPcts(true)) {
			b.Run(fmt.Sprintf("%s/read=%d", mode, readPct), func(b *testing.B) {
				reportThroughput(b, func() (float64, error) {
					rep, err := workload.RunMode(opt, mode, 15, 100-readPct, 2.0)
					if err != nil {
						return 0, err
					}
					return rep.Throughput, nil
				})
			})
		}
	}
}

// ---------- Experiment 3: Fig 3b (zipf skew) ----------

// BenchmarkExp3ZipfSkew sweeps the user-distribution parameter. Expected
// shape: cached systems improve as the skew flattens (a: 2.0 -> 1.1, ~1.5x
// in the paper) because the disk-bound database sees more repeated work;
// NoCache stays flat (it is CPU-bound on repeated computation either way).
func BenchmarkExp3ZipfSkew(b *testing.B) {
	opt := benchOpts()
	for _, mode := range shortPoints([]workload.Mode{workload.ModeNoCache, workload.ModeInvalidate, workload.ModeUpdate}) {
		for _, a := range shortPoints(workload.Exp3ZipfAs(true)) {
			b.Run(fmt.Sprintf("%s/a=%.1f", mode, a), func(b *testing.B) {
				reportThroughput(b, func() (float64, error) {
					rep, err := workload.RunMode(opt, mode, 15, 20, a)
					if err != nil {
						return 0, err
					}
					return rep.Throughput, nil
				})
			})
		}
	}
}

// ---------- Experiment 4: Fig 3c (cache size) ----------

// BenchmarkExp4CacheSize sweeps cache capacity. Expected shape: Update
// plateaus at a larger cache than Invalidate (it never removes entries, so
// it needs more room: 192MB vs 128MB in the paper, scaled here), and both
// beat NoCache even at the smallest size.
func BenchmarkExp4CacheSize(b *testing.B) {
	opt := benchOpts()
	for _, mode := range shortPoints([]workload.Mode{workload.ModeInvalidate, workload.ModeUpdate}) {
		for _, size := range shortPoints(workload.Exp4CacheSizes(true)) {
			b.Run(fmt.Sprintf("%s/cache=%dKiB", mode, size>>10), func(b *testing.B) {
				var totalTP, totalHit float64
				for i := 0; i < b.N; i++ {
					pts, err := workload.Exp4(opt, []int64{size})
					if err != nil {
						b.Fatal(err)
					}
					for _, p := range pts {
						if p.Mode == mode {
							totalTP += p.Throughput
							totalHit += p.HitRate
						}
					}
				}
				b.ReportMetric(totalTP/float64(b.N), "pages/s")
				b.ReportMetric(totalHit/float64(b.N), "hit-rate")
				b.ReportMetric(0, "ns/op")
			})
		}
	}
}

// BenchmarkExp4Colocated reproduces the §5.4 variant with the cache on the
// database machine (DB buffer pool shrunk by the cache's memory share).
// Expected shape: colocated throughput drops but stays above NoCache.
func BenchmarkExp4Colocated(b *testing.B) {
	opt := benchOpts()
	b.Run("separate-vs-colocated", func(b *testing.B) {
		var sep, colo float64
		for i := 0; i < b.N; i++ {
			res, err := workload.Exp4Colocated(opt)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range res {
				if r.Mode == workload.ModeUpdate {
					sep += r.SeparateThroughput
					colo += r.ColocatedThroughput
				}
			}
		}
		b.ReportMetric(sep/float64(b.N), "separate-pages/s")
		b.ReportMetric(colo/float64(b.N), "colocated-pages/s")
		b.ReportMetric(0, "ns/op")
	})
}

// ---------- Experiment 5: trigger overhead under load ----------

// BenchmarkExp5TriggerOverhead compares the full system against the
// "ideal" system with triggers removed (paper: 22-28% overhead).
func BenchmarkExp5TriggerOverhead(b *testing.B) {
	opt := benchOpts()
	for _, mode := range shortPoints([]workload.Mode{workload.ModeInvalidate, workload.ModeUpdate}) {
		b.Run(mode.String(), func(b *testing.B) {
			var with, ideal float64
			for i := 0; i < b.N; i++ {
				res, err := workload.Exp5(opt)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range res {
					if r.Mode == mode {
						with += r.WithTriggers
						ideal += r.WithoutTriggers
					}
				}
			}
			b.ReportMetric(with/float64(b.N), "with-triggers-pages/s")
			b.ReportMetric(ideal/float64(b.N), "ideal-pages/s")
			if ideal > 0 {
				b.ReportMetric(100*(ideal-with)/ideal, "overhead-pct")
			}
			b.ReportMetric(0, "ns/op")
		})
	}
}

// ---------- Experiment 6: asynchronous invalidation bus ----------

// BenchmarkExp6AsyncInvalidation compares synchronous per-op trigger→cache
// propagation against the asynchronous batched invalidation bus on a
// write-heavy mix with the paper's trigger connection cost in effect.
// Expected shape: async wins on write throughput and p99 write latency —
// the §5.3 connection setup and per-op round trips leave the write path
// and are amortized per batch by the bus.
func BenchmarkExp6AsyncInvalidation(b *testing.B) {
	opt := benchOpts()
	for _, async := range []bool{false, true} {
		b.Run(fmt.Sprintf("async=%v", async), func(b *testing.B) {
			var tp, p99 float64
			for i := 0; i < b.N; i++ {
				st, err := workload.BuildStackForExp6(opt, workload.ModeUpdate, async)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := workload.Run(st, workload.RunConfig{
					Clients: 15, Sessions: 3, PagesPerSession: 8, WritePct: 60,
					ZipfA: 2.0, WarmupSessions: 20, RngSeed: 3,
				})
				if err != nil {
					b.Fatal(err)
				}
				tp += rep.Throughput
				p99 += float64(rep.ByPage[social.PageCreateBM].P99.Microseconds()) / 1000
				if st.Genie != nil {
					st.Genie.Close()
				}
			}
			b.ReportMetric(tp/float64(b.N), "pages/s")
			b.ReportMetric(p99/float64(b.N), "write-p99-ms")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// BenchmarkInvBusPropagation measures the bus directly: b.N invalidations
// against a latency-wrapped cache, sync (one connection charge + one round
// trip per op) vs async (amortized per flush). The ops/s gap is the §5.3
// overhead converted into a tunable.
func BenchmarkInvBusPropagation(b *testing.B) {
	model := latency.PaperScaled(500)
	for _, sync := range []bool{true, false} {
		name := "async"
		if sync {
			name = "sync"
		}
		b.Run(name, func(b *testing.B) {
			cache := kvcache.WithLatency(kvcache.New(0), model.CacheRoundTrip, latency.RealSleeper{})
			bus := invbus.New(invbus.Config{
				Cache: cache, Sync: sync,
				ConnectCost: model.CacheConnect, Sleeper: latency.RealSleeper{},
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bus.Publish(invbus.Op{Kind: invbus.OpDelete, Key: fmt.Sprintf("key-%d", i%512)})
			}
			bus.Close()
			b.StopTimer()
			st := bus.Stats()
			if st.Flushes > 0 {
				b.ReportMetric(float64(st.Enqueued)/float64(st.Flushes), "ops/flush")
			}
		})
	}
}

// ---------- Experiment 7: remote cache tier over real TCP ----------

// BenchmarkExp7RemoteCluster drives the full social workload against real
// cacheproto servers on loopback TCP (4-node consistent-hash ring, pooled
// clients, parallel batch fan-out), sync and async-bus each, with the
// in-process transport as the baseline. Expected shape: remote costs
// throughput everywhere (each cache hop is a real syscall + TCP round
// trip), and the async bus recovers most of the write-path loss — batching
// matters more when round trips are real. The sweep is also written to
// BENCH_exp7.json, which CI uploads as a workflow artifact.
func BenchmarkExp7RemoteCluster(b *testing.B) {
	opt := benchOpts()
	var pts []workload.Exp7Point
	for _, transport := range []workload.CacheTransport{workload.TransportInProcess, workload.TransportRemote} {
		for _, async := range []bool{false, true} {
			b.Run(fmt.Sprintf("%s/async=%v", transport, async), func(b *testing.B) {
				var tp, p99 float64
				var last workload.Exp7Point
				for i := 0; i < b.N; i++ {
					st, err := workload.BuildStackForExp7(opt, workload.ModeUpdate, transport, async)
					if err != nil {
						b.Fatal(err)
					}
					rep, err := workload.Run(st, workload.RunConfig{
						Clients: 15, Sessions: 3, PagesPerSession: 8, WritePct: 60,
						ZipfA: 2.0, WarmupSessions: 20, RngSeed: 3,
					})
					if err != nil {
						st.Close()
						b.Fatal(err)
					}
					tp += rep.Throughput
					p99 += float64(rep.ByPage[social.PageCreateBM].P99.Microseconds()) / 1000
					last = workload.Exp7Point{
						Transport: transport, Async: async, Throughput: rep.Throughput,
						MeanWriteLat: rep.ByPage[social.PageCreateBM].Mean,
						P99WriteLat:  rep.ByPage[social.PageCreateBM].P99,
					}
					if st.Genie != nil {
						last.Bus = st.Genie.InvStats()
					}
					st.Close()
				}
				b.ReportMetric(tp/float64(b.N), "pages/s")
				b.ReportMetric(p99/float64(b.N), "write-p99-ms")
				b.ReportMetric(0, "ns/op")
				pts = append(pts, last)
			})
		}
	}
	if len(pts) == 4 {
		if err := workload.WriteExp7JSON("BENCH_exp7.json", pts); err != nil {
			b.Logf("BENCH_exp7.json not written: %v", err)
		}
	}
}

// ---------- Experiment 8: node failure and live ring membership ----------

// BenchmarkExp8NodeFailure runs the failure drill: a 4-node loopback tier
// loses one node mid-run. Expected shape: hit rate collapses by roughly the
// dead node's 1/N key share; per-op latency against the dead node is
// orders of magnitude lower with the breaker (in-process short-circuit)
// than without (a fresh failed dial per op); removing the node remaps only
// ~1/N of keys; and reviving + rejoining it restores the original
// assignment exactly, recovering hit rate. The timeline is also written to
// BENCH_exp8.json, which CI uploads as a workflow artifact.
func BenchmarkExp8NodeFailure(b *testing.B) {
	opt := benchOpts()
	var last workload.Exp8Result
	var failFast, dialStorm, degradedHit, rejoinedHit, remap float64
	for i := 0; i < b.N; i++ {
		res, err := workload.Exp8(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = res
		failFast += float64(res.FailFastP99.Nanoseconds()) / 1000
		dialStorm += float64(res.DialStormP99.Nanoseconds()) / 1000
		degradedHit += res.Degraded.HitRate
		rejoinedHit += res.Rejoined.HitRate
		remap += res.RemapFraction
	}
	b.ReportMetric(failFast/float64(b.N), "failfast-p99-us")
	b.ReportMetric(dialStorm/float64(b.N), "dialstorm-p99-us")
	b.ReportMetric(degradedHit/float64(b.N), "degraded-hit-rate")
	b.ReportMetric(rejoinedHit/float64(b.N), "rejoined-hit-rate")
	b.ReportMetric(remap/float64(b.N), "remap-fraction")
	b.ReportMetric(0, "ns/op")
	if err := workload.WriteExp8JSON("BENCH_exp8.json", last); err != nil {
		b.Logf("BENCH_exp8.json not written: %v", err)
	}
}

// ---------- Experiment 11: coordinated distributed load ----------

// BenchmarkExp11Coordinated runs the coordinated saturation sweep fully
// in-process: per worker count W a loopback cache tier, a loadctl
// coordinator, and W worker goroutines (real TCP control protocol, real
// cacheproto data path) measure in barrier lockstep and merge their
// latency histograms exact-bucket. Expected shape: aggregate ops/s grows
// with W (and always exceeds the best single worker's rate — the CI
// distributed-smoke job asserts the same on separate OS processes). The
// sweep is written to BENCH_exp11.json with the coordinator registry dump
// alongside, both uploaded as workflow artifacts.
func BenchmarkExp11Coordinated(b *testing.B) {
	opt := benchOpts()
	var last workload.Exp11Result
	var agg1, aggN, best float64
	for i := 0; i < b.N; i++ {
		res, err := workload.Exp11(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = res
		first, final := res.Points[0], res.Points[len(res.Points)-1]
		agg1 += first.AggOpsPerSec
		aggN += final.AggOpsPerSec
		best += final.BestWorkerOpsPerSec
	}
	n := float64(b.N)
	b.ReportMetric(agg1/n, "ops/s-w1")
	b.ReportMetric(aggN/n, "ops/s-max-workers")
	b.ReportMetric(best/n, "best-single-worker-ops/s")
	b.ReportMetric(0, "ns/op")
	if err := workload.WriteExp11JSON("BENCH_exp11.json", last); err != nil {
		b.Logf("BENCH_exp11.json not written: %v", err)
	}
	if len(last.Metrics) > 0 {
		if err := os.WriteFile("BENCH_exp11_metrics.prom", last.Metrics, 0o644); err != nil {
			b.Logf("BENCH_exp11_metrics.prom not written: %v", err)
		}
	}
}

// BenchmarkExp12CrashRecovery runs the in-process crash drill: write-heavy
// load into a durable (WAL group commit) engine, DB.Crash mid-flight with
// open transactions whose trigger effects already reached the cache, then
// recovery. Expected shape: recovery wall clock grows roughly linearly
// with replayed log length; lost/resurrected/post-flush violations are
// exactly zero at every point (the CI crash-drill job asserts the same
// against a kill -9'd geniedb process). Written to BENCH_exp12.json.
func BenchmarkExp12CrashRecovery(b *testing.B) {
	opt := benchOpts()
	var last workload.Exp12Result
	var recMs, violations float64
	for i := 0; i < b.N; i++ {
		res, err := workload.Exp12(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = res
		final := res.Points[len(res.Points)-1]
		recMs += final.RecoveryMs
		for _, p := range res.Points {
			violations += float64(p.LostCommitted + p.ResurrectedUncommitted + p.ViolationsWithFlush)
		}
	}
	n := float64(b.N)
	b.ReportMetric(recMs/n, "recovery-ms-max-point")
	b.ReportMetric(violations/n, "violations")
	b.ReportMetric(0, "ns/op")
	if violations > 0 {
		b.Fatalf("crash drill leaked %v violations across runs", violations)
	}
	if err := workload.WriteExp12JSON("BENCH_exp12.json", last); err != nil {
		b.Logf("BENCH_exp12.json not written: %v", err)
	}
}

// ---------- Experiment 10: replica-aware cluster tier ----------

// BenchmarkExp10ReplicatedFailover reruns the Experiment 8 kill/revive
// timeline at R=1 and R=2 on the 4-node loopback tier. Expected shape: the
// R=1 degraded phase loses the dead node's ~1/N key share (hit ~0.80, the
// exp8 number) while the R=2 one rides through the kill on breaker-aware
// failover reads (hit within a few points of healthy), the rejoin handoff
// warms the revived node, and the closing staleness scan reports zero
// divergent and zero orphaned keys — trigger invalidations demonstrably
// reached every replica. The timeline is also written to BENCH_exp10.json,
// which CI uploads as a workflow artifact.
func BenchmarkExp10ReplicatedFailover(b *testing.B) {
	opt := benchOpts()
	var last workload.Exp10Result
	var hitR1, hitR2, stale float64
	for i := 0; i < b.N; i++ {
		res, err := workload.Exp10(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = res
		if tl, ok := res.Timeline(1); ok {
			hitR1 += tl.Degraded.HitRate
			stale += float64(tl.DivergentKeys + tl.OrphanKeys)
		}
		if tl, ok := res.Timeline(workload.Exp10Replicas); ok {
			hitR2 += tl.Degraded.HitRate
			stale += float64(tl.DivergentKeys + tl.OrphanKeys)
		}
	}
	b.ReportMetric(hitR1/float64(b.N), "degraded-hit-r1")
	b.ReportMetric(hitR2/float64(b.N), "degraded-hit-r2")
	b.ReportMetric(stale/float64(b.N), "stale-keys")
	b.ReportMetric(0, "ns/op")
	if err := workload.WriteExp10JSON("BENCH_exp10.json", last); err != nil {
		b.Logf("BENCH_exp10.json not written: %v", err)
	}
	// The final timeline's /metrics-equivalent dump rides along as its own
	// artifact: the full Prometheus view of the tier (store, server, pool,
	// invalidation bus, cluster series) as it stood at the end of the drill.
	if tl, ok := last.Timeline(workload.Exp10Replicas); ok && len(tl.Metrics) > 0 {
		if err := os.WriteFile("BENCH_exp10_metrics.prom", tl.Metrics, 0o644); err != nil {
			b.Logf("BENCH_exp10_metrics.prom not written: %v", err)
		}
	}
}

// ---------- Experiment 13: hot keys under zipf skew + flash crowd ----------

// BenchmarkExp13HotKeys runs the zipf s=1.1 + flash-crowd workload on the
// 4-node R=2 tier with each hot-key mitigation toggled independently.
// Expected shape: all-off concentrates gets on the hot key's preferred node
// (imbalance well above 1) and pays a read-tail penalty; spreading flattens
// the per-node imbalance toward 1; the L1 near-cache absorbs the hot reads
// before the wire; single-flight collapses the stampede's database loads to
// ~1 per hot key per miss window; all-on improves p999 and imbalance over
// all-off at a fraction of the database loads. The sweep is written to
// BENCH_exp13.json (plus the all-on point's metrics dump), which CI uploads
// as workflow artifacts.
func BenchmarkExp13HotKeys(b *testing.B) {
	opt := benchOpts()
	var last workload.Exp13Result
	var p999Off, p999On, imbOff, imbOn, dbOff, dbOn float64
	for i := 0; i < b.N; i++ {
		res, err := workload.Exp13(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = res
		if p, ok := res.Point("all-off"); ok {
			p999Off += float64(p.ReadP999.Microseconds())
			imbOff += p.Imbalance
			dbOff += float64(p.DBReadLoads)
		}
		if p, ok := res.Point("all-on"); ok {
			p999On += float64(p.ReadP999.Microseconds())
			imbOn += p.Imbalance
			dbOn += float64(p.DBReadLoads)
		}
	}
	n := float64(b.N)
	b.ReportMetric(p999Off/n, "p999us-off")
	b.ReportMetric(p999On/n, "p999us-on")
	b.ReportMetric(imbOff/n, "imbalance-off")
	b.ReportMetric(imbOn/n, "imbalance-on")
	b.ReportMetric(dbOff/n, "db-loads-off")
	b.ReportMetric(dbOn/n, "db-loads-on")
	b.ReportMetric(0, "ns/op")
	if err := workload.WriteExp13JSON("BENCH_exp13.json", last); err != nil {
		b.Logf("BENCH_exp13.json not written: %v", err)
	}
	if p, ok := last.Point("all-on"); ok && len(p.Metrics) > 0 {
		if err := os.WriteFile("BENCH_exp13_metrics.prom", p.Metrics, 0o644); err != nil {
			b.Logf("BENCH_exp13_metrics.prom not written: %v", err)
		}
	}
}

// ---------- Experiment 9: single-node multi-core scaling ----------

// BenchmarkExp9CoreScaling pits the 1-shard (single-mutex, global-LRU)
// store against the lock-striped one at rising client concurrency, on the
// in-process and real-TCP paths. Expected shape on a multi-core runner: the
// baseline flatlines past ~1 core's worth of clients while the sharded
// store keeps climbing (>=2x at 16+ clients); allocs/op stays ~0 for the
// in-process mix thanks to the zero-allocation hot path. The sweep is also
// written to BENCH_exp9.json (with GOMAXPROCS recorded — the curve can only
// separate on a runner that has cores to scale over), which CI uploads as a
// workflow artifact.
func BenchmarkExp9CoreScaling(b *testing.B) {
	opt := benchOpts()
	var last workload.Exp9Result
	var localSpeed, remoteSpeed float64
	for i := 0; i < b.N; i++ {
		res, err := workload.Exp9(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = res
		clients := workload.Exp9Clients(true)
		maxC := clients[len(clients)-1]
		localSpeed += res.Speedup("local", maxC)
		remoteSpeed += res.Speedup("remote", maxC)
	}
	b.ReportMetric(localSpeed/float64(b.N), "local-speedup")
	b.ReportMetric(remoteSpeed/float64(b.N), "remote-speedup")
	b.ReportMetric(float64(last.GOMAXPROCS), "gomaxprocs")
	b.ReportMetric(0, "ns/op")
	if err := workload.WriteExp9JSON("BENCH_exp9.json", last); err != nil {
		b.Logf("BENCH_exp9.json not written: %v", err)
	}
}

// ---------- Ablations (design choices from DESIGN.md) ----------

// BenchmarkAblationTemplateInvalidation contrasts CacheGenie's key-granular
// invalidation with GlobeCBC-style template-wide invalidation (Table 1's
// behavioural row). Expected: CacheGenie's hit rate is strictly higher.
func BenchmarkAblationTemplateInvalidation(b *testing.B) {
	opt := benchOpts()
	var genieHit, tmplHit float64
	for i := 0; i < b.N; i++ {
		res, err := workload.AblationTemplateInvalidation(opt)
		if err != nil {
			b.Fatal(err)
		}
		genieHit += res.GenieHitRate
		tmplHit += res.TemplateHitRate
	}
	b.ReportMetric(genieHit/float64(b.N), "genie-hit-rate")
	b.ReportMetric(tmplHit/float64(b.N), "template-hit-rate")
	b.ReportMetric(0, "ns/op")
}

// BenchmarkAblationTopKReserve measures the paper's §3.2 reserve mechanism:
// more reserve rows absorb more deletes before a full recompute.
func BenchmarkAblationTopKReserve(b *testing.B) {
	for _, reserve := range []int{1, 5, 20} {
		b.Run(fmt.Sprintf("reserve=%d", reserve), func(b *testing.B) {
			var recomputes float64
			for i := 0; i < b.N; i++ {
				n, err := topkChurn(reserve)
				if err != nil {
					b.Fatal(err)
				}
				recomputes += float64(n)
			}
			b.ReportMetric(recomputes/float64(b.N), "recomputes")
		})
	}
}

// topkChurn runs a fixed insert/delete churn against a top-K cached object
// and returns how many full recomputes the triggers needed.
func topkChurn(reserve int) (int64, error) {
	db := sqldb.MustOpen(sqldb.Config{})
	reg := orm.NewRegistry(db)
	reg.MustRegister(&orm.ModelDef{
		Name: "Wall", Table: "wall",
		Fields: []orm.FieldDef{
			{Name: "user_id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "date_posted", Type: sqldb.TypeTime},
		},
		Indexes: [][]string{{"user_id"}},
	})
	if err := reg.CreateTables(); err != nil {
		return 0, err
	}
	genie, err := core.New(core.Config{Registry: reg, DB: db, Cache: kvcache.New(0)})
	if err != nil {
		return 0, err
	}
	if _, err := genie.Cacheable(core.Spec{
		Name: "topk", Class: core.TopKQuery, MainModel: "Wall",
		WhereFields: []string{"user_id"},
		SortField:   "date_posted", SortDesc: true, K: 10, Reserve: reserve,
	}); err != nil {
		return 0, err
	}
	base := time.Unix(1e6, 0)
	for i := 0; i < 100; i++ {
		if _, err := reg.Insert("Wall", orm.Fields{
			"user_id": 1, "date_posted": base.Add(time.Duration(i) * time.Minute),
		}); err != nil {
			return 0, err
		}
	}
	// Warm the cache, then churn: delete the newest repeatedly.
	if _, err := reg.Objects("Wall").Filter("user_id", 1).OrderBy("-date_posted").Limit(10).All(); err != nil {
		return 0, err
	}
	for i := 99; i >= 40; i-- {
		if _, err := reg.Objects("Wall").
			Filter("user_id", 1).
			Filter("date_posted", base.Add(time.Duration(i)*time.Minute)).
			Delete(); err != nil {
			return 0, err
		}
	}
	return genie.Stats().Recomputes, nil
}

// BenchmarkAblationTriggerConnectionReuse measures the paper's proposed
// future-work optimization (§5.3): reusing trigger->cache connections
// removes the dominant trigger cost.
func BenchmarkAblationTriggerConnectionReuse(b *testing.B) {
	opt := benchOpts()
	for _, reuse := range []bool{false, true} {
		b.Run(fmt.Sprintf("reuse=%v", reuse), func(b *testing.B) {
			reportThroughput(b, func() (float64, error) {
				st, err := workload.BuildStackForBench(opt, workload.ModeUpdate, reuse, 1)
				if err != nil {
					return 0, err
				}
				rep, err := workload.Run(st, workload.RunConfig{
					Clients: 15, Sessions: 3, PagesPerSession: 8, WritePct: 40,
					ZipfA: 2.0, WarmupSessions: 20, RngSeed: 3,
				})
				if err != nil {
					return 0, err
				}
				return rep.Throughput, nil
			})
		})
	}
}

// BenchmarkAblationCacheCluster spreads the logical cache over 1 vs 4
// consistent-hash nodes; the single-logical-cache property means hit rates
// should be unchanged.
func BenchmarkAblationCacheCluster(b *testing.B) {
	opt := benchOpts()
	for _, nodes := range []int{1, 4} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var hit float64
			for i := 0; i < b.N; i++ {
				st, err := workload.BuildStackForBench(opt, workload.ModeUpdate, false, nodes)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := workload.Run(st, workload.RunConfig{
					Clients: 8, Sessions: 3, PagesPerSession: 8, WritePct: 20,
					ZipfA: 2.0, WarmupSessions: 10, RngSeed: 4,
				}); err != nil {
					b.Fatal(err)
				}
				gs := st.Genie.Stats()
				if total := gs.Hits + gs.Misses; total > 0 {
					hit += float64(gs.Hits) / float64(total)
				}
			}
			b.ReportMetric(hit/float64(b.N), "hit-rate")
			b.ReportMetric(0, "ns/op")
		})
	}
}
