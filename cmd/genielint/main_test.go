package main_test

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runGenielint executes the real binary (via go run, so the test never
// depends on a stale build) against a fixture module and returns its
// combined output and exit code.
func runGenielint(t *testing.T, dir string) (string, int) {
	t.Helper()
	cmd := exec.Command("go", "run", ".", "-C", dir, "./...")
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	code := cmd.ProcessState.ExitCode()
	if err != nil && code <= 0 {
		t.Fatalf("genielint did not run: %v\n%s", err, buf.String())
	}
	return buf.String(), code
}

// lineOf finds the 1-based line of the first occurrence of marker in the
// fixture source, so the assertions track the fixture instead of
// hard-coding line numbers.
func lineOf(t *testing.T, path, marker string) int {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, ln := range strings.Split(string(src), "\n") {
		if strings.Contains(ln, marker) {
			return i + 1
		}
	}
	t.Fatalf("marker %q not in %s", marker, path)
	return 0
}

// TestGenielintBadModule is the end-to-end gate: over a module with known
// violations the binary must exit 1 and print each diagnostic positioned
// at the offending line with its analyzer tag.
func TestGenielintBadModule(t *testing.T) {
	dir := filepath.Join("testdata", "badmod")
	out, code := runGenielint(t, dir)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\noutput:\n%s", code, out)
	}
	wants := []struct {
		marker   string // source text on the line the diagnostic must point at
		analyzer string
	}{
		{"fmt.Sprintf", "hotpathalloc"},
		{"mu.Lock()", "lockscope"},
	}
	for _, w := range wants {
		line := lineOf(t, filepath.Join(dir, "bad.go"), w.marker)
		pos := fmt.Sprintf("bad.go:%d:", line)
		found := false
		for _, ln := range strings.Split(out, "\n") {
			if strings.Contains(ln, pos) && strings.Contains(ln, "["+w.analyzer+"]") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no [%s] diagnostic at %s\noutput:\n%s", w.analyzer, pos, out)
		}
	}
}

// TestGenielintGoodModule: a clean module exits 0 and prints nothing.
func TestGenielintGoodModule(t *testing.T) {
	out, code := runGenielint(t, filepath.Join("testdata", "goodmod"))
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\noutput:\n%s", code, out)
	}
	if strings.TrimSpace(out) != "" {
		t.Fatalf("clean run produced output:\n%s", out)
	}
}
