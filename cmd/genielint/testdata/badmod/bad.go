// Package bad violates genielint invariants on purpose. The e2e test in
// cmd/genielint asserts the linter reports each violation at its position
// and exits nonzero.
package bad

import (
	"fmt"
	"sync"
)

var mu sync.Mutex

//genie:hotpath
func hot(p []byte) string {
	return fmt.Sprintf("%x", p)
}

func leak() {
	mu.Lock()
}

var _ = hot
var _ = leak
