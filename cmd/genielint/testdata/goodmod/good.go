// Package good keeps every genielint invariant; the e2e test asserts a
// clean run exits zero with no output.
package good

import "sync"

var mu sync.Mutex

//genie:hotpath
func hot(p []byte) int {
	mu.Lock()
	defer mu.Unlock()
	n := 0
	for _, b := range p {
		n += int(b)
	}
	return n
}

var _ = hot
