// Command genielint runs the repository's static-analysis suite
// (internal/lint: goroleak, hotpathalloc, lockscope, netdeadline,
// obsnaming) over the given package patterns, default ./... .
//
// Exit codes: 0 clean, 1 diagnostics found, 2 load/internal error.
// Diagnostics print as file:line:col: [analyzer] message. Suppress a false
// positive in place with //genie:nolint <analyzer> -- <reason>.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cachegenie/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "directory to resolve package patterns in")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
			}
		}
		if len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "genielint: no analyzer matches -only=%s\n", *only)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "genielint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "genielint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "genielint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
