// Command genieload regenerates the paper's evaluation (§5): every figure
// and table is one -experiment target. Results print as aligned text
// series; EXPERIMENTS.md records a reference run against the paper's
// numbers.
//
// Usage:
//
//	genieload -experiment all            # everything (minutes)
//	genieload -experiment exp1           # Fig 2a/2b client sweep
//	genieload -experiment table2         # Table 2 per-page latency
//	genieload -experiment exp2           # Fig 3a read/write mix
//	genieload -experiment exp3           # Fig 3b zipf skew
//	genieload -experiment exp4           # Fig 3c cache size
//	genieload -experiment exp4b          # colocated-cache variant
//	genieload -experiment exp5           # trigger overhead under load
//	genieload -experiment exp6           # sync vs async invalidation bus
//	genieload -experiment exp7           # remote cache tier over real TCP
//	genieload -experiment exp8           # node failure: breaker + live ring membership
//	genieload -experiment exp9           # single-node multi-core scaling (sharded store)
//	genieload -experiment exp10          # R-way replication: failover routing + key handoff
//	genieload -experiment exp11          # coordinated distributed load (in-process sweep)
//	genieload -experiment exp12          # crash drill: WAL recovery + epoch cache flush
//	genieload -experiment exp13          # hot keys: zipf skew + flash crowd vs spreading/L1/single-flight
//	genieload -experiment micro          # §5.3 microbenchmarks
//	genieload -experiment effort         # §5.2 programmer effort
//	genieload -experiment ablation       # template-invalidation baseline
//
// Coordinated distributed load generation (Experiment 11 across real
// machines): one coordinator process and N workers drive an externally
// launched tier (geniecache -nodes N -replicas R) in lockstep —
//
//	genieload -coordinator :9009 -workers 2 -cache-addrs host1:9001,host2:9001
//	genieload -worker -join coordhost:9009        # on each load box, x2
//
// Workers register over a line-based TCP control protocol
// (internal/loadctl), receive the workload spec (clients, durations,
// keyspace slice, seed), run warmup/measure/drain in barrier lockstep, and
// ship their latency histograms back; the coordinator merges them
// exact-bucket into true aggregate p50/p99/p999 and writes BENCH_exp11.json
// plus BENCH_exp11_metrics.prom. Any worker failure — unreachable cache
// node, death mid-run, hung barrier — aborts the whole run and every
// process exits non-zero.
//
// The -async flag routes trigger cache maintenance through the batching
// invalidation bus (internal/invbus) in every experiment, and -batch-window
// tunes its coalescing window; exp6 sweeps sync vs async itself.
//
// The -transport flag selects how every stack reaches its cache: inprocess
// (default; the injected-latency simulation) or remote (real cacheproto
// servers on loopback TCP behind pooled clients). exp7 sweeps both itself
// and writes its series to BENCH_exp7.json. With -transport remote,
// -cache-addrs points at externally launched geniecache nodes
// (cmd/geniecache -nodes N prints a ready-made list) instead of
// self-launched loopback ones.
//
// exp8 is the failure drill: it launches its own loopback tier, kills one
// node mid-run (matching geniecache's -kill-node/-kill-after flags for
// external tiers), measures the circuit breaker's fail-fast behaviour
// against the pre-resilience dial storm, drops the dead node from the ring,
// revives and rejoins it, and writes the timeline to BENCH_exp8.json.
//
// exp9 is the single-node scaling sweep: the 1-shard (single-mutex) store
// against the lock-striped one at rising client concurrency, in-process and
// over real TCP, written to BENCH_exp9.json. The -shards flag overrides the
// stripe count for every OTHER experiment's cache nodes (0 = auto).
//
// exp10 is the replication drill: the exp8 kill/revive timeline at R=1 vs
// R=2 — with a second replica, breaker-aware failover reads carry the dead
// node's key share and the hit rate rides through the kill — plus an
// invalidation-staleness scan proving triggers reached every replica,
// written to BENCH_exp10.json. The -replicas flag sets the ring's
// replication factor for every OTHER experiment's cache tier (0/1 =
// single-owner routing; exp10 sweeps R itself).
//
// exp13 is the hot-key drill: a zipf s=1.1 user popularity plus a flash
// crowd stampeding one page, run with each mitigation — hot-read spreading
// over the replica set, the client-side L1 near-cache, single-flight miss
// coalescing — toggled independently, written to BENCH_exp13.json. The
// -zipf-s and -flash-crowd flags apply the same skew knobs to every OTHER
// experiment's workload (0 = each experiment's own default).
//
// Observability: -metrics-addr serves Prometheus /metrics, a /metrics.json
// snapshot, a breaker-aware /healthz, and /debug/pprof while experiments
// run — every stack an experiment builds registers its stores, servers,
// pools, ring, and Genie into the one registry. -tick prints a live
// per-interval cache-tier line (ops/s, p50/p99 from differenced mergeable
// histograms, hit rate, breaker states, plus hot-key mitigation activity:
// spread reads, L1 hits, coalesced misses) without touching the
// experiment's own measurements.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"cachegenie/internal/cacheproto"
	"cachegenie/internal/loadctl"
	"cachegenie/internal/obs"
	"cachegenie/internal/workload"
)

// startTicker prints a live cache-tier line every interval from the metrics
// registry the experiments register their stacks into: per-interval pool ops/s
// and p50/p99 (histogram snapshots differenced with Sub, merged across nodes
// with Add), per-interval Genie hit rate, and one breaker-state letter per
// pool (C closed, O open, H half-open). Returns a stop func that joins the
// goroutine.
func startTicker(reg *obs.Registry, interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		var prevOps obs.HistSnapshot
		var prevHits, prevMisses int64
		var prevSpread, prevL1, prevShared int64
		last := time.Now()
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				elapsed := now.Sub(last)
				last = now
				var cur obs.HistSnapshot
				reg.VisitHistograms(func(name, _ string, h *obs.Histogram) {
					if name == cacheproto.PoolOpLatencyName {
						cur.Add(h.Snapshot())
					}
				})
				iv := cur.Sub(prevOps)
				prevOps = cur
				snap := reg.Snapshot()
				hits := snap.SumCounters("cachegenie_genie_hits_total")
				misses := snap.SumCounters("cachegenie_genie_misses_total")
				dh, dm := hits-prevHits, misses-prevMisses
				prevHits, prevMisses = hits, misses
				hit := "   -"
				if dh+dm > 0 {
					hit = fmt.Sprintf("%.2f", float64(dh)/float64(dh+dm))
				}
				breakers := ""
				for _, s := range snap.GaugeValues(cacheproto.PoolBreakerGaugeName) {
					breakers += string("COH?"[min(int(s), 3)])
				}
				if breakers == "" {
					breakers = "-"
				}
				// Hot-key mitigation activity, per interval: reads rotated
				// across replicas, reads absorbed by the L1 near-cache, and
				// misses that piggybacked on a coalesced single-flight load.
				// All zero when the mitigations are off.
				spread := snap.SumCounters("cachegenie_hotkey_spread_reads_total")
				l1hits := snap.SumCounters("cachegenie_l1_hits_total")
				shared := snap.SumCounters("cachegenie_singleflight_shared_total")
				dspread, dl1, dshared := spread-prevSpread, l1hits-prevL1, shared-prevShared
				prevSpread, prevL1, prevShared = spread, l1hits, shared
				fmt.Printf("tick %9.0f cache-ops/s  p50=%-10v p99=%-10v hit=%s  breakers=%s  spread=%d l1hit=%d coalesced=%d\n",
					float64(iv.Count)/elapsed.Seconds(),
					time.Duration(iv.Quantile(0.50)).Round(time.Microsecond),
					time.Duration(iv.Quantile(0.99)).Round(time.Microsecond),
					hit, breakers, dspread, dl1, dshared)
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// runCoordinatedRun drives one coordinated distributed run: wait for the
// worker complement, phase them through the barriers, merge, and write the
// BENCH_exp11 artifacts. Any failure exits non-zero.
func runCoordinatedRun(listenAddr string, workers int, spec loadctl.Spec, joinTO, barrierTO time.Duration) {
	if len(spec.CacheAddrs) == 0 {
		log.Fatal("genieload: -coordinator requires -cache-addrs (the tier the workers will drive, e.g. from geniecache -nodes N)")
	}
	coord := loadctl.NewCoordinator(loadctl.CoordinatorConfig{
		JoinTimeout:    joinTO,
		BarrierTimeout: barrierTO,
		Logf:           log.Printf,
	})
	addr, err := coord.Listen(listenAddr)
	if err != nil {
		log.Fatalf("genieload: %v", err)
	}
	defer coord.Close()
	fmt.Printf("coordinator on %s: waiting for %d workers (join with: genieload -worker -join %s)\n",
		addr, workers, addr)
	m, err := coord.Run(spec, workers)
	if err != nil {
		log.Fatalf("genieload: coordinated run failed: %v", err)
	}

	reg := obs.NewRegistry()
	workload.Exp11RegisterMerged(reg, m)
	p := workload.Exp11PointFromMerged(m)
	res := workload.Exp11Result{
		Nodes:    len(spec.CacheAddrs),
		Replicas: spec.Replicas,
		Points:   []workload.Exp11Point{p},
	}
	if err := workload.WriteExp11JSON("BENCH_exp11.json", res); err != nil {
		log.Fatalf("genieload: %v", err)
	}
	prom, err := os.Create("BENCH_exp11_metrics.prom")
	if err != nil {
		log.Fatalf("genieload: %v", err)
	}
	if err := reg.WritePrometheus(prom); err != nil {
		log.Fatalf("genieload: %v", err)
	}
	_ = prom.Close()
	fmt.Printf("merged %d workers: %.0f ops/s aggregate (best single worker %.0f)  p50=%.0fµs p99=%.0fµs p999=%.0fµs hit=%.3f\n",
		p.Workers, p.AggOpsPerSec, p.BestWorkerOpsPerSec, p.P50us, p.P99us, p.P999us, p.HitRate)
	fmt.Println("written to BENCH_exp11.json and BENCH_exp11_metrics.prom")
}

// runCoordinatedWorker joins a coordinator and generates load under its
// barriers until the run completes or aborts. Exits non-zero on any
// failure, including an abort caused by a sibling worker.
func runCoordinatedWorker(join, id string, addrOverride []string, joinTO time.Duration) {
	if join == "" {
		log.Fatal("genieload: -worker requires -join (the coordinator's control address)")
	}
	if id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	res, err := loadctl.RunWorker(join, loadctl.WorkerConfig{
		ID:          id,
		JoinTimeout: joinTO,
		Logf:        log.Printf,
	}, &workload.TierLoad{Logf: log.Printf, AddrOverride: addrOverride})
	if err != nil {
		log.Fatalf("genieload: worker %s: %v", id, err)
	}
	fmt.Printf("worker %s: %d ops (%.0f ops/s), %d errors\n", id, res.Ops, res.OpsPerSec(), res.Errors)
}

func main() {
	experiment := flag.String("experiment", "all", "experiment to run (all, exp1, table2, exp2, exp3, exp4, exp4b, exp5, exp6, exp7, exp8, exp9, exp10, exp11, exp12, exp13, micro, effort, ablation)")
	scale := flag.Int("scale", 50, "latency scale divisor (1 = paper-absolute latencies, slower)")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
	async := flag.Bool("async", false, "route trigger cache maintenance through the async invalidation bus")
	batchWindow := flag.Duration("batch-window", 0, "invalidation bus coalescing window (0 = bus default)")
	transportFlag := flag.String("transport", "inprocess", "cache transport: inprocess or remote (real TCP cacheproto nodes)")
	cacheAddrs := flag.String("cache-addrs", "", "comma-separated geniecache addresses for -transport remote (empty = launch loopback nodes)")
	shards := flag.Int("shards", 0, "cache-node lock-stripe count (0 = auto: next pow2 >= 4x GOMAXPROCS; 1 = unsharded baseline)")
	replicas := flag.Int("replicas", 0, "cache ring replication factor R (0/1 = single-owner routing; clamped to the node count)")
	zipfS := flag.Float64("zipf-s", 0, "direct rank-frequency zipf exponent for user popularity (0 = paper's duality-form sampler; exp13 sweeps s=1.1 itself)")
	flashCrowd := flag.Int("flash-crowd", 0, "percentage of page loads redirected to one viral page (0 = off; exp13 sets its own)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics, /metrics.json, /healthz and /debug/pprof on this address while experiments run (empty = disabled)")
	tick := flag.Duration("tick", 0, "print a live cache-tier line (ops/s, p50/p99, hit rate, breaker states) at this interval (0 = off)")
	// Coordinated distributed load generation (see the doc comment).
	coordAddr := flag.String("coordinator", "", "run as coordinator: listen for workers on this address and drive one coordinated run")
	workerCount := flag.Int("workers", 2, "coordinator mode: worker processes to wait for and drive")
	workerMode := flag.Bool("worker", false, "run as a load worker: join a coordinator and generate load under its barriers")
	joinAddr := flag.String("join", "", "worker mode: coordinator control address to join")
	workerID := flag.String("worker-id", "", "worker mode: name in coordinator logs and merged results (default host-pid)")
	clients := flag.Int("clients", 8, "coordinator mode: concurrent client goroutines per worker")
	duration := flag.Duration("duration", 10*time.Second, "coordinator mode: measured window length")
	warmup := flag.Duration("warmup", 2*time.Second, "coordinator mode: warmup window (keyspace seeding + pool fill) before measuring")
	keys := flag.Int("keys", workload.Exp11Keys, "coordinator mode: global keyspace size, partitioned across workers for writes")
	valueBytes := flag.Int("value-bytes", workload.Exp11ValueBytes, "coordinator mode: value size")
	writePct := flag.Int("write-pct", workload.Exp11WritePct, "coordinator mode: percentage of ops that are writes (to the worker's own key slice)")
	seed := flag.Int64("seed", 42, "coordinator mode: workload RNG seed (workers derive distinct streams from it)")
	joinTimeout := flag.Duration("join-timeout", loadctl.DefaultJoinTimeout, "coordinator/worker mode: how long registration may take")
	barrierTimeout := flag.Duration("barrier-timeout", loadctl.DefaultBarrierTimeout, "coordinator mode: slack past each phase before a missing worker aborts the run")
	// External crash drill (exp12) against a real geniedb; see the doc comment.
	dbAddr := flag.String("db-addr", "", "exp12 phases: geniedb dbproto address")
	exp12Phase := flag.String("exp12-phase", "", "external crash drill phase: load (drive geniedb until it is killed) or verify (audit the restarted geniedb + cache tier)")
	exp12State := flag.String("exp12-state", "exp12_state.json", "exp12 phases: journal file handed from load to verify across the crash")
	flag.Parse()

	transport, err := workload.ParseTransport(*transportFlag)
	if err != nil {
		log.Fatal(err)
	}
	var addrs []string
	if *cacheAddrs != "" {
		for _, a := range strings.Split(*cacheAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
	}
	if *exp12Phase != "" {
		if *dbAddr == "" {
			log.Fatal("genieload: -exp12-phase requires -db-addr (the geniedb under drill)")
		}
		switch *exp12Phase {
		case "load":
			if err := workload.Exp12Load(*dbAddr, *exp12State, 8, *duration, log.Printf); err != nil {
				log.Fatalf("genieload: %v", err)
			}
			fmt.Printf("exp12 load journal written to %s\n", *exp12State)
		case "verify":
			res, err := workload.Exp12Verify(*dbAddr, addrs, *exp12State, log.Printf)
			if err != nil {
				log.Fatalf("genieload: %v", err)
			}
			if err := workload.WriteExp12JSON("BENCH_exp12.json", res); err != nil {
				log.Fatalf("genieload: %v", err)
			}
			fmt.Println("audit written to BENCH_exp12.json")
		default:
			log.Fatalf("genieload: unknown -exp12-phase %q (want load or verify)", *exp12Phase)
		}
		return
	}
	if *workerMode {
		runCoordinatedWorker(*joinAddr, *workerID, addrs, *joinTimeout)
		return
	}
	if *coordAddr != "" {
		runCoordinatedRun(*coordAddr, *workerCount, loadctl.Spec{
			Experiment: "exp11",
			Clients:    *clients,
			WarmupMs:   warmup.Milliseconds(),
			MeasureMs:  duration.Milliseconds(),
			Keys:       *keys,
			ValueBytes: *valueBytes,
			WritePct:   *writePct,
			Seed:       *seed,
			CacheAddrs: addrs,
			Replicas:   *replicas,
		}, *joinTimeout, *barrierTimeout)
		return
	}
	// A bad -cache-addrs list used to surface as a silent zero-hit run;
	// fail fast with per-node dial errors before any experiment starts.
	if len(addrs) > 0 {
		if err := workload.PreflightCacheAddrs(addrs, 5*time.Second); err != nil {
			log.Fatalf("genieload: cache tier preflight failed:\n%v", err)
		}
	}
	opt := workload.ExpOptions{
		LatencyScale: *scale, Quick: *quick, Out: os.Stdout,
		Async: *async, BatchWindow: *batchWindow,
		Transport: transport, CacheAddrs: addrs, Shards: *shards,
		Replicas: *replicas,
		ZipfS:    *zipfS, FlashCrowdPct: *flashCrowd,
	}
	if *metricsAddr != "" || *tick > 0 {
		reg := obs.NewRegistry()
		opt.Metrics = reg
		if *metricsAddr != "" {
			ms, err := obs.Serve(*metricsAddr, reg,
				obs.BreakerHealth(reg, cacheproto.PoolBreakerGaugeName))
			if err != nil {
				log.Fatalf("genieload: %v", err)
			}
			defer ms.Close()
			fmt.Printf("metrics on http://%s/metrics (pprof under /debug/pprof/)\n", ms.Addr)
		}
		if *tick > 0 {
			defer startTicker(reg, *tick)()
		}
	}
	run := func(name string, fn func() error) {
		fmt.Printf("\n== %s ==\n", name)
		start := time.Now()
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("-- %s done in %v\n", name, time.Since(start).Round(time.Millisecond))
	}

	all := *experiment == "all"
	matched := all

	if all || *experiment == "micro" {
		matched = true
		run("§5.3 microbenchmarks", func() error {
			ml, err := workload.MicroLookup(opt)
			if err != nil {
				return err
			}
			fmt.Printf("db B+tree lookup: %v   cache lookup: %v   ratio: %.1fx (paper: 10-25x)\n",
				ml.DBLookup.Round(time.Microsecond), ml.CacheLookup.Round(time.Microsecond), ml.Ratio)
			mt, err := workload.MicroTrigger(opt)
			if err != nil {
				return err
			}
			fmt.Printf("plain INSERT: %v   no-op trigger: %v (+%.0f%%)   trigger+connect: %v (+%.0f%%)   per cache op: %v\n",
				mt.PlainInsert.Round(time.Microsecond), mt.NoopTrigger.Round(time.Microsecond), mt.NoopOverheadPct,
				mt.ConnectTrigger.Round(time.Microsecond), mt.TotalOverheadPct,
				mt.PerCacheOp.Round(time.Microsecond))
			fmt.Println("(paper: 6.3ms plain, 6.5ms no-op, 11.9ms with connect, 0.2ms per op; overheads 3%-400%)")
			return nil
		})
	}
	if all || *experiment == "effort" {
		matched = true
		run("§5.2 programmer effort", func() error {
			rep, err := workload.Effort()
			if err != nil {
				return err
			}
			fmt.Printf("cached objects declared : %d   (paper: 14)\n", rep.CachedObjects)
			fmt.Printf("app lines changed       : %d cacheable(...) calls (paper: ~20 lines)\n", rep.AppLinesChanged)
			fmt.Printf("triggers generated      : %d   (paper: 48)\n", rep.Triggers)
			fmt.Printf("trigger source lines    : %d   (paper: ~1720)\n", rep.GeneratedLines)
			return nil
		})
	}
	if all || *experiment == "exp1" {
		matched = true
		run("Experiment 1 (Fig 2a/2b): throughput & latency vs clients", func() error {
			_, err := workload.Exp1(opt, nil)
			return err
		})
	}
	if all || *experiment == "table2" {
		matched = true
		run("Table 2: per-page-type latency at 15 clients", func() error {
			_, err := workload.Exp1PageTable(opt)
			return err
		})
	}
	if all || *experiment == "exp2" {
		matched = true
		run("Experiment 2 (Fig 3a): read/write mix", func() error {
			_, err := workload.Exp2(opt, nil)
			return err
		})
	}
	if all || *experiment == "exp3" {
		matched = true
		run("Experiment 3 (Fig 3b): zipf skew", func() error {
			_, err := workload.Exp3(opt, nil)
			return err
		})
	}
	if all || *experiment == "exp4" {
		matched = true
		run("Experiment 4 (Fig 3c): cache size", func() error {
			_, err := workload.Exp4(opt, nil)
			return err
		})
	}
	if all || *experiment == "exp4b" {
		matched = true
		run("Experiment 4 variant: cache colocated with the database", func() error {
			_, err := workload.Exp4Colocated(opt)
			return err
		})
	}
	if all || *experiment == "exp5" {
		matched = true
		run("Experiment 5: trigger overhead under load", func() error {
			_, err := workload.Exp5(opt)
			return err
		})
	}
	if all || *experiment == "exp6" {
		matched = true
		run("Experiment 6: sync vs async trigger propagation (invalidation bus)", func() error {
			_, err := workload.Exp6(opt)
			return err
		})
	}
	if all || *experiment == "exp7" {
		matched = true
		run("Experiment 7: remote cache tier (real mop/TCP nodes, pooled clients)", func() error {
			pts, err := workload.Exp7(opt)
			if err != nil {
				return err
			}
			if err := workload.WriteExp7JSON("BENCH_exp7.json", pts); err != nil {
				return err
			}
			fmt.Println("series written to BENCH_exp7.json")
			return nil
		})
	}
	if all || *experiment == "exp8" {
		matched = true
		run("Experiment 8: node failure (circuit breaker, live ring membership)", func() error {
			res, err := workload.Exp8(opt)
			if err != nil {
				return err
			}
			if err := workload.WriteExp8JSON("BENCH_exp8.json", res); err != nil {
				return err
			}
			fmt.Println("timeline written to BENCH_exp8.json")
			return nil
		})
	}
	if all || *experiment == "exp9" {
		matched = true
		run("Experiment 9: single-node multi-core scaling (lock-striped store)", func() error {
			res, err := workload.Exp9(opt)
			if err != nil {
				return err
			}
			if err := workload.WriteExp9JSON("BENCH_exp9.json", res); err != nil {
				return err
			}
			fmt.Println("sweep written to BENCH_exp9.json")
			return nil
		})
	}
	if all || *experiment == "exp10" {
		matched = true
		run("Experiment 10: replica-aware cluster tier (R-way replication, failover, key handoff)", func() error {
			res, err := workload.Exp10(opt)
			if err != nil {
				return err
			}
			if err := workload.WriteExp10JSON("BENCH_exp10.json", res); err != nil {
				return err
			}
			fmt.Println("timelines written to BENCH_exp10.json")
			return nil
		})
	}
	if all || *experiment == "exp11" {
		matched = true
		run("Experiment 11: coordinated distributed load (coordinator + workers over loopback)", func() error {
			res, err := workload.Exp11(opt)
			if err != nil {
				return err
			}
			if err := workload.WriteExp11JSON("BENCH_exp11.json", res); err != nil {
				return err
			}
			fmt.Println("sweep written to BENCH_exp11.json")
			return nil
		})
	}
	if all || *experiment == "exp12" {
		matched = true
		run("Experiment 12: crash drill (WAL recovery + recovery-epoch cache flush)", func() error {
			res, err := workload.Exp12(opt)
			if err != nil {
				return err
			}
			if err := workload.WriteExp12JSON("BENCH_exp12.json", res); err != nil {
				return err
			}
			fmt.Println("drill written to BENCH_exp12.json")
			return nil
		})
	}
	if all || *experiment == "exp13" {
		matched = true
		run("Experiment 13: hot keys (zipf skew + flash crowd; spreading, L1, single-flight)", func() error {
			res, err := workload.Exp13(opt)
			if err != nil {
				return err
			}
			if err := workload.WriteExp13JSON("BENCH_exp13.json", res); err != nil {
				return err
			}
			fmt.Println("sweep written to BENCH_exp13.json")
			return nil
		})
	}
	if all || *experiment == "ablation" {
		matched = true
		run("Ablation: template-based invalidation baseline", func() error {
			_, err := workload.AblationTemplateInvalidation(opt)
			return err
		})
	}
	if !matched {
		log.Fatalf("unknown experiment %q", *experiment)
	}
}
