// Command geniedb runs the database engine as a standalone TCP server,
// playing the role of the paper's PostgreSQL machine. Schemas are created
// by clients over the wire.
//
// With -data-dir the engine is durable: committed transactions are group-
// committed to a segmented WAL, a restart replays to the last complete
// commit record, and an unclean shutdown bumps the recovery epoch that
// clients read over dbproto (and react to by flushing their cache tier).
// On SIGTERM/SIGINT the server drains connections, then the WAL writer
// fsyncs its tail and a snapshot absorbs the log, so a clean restart
// replays zero records.
//
// Usage:
//
//	geniedb -addr :15432 -pool-pages 4096 -disk-width 2
//	geniedb -addr :15432 -data-dir /var/lib/geniedb
//	geniedb -addr :15432 -data-dir d -drill-schema -cache-addrs :15501,:15502
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cachegenie/internal/cacheproto"
	"cachegenie/internal/cluster"
	"cachegenie/internal/dbproto"
	"cachegenie/internal/kvcache"
	"cachegenie/internal/latency"
	"cachegenie/internal/obs"
	"cachegenie/internal/sqldb"
	"cachegenie/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:15432", "listen address")
	poolPages := flag.Int("pool-pages", 4096, "buffer pool capacity in 8KiB pages")
	diskWidth := flag.Int("disk-width", 2, "concurrent simulated-disk requests")
	latencyScale := flag.Int("latency-scale", 0, "enable paper-calibrated latency model divided by this factor (0 = off)")
	lockTimeout := flag.Duration("lock-timeout", 5*time.Second, "lock wait timeout")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics, /metrics.json, /healthz and /debug/pprof on this address (empty = disabled)")
	dataDir := flag.String("data-dir", "", "durable data directory: WAL group commit + snapshot, crash recovery on start (empty = memory-only)")
	walSegBytes := flag.Int64("wal-segment-bytes", 0, "WAL segment rotation threshold (0 = default 64MiB)")
	walGroupMax := flag.Int("wal-group-max", 0, "max transactions coalesced per WAL fsync (0 = default)")
	walNoSync := flag.Bool("wal-nosync", false, "skip WAL fsyncs (crash-unsafe; for measuring fsync cost)")
	ioTimeout := flag.Duration("io-timeout", 0, "per-request dbproto I/O budget once a request starts arriving (0 = server default 30s)")
	drillSchema := flag.Bool("drill-schema", false, "install the exp12 crash-drill tables and cache-maintenance triggers (needs -cache-addrs)")
	cacheAddrs := flag.String("cache-addrs", "", "comma-separated geniecache addresses the drill triggers maintain")
	crashAfter := flag.Duration("crash-after", 0, "self-SIGKILL this long after start (crash-drill utility; 0 = off)")
	flag.Parse()

	var model latency.Model
	if *latencyScale > 0 {
		model = latency.PaperScaled(*latencyScale)
	}
	db, err := sqldb.Open(sqldb.Config{
		BufferPoolPages: *poolPages,
		DiskWidth:       *diskWidth,
		Latency:         model,
		LockTimeout:     *lockTimeout,
		DataDir:         *dataDir,
		WALSegmentBytes: *walSegBytes,
		WALGroupMax:     *walGroupMax,
		WALNoSync:       *walNoSync,
	})
	if err != nil {
		log.Fatalf("geniedb: open: %v", err)
	}
	if *dataDir != "" {
		rec := db.Recovery()
		fmt.Printf("recovered %s: epoch %d, snapshot %d tables/%d rows, replayed %d txns (%d records, %d uncommitted discarded, torn=%v) in %v\n",
			*dataDir, rec.Epoch, rec.SnapshotTables, rec.SnapshotRows,
			rec.ReplayedTxns, rec.ReplayedRecords, rec.UncommittedTxns, rec.TornTail,
			time.Duration(rec.DurationNanos).Round(time.Microsecond))
	}

	if *drillSchema {
		tier, err := drillCache(*cacheAddrs)
		if err != nil {
			log.Fatalf("geniedb: drill schema: %v", err)
		}
		if err := workload.InstallDrillSchema(db, tier); err != nil {
			log.Fatalf("geniedb: drill schema: %v", err)
		}
		fmt.Printf("drill schema installed: %d tables with cache triggers\n", workload.DrillTables)
	}

	srv := dbproto.NewServer(db)
	if *ioTimeout > 0 {
		srv.IOTimeout = *ioTimeout
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("geniedb: %v", err)
	}
	fmt.Printf("geniedb listening on %s (pool %d pages)\n", bound, *poolPages)

	if *crashAfter > 0 {
		// Self-inflicted SIGKILL stand-in for drills that cannot arrange an
		// external kill: exit without any draining or fsync.
		time.AfterFunc(*crashAfter, func() { os.Exit(137) })
	}

	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		view := func(f func(sqldb.Stats) int64) func() int64 {
			return func() int64 { return f(db.Stats()) }
		}
		reg.CounterFunc("cachegenie_db_selects_total", "", "SELECT statements executed.", view(func(s sqldb.Stats) int64 { return s.Selects }))
		reg.CounterFunc("cachegenie_db_inserts_total", "", "INSERT statements executed.", view(func(s sqldb.Stats) int64 { return s.Inserts }))
		reg.CounterFunc("cachegenie_db_updates_total", "", "UPDATE statements executed.", view(func(s sqldb.Stats) int64 { return s.Updates }))
		reg.CounterFunc("cachegenie_db_deletes_total", "", "DELETE statements executed.", view(func(s sqldb.Stats) int64 { return s.Deletes }))
		reg.CounterFunc("cachegenie_db_triggers_fired_total", "", "Invalidation triggers fired.", view(func(s sqldb.Stats) int64 { return s.TriggersFired }))
		reg.CounterFunc("cachegenie_db_txns_committed_total", "", "Transactions committed.", view(func(s sqldb.Stats) int64 { return s.TxnsCommitted }))
		reg.CounterFunc("cachegenie_db_txns_aborted_total", "", "Transactions aborted.", view(func(s sqldb.Stats) int64 { return s.TxnsAborted }))
		db.RegisterMetrics(reg)
		ms, err := obs.Serve(*metricsAddr, reg, nil)
		if err != nil {
			log.Fatalf("geniedb: %v", err)
		}
		defer ms.Close()
		fmt.Printf("metrics on http://%s/metrics (pprof under /debug/pprof/)\n", ms.Addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := db.Stats()
	fmt.Printf("shutting down: %d selects, %d inserts, %d updates, %d deletes, %d triggers fired\n",
		st.Selects, st.Inserts, st.Updates, st.Deletes, st.TriggersFired)
	if err := srv.Close(); err != nil {
		log.Fatalf("geniedb: close: %v", err)
	}
	// Connections are drained; now drain the group-commit writer, fsync the
	// WAL tail and absorb it into a snapshot so the next start replays
	// nothing and keeps the same epoch.
	if err := db.Close(); err != nil {
		log.Fatalf("geniedb: db close: %v", err)
	}
}

// drillCache assembles the cache tier the drill triggers maintain: a
// consistent-hash ring over the given cacheproto nodes, or an in-process
// store when no addresses are given (single-process experiments).
func drillCache(addrList string) (kvcache.Cache, error) {
	var addrs []string
	for _, a := range strings.Split(addrList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return kvcache.New(0), nil
	}
	if err := workload.PreflightCacheAddrs(addrs, 5*time.Second); err != nil {
		return nil, err
	}
	nodes := make([]kvcache.Cache, len(addrs))
	for i, a := range addrs {
		nodes[i] = cacheproto.NewPool(a, 4)
	}
	return cluster.NewRingIDs(addrs, nodes)
}
