// Command geniedb runs the database engine as a standalone TCP server,
// playing the role of the paper's PostgreSQL machine. Schemas are created
// by clients over the wire.
//
// Usage:
//
//	geniedb -addr :15432 -pool-pages 4096 -disk-width 2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cachegenie/internal/dbproto"
	"cachegenie/internal/latency"
	"cachegenie/internal/obs"
	"cachegenie/internal/sqldb"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:15432", "listen address")
	poolPages := flag.Int("pool-pages", 4096, "buffer pool capacity in 8KiB pages")
	diskWidth := flag.Int("disk-width", 2, "concurrent simulated-disk requests")
	latencyScale := flag.Int("latency-scale", 0, "enable paper-calibrated latency model divided by this factor (0 = off)")
	lockTimeout := flag.Duration("lock-timeout", 5*time.Second, "lock wait timeout")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics, /metrics.json, /healthz and /debug/pprof on this address (empty = disabled)")
	flag.Parse()

	var model latency.Model
	if *latencyScale > 0 {
		model = latency.PaperScaled(*latencyScale)
	}
	db := sqldb.Open(sqldb.Config{
		BufferPoolPages: *poolPages,
		DiskWidth:       *diskWidth,
		Latency:         model,
		LockTimeout:     *lockTimeout,
	})
	srv := dbproto.NewServer(db)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("geniedb: %v", err)
	}
	fmt.Printf("geniedb listening on %s (pool %d pages)\n", bound, *poolPages)

	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		view := func(f func(sqldb.Stats) int64) func() int64 {
			return func() int64 { return f(db.Stats()) }
		}
		reg.CounterFunc("cachegenie_db_selects_total", "", "SELECT statements executed.", view(func(s sqldb.Stats) int64 { return s.Selects }))
		reg.CounterFunc("cachegenie_db_inserts_total", "", "INSERT statements executed.", view(func(s sqldb.Stats) int64 { return s.Inserts }))
		reg.CounterFunc("cachegenie_db_updates_total", "", "UPDATE statements executed.", view(func(s sqldb.Stats) int64 { return s.Updates }))
		reg.CounterFunc("cachegenie_db_deletes_total", "", "DELETE statements executed.", view(func(s sqldb.Stats) int64 { return s.Deletes }))
		reg.CounterFunc("cachegenie_db_triggers_fired_total", "", "Invalidation triggers fired.", view(func(s sqldb.Stats) int64 { return s.TriggersFired }))
		reg.CounterFunc("cachegenie_db_txns_committed_total", "", "Transactions committed.", view(func(s sqldb.Stats) int64 { return s.TxnsCommitted }))
		reg.CounterFunc("cachegenie_db_txns_aborted_total", "", "Transactions aborted.", view(func(s sqldb.Stats) int64 { return s.TxnsAborted }))
		ms, err := obs.Serve(*metricsAddr, reg, nil)
		if err != nil {
			log.Fatalf("geniedb: %v", err)
		}
		defer ms.Close()
		fmt.Printf("metrics on http://%s/metrics (pprof under /debug/pprof/)\n", ms.Addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := db.Stats()
	fmt.Printf("shutting down: %d selects, %d inserts, %d updates, %d deletes, %d triggers fired\n",
		st.Selects, st.Inserts, st.Updates, st.Deletes, st.TriggersFired)
	if err := srv.Close(); err != nil {
		log.Fatalf("geniedb: close: %v", err)
	}
}
