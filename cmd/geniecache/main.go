// Command geniecache runs the cache server: an in-memory LRU key-value
// store speaking a memcached-style text protocol over TCP. It plays the
// role of the paper's memcached 1.4.5 machine.
//
// Usage:
//
//	geniecache -addr :11311 -capacity 536870912
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"cachegenie/internal/cacheproto"
	"cachegenie/internal/kvcache"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11311", "listen address")
	capacity := flag.Int64("capacity", 512<<20, "cache capacity in bytes (0 = unbounded)")
	flag.Parse()

	store := kvcache.New(*capacity)
	srv := cacheproto.NewServer(store)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("geniecache: %v", err)
	}
	fmt.Printf("geniecache listening on %s (capacity %d bytes)\n", bound, *capacity)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := store.Stats()
	fmt.Printf("shutting down: %d items, %d bytes, hit rate %.2f\n",
		st.Items, st.BytesUsed, st.HitRate())
	if err := srv.Close(); err != nil {
		log.Fatalf("geniecache: close: %v", err)
	}
}
