// Command geniecache runs the cache tier: in-memory LRU key-value stores
// speaking a memcached-style text protocol (plus the pipelined mop batch
// extension) over TCP. It plays the role of the paper's memcached 1.4.5
// machine; with -nodes N it launches a whole consistent-hash-ready tier in
// one process, one server per node.
//
// Usage:
//
//	geniecache -addr :11311 -capacity 536870912
//	geniecache -addr 127.0.0.1:11311 -nodes 4   # ports 11311..11314
//
// With -nodes > 1 the configured capacity is split evenly across nodes and
// consecutive ports are claimed starting at the configured one (port 0
// lets the kernel pick every port). The launched addresses print one per
// line, followed by a comma-joined list ready for
// `genieload -transport remote -cache-addrs ...`. Replication is client-
// side ring routing, so -replicas only annotates that printed command with
// the factor the tier is meant to run at (R <= -nodes keys survive a node
// loss).
//
// Failure drills: -kill-node N -kill-after D kills node N (listener and all
// connections torn down, exactly a crashed process from the client side)
// D after startup; -revive-after D brings it back cold on the same address
// D after the kill. Point genieload at the tier to watch breakers trip and
// recover:
//
//	geniecache -addr 127.0.0.1:11311 -nodes 4 -kill-node 1 -kill-after 10s -revive-after 15s
//
// Observability: -metrics-addr serves Prometheus /metrics (per-node op
// latency histograms, store counters, connection gauges under node="addr"
// labels), a /metrics.json snapshot, /healthz, and /debug/pprof for the
// whole tier. A drill-revived node's fresh server rebinds its series in
// place.
//
// On SIGINT/SIGTERM the servers shut down gracefully: listeners close, open
// connections are torn down, handler goroutines are joined, and per-node
// stats print before exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"cachegenie/internal/cacheproto"
	"cachegenie/internal/kvcache"
	"cachegenie/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11311", "listen address of the first node")
	capacity := flag.Int64("capacity", 512<<20, "total cache capacity in bytes, split across nodes (0 = unbounded)")
	nodes := flag.Int("nodes", 1, "number of cache nodes to launch on consecutive ports")
	shards := flag.Int("shards", 0, "lock-stripe count per node (0 = auto: next pow2 >= 4x GOMAXPROCS; 1 = single-mutex baseline)")
	replicas := flag.Int("replicas", 0, "intended ring replication factor for clients of this tier; echoed into the printed genieload command (replication is client-side routing — the servers are unaffected)")
	killNode := flag.Int("kill-node", -1, "node index to kill for a failure drill (-1 = none)")
	killAfter := flag.Duration("kill-after", 10*time.Second, "how long after startup to kill -kill-node")
	reviveAfter := flag.Duration("revive-after", 0, "how long after the kill to revive the node cold on the same address (0 = stay dead)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics, /metrics.json, /healthz and /debug/pprof on this address (empty = disabled)")
	flag.Parse()

	if *nodes < 1 {
		log.Fatalf("geniecache: -nodes must be >= 1, got %d", *nodes)
	}
	if *killNode >= *nodes {
		log.Fatalf("geniecache: -kill-node %d out of range for %d nodes", *killNode, *nodes)
	}
	host, portStr, err := net.SplitHostPort(*addr)
	if err != nil {
		log.Fatalf("geniecache: bad -addr %q: %v", *addr, err)
	}
	basePort, err := strconv.Atoi(portStr)
	if err != nil {
		log.Fatalf("geniecache: bad port in -addr %q: %v", *addr, err)
	}
	perNode := *capacity
	if *nodes > 1 && perNode > 0 {
		perNode = *capacity / int64(*nodes)
	}

	stores := make([]*kvcache.Store, *nodes)
	servers := make([]*cacheproto.Server, *nodes)
	bounds := make([]string, *nodes)
	for i := range servers {
		port := basePort
		if basePort != 0 {
			port = basePort + i
		}
		stores[i] = kvcache.New(perNode, kvcache.WithShards(*shards))
		servers[i] = cacheproto.NewServer(stores[i])
		bound, err := servers[i].Listen(net.JoinHostPort(host, strconv.Itoa(port)))
		if err != nil {
			// Roll back the nodes already listening before bailing.
			for j := 0; j < i; j++ {
				_ = servers[j].Close()
			}
			log.Fatalf("geniecache: node %d: %v", i, err)
		}
		bounds[i] = bound
		fmt.Printf("geniecache node %d listening on %s (capacity %d bytes)\n", i, bound, perNode)
	}
	hint := fmt.Sprintf("-cache-addrs %s", strings.Join(bounds, ","))
	if *replicas > 1 {
		hint += fmt.Sprintf(" -replicas %d", *replicas)
	}
	fmt.Printf("cache tier ready: %s\n", hint)

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		for i := range servers {
			stores[i].RegisterMetrics(reg, bounds[i])
			servers[i].Metrics().Register(reg, bounds[i])
		}
		ms, err := obs.Serve(*metricsAddr, reg, nil)
		if err != nil {
			log.Fatalf("geniecache: %v", err)
		}
		defer ms.Close()
		fmt.Printf("metrics on http://%s/metrics (pprof under /debug/pprof/)\n", ms.Addr)
	}

	// srvMu guards servers[i] against the failure-drill goroutine swapping a
	// revived server in while shutdown walks the slice.
	var srvMu sync.Mutex
	if *killNode >= 0 {
		i := *killNode
		//genie:nolint goroleak -- the drill timeline is deliberately process-lifetime; main blocks on signals and exits through os.Exit
		go func() {
			time.Sleep(*killAfter)
			srvMu.Lock()
			err := servers[i].Close()
			srvMu.Unlock()
			if err != nil {
				log.Printf("geniecache: drill kill node %d: %v", i, err)
				return
			}
			fmt.Printf("drill: node %d (%s) killed\n", i, bounds[i])
			if *reviveAfter <= 0 {
				return
			}
			time.Sleep(*reviveAfter)
			srv, err := cacheproto.RestartServer(stores[i], bounds[i])
			if err != nil {
				log.Printf("geniecache: drill revive node %d: %v", i, err)
				return
			}
			srvMu.Lock()
			servers[i] = srv
			srvMu.Unlock()
			// Rebind the node's series to the fresh server's instruments.
			srv.Metrics().Register(reg, bounds[i])
			fmt.Printf("drill: node %d (%s) revived cold\n", i, bounds[i])
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down...")
	failed := false
	srvMu.Lock()
	defer srvMu.Unlock()
	for i, srv := range servers {
		if err := srv.Close(); err != nil {
			log.Printf("geniecache: node %d close: %v", i, err)
			failed = true
		}
		st := stores[i].Stats()
		fmt.Printf("node %d (%s): %d items, %d bytes, hit rate %.2f\n",
			i, bounds[i], st.Items, st.BytesUsed, st.HitRate())
	}
	if failed {
		os.Exit(1)
	}
}
