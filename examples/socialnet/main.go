// Socialnet: the paper's evaluation application end to end — the Pinax-like
// social app with its 14 cached objects, run under a session workload, with
// a side-by-side NoCache / Invalidate / Update comparison.
package main

import (
	"fmt"
	"log"

	"cachegenie/internal/social"
	"cachegenie/internal/workload"
)

func main() {
	seed := social.SeedConfig{
		Users: 150, UniqueBookmarks: 50, MaxBookmarksPer: 5,
		MaxFriendsPer: 5, MaxInvitesPer: 3, MaxWallPosts: 8,
	}
	fmt.Println("mode        pages/s   hit-rate  db-selects  trigger-updates")
	for _, mode := range []workload.Mode{workload.ModeNoCache, workload.ModeInvalidate, workload.ModeUpdate} {
		stack, err := workload.BuildStack(workload.StackConfig{
			Mode: mode, Seed: seed, RngSeed: 1, LatencyScale: 100,
			BufferPoolPages: 128, DiskWidth: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := workload.Run(stack, workload.RunConfig{
			Clients: 10, Sessions: 4, PagesPerSession: 10, WritePct: 20,
			ZipfA: 2.0, WarmupSessions: 20, RngSeed: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		hitRate := 0.0
		trigUpdates := int64(0)
		if stack.Genie != nil {
			gs := stack.Genie.Stats()
			if total := gs.Hits + gs.Misses; total > 0 {
				hitRate = float64(gs.Hits) / float64(total)
			}
			trigUpdates = gs.TriggerUpdates
		}
		fmt.Printf("%-10s %8.1f   %7.2f  %10d  %15d\n",
			mode, rep.Throughput, hitRate, stack.DB.Stats().Selects, trigUpdates)
	}
	fmt.Println("\nper-page latency detail (Update mode, fresh run):")
	stack, err := workload.BuildStack(workload.StackConfig{
		Mode: workload.ModeUpdate, Seed: seed, RngSeed: 1, LatencyScale: 100,
		BufferPoolPages: 128, DiskWidth: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := workload.Run(stack, workload.RunConfig{
		Clients: 10, Sessions: 4, PagesPerSession: 10, WritePct: 20,
		ZipfA: 2.0, WarmupSessions: 20, RngSeed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range social.PageTypes() {
		st := rep.ByPage[p]
		fmt.Printf("  %-10s n=%-4d mean=%-12v p95=%v\n", p, st.Count, st.Mean, st.P95)
	}
}
