// Topkfeed: the paper's running example (§3.2) — a wall of posts cached as
// a TopKQuery. Shows incremental in-place updates on insert, reserve-backed
// deletes, and the recompute fallback when the reserve runs out.
package main

import (
	"fmt"
	"log"
	"time"

	"cachegenie"
)

func main() {
	db, err := cachegenie.OpenDB(cachegenie.DBConfig{})
	if err != nil {
		log.Fatal(err)
	}
	reg := cachegenie.NewRegistry(db)
	reg.MustRegister(&cachegenie.ModelDef{
		Name:  "Wall",
		Table: "wall",
		Fields: []cachegenie.FieldDef{
			{Name: "user_id", Type: cachegenie.TypeInt, NotNull: true},
			{Name: "sender_id", Type: cachegenie.TypeInt},
			{Name: "content", Type: cachegenie.TypeText},
			{Name: "date_posted", Type: cachegenie.TypeTime},
		},
		Indexes: [][]string{{"user_id"}, {"user_id", "date_posted"}},
	})
	if err := reg.CreateTables(); err != nil {
		log.Fatal(err)
	}
	genie, err := cachegenie.New(cachegenie.Config{
		Registry: reg, DB: db, Cache: cachegenie.NewCache(0),
	})
	if err != nil {
		log.Fatal(err)
	}
	// The paper's cached-object declaration: latest 20 posts on a wall,
	// with a small reserve for absorbing deletes.
	if _, err := genie.Cacheable(cachegenie.Spec{
		Name:        "latest_wall_posts",
		Class:       cachegenie.TopKQuery,
		MainModel:   "Wall",
		WhereFields: []string{"user_id"},
		SortField:   "date_posted",
		SortDesc:    true,
		K:           5, // small K so the demo output stays readable
		Reserve:     2,
	}); err != nil {
		log.Fatal(err)
	}

	base := time.Date(2011, 12, 1, 12, 0, 0, 0, time.UTC)
	post := func(i int, content string) {
		if _, err := reg.Insert("Wall", cachegenie.Fields{
			"user_id": 42, "sender_id": i, "content": content,
			"date_posted": base.Add(time.Duration(i) * time.Minute),
		}); err != nil {
			log.Fatal(err)
		}
	}
	show := func(tag string) {
		posts, err := reg.Objects("Wall").Filter("user_id", 42).
			OrderBy("-date_posted").Limit(5).All()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", tag)
		for _, p := range posts {
			fmt.Printf("   %s  %s\n", p.Time("date_posted").Format("15:04"), p.Str("content"))
		}
		gs := genie.Stats()
		fmt.Printf("   [hits=%d misses=%d trigger-updates=%d recomputes=%d]\n",
			gs.Hits, gs.Misses, gs.TriggerUpdates, gs.Recomputes)
	}

	for i := 0; i < 10; i++ {
		post(i, fmt.Sprintf("post #%d", i))
	}
	show("initial wall (first read populates cache):")

	post(60, "breaking news!") // newest post: trigger inserts it at the head
	show("after a new post (served from cache, updated in place):")

	// Delete the top three posts: the 2-post reserve absorbs two deletes,
	// then the trigger recomputes the whole list from the database.
	for _, content := range []string{"breaking news!", "post #9", "post #8"} {
		if _, err := reg.Objects("Wall").Filter("content", content).Delete(); err != nil {
			log.Fatal(err)
		}
	}
	show("after three deletes (reserve exhausted -> recompute):")
}
