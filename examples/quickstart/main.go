// Quickstart: declare one cached object and watch CacheGenie keep it
// consistent through writes — no cache-management code in the application.
package main

import (
	"fmt"
	"log"

	"cachegenie"
)

func main() {
	// 1. A database and an ORM registry over it.
	db, err := cachegenie.OpenDB(cachegenie.DBConfig{})
	if err != nil {
		log.Fatal(err)
	}
	reg := cachegenie.NewRegistry(db)
	reg.MustRegister(&cachegenie.ModelDef{
		Name:  "Profile",
		Table: "profiles",
		Fields: []cachegenie.FieldDef{
			{Name: "user_id", Type: cachegenie.TypeInt, NotNull: true},
			{Name: "bio", Type: cachegenie.TypeText},
		},
		Indexes: [][]string{{"user_id"}},
	})
	if err := reg.CreateTables(); err != nil {
		log.Fatal(err)
	}

	// 2. CacheGenie wired between the ORM and a cache.
	cache := cachegenie.NewCache(64 << 20)
	genie, err := cachegenie.New(cachegenie.Config{Registry: reg, DB: db, Cache: cache})
	if err != nil {
		log.Fatal(err)
	}

	// 3. One declaration — this is the entire caching code.
	if _, err := genie.Cacheable(cachegenie.Spec{
		Name:        "user_profile",
		Class:       cachegenie.FeatureQuery,
		MainModel:   "Profile",
		WhereFields: []string{"user_id"},
		Strategy:    cachegenie.UpdateInPlace,
	}); err != nil {
		log.Fatal(err)
	}

	// 4. Application code — identical to the uncached version.
	if _, err := reg.Insert("Profile", cachegenie.Fields{"user_id": 42, "bio": "hello world"}); err != nil {
		log.Fatal(err)
	}

	read := func(tag string) {
		p, err := reg.Objects("Profile").Filter("user_id", 42).Get()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s bio=%q\n", tag, p.Str("bio"))
	}
	read("first read (miss):") // populates the cache from the database
	read("second read (hit):") // served from the cache

	// A write goes to the database; the generated trigger updates the
	// cached entry in place.
	if _, err := reg.Objects("Profile").Filter("user_id", 42).
		Update(cachegenie.Fields{"bio": "updated in place"}); err != nil {
		log.Fatal(err)
	}
	read("read after write:") // still served from the cache, never stale

	gs := genie.Stats()
	ds := db.Stats()
	fmt.Printf("\ncache hits=%d misses=%d trigger-updates=%d | db selects=%d\n",
		gs.Hits, gs.Misses, gs.TriggerUpdates, ds.Selects)
}
