// Txconsistency: the paper's §3.3 full-serializability extension in action.
// The transactional cache tracks per-key readers and writers, blocks
// conflicting transactions (two-phase locking), aborts deadlock victims by
// timeout, and discards aborted writes so readers fall back to the database.
package main

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"cachegenie/internal/kvcache"
	"cachegenie/internal/txcache"
)

func main() {
	store := txcache.New(kvcache.New(0), 100*time.Millisecond)

	// Seed a balance.
	boot := store.Begin()
	if err := boot.Set("balance", []byte("1000"), 0); err != nil {
		panic(err)
	}
	_ = boot.Commit()

	// 1. Writers block readers until commit.
	w := store.Begin()
	_ = w.Set("balance", []byte("900"), 0)
	done := make(chan string, 1)
	go func() {
		r := store.Begin()
		v, _, err := r.Get("balance")
		if err != nil {
			done <- "reader error: " + err.Error()
			return
		}
		_ = r.Commit()
		done <- "reader saw " + string(v)
	}()
	time.Sleep(30 * time.Millisecond)
	fmt.Println("reader is blocked while the writer is uncommitted...")
	_ = w.Commit()
	fmt.Println(<-done, "(only after commit)")

	// 2. Aborted writes vanish: the next reader misses and would go to the
	// database for fresh data.
	a := store.Begin()
	_ = a.Set("balance", []byte("0"), 0)
	_ = a.Abort()
	check := store.Begin()
	_, ok, _ := check.Get("balance")
	_ = check.Commit()
	fmt.Printf("after abort, key present in cache: %v (reads fall through to the DB)\n", ok)

	// Re-seed for the counter race.
	boot2 := store.Begin()
	_ = boot2.Set("balance", []byte("0"), 0)
	_ = boot2.Commit()

	// 3. Serializable read-modify-write under contention: concurrent
	// increments with deadlock-abort-retry never lose updates. Deadlock
	// victims back off with jitter so contending transactions do not retry
	// in lockstep.
	const goroutines, perG = 4, 25
	var wg sync.WaitGroup
	var deadlocks int64
	var mu sync.Mutex
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				for attempt := 0; ; attempt++ {
					tx := store.Begin()
					v, _, err := tx.Get("balance")
					if err != nil {
						_ = tx.Abort()
						time.Sleep(time.Duration(rng.Intn(2000*(attempt+1))) * time.Microsecond)
						continue
					}
					n, _ := strconv.Atoi(string(v))
					if err := tx.Set("balance", []byte(strconv.Itoa(n+1)), 0); err != nil {
						_ = tx.Abort()
						if errors.Is(err, txcache.ErrDeadlock) {
							mu.Lock()
							deadlocks++
							mu.Unlock()
						}
						time.Sleep(time.Duration(rng.Intn(2000*(attempt+1))) * time.Microsecond)
						continue
					}
					if err := tx.Commit(); err == nil {
						break
					}
				}
			}
		}(g)
	}
	wg.Wait()
	final := store.Begin()
	v, _, _ := final.Get("balance")
	_ = final.Commit()
	fmt.Printf("%d goroutines x %d increments -> balance = %s (want %d), deadlock aborts retried: %d\n",
		goroutines, perG, v, goroutines*perG, deadlocks)
}
