package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// HealthFunc reports process health for /healthz: ok decides 200 vs 503,
// detail is the response body either way (one line per finding works well).
type HealthFunc func() (ok bool, detail string)

// MetricsServer is a running metrics/pprof/health HTTP endpoint.
type MetricsServer struct {
	Addr string // bound address (resolves ":0" to the kernel's pick)
	srv  *http.Server
}

// Serve binds addr and serves, in the background:
//
//	/metrics       Prometheus text exposition format
//	/metrics.json  JSON snapshot (counters, gauges, histogram summaries)
//	/healthz       200 "ok ..." or 503 per health (nil health = always ok)
//	/debug/pprof/  the standard pprof index, profiles, and traces
//
// The pprof handlers are registered on this mux explicitly, not on
// http.DefaultServeMux, so the profiling surface exists only where a
// -metrics-addr was asked for.
func Serve(addr string, reg *Registry, health HealthFunc) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		ok, detail := true, "ok"
		if health != nil {
			ok, detail = health()
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintln(w, detail)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ms := &MetricsServer{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second},
	}
	go func() { _ = ms.srv.Serve(ln) }()
	return ms, nil
}

// Close stops the endpoint and its listener.
func (m *MetricsServer) Close() error {
	if m == nil || m.srv == nil {
		return nil
	}
	return m.srv.Close()
}

// BreakerHealth builds a HealthFunc over a breaker-state gauge: healthy
// while every series under gaugeName reads 0 (BreakerClosed), degraded
// (503) with a count otherwise. The convention across this repo is
// cacheproto pools registering their state under "cachegenie_pool_breaker_state".
func BreakerHealth(reg *Registry, gaugeName string) HealthFunc {
	return func() (bool, string) {
		states := reg.Snapshot().GaugeValues(gaugeName)
		open := 0
		for _, s := range states {
			if s != 0 {
				open++
			}
		}
		if open == 0 {
			return true, fmt.Sprintf("ok (%d breakers closed)", len(states))
		}
		return false, fmt.Sprintf("degraded: %d of %d breakers not closed", open, len(states))
	}
}
