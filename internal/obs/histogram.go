// Package obs is the process-wide observability substrate: allocation-free
// atomic counters and gauges, fixed-size log-bucketed latency histograms
// with lock-free Observe and exact-bucket Merge, a metrics registry that
// renders Prometheus text format and JSON snapshots, and an HTTP server
// exposing /metrics, /metrics.json, /debug/pprof/*, and /healthz.
//
// The paper's entire argument is quantitative — hit rates and round-trip
// latencies — so measurement is a subsystem, not per-experiment scaffolding.
// Every tier registers here: the kvcache store, the cacheproto server and
// client pool, the invalidation bus, and the cluster ring. Two constraints
// shape the design. First, instrumentation sits on the protocol hot path,
// which is a measured zero-allocation property, so Observe and counter
// updates are single atomic ops on preallocated fixed-size state. Second,
// distributed load generation needs to combine per-worker latency
// distributions into true aggregate quantiles, which sorting raw samples
// cannot do across processes — histograms with exact-bucket Merge can.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Bucket layout: values 0..15 land in singleton buckets 0..15; above that,
// each power-of-two octave [2^e, 2^(e+1)) splits into histSubCount linear
// sub-buckets. Relative bucket width is at most 1/histSubCount (6.25%), so
// any quantile estimate taken from a bucket midpoint is within ±3.2% of any
// sample in that bucket — comfortably inside the "one bucket, ~10%" error
// contract — while the whole int64 range fits in NumBuckets fixed slots
// (7.6 KiB of counters per histogram, no resizing, no locks).
const (
	histSubBits  = 4
	histSubCount = 1 << histSubBits

	// NumBuckets covers every non-negative int64: 16 singleton buckets plus
	// 60 octaves x 16 sub-buckets.
	NumBuckets = (63-histSubBits)*histSubCount + histSubCount
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < histSubCount {
		return int(u)
	}
	e := bits.Len64(u) - 1 // position of the highest set bit, >= histSubBits
	sub := (u >> (uint(e) - histSubBits)) & (histSubCount - 1)
	return (e-histSubBits+1)*histSubCount + int(sub)
}

// BucketBounds returns bucket i's value range [lo, hi). The final bucket's
// upper bound saturates at MaxInt64.
func BucketBounds(i int) (lo, hi int64) {
	if i < histSubCount {
		return int64(i), int64(i) + 1
	}
	o := uint(i / histSubCount) // octave number, >= 1
	s := int64(i % histSubCount)
	lo = (histSubCount + s) << (o - 1)
	width := int64(1) << (o - 1)
	if lo > math.MaxInt64-width {
		return lo, math.MaxInt64
	}
	return lo, lo + width
}

// bucketMid returns the midpoint of bucket i, the quantile estimate for
// ranks that land in it.
func bucketMid(i int) int64 {
	lo, hi := BucketBounds(i)
	return lo + (hi-lo)/2
}

// Histogram is a fixed-size log-bucketed histogram of non-negative int64
// values (latencies in nanoseconds, batch sizes, ...). Observe is lock-free
// and allocation-free; Merge adds another histogram bucket-by-bucket with no
// resolution loss, which makes merging associative and commutative — the
// primitive a load-generation coordinator needs to combine per-worker
// distributions into true aggregate quantiles. The zero value is ready to
// use; all methods are safe on a nil receiver (no-ops / zero results), so
// optionally-instrumented call sites need no branches.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

// NewHistogram allocates a Histogram (the zero value also works; this
// exists for call sites that want a pointer in one expression).
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one value. Negative values clamp to zero. Lock-free,
// allocation-free: two atomic adds, one atomic increment, and a CAS loop
// that only spins while the running maximum is actually moving.
//
//genie:hotpath
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveSince records the nanoseconds elapsed since start.
//
//genie:hotpath
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(start)))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observed value (exact, not bucketed).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Merge adds o's buckets into h, exactly — no re-bucketing, no resolution
// loss. Merging is associative and commutative over the bucket counts, sum,
// count, and max. o may be observed concurrently; the merge then reflects
// some valid interleaving.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	var count uint64
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
			count += n
		}
	}
	h.count.Add(count)
	h.sum.Add(o.sum.Load())
	for {
		cur := h.max.Load()
		om := o.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}

// Quantile estimates the q-th quantile (q in [0, 1]) as the midpoint of the
// bucket holding that rank. The estimate is always within one bucket of the
// exact order statistic, i.e. within ~±3.2% relative error. Returns 0 for
// an empty histogram. Not for hot paths (it scans all buckets).
func (h *Histogram) Quantile(q float64) int64 {
	return h.Snapshot().Quantile(q)
}

// Mean returns the exact arithmetic mean of observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(c)
}

// Reset zeroes the histogram. Not atomic with respect to concurrent
// Observes — intended for sequential reuse between measurement phases.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// HistSnapshot is a point-in-time copy of a histogram, the unit of interval
// arithmetic: Sub yields a per-interval distribution from two cumulative
// snapshots, Add merges snapshots from several histograms, Quantile reads
// either. Taken bucket-by-bucket without a global lock, so under concurrent
// Observe it reflects a near-point-in-time state (each bucket individually
// exact, Count recomputed from the copied buckets so quantile ranks are
// internally consistent).
type HistSnapshot struct {
	Buckets []uint64
	Count   uint64
	Sum     int64
	Max     int64
}

// Snapshot copies the histogram's state. A nil histogram snapshots as empty.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Buckets: make([]uint64, NumBuckets)}
	if h == nil {
		return s
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// Sub returns the interval distribution s minus prev (an older snapshot of
// the same histogram). Max carries s's cumulative value — a maximum is not
// interval-decomposable.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	out := HistSnapshot{Buckets: make([]uint64, NumBuckets), Max: s.Max}
	for i := range out.Buckets {
		var a, b uint64
		if i < len(s.Buckets) {
			a = s.Buckets[i]
		}
		if i < len(prev.Buckets) {
			b = prev.Buckets[i]
		}
		if a > b {
			out.Buckets[i] = a - b
			out.Count += a - b
		}
	}
	out.Sum = s.Sum - prev.Sum
	return out
}

// Add merges o into s in place (exact-bucket, like Histogram.Merge).
func (s *HistSnapshot) Add(o HistSnapshot) {
	if s.Buckets == nil {
		s.Buckets = make([]uint64, NumBuckets)
	}
	for i := range o.Buckets {
		if o.Buckets[i] > 0 {
			s.Buckets[i] += o.Buckets[i]
			s.Count += o.Buckets[i]
		}
	}
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Quantile estimates the q-th quantile from the snapshot (see
// Histogram.Quantile for the error contract).
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the order statistic a sorted slice would be indexed at:
	// ceil(q*count), clamped to [1, count].
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			return bucketMid(i)
		}
	}
	return bucketMid(len(s.Buckets) - 1)
}

// Mean returns the snapshot's exact mean (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// histWireVersion tags the snapshot wire encoding. A decoder rejects any
// other tag, so the bucket layout can change behind a version bump without
// silently mis-merging distributions from a mismatched peer.
const histWireVersion = "h1"

// MarshalText encodes the snapshot for wire transport (the load-generation
// control protocol ships per-worker snapshots to the coordinator):
//
//	h1 <count> <sum> <max> <idx>:<n> <idx>:<n> ...
//
// Only non-zero buckets are listed, in ascending index order, so a typical
// latency distribution costs a few hundred bytes rather than NumBuckets
// entries. Implements encoding.TextMarshaler, which also makes a
// HistSnapshot field inside a JSON document serialize as this one compact
// string. The encoding is exact: decode + Merge on the far side yields
// bucket-identical distributions, so quantiles merged across processes
// match in-process merging bit for bit.
func (s HistSnapshot) MarshalText() ([]byte, error) {
	b := make([]byte, 0, 64+12*len(s.Buckets)/8)
	b = append(b, histWireVersion...)
	b = append(b, ' ')
	b = strconv.AppendUint(b, s.Count, 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, s.Sum, 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, s.Max, 10)
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(i), 10)
		b = append(b, ':')
		b = strconv.AppendUint(b, n, 10)
	}
	return b, nil
}

// UnmarshalText decodes MarshalText's encoding. Beyond syntax it validates
// structure — version tag, bucket indexes in range and strictly ascending,
// and the declared count equal to the sum of bucket counts — so a
// truncated or corrupted transmission fails loudly instead of skewing the
// merged distribution.
func (s *HistSnapshot) UnmarshalText(text []byte) error {
	fields := strings.Fields(string(text))
	if len(fields) < 4 {
		return fmt.Errorf("obs: snapshot wire data truncated: %d of 4 header fields", len(fields))
	}
	if fields[0] != histWireVersion {
		return fmt.Errorf("obs: snapshot wire version %q (want %q)", fields[0], histWireVersion)
	}
	count, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return fmt.Errorf("obs: snapshot wire count %q: %w", fields[1], err)
	}
	sum, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return fmt.Errorf("obs: snapshot wire sum %q: %w", fields[2], err)
	}
	max, err := strconv.ParseInt(fields[3], 10, 64)
	if err != nil {
		return fmt.Errorf("obs: snapshot wire max %q: %w", fields[3], err)
	}
	out := HistSnapshot{Buckets: make([]uint64, NumBuckets), Sum: sum, Max: max}
	prev := -1
	for _, f := range fields[4:] {
		idxStr, nStr, ok := strings.Cut(f, ":")
		if !ok {
			return fmt.Errorf("obs: snapshot wire bucket %q: want <idx>:<count>", f)
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil || idx < 0 || idx >= NumBuckets {
			return fmt.Errorf("obs: snapshot wire bucket index %q out of [0,%d)", idxStr, NumBuckets)
		}
		if idx <= prev {
			return fmt.Errorf("obs: snapshot wire bucket index %d not ascending", idx)
		}
		prev = idx
		n, err := strconv.ParseUint(nStr, 10, 64)
		if err != nil || n == 0 {
			return fmt.Errorf("obs: snapshot wire bucket count %q", nStr)
		}
		out.Buckets[idx] = n
		out.Count += n
	}
	if out.Count != count {
		return fmt.Errorf("obs: snapshot wire truncated: declared count %d, buckets hold %d", count, out.Count)
	}
	*s = out
	return nil
}

// AddSnapshot merges a snapshot's buckets into the live histogram (exact-
// bucket, like Merge). A coordinator uses it to turn collected per-worker
// snapshots back into a registry-registered Histogram, so the merged
// distribution renders through the same Prometheus/JSON machinery as any
// locally observed one.
func (h *Histogram) AddSnapshot(s HistSnapshot) {
	if h == nil {
		return
	}
	var count uint64
	for i, n := range s.Buckets {
		if n > 0 && i < NumBuckets {
			h.buckets[i].Add(n)
			count += n
		}
	}
	h.count.Add(count)
	h.sum.Add(s.Sum)
	for {
		cur := h.max.Load()
		if s.Max <= cur || h.max.CompareAndSwap(cur, s.Max) {
			return
		}
	}
}
