package obs

import (
	"testing"
)

// FuzzHistSnapshotUnmarshalText throws arbitrary bytes at the snapshot wire
// decoder. Two properties: no input panics it, and any input it accepts
// must round-trip (re-marshal and decode again cleanly) — a decoder that
// admits an encoding its own encoder cannot reproduce would let one
// corrupted worker transmission skew every merged histogram downstream.
func FuzzHistSnapshotUnmarshalText(f *testing.F) {
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 997)
	}
	good, err := h.Snapshot().MarshalText()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	// The corruption table from TestSnapshotWireRejectsCorruption.
	for _, s := range []string{
		"",
		"h1 3",
		"h9 " + string(good[3:]),
		"h1 x 0 0",
		"h1 1 5 5 12",
		"h1 1 5 5 99999:1",
		"h1 2 5 5 7:1 3:1",
		"h1 1 5 5 7:0",
		string(good[:len(good)-len(good)/3]),
		"h1 0 0 0",
		"h1 1 5 5 7:1 ",
		"h1 18446744073709551615 0 0",
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		var s HistSnapshot
		if err := s.UnmarshalText(in); err != nil {
			return // rejected input: the common, correct outcome
		}
		out, err := s.MarshalText()
		if err != nil {
			t.Fatalf("accepted input %q but re-marshal failed: %v", in, err)
		}
		var s2 HistSnapshot
		if err := s2.UnmarshalText(out); err != nil {
			t.Fatalf("round-trip decode of %q failed: %v", out, err)
		}
	})
}
