package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestRegistryPrometheusOutput(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", `node="a"`, "ops processed")
	c.Add(7)
	reg.Counter("test_ops_total", `node="b"`, "ops processed").Add(3)
	g := reg.Gauge("test_depth", "", "queue depth")
	g.Set(42)
	reg.CounterFunc("test_fn_total", "", "from a func", func() int64 { return 11 })
	h := reg.Histogram("test_latency_seconds", "", "latency", UnitNanoseconds)
	for i := 0; i < 1000; i++ {
		h.Observe(1_000_000) // 1ms
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP test_ops_total ops processed",
		"# TYPE test_ops_total counter",
		`test_ops_total{node="a"} 7`,
		`test_ops_total{node="b"} 3`,
		"# TYPE test_depth gauge",
		"test_depth 42",
		"test_fn_total 11",
		"# TYPE test_latency_seconds summary",
		"test_latency_seconds_count 1000",
		// Nanosecond histograms render as seconds: the sum of 1000 x 1ms is
		// exactly 1s, and the quantile is the ~1ms bucket midpoint.
		"test_latency_seconds_sum 1",
		`test_latency_seconds{quantile="0.99"} 0.000999`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	// HELP/TYPE emit once per family even with several series.
	if n := strings.Count(out, "# TYPE test_ops_total counter"); n != 1 {
		t.Errorf("TYPE line for test_ops_total appears %d times, want 1", n)
	}
}

func TestRegistryUpsertRebinds(t *testing.T) {
	reg := NewRegistry()
	old := &Counter{}
	old.Add(5)
	reg.RegisterCounter("test_rebind_total", `node="x"`, "h", old)
	fresh := &Counter{}
	fresh.Add(9)
	// A revived node re-registers under the same (name, labels): the series
	// must rebind to the new instance, not duplicate.
	reg.RegisterCounter("test_rebind_total", `node="x"`, "h", fresh)

	snap := reg.Snapshot()
	if got := snap.SumCounters("test_rebind_total"); got != 9 {
		t.Fatalf("after rebind SumCounters = %d, want 9 (fresh instance)", got)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), `test_rebind_total{node="x"}`); n != 1 {
		t.Fatalf("rebound series appears %d times, want 1\n%s", n, buf.String())
	}
}

func TestSnapshotHelpers(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_hits_total", `node="a"`, "").Add(10)
	reg.Counter("test_hits_total", `node="b"`, "").Add(20)
	reg.Gauge("test_breaker", `node="a"`, "").Set(0)
	reg.Gauge("test_breaker", `node="b"`, "").Set(1)

	snap := reg.Snapshot()
	if got := snap.SumCounters("test_hits_total"); got != 30 {
		t.Errorf("SumCounters = %d, want 30", got)
	}
	states := snap.GaugeValues("test_breaker")
	if len(states) != 2 || states[0] != 0 || states[1] != 1 {
		t.Errorf("GaugeValues = %v, want [0 1]", states)
	}
	// Prefix matching must not cross metric-name boundaries.
	reg.Counter("test_hits_total_other", "", "").Add(99)
	if got := reg.Snapshot().SumCounters("test_hits_total"); got != 30 {
		t.Errorf("SumCounters matched a longer name: %d, want 30", got)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "", "")
	c.Inc() // counter still usable, just unregistered
	reg.GaugeFunc("y", "", "", func() int64 { return 1 })
	reg.RegisterHistogram("z", "", "", UnitNone, NewHistogram())
	if err := reg.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	if s := reg.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_served_total", "", "served").Add(1)
	reg.Gauge("test_breaker_state", `node="a"`, "").Set(0)
	ms, err := Serve("127.0.0.1:0", reg, BreakerHealth(reg, "test_breaker_state"))
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + ms.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "test_served_total 1") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}
	code, body := get("/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json: code %d", code)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v", err)
	}
	if doc.Counters["test_served_total"] != 1 {
		t.Errorf("/metrics.json counters = %v", doc.Counters)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz healthy: code %d body %q", code, body)
	}
	// Trip the breaker gauge: health flips to 503.
	reg.Gauge("test_breaker_state", `node="a"`, "").Set(1)
	if code, body := get("/healthz"); code != 503 || !strings.Contains(body, "degraded") {
		t.Errorf("/healthz degraded: code %d body %q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/: code %d", code)
	}
}
