package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready; methods are safe on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n should be non-negative; counters are monotonic).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready; methods
// are safe on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Unit scales histogram values for Prometheus rendering. Internally every
// histogram holds raw int64s; the JSON snapshot keeps them raw.
type Unit int

// Units.
const (
	// UnitNone renders values as-is (sizes, depths, counts).
	UnitNone Unit = iota
	// UnitNanoseconds renders values divided by 1e9: Prometheus convention
	// is base seconds, so a *_seconds histogram observed in nanoseconds
	// scrapes correctly.
	UnitNanoseconds
)

// MetricKind discriminates registry entries.
type MetricKind int

// Kinds, mapped to Prometheus TYPE names (histograms render as summaries:
// precomputed quantiles, _sum, _count).
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

type metric struct {
	name   string // Prometheus metric name, no labels
	labels string // rendered label body, e.g. `node="0",op="get"` (may be "")
	help   string
	kind   MetricKind
	unit   Unit

	counter *Counter
	gauge   *Gauge
	fn      func() int64 // counter/gauge view over external state
	hist    *Histogram
}

func (m *metric) value() int64 {
	switch {
	case m.fn != nil:
		return m.fn()
	case m.counter != nil:
		return m.counter.Load()
	case m.gauge != nil:
		return m.gauge.Load()
	}
	return 0
}

// Registry is a named collection of metrics. All methods are safe for
// concurrent use. Registration is upsert by (name, labels): registering an
// existing key rebinds the entry to the new backing and keeps one line per
// series in the output — a rebuilt component (a revived node, the next
// experiment's stack) takes over its names instead of duplicating them.
type Registry struct {
	// mu guards the entry list; metric fn callbacks run after snapshotting,
	// never under it.
	//
	//genie:nonblocking
	mu      sync.Mutex
	metrics []*metric
	byKey   map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

func metricKey(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// upsert installs m under its key, replacing any previous entry's backing
// in place so render order is stable across re-registration.
func (r *Registry) upsert(m *metric) {
	if r == nil {
		return
	}
	key := metricKey(m.name, m.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byKey[key]; ok {
		*old = *m
		return
	}
	r.byKey[key] = m
	r.metrics = append(r.metrics, m)
}

// Counter registers (or rebinds) a counter and returns it. Safe on a nil
// registry: returns a detached counter.
func (r *Registry) Counter(name, labels, help string) *Counter {
	c := &Counter{}
	r.upsert(&metric{name: name, labels: labels, help: help, kind: KindCounter, counter: c})
	return c
}

// Gauge registers (or rebinds) a gauge and returns it.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	g := &Gauge{}
	r.upsert(&metric{name: name, labels: labels, help: help, kind: KindGauge, gauge: g})
	return g
}

// CounterFunc registers a counter whose value is read from fn at render
// time — a view over counters that already live elsewhere (store stats,
// pool atomics) with no double accounting.
func (r *Registry) CounterFunc(name, labels, help string, fn func() int64) {
	r.upsert(&metric{name: name, labels: labels, help: help, kind: KindCounter, fn: fn})
}

// GaugeFunc registers a gauge whose value is read from fn at render time.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() int64) {
	r.upsert(&metric{name: name, labels: labels, help: help, kind: KindGauge, fn: fn})
}

// GaugeFuncUnit is GaugeFunc for values held in a non-base unit: the gauge
// renders scaled per unit (UnitNanoseconds → float seconds), so a
// nanosecond-held lag can live behind a _seconds series name.
func (r *Registry) GaugeFuncUnit(name, labels, help string, unit Unit, fn func() int64) {
	r.upsert(&metric{name: name, labels: labels, help: help, kind: KindGauge, unit: unit, fn: fn})
}

// Histogram registers (or rebinds) a histogram and returns it.
func (r *Registry) Histogram(name, labels, help string, unit Unit) *Histogram {
	h := &Histogram{}
	r.upsert(&metric{name: name, labels: labels, help: help, kind: KindHistogram, unit: unit, hist: h})
	return h
}

// RegisterHistogram registers an externally owned histogram (one embedded
// in a component's always-on instrumentation block).
func (r *Registry) RegisterHistogram(name, labels, help string, unit Unit, h *Histogram) {
	r.upsert(&metric{name: name, labels: labels, help: help, kind: KindHistogram, unit: unit, hist: h})
}

// RegisterCounter registers an externally owned counter.
func (r *Registry) RegisterCounter(name, labels, help string, c *Counter) {
	r.upsert(&metric{name: name, labels: labels, help: help, kind: KindCounter, counter: c})
}

// RegisterGauge registers an externally owned gauge.
func (r *Registry) RegisterGauge(name, labels, help string, g *Gauge) {
	r.upsert(&metric{name: name, labels: labels, help: help, kind: KindGauge, gauge: g})
}

// snapshotMetrics copies the entry list under the lock; values are read
// after, so a slow fn never holds the registry.
func (r *Registry) snapshotMetrics() []*metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*metric(nil), r.metrics...)
}

// VisitHistograms calls fn for every registered histogram (name, label
// body, histogram). The live ticker uses it to merge per-node op
// histograms into interval aggregates.
func (r *Registry) VisitHistograms(fn func(name, labels string, h *Histogram)) {
	for _, m := range r.snapshotMetrics() {
		if m.kind == KindHistogram && m.hist != nil {
			fn(m.name, m.labels, m.hist)
		}
	}
}

// quantiles rendered into Prometheus summaries and JSON snapshots.
var summaryQuantiles = []struct {
	q     float64
	label string
}{
	{0.5, "0.5"},
	{0.99, "0.99"},
	{0.999, "0.999"},
}

// WritePrometheus renders the registry in Prometheus text exposition
// format. Series sharing a metric name are grouped under one HELP/TYPE
// pair; histograms render as summaries (precomputed quantiles plus _sum and
// _count), scaled per their Unit.
func (r *Registry) WritePrometheus(w io.Writer) error {
	metrics := r.snapshotMetrics()
	// Group by name, preserving first-seen order, so HELP/TYPE emit once
	// per name no matter the registration interleaving.
	order := make([]string, 0, len(metrics))
	groups := make(map[string][]*metric, len(metrics))
	for _, m := range metrics {
		if _, ok := groups[m.name]; !ok {
			order = append(order, m.name)
		}
		groups[m.name] = append(groups[m.name], m)
	}
	var b strings.Builder
	for _, name := range order {
		ms := groups[name]
		if h := ms[0].help; h != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, h)
		}
		typ := "counter"
		switch ms[0].kind {
		case KindGauge:
			typ = "gauge"
		case KindHistogram:
			typ = "summary"
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
		for _, m := range ms {
			if m.kind != KindHistogram {
				b.WriteString(name)
				writeLabels(&b, m.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(formatUnit(m.value(), m.unit))
				b.WriteByte('\n')
				continue
			}
			s := m.hist.Snapshot()
			for _, sq := range summaryQuantiles {
				b.WriteString(name)
				writeLabels(&b, m.labels, "quantile", sq.label)
				b.WriteByte(' ')
				b.WriteString(formatUnit(s.Quantile(sq.q), m.unit))
				b.WriteByte('\n')
			}
			b.WriteString(name)
			b.WriteString("_sum")
			writeLabels(&b, m.labels, "", "")
			b.WriteByte(' ')
			b.WriteString(formatUnit(s.Sum, m.unit))
			b.WriteByte('\n')
			b.WriteString(name)
			b.WriteString("_count")
			writeLabels(&b, m.labels, "", "")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(s.Count, 10))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeLabels renders `{labels,extraKey="extraVal"}` (or nothing when both
// parts are empty).
func writeLabels(b *strings.Builder, labels, extraKey, extraVal string) {
	if labels == "" && extraKey == "" {
		return
	}
	b.WriteByte('{')
	b.WriteString(labels)
	if extraKey != "" {
		if labels != "" {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
}

func formatUnit(v int64, unit Unit) string {
	if unit == UnitNanoseconds {
		return strconv.FormatFloat(float64(v)/1e9, 'g', -1, 64)
	}
	return strconv.FormatInt(v, 10)
}

// HistStats is a histogram's summary in a JSON snapshot. Values are raw
// (nanoseconds for latency histograms), unscaled.
type HistStats struct {
	Count uint64  `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	Max   int64   `json:"max"`
}

// Snapshot is the registry's JSON form, keyed by `name` or `name{labels}`.
type Snapshot struct {
	Counters   map[string]int64     `json:"counters"`
	Gauges     map[string]int64     `json:"gauges"`
	Histograms map[string]HistStats `json:"histograms"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistStats{},
	}
	for _, m := range r.snapshotMetrics() {
		key := metricKey(m.name, m.labels)
		switch m.kind {
		case KindCounter:
			out.Counters[key] = m.value()
		case KindGauge:
			out.Gauges[key] = m.value()
		case KindHistogram:
			s := m.hist.Snapshot()
			out.Histograms[key] = HistStats{
				Count: s.Count,
				Sum:   s.Sum,
				Mean:  s.Mean(),
				P50:   s.Quantile(0.5),
				P99:   s.Quantile(0.99),
				P999:  s.Quantile(0.999),
				Max:   s.Max,
			}
		}
	}
	return out
}

// SumCounters sums every counter whose metric name equals name (across all
// label sets).
func (s Snapshot) SumCounters(name string) int64 {
	var total int64
	for k, v := range s.Counters {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += v
		}
	}
	return total
}

// GaugeValues returns every gauge series under name, sorted by key — the
// ticker's view of per-node breaker states.
func (s Snapshot) GaugeValues(name string) []int64 {
	keys := make([]string, 0, 4)
	for k := range s.Gauges {
		if k == name || strings.HasPrefix(k, name+"{") {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]int64, len(keys))
	for i, k := range keys {
		out[i] = s.Gauges[k]
	}
	return out
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
