package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// exactQuantile is the order statistic the histogram estimates: the value at
// rank ceil(q*n) of the sorted sample, clamped to [1, n].
func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// withinOneBucket reports whether est is inside (or adjacent to) the bucket
// holding exact — the histogram's error contract.
func withinOneBucket(t *testing.T, est, exact int64) {
	t.Helper()
	bi := bucketIndex(exact)
	lo, _ := BucketBounds(bi)
	var hi int64
	if bi+1 < NumBuckets {
		_, hi = BucketBounds(bi + 1)
	} else {
		_, hi = BucketBounds(bi)
	}
	if est < lo || est > hi {
		t.Fatalf("estimate %d outside bucket-of-exact [%d, %d) (exact %d, bucket %d)", est, lo, hi, exact, bi)
	}
}

func TestQuantileErrorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dists := map[string]func() int64{
		// Latency-shaped: lognormal around ~100µs with a heavy tail.
		"lognormal": func() int64 { return int64(math.Exp(11.5 + rng.NormFloat64())) },
		"uniform":   func() int64 { return rng.Int63n(10_000_000) },
		"small":     func() int64 { return rng.Int63n(32) },
		// Exponential spacing exercises many octaves.
		"exp2": func() int64 { return int64(1) << uint(rng.Intn(40)) },
	}
	for name, draw := range dists {
		t.Run(name, func(t *testing.T) {
			h := NewHistogram()
			samples := make([]int64, 0, 20000)
			for i := 0; i < 20000; i++ {
				v := draw()
				samples = append(samples, v)
				h.Observe(v)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
				est := h.Quantile(q)
				exact := exactQuantile(samples, q)
				withinOneBucket(t, est, exact)
				// Relative error stays inside the documented ~10% budget
				// (actual bound is one bucket width, <= 6.25%, plus the
				// midpoint offset).
				if exact >= histSubCount {
					relErr := math.Abs(float64(est)-float64(exact)) / float64(exact)
					if relErr > 0.10 {
						t.Errorf("q=%g: estimate %d vs exact %d, rel err %.3f > 0.10", q, est, exact, relErr)
					}
				}
			}
		})
	}
}

func TestObserveBoundaries(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5) // clamps to 0
	h.Observe(0)
	h.Observe(math.MaxInt64)
	if got := h.Count(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	if got := h.Max(); got != math.MaxInt64 {
		t.Fatalf("max = %d, want MaxInt64", got)
	}
	// The top bucket must hold MaxInt64 without indexing out of range.
	if bi := bucketIndex(math.MaxInt64); bi != NumBuckets-1 {
		t.Fatalf("bucketIndex(MaxInt64) = %d, want %d", bi, NumBuckets-1)
	}
	if est := h.Quantile(1); est <= 0 {
		t.Fatalf("q=1 estimate %d, want positive", est)
	}
	// Every bucket's bounds nest correctly: lo < hi and contiguous.
	prevHi := int64(0)
	for i := 0; i < NumBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo >= hi {
			t.Fatalf("bucket %d: lo %d >= hi %d", i, lo, hi)
		}
		if lo != prevHi {
			t.Fatalf("bucket %d: lo %d != previous hi %d", i, lo, prevHi)
		}
		if mid := bucketMid(i); mid < lo || mid >= hi {
			t.Fatalf("bucket %d: mid %d outside [%d, %d)", i, mid, lo, hi)
		}
		prevHi = hi
	}
	if prevHi != math.MaxInt64 {
		t.Fatalf("final bucket hi = %d, want MaxInt64", prevHi)
	}
}

func TestMergeAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mk := func(n int) *Histogram {
		h := NewHistogram()
		for i := 0; i < n; i++ {
			h.Observe(rng.Int63n(1_000_000))
		}
		return h
	}
	a, b, c := mk(500), mk(700), mk(300)

	merge := func(hs ...*Histogram) HistSnapshot {
		out := NewHistogram()
		for _, h := range hs {
			out.Merge(h)
		}
		return out.Snapshot()
	}
	equal := func(x, y HistSnapshot) bool {
		if x.Count != y.Count || x.Sum != y.Sum || x.Max != y.Max {
			return false
		}
		for i := range x.Buckets {
			if x.Buckets[i] != y.Buckets[i] {
				return false
			}
		}
		return true
	}

	abc := merge(a, b, c)
	if !equal(abc, merge(c, b, a)) {
		t.Error("merge not commutative: (a,b,c) != (c,b,a)")
	}
	// Associativity: (a+b)+c == a+(b+c).
	lhs := NewHistogram()
	lhs.Merge(a)
	lhs.Merge(b)
	lhs.Merge(c)
	bc := NewHistogram()
	bc.Merge(b)
	bc.Merge(c)
	rhs := NewHistogram()
	rhs.Merge(a)
	rhs.Merge(bc)
	if !equal(lhs.Snapshot(), rhs.Snapshot()) {
		t.Error("merge not associative: (a+b)+c != a+(b+c)")
	}
	// Merging loses no resolution: quantiles of the merge match a histogram
	// fed the union directly. (Exact-bucket merge means identical buckets.)
	if got, want := abc.Quantile(0.99), merge(a, b, c).Quantile(0.99); got != want {
		t.Errorf("merge p99 %d != direct p99 %d", got, want)
	}
}

func TestSnapshotIntervalArithmetic(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	s1 := h.Snapshot()
	for i := int64(1); i <= 50; i++ {
		h.Observe(i * 2000)
	}
	s2 := h.Snapshot()

	iv := s2.Sub(s1)
	if iv.Count != 50 {
		t.Fatalf("interval count = %d, want 50", iv.Count)
	}
	// Sub then Add round-trips back to the cumulative distribution.
	sum := s1
	sum.Add(iv)
	if sum.Count != s2.Count || sum.Sum != s2.Sum {
		t.Fatalf("s1 + (s2-s1) = count %d sum %d, want count %d sum %d",
			sum.Count, sum.Sum, s2.Count, s2.Sum)
	}
	for i := range sum.Buckets {
		if sum.Buckets[i] != s2.Buckets[i] {
			t.Fatalf("bucket %d: round-trip %d != cumulative %d", i, sum.Buckets[i], s2.Buckets[i])
		}
	}
}

func TestNilHistogramSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveSince(time.Now())
	h.Merge(NewHistogram())
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram should read as empty")
	}
	h.Reset()
	s := h.Snapshot()
	if s.Count != 0 {
		t.Fatal("nil snapshot should be empty")
	}
}

// TestSnapshotWireRoundTrip is the distributed-merge contract: per-worker
// snapshots encoded, decoded, and merged on the far side must be bucket-
// identical to merging the live histograms in-process — every quantile
// matches exactly, not approximately.
func TestSnapshotWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	workers := make([]*Histogram, 3)
	for i := range workers {
		workers[i] = NewHistogram()
		for j := 0; j < 5000; j++ {
			workers[i].Observe(int64(math.Exp(10 + 2*rng.NormFloat64())))
		}
	}
	workers[0].Observe(0)
	workers[1].Observe(math.MaxInt64)

	// In-process merge: the reference.
	direct := NewHistogram()
	for _, w := range workers {
		direct.Merge(w)
	}
	ref := direct.Snapshot()

	// Wire merge: encode each worker's snapshot, decode, Add.
	var wire HistSnapshot
	for _, w := range workers {
		text, err := w.Snapshot().MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var got HistSnapshot
		if err := got.UnmarshalText(text); err != nil {
			t.Fatalf("decode: %v", err)
		}
		wire.Add(got)
	}

	if wire.Count != ref.Count || wire.Sum != ref.Sum || wire.Max != ref.Max {
		t.Fatalf("wire merge count/sum/max = %d/%d/%d, want %d/%d/%d",
			wire.Count, wire.Sum, wire.Max, ref.Count, ref.Sum, ref.Max)
	}
	for i := range ref.Buckets {
		if wire.Buckets[i] != ref.Buckets[i] {
			t.Fatalf("bucket %d: wire %d != direct %d", i, wire.Buckets[i], ref.Buckets[i])
		}
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		if got, want := wire.Quantile(q), ref.Quantile(q); got != want {
			t.Fatalf("q=%g: wire %d != direct %d", q, got, want)
		}
	}

	// Loading the wire merge back into a live histogram keeps it exact.
	loaded := NewHistogram()
	loaded.AddSnapshot(wire)
	if got := loaded.Snapshot(); got.Count != ref.Count || got.Quantile(0.99) != ref.Quantile(0.99) {
		t.Fatalf("AddSnapshot count %d p99 %d, want %d / %d",
			got.Count, got.Quantile(0.99), ref.Count, ref.Quantile(0.99))
	}

	// JSON embedding uses the compact text form.
	text, _ := ref.MarshalText()
	if len(text) == 0 || text[0] != 'h' {
		t.Fatalf("unexpected encoding prefix %q", text[:min(len(text), 4)])
	}
}

// TestSnapshotWireRejectsCorruption: truncated or tampered transmissions
// must fail decoding, never skew a merged distribution silently.
func TestSnapshotWireRejectsCorruption(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 997)
	}
	good, err := h.Snapshot().MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"empty":            "",
		"short header":     "h1 3",
		"bad version":      "h9 " + string(good[3:]),
		"bad count":        "h1 x 0 0",
		"bad bucket pair":  "h1 1 5 5 12",
		"index range":      "h1 1 5 5 99999:1",
		"index descending": "h1 2 5 5 7:1 3:1",
		"zero count pair":  "h1 1 5 5 7:0",
		// Dropping the trailing buckets leaves the declared count higher
		// than the buckets can account for — the truncation signature.
		"truncated buckets": string(good[:len(good)-len(good)/3]),
	}
	for name, in := range cases {
		var s HistSnapshot
		if err := s.UnmarshalText([]byte(in)); err == nil {
			t.Errorf("%s: decode of %q unexpectedly succeeded", name, in)
		}
	}
	// Sanity: the untampered encoding still decodes.
	var s HistSnapshot
	if err := s.UnmarshalText(good); err != nil {
		t.Fatalf("good encoding rejected: %v", err)
	}
}

// TestConcurrentObserveSnapshot churns Observe/Merge/Snapshot/Quantile across
// goroutines; run under -race this is the data-race gate, and the final count
// checks no observation was lost.
func TestConcurrentObserveSnapshot(t *testing.T) {
	h := NewHistogram()
	const (
		writers = 8
		perW    = 20000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			other := NewHistogram()
			other.Observe(42)
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				_ = s.Quantile(0.99)
				_ = s.Sub(HistSnapshot{})
				merged := NewHistogram()
				merged.Merge(h)
				merged.Merge(other)
			}
		}(int64(r))
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(seed int64) {
			defer ww.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perW; i++ {
				h.Observe(rng.Int63n(1 << 30))
			}
		}(int64(w))
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := h.Count(); got != writers*perW {
		t.Fatalf("count = %d, want %d", got, writers*perW)
	}
	s := h.Snapshot()
	if s.Count != writers*perW {
		t.Fatalf("snapshot count = %d, want %d", s.Count, writers*perW)
	}
}
