package invbus

import "cachegenie/internal/obs"

// RegisterMetrics attaches the bus's counters, live queue-depth view, and
// flush-size / stall-time histograms to reg. The labels string is raw
// Prometheus label syntax (e.g. `tier="app"`, "" for none); re-registering
// under the same labels rebinds the series to this bus.
func (b *Bus) RegisterMetrics(reg *obs.Registry, labels string) {
	if b == nil || reg == nil {
		return
	}
	reg.CounterFunc("cachegenie_invbus_enqueued_total", labels,
		"ops published to the bus", b.enqueued.Load)
	reg.CounterFunc("cachegenie_invbus_applied_total", labels,
		"ops applied to the cache after coalescing", b.applied.Load)
	reg.CounterFunc("cachegenie_invbus_coalesced_total", labels,
		"ops superseded or merged before flushing", b.coalesced.Load)
	reg.CounterFunc("cachegenie_invbus_flushes_total", labels,
		"batches flushed downstream", b.flushes.Load)
	reg.CounterFunc("cachegenie_invbus_queue_full_stalls_total", labels,
		"Publish calls that blocked on a full shard queue", b.queueFullStalls.Load)
	reg.GaugeFunc("cachegenie_invbus_queue_depth", labels,
		"ops currently queued across all shards", func() int64 {
			var depth int64
			for _, s := range b.shards {
				depth += int64(len(s.ch))
			}
			return depth
		})
	reg.GaugeFuncUnit("cachegenie_invbus_max_lag_seconds", labels,
		"worst observed publish-to-apply delay", obs.UnitNanoseconds, b.maxLag.Load)
	reg.RegisterHistogram("cachegenie_invbus_flush_batch_size", labels,
		"ops per flushed batch, pre-coalescing", obs.UnitNone, &b.flushSize)
	reg.RegisterHistogram("cachegenie_invbus_publish_stall_seconds", labels,
		"time Publish callers spent blocked on full shard queues", obs.UnitNanoseconds, &b.stallTime)
}
