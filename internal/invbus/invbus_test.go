package invbus

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cachegenie/internal/kvcache"
	"cachegenie/internal/latency"
)

// orderLog records apply order per key via OpCasUpdate descriptors.
type orderLog struct {
	mu    sync.Mutex
	byKey map[string][]int
}

func newOrderLog() *orderLog { return &orderLog{byKey: map[string][]int{}} }

func (l *orderLog) mark(key string, seq int) func(kvcache.Cache) {
	return func(kvcache.Cache) {
		l.mu.Lock()
		l.byKey[key] = append(l.byKey[key], seq)
		l.mu.Unlock()
	}
}

func TestPerKeyFIFOOrdering(t *testing.T) {
	store := kvcache.New(0)
	bus := New(Config{Cache: store, Shards: 3, BatchWindow: -1})
	defer bus.Close()

	log := newOrderLog()
	const keys = 17
	const perKey = 50
	// Interleave publishes across keys: seq is strictly increasing per key.
	for seq := 0; seq < perKey; seq++ {
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("key-%d", k)
			bus.Publish(Op{Kind: OpCasUpdate, Key: key, Update: log.mark(key, seq)})
		}
	}
	bus.Flush()
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		got := log.byKey[key]
		if len(got) != perKey {
			t.Fatalf("%s: applied %d ops, want %d", key, len(got), perKey)
		}
		for i, seq := range got {
			if seq != i {
				t.Fatalf("%s: out of order at %d: %v", key, i, got[:i+1])
			}
		}
	}
}

// stallBus builds a single-shard bus whose worker is parked inside a flush,
// so subsequently published ops pile up in the queue and are collected (and
// coalesced) as one batch once release is closed.
func stallBus(t *testing.T, store *kvcache.Store, depth int) (bus *Bus, release chan struct{}) {
	t.Helper()
	bus = New(Config{Cache: store, Shards: 1, QueueDepth: depth, BatchWindow: -1, MaxBatch: 10000})
	release = make(chan struct{})
	entered := make(chan struct{})
	bus.Publish(Op{Kind: OpCasUpdate, Key: "stall", Update: func(kvcache.Cache) {
		close(entered)
		<-release
	}})
	<-entered // worker is now parked mid-flush
	return bus, release
}

func TestCoalesceRedundantDeletes(t *testing.T) {
	store := kvcache.New(0)
	store.Set("a", []byte("v"), 0)
	bus, release := stallBus(t, store, 1024)
	defer bus.Close()

	var found, notFound int
	var mu sync.Mutex
	done := func(r Result) {
		mu.Lock()
		defer mu.Unlock()
		if r.Found {
			found++
		} else {
			notFound++
		}
	}
	for i := 0; i < 10; i++ {
		bus.Publish(Op{Kind: OpDelete, Key: "a", Done: done})
	}
	close(release)
	bus.Flush()

	if _, ok := store.Get("a"); ok {
		t.Fatal("key survived deletion")
	}
	st := bus.Stats()
	if st.Coalesced != 9 {
		t.Fatalf("coalesced = %d, want 9", st.Coalesced)
	}
	if found != 1 || notFound != 9 {
		t.Fatalf("done callbacks: found=%d notFound=%d, want 1/9", found, notFound)
	}
	// 11 enqueued (stall + 10 deletes), 2 applied (stall + surviving delete).
	if st.Enqueued != 11 || st.Applied != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCoalesceSupersedeAndMergeRules(t *testing.T) {
	store := kvcache.New(0)
	store.Set("n", []byte("100"), 0)
	bus, release := stallBus(t, store, 1024)
	defer bus.Close()

	// set v1, set v2 -> one set (v2).
	bus.Publish(Op{Kind: OpSet, Key: "s", Value: []byte("v1")})
	bus.Publish(Op{Kind: OpSet, Key: "s", Value: []byte("v2")})
	// incr +1, +2, +3 -> one incr +6.
	var incrRes Result
	for d := int64(1); d <= 3; d++ {
		bus.Publish(Op{Kind: OpIncr, Key: "n", Delta: d, Done: func(r Result) { incrRes = r }})
	}
	// set then delete -> just the delete.
	bus.Publish(Op{Kind: OpSet, Key: "gone", Value: []byte("x")})
	bus.Publish(Op{Kind: OpDelete, Key: "gone"})
	close(release)
	bus.Flush()

	if v, ok := store.Get("s"); !ok || string(v) != "v2" {
		t.Fatalf("s = %q/%v, want v2", v, ok)
	}
	if v, ok := store.Get("n"); !ok || string(v) != "106" {
		t.Fatalf("n = %q/%v, want 106", v, ok)
	}
	if incrRes.Value != 106 || !incrRes.Found {
		t.Fatalf("merged incr result = %+v", incrRes)
	}
	if _, ok := store.Get("gone"); ok {
		t.Fatal("superseded set resurrected the key")
	}
	// Coalesced: 1 set + 2 incr merges + 1 set-under-delete = 4.
	if st := bus.Stats(); st.Coalesced != 4 {
		t.Fatalf("coalesced = %d, want 4 (%+v)", st.Coalesced, st)
	}
}

func TestCasUpdateOrderingAndSupersession(t *testing.T) {
	store := kvcache.New(0)
	bus, release := stallBus(t, store, 1024)
	defer bus.Close()

	// A CAS update observes every earlier op on its key (it supersedes
	// nothing)...
	var saw []byte
	bus.Publish(Op{Kind: OpSet, Key: "k", Value: []byte("first")})
	bus.Publish(Op{Kind: OpCasUpdate, Key: "k", Update: func(c kvcache.Cache) {
		saw, _ = c.Get("k")
	}})
	// ...while a later absolute op makes the key's final state independent
	// of a pending CAS update, so that one coalesces away unexecuted.
	ran := false
	bus.Publish(Op{Kind: OpCasUpdate, Key: "dead", Update: func(c kvcache.Cache) { ran = true }})
	bus.Publish(Op{Kind: OpSet, Key: "dead", Value: []byte("final")})
	close(release)
	bus.Flush()

	if string(saw) != "first" {
		t.Fatalf("cas update saw %q, want %q", saw, "first")
	}
	if ran {
		t.Fatal("superseded cas update still executed")
	}
	if v, _ := store.Get("dead"); string(v) != "final" {
		t.Fatalf("final value %q, want %q", v, "final")
	}
}

func TestFlushDrainsEverythingPublishedBefore(t *testing.T) {
	store := kvcache.New(0)
	bus := New(Config{Cache: store, Shards: 4, BatchWindow: 50 * time.Millisecond})
	defer bus.Close()
	const n = 200
	for i := 0; i < n; i++ {
		bus.Publish(Op{Kind: OpSet, Key: fmt.Sprintf("k-%d", i), Value: []byte("v")})
	}
	bus.Flush() // must not wait out the 50ms window n times
	if store.Len() != n {
		t.Fatalf("after Flush: %d keys stored, want %d", store.Len(), n)
	}
	if st := bus.Stats(); st.Applied != n {
		t.Fatalf("applied = %d, want %d", st.Applied, n)
	}
}

func TestCloseDrainsAndFallsBackToSync(t *testing.T) {
	store := kvcache.New(0)
	bus := New(Config{Cache: store, BatchWindow: 20 * time.Millisecond})
	for i := 0; i < 50; i++ {
		bus.Publish(Op{Kind: OpSet, Key: fmt.Sprintf("k-%d", i), Value: []byte("v")})
	}
	bus.Close()
	if store.Len() != 50 {
		t.Fatalf("Close left %d keys, want 50", store.Len())
	}
	// Ops after Close apply inline rather than vanishing.
	bus.Publish(Op{Kind: OpDelete, Key: "k-0"})
	if _, ok := store.Get("k-0"); ok {
		t.Fatal("post-Close publish was dropped")
	}
	bus.Close() // idempotent
}

func TestSyncModeAppliesInlineWithPerOpCost(t *testing.T) {
	store := kvcache.New(0)
	sleeper := &latency.CountingSleeper{}
	bus := New(Config{Cache: store, Sync: true, ConnectCost: time.Millisecond, Sleeper: sleeper})
	defer bus.Close()
	for i := 0; i < 5; i++ {
		bus.Publish(Op{Kind: OpSet, Key: "k", Value: []byte("v")})
	}
	// Inline: visible immediately, no Flush needed.
	if _, ok := store.Get("k"); !ok {
		t.Fatal("sync publish not applied inline")
	}
	if got := sleeper.Calls(); got != 5 {
		t.Fatalf("connect charges = %d, want one per op", got)
	}
	if st := bus.Stats(); st.Enqueued != 5 || st.Applied != 5 || st.Coalesced != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAsyncAmortizesConnectCost(t *testing.T) {
	store := kvcache.New(0)
	sleeper := &latency.CountingSleeper{}
	bus := New(Config{Cache: store, Shards: 1, BatchWindow: -1, MaxBatch: 10000,
		ConnectCost: time.Millisecond, Sleeper: sleeper})
	defer bus.Close()
	release := make(chan struct{})
	entered := make(chan struct{})
	bus.Publish(Op{Kind: OpCasUpdate, Key: "stall", Update: func(kvcache.Cache) {
		close(entered)
		<-release
	}})
	<-entered
	for i := 0; i < 100; i++ {
		bus.Publish(Op{Kind: OpSet, Key: fmt.Sprintf("k-%d", i), Value: []byte("v")})
	}
	close(release)
	bus.Flush()
	// 1 charge for the stall batch + 1 for the 100-op batch.
	if got := sleeper.Calls(); got != 2 {
		t.Fatalf("connect charges = %d, want 2 (one per flush)", got)
	}
	if st := bus.Stats(); st.MaxBatch != 100 {
		t.Fatalf("max batch = %d, want 100", st.MaxBatch)
	}
}

func TestBackpressureBlocksPublishOnFullQueue(t *testing.T) {
	store := kvcache.New(0)
	bus, release := stallBus(t, store, 1)
	defer bus.Close()

	bus.Publish(Op{Kind: OpSet, Key: "a", Value: []byte("v")}) // fills depth-1 queue
	blocked := make(chan struct{})
	go func() {
		bus.Publish(Op{Kind: OpSet, Key: "b", Value: []byte("v")}) // must block
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("publish did not block on a full shard queue")
	case <-time.After(30 * time.Millisecond):
	}
	close(release)
	select {
	case <-blocked:
	case <-time.After(2 * time.Second):
		t.Fatal("publish never unblocked after the worker drained")
	}
	bus.Flush()
	if _, ok := store.Get("b"); !ok {
		t.Fatal("backpressured op lost")
	}
}

func TestStatsTrackLagAndFlushes(t *testing.T) {
	store := kvcache.New(0)
	bus := New(Config{Cache: store, Shards: 1, BatchWindow: 5 * time.Millisecond})
	defer bus.Close()
	bus.Publish(Op{Kind: OpSet, Key: "k", Value: []byte("v")})
	bus.Flush()
	st := bus.Stats()
	if st.Flushes == 0 {
		t.Fatalf("flushes = 0, want > 0")
	}
	if st.MaxLag <= 0 {
		t.Fatalf("max lag = %v, want > 0", st.MaxLag)
	}
	if st.Enqueued != 1 || st.Applied != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrentPublishersDrainFully(t *testing.T) {
	store := kvcache.New(0)
	bus := New(Config{Cache: store, Shards: 4, QueueDepth: 64, BatchWindow: time.Millisecond})
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				bus.Publish(Op{Kind: OpIncr, Key: fmt.Sprintf("ctr-%d", i%7), Delta: 1})
				if i%50 == 0 {
					bus.Flush()
				}
			}
		}(g)
	}
	wg.Wait()
	bus.Close()
	st := bus.Stats()
	if st.Enqueued != goroutines*perG {
		t.Fatalf("enqueued = %d", st.Enqueued)
	}
	if st.Applied+st.Coalesced != st.Enqueued {
		t.Fatalf("applied %d + coalesced %d != enqueued %d", st.Applied, st.Coalesced, st.Enqueued)
	}
}

func TestStatsCountQueueFullStalls(t *testing.T) {
	store := kvcache.New(0)
	bus, release := stallBus(t, store, 1)
	defer bus.Close()

	// Queue empty: this fill does not stall.
	bus.Publish(Op{Kind: OpSet, Key: "a", Value: []byte("v")})
	if st := bus.Stats(); st.QueueFullStalls != 0 || st.StallTime != 0 {
		t.Fatalf("premature stall accounting: %+v", st)
	}

	unblocked := make(chan struct{})
	go func() {
		// Queue holds "a" and the worker is parked: this Publish must stall.
		bus.Publish(Op{Kind: OpSet, Key: "b", Value: []byte("v")})
		close(unblocked)
	}()
	// The stall counter increments before the publisher parks, so we can
	// wait for the park deterministically.
	deadline := time.Now().Add(2 * time.Second)
	for bus.Stats().QueueFullStalls == 0 {
		if time.Now().After(deadline) {
			t.Fatal("publisher never stalled on the full queue")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	select {
	case <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("stalled publish never completed")
	}
	bus.Flush()
	st := bus.Stats()
	if st.QueueFullStalls != 1 {
		t.Fatalf("queue-full stalls = %d, want 1", st.QueueFullStalls)
	}
	if st.StallTime <= 0 {
		t.Fatalf("stall time = %v, want > 0", st.StallTime)
	}
	if _, ok := store.Get("b"); !ok {
		t.Fatal("stalled op lost")
	}
}

// TestSupersededCasUpdateDoneReportsNotFound pins the documented corner of
// the Result contract: an OpCasUpdate superseded by a later Delete or Set on
// the same key never executes, and its Done reports Found:false (the
// read-modify-write did not run), while the superseding op completes
// normally.
func TestSupersededCasUpdateDoneReportsNotFound(t *testing.T) {
	store := kvcache.New(0)
	bus, release := stallBus(t, store, 1024)
	defer bus.Close()

	ran := false
	var casRes, setRes Result
	var casDone, setDone sync.WaitGroup
	casDone.Add(1)
	setDone.Add(1)
	bus.Publish(Op{
		Kind: OpCasUpdate, Key: "k",
		Update: func(c kvcache.Cache) { ran = true },
		Done:   func(r Result) { casRes = r; casDone.Done() },
	})
	bus.Publish(Op{
		Kind: OpSet, Key: "k", Value: []byte("winner"),
		Done: func(r Result) { setRes = r; setDone.Done() },
	})
	close(release)
	bus.Flush()
	casDone.Wait()
	setDone.Wait()
	if ran {
		t.Fatal("superseded CAS update executed")
	}
	if casRes.Found {
		t.Fatalf("superseded CAS update Done = %+v, want Found:false", casRes)
	}
	if !setRes.Found {
		t.Fatalf("superseding set Done = %+v, want Found:true", setRes)
	}
	if v, ok := store.Get("k"); !ok || string(v) != "winner" {
		t.Fatalf("k = %q, %v", v, ok)
	}
}
