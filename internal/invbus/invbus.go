// Package invbus implements an asynchronous, batching invalidation bus
// between CacheGenie's database triggers and the cache.
//
// The paper measures (§5.3) that the dominant trigger cost is the
// trigger→cache hop: opening a connection from a trigger roughly doubles
// INSERT latency, and every cache operation costs a full network round trip
// serialized into the write path. The bus converts that per-op synchronous
// cost into an amortized, pipelined one: triggers Publish typed ops
// (delete / set / incr / CAS-update descriptors) and return immediately;
// per-shard worker goroutines coalesce pending ops and flush them through
// the cache's batch entry point (kvcache.BatchApplier) — one connection
// charge and one round trip per flush instead of per op.
//
// Ordering. Ops are routed to a worker by key hash, so ops on the same key
// are applied in exactly the order they were published (per-key FIFO).
// Cross-key ordering is not preserved — the same freedom a consistent-hash
// cluster already introduces.
//
// Consistency. In async mode the cache lags the database by a bounded
// staleness window (roughly BatchWindow plus queueing delay). Readers that
// need the paper's read-your-triggered-writes behaviour should use sync
// mode (Config.Sync, which applies every op inline and is the
// paper-faithful baseline) or drain explicitly with Flush.
package invbus

import (
	"sync"
	"sync/atomic"
	"time"

	"cachegenie/internal/kvcache"
	"cachegenie/internal/latency"
	"cachegenie/internal/obs"
)

// OpKind discriminates bus operations.
type OpKind int

// Bus operations. The first three are typed mutations that batch and
// coalesce; OpCasUpdate is a read-modify-write descriptor executed on the
// shard worker between batched segments.
const (
	OpDelete OpKind = iota
	OpSet
	OpIncr
	OpCasUpdate
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpDelete:
		return "delete"
	case OpSet:
		return "set"
	case OpIncr:
		return "incr"
	case OpCasUpdate:
		return "cas-update"
	}
	return "unknown"
}

// Result reports an op's outcome to its Done callback.
type Result struct {
	// Found is true when a delete removed a live entry or an incr found a
	// numeric entry; sets and executed CAS updates report true. An op
	// coalesced away before flushing reports what a late synchronous call
	// would have seen: false for deletes and incrs, true for sets. Note the
	// OpCasUpdate corner of that contract: a CAS update superseded by a
	// later Delete or Set on the same key is never executed, and its Done
	// reports Found:false — "your read-modify-write did not run (and did not
	// need to; its output was dead on arrival)", not an error.
	Found bool
	// Value is the post-increment value for OpIncr.
	Value int64
}

// Op is one unit of cache maintenance published to the bus.
type Op struct {
	Kind OpKind
	// Key routes the op to its shard; ops on the same key apply in publish
	// order. Required for every kind.
	Key   string
	Value []byte        // OpSet payload
	TTL   time.Duration // OpSet entry lifetime
	Delta int64         // OpIncr increment (may be negative)
	// Update is the CAS-update descriptor for OpCasUpdate: an arbitrary
	// read-modify-write against Key, run on the shard worker so it
	// serializes with every other op on the same key. The contract is that
	// it touches only Key.
	Update func(c kvcache.Cache)
	// Done, if non-nil, receives the op's outcome after it is applied (or
	// coalesced away). It runs on the shard worker; keep it cheap.
	Done func(Result)
}

// Config assembles a Bus. The zero value of every field is usable.
type Config struct {
	// Cache is the downstream cache ops are applied to. Required.
	Cache kvcache.Cache
	// Shards is the number of key-hash-sharded worker queues (default 4).
	Shards int
	// QueueDepth bounds each shard's queue; Publish blocks while its shard
	// is full (backpressure). Default 1024.
	QueueDepth int
	// BatchWindow is how long a worker waits after an op arrives for more
	// ops to coalesce before flushing. 0 picks the 1ms default; negative
	// disables waiting (the worker drains whatever is already queued and
	// flushes immediately).
	BatchWindow time.Duration
	// MaxBatch caps ops per flush (default 256).
	MaxBatch int
	// Sync applies every op inline in Publish — the paper-faithful
	// baseline: one connection charge and one round trip per op, and the
	// cache never lags. Flush and Close become no-ops.
	Sync bool
	// ConnectCost models the trigger→cache connection setup the bus
	// amortizes (§5.3): charged once per flush in async mode, once per op
	// in sync mode.
	ConnectCost time.Duration
	// Sleeper implements time passage for ConnectCost (default real).
	Sleeper latency.Sleeper
}

// Stats counts bus activity. Snapshot via Bus.Stats.
type Stats struct {
	Enqueued  int64         // ops published
	Applied   int64         // ops applied to the cache (post-coalescing)
	Coalesced int64         // ops superseded or merged before flushing
	Flushes   int64         // batches flushed
	MaxBatch  int64         // largest single flush (ops, pre-coalescing)
	MaxLag    time.Duration // worst observed publish→apply delay
	// QueueFullStalls counts Publish calls that found their shard queue full
	// and had to block — the backpressure that MaxLag alone cannot show
	// (a saturated bus can keep lag bounded precisely by stalling writers).
	QueueFullStalls int64
	// StallTime is the cumulative wall time Publish callers spent blocked on
	// full shard queues.
	StallTime time.Duration
}

// pendingOp is an Op in a shard queue; flushCh non-nil marks a drain
// barrier published by Flush.
type pendingOp struct {
	Op
	enq     time.Time
	flushCh chan struct{}
}

type shard struct {
	ch chan pendingOp
}

// Bus is the invalidation bus. All methods are safe for concurrent use.
type Bus struct {
	cfg    Config
	shards []*shard
	wg     sync.WaitGroup

	// mu serializes Publish/Flush against Close (channel lifecycle).
	mu     sync.RWMutex
	closed bool

	enqueued        atomic.Int64
	applied         atomic.Int64
	coalesced       atomic.Int64
	flushes         atomic.Int64
	maxBatch        atomic.Int64
	maxLag          atomic.Int64
	queueFullStalls atomic.Int64
	stallNanos      atomic.Int64

	// Always-on distribution instrumentation (see RegisterMetrics): flush
	// batch sizes (pre-coalescing, the batching-efficiency signal) and
	// Publish stall times on full shard queues (the backpressure signal).
	flushSize obs.Histogram
	stallTime obs.Histogram
}

// New creates a Bus and starts its shard workers (none in sync mode).
func New(cfg Config) *Bus {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = time.Millisecond
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.Sleeper == nil {
		cfg.Sleeper = latency.RealSleeper{}
	}
	b := &Bus{cfg: cfg}
	if cfg.Sync {
		return b
	}
	for i := 0; i < cfg.Shards; i++ {
		s := &shard{ch: make(chan pendingOp, cfg.QueueDepth)}
		b.shards = append(b.shards, s)
		b.wg.Add(1)
		go b.worker(s)
	}
	return b
}

func (b *Bus) shardFor(key string) *shard {
	// Inline FNV-1a: hash.Hash32 would heap-allocate on every Publish.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return b.shards[int(h)%len(b.shards)]
}

// Publish hands an op to the bus. In async mode it returns as soon as the
// op is queued, blocking only when the op's shard queue is full
// (backpressure). In sync mode — and after Close, so maintenance is never
// silently dropped — the op is applied inline before returning.
func (b *Bus) Publish(op Op) {
	b.enqueued.Add(1)
	if b.cfg.Sync {
		b.applySync(op)
		return
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		// Let the workers finish draining first: applying inline while an
		// older op for the same key is still queued would break per-key
		// FIFO. After Close's drain this returns immediately.
		b.wg.Wait()
		b.applySync(op)
		return
	}
	s := b.shardFor(op.Key)
	p := pendingOp{Op: op, enq: time.Now()}
	select {
	case s.ch <- p:
	default:
		// Shard queue full: block (backpressure) and account for the stall
		// so saturation is visible beyond MaxLag.
		b.queueFullStalls.Add(1)
		start := time.Now()
		s.ch <- p
		stalled := int64(time.Since(start))
		b.stallNanos.Add(stalled)
		b.stallTime.Observe(stalled)
	}
	b.mu.RUnlock()
}

// applySync applies one op inline with the paper's per-op costs.
func (b *Bus) applySync(op Op) {
	if b.cfg.ConnectCost > 0 {
		b.cfg.Sleeper.Sleep(b.cfg.ConnectCost)
	}
	b.apply([]pendingOp{{Op: op, enq: time.Now()}})
	b.flushes.Add(1)
	storeMax(&b.maxBatch, 1)
	b.flushSize.Observe(1)
}

// storeMax lifts v into the atomic if it exceeds the current value.
func storeMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Flush blocks until every op published before the call has been applied.
// No-op in sync mode (nothing is ever pending).
func (b *Bus) Flush() {
	if b.cfg.Sync {
		return
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		b.wg.Wait() // a concurrent Close is draining; its drain is our drain
		return
	}
	chs := make([]chan struct{}, len(b.shards))
	for i, s := range b.shards {
		chs[i] = make(chan struct{})
		s.ch <- pendingOp{flushCh: chs[i]}
	}
	b.mu.RUnlock()
	for _, ch := range chs {
		<-ch
	}
}

// Close drains every queue, applies what was pending, and stops the
// workers. Ops published after Close apply synchronously.
func (b *Bus) Close() {
	if b.cfg.Sync {
		return
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	for _, s := range b.shards {
		close(s.ch)
	}
	b.mu.Unlock()
	b.wg.Wait()
}

// Stats returns a snapshot of counters.
func (b *Bus) Stats() Stats {
	return Stats{
		Enqueued:        b.enqueued.Load(),
		Applied:         b.applied.Load(),
		Coalesced:       b.coalesced.Load(),
		Flushes:         b.flushes.Load(),
		MaxBatch:        b.maxBatch.Load(),
		MaxLag:          time.Duration(b.maxLag.Load()),
		QueueFullStalls: b.queueFullStalls.Load(),
		StallTime:       time.Duration(b.stallNanos.Load()),
	}
}

// worker owns one shard queue: it blocks for the first op, collects more
// until the batch window closes (or MaxBatch, or a drain barrier), then
// flushes the batch downstream.
func (b *Bus) worker(s *shard) {
	defer b.wg.Done()
	for {
		p, ok := <-s.ch
		if !ok {
			return
		}
		if p.flushCh != nil {
			close(p.flushCh)
			continue
		}
		batch := []pendingOp{p}
		var timer *time.Timer
		var timeout <-chan time.Time
		if b.cfg.BatchWindow > 0 {
			timer = time.NewTimer(b.cfg.BatchWindow)
			timeout = timer.C
		}
		var barriers []chan struct{}
		chClosed := false
	collect:
		for len(batch) < b.cfg.MaxBatch {
			if timeout == nil {
				// Greedy mode: take only what is already queued.
				select {
				case q, ok := <-s.ch:
					if !ok {
						chClosed = true
						break collect
					}
					if q.flushCh != nil {
						barriers = append(barriers, q.flushCh)
						break collect
					}
					batch = append(batch, q)
				default:
					break collect
				}
			} else {
				select {
				case q, ok := <-s.ch:
					if !ok {
						chClosed = true
						break collect
					}
					if q.flushCh != nil {
						barriers = append(barriers, q.flushCh)
						break collect
					}
					batch = append(batch, q)
				case <-timeout:
					break collect
				}
			}
		}
		if timer != nil {
			timer.Stop()
		}
		b.flushBatch(batch)
		for _, ch := range barriers {
			close(ch)
		}
		if chClosed {
			return
		}
	}
}

// flushBatch coalesces, charges one connection setup, and applies.
func (b *Bus) flushBatch(batch []pendingOp) {
	if len(batch) == 0 {
		return
	}
	storeMax(&b.maxBatch, int64(len(batch)))
	b.flushSize.Observe(int64(len(batch)))
	batch = b.coalesce(batch)
	if b.cfg.ConnectCost > 0 {
		b.cfg.Sleeper.Sleep(b.cfg.ConnectCost)
	}
	b.apply(batch)
	b.flushes.Add(1)
}

// coalesce rewrites a batch into an equivalent smaller one. Per-key
// equivalence rules (cross-key order is already unspecified):
//
//   - a later Delete or Set makes the key's final state independent of every
//     earlier pending op on that key, so those earlier ops are dropped;
//   - adjacent-per-key Incrs merge by summing deltas;
//   - OpCasUpdate reads current state, so it supersedes nothing (but can
//     itself be superseded by a later Delete/Set).
//
// Dropped ops get their Done callback immediately with the outcome a late
// synchronous call would have observed.
func (b *Bus) coalesce(batch []pendingOp) []pendingOp {
	if len(batch) < 2 {
		return batch
	}
	out := batch[:0:len(batch)]
	byKey := make(map[string][]int, len(batch)) // key -> indices into out
	dropped := 0
	for _, p := range batch {
		switch p.Kind {
		case OpDelete, OpSet:
			for _, i := range byKey[p.Key] {
				if d := out[i].Done; d != nil {
					d(Result{Found: out[i].Kind == OpSet})
				}
				out[i].Kind = opDropped
				dropped++
			}
			byKey[p.Key] = byKey[p.Key][:0]
		case OpIncr:
			if idxs := byKey[p.Key]; len(idxs) > 0 {
				last := &out[idxs[len(idxs)-1]]
				if last.Kind == OpIncr {
					last.Delta += p.Delta
					if prev := last.Done; prev != nil || p.Done != nil {
						pd := p.Done
						last.Done = func(r Result) {
							if prev != nil {
								prev(r)
							}
							if pd != nil {
								pd(r)
							}
						}
					}
					dropped++
					continue
				}
			}
		}
		byKey[p.Key] = append(byKey[p.Key], len(out))
		out = append(out, p)
	}
	if dropped == 0 {
		return out
	}
	b.coalesced.Add(int64(dropped))
	compact := out[:0]
	for _, p := range out {
		if p.Kind != opDropped {
			compact = append(compact, p)
		}
	}
	return compact
}

// opDropped marks a coalesced-away slot; never published.
const opDropped OpKind = -1

// apply runs a coalesced batch against the cache in order: consecutive
// typed ops go through the batch entry point as one segment, CAS-update
// descriptors execute individually between segments, so total shard order
// (and therefore per-key order) is preserved.
func (b *Bus) apply(batch []pendingOp) {
	c := b.cfg.Cache
	now := time.Now()
	for i := 0; i < len(batch); {
		if batch[i].Kind == OpCasUpdate {
			if batch[i].Update != nil {
				batch[i].Update(c)
			}
			if d := batch[i].Done; d != nil {
				d(Result{Found: true})
			}
			i++
			continue
		}
		j := i
		for j < len(batch) && batch[j].Kind != OpCasUpdate {
			j++
		}
		ops := make([]kvcache.BatchOp, j-i)
		for k := i; k < j; k++ {
			ops[k-i] = toBatchOp(batch[k].Op)
		}
		res := kvcache.ApplyBatchOn(c, ops)
		for k := i; k < j; k++ {
			if d := batch[k].Done; d != nil {
				d(Result{Found: res[k-i].Found, Value: res[k-i].Value})
			}
		}
		i = j
	}
	b.applied.Add(int64(len(batch)))
	var worst time.Duration
	for _, p := range batch {
		if lag := now.Sub(p.enq); lag > worst {
			worst = lag
		}
	}
	storeMax(&b.maxLag, int64(worst))
}

func toBatchOp(op Op) kvcache.BatchOp {
	switch op.Kind {
	case OpSet:
		return kvcache.BatchOp{Kind: kvcache.BatchSet, Key: op.Key, Value: op.Value, TTL: op.TTL}
	case OpIncr:
		return kvcache.BatchOp{Kind: kvcache.BatchIncr, Key: op.Key, Delta: op.Delta}
	default:
		return kvcache.BatchOp{Kind: kvcache.BatchDelete, Key: op.Key}
	}
}
