package latency

import (
	"sync"
	"testing"
	"time"
)

func TestCountingSleeper(t *testing.T) {
	cs := &CountingSleeper{}
	cs.Sleep(time.Millisecond)
	cs.Sleep(2 * time.Millisecond)
	cs.Sleep(0)  // zero charges are not counted
	cs.Sleep(-1) // negative neither
	if got := cs.Total(); got != 3*time.Millisecond {
		t.Fatalf("Total = %v", got)
	}
	if got := cs.Calls(); got != 2 {
		t.Fatalf("Calls = %d", got)
	}
}

func TestCountingSleeperConcurrent(t *testing.T) {
	cs := &CountingSleeper{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				cs.Sleep(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := cs.Calls(); got != 800 {
		t.Fatalf("Calls = %d", got)
	}
	if got := cs.Total(); got != 800*time.Microsecond {
		t.Fatalf("Total = %v", got)
	}
}

func TestRealSleeperZeroReturnsImmediately(t *testing.T) {
	start := time.Now()
	RealSleeper{}.Sleep(0)
	RealSleeper{}.Sleep(-time.Second)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("zero/negative sleep slept")
	}
}

func TestPaperScaledRatios(t *testing.T) {
	m1 := PaperScaled(1)
	// The paper's measured anchors.
	if m1.CacheRoundTrip != 200*time.Microsecond {
		t.Fatalf("CacheRoundTrip = %v", m1.CacheRoundTrip)
	}
	if m1.CacheConnect != 5400*time.Microsecond {
		t.Fatalf("CacheConnect = %v", m1.CacheConnect)
	}
	// DB CPU per statement must land in the paper's 10-25x band relative
	// to a cache round trip (§5.3).
	ratio := float64(m1.DBCPU) / float64(m1.CacheRoundTrip)
	if ratio < 10 || ratio > 25 {
		t.Fatalf("DBCPU/CacheRoundTrip = %.1f, want in [10, 25]", ratio)
	}
	// Scaling divides everything uniformly.
	m10 := PaperScaled(10)
	if m10.DBCPU != m1.DBCPU/10 || m10.DiskAccess != m1.DiskAccess/10 {
		t.Fatalf("scale-10 model = %+v", m10)
	}
	// Degenerate scales clamp to 1.
	if m := PaperScaled(0); m.DBCPU != m1.DBCPU {
		t.Fatal("scale 0 not clamped")
	}
}
