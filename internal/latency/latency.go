// Package latency provides a deterministic, injectable cost model for the
// benchmark harness. The paper's evaluation runs on three machines joined by
// gigabit ethernet; the important performance effects (memcached round-trips
// of ~0.2 ms, trigger connection setup doubling INSERT latency, a disk-bound
// database under the cached configurations) are reproduced here by charging
// configurable sleeps at the same points in the code path, instead of
// depending on the benchmark host's hardware.
//
// A zero-valued Model charges nothing, so unit tests run at full speed; the
// experiment harness installs paper-calibrated values (see the workload
// package) scaled down ~10x so sweeps complete in seconds.
package latency

import (
	"sync/atomic"
	"time"
)

// Model holds the injectable delays. All fields may be zero. The struct is
// immutable after construction; share it freely across goroutines.
type Model struct {
	// CacheRoundTrip is charged for every cache operation issued over the
	// (simulated) network, both by the application and by triggers. The paper
	// measures ~0.2 ms per memcached operation.
	CacheRoundTrip time.Duration

	// CacheConnect is charged when a trigger opens a fresh connection to the
	// cache. The paper measures that opening a remote memcached connection
	// from a trigger doubles INSERT latency (6.5 ms -> 11.9 ms).
	CacheConnect time.Duration

	// DBRoundTrip is charged once per SQL statement sent to the database
	// (client <-> DB server network hop).
	DBRoundTrip time.Duration

	// DiskAccess is charged per buffer-pool miss, modelling a disk read.
	DiskAccess time.Duration

	// DBCPU is charged per SQL statement, modelling query parse/plan/execute
	// CPU beyond what our executor spends natively. It scales the NoCache
	// configuration's CPU bottleneck to paper-like ratios.
	DBCPU time.Duration
}

// Sleeper abstracts time passage so tests can count charges instead of
// actually sleeping.
type Sleeper interface {
	Sleep(d time.Duration)
}

// RealSleeper sleeps on the wall clock.
type RealSleeper struct{}

// Sleep implements Sleeper.
func (RealSleeper) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// CountingSleeper records total requested sleep without sleeping. It is safe
// for concurrent use.
type CountingSleeper struct {
	total atomic.Int64
	calls atomic.Int64
}

// Sleep implements Sleeper.
func (c *CountingSleeper) Sleep(d time.Duration) {
	if d > 0 {
		c.total.Add(int64(d))
		c.calls.Add(1)
	}
}

// Total returns the accumulated virtual sleep time.
func (c *CountingSleeper) Total() time.Duration { return time.Duration(c.total.Load()) }

// Calls returns the number of non-zero charges.
func (c *CountingSleeper) Calls() int64 { return c.calls.Load() }

// PaperScaled returns the model used by the experiment harness: the paper's
// measured latencies divided by scale (scale=1 reproduces absolute paper
// numbers; the harness default is 10 so experiment sweeps finish quickly
// while preserving every ratio).
func PaperScaled(scale int) Model {
	if scale < 1 {
		scale = 1
	}
	s := time.Duration(scale)
	return Model{
		CacheRoundTrip: 200 * time.Microsecond / s,
		CacheConnect:   5400 * time.Microsecond / s, // 11.9ms - 6.5ms per paper §5.3
		DBRoundTrip:    150 * time.Microsecond / s,
		DiskAccess:     5 * time.Millisecond / s,
		// The paper's microbenchmark puts a simple B+tree lookup at 10-25x
		// a 0.2ms memcached operation (§5.3), i.e. 2-5ms of query
		// computation; 3ms sits in that band.
		DBCPU: 3 * time.Millisecond / s,
	}
}
