package orm

import (
	"errors"
	"testing"
	"time"

	"cachegenie/internal/sqldb"
)

func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	db := sqldb.MustOpen(sqldb.Config{})
	reg := NewRegistry(db)
	reg.MustRegister(&ModelDef{
		Name:  "User",
		Table: "users",
		Fields: []FieldDef{
			{Name: "username", Type: sqldb.TypeText, NotNull: true},
			{Name: "active", Type: sqldb.TypeBool},
		},
		Unique: [][]string{{"username"}},
	})
	reg.MustRegister(&ModelDef{
		Name:  "Profile",
		Table: "profiles",
		Fields: []FieldDef{
			{Name: "user_id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "bio", Type: sqldb.TypeText},
			{Name: "joined", Type: sqldb.TypeTime},
		},
		Indexes: [][]string{{"user_id"}},
	})
	reg.MustRegister(&ModelDef{
		Name:  "Group",
		Table: "groups",
		Fields: []FieldDef{
			{Name: "name", Type: sqldb.TypeText, NotNull: true},
		},
	})
	reg.MustRegister(&ModelDef{
		Name:  "Membership",
		Table: "membership",
		Fields: []FieldDef{
			{Name: "user_id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "group_id", Type: sqldb.TypeInt, NotNull: true},
		},
		Indexes: [][]string{{"user_id"}, {"group_id"}},
	})
	if err := reg.CreateTables(); err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestInsertAndGet(t *testing.T) {
	reg := newTestRegistry(t)
	u, err := reg.Insert("User", Fields{"username": "alice", "active": true})
	if err != nil {
		t.Fatal(err)
	}
	if u.ID() != 1 || u.Str("username") != "alice" || !u.Bool("active") {
		t.Fatalf("user = %+v", u)
	}
	got, err := reg.Objects("User").Filter("id", u.ID()).Get()
	if err != nil {
		t.Fatal(err)
	}
	if got.Str("username") != "alice" {
		t.Fatalf("got = %+v", got)
	}
}

func TestGetNotFoundAndMultiple(t *testing.T) {
	reg := newTestRegistry(t)
	if _, err := reg.Objects("User").Filter("id", 99).Get(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	_, _ = reg.Insert("Profile", Fields{"user_id": 1, "bio": "a"})
	_, _ = reg.Insert("Profile", Fields{"user_id": 1, "bio": "b"})
	if _, err := reg.Objects("Profile").Filter("user_id", 1).Get(); !errors.Is(err, ErrMultiple) {
		t.Fatalf("err = %v", err)
	}
}

func TestFilterChainingAndOps(t *testing.T) {
	reg := newTestRegistry(t)
	for i := 1; i <= 5; i++ {
		_, err := reg.Insert("Profile", Fields{"user_id": i, "bio": "x"})
		if err != nil {
			t.Fatal(err)
		}
	}
	objs, err := reg.Objects("Profile").FilterOp("user_id", ">=", 2).FilterOp("user_id", "<", 5).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 {
		t.Fatalf("got %d objects", len(objs))
	}
}

func TestFilterIn(t *testing.T) {
	reg := newTestRegistry(t)
	for i := 1; i <= 5; i++ {
		_, _ = reg.Insert("Profile", Fields{"user_id": i})
	}
	objs, err := reg.Objects("Profile").FilterIn("user_id", 1, 3, 9).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("got %d objects", len(objs))
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	reg := newTestRegistry(t)
	base := time.Unix(10000, 0)
	for i := 0; i < 6; i++ {
		_, _ = reg.Insert("Profile", Fields{
			"user_id": 1, "bio": string(rune('a' + i)),
			"joined": base.Add(time.Duration(i) * time.Hour),
		})
	}
	objs, err := reg.Objects("Profile").Filter("user_id", 1).OrderBy("-joined").Limit(2).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 || objs[0].Str("bio") != "f" || objs[1].Str("bio") != "e" {
		t.Fatalf("objs = %v %v", objs[0].Str("bio"), objs[1].Str("bio"))
	}
	objs, err = reg.Objects("Profile").Filter("user_id", 1).OrderBy("joined").Offset(4).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 || objs[0].Str("bio") != "e" {
		t.Fatalf("offset objs wrong: %d", len(objs))
	}
}

func TestCount(t *testing.T) {
	reg := newTestRegistry(t)
	for i := 0; i < 7; i++ {
		_, _ = reg.Insert("Profile", Fields{"user_id": i % 2})
	}
	n, err := reg.Objects("Profile").Filter("user_id", 0).Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("count = %d", n)
	}
}

func TestUpdateDelete(t *testing.T) {
	reg := newTestRegistry(t)
	_, _ = reg.Insert("Profile", Fields{"user_id": 1, "bio": "old"})
	_, _ = reg.Insert("Profile", Fields{"user_id": 2, "bio": "old"})
	n, err := reg.Objects("Profile").Filter("user_id", 1).Update(Fields{"bio": "new"})
	if err != nil || n != 1 {
		t.Fatalf("update n=%d err=%v", n, err)
	}
	o, _ := reg.Objects("Profile").Filter("user_id", 1).Get()
	if o.Str("bio") != "new" {
		t.Fatalf("bio = %q", o.Str("bio"))
	}
	n, err = reg.Objects("Profile").Filter("user_id", 2).Delete()
	if err != nil || n != 1 {
		t.Fatalf("delete n=%d err=%v", n, err)
	}
	total, _ := reg.Objects("Profile").Count()
	if total != 1 {
		t.Fatalf("total = %d", total)
	}
}

func TestUniqueConstraintThroughORM(t *testing.T) {
	reg := newTestRegistry(t)
	if _, err := reg.Insert("User", Fields{"username": "bob"}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Insert("User", Fields{"username": "bob"}); err == nil {
		t.Fatal("duplicate username accepted")
	}
}

func TestViaJoin(t *testing.T) {
	reg := newTestRegistry(t)
	alice, _ := reg.Insert("User", Fields{"username": "alice"})
	gGo, _ := reg.Insert("Group", Fields{"name": "go"})
	gDB, _ := reg.Insert("Group", Fields{"name": "dbs"})
	_, _ = reg.Insert("Membership", Fields{"user_id": alice.ID(), "group_id": gGo.ID()})
	_, _ = reg.Insert("Membership", Fields{"user_id": alice.ID(), "group_id": gDB.ID()})

	groups, err := reg.Objects("Group").
		Via("Membership", "user_id", "group_id", "id").
		Filter("user_id", alice.ID()).
		OrderBy("name").
		All()
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || groups[0].Str("name") != "dbs" || groups[1].Str("name") != "go" {
		t.Fatalf("groups = %+v", groups)
	}
}

func TestUnknownModelErrors(t *testing.T) {
	reg := newTestRegistry(t)
	if _, err := reg.Objects("Nope").All(); err == nil {
		t.Fatal("unknown model succeeded")
	}
	if _, err := reg.Insert("Nope", Fields{}); err == nil {
		t.Fatal("insert into unknown model succeeded")
	}
}

// fakeInterceptor serves canned rows for Profile row queries.
type fakeInterceptor struct {
	rows     []sqldb.Row
	count    int64
	rowCalls int
	cntCalls int
}

func (f *fakeInterceptor) InterceptRows(d *QueryDescriptor) ([]sqldb.Row, bool, error) {
	f.rowCalls++
	if d.Model.Name == "Profile" {
		return f.rows, true, nil
	}
	return nil, false, nil
}

func (f *fakeInterceptor) InterceptCount(d *QueryDescriptor) (int64, bool, error) {
	f.cntCalls++
	if d.Model.Name == "Profile" {
		return f.count, true, nil
	}
	return 0, false, nil
}

func TestInterceptorServesRows(t *testing.T) {
	reg := newTestRegistry(t)
	_, _ = reg.Insert("Profile", Fields{"user_id": 42, "bio": "db"})
	fi := &fakeInterceptor{
		rows:  []sqldb.Row{{sqldb.I64(1), sqldb.I64(42), sqldb.Str("cached"), sqldb.NullOf(sqldb.TypeTime)}},
		count: 77,
	}
	reg.SetInterceptor(fi)

	o, err := reg.Objects("Profile").Filter("user_id", 42).Get()
	if err != nil {
		t.Fatal(err)
	}
	if o.Str("bio") != "cached" {
		t.Fatalf("bio = %q, want interceptor row", o.Str("bio"))
	}
	n, err := reg.Objects("Profile").Filter("user_id", 42).Count()
	if err != nil || n != 77 {
		t.Fatalf("count = %d err=%v", n, err)
	}

	// Unhandled model falls through to the database.
	if _, err := reg.Insert("User", Fields{"username": "x"}); err != nil {
		t.Fatal(err)
	}
	users, err := reg.Objects("User").Filter("username", "x").All()
	if err != nil || len(users) != 1 {
		t.Fatalf("fallthrough failed: %d, %v", len(users), err)
	}
}

func TestNoCacheBypassesInterceptor(t *testing.T) {
	reg := newTestRegistry(t)
	_, _ = reg.Insert("Profile", Fields{"user_id": 42, "bio": "db"})
	fi := &fakeInterceptor{rows: []sqldb.Row{{sqldb.I64(1), sqldb.I64(42), sqldb.Str("cached"), sqldb.NullOf(sqldb.TypeTime)}}}
	reg.SetInterceptor(fi)
	o, err := reg.Objects("Profile").Filter("user_id", 42).NoCache().Get()
	if err != nil {
		t.Fatal(err)
	}
	if o.Str("bio") != "db" {
		t.Fatalf("bio = %q, want database row", o.Str("bio"))
	}
}

func TestRowObjectRoundTrip(t *testing.T) {
	reg := newTestRegistry(t)
	m, _ := reg.Model("Profile")
	row := sqldb.Row{sqldb.I64(5), sqldb.I64(42), sqldb.Str("bio"), sqldb.Time(time.Unix(9, 0))}
	o := reg.RowToObject(m, row)
	back := reg.ObjectToRow(m, o)
	if len(back) != len(row) {
		t.Fatalf("len = %d", len(back))
	}
	for i := range row {
		if sqldb.Compare(row[i], back[i]) != 0 {
			t.Fatalf("col %d differs", i)
		}
	}
}

func TestEqFilterValues(t *testing.T) {
	d := &QueryDescriptor{Filters: []Filter{
		{Field: "user_id", Op: "=", Value: sqldb.I64(7)},
	}}
	vals, ok := d.EqFilterValues([]string{"user_id"})
	if !ok || vals[0].I != 7 {
		t.Fatalf("vals = %+v ok=%v", vals, ok)
	}
	if _, ok := d.EqFilterValues([]string{"other"}); ok {
		t.Fatal("matched wrong field")
	}
	d2 := &QueryDescriptor{Filters: []Filter{
		{Field: "user_id", Op: ">", Value: sqldb.I64(7)},
	}}
	if _, ok := d2.EqFilterValues([]string{"user_id"}); ok {
		t.Fatal("matched non-equality op")
	}
}
