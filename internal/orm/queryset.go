package orm

import (
	"fmt"
	"sort"
	"strings"

	"cachegenie/internal/sqldb"
)

// Filter is one normalized WHERE term: Field <Op> Value.
type Filter struct {
	Field string
	Op    string // "=", "!=", "<", "<=", ">", ">=", "in"
	Value sqldb.Value
	// List is set for Op == "in".
	List []sqldb.Value
}

// Order is one normalized ORDER BY term.
type Order struct {
	Field string
	Desc  bool
}

// Join describes a link-query traversal: the query's rows come from the
// model's table joined through another table. It models the Django pattern
// `Target.objects.filter(through__sourcefield=x)` that the paper's LinkQuery
// cache class captures (§3.1).
type Join struct {
	// ThroughModel is the relation table's model name.
	ThroughModel string
	// SourceField is the through-table column the filter applies to
	// (e.g. membership.user_id).
	SourceField string
	// JoinField is the through-table column joined to the target
	// (e.g. membership.group_id).
	JoinField string
	// TargetField is the target-model column being joined
	// (e.g. groups.id).
	TargetField string
}

// QueryKind distinguishes row queries from aggregate queries.
type QueryKind int

// Query kinds.
const (
	KindRows QueryKind = iota
	KindCount
)

// QueryDescriptor is the normalized form of a QuerySet execution offered to
// the interceptor. CacheGenie pattern-matches it against its cached-object
// specs.
type QueryDescriptor struct {
	Kind    QueryKind
	Model   *Model
	Filters []Filter
	Join    *Join
	Order   []Order
	Limit   int // -1 = none
}

// EqFilterValues returns the values of equality filters on exactly the given
// fields (in that order), or ok=false if the descriptor's filters are not
// exactly those equality terms.
func (d *QueryDescriptor) EqFilterValues(fields []string) ([]sqldb.Value, bool) {
	if len(d.Filters) != len(fields) {
		return nil, false
	}
	vals := make([]sqldb.Value, len(fields))
	for i, f := range fields {
		found := false
		for _, flt := range d.Filters {
			if flt.Field == f && flt.Op == "=" {
				vals[i] = flt.Value
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return vals, true
}

// Interceptor may satisfy reads from a cache. Implementations return
// handled=false to let the query proceed to the database.
type Interceptor interface {
	// InterceptRows may answer a row query.
	InterceptRows(d *QueryDescriptor) (rows []sqldb.Row, handled bool, err error)
	// InterceptCount may answer a count query.
	InterceptCount(d *QueryDescriptor) (n int64, handled bool, err error)
}

// QuerySet is a chainable, immutable-ish query builder. Methods return the
// receiver for chaining; build a fresh QuerySet per query (Django style).
type QuerySet struct {
	reg     *Registry
	model   *Model
	err     error
	filters []Filter
	join    *Join
	order   []Order
	limit   int
	offset  int
	// noCache bypasses the interceptor (the paper's manual opt-out for
	// queries needing strict consistency, §3.3).
	noCache bool
}

// Filter adds `field = value`.
func (q *QuerySet) Filter(field string, value any) *QuerySet {
	q.filters = append(q.filters, Filter{Field: field, Op: "=", Value: V(value)})
	return q
}

// FilterOp adds `field <op> value` with op in =, !=, <, <=, >, >=.
func (q *QuerySet) FilterOp(field, op string, value any) *QuerySet {
	switch op {
	case "=", "!=", "<", "<=", ">", ">=":
	default:
		q.err = fmt.Errorf("orm: bad filter op %q", op)
	}
	q.filters = append(q.filters, Filter{Field: field, Op: op, Value: V(value)})
	return q
}

// FilterIn adds `field IN (values...)`.
func (q *QuerySet) FilterIn(field string, values ...any) *QuerySet {
	list := make([]sqldb.Value, len(values))
	for i, v := range values {
		list[i] = V(v)
	}
	q.filters = append(q.filters, Filter{Field: field, Op: "in", List: list})
	return q
}

// Via routes the query through a relation table (link query). See Join.
func (q *QuerySet) Via(throughModel, sourceField, joinField, targetField string) *QuerySet {
	q.join = &Join{
		ThroughModel: throughModel,
		SourceField:  sourceField,
		JoinField:    joinField,
		TargetField:  targetField,
	}
	return q
}

// OrderBy adds ordering; prefix the field with "-" for descending
// (Django convention).
func (q *QuerySet) OrderBy(fields ...string) *QuerySet {
	for _, f := range fields {
		if strings.HasPrefix(f, "-") {
			q.order = append(q.order, Order{Field: f[1:], Desc: true})
		} else {
			q.order = append(q.order, Order{Field: f})
		}
	}
	return q
}

// Limit caps the result size.
func (q *QuerySet) Limit(n int) *QuerySet {
	q.limit = n
	return q
}

// Offset skips the first n results.
func (q *QuerySet) Offset(n int) *QuerySet {
	q.offset = n
	return q
}

// NoCache bypasses the interceptor for this query, forcing a database read
// (strict-consistency opt-out).
func (q *QuerySet) NoCache() *QuerySet {
	q.noCache = true
	return q
}

func (q *QuerySet) descriptor(kind QueryKind) *QueryDescriptor {
	return &QueryDescriptor{
		Kind:    kind,
		Model:   q.model,
		Filters: q.filters,
		Join:    q.join,
		Order:   q.order,
		Limit:   q.limit,
	}
}

// buildSelect renders the QuerySet to SQL and args.
func (q *QuerySet) buildSelect(countOnly bool) (string, []sqldb.Value, error) {
	var sb strings.Builder
	var args []sqldb.Value
	param := func(v sqldb.Value) string {
		args = append(args, v)
		return fmt.Sprintf("$%d", len(args))
	}
	sb.WriteString("SELECT ")
	if countOnly {
		sb.WriteString("COUNT(*)")
	} else {
		cols := q.model.FieldNames()
		for i, c := range cols {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(q.model.Table + "." + c)
		}
	}
	var throughTable string
	if q.join != nil {
		through, err := q.reg.Model(q.join.ThroughModel)
		if err != nil {
			return "", nil, err
		}
		throughTable = through.Table
		fmt.Fprintf(&sb, " FROM %s JOIN %s ON %s.%s = %s.%s",
			throughTable, q.model.Table,
			q.model.Table, q.join.TargetField,
			throughTable, q.join.JoinField)
	} else {
		sb.WriteString(" FROM " + q.model.Table)
	}
	if len(q.filters) > 0 {
		sb.WriteString(" WHERE ")
		for i, f := range q.filters {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			// Filters qualify to the through table when a join is active and
			// the field belongs to it; otherwise to the model table.
			qualifier := q.model.Table
			if q.join != nil && q.fieldOnThrough(f.Field, throughTable) {
				qualifier = throughTable
			}
			if f.Op == "in" {
				ph := make([]string, len(f.List))
				for j, v := range f.List {
					ph[j] = param(v)
				}
				fmt.Fprintf(&sb, "%s.%s IN (%s)", qualifier, f.Field, strings.Join(ph, ", "))
			} else {
				fmt.Fprintf(&sb, "%s.%s %s %s", qualifier, f.Field, f.Op, param(f.Value))
			}
		}
	}
	if !countOnly && len(q.order) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range q.order {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s.%s", q.model.Table, o.Field)
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if !countOnly && q.limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.limit)
	}
	if !countOnly && q.offset > 0 {
		fmt.Fprintf(&sb, " OFFSET %d", q.offset)
	}
	return sb.String(), args, nil
}

// fieldOnThrough reports whether field belongs to the join's through model.
func (q *QuerySet) fieldOnThrough(field, throughTable string) bool {
	through, err := q.reg.Model(q.join.ThroughModel)
	if err != nil {
		return false
	}
	_ = throughTable
	for _, f := range through.Fields {
		if f.Name == field {
			return true
		}
	}
	return field == "id"
}

// All executes the query and returns matching objects.
func (q *QuerySet) All() ([]Object, error) {
	if q.err != nil {
		return nil, q.err
	}
	if q.reg.interceptor != nil && !q.noCache && q.offset == 0 {
		rows, handled, err := q.reg.interceptor.InterceptRows(q.descriptor(KindRows))
		if err != nil {
			return nil, err
		}
		if handled {
			out := make([]Object, len(rows))
			for i, r := range rows {
				out[i] = q.reg.RowToObject(q.model, r)
			}
			return out, nil
		}
	}
	sql, args, err := q.buildSelect(false)
	if err != nil {
		return nil, err
	}
	rs, err := q.reg.conn.Query(sql, args...)
	if err != nil {
		return nil, err
	}
	out := make([]Object, len(rs.Rows))
	for i, r := range rs.Rows {
		out[i] = q.reg.RowToObject(q.model, r)
	}
	return out, nil
}

// Get executes the query and returns exactly one object.
func (q *QuerySet) Get() (Object, error) {
	objs, err := q.All()
	if err != nil {
		return nil, err
	}
	switch len(objs) {
	case 0:
		return nil, ErrNotFound
	case 1:
		return objs[0], nil
	default:
		return nil, ErrMultiple
	}
}

// Count executes the query as COUNT(*).
func (q *QuerySet) Count() (int64, error) {
	if q.err != nil {
		return 0, q.err
	}
	if q.reg.interceptor != nil && !q.noCache {
		n, handled, err := q.reg.interceptor.InterceptCount(q.descriptor(KindCount))
		if err != nil {
			return 0, err
		}
		if handled {
			return n, nil
		}
	}
	sql, args, err := q.buildSelect(true)
	if err != nil {
		return 0, err
	}
	rs, err := q.reg.conn.Query(sql, args...)
	if err != nil {
		return 0, err
	}
	return rs.Rows[0][0].I, nil
}

// Update applies the given fields to every matching row (writes always go
// to the database; triggers keep the cache consistent).
func (q *QuerySet) Update(fields Fields) (int, error) {
	if q.err != nil {
		return 0, q.err
	}
	if q.join != nil {
		return 0, fmt.Errorf("orm: Update through a join is not supported")
	}
	var sb strings.Builder
	var args []sqldb.Value
	fmt.Fprintf(&sb, "UPDATE %s SET ", q.model.Table)
	cols := make([]string, 0, len(fields))
	for k := range fields {
		cols = append(cols, k)
	}
	sort.Strings(cols)
	for i, c := range cols {
		if i > 0 {
			sb.WriteString(", ")
		}
		args = append(args, V(fields[c]))
		fmt.Fprintf(&sb, "%s = $%d", c, len(args))
	}
	where, whereArgs, err := q.whereClause(len(args))
	if err != nil {
		return 0, err
	}
	sb.WriteString(where)
	args = append(args, whereArgs...)
	res, err := q.reg.conn.Exec(sb.String(), args...)
	if err != nil {
		return 0, err
	}
	return res.RowsAffected, nil
}

// Delete removes every matching row.
func (q *QuerySet) Delete() (int, error) {
	if q.err != nil {
		return 0, q.err
	}
	if q.join != nil {
		return 0, fmt.Errorf("orm: Delete through a join is not supported")
	}
	where, args, err := q.whereClause(0)
	if err != nil {
		return 0, err
	}
	res, err := q.reg.conn.Exec("DELETE FROM "+q.model.Table+where, args...)
	if err != nil {
		return 0, err
	}
	return res.RowsAffected, nil
}

// whereClause renders the filters with parameters starting after
// paramOffset.
func (q *QuerySet) whereClause(paramOffset int) (string, []sqldb.Value, error) {
	if len(q.filters) == 0 {
		return "", nil, nil
	}
	var sb strings.Builder
	var args []sqldb.Value
	sb.WriteString(" WHERE ")
	for i, f := range q.filters {
		if i > 0 {
			sb.WriteString(" AND ")
		}
		if f.Op == "in" {
			ph := make([]string, len(f.List))
			for j, v := range f.List {
				args = append(args, v)
				ph[j] = fmt.Sprintf("$%d", paramOffset+len(args))
			}
			fmt.Fprintf(&sb, "%s IN (%s)", f.Field, strings.Join(ph, ", "))
		} else {
			args = append(args, f.Value)
			fmt.Fprintf(&sb, "%s %s $%d", f.Field, f.Op, paramOffset+len(args))
		}
	}
	return sb.String(), args, nil
}
