// Package orm is a Django-flavoured object-relational mapper over the sqldb
// engine: models are registered with field and relation metadata, reads go
// through chainable QuerySets (Filter/OrderBy/Limit/Count), and writes go
// through Insert/Update/Delete.
//
// The package's load-bearing feature for CacheGenie is the read-interception
// hook: every QuerySet execution first offers a normalized QueryDescriptor
// to the registered Interceptor, which may answer it from the cache instead
// of the database (paper §3.1 — "CacheGenie operates as a layer underneath
// the application, modifying the queries issued by the ORM system to the
// database, redirecting them to the cache when possible").
package orm

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"cachegenie/internal/sqldb"
)

// Conn abstracts the database connection; both *sqldb.DB (embedded) and the
// dbproto client (networked) satisfy it.
type Conn interface {
	Exec(sql string, args ...sqldb.Value) (sqldb.Result, error)
	Query(sql string, args ...sqldb.Value) (*sqldb.ResultSet, error)
}

// FieldDef declares one model field.
type FieldDef struct {
	Name    string
	Type    sqldb.Type
	NotNull bool
}

// ModelDef declares a model at registration time.
type ModelDef struct {
	// Name is the model's logical name (e.g. "Profile").
	Name string
	// Table is the backing table name (e.g. "profiles").
	Table string
	// Fields lists the model's fields; an integer "id" primary key is
	// implicit and must not be declared.
	Fields []FieldDef
	// Indexes lists secondary indexes, one column list per index.
	Indexes [][]string
	// Unique lists unique indexes.
	Unique [][]string
}

// Model is registered model metadata.
type Model struct {
	Name   string
	Table  string
	Fields []FieldDef
}

// FieldNames returns "id" plus the declared fields, in schema order.
func (m *Model) FieldNames() []string {
	out := make([]string, 0, len(m.Fields)+1)
	out = append(out, "id")
	for _, f := range m.Fields {
		out = append(out, f.Name)
	}
	return out
}

// Object is one materialized model instance: field name -> value.
type Object map[string]sqldb.Value

// ID returns the object's primary key.
func (o Object) ID() int64 { return o["id"].I }

// Int returns field as int64 (0 when NULL/absent).
func (o Object) Int(field string) int64 { return o[field].I }

// Str returns field as string.
func (o Object) Str(field string) string { return o[field].S }

// Bool returns field as bool.
func (o Object) Bool(field string) bool { return o[field].AsBool() }

// Time returns field as time.Time.
func (o Object) Time(field string) time.Time { return o[field].AsTime() }

// Fields is the write-side value bag for Insert/Update.
type Fields map[string]any

// V converts a Go value to a sqldb.Value.
func V(x any) sqldb.Value {
	switch v := x.(type) {
	case nil:
		return sqldb.Value{Null: true}
	case sqldb.Value:
		return v
	case int:
		return sqldb.I64(int64(v))
	case int32:
		return sqldb.I64(int64(v))
	case int64:
		return sqldb.I64(v)
	case float64:
		return sqldb.F64(v)
	case string:
		return sqldb.Str(v)
	case bool:
		return sqldb.Bool(v)
	case time.Time:
		return sqldb.Time(v)
	}
	panic(fmt.Sprintf("orm: unsupported value type %T", x))
}

// ErrNotFound is returned by Get when no row matches.
var ErrNotFound = errors.New("orm: object not found")

// ErrMultiple is returned by Get when more than one row matches.
var ErrMultiple = errors.New("orm: multiple objects returned")

// Registry holds models and the connection, and dispatches reads through
// the interceptor.
type Registry struct {
	conn        Conn
	models      map[string]*Model
	defs        map[string]*ModelDef
	interceptor Interceptor
}

// NewRegistry creates a registry over conn.
func NewRegistry(conn Conn) *Registry {
	return &Registry{
		conn:   conn,
		models: make(map[string]*Model),
		defs:   make(map[string]*ModelDef),
	}
}

// Conn returns the underlying connection.
func (r *Registry) Conn() Conn { return r.conn }

// SetInterceptor installs the read interceptor (CacheGenie). Passing nil
// removes it.
func (r *Registry) SetInterceptor(i Interceptor) { r.interceptor = i }

// Register adds a model definition.
func (r *Registry) Register(def *ModelDef) error {
	if def.Name == "" || def.Table == "" {
		return errors.New("orm: model needs Name and Table")
	}
	if _, dup := r.models[def.Name]; dup {
		return fmt.Errorf("orm: model %q already registered", def.Name)
	}
	for _, f := range def.Fields {
		if f.Name == "id" {
			return fmt.Errorf("orm: model %q declares reserved field id", def.Name)
		}
	}
	m := &Model{Name: def.Name, Table: def.Table, Fields: def.Fields}
	r.models[def.Name] = m
	r.defs[def.Name] = def
	return nil
}

// MustRegister is Register that panics on error (init-time convenience).
func (r *Registry) MustRegister(def *ModelDef) {
	if err := r.Register(def); err != nil {
		panic(err)
	}
}

// Model returns registered metadata by name.
func (r *Registry) Model(name string) (*Model, error) {
	m, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("orm: unknown model %q", name)
	}
	return m, nil
}

// ModelNames lists registered models, sorted.
func (r *Registry) ModelNames() []string {
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CreateTables issues CREATE TABLE / CREATE INDEX for every registered
// model, in registration-independent (sorted) order.
func (r *Registry) CreateTables() error {
	for _, name := range r.ModelNames() {
		def := r.defs[name]
		var cols []string
		for _, f := range def.Fields {
			c := f.Name + " " + f.Type.String()
			if f.NotNull {
				c += " NOT NULL"
			}
			cols = append(cols, c)
		}
		sql := fmt.Sprintf("CREATE TABLE %s (%s)", def.Table, strings.Join(cols, ", "))
		if _, err := r.conn.Exec(sql); err != nil {
			return fmt.Errorf("orm: creating %s: %w", def.Table, err)
		}
		mkIndex := func(cols []string, unique bool) error {
			kw := "INDEX"
			if unique {
				kw = "UNIQUE INDEX"
			}
			ixName := fmt.Sprintf("idx_%s_%s", def.Table, strings.Join(cols, "_"))
			sql := fmt.Sprintf("CREATE %s %s ON %s (%s)", kw, ixName, def.Table, strings.Join(cols, ", "))
			_, err := r.conn.Exec(sql)
			return err
		}
		for _, ix := range def.Indexes {
			if err := mkIndex(ix, false); err != nil {
				return err
			}
		}
		for _, ix := range def.Unique {
			if err := mkIndex(ix, true); err != nil {
				return err
			}
		}
	}
	return nil
}

// RowToObject maps a raw result row (in model schema order: id, fields...)
// to an Object.
func (r *Registry) RowToObject(m *Model, row sqldb.Row) Object {
	names := m.FieldNames()
	o := make(Object, len(names))
	for i, n := range names {
		if i < len(row) {
			o[n] = row[i]
		}
	}
	return o
}

// ObjectToRow converts an Object back to a raw row in schema order.
func (r *Registry) ObjectToRow(m *Model, o Object) sqldb.Row {
	names := m.FieldNames()
	row := make(sqldb.Row, len(names))
	for i, n := range names {
		row[i] = o[n]
	}
	return row
}

// Insert stores a new instance of model name and returns it (with id).
func (r *Registry) Insert(name string, fields Fields) (Object, error) {
	m, err := r.Model(name)
	if err != nil {
		return nil, err
	}
	cols := make([]string, 0, len(fields))
	for k := range fields {
		cols = append(cols, k)
	}
	sort.Strings(cols)
	placeholders := make([]string, len(cols))
	args := make([]sqldb.Value, len(cols))
	for i, c := range cols {
		placeholders[i] = fmt.Sprintf("$%d", i+1)
		args[i] = V(fields[c])
	}
	sql := fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s) RETURNING %s",
		m.Table, strings.Join(cols, ", "), strings.Join(placeholders, ", "),
		strings.Join(m.FieldNames(), ", "))
	res, err := r.conn.Exec(sql, args...)
	if err != nil {
		return nil, err
	}
	if len(res.Returning) != 1 {
		return nil, fmt.Errorf("orm: insert returned %d rows", len(res.Returning))
	}
	return r.RowToObject(m, res.Returning[0]), nil
}

// Objects starts a QuerySet for model name. Unknown models yield a QuerySet
// that errors on execution (keeps call sites chainable).
func (r *Registry) Objects(name string) *QuerySet {
	m, err := r.Model(name)
	return &QuerySet{reg: r, model: m, err: err, limit: -1}
}
