package orm

import (
	"fmt"
	"testing"

	"cachegenie/internal/sqldb"
)

func benchRegistry(b *testing.B) *Registry {
	b.Helper()
	db := sqldb.MustOpen(sqldb.Config{})
	reg := NewRegistry(db)
	reg.MustRegister(&ModelDef{
		Name:  "Profile",
		Table: "profiles",
		Fields: []FieldDef{
			{Name: "user_id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "bio", Type: sqldb.TypeText},
		},
		Indexes: [][]string{{"user_id"}},
	})
	if err := reg.CreateTables(); err != nil {
		b.Fatal(err)
	}
	for i := 1; i <= 1000; i++ {
		if _, err := reg.Insert("Profile", Fields{
			"user_id": i, "bio": fmt.Sprintf("bio-%d", i),
		}); err != nil {
			b.Fatal(err)
		}
	}
	return reg
}

func BenchmarkQuerySetGet(b *testing.B) {
	reg := benchRegistry(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Objects("Profile").Filter("user_id", i%1000+1).Get(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuerySetCount(b *testing.B) {
	reg := benchRegistry(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Objects("Profile").Filter("user_id", i%1000+1).Count(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	reg := benchRegistry(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Insert("Profile", Fields{
			"user_id": 1000 + i, "bio": "inserted",
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterceptedGet measures the interception fast path: a hit served
// without SQL generation or parsing.
func BenchmarkInterceptedGet(b *testing.B) {
	reg := benchRegistry(b)
	row := sqldb.Row{sqldb.I64(1), sqldb.I64(1), sqldb.Str("cached")}
	reg.SetInterceptor(staticInterceptor{rows: []sqldb.Row{row}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Objects("Profile").Filter("user_id", 1).Get(); err != nil {
			b.Fatal(err)
		}
	}
}

type staticInterceptor struct{ rows []sqldb.Row }

func (s staticInterceptor) InterceptRows(d *QueryDescriptor) ([]sqldb.Row, bool, error) {
	return s.rows, true, nil
}

func (s staticInterceptor) InterceptCount(d *QueryDescriptor) (int64, bool, error) {
	return int64(len(s.rows)), true, nil
}
