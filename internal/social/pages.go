package social

import (
	"errors"
	"fmt"
	"time"

	"cachegenie/internal/orm"
)

// PageType identifies one of the workload's page loads.
type PageType int

// Page types (paper §5.1: four actions plus login/logout bookkeeping).
const (
	PageLogin PageType = iota
	PageLogout
	PageLookupBM
	PageLookupFBM
	PageCreateBM
	PageAcceptFR
)

var pageNames = map[PageType]string{
	PageLogin: "Login", PageLogout: "Logout",
	PageLookupBM: "LookupBM", PageLookupFBM: "LookupFBM",
	PageCreateBM: "CreateBM", PageAcceptFR: "AcceptFR",
}

// String implements fmt.Stringer.
func (p PageType) String() string { return pageNames[p] }

// PageTypes lists all page types in display order.
func PageTypes() []PageType {
	return []PageType{PageLogin, PageLogout, PageLookupBM, PageLookupFBM, PageCreateBM, PageAcceptFR}
}

// detailFanout bounds how many list items a page renders details for
// (bookmark rows, save counts); real pages paginate the same way.
const detailFanout = 5

// pageChrome issues the queries every page shares: the signed-in user, her
// profile, and the header counters (friends, pending invitations, bookmarks)
// plus the latest wall posts widget. This mirrors how Pinax templates hit
// the ORM on every request.
func (a *App) pageChrome(uid int64) error {
	if _, err := a.Reg.Objects("User").Filter("id", uid).Get(); err != nil {
		return fmt.Errorf("chrome user %d: %w", uid, err)
	}
	if _, err := a.Reg.Objects("Profile").Filter("user_id", uid).Get(); err != nil && !errors.Is(err, orm.ErrNotFound) {
		return fmt.Errorf("chrome profile %d: %w", uid, err)
	}
	if _, err := a.Reg.Objects("Friendship").Filter("from_user_id", uid).Count(); err != nil {
		return err
	}
	if _, err := a.Reg.Objects("FriendInvitation").
		Filter("to_user_id", uid).Filter("status", InviteStatusPending).Count(); err != nil {
		return err
	}
	if _, err := a.Reg.Objects("BookmarkInstance").Filter("user_id", uid).Count(); err != nil {
		return err
	}
	if _, err := a.Reg.Objects("WallPost").Filter("user_id", uid).
		OrderBy("-date_posted").Limit(detailFanout).All(); err != nil {
		return err
	}
	return nil
}

// Login renders the login landing page and records the login (a write, so
// cached configurations pay trigger overhead here — Table 2 shows Login
// slower with caching than without).
func (a *App) Login(uid int64) error {
	if err := a.pageChrome(uid); err != nil {
		return err
	}
	// Pending invitations preview.
	if _, err := a.Reg.Objects("FriendInvitation").
		Filter("to_user_id", uid).Filter("status", InviteStatusPending).All(); err != nil {
		return err
	}
	_, err := a.Reg.Objects("User").Filter("id", uid).
		Update(orm.Fields{"last_login": a.clock()})
	return err
}

// Logout records the logout.
func (a *App) Logout(uid int64) error {
	if _, err := a.Reg.Objects("User").Filter("id", uid).Get(); err != nil {
		return err
	}
	_, err := a.Reg.Objects("User").Filter("id", uid).
		Update(orm.Fields{"last_login": a.clock()})
	return err
}

// LookupBM renders "my bookmarks": the user's saved bookmarks with the
// bookmark details and global save counts (read-only page).
func (a *App) LookupBM(uid int64) error {
	if err := a.pageChrome(uid); err != nil {
		return err
	}
	instances, err := a.Reg.Objects("BookmarkInstance").
		Filter("user_id", uid).OrderBy("-saved_at").Limit(TopKBookmarks).All()
	if err != nil {
		return err
	}
	for i, inst := range instances {
		if i >= detailFanout {
			break
		}
		bid := inst.Int("bookmark_id")
		if _, err := a.Reg.Objects("Bookmark").Filter("id", bid).Get(); err != nil && !errors.Is(err, orm.ErrNotFound) {
			return err
		}
		if _, err := a.Reg.Objects("BookmarkInstance").Filter("bookmark_id", bid).Count(); err != nil {
			return err
		}
	}
	return nil
}

// LookupFBM renders "my friends' bookmarks" — the paper's expensive join
// page, served by the friend_bookmarks LinkQuery when caching is on.
func (a *App) LookupFBM(uid int64) error {
	if err := a.pageChrome(uid); err != nil {
		return err
	}
	friendBMs, err := a.Reg.Objects("BookmarkInstance").
		Via("Friendship", "from_user_id", "to_user_id", "user_id").
		Filter("from_user_id", uid).All()
	if err != nil {
		return err
	}
	for i, inst := range friendBMs {
		if i >= detailFanout {
			break
		}
		bid := inst.Int("bookmark_id")
		if _, err := a.Reg.Objects("Bookmark").Filter("id", bid).Get(); err != nil && !errors.Is(err, orm.ErrNotFound) {
			return err
		}
	}
	return nil
}

// CreateBM saves a new bookmark instance for the user. seq must be unique
// across the run when newURL is true (the workload driver supplies it).
func (a *App) CreateBM(uid int64, seq int64, newURL bool) error {
	if err := a.pageChrome(uid); err != nil {
		return err
	}
	var bookmarkID int64
	if newURL {
		b, err := a.Reg.Insert("Bookmark", orm.Fields{
			"url":         fmt.Sprintf("https://example.com/u/%d/%d", uid, seq),
			"description": "user-added bookmark",
			"added_at":    a.clock(),
		})
		if err != nil {
			return err
		}
		bookmarkID = b.ID()
	} else {
		// Re-save an existing bookmark (the common Pinax flow): look it up
		// by URL, which is an uncached query pattern, then reference it.
		url := fmt.Sprintf("https://example.com/page/%d", 1+seq%97)
		b, err := a.Reg.Objects("Bookmark").Filter("url", url).Get()
		if errors.Is(err, orm.ErrNotFound) {
			b, err = a.Reg.Insert("Bookmark", orm.Fields{
				"url": url, "description": "re-added", "added_at": a.clock(),
			})
		}
		if err != nil {
			return err
		}
		bookmarkID = b.ID()
	}
	if _, err := a.Reg.Insert("BookmarkInstance", orm.Fields{
		"bookmark_id": bookmarkID,
		"user_id":     uid,
		"note":        "added from CreateBM",
		"saved_at":    a.clock(),
	}); err != nil {
		return err
	}
	// Post-save the page re-renders the user's bookmark list.
	_, err := a.Reg.Objects("BookmarkInstance").
		Filter("user_id", uid).OrderBy("-saved_at").Limit(TopKBookmarks).All()
	return err
}

// AcceptFR accepts the user's oldest pending friend invitation: the
// invitation flips to accepted and a symmetric friendship pair is inserted.
// To keep the invitation pool steady over long runs it also sends a new
// invitation onward (to the accepted friend's id + 1, wrapping).
func (a *App) AcceptFR(uid int64) error {
	if err := a.pageChrome(uid); err != nil {
		return err
	}
	invites, err := a.Reg.Objects("FriendInvitation").
		Filter("to_user_id", uid).Filter("status", InviteStatusPending).All()
	if err != nil {
		return err
	}
	if len(invites) == 0 {
		// Nothing to accept; the page still rendered (reads above).
		return nil
	}
	inv := invites[0]
	from := inv.Int("from_user_id")
	if _, err := a.Reg.Objects("FriendInvitation").Filter("id", inv.ID()).
		Update(orm.Fields{"status": InviteStatusAccepted}); err != nil {
		return err
	}
	now := a.clock()
	if _, err := a.Reg.Insert("Friendship", orm.Fields{
		"from_user_id": uid, "to_user_id": from, "since": now,
	}); err != nil {
		return err
	}
	if _, err := a.Reg.Insert("Friendship", orm.Fields{
		"from_user_id": from, "to_user_id": uid, "since": now,
	}); err != nil {
		return err
	}
	if a.NumUsers > 0 {
		next := from%int64(a.NumUsers) + 1
		if next != uid {
			if _, err := a.Reg.Insert("FriendInvitation", orm.Fields{
				"from_user_id": uid, "to_user_id": next,
				"message": "friend of a friend", "status": InviteStatusPending,
				"sent_at": now,
			}); err != nil {
				return err
			}
		}
	}
	// Re-render the friends list.
	if _, err := a.Reg.Objects("Friendship").Filter("from_user_id", uid).All(); err != nil {
		return err
	}
	_, err = a.Reg.Objects("Friendship").Filter("from_user_id", uid).Count()
	return err
}

// RunPage dispatches a page load by type.
func (a *App) RunPage(p PageType, uid int64, seq int64) error {
	switch p {
	case PageLogin:
		return a.Login(uid)
	case PageLogout:
		return a.Logout(uid)
	case PageLookupBM:
		return a.LookupBM(uid)
	case PageLookupFBM:
		return a.LookupFBM(uid)
	case PageCreateBM:
		return a.CreateBM(uid, seq, seq%5 == 0)
	case PageAcceptFR:
		return a.AcceptFR(uid)
	}
	return fmt.Errorf("social: unknown page type %d", int(p))
}

// SetClock overrides the app's time source (tests).
func (a *App) SetClock(fn func() time.Time) { a.clock = fn }
