// Package social is the evaluation application: a Pinax-style social
// networking suite (profiles, friends, bookmarks, wall posts) ported to
// CacheGenie, mirroring the applications the paper drives in §5. It defines
// the schema, the 14 cached objects of the port (§5.2), seeding, and the
// four user actions the workload exercises: LookupBM, LookupFBM, CreateBM
// and AcceptFR, plus Login/Logout.
package social

import (
	"fmt"
	"math/rand"
	"time"

	"cachegenie/internal/core"
	"cachegenie/internal/orm"
	"cachegenie/internal/sqldb"
)

// Invitation status values.
const (
	InviteStatusPending  = "pending"
	InviteStatusAccepted = "accepted"
)

// RegisterModels declares the social schema on reg.
func RegisterModels(reg *orm.Registry) error {
	defs := []*orm.ModelDef{
		{
			Name:  "User",
			Table: "auth_user",
			Fields: []orm.FieldDef{
				{Name: "username", Type: sqldb.TypeText, NotNull: true},
				{Name: "active", Type: sqldb.TypeBool},
				{Name: "last_login", Type: sqldb.TypeTime},
			},
			Unique: [][]string{{"username"}},
		},
		{
			Name:  "Profile",
			Table: "profiles",
			Fields: []orm.FieldDef{
				{Name: "user_id", Type: sqldb.TypeInt, NotNull: true},
				{Name: "name", Type: sqldb.TypeText},
				{Name: "about", Type: sqldb.TypeText},
				{Name: "location", Type: sqldb.TypeText},
				{Name: "website", Type: sqldb.TypeText},
			},
			Unique: [][]string{{"user_id"}},
		},
		{
			Name:  "Friendship",
			Table: "friends",
			Fields: []orm.FieldDef{
				{Name: "from_user_id", Type: sqldb.TypeInt, NotNull: true},
				{Name: "to_user_id", Type: sqldb.TypeInt, NotNull: true},
				{Name: "since", Type: sqldb.TypeTime},
			},
			Indexes: [][]string{{"from_user_id"}, {"to_user_id"}},
		},
		{
			Name:  "FriendInvitation",
			Table: "friend_invitations",
			Fields: []orm.FieldDef{
				{Name: "from_user_id", Type: sqldb.TypeInt, NotNull: true},
				{Name: "to_user_id", Type: sqldb.TypeInt, NotNull: true},
				{Name: "message", Type: sqldb.TypeText},
				{Name: "status", Type: sqldb.TypeText, NotNull: true},
				{Name: "sent_at", Type: sqldb.TypeTime},
			},
			Indexes: [][]string{{"to_user_id", "status"}, {"from_user_id"}},
		},
		{
			Name:  "Bookmark",
			Table: "bookmarks",
			Fields: []orm.FieldDef{
				{Name: "url", Type: sqldb.TypeText, NotNull: true},
				{Name: "description", Type: sqldb.TypeText},
				{Name: "added_at", Type: sqldb.TypeTime},
			},
			Unique: [][]string{{"url"}},
		},
		{
			Name:  "BookmarkInstance",
			Table: "bookmark_instances",
			Fields: []orm.FieldDef{
				{Name: "bookmark_id", Type: sqldb.TypeInt, NotNull: true},
				{Name: "user_id", Type: sqldb.TypeInt, NotNull: true},
				{Name: "note", Type: sqldb.TypeText},
				{Name: "saved_at", Type: sqldb.TypeTime},
			},
			Indexes: [][]string{{"user_id"}, {"bookmark_id"}, {"user_id", "saved_at"}},
		},
		{
			Name:  "WallPost",
			Table: "wall",
			Fields: []orm.FieldDef{
				{Name: "user_id", Type: sqldb.TypeInt, NotNull: true},
				{Name: "sender_id", Type: sqldb.TypeInt, NotNull: true},
				{Name: "content", Type: sqldb.TypeText},
				{Name: "date_posted", Type: sqldb.TypeTime},
			},
			Indexes: [][]string{{"user_id"}, {"user_id", "date_posted"}},
		},
	}
	for _, d := range defs {
		if err := reg.Register(d); err != nil {
			return err
		}
	}
	return nil
}

// TopKWallPosts is the K of the latest-wall-posts cached object (paper's
// example uses 20).
const TopKWallPosts = 20

// TopKBookmarks is the K of the latest-bookmarks cached object.
const TopKBookmarks = 10

// CachedObjectSpecs returns the 14 cached-object declarations of the Pinax
// port (paper §5.2: "we added 14 cached objects"), parameterized by the
// consistency strategy under test.
func CachedObjectSpecs(strategy core.Strategy) []core.Spec {
	return []core.Spec{
		{Name: "user_by_username", Class: core.FeatureQuery, MainModel: "User",
			WhereFields: []string{"username"}, Strategy: strategy},
		{Name: "user_by_id", Class: core.FeatureQuery, MainModel: "User",
			WhereFields: []string{"id"}, Strategy: strategy},
		{Name: "profile_of_user", Class: core.FeatureQuery, MainModel: "Profile",
			WhereFields: []string{"user_id"}, Strategy: strategy},
		{Name: "friends_of_user", Class: core.FeatureQuery, MainModel: "Friendship",
			WhereFields: []string{"from_user_id"}, Strategy: strategy},
		{Name: "friend_count", Class: core.CountQuery, MainModel: "Friendship",
			WhereFields: []string{"from_user_id"}, Strategy: strategy},
		{Name: "pending_invites", Class: core.FeatureQuery, MainModel: "FriendInvitation",
			WhereFields: []string{"to_user_id", "status"}, Strategy: strategy},
		{Name: "pending_invite_count", Class: core.CountQuery, MainModel: "FriendInvitation",
			WhereFields: []string{"to_user_id", "status"}, Strategy: strategy},
		{Name: "bookmarks_of_user", Class: core.FeatureQuery, MainModel: "BookmarkInstance",
			WhereFields: []string{"user_id"}, Strategy: strategy},
		{Name: "bookmark_count_of_user", Class: core.CountQuery, MainModel: "BookmarkInstance",
			WhereFields: []string{"user_id"}, Strategy: strategy},
		{Name: "bookmark_by_id", Class: core.FeatureQuery, MainModel: "Bookmark",
			WhereFields: []string{"id"}, Strategy: strategy},
		{Name: "bookmark_save_count", Class: core.CountQuery, MainModel: "BookmarkInstance",
			WhereFields: []string{"bookmark_id"}, Strategy: strategy},
		{Name: "friend_bookmarks", Class: core.LinkQuery, MainModel: "BookmarkInstance",
			WhereFields: []string{"from_user_id"}, Strategy: strategy,
			Link: &core.Link{
				ThroughModel: "Friendship", SourceField: "from_user_id",
				JoinField: "to_user_id", TargetField: "user_id",
			}},
		{Name: "latest_wall_posts", Class: core.TopKQuery, MainModel: "WallPost",
			WhereFields: []string{"user_id"}, Strategy: strategy,
			SortField: "date_posted", SortDesc: true, K: TopKWallPosts},
		{Name: "latest_user_bookmarks", Class: core.TopKQuery, MainModel: "BookmarkInstance",
			WhereFields: []string{"user_id"}, Strategy: strategy,
			SortField: "saved_at", SortDesc: true, K: TopKBookmarks},
	}
}

// App binds the social application to a stack.
type App struct {
	Reg   *orm.Registry
	Genie *core.Genie
	// Objects holds the declared cached objects by name (empty when the
	// stack runs without caching).
	Objects map[string]*core.CachedObject
	// NumUsers is set by Seed.
	NumUsers int
	// clock provides monotonic-ish timestamps for posts and bookmarks.
	clock func() time.Time
}

// NewApp wires the application. If genie is non-nil, the 14 cached objects
// are declared with the given strategy (this is the entire porting effort —
// the page handlers below are identical with and without CacheGenie, which
// is the paper's §5.2 point).
func NewApp(reg *orm.Registry, genie *core.Genie, strategy core.Strategy) (*App, error) {
	app := &App{
		Reg:     reg,
		Genie:   genie,
		Objects: map[string]*core.CachedObject{},
		clock:   time.Now,
	}
	if genie != nil {
		for _, spec := range CachedObjectSpecs(strategy) {
			co, err := genie.Cacheable(spec)
			if err != nil {
				return nil, fmt.Errorf("social: declaring %s: %w", spec.Name, err)
			}
			app.Objects[spec.Name] = co
		}
	}
	return app, nil
}

// SeedConfig scales the initial dataset (the paper's: 1M users, 1000 unique
// bookmarks, 1-20 instances per bookmark... scaled down by default).
type SeedConfig struct {
	Users           int
	UniqueBookmarks int
	MaxBookmarksPer int // per user
	MaxFriendsPer   int
	MaxInvitesPer   int
	MaxWallPosts    int
}

// DefaultSeed is a laptop-scale dataset preserving the paper's ratios.
func DefaultSeed() SeedConfig {
	return SeedConfig{
		Users:           400,
		UniqueBookmarks: 100,
		MaxBookmarksPer: 8,
		MaxFriendsPer:   10,
		MaxInvitesPer:   6,
		MaxWallPosts:    12,
	}
}

// Seed populates the database. It is deterministic for a given rng seed.
func (a *App) Seed(cfg SeedConfig, rng *rand.Rand) error {
	base := time.Date(2011, 12, 1, 0, 0, 0, 0, time.UTC)
	tick := 0
	next := func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Second)
	}
	for b := 1; b <= cfg.UniqueBookmarks; b++ {
		_, err := a.Reg.Insert("Bookmark", orm.Fields{
			"url":         fmt.Sprintf("https://example.com/page/%d", b),
			"description": fmt.Sprintf("bookmark %d", b),
			"added_at":    next(),
		})
		if err != nil {
			return err
		}
	}
	for u := 1; u <= cfg.Users; u++ {
		if _, err := a.Reg.Insert("User", orm.Fields{
			"username": fmt.Sprintf("user%d", u), "active": true, "last_login": next(),
		}); err != nil {
			return err
		}
		if _, err := a.Reg.Insert("Profile", orm.Fields{
			"user_id": u, "name": fmt.Sprintf("User %d", u),
			"about": "about me", "location": "Cambridge, MA",
			"website": fmt.Sprintf("https://example.org/~user%d", u),
		}); err != nil {
			return err
		}
		for i, n := 0, 1+rng.Intn(cfg.MaxBookmarksPer); i < n; i++ {
			if _, err := a.Reg.Insert("BookmarkInstance", orm.Fields{
				"bookmark_id": 1 + rng.Intn(cfg.UniqueBookmarks),
				"user_id":     u,
				"note":        "saved",
				"saved_at":    next(),
			}); err != nil {
				return err
			}
		}
		for i, n := 0, 1+rng.Intn(cfg.MaxWallPosts); i < n; i++ {
			if _, err := a.Reg.Insert("WallPost", orm.Fields{
				"user_id": u, "sender_id": 1 + rng.Intn(cfg.Users),
				"content": fmt.Sprintf("post %d for %d", i, u), "date_posted": next(),
			}); err != nil {
				return err
			}
		}
	}
	// Friendships (symmetric pairs) and pending invitations need the full
	// user range to exist first.
	for u := 1; u <= cfg.Users; u++ {
		for i, n := 0, 1+rng.Intn(cfg.MaxFriendsPer); i < n; i++ {
			v := 1 + rng.Intn(cfg.Users)
			if v == u {
				continue
			}
			ts := next()
			if _, err := a.Reg.Insert("Friendship", orm.Fields{
				"from_user_id": u, "to_user_id": v, "since": ts,
			}); err != nil {
				return err
			}
			if _, err := a.Reg.Insert("Friendship", orm.Fields{
				"from_user_id": v, "to_user_id": u, "since": ts,
			}); err != nil {
				return err
			}
		}
		for i, n := 0, 1+rng.Intn(cfg.MaxInvitesPer); i < n; i++ {
			v := 1 + rng.Intn(cfg.Users)
			if v == u {
				continue
			}
			if _, err := a.Reg.Insert("FriendInvitation", orm.Fields{
				"from_user_id": v, "to_user_id": u,
				"message": "be my friend", "status": InviteStatusPending,
				"sent_at": next(),
			}); err != nil {
				return err
			}
		}
	}
	a.NumUsers = cfg.Users
	return nil
}
