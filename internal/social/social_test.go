package social

import (
	"math/rand"
	"testing"
	"time"

	"cachegenie/internal/core"
	"cachegenie/internal/kvcache"
	"cachegenie/internal/orm"
	"cachegenie/internal/sqldb"
)

// newApp builds a seeded app; cached selects whether CacheGenie is wired in.
func newApp(t testing.TB, cached bool, strategy core.Strategy) (*App, *sqldb.DB, *kvcache.Store) {
	t.Helper()
	db := sqldb.MustOpen(sqldb.Config{})
	reg := orm.NewRegistry(db)
	if err := RegisterModels(reg); err != nil {
		t.Fatal(err)
	}
	if err := reg.CreateTables(); err != nil {
		t.Fatal(err)
	}
	cache := kvcache.New(0)
	var g *core.Genie
	if cached {
		var err error
		g, err = core.New(core.Config{Registry: reg, DB: db, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
	}
	app, err := NewApp(reg, g, strategy)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SeedConfig{
		Users: 30, UniqueBookmarks: 20, MaxBookmarksPer: 4,
		MaxFriendsPer: 4, MaxInvitesPer: 3, MaxWallPosts: 5,
	}
	if err := app.Seed(cfg, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	return app, db, cache
}

func TestSeedPopulatesAllTables(t *testing.T) {
	app, db, _ := newApp(t, false, core.UpdateInPlace)
	for _, table := range []string{"auth_user", "profiles", "friends", "friend_invitations",
		"bookmarks", "bookmark_instances", "wall"} {
		n, err := db.NumRows(table)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Errorf("table %s is empty after seed", table)
		}
	}
	if app.NumUsers != 30 {
		t.Fatalf("NumUsers = %d", app.NumUsers)
	}
}

func TestFourteenCachedObjects(t *testing.T) {
	app, _, _ := newApp(t, true, core.UpdateInPlace)
	if len(app.Objects) != 14 {
		t.Fatalf("cached objects = %d, want 14 (paper §5.2)", len(app.Objects))
	}
	// Paper: 48 triggers for the port. Our 14 objects: 11 non-link x 3 +
	// 1 link x 6 + ... count them and pin the number.
	total := 0
	for _, co := range app.Objects {
		total += len(co.Triggers())
	}
	if total != 45 {
		t.Fatalf("generated triggers = %d, want 45", total)
	}
}

func TestAllPagesRunWithoutCache(t *testing.T) {
	app, _, _ := newApp(t, false, core.UpdateInPlace)
	for _, p := range PageTypes() {
		for uid := int64(1); uid <= 5; uid++ {
			if err := app.RunPage(p, uid, uid*100); err != nil {
				t.Fatalf("page %s uid %d: %v", p, uid, err)
			}
		}
	}
}

func TestAllPagesRunWithCache(t *testing.T) {
	for _, strategy := range []core.Strategy{core.UpdateInPlace, core.Invalidate} {
		t.Run(strategy.String(), func(t *testing.T) {
			app, _, _ := newApp(t, true, strategy)
			for round := 0; round < 2; round++ {
				for _, p := range PageTypes() {
					for uid := int64(1); uid <= 5; uid++ {
						if err := app.RunPage(p, uid, int64(round*1000)+uid*100); err != nil {
							t.Fatalf("round %d page %s uid %d: %v", round, p, uid, err)
						}
					}
				}
			}
		})
	}
}

func TestCachingReducesDatabaseSelects(t *testing.T) {
	appNC, dbNC, _ := newApp(t, false, core.UpdateInPlace)
	appC, dbC, _ := newApp(t, true, core.UpdateInPlace)

	run := func(app *App) {
		for rep := 0; rep < 3; rep++ {
			for uid := int64(1); uid <= 10; uid++ {
				if err := app.LookupBM(uid); err != nil {
					panic(err)
				}
				if err := app.LookupFBM(uid); err != nil {
					panic(err)
				}
			}
		}
	}
	ncBefore := dbNC.Stats().Selects
	run(appNC)
	ncSelects := dbNC.Stats().Selects - ncBefore

	cBefore := dbC.Stats().Selects
	run(appC)
	cSelects := dbC.Stats().Selects - cBefore

	if cSelects*2 >= ncSelects {
		t.Fatalf("cached run used %d SELECTs vs %d uncached; expected at least 2x reduction",
			cSelects, ncSelects)
	}
}

// TestPagesConsistentWithAndWithoutCache runs the same page sequence on a
// cached and an uncached stack seeded identically and cross-checks the
// observable aggregates.
func TestPagesConsistentWithAndWithoutCache(t *testing.T) {
	appNC, _, _ := newApp(t, false, core.UpdateInPlace)
	appC, _, _ := newApp(t, true, core.UpdateInPlace)

	seq := int64(0)
	for rep := 0; rep < 3; rep++ {
		for uid := int64(1); uid <= 8; uid++ {
			seq++
			for _, app := range []*App{appNC, appC} {
				if err := app.CreateBM(uid, seq, seq%3 == 0); err != nil {
					t.Fatal(err)
				}
				if err := app.AcceptFR(uid); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for uid := int64(1); uid <= 8; uid++ {
		nNC, _ := appNC.Reg.Objects("BookmarkInstance").Filter("user_id", uid).Count()
		nC, _ := appC.Reg.Objects("BookmarkInstance").Filter("user_id", uid).Count()
		if nNC != nC {
			t.Fatalf("uid %d bookmark counts diverge: nocache=%d cached=%d", uid, nNC, nC)
		}
		fNC, _ := appNC.Reg.Objects("Friendship").Filter("from_user_id", uid).Count()
		fC, _ := appC.Reg.Objects("Friendship").Filter("from_user_id", uid).Count()
		if fNC != fC {
			t.Fatalf("uid %d friend counts diverge: nocache=%d cached=%d", uid, fNC, fC)
		}
	}
}

func TestAcceptFRFlipsInvitation(t *testing.T) {
	app, _, _ := newApp(t, true, core.UpdateInPlace)
	uid := int64(3)
	before, err := app.Reg.Objects("FriendInvitation").
		Filter("to_user_id", uid).Filter("status", InviteStatusPending).Count()
	if err != nil {
		t.Fatal(err)
	}
	if before == 0 {
		t.Skip("seed gave user 3 no pending invitations")
	}
	friendsBefore, _ := app.Reg.Objects("Friendship").Filter("from_user_id", uid).Count()
	if err := app.AcceptFR(uid); err != nil {
		t.Fatal(err)
	}
	after, _ := app.Reg.Objects("FriendInvitation").
		Filter("to_user_id", uid).Filter("status", InviteStatusPending).Count()
	if after != before-1 {
		t.Fatalf("pending invites %d -> %d, want -1", before, after)
	}
	friendsAfter, _ := app.Reg.Objects("Friendship").Filter("from_user_id", uid).Count()
	if friendsAfter != friendsBefore+1 {
		t.Fatalf("friends %d -> %d, want +1", friendsBefore, friendsAfter)
	}
}

func TestProgrammerEffortReport(t *testing.T) {
	app, _, _ := newApp(t, true, core.UpdateInPlace)
	objects := 0
	triggers := 0
	lines := 0
	for _, co := range app.Objects {
		objects++
		triggers += len(co.Triggers())
		lines += co.TriggerSourceLines()
	}
	t.Logf("programmer effort: %d cached objects, %d generated triggers, %d generated lines",
		objects, triggers, lines)
	if objects != 14 {
		t.Fatalf("objects = %d, want 14", objects)
	}
	// The paper reports 48 triggers / ~1720 lines for its 14 objects; our
	// class mix yields 45 triggers and the source generator should land in
	// the same order of magnitude.
	if triggers != 45 {
		t.Fatalf("triggers = %d", triggers)
	}
	if lines < 600 {
		t.Fatalf("generated lines = %d; generator too terse to be plausible", lines)
	}
}

func TestClockInjection(t *testing.T) {
	app, _, _ := newApp(t, false, core.UpdateInPlace)
	fixed := time.Date(2011, 12, 25, 0, 0, 0, 0, time.UTC)
	app.SetClock(func() time.Time { return fixed })
	if err := app.CreateBM(1, 999999, true); err != nil {
		t.Fatal(err)
	}
	insts, _ := app.Reg.Objects("BookmarkInstance").
		Filter("user_id", 1).OrderBy("-saved_at").Limit(1).All()
	if len(insts) != 1 || !insts[0].Time("saved_at").Equal(fixed) {
		t.Fatalf("saved_at = %v", insts[0].Time("saved_at"))
	}
}
