package workload

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cachegenie/internal/cacheproto"
	"cachegenie/internal/kvcache"
	"cachegenie/internal/social"
)

func TestBuildStackRemoteTransport(t *testing.T) {
	opt := tinyOpts()
	st, err := BuildStack(StackConfig{
		Mode:            ModeUpdate,
		Seed:            opt.Seed,
		RngSeed:         42,
		LatencyScale:    opt.LatencyScale,
		BufferPoolPages: expPoolPages,
		DiskWidth:       2,
		CacheNodes:      3,
		Transport:       TransportRemote,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if len(st.Servers) != 3 || len(st.Pools) != 3 || len(st.Stores) != 3 {
		t.Fatalf("remote stack shape: %d servers, %d pools, %d stores",
			len(st.Servers), len(st.Pools), len(st.Stores))
	}
	addrs := st.NodeAddrs()
	if len(addrs) != 3 {
		t.Fatalf("addrs = %v", addrs)
	}
	for _, a := range addrs {
		if !strings.HasPrefix(a, "127.0.0.1:") {
			t.Fatalf("node not on loopback: %q", a)
		}
	}
	rep, err := Run(st, RunConfig{Clients: 3, Sessions: 2, PagesPerSession: 5, WritePct: 20, ZipfA: 2.0, WarmupSessions: 3, RngSeed: 9})
	if err != nil || rep.Errors > 0 {
		t.Fatalf("rep=%+v err=%v", rep, err)
	}
	// The cache traffic really crossed TCP: the server-side stores saw sets,
	// and the pools dialed at least one connection each... or served no keys
	// (ring imbalance at tiny scale), so assert on the aggregate.
	cs := st.CacheStats()
	if cs.Sets == 0 {
		t.Fatal("no cache traffic reached the remote nodes")
	}
	dials := int64(0)
	for _, p := range st.Pools {
		dials += p.Stats().Dials
	}
	if dials == 0 {
		t.Fatal("pools never dialed")
	}
}

func TestRemoteStackAsyncBusDrains(t *testing.T) {
	opt := tinyOpts()
	st, err := BuildStackForExp7(opt, ModeUpdate, TransportRemote, true)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rep, err := Run(st, RunConfig{Clients: 3, Sessions: 2, PagesPerSession: 6, WritePct: 40, ZipfA: 2.0, WarmupSessions: 3, RngSeed: 11})
	if err != nil || rep.Errors > 0 {
		t.Fatalf("rep=%+v err=%v", rep, err)
	}
	bs := st.Genie.InvStats()
	if bs.Enqueued == 0 || bs.Applied+bs.Coalesced != bs.Enqueued {
		t.Fatalf("bus did not drain over TCP: %+v", bs)
	}
	if rep.ByPage[social.PageCreateBM].P99 < rep.ByPage[social.PageCreateBM].P50 {
		t.Fatalf("percentiles inverted: %+v", rep.ByPage[social.PageCreateBM])
	}
}

func TestExp7RemoteClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("four full stack runs, two over TCP")
	}
	pts, err := Exp7(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	seen := map[string]bool{}
	for _, p := range pts {
		seen[p.Transport.String()] = true
		if p.Throughput <= 0 {
			t.Fatalf("%+v", p)
		}
		if p.Async {
			if p.Bus.Enqueued == 0 {
				t.Fatalf("async point saw no bus traffic: %+v", p)
			}
			if p.Bus.Applied+p.Bus.Coalesced != p.Bus.Enqueued {
				t.Fatalf("bus did not drain fully: %+v", p.Bus)
			}
		} else if p.Bus.Enqueued != 0 {
			t.Fatalf("sync point reports bus traffic: %+v", p)
		}
	}
	if !seen["in-process"] || !seen["remote-tcp"] {
		t.Fatalf("transports covered: %v", seen)
	}
}

func TestWriteExp7JSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_exp7.json")
	pts := []Exp7Point{
		{Transport: TransportInProcess, Async: false, Throughput: 123.4},
		{Transport: TransportRemote, Async: true, Throughput: 99.9},
	}
	if err := WriteExp7JSON(path, pts); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"exp7-remote-cluster"`, `"in-process"`, `"remote-tcp"`, `"throughput_pages_per_sec": 123.4`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("artifact missing %s:\n%s", want, data)
		}
	}
}

func TestParseTransport(t *testing.T) {
	for s, want := range map[string]CacheTransport{
		"": TransportInProcess, "inprocess": TransportInProcess, "local": TransportInProcess,
		"remote": TransportRemote, "tcp": TransportRemote,
	} {
		got, err := ParseTransport(s)
		if err != nil || got != want {
			t.Fatalf("ParseTransport(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseTransport("carrier-pigeon"); err == nil {
		t.Fatal("bad transport accepted")
	}
}

func TestRemoteStackAgainstExternalAddrs(t *testing.T) {
	// Launch a "foreign" cache tier the way cmd/geniecache -nodes does,
	// then point a stack at it via CacheAddrs: the stack must use it (and
	// flush it first) rather than launching its own servers.
	opt := tinyOpts()
	var addrs []string
	var extStores []*kvcache.Store
	for i := 0; i < 2; i++ {
		store := kvcache.New(0)
		srv := cacheproto.NewServer(store)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		extStores = append(extStores, store)
		addrs = append(addrs, addr)
	}
	// Pollute the external nodes to prove the new stack flushes them.
	extStores[0].Set("stale", []byte("junk"), 0)

	st, err := BuildStack(StackConfig{
		Mode: ModeUpdate, Seed: opt.Seed, RngSeed: 42, LatencyScale: opt.LatencyScale,
		BufferPoolPages: expPoolPages, DiskWidth: 2,
		Transport: TransportRemote, CacheAddrs: addrs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if len(st.Servers) != 0 || len(st.Stores) != 0 {
		t.Fatalf("external stack launched its own nodes: %d servers, %d stores", len(st.Servers), len(st.Stores))
	}
	if _, ok := extStores[0].Get("stale"); ok {
		t.Fatal("external nodes not flushed at assembly")
	}
	rep, err := Run(st, RunConfig{Clients: 2, Sessions: 2, PagesPerSession: 4, WritePct: 20, ZipfA: 2.0, RngSeed: 5})
	if err != nil || rep.Errors > 0 {
		t.Fatalf("rep=%+v err=%v", rep, err)
	}
	// CacheStats falls back to the wire-level stats command.
	if cs := st.CacheStats(); cs.Sets == 0 {
		t.Fatalf("wire-level stats empty: %+v", cs)
	}
}
