package workload

import (
	"fmt"
	"math/rand"
	"time"

	"cachegenie/internal/cacheproto"
	"cachegenie/internal/cluster"
	"cachegenie/internal/core"
	"cachegenie/internal/hotkey"
	"cachegenie/internal/kvcache"
	"cachegenie/internal/latency"
	"cachegenie/internal/obs"
	"cachegenie/internal/orm"
	"cachegenie/internal/social"
	"cachegenie/internal/sqldb"
)

// Mode selects the caching configuration under test (paper §5: NoCache,
// Invalidate, Update).
type Mode int

// Modes.
const (
	ModeNoCache Mode = iota
	ModeInvalidate
	ModeUpdate
)

var modeNames = map[Mode]string{
	ModeNoCache: "NoCache", ModeInvalidate: "Invalidate", ModeUpdate: "Update",
}

// String implements fmt.Stringer.
func (m Mode) String() string { return modeNames[m] }

// CacheTransport selects how the stack reaches its cache nodes.
type CacheTransport int

// Transports.
const (
	// TransportInProcess wires the cache nodes as in-process kvcache.Stores;
	// network cost, if any, comes from the injected latency model. This is
	// the simulation configuration every experiment ran before Experiment 7.
	TransportInProcess CacheTransport = iota
	// TransportRemote runs one real cacheproto.Server per cache node on
	// loopback TCP (or connects to externally launched geniecache nodes via
	// CacheAddrs) and reaches them through connection-pooled cacheproto
	// clients, so every cache operation crosses a real mop/TCP round trip —
	// the paper's actual deployment shape. Call Stack.Close when done.
	TransportRemote
)

var transportNames = map[CacheTransport]string{
	TransportInProcess: "in-process", TransportRemote: "remote-tcp",
}

// String implements fmt.Stringer.
func (t CacheTransport) String() string { return transportNames[t] }

// ParseTransport maps a flag value ("inprocess", "remote") to a transport.
func ParseTransport(s string) (CacheTransport, error) {
	switch s {
	case "", "inprocess", "in-process", "local":
		return TransportInProcess, nil
	case "remote", "remote-tcp", "tcp":
		return TransportRemote, nil
	}
	return 0, fmt.Errorf("workload: unknown transport %q (want inprocess or remote)", s)
}

// StackConfig assembles one experimental system.
type StackConfig struct {
	Mode Mode
	// CacheBytes caps the cache (0 = unbounded). The paper's default is
	// 512 MB on a 10 GB database; scale accordingly.
	CacheBytes int64
	// CacheNodes > 1 spreads the cache over a consistent-hash ring of
	// cache nodes (each sized CacheBytes/CacheNodes).
	CacheNodes int
	// Replicas is the ring's replication factor R: every key lives on the
	// first R distinct nodes walking the ring, writes fan out to all of
	// them, and reads fail over (breaker-aware) down the replica list.
	// 0 or 1 = single-owner routing, the pre-Experiment-10 behaviour;
	// clamped to CacheNodes.
	Replicas int
	// CacheShards overrides each node's lock-stripe count (0 = the kvcache
	// default of the next power of two >= 4x GOMAXPROCS; 1 = the un-striped
	// baseline Experiment 9 measures against).
	CacheShards int
	// Transport selects in-process stores (default) or real cacheproto
	// servers reached over TCP through pooled clients.
	Transport CacheTransport
	// CacheAddrs, with TransportRemote, connects to already-running
	// geniecache servers at these addresses instead of launching loopback
	// ones (CacheNodes and CacheBytes are then the servers' concern). The
	// stack flushes them during assembly so a previous run's entries cannot
	// leak into this one.
	CacheAddrs []string
	// PoolIdleConns bounds idle pooled connections per remote node
	// (0 = cacheproto.DefaultPoolIdle).
	PoolIdleConns int
	// PoolMaxConns caps total connections per remote node, waiters queueing
	// beyond it (0 = cacheproto.DefaultPoolMaxConns).
	PoolMaxConns int
	// BreakerThreshold is the consecutive-failure count that trips a remote
	// node's circuit breaker (0 = cacheproto.DefaultFailThreshold; negative
	// disables the breaker entirely — the pre-resilience dial-per-op
	// behaviour, kept as the Experiment 8 baseline).
	BreakerThreshold int
	// ProbeInterval is the breaker's background probe cadence while open
	// (0 = cacheproto.DefaultProbeInterval).
	ProbeInterval time.Duration
	// OpTimeout bounds every remote cache round trip (and dial) with a
	// connection deadline, so a node that accepts but never answers releases
	// its pool slot and feeds the breaker (0 = no deadline).
	OpTimeout time.Duration
	// HotKeySpread arms the ring's popularity sampler: reads of
	// detected-hot keys rotate over the full replica set instead of
	// hammering the preferred replica (needs Replicas >= 2 to actually
	// spread; the sampler still measures skew at R=1). HotKeyWindow and
	// HotKeyThreshold tune the detector (0 = hotkey package defaults).
	HotKeySpread    bool
	HotKeyWindow    uint64
	HotKeyThreshold uint32
	// L1Entries puts a near-cache of that many entries in front of each
	// remote node's client pool (see cacheproto.PoolConfig.L1Entries).
	// Only meaningful with TransportRemote — the in-process transport IS
	// local memory already.
	L1Entries int
	// L1TTL is the near-cache lease. 0 follows BatchWindow when the async
	// bus is on (so L1 staleness matches the tier's existing invalidation
	// staleness bound) and cacheproto.DefaultL1TTL otherwise.
	L1TTL time.Duration
	// SingleFlight coalesces concurrent read-miss loads of one key into a
	// single database query (see core.Config.SingleFlight).
	SingleFlight bool
	// LatencyScale enables the paper-calibrated injected latency model,
	// divided by the given factor (0 disables; 1 = paper-absolute;
	// 10 = default experiment scale).
	LatencyScale int
	// BufferPoolPages sizes the DB buffer pool (0 = engine default). The
	// colocated-cache variant of Experiment 4 shrinks this.
	BufferPoolPages int
	// DiskWidth bounds concurrent simulated-disk requests.
	DiskWidth int
	// Seed configures the dataset; zero value uses social.DefaultSeed.
	Seed social.SeedConfig
	// RngSeed makes seeding deterministic.
	RngSeed int64
	// ReuseTriggerConnections enables the paper's proposed trigger
	// connection reuse optimization (ablation).
	ReuseTriggerConnections bool
	// AsyncInvalidation routes trigger cache maintenance through the
	// asynchronous batching invalidation bus (internal/invbus) instead of
	// synchronous per-op round trips; BatchWindow tunes its coalescing
	// window (0 = bus default).
	AsyncInvalidation bool
	BatchWindow       time.Duration
	// Sleeper overrides time passage (tests use CountingSleeper).
	Sleeper latency.Sleeper
	// Obs, when non-nil, receives every subsystem's metrics registration:
	// per-node store/server/pool series, the cluster ring, the Genie and its
	// invalidation bus. Rebuilt components (a revived node's fresh server)
	// rebind their series in place.
	Obs *obs.Registry
}

// Stack is an assembled system under test.
type Stack struct {
	Config StackConfig
	Model  latency.Model
	DB     *sqldb.DB
	Reg    *orm.Registry
	Genie  *core.Genie // nil in NoCache mode
	App    *social.App
	// Stores are the raw cache nodes (for stats); Cache is the logical
	// cache the Genie uses (possibly latency-wrapped and/or a ring). With
	// TransportRemote the stores are the server-side ends of the loopback
	// nodes (empty when CacheAddrs points at external servers — CacheStats
	// then falls back to the wire-level stats command).
	Stores []*kvcache.Store
	Cache  kvcache.Cache
	// Ring is the live-membership consistent-hash ring (nil with a single
	// cache node). Node identities are server addresses with TransportRemote
	// and "node-<i>" in-process; Experiment 8 drives RemoveNode/AddNode on
	// it mid-run.
	Ring *cluster.Manager
	// Servers and Pools are populated by TransportRemote: the loopback
	// cacheproto servers (nil with CacheAddrs) and the pooled client per
	// node, in ring order.
	Servers []*cacheproto.Server
	Pools   []*cacheproto.Pool
	// Obs is the metrics registry every subsystem registered into (nil
	// unless StackConfig.Obs was set).
	Obs *obs.Registry
}

// NodeAddrs returns the remote nodes' addresses in ring order (empty for
// the in-process transport).
func (s *Stack) NodeAddrs() []string {
	addrs := make([]string, 0, len(s.Pools))
	for _, p := range s.Pools {
		addrs = append(addrs, p.Addr())
	}
	return addrs
}

// Close releases everything the stack owns goroutines or sockets for: the
// Genie's invalidation bus, the client pools, and the loopback cache
// servers. Safe for every transport and for repeated calls; in-process
// stacks only drain the bus.
func (s *Stack) Close() {
	if s.Genie != nil {
		s.Genie.Close()
	}
	for _, p := range s.Pools {
		_ = p.Close()
	}
	for _, srv := range s.Servers {
		_ = srv.Close()
	}
}

// BuildStack assembles and seeds a system under test.
func BuildStack(cfg StackConfig) (*Stack, error) {
	if cfg.CacheNodes <= 0 {
		cfg.CacheNodes = 1
	}
	if cfg.Seed.Users == 0 {
		cfg.Seed = social.DefaultSeed()
	}
	sleeper := cfg.Sleeper
	if sleeper == nil {
		sleeper = latency.RealSleeper{}
	}
	var model latency.Model
	if cfg.LatencyScale > 0 {
		model = latency.PaperScaled(cfg.LatencyScale)
	}
	db, err := sqldb.Open(sqldb.Config{
		BufferPoolPages: cfg.BufferPoolPages,
		DiskWidth:       cfg.DiskWidth,
		Latency:         model,
		Sleeper:         sleeper,
		LockTimeout:     10 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	reg := orm.NewRegistry(db)
	if err := social.RegisterModels(reg); err != nil {
		return nil, err
	}
	if err := reg.CreateTables(); err != nil {
		return nil, err
	}

	st := &Stack{Config: cfg, Model: model, DB: db, Reg: reg}
	perNode := cfg.CacheBytes
	if cfg.CacheNodes > 1 && perNode > 0 {
		perNode = cfg.CacheBytes / int64(cfg.CacheNodes)
	}
	l1ttl := cfg.L1TTL
	if l1ttl <= 0 && cfg.AsyncInvalidation && cfg.BatchWindow > 0 {
		// Tie L1 staleness to the tier's existing async-invalidation bound.
		l1ttl = cfg.BatchWindow
	}
	newPool := func(addr string) *cacheproto.Pool {
		return cacheproto.NewPoolWithConfig(cacheproto.PoolConfig{
			Addr:           addr,
			MaxIdle:        cfg.PoolIdleConns,
			MaxConns:       cfg.PoolMaxConns,
			FailThreshold:  cfg.BreakerThreshold,
			ProbeInterval:  cfg.ProbeInterval,
			OpTimeout:      cfg.OpTimeout,
			DisableBreaker: cfg.BreakerThreshold < 0,
			L1Entries:      cfg.L1Entries,
			L1TTL:          l1ttl,
		})
	}
	newStore := func() *kvcache.Store {
		return kvcache.New(perNode, kvcache.WithShards(cfg.CacheShards))
	}
	var nodes []kvcache.Cache
	var nodeIDs []string
	switch {
	case cfg.Transport == TransportRemote && len(cfg.CacheAddrs) > 0:
		// Externally launched geniecache nodes (cmd/geniecache -nodes N).
		// Dial each once up front: an unreachable node used to surface as a
		// silent zero-hit run, not an error.
		if err := PreflightCacheAddrs(cfg.CacheAddrs, cfg.OpTimeout); err != nil {
			st.Close()
			return nil, fmt.Errorf("workload: cache tier preflight: %w", err)
		}
		for _, addr := range cfg.CacheAddrs {
			pool := newPool(addr)
			st.Pools = append(st.Pools, pool)
			nodes = append(nodes, pool)
			nodeIDs = append(nodeIDs, addr)
		}
	case cfg.Transport == TransportRemote:
		// Self-contained remote tier: one real cacheproto server per node on
		// loopback TCP, each reached through a pooled client.
		for i := 0; i < cfg.CacheNodes; i++ {
			store := newStore()
			srv := cacheproto.NewServer(store)
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				st.Close()
				return nil, fmt.Errorf("workload: cache node %d: %w", i, err)
			}
			pool := newPool(addr)
			st.Stores = append(st.Stores, store)
			st.Servers = append(st.Servers, srv)
			st.Pools = append(st.Pools, pool)
			nodes = append(nodes, pool)
			nodeIDs = append(nodeIDs, addr)
		}
	default:
		for i := 0; i < cfg.CacheNodes; i++ {
			store := newStore()
			st.Stores = append(st.Stores, store)
			nodes = append(nodes, store)
			nodeIDs = append(nodeIDs, fmt.Sprintf("node-%d", i))
		}
	}
	var logical kvcache.Cache
	if len(nodes) == 1 {
		logical = nodes[0]
	} else {
		opts := []cluster.Option{cluster.WithReplicas(cfg.Replicas)}
		if cfg.HotKeySpread {
			opts = append(opts, cluster.WithHotKeySpreading(hotkey.Config{
				Window: cfg.HotKeyWindow, Threshold: cfg.HotKeyThreshold,
			}))
		}
		ring, err := cluster.NewManager(nodeIDs, nodes, opts...)
		if err != nil {
			st.Close()
			return nil, err
		}
		st.Ring = ring
		logical = ring
	}
	if len(cfg.CacheAddrs) > 0 {
		// External servers may hold a previous run's entries.
		logical.FlushAll()
	}
	if model.CacheRoundTrip > 0 {
		logical = kvcache.WithLatency(logical, model.CacheRoundTrip, sleeper)
	}
	st.Cache = logical

	strategy := core.UpdateInPlace
	if cfg.Mode == ModeInvalidate {
		strategy = core.Invalidate
	}
	if cfg.Mode != ModeNoCache {
		g, err := core.New(core.Config{
			Registry:                reg,
			DB:                      db,
			Cache:                   logical,
			TriggerConnectCost:      model.CacheConnect,
			ReuseTriggerConnections: cfg.ReuseTriggerConnections,
			AsyncInvalidation:       cfg.AsyncInvalidation,
			BatchWindow:             cfg.BatchWindow,
			SingleFlight:            cfg.SingleFlight,
			Sleeper:                 sleeper,
		})
		if err != nil {
			st.Close()
			return nil, err
		}
		st.Genie = g
	}
	app, err := social.NewApp(reg, st.Genie, strategy)
	if err != nil {
		st.Close()
		return nil, err
	}
	st.App = app
	if err := app.Seed(cfg.Seed, rand.New(rand.NewSource(cfg.RngSeed+1))); err != nil {
		st.Close()
		return nil, fmt.Errorf("workload: seeding: %w", err)
	}
	st.Obs = cfg.Obs
	st.registerMetrics()
	return st, nil
}

// registerMetrics attaches every subsystem to the stack's registry (no-op
// without one): stores, loopback servers, and client pools under per-node
// labels, plus the cluster ring and the Genie/invalidation-bus counters.
func (s *Stack) registerMetrics() {
	if s.Obs == nil {
		return
	}
	nodeID := func(i int) string {
		if i < len(s.Pools) {
			return s.Pools[i].Addr()
		}
		return fmt.Sprintf("node-%d", i)
	}
	for i, store := range s.Stores {
		store.RegisterMetrics(s.Obs, nodeID(i))
	}
	for i, srv := range s.Servers {
		if srv != nil {
			srv.Metrics().Register(s.Obs, nodeID(i))
		}
	}
	for _, p := range s.Pools {
		p.RegisterMetrics(s.Obs, p.Addr())
	}
	if s.Ring != nil {
		s.Ring.RegisterMetrics(s.Obs, "")
	}
	if s.Genie != nil {
		s.Genie.RegisterMetrics(s.Obs, "")
	}
}

// KillNode abruptly stops loopback cache node i: its listener closes and
// every open connection is torn down, exactly what a crashed geniecache
// process looks like from the client side. The node's pool stays in place —
// routing still targets the dead node until the breaker trips or the ring
// drops it. Only valid for self-launched TransportRemote stacks.
func (s *Stack) KillNode(i int) error {
	if i < 0 || i >= len(s.Servers) || s.Servers[i] == nil {
		return fmt.Errorf("workload: no loopback server for node %d", i)
	}
	return s.Servers[i].Close()
}

// ReviveNode restarts a killed loopback node on its original address. The
// node comes back cold (a restarted process has lost its memory), so hit
// rate on its key share rebuilds from scratch — the honest recovery shape.
func (s *Stack) ReviveNode(i int) error {
	if i < 0 || i >= len(s.Servers) || s.Servers[i] == nil {
		return fmt.Errorf("workload: no loopback server for node %d", i)
	}
	srv, err := cacheproto.RestartServer(s.Stores[i], s.Pools[i].Addr())
	if err != nil {
		return fmt.Errorf("workload: revive node %d: %w", i, err)
	}
	s.Servers[i] = srv
	if s.Obs != nil {
		// The fresh server takes over the dead one's series (upsert rebind),
		// the way a restarted process resumes its scrape target.
		srv.Metrics().Register(s.Obs, s.Pools[i].Addr())
	}
	return nil
}

// CacheTierStats is the aggregate cache-node statistics plus tier health.
type CacheTierStats struct {
	kvcache.Stats
	// UnreachableNodes counts nodes whose wire-level stats probe failed —
	// before this existed a dead node silently dropped out of the aggregate,
	// quietly undercounting hits, misses, and capacity.
	UnreachableNodes int
	// PoolStats is each remote node's client-pool health snapshot in ring
	// order (empty for the in-process transport): breaker state, trips,
	// fail-fast count — the *why* behind a node being skipped in a failure
	// drill's timeline.
	PoolStats []cacheproto.PoolStats
	// OpenBreakers counts nodes whose breaker is not closed right now.
	OpenBreakers int
	// BreakerTrips and FailFastOps aggregate the per-node counters above.
	BreakerTrips int64
	FailFastOps  int64
	// NodeWireStats is each remote node's full wire-level stats map in ring
	// order (nil entries for unreachable nodes; empty for the in-process
	// transport). The extended stats command carries detail the aggregate
	// kvcache.Stats projection cannot hold — per-op latency summaries
	// (op_get_p99_ns, ...), server-side error counts, connection gauges,
	// and the per-node popularity sampler (hotkey_observed/flagged/decays).
	NodeWireStats []map[string]int64
	// HotKeys is the ring-side popularity-sampler and spreading view (zero
	// unless StackConfig.HotKeySpread armed it).
	HotKeys cluster.HotKeyStats
	// L1 aggregates every node pool's near-cache counters (zero unless
	// StackConfig.L1Entries enabled the L1).
	L1 cacheproto.L1Stats
	// FlightLeads/FlightShared are the Genie's single-flight counters: DB
	// loads actually run vs. misses that piggybacked on a concurrent load
	// (zero unless StackConfig.SingleFlight).
	FlightLeads  int64
	FlightShared int64
}

// HealthLine renders the per-node breaker picture as one compact log line
// fragment ("node1=open(trips=1,ff=1234)"), listing only nodes that have
// ever tripped or are currently not closed — a healthy tier renders as
// "all-closed". The exp8/exp10 timelines print it so a phase's hit-rate
// number carries its explanation.
func (t CacheTierStats) HealthLine() string {
	out := ""
	for i, ps := range t.PoolStats {
		if ps.State == cacheproto.BreakerClosed && ps.Trips == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("node%d=%s(trips=%d,ff=%d)", i, ps.State, ps.Trips, ps.FailFast)
	}
	if out == "" {
		return "all-closed"
	}
	return out
}

// CacheStats aggregates counters across the stack's cache nodes. With
// external remote nodes (no in-process stores) it falls back to the
// wire-level stats command, which carries the subset of counters the
// protocol exports; a node whose stats call fails contributes nothing here —
// use CacheTierStats to see how many nodes that was. Loopback-remote stacks
// aggregate the in-process store ends directly, with no wire traffic.
func (s *Stack) CacheStats() kvcache.Stats {
	var agg kvcache.Stats
	if len(s.Stores) == 0 && len(s.Pools) > 0 {
		agg, _, _ = s.wireStats()
		return agg
	}
	for _, st := range s.Stores {
		x := st.Stats()
		agg.Hits += x.Hits
		agg.Misses += x.Misses
		agg.Sets += x.Sets
		agg.Deletes += x.Deletes
		agg.Evictions += x.Evictions
		agg.Expired += x.Expired
		agg.CasConflicts += x.CasConflicts
		agg.Items += x.Items
		agg.BytesUsed += x.BytesUsed
		agg.BytesLimit += x.BytesLimit
	}
	return agg
}

// CacheTierStats is CacheStats plus reachability: with any remote transport
// every node is probed over the wire (one stats round trip each — only this
// method pays that cost) and failures are counted instead of being silently
// skipped. Counter aggregation still prefers the in-process store ends when
// available (loopback nodes), which keep counting even while their listener
// is down.
func (s *Stack) CacheTierStats() CacheTierStats {
	var agg CacheTierStats
	if len(s.Stores) == 0 && len(s.Pools) > 0 {
		agg.Stats, agg.NodeWireStats, agg.UnreachableNodes = s.wireStats()
		s.aggregatePools(&agg)
		s.aggregateHotKeyStats(&agg)
		return agg
	}
	agg.Stats = s.CacheStats()
	if len(s.Pools) > 0 {
		// The reachability probe fetches each node's full stats reply anyway;
		// keep the per-node maps instead of discarding them.
		_, agg.NodeWireStats, agg.UnreachableNodes = s.wireStats()
	}
	s.aggregatePools(&agg)
	s.aggregateHotKeyStats(&agg)
	return agg
}

// aggregateHotKeyStats folds the hot-key mitigation counters — ring-side
// sampler/spreading, per-pool near-caches, Genie single-flight — into the
// tier view, so one CacheTierStats snapshot says whether the mitigations
// are actually engaging.
func (s *Stack) aggregateHotKeyStats(agg *CacheTierStats) {
	if s.Ring != nil {
		agg.HotKeys = s.Ring.HotKeyStats()
	}
	for _, p := range s.Pools {
		agg.L1.Add(p.L1Stats())
	}
	if s.Genie != nil {
		gs := s.Genie.Stats()
		agg.FlightLeads = gs.FlightLeads
		agg.FlightShared = gs.FlightShared
	}
}

// aggregatePools folds each remote node's PoolStats into the tier view.
func (s *Stack) aggregatePools(agg *CacheTierStats) {
	for _, p := range s.Pools {
		ps := p.Stats()
		agg.PoolStats = append(agg.PoolStats, ps)
		if ps.State != cacheproto.BreakerClosed {
			agg.OpenBreakers++
		}
		agg.BreakerTrips += ps.Trips
		agg.FailFastOps += ps.FailFast
	}
}

// wireStats aggregates the stats command across the pools, keeping each
// node's full stats map (nil for nodes whose call failed) and counting the
// failures.
func (s *Stack) wireStats() (agg kvcache.Stats, per []map[string]int64, unreachable int) {
	per = make([]map[string]int64, len(s.Pools))
	for i, p := range s.Pools {
		st, err := p.ServerStats()
		if err != nil {
			unreachable++
			continue
		}
		per[i] = st
		agg.Hits += st["get_hits"]
		agg.Misses += st["get_misses"]
		agg.Sets += st["cmd_set"]
		agg.Deletes += st["cmd_delete"]
		agg.Evictions += st["evictions"]
		agg.Expired += st["expired"]
		agg.CasConflicts += st["cas_conflicts"]
		agg.Items += st["curr_items"]
		agg.BytesUsed += st["bytes"]
		agg.BytesLimit += st["limit_maxbytes"]
	}
	return agg, per, unreachable
}
