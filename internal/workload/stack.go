package workload

import (
	"fmt"
	"math/rand"
	"time"

	"cachegenie/internal/cluster"
	"cachegenie/internal/core"
	"cachegenie/internal/kvcache"
	"cachegenie/internal/latency"
	"cachegenie/internal/orm"
	"cachegenie/internal/social"
	"cachegenie/internal/sqldb"
)

// Mode selects the caching configuration under test (paper §5: NoCache,
// Invalidate, Update).
type Mode int

// Modes.
const (
	ModeNoCache Mode = iota
	ModeInvalidate
	ModeUpdate
)

var modeNames = map[Mode]string{
	ModeNoCache: "NoCache", ModeInvalidate: "Invalidate", ModeUpdate: "Update",
}

// String implements fmt.Stringer.
func (m Mode) String() string { return modeNames[m] }

// StackConfig assembles one experimental system.
type StackConfig struct {
	Mode Mode
	// CacheBytes caps the cache (0 = unbounded). The paper's default is
	// 512 MB on a 10 GB database; scale accordingly.
	CacheBytes int64
	// CacheNodes > 1 spreads the cache over a consistent-hash ring of
	// in-process stores (each sized CacheBytes/CacheNodes).
	CacheNodes int
	// LatencyScale enables the paper-calibrated injected latency model,
	// divided by the given factor (0 disables; 1 = paper-absolute;
	// 10 = default experiment scale).
	LatencyScale int
	// BufferPoolPages sizes the DB buffer pool (0 = engine default). The
	// colocated-cache variant of Experiment 4 shrinks this.
	BufferPoolPages int
	// DiskWidth bounds concurrent simulated-disk requests.
	DiskWidth int
	// Seed configures the dataset; zero value uses social.DefaultSeed.
	Seed social.SeedConfig
	// RngSeed makes seeding deterministic.
	RngSeed int64
	// ReuseTriggerConnections enables the paper's proposed trigger
	// connection reuse optimization (ablation).
	ReuseTriggerConnections bool
	// AsyncInvalidation routes trigger cache maintenance through the
	// asynchronous batching invalidation bus (internal/invbus) instead of
	// synchronous per-op round trips; BatchWindow tunes its coalescing
	// window (0 = bus default).
	AsyncInvalidation bool
	BatchWindow       time.Duration
	// Sleeper overrides time passage (tests use CountingSleeper).
	Sleeper latency.Sleeper
}

// Stack is an assembled system under test.
type Stack struct {
	Config StackConfig
	Model  latency.Model
	DB     *sqldb.DB
	Reg    *orm.Registry
	Genie  *core.Genie // nil in NoCache mode
	App    *social.App
	// Stores are the raw cache nodes (for stats); Cache is the logical
	// cache the Genie uses (possibly latency-wrapped and/or a ring).
	Stores []*kvcache.Store
	Cache  kvcache.Cache
}

// BuildStack assembles and seeds a system under test.
func BuildStack(cfg StackConfig) (*Stack, error) {
	if cfg.CacheNodes <= 0 {
		cfg.CacheNodes = 1
	}
	if cfg.Seed.Users == 0 {
		cfg.Seed = social.DefaultSeed()
	}
	sleeper := cfg.Sleeper
	if sleeper == nil {
		sleeper = latency.RealSleeper{}
	}
	var model latency.Model
	if cfg.LatencyScale > 0 {
		model = latency.PaperScaled(cfg.LatencyScale)
	}
	db := sqldb.Open(sqldb.Config{
		BufferPoolPages: cfg.BufferPoolPages,
		DiskWidth:       cfg.DiskWidth,
		Latency:         model,
		Sleeper:         sleeper,
		LockTimeout:     10 * time.Second,
	})
	reg := orm.NewRegistry(db)
	if err := social.RegisterModels(reg); err != nil {
		return nil, err
	}
	if err := reg.CreateTables(); err != nil {
		return nil, err
	}

	st := &Stack{Config: cfg, Model: model, DB: db, Reg: reg}
	perNode := cfg.CacheBytes
	if cfg.CacheNodes > 1 && perNode > 0 {
		perNode = cfg.CacheBytes / int64(cfg.CacheNodes)
	}
	for i := 0; i < cfg.CacheNodes; i++ {
		st.Stores = append(st.Stores, kvcache.New(perNode))
	}
	var logical kvcache.Cache
	if cfg.CacheNodes == 1 {
		logical = st.Stores[0]
	} else {
		nodes := make([]kvcache.Cache, len(st.Stores))
		for i, s := range st.Stores {
			nodes[i] = s
		}
		ring, err := cluster.NewRing(nodes)
		if err != nil {
			return nil, err
		}
		logical = ring
	}
	if model.CacheRoundTrip > 0 {
		logical = kvcache.WithLatency(logical, model.CacheRoundTrip, sleeper)
	}
	st.Cache = logical

	strategy := core.UpdateInPlace
	if cfg.Mode == ModeInvalidate {
		strategy = core.Invalidate
	}
	if cfg.Mode != ModeNoCache {
		g, err := core.New(core.Config{
			Registry:                reg,
			DB:                      db,
			Cache:                   logical,
			TriggerConnectCost:      model.CacheConnect,
			ReuseTriggerConnections: cfg.ReuseTriggerConnections,
			AsyncInvalidation:       cfg.AsyncInvalidation,
			BatchWindow:             cfg.BatchWindow,
			Sleeper:                 sleeper,
		})
		if err != nil {
			return nil, err
		}
		st.Genie = g
	}
	app, err := social.NewApp(reg, st.Genie, strategy)
	if err != nil {
		return nil, err
	}
	st.App = app
	if err := app.Seed(cfg.Seed, rand.New(rand.NewSource(cfg.RngSeed+1))); err != nil {
		return nil, fmt.Errorf("workload: seeding: %w", err)
	}
	return st, nil
}

// CacheStats aggregates stats across the stack's cache nodes.
func (s *Stack) CacheStats() kvcache.Stats {
	var agg kvcache.Stats
	for _, st := range s.Stores {
		x := st.Stats()
		agg.Hits += x.Hits
		agg.Misses += x.Misses
		agg.Sets += x.Sets
		agg.Deletes += x.Deletes
		agg.Evictions += x.Evictions
		agg.Expired += x.Expired
		agg.CasConflicts += x.CasConflicts
		agg.Items += x.Items
		agg.BytesUsed += x.BytesUsed
		agg.BytesLimit += x.BytesLimit
	}
	return agg
}
