package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"cachegenie/internal/cluster"
	"cachegenie/internal/obs"
)

// ---------- Experiment 10: replica-aware cluster tier ----------
//
// Experiment 8 established the failure baseline: with single-owner routing
// a node kill costs the dead node's whole key share — hit rate 0.94→~0.80 —
// and every remapped key restarts cold. Experiment 10 reruns that
// kill/revive timeline with the ring's replication factor at R=1 (the exp8
// configuration) and R=2: with a second replica the breaker-aware read path
// fails over to the key's next node and the hit rate should ride through
// the kill nearly unchanged. The run ends with an invalidation-staleness
// scan proving trigger maintenance reached every replica: after the final
// FlushInvalidations no two replicas may disagree on a key's bytes and no
// node may hold a key outside its replica set (the membership-change key
// handoff is what keeps the second invariant).

// Exp10Nodes is the ring size, matching Experiment 8 so the R=1 timeline is
// directly comparable.
const Exp10Nodes = 4

// Exp10KillIndex is the node killed mid-run.
const Exp10KillIndex = 1

// Exp10Replicas is the replicated configuration under test.
const Exp10Replicas = 2

// Exp10Timeline is one replication factor's pass through the failure drill.
type Exp10Timeline struct {
	Replicas int
	// Healthy: all nodes up. Degraded: one node killed, ring membership
	// unchanged — at R=1 its key share degrades to misses, at R=2 reads
	// fail over to the surviving replica. Recovered: the dead node was
	// removed from the ring (handoff drains what it can), revived cold,
	// and rejoined (handoff warms it from the survivors' copies).
	Healthy, Degraded, Recovered Exp8Phase

	// Replica routing counters over the whole timeline (zero at R=1).
	Replica cluster.ReplicaStats
	// Handoff counters from the remove/rejoin membership changes.
	Handoff cluster.HandoffStats
	// Breaker accounting on the killed node's pool.
	BreakerTrips int64
	FailFastOps  int64

	// Staleness scan after the final FlushInvalidations: every key on every
	// node, checked for replica divergence (two replicas, different bytes)
	// and orphan copies (a node holding a key outside its replica set).
	// Both must be zero — divergence would be a stale read waiting to
	// happen, an orphan a resurfacing hazard on the next membership change.
	ScannedKeys   int
	DivergentKeys int
	OrphanKeys    int

	// Metrics is the stack registry's Prometheus text dump captured at the
	// end of the pass, before teardown — every subsystem's series (store,
	// server, pool, invalidation bus, cluster) as a scrape would have seen
	// them. The CI bench smoke uploads the final timeline's dump as an
	// artifact.
	Metrics []byte
}

// Exp10Result is the full Experiment 10 report.
type Exp10Result struct {
	Timelines []Exp10Timeline
}

// Timeline returns the pass for a replication factor, if present.
func (r Exp10Result) Timeline(replicas int) (Exp10Timeline, bool) {
	for _, t := range r.Timelines {
		if t.Replicas == replicas {
			return t, true
		}
	}
	return Exp10Timeline{}, false
}

// BuildStackForExp10 assembles one Experiment 10 stack: the Experiment 8
// shape (ModeUpdate, Exp10Nodes loopback cacheproto servers, breaker armed,
// fast probe) with the ring's replication factor set. Like exp8 it must
// kill servers, so external CacheAddrs are rejected.
func BuildStackForExp10(opt ExpOptions, replicas int) (*Stack, error) {
	if len(opt.CacheAddrs) > 0 {
		return nil, fmt.Errorf("workload: exp10 kills cache nodes mid-run; it cannot drive external -cache-addrs servers")
	}
	return BuildStack(StackConfig{
		Mode:              ModeUpdate,
		Seed:              opt.seed(),
		RngSeed:           42,
		LatencyScale:      opt.scale(),
		BufferPoolPages:   expPoolPages,
		DiskWidth:         2,
		CacheNodes:        Exp10Nodes,
		Replicas:          replicas,
		Transport:         TransportRemote,
		ProbeInterval:     exp8ProbeInterval,
		AsyncInvalidation: opt.Async,
		BatchWindow:       opt.BatchWindow,
		Obs:               opt.Metrics,
	})
}

// Exp10 runs the kill/revive timeline at R=1 and R=2 and the staleness
// scan. Expected shape: degraded hit rate collapses by ~1/N at R=1 and
// stays within a few points of healthy at R=2 (failover reads + read
// repair), and both scans come back clean.
func Exp10(opt ExpOptions) (Exp10Result, error) {
	var res Exp10Result
	for _, replicas := range []int{1, Exp10Replicas} {
		tl, err := exp10Timeline(opt, replicas)
		if err != nil {
			return res, err
		}
		res.Timelines = append(res.Timelines, tl)
	}
	if r1, ok1 := res.Timeline(1); ok1 {
		if r2, ok2 := res.Timeline(Exp10Replicas); ok2 {
			opt.logf("exp10 degraded hit rate through the kill: R=1 %.2f vs R=%d %.2f (healthy %.2f)",
				r1.Degraded.HitRate, Exp10Replicas, r2.Degraded.HitRate, r2.Healthy.HitRate)
		}
	}
	return res, nil
}

func exp10Timeline(opt ExpOptions, replicas int) (Exp10Timeline, error) {
	tl := Exp10Timeline{Replicas: replicas}
	// Each timeline gets its own registry unless the caller supplied one
	// (fresh loopback ports per pass would otherwise pile up stale series).
	reg := opt.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
		opt.Metrics = reg
	}
	st, err := BuildStackForExp10(opt, replicas)
	if err != nil {
		return tl, err
	}
	defer st.Close()
	if st.Ring == nil {
		return tl, fmt.Errorf("workload: exp10 stack has no ring manager")
	}

	runCfg := opt.runCfg(15, 40, 2.0)
	phase := func(name string) (Exp8Phase, error) {
		before := st.Genie.Stats()
		rep, err := Run(st, runCfg)
		if err != nil {
			return Exp8Phase{}, err
		}
		after := st.Genie.Stats()
		p := Exp8Phase{
			Name: name, Throughput: rep.Throughput,
			MeanLat: rep.MeanLatency(), Errors: rep.Errors,
		}
		if total := (after.Hits - before.Hits) + (after.Misses - before.Misses); total > 0 {
			p.HitRate = float64(after.Hits-before.Hits) / float64(total)
		}
		opt.logf("exp10 R=%d %-9s %9.1f pages/s  hit=%.2f  mean=%v  errors=%d  breakers: %s",
			replicas, name, p.Throughput, p.HitRate, p.MeanLat.Round(time.Microsecond), p.Errors,
			st.CacheTierStats().HealthLine())
		return p, nil
	}

	if tl.Healthy, err = phase("healthy"); err != nil {
		return tl, err
	}

	// Kill one node but leave membership alone: this is the phase where the
	// replication factor is the whole story. At R=1 routing still targets
	// the corpse (misses, fail-fast once the breaker trips); at R=2 the
	// ring skips the open breaker and serves the share from its second
	// replica.
	deadID := st.Ring.NodeIDs()[Exp10KillIndex]
	deadPool := st.Pools[Exp10KillIndex]
	if err := st.KillNode(Exp10KillIndex); err != nil {
		return tl, err
	}
	if tl.Degraded, err = phase("degraded"); err != nil {
		return tl, err
	}
	ps := deadPool.Stats()
	tl.BreakerTrips = ps.Trips
	tl.FailFastOps = ps.FailFast

	// Membership change + recovery: drop the corpse (the handoff pass
	// cannot drain an unreachable node — it is counted as skipped), revive
	// it cold, rejoin under the same identity. The rejoin handoff copies
	// the remapped share from the survivors, so the node comes back warm
	// instead of rebuilding its hit rate from zero.
	if err := st.Ring.RemoveNode(deadID); err != nil {
		return tl, err
	}
	if err := st.ReviveNode(Exp10KillIndex); err != nil {
		return tl, err
	}
	waitHealthy(deadPool, 5*time.Second)
	if err := st.Ring.AddNode(deadID, deadPool); err != nil {
		return tl, err
	}
	tl.Handoff = st.Ring.HandoffStats()
	opt.logf("exp10 R=%d handoff: %d keys drained, %d copied (warmup), %d nodes unreachable",
		replicas, tl.Handoff.Drained, tl.Handoff.Copied, tl.Handoff.SkippedNodes)
	if tl.Recovered, err = phase("recovered"); err != nil {
		return tl, err
	}
	tl.Replica = st.Ring.ReplicaStats()
	if replicas > 1 {
		opt.logf("exp10 R=%d replica routing: %d failover reads, %d read repairs, %d unhealthy skips",
			replicas, tl.Replica.FailoverReads, tl.Replica.ReadRepairs, tl.Replica.SkippedUnhealthy)
	}

	// Staleness scan: drain trigger maintenance, then audit every copy.
	st.Genie.FlushInvalidations()
	tl.ScannedKeys, tl.DivergentKeys, tl.OrphanKeys = exp10Scan(st)
	opt.logf("exp10 R=%d staleness scan: %d keys, %d divergent, %d orphaned",
		replicas, tl.ScannedKeys, tl.DivergentKeys, tl.OrphanKeys)
	var dump bytes.Buffer
	if err := reg.WritePrometheus(&dump); err == nil {
		tl.Metrics = dump.Bytes()
	}
	return tl, nil
}

// exp10Scan audits the tier against the current ring: every key on every
// (loopback) store, checked for replica divergence and orphan copies. The
// store ends are inspected directly — no wire traffic, no stats skew from
// the audit itself beyond hit counters nobody reads after this point.
func exp10Scan(st *Stack) (scanned, divergent, orphaned int) {
	ring := st.Ring.Ring()
	ownerIDs := func(key string) map[string]bool {
		out := make(map[string]bool, ring.Replicas())
		for _, ni := range ring.ReplicasFor(key) {
			out[ring.NodeID(ni)] = true
		}
		return out
	}
	type copyOf struct {
		id    string
		value []byte
	}
	copies := make(map[string][]copyOf)
	for i, store := range st.Stores {
		id := st.Pools[i].Addr()
		for _, k := range store.Keys() {
			if v, ok := store.GetQuiet(k); ok {
				copies[k] = append(copies[k], copyOf{id: id, value: v})
			}
		}
	}
	for k, held := range copies {
		owners := ownerIDs(k)
		var ref []byte
		refSet, diverged := false, false
		for _, c := range held {
			if !owners[c.id] {
				orphaned++
				continue
			}
			if !refSet {
				ref, refSet = c.value, true
			} else if !bytes.Equal(ref, c.value) {
				diverged = true
			}
		}
		if diverged {
			divergent++
		}
		scanned++
	}
	return scanned, divergent, orphaned
}

// ---------- BENCH_exp10.json ----------

// Exp10JSONTimeline serializes one replication factor's pass.
type Exp10JSONTimeline struct {
	Replicas      int             `json:"replicas"`
	Phases        []Exp8JSONPhase `json:"phases"`
	FailoverReads int64           `json:"failover_reads"`
	ReadRepairs   int64           `json:"read_repairs"`
	SkippedOpen   int64           `json:"skipped_unhealthy"`
	HandoffDrain  int64           `json:"handoff_drained"`
	HandoffCopied int64           `json:"handoff_copied"`
	HandoffSkip   int64           `json:"handoff_skipped_nodes"`
	BreakerTrips  int64           `json:"breaker_trips"`
	FailFastOps   int64           `json:"fail_fast_ops"`
	ScannedKeys   int             `json:"scanned_keys"`
	DivergentKeys int             `json:"divergent_keys"`
	OrphanKeys    int             `json:"orphan_keys"`
}

// Exp10JSON is the BENCH_exp10.json document.
type Exp10JSON struct {
	Experiment string              `json:"experiment"`
	Nodes      int                 `json:"nodes"`
	Timelines  []Exp10JSONTimeline `json:"timelines"`
}

// WriteExp10JSON records an Experiment 10 run as JSON at path (the CI bench
// smoke uploads BENCH_*.json files as workflow artifacts).
func WriteExp10JSON(path string, r Exp10Result) error {
	doc := Exp10JSON{Experiment: "exp10-replicated-failover", Nodes: Exp10Nodes}
	for _, tl := range r.Timelines {
		jt := Exp10JSONTimeline{
			Replicas:      tl.Replicas,
			FailoverReads: tl.Replica.FailoverReads,
			ReadRepairs:   tl.Replica.ReadRepairs,
			SkippedOpen:   tl.Replica.SkippedUnhealthy,
			HandoffDrain:  tl.Handoff.Drained,
			HandoffCopied: tl.Handoff.Copied,
			HandoffSkip:   tl.Handoff.SkippedNodes,
			BreakerTrips:  tl.BreakerTrips,
			FailFastOps:   tl.FailFastOps,
			ScannedKeys:   tl.ScannedKeys,
			DivergentKeys: tl.DivergentKeys,
			OrphanKeys:    tl.OrphanKeys,
		}
		for _, p := range []Exp8Phase{tl.Healthy, tl.Degraded, tl.Recovered} {
			jt.Phases = append(jt.Phases, Exp8JSONPhase{
				Name:                  p.Name,
				ThroughputPagesPerSec: p.Throughput,
				HitRate:               p.HitRate,
				MeanLatMs:             ms(p.MeanLat),
				Errors:                p.Errors,
			})
		}
		doc.Timelines = append(doc.Timelines, jt)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("workload: marshal %s: %w", path, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
