package workload

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"cachegenie/internal/kvcache"
)

// TestExp9RunPoint exercises one measurement point end to end on a tiny op
// count: throughput, latency percentiles, and alloc accounting must all be
// populated and sane.
func TestExp9RunPoint(t *testing.T) {
	store := kvcache.New(0)
	pt := exp9Run(store, 4, 8_000)
	if pt.Ops != 8_000 {
		t.Fatalf("ops = %d", pt.Ops)
	}
	if pt.OpsPerSec <= 0 || pt.NsPerOp <= 0 {
		t.Fatalf("rates not measured: %+v", pt)
	}
	if pt.P50 <= 0 || pt.P99 < pt.P50 {
		t.Fatalf("percentiles inconsistent: p50=%v p99=%v", pt.P50, pt.P99)
	}
	if pt.AllocsPerOp > 3 {
		t.Fatalf("allocs/op = %.2f, want ~1 (the Get copy)", pt.AllocsPerOp)
	}
}

// TestExp9SweepShape runs the full sweep at quick scale and checks the
// artifact covers both transports, both stripe configurations, and a 16+
// client point — the acceptance surface of the experiment. Short mode skips
// it: the sweep launches real TCP stacks and runs a few million ops.
func TestExp9SweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("exp9 sweep in -short")
	}
	res, err := Exp9(ExpOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.GOMAXPROCS != runtime.GOMAXPROCS(0) || res.ShardedShards < 4 {
		t.Fatalf("runner metadata: %+v", res)
	}
	wantPoints := 2 * 2 * len(Exp9Clients(true))
	if len(res.Points) != wantPoints {
		t.Fatalf("points = %d, want %d", len(res.Points), wantPoints)
	}
	seen := map[string]bool{}
	for _, p := range res.Points {
		if p.OpsPerSec <= 0 {
			t.Fatalf("dead point: %+v", p)
		}
		if p.Clients >= 16 {
			seen[p.Transport] = true
		}
	}
	if !seen["local"] || !seen["remote"] {
		t.Fatalf("missing 16+-client coverage: %v", seen)
	}
	for _, transport := range []string{"local", "remote"} {
		if sp := res.Speedup(transport, 16); sp <= 0 {
			t.Fatalf("speedup(%s, 16) = %v", transport, sp)
		}
	}
}

// TestWriteExp9JSON checks the artifact document round-trips with the
// fields CI consumers key on.
func TestWriteExp9JSON(t *testing.T) {
	res := Exp9Result{
		GOMAXPROCS: 8, NumCPU: 8, ShardedShards: 32,
		Points: []Exp9Point{
			{Transport: "local", Shards: 1, Clients: 16, Ops: 1000, OpsPerSec: 1e6,
				P50: time.Microsecond, P99: 5 * time.Microsecond, NsPerOp: 1000, AllocsPerOp: 0.9},
			{Transport: "local", Shards: 32, Clients: 16, Ops: 1000, OpsPerSec: 2.5e6,
				P50: time.Microsecond, P99: 2 * time.Microsecond, NsPerOp: 400, AllocsPerOp: 0.9},
		},
	}
	path := filepath.Join(t.TempDir(), "BENCH_exp9.json")
	if err := WriteExp9JSON(path, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc Exp9JSON
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Experiment != "exp9-core-scaling" || doc.GOMAXPROCS != 8 {
		t.Fatalf("doc header: %+v", doc)
	}
	if len(doc.Points) != 2 {
		t.Fatalf("points = %d", len(doc.Points))
	}
	if len(doc.Speedups) != 1 || doc.Speedups[0].Speedup != 2.5 {
		t.Fatalf("speedups = %+v", doc.Speedups)
	}
}

// TestStackCacheShardsKnob proves the stripe-count knob reaches the stack's
// stores on the in-process transport.
func TestStackCacheShardsKnob(t *testing.T) {
	st, err := BuildStack(StackConfig{
		Mode:        ModeUpdate,
		Seed:        tinyOpts().Seed,
		CacheShards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if n := st.Stores[0].NumShards(); n != 1 {
		t.Fatalf("NumShards = %d, want 1", n)
	}
	st2, err := BuildStack(StackConfig{
		Mode:        ModeUpdate,
		Seed:        tinyOpts().Seed,
		CacheShards: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if n := st2.Stores[0].NumShards(); n != 8 {
		t.Fatalf("NumShards = %d, want 8", n)
	}
}
