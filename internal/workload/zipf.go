// Package workload implements the paper's experimental harness (§5.1): a
// social-network session workload with a zipf-distributed user population,
// the ⟨LookupBM : LookupFBM : CreateBM : AcceptFR⟩ = ⟨50:30:10:10⟩ page mix,
// a concurrent client driver with warm-up, and throughput/latency metrics —
// plus the stack builder that assembles NoCache / Invalidate / Update
// configurations of the full system.
package workload

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks 1..N with p(rank) proportional to rank^-a — the
// paper's user-session distribution (§5.1, a = 2.0 by default; lower a is
// more uniform, exercised by Experiment 3).
type Zipf struct {
	n   int
	cdf []float64
}

// NewZipf builds a sampler over ranks 1..n with parameter a > 0.
func NewZipf(n int, a float64) *Zipf {
	if n < 1 {
		n = 1
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += math.Pow(float64(i), -a)
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{n: n, cdf: cdf}
}

// Sample draws a rank in [1, n].
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= z.n {
		i = z.n - 1
	}
	return i + 1
}

// N returns the population size.
func (z *Zipf) N() int { return z.n }

// UserSampler picks the user for each session according to the paper's
// model (§5.1): p(x) = x^-a/ζ(a) is the probability that a user has x
// sessions. By the standard Zipf–Pareto duality, a population whose counts
// follow that distribution has a rank-frequency curve freq(rank) ∝
// rank^(-1/(a-1)), so sessions sample user ranks with exponent
// β = 1/(a-1).
//
// A LOWER a therefore means a HIGHER rank exponent — the workload
// concentrates on a few power users — matching the paper's reading ("a low
// value of the zipfian parameter a means the workload is more skewed") and
// the direction of Figure 3b, where the cached systems speed up as a drops
// from 2.0 to 1.1.
type UserSampler struct {
	ranks *Zipf
}

// minDualityA keeps the duality exponent finite as a approaches 1.
const minDualityA = 1.05

// NewUserSampler builds the sampler for the given population and paper
// parameter a. The rng parameter is accepted for symmetry with other
// samplers but the construction is deterministic.
func NewUserSampler(users int, a float64, _ *rand.Rand) *UserSampler {
	if a < minDualityA {
		a = minDualityA
	}
	beta := 1 / (a - 1)
	return &UserSampler{ranks: NewZipf(users, beta)}
}

// Sample draws a user id in [1, users].
func (s *UserSampler) Sample(rng *rand.Rand) int { return s.ranks.Sample(rng) }

// TopUserShare reports the probability mass of the most frequent user
// (diagnostics and tests).
func (s *UserSampler) TopUserShare() float64 {
	return s.ranks.cdf[0]
}
