package workload

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"cachegenie/internal/cacheproto"
	"cachegenie/internal/obs"
)

// TestMetricsEndToEndScrape drives a real workload through a full remote
// stack — replicated ring, async invalidation bus, live loopback cacheproto
// servers — and scrapes the /metrics endpoint a -metrics-addr flag would
// serve, asserting every subsystem's series show up with traffic in them.
func TestMetricsEndToEndScrape(t *testing.T) {
	opt := tinyOpts()
	reg := obs.NewRegistry()
	st, err := BuildStack(StackConfig{
		Mode:              ModeUpdate,
		Seed:              opt.Seed,
		RngSeed:           42,
		LatencyScale:      opt.LatencyScale,
		BufferPoolPages:   expPoolPages,
		DiskWidth:         2,
		CacheNodes:        3,
		Replicas:          2,
		Transport:         TransportRemote,
		AsyncInvalidation: true,
		Obs:               reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	rep, err := Run(st, RunConfig{Clients: 3, Sessions: 2, PagesPerSession: 5,
		WritePct: 20, ZipfA: 2.0, WarmupSessions: 3, RngSeed: 9})
	if err != nil || rep.Errors > 0 {
		t.Fatalf("rep=%+v err=%v", rep, err)
	}

	ms, err := obs.Serve("127.0.0.1:0", reg,
		obs.BreakerHealth(reg, cacheproto.PoolBreakerGaugeName))
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	resp, err := http.Get("http://" + ms.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Every tier of the stack registered and saw traffic.
	for _, family := range []string{
		"cachegenie_store_hits_total",             // kvcache
		"cachegenie_store_sets_total",             // kvcache
		"cachegenie_server_op_latency_seconds",    // cacheproto server
		"cachegenie_server_conns_opened_total",    // cacheproto server
		"cachegenie_pool_op_latency_seconds",      // cacheproto pool
		"cachegenie_pool_dials_total",             // cacheproto pool
		"cachegenie_pool_breaker_state",           // cacheproto breaker
		"cachegenie_invbus_enqueued_total",        // invalidation bus
		"cachegenie_invbus_queue_depth",           // invalidation bus
		"cachegenie_cluster_failover_reads_total", // cluster ring
		"cachegenie_genie_hits_total",             // core Genie
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing family %q", family)
		}
	}

	// The per-op latency summaries carry real traffic: at least one pool
	// get series with a nonzero count.
	if !strings.Contains(body, `op="get"`) {
		t.Error("/metrics has no per-op get series")
	}
	counted := false
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "cachegenie_pool_op_latency_seconds_count") &&
			!strings.HasSuffix(line, " 0") {
			counted = true
			break
		}
	}
	if !counted {
		t.Error("every pool op latency count is zero — instrumentation not on the op path")
	}

	// Healthy tier: every breaker closed, so /healthz is 200.
	hresp, err := http.Get("http://" + ms.Addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d (%s), want 200", hresp.StatusCode, hbody)
	}

	// The extended wire stats ride the same instrumentation: every reachable
	// node answers the 3-field STAT lines, including the new per-op ones.
	cts := st.CacheTierStats()
	if cts.UnreachableNodes != 0 {
		t.Fatalf("unreachable nodes: %d", cts.UnreachableNodes)
	}
	if len(cts.NodeWireStats) != 3 {
		t.Fatalf("NodeWireStats len = %d, want 3", len(cts.NodeWireStats))
	}
	sawOpCount := false
	for _, node := range cts.NodeWireStats {
		if node == nil {
			t.Fatal("nil per-node wire stats for a reachable node")
		}
		if _, ok := node["op_get_count"]; ok {
			sawOpCount = true
		}
	}
	if !sawOpCount {
		t.Error("no node reported op_get_count via the wire stats command")
	}
}
