package workload

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cachegenie/internal/social"
)

// TestExp13StackWiresMitigations: the all-on exp13 stack actually arms all
// three mitigations — the ring spreads, pools carry an L1, the core
// coalesces — and all-off arms none.
func TestExp13StackWiresMitigations(t *testing.T) {
	on, err := BuildStackForExp13(tinyOpts(), Exp13Mitigations{Spread: true, L1: true, SingleFlight: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(on.Close)
	if !on.Config.HotKeySpread || on.Config.L1Entries != exp13L1Entries || !on.Config.SingleFlight {
		t.Fatalf("all-on config did not arm mitigations: %+v", on.Config)
	}
	off, err := BuildStackForExp13(tinyOpts(), Exp13Mitigations{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(off.Close)
	if off.Config.HotKeySpread || off.Config.L1Entries != 0 || off.Config.SingleFlight {
		t.Fatalf("all-off config armed a mitigation: %+v", off.Config)
	}
}

func TestExp13RejectsExternalAddrs(t *testing.T) {
	opt := tinyOpts()
	opt.CacheAddrs = []string{"127.0.0.1:1"}
	if _, err := BuildStackForExp13(opt, Exp13Mitigations{}); err == nil {
		t.Fatal("exp13 accepted external cache addrs whose store counters it cannot read")
	}
}

// TestExp13HotKeyTimeline is the acceptance run: under zipf s=1.1 plus a
// flash crowd, the armed mitigations visibly engage — spread reads happen,
// the L1 absorbs hits, single-flight shares loads — and the all-on point
// runs no more database read loads than all-off.
func TestExp13HotKeyTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("five full workload runs over TCP")
	}
	res, err := Exp13(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(Exp13Configs()) {
		t.Fatalf("got %d points, want %d", len(res.Points), len(Exp13Configs()))
	}
	off, ok := res.Point("all-off")
	if !ok {
		t.Fatal("no all-off point")
	}
	on, ok := res.Point("all-on")
	if !ok {
		t.Fatal("no all-on point")
	}
	for _, p := range res.Points {
		if p.Throughput <= 0 || p.ReadP999 <= 0 {
			t.Fatalf("%s: empty measurement: %+v", p.Name, p)
		}
		if len(p.NodeGets) != Exp13Nodes || p.Imbalance < 1 {
			t.Fatalf("%s: node gets %v imbalance %.2f", p.Name, p.NodeGets, p.Imbalance)
		}
	}
	// Mitigation machinery engages when armed, stays silent when not.
	if off.HotKeys.SpreadReads != 0 || off.L1Stats.Hits != 0 || off.FlightShared != 0 {
		t.Fatalf("all-off point shows mitigation activity: %+v", off)
	}
	if on.HotKeys.Flagged == 0 || on.HotKeys.SpreadReads == 0 {
		t.Fatalf("all-on never spread a hot read: %+v", on.HotKeys)
	}
	if on.L1Stats.Hits == 0 {
		t.Fatalf("all-on L1 absorbed nothing: %+v", on.L1Stats)
	}
	if on.DBReadLoads > off.DBReadLoads {
		t.Fatalf("all-on ran more db read loads (%d) than all-off (%d)",
			on.DBReadLoads, off.DBReadLoads)
	}
	if len(on.Metrics) == 0 || !strings.Contains(string(on.Metrics), "cachegenie_hotkey_observed_total") {
		t.Fatal("all-on point missing hotkey metrics dump")
	}
}

// TestExp13FlashCrowdRedirects: the FlashCrowdPct knob redirects page loads
// to one LookupBM key — visible as a LookupBM page count far above the
// 50% read-mix share.
func TestExp13FlashCrowdRedirects(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload run")
	}
	opt := tinyOpts()
	st, err := BuildStackForExp13(opt, Exp13Mitigations{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	cfg := opt.runCfg(4, 20, 2.0)
	cfg.ZipfS = Exp13ZipfS
	cfg.FlashCrowdPct = 100 // every eligible page load stampedes the hot page
	rep, err := Run(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lookups := rep.ByPage[social.PageLookupBM].Count
	other := rep.ByPage[social.PageLookupFBM].Count + rep.ByPage[social.PageCreateBM].Count +
		rep.ByPage[social.PageAcceptFR].Count
	if other != 0 || lookups == 0 {
		t.Fatalf("flash crowd at 100%% left %d non-lookup pages (lookups=%d)", other, lookups)
	}
}

func TestWriteExp13JSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_exp13.json")
	res := Exp13Result{Points: []Exp13Point{
		{Name: "all-off", Throughput: 100, ReadP999: 9 * time.Millisecond,
			NodeGets: []int64{900, 50, 30, 20}, Imbalance: 3.6, DBReadLoads: 420},
		{Name: "all-on", Spread: true, L1on: true, SingleFlight: true,
			Throughput: 140, ReadP999: 3 * time.Millisecond,
			NodeGets: []int64{300, 250, 230, 220}, Imbalance: 1.2, DBReadLoads: 40,
			FlightLeads: 40, FlightShared: 380},
	}}
	if err := WriteExp13JSON(path, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"exp13-hot-keys"`, `"zipf_s": 1.1`, `"all-off"`, `"all-on"`,
		`"imbalance_max_over_mean": 3.6`, `"db_read_loads": 40`,
		`"singleflight_shared": 380`,
	} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("artifact missing %s:\n%s", want, data)
		}
	}
}
