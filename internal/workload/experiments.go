package workload

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"cachegenie/internal/core"
	"cachegenie/internal/invbus"
	"cachegenie/internal/kvcache"
	"cachegenie/internal/latency"
	"cachegenie/internal/obs"
	"cachegenie/internal/orm"
	"cachegenie/internal/social"
	"cachegenie/internal/sqldb"
	"cachegenie/internal/templateinv"
)

// ExpOptions scales the experiment harness. Zero value = defaults.
type ExpOptions struct {
	// LatencyScale divides the paper-calibrated latency model (default 50;
	// 1 reproduces paper-absolute latencies but runs ~50x longer).
	LatencyScale int
	// Quick shrinks sweeps and session counts (used by `go test -bench`).
	Quick bool
	// Seed overrides the dataset size.
	Seed social.SeedConfig
	// Out receives progress lines (nil = silent).
	Out io.Writer
	// Async routes trigger cache maintenance through the invalidation bus
	// for every stack the harness builds (Experiment 6 sweeps both settings
	// itself and ignores this); BatchWindow tunes the bus coalescing window.
	Async       bool
	BatchWindow time.Duration
	// Transport selects how every stack the harness builds reaches its
	// cache (Experiment 7 sweeps both transports itself and ignores this).
	Transport CacheTransport
	// CacheAddrs points remote-transport stacks at externally launched
	// geniecache nodes instead of self-launched loopback ones.
	CacheAddrs []string
	// Shards overrides every cache node's lock-stripe count (0 = kvcache
	// default). Experiment 9 sweeps stripe counts itself and ignores this.
	Shards int
	// Replicas sets the cache ring's replication factor for every stack the
	// harness builds (0/1 = single-owner routing; Experiment 10 sweeps
	// R = 1 vs 2 itself and ignores this).
	Replicas int
	// Metrics, when non-nil, is the obs registry every stack the harness
	// builds registers its subsystems into; genieload points its
	// -metrics-addr endpoint and live ticker at it.
	Metrics *obs.Registry
	// ZipfS > 0 switches every run the harness drives to the direct
	// rank-frequency popularity sampler (RunConfig.ZipfS); FlashCrowdPct
	// redirects that share of page loads to one viral page
	// (RunConfig.FlashCrowdPct). Experiment 13 sweeps these itself.
	ZipfS         float64
	FlashCrowdPct int
	// HotKeySpread / L1Entries / SingleFlight arm the hot-key mitigations
	// on every stack the harness builds (StackConfig fields of the same
	// names). Experiment 13 toggles them itself and ignores these.
	HotKeySpread bool
	L1Entries    int
	SingleFlight bool
}

func (o ExpOptions) scale() int {
	if o.LatencyScale <= 0 {
		return 50
	}
	return o.LatencyScale
}

func (o ExpOptions) seed() social.SeedConfig {
	if o.Seed.Users > 0 {
		return o.Seed
	}
	if o.Quick {
		return social.SeedConfig{
			Users: 100, UniqueBookmarks: 40, MaxBookmarksPer: 4,
			MaxFriendsPer: 4, MaxInvitesPer: 3, MaxWallPosts: 6,
		}
	}
	return social.SeedConfig{
		Users: 300, UniqueBookmarks: 100, MaxBookmarksPer: 6,
		MaxFriendsPer: 8, MaxInvitesPer: 5, MaxWallPosts: 10,
	}
}

func (o ExpOptions) logf(format string, args ...any) {
	if o.Out != nil {
		fmt.Fprintf(o.Out, format+"\n", args...)
	}
}

func (o ExpOptions) sessions() int {
	if o.Quick {
		return 3
	}
	return 6
}

// expPoolPages sizes the DB buffer pool so that the dataset does not fully
// fit, keeping the cached configurations disk-bound on writes (paper §5.4).
const expPoolPages = 128

func (o ExpOptions) buildStack(mode Mode, cacheBytes int64, poolPages int) (*Stack, error) {
	if poolPages == 0 {
		poolPages = expPoolPages
	}
	return BuildStack(StackConfig{
		Mode:              mode,
		Seed:              o.seed(),
		RngSeed:           42,
		LatencyScale:      o.scale(),
		CacheBytes:        cacheBytes,
		CacheShards:       o.Shards,
		Replicas:          o.Replicas,
		BufferPoolPages:   poolPages,
		DiskWidth:         2,
		AsyncInvalidation: o.Async,
		BatchWindow:       o.BatchWindow,
		Transport:         o.Transport,
		CacheAddrs:        o.CacheAddrs,
		HotKeySpread:      o.HotKeySpread,
		L1Entries:         o.L1Entries,
		SingleFlight:      o.SingleFlight,
		Obs:               o.Metrics,
	})
}

func (o ExpOptions) runCfg(clients, writePct int, zipfA float64) RunConfig {
	return RunConfig{
		Clients:         clients,
		Sessions:        o.sessions(),
		PagesPerSession: 10,
		WritePct:        writePct,
		ZipfA:           zipfA,
		ZipfS:           o.ZipfS,
		FlashCrowdPct:   o.FlashCrowdPct,
		WarmupSessions:  clients * 2,
		RngSeed:         7,
	}
}

// ---------- §5.3 microbenchmarks ----------

// MicroLookupResult compares a primary-key database lookup against a cache
// get (paper: the DB takes 10-25x longer).
type MicroLookupResult struct {
	DBLookup    time.Duration
	CacheLookup time.Duration
	Ratio       float64
}

// MicroLookup reproduces the §5.3 lookup microbenchmark.
func MicroLookup(opt ExpOptions) (MicroLookupResult, error) {
	model := latency.PaperScaled(opt.scale())
	db, err := sqldb.Open(sqldb.Config{Latency: model, BufferPoolPages: 1024})
	if err != nil {
		return MicroLookupResult{}, err
	}
	if _, err := db.Exec("CREATE TABLE kv (k INT NOT NULL, v TEXT)"); err != nil {
		return MicroLookupResult{}, err
	}
	if _, err := db.Exec("CREATE INDEX idx_kv_k ON kv (k)"); err != nil {
		return MicroLookupResult{}, err
	}
	const rows = 2000
	for i := 0; i < rows; i++ {
		if _, err := db.Exec("INSERT INTO kv (k, v) VALUES ($1, $2)",
			sqldb.I64(int64(i)), sqldb.Str(fmt.Sprintf("value-%d", i))); err != nil {
			return MicroLookupResult{}, err
		}
	}
	cache := kvcache.WithLatency(kvcache.New(0), model.CacheRoundTrip, latency.RealSleeper{})
	cache.Set("kv:1", []byte("value-1"), 0)

	const iters = 300
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := db.Query("SELECT v FROM kv WHERE k = $1", sqldb.I64(int64(i%rows))); err != nil {
			return MicroLookupResult{}, err
		}
	}
	dbPer := time.Since(start) / iters

	start = time.Now()
	for i := 0; i < iters; i++ {
		cache.Get("kv:1")
	}
	cachePer := time.Since(start) / iters
	res := MicroLookupResult{DBLookup: dbPer, CacheLookup: cachePer}
	if cachePer > 0 {
		res.Ratio = float64(dbPer) / float64(cachePer)
	}
	return res, nil
}

// MicroTriggerResult reproduces the §5.3 trigger-overhead microbenchmark:
// plain INSERT 6.3ms, no-op trigger 6.5ms, trigger opening a remote cache
// connection 11.9ms, +0.2ms per cache operation from within the trigger.
type MicroTriggerResult struct {
	PlainInsert      time.Duration
	NoopTrigger      time.Duration
	ConnectTrigger   time.Duration
	PerCacheOp       time.Duration
	NoopOverheadPct  float64
	TotalOverheadPct float64
}

// MicroTrigger measures INSERT latency under increasing trigger cost.
func MicroTrigger(opt ExpOptions) (MicroTriggerResult, error) {
	model := latency.PaperScaled(opt.scale())
	mk := func() (*sqldb.DB, error) {
		db, err := sqldb.Open(sqldb.Config{Latency: model, BufferPoolPages: 1024})
		if err != nil {
			return nil, err
		}
		_, err = db.Exec("CREATE TABLE t (v TEXT)")
		return db, err
	}
	timeInserts := func(db *sqldb.DB) (time.Duration, error) {
		const iters = 200
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := db.Exec("INSERT INTO t (v) VALUES ($1)", sqldb.Str("x")); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / iters, nil
	}

	var res MicroTriggerResult
	db, err := mk()
	if err != nil {
		return res, err
	}
	if res.PlainInsert, err = timeInserts(db); err != nil {
		return res, err
	}

	db, err = mk()
	if err != nil {
		return res, err
	}
	if err := db.CreateTrigger(sqldb.Trigger{
		Name: "noop", Table: "t", Op: sqldb.TrigInsert,
		Fn: func(q sqldb.Queryer, ev sqldb.TriggerEvent) error { return nil },
	}); err != nil {
		return res, err
	}
	if res.NoopTrigger, err = timeInserts(db); err != nil {
		return res, err
	}

	db, err = mk()
	if err != nil {
		return res, err
	}
	cache := kvcache.WithLatency(kvcache.New(0), model.CacheRoundTrip, latency.RealSleeper{})
	sleeper := latency.RealSleeper{}
	if err := db.CreateTrigger(sqldb.Trigger{
		Name: "connect", Table: "t", Op: sqldb.TrigInsert,
		Fn: func(q sqldb.Queryer, ev sqldb.TriggerEvent) error {
			sleeper.Sleep(model.CacheConnect) // open remote cache connection
			cache.Set("k", []byte("v"), 0)    // one cache op
			return nil
		},
	}); err != nil {
		return res, err
	}
	if res.ConnectTrigger, err = timeInserts(db); err != nil {
		return res, err
	}

	// Per-op cost: a cache op from within the trigger costs the same as a
	// client one — one round trip.
	start := time.Now()
	const ops = 500
	for i := 0; i < ops; i++ {
		cache.Set("k", []byte("v"), 0)
	}
	res.PerCacheOp = time.Since(start) / ops
	if res.PlainInsert > 0 {
		res.NoopOverheadPct = 100 * float64(res.NoopTrigger-res.PlainInsert) / float64(res.PlainInsert)
		res.TotalOverheadPct = 100 * float64(res.ConnectTrigger-res.PlainInsert) / float64(res.PlainInsert)
	}
	return res, nil
}

// ---------- Experiment 1 (Fig 2a/2b, Table 2) ----------

// Exp1Point is one (mode, clients) measurement.
type Exp1Point struct {
	Mode       Mode
	Clients    int
	Throughput float64
	MeanLat    time.Duration
	Errors     int
}

// Exp1Clients is the default client sweep (paper: 1-40).
func Exp1Clients(quick bool) []int {
	if quick {
		return []int{4, 15, 30}
	}
	return []int{1, 5, 10, 15, 20, 30, 40}
}

// Exp1 sweeps client counts for the three systems (Fig 2a throughput and
// Fig 2b latency).
func Exp1(opt ExpOptions, clients []int) ([]Exp1Point, error) {
	if clients == nil {
		clients = Exp1Clients(opt.Quick)
	}
	var out []Exp1Point
	for _, mode := range []Mode{ModeNoCache, ModeInvalidate, ModeUpdate} {
		for _, c := range clients {
			st, err := opt.buildStack(mode, 0, 0)
			if err != nil {
				return nil, err
			}
			rep, err := Run(st, opt.runCfg(c, 20, 2.0))
			st.Close()
			if err != nil {
				return nil, err
			}
			mean := overallMean(rep)
			p := Exp1Point{Mode: mode, Clients: c, Throughput: rep.Throughput, MeanLat: mean, Errors: rep.Errors}
			out = append(out, p)
			opt.logf("exp1  %-10s clients=%-3d %9.1f pages/s  mean=%v", mode, c, p.Throughput, p.MeanLat.Round(time.Microsecond))
		}
	}
	return out, nil
}

func overallMean(rep Report) time.Duration {
	var total time.Duration
	n := 0
	for _, st := range rep.ByPage {
		total += st.Mean * time.Duration(st.Count)
		n += st.Count
	}
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}

// Exp1PageRow is one Table 2 row: per-page-type latency per mode.
type Exp1PageRow struct {
	Page   social.PageType
	ByMode map[Mode]time.Duration
}

// Exp1PageTable reproduces Table 2 (average latency by page type at the
// paper's 15-client operating point).
func Exp1PageTable(opt ExpOptions) ([]Exp1PageRow, error) {
	byMode := map[Mode]map[social.PageType]PageStats{}
	for _, mode := range []Mode{ModeUpdate, ModeInvalidate, ModeNoCache} {
		st, err := opt.buildStack(mode, 0, 0)
		if err != nil {
			return nil, err
		}
		rep, err := Run(st, opt.runCfg(15, 20, 2.0))
		st.Close()
		if err != nil {
			return nil, err
		}
		byMode[mode] = rep.ByPage
	}
	var rows []Exp1PageRow
	for _, p := range social.PageTypes() {
		row := Exp1PageRow{Page: p, ByMode: map[Mode]time.Duration{}}
		for mode, pages := range byMode {
			row.ByMode[mode] = pages[p].Mean
		}
		rows = append(rows, row)
		opt.logf("table2 %-10s update=%-12v inval=%-12v nocache=%v",
			p, row.ByMode[ModeUpdate].Round(time.Microsecond),
			row.ByMode[ModeInvalidate].Round(time.Microsecond),
			row.ByMode[ModeNoCache].Round(time.Microsecond))
	}
	return rows, nil
}

// ---------- Experiment 2 (Fig 3a): read/write mix ----------

// Exp2Point is one (mode, read%) measurement.
type Exp2Point struct {
	Mode       Mode
	ReadPct    int
	Throughput float64
}

// Exp2ReadPcts is the default mix sweep (paper: 0-100%).
func Exp2ReadPcts(quick bool) []int {
	if quick {
		return []int{0, 80, 100}
	}
	return []int{0, 20, 40, 60, 80, 90, 100}
}

// Exp2 varies the read fraction (Fig 3a).
func Exp2(opt ExpOptions, readPcts []int) ([]Exp2Point, error) {
	if readPcts == nil {
		readPcts = Exp2ReadPcts(opt.Quick)
	}
	var out []Exp2Point
	for _, mode := range []Mode{ModeNoCache, ModeInvalidate, ModeUpdate} {
		for _, rp := range readPcts {
			st, err := opt.buildStack(mode, 0, 0)
			if err != nil {
				return nil, err
			}
			rep, err := Run(st, opt.runCfg(15, 100-rp, 2.0))
			st.Close()
			if err != nil {
				return nil, err
			}
			out = append(out, Exp2Point{Mode: mode, ReadPct: rp, Throughput: rep.Throughput})
			opt.logf("exp2  %-10s read%%=%-3d %9.1f pages/s", mode, rp, rep.Throughput)
		}
	}
	return out, nil
}

// ---------- Experiment 3 (Fig 3b): user-distribution skew ----------

// Exp3Point is one (mode, zipfA) measurement.
type Exp3Point struct {
	Mode       Mode
	ZipfA      float64
	Throughput float64
}

// Exp3ZipfAs is the default skew sweep (paper: 1.1-2.0).
func Exp3ZipfAs(quick bool) []float64 {
	if quick {
		return []float64{1.2, 2.0}
	}
	return []float64{1.1, 1.2, 1.4, 1.6, 1.8, 2.0}
}

// Exp3 varies the zipf parameter (Fig 3b).
func Exp3(opt ExpOptions, zipfAs []float64) ([]Exp3Point, error) {
	if zipfAs == nil {
		zipfAs = Exp3ZipfAs(opt.Quick)
	}
	var out []Exp3Point
	for _, mode := range []Mode{ModeNoCache, ModeInvalidate, ModeUpdate} {
		for _, a := range zipfAs {
			st, err := opt.buildStack(mode, 0, 0)
			if err != nil {
				return nil, err
			}
			rep, err := Run(st, opt.runCfg(15, 20, a))
			st.Close()
			if err != nil {
				return nil, err
			}
			out = append(out, Exp3Point{Mode: mode, ZipfA: a, Throughput: rep.Throughput})
			opt.logf("exp3  %-10s a=%.1f %9.1f pages/s", mode, a, rep.Throughput)
		}
	}
	return out, nil
}

// ---------- Experiment 4 (Fig 3c): cache size ----------

// Exp4Point is one (mode, cacheBytes) measurement.
type Exp4Point struct {
	Mode       Mode
	CacheBytes int64
	Throughput float64
	HitRate    float64
	Evictions  int64
}

// Exp4CacheSizes is the default size sweep. The paper sweeps 64-512 MB
// against a 10 GB database; scaled to our dataset.
func Exp4CacheSizes(quick bool) []int64 {
	if quick {
		return []int64{32 << 10, 256 << 10}
	}
	return []int64{16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10}
}

// Exp4 varies the cache capacity (Fig 3c; NoCache is flat by definition and
// measured once as the reference line).
func Exp4(opt ExpOptions, sizes []int64) ([]Exp4Point, error) {
	if sizes == nil {
		sizes = Exp4CacheSizes(opt.Quick)
	}
	var out []Exp4Point
	for _, mode := range []Mode{ModeInvalidate, ModeUpdate} {
		for _, size := range sizes {
			st, err := opt.buildStack(mode, size, 0)
			if err != nil {
				return nil, err
			}
			rep, err := Run(st, opt.runCfg(15, 20, 2.0))
			if err != nil {
				st.Close()
				return nil, err
			}
			// Hit rate from the Genie's read path: the raw cache counters
			// also see trigger probes (a Gets on an uncached key is a miss),
			// which would understate the application-visible hit rate.
			gs := st.Genie.Stats()
			hitRate := 0.0
			if total := gs.Hits + gs.Misses; total > 0 {
				hitRate = float64(gs.Hits) / float64(total)
			}
			evictions := st.CacheStats().Evictions
			st.Close()
			out = append(out, Exp4Point{
				Mode: mode, CacheBytes: size, Throughput: rep.Throughput,
				HitRate: hitRate, Evictions: evictions,
			})
			opt.logf("exp4  %-10s cache=%-8d %9.1f pages/s  hit=%.2f evictions=%d",
				mode, size, rep.Throughput, hitRate, evictions)
		}
	}
	return out, nil
}

// Exp4Colocated reproduces the §5.4 variant where memcached shares the
// database machine: the DB's buffer pool shrinks by the cache's share of
// memory. Returns throughput for (separate, colocated) per cached mode.
type Exp4ColocatedResult struct {
	Mode                Mode
	SeparateThroughput  float64
	ColocatedThroughput float64
}

// Exp4Colocated runs the colocated-cache comparison.
func Exp4Colocated(opt ExpOptions) ([]Exp4ColocatedResult, error) {
	var out []Exp4ColocatedResult
	for _, mode := range []Mode{ModeInvalidate, ModeUpdate} {
		sep, err := opt.buildStack(mode, 256<<10, expPoolPages)
		if err != nil {
			return nil, err
		}
		repSep, err := Run(sep, opt.runCfg(15, 20, 2.0))
		sep.Close()
		if err != nil {
			return nil, err
		}
		// Colocated: the cache's memory comes out of the buffer pool. The
		// shrink must leave the pool well below the hot set to be visible
		// at this dataset scale (the paper gives most of the box's memory
		// to memcached).
		colo, err := opt.buildStack(mode, 256<<10, expPoolPages/16)
		if err != nil {
			return nil, err
		}
		repColo, err := Run(colo, opt.runCfg(15, 20, 2.0))
		colo.Close()
		if err != nil {
			return nil, err
		}
		out = append(out, Exp4ColocatedResult{
			Mode: mode, SeparateThroughput: repSep.Throughput, ColocatedThroughput: repColo.Throughput,
		})
		opt.logf("exp4b %-10s separate=%9.1f colocated=%9.1f pages/s",
			mode, repSep.Throughput, repColo.Throughput)
	}
	return out, nil
}

// ---------- Experiment 5: trigger overhead under load ----------

// Exp5Result compares the real system against the "ideal" system with
// triggers removed (paper: triggers cost 22-28% of throughput).
type Exp5Result struct {
	Mode            Mode
	WithTriggers    float64
	WithoutTriggers float64
	OverheadPct     float64
}

// Exp5 measures trigger overhead on the loaded system.
func Exp5(opt ExpOptions) ([]Exp5Result, error) {
	var out []Exp5Result
	for _, mode := range []Mode{ModeInvalidate, ModeUpdate} {
		withSt, err := opt.buildStack(mode, 0, 0)
		if err != nil {
			return nil, err
		}
		repWith, err := Run(withSt, opt.runCfg(15, 20, 2.0))
		withSt.Close()
		if err != nil {
			return nil, err
		}
		// The ideal system: same stack, triggers disabled. Cached reads may
		// return stale data, but as in the paper this still estimates the
		// upper-bound performance of free cache maintenance.
		idealSt, err := opt.buildStack(mode, 0, 0)
		if err != nil {
			return nil, err
		}
		idealSt.DB.SetTriggersEnabled(false)
		repIdeal, err := Run(idealSt, opt.runCfg(15, 20, 2.0))
		idealSt.Close()
		if err != nil {
			return nil, err
		}
		r := Exp5Result{Mode: mode, WithTriggers: repWith.Throughput, WithoutTriggers: repIdeal.Throughput}
		if r.WithoutTriggers > 0 {
			r.OverheadPct = 100 * (r.WithoutTriggers - r.WithTriggers) / r.WithoutTriggers
		}
		out = append(out, r)
		opt.logf("exp5  %-10s with=%9.1f ideal=%9.1f overhead=%.0f%%",
			mode, r.WithTriggers, r.WithoutTriggers, r.OverheadPct)
	}
	return out, nil
}

// ---------- Experiment 6: sync vs async trigger propagation ----------

// Exp6Point is one (mode, async) measurement. The experiment extends §5.3's
// trigger-overhead result: the paper measures per-trigger connection setup
// roughly doubling INSERT latency and proposes amortizing the trigger→cache
// path as future work; the invalidation bus is that optimization, and this
// sweep quantifies it under a write-heavy workload.
type Exp6Point struct {
	Mode         Mode
	Async        bool
	Throughput   float64
	MeanWriteLat time.Duration // mean CreateBM page latency
	P99WriteLat  time.Duration
	Bus          invbus.Stats // zero-valued for sync points
}

// Exp6 compares synchronous per-op trigger→cache propagation against the
// asynchronous batched invalidation bus at a write-heavy operating point.
func Exp6(opt ExpOptions) ([]Exp6Point, error) {
	var out []Exp6Point
	for _, mode := range []Mode{ModeInvalidate, ModeUpdate} {
		for _, async := range []bool{false, true} {
			st, err := BuildStackForExp6(opt, mode, async)
			if err != nil {
				return nil, err
			}
			rep, err := Run(st, opt.runCfg(15, 60, 2.0))
			if err != nil {
				st.Close()
				return nil, err
			}
			p := Exp6Point{
				Mode: mode, Async: async, Throughput: rep.Throughput,
				MeanWriteLat: rep.ByPage[social.PageCreateBM].Mean,
				P99WriteLat:  rep.ByPage[social.PageCreateBM].P99,
			}
			if st.Genie != nil {
				p.Bus = st.Genie.InvStats()
			}
			st.Close()
			out = append(out, p)
			opt.logf("exp6  %-10s async=%-5v %9.1f pages/s  write mean=%v p99=%v  (batched %d ops into %d flushes, %d coalesced, %d stalls/%v stalled)",
				mode, async, p.Throughput,
				p.MeanWriteLat.Round(time.Microsecond), p.P99WriteLat.Round(time.Microsecond),
				p.Bus.Applied, p.Bus.Flushes, p.Bus.Coalesced,
				p.Bus.QueueFullStalls, p.Bus.StallTime.Round(time.Microsecond))
		}
	}
	return out, nil
}

// ---------- Experiment 7: remote cache tier over real TCP ----------

// Exp7Nodes is the ring size Experiment 7 deploys: enough nodes that batch
// flushes regularly span several owners, exercising the parallel fan-out.
const Exp7Nodes = 4

// Exp7Point is one (transport, async) measurement over the full social
// workload. The in-process points replicate Experiment 6's conditions; the
// remote points run the identical workload against Exp7Nodes real
// cacheproto servers on loopback TCP behind pooled clients — the first
// measurement in this reproduction where the §5.3 trigger-propagation win
// is taken over an actual network round trip rather than an injected one.
type Exp7Point struct {
	Transport    CacheTransport
	Async        bool
	Throughput   float64
	MeanWriteLat time.Duration // mean CreateBM page latency
	P99WriteLat  time.Duration
	Bus          invbus.Stats // zero-valued for sync points
}

// BuildStackForExp7 assembles one Experiment 7 stack: ModeUpdate over an
// Exp7Nodes-node ring reached through the given transport.
func BuildStackForExp7(opt ExpOptions, mode Mode, transport CacheTransport, async bool) (*Stack, error) {
	return BuildStack(StackConfig{
		Mode:              mode,
		Seed:              opt.seed(),
		RngSeed:           42,
		LatencyScale:      opt.scale(),
		BufferPoolPages:   expPoolPages,
		DiskWidth:         2,
		CacheNodes:        Exp7Nodes,
		Replicas:          opt.Replicas,
		Transport:         transport,
		CacheAddrs:        opt.CacheAddrs,
		AsyncInvalidation: async,
		BatchWindow:       opt.BatchWindow,
		Obs:               opt.Metrics,
	})
}

// Exp7 drives the write-heavy workload over the in-process and remote-TCP
// transports, sync and async-bus each. Expected shape: the remote transport
// costs throughput across the board (every cache hop is now a real syscall
// + TCP round trip), and the async bus claws most of it back on the write
// path — batching is worth more when round trips are real.
func Exp7(opt ExpOptions) ([]Exp7Point, error) {
	var out []Exp7Point
	for _, transport := range []CacheTransport{TransportInProcess, TransportRemote} {
		for _, async := range []bool{false, true} {
			st, err := BuildStackForExp7(opt, ModeUpdate, transport, async)
			if err != nil {
				return nil, err
			}
			rep, err := Run(st, opt.runCfg(15, 60, 2.0))
			if err != nil {
				st.Close()
				return nil, err
			}
			p := Exp7Point{
				Transport: transport, Async: async, Throughput: rep.Throughput,
				MeanWriteLat: rep.ByPage[social.PageCreateBM].Mean,
				P99WriteLat:  rep.ByPage[social.PageCreateBM].P99,
			}
			if st.Genie != nil {
				p.Bus = st.Genie.InvStats()
			}
			st.Close()
			out = append(out, p)
			opt.logf("exp7  %-10s async=%-5v %9.1f pages/s  write mean=%v p99=%v  (%d flushes, %d stalls/%v stalled)",
				p.Transport, async, p.Throughput,
				p.MeanWriteLat.Round(time.Microsecond), p.P99WriteLat.Round(time.Microsecond),
				p.Bus.Flushes, p.Bus.QueueFullStalls, p.Bus.StallTime.Round(time.Microsecond))
		}
	}
	return out, nil
}

// ---------- §5.2 programmer effort ----------

// EffortReport reproduces the paper's porting-effort accounting.
type EffortReport struct {
	CachedObjects   int
	Triggers        int
	GeneratedLines  int
	AppLinesChanged int
}

// Effort builds the cached-object set and counts generated artifacts.
func Effort() (EffortReport, error) {
	st, err := BuildStack(StackConfig{
		Mode: ModeUpdate,
		Seed: social.SeedConfig{Users: 5, UniqueBookmarks: 5, MaxBookmarksPer: 1, MaxFriendsPer: 1, MaxInvitesPer: 1, MaxWallPosts: 1},
	})
	if err != nil {
		return EffortReport{}, err
	}
	rep := EffortReport{
		// Porting the app is exactly the CachedObjectSpecs declarations:
		// one cacheable(...) call per object (paper: ~20 lines changed).
		AppLinesChanged: len(social.CachedObjectSpecs(core.UpdateInPlace)),
	}
	for _, co := range st.Genie.Objects() {
		rep.CachedObjects++
		rep.Triggers += len(co.Triggers())
		rep.GeneratedLines += co.TriggerSourceLines()
	}
	return rep, nil
}

// ---------- Ablation: template-based invalidation baseline ----------

// AblationTemplateResult contrasts CacheGenie's key-granular invalidation
// with GlobeCBC-style template-wide invalidation under the same workload.
type AblationTemplateResult struct {
	GenieHitRate       float64
	TemplateHitRate    float64
	GenieThroughput    float64
	TemplateThroughput float64
}

// AblationTemplateInvalidation runs the same session workload over
// CacheGenie (invalidate strategy) and the template-invalidation baseline.
func AblationTemplateInvalidation(opt ExpOptions) (AblationTemplateResult, error) {
	var res AblationTemplateResult

	genieSt, err := opt.buildStack(ModeInvalidate, 0, 0)
	if err != nil {
		return res, err
	}
	repG, err := Run(genieSt, opt.runCfg(8, 20, 2.0))
	if err != nil {
		genieSt.Close()
		return res, err
	}
	gs := genieSt.Genie.Stats()
	genieSt.Close()
	if total := gs.Hits + gs.Misses; total > 0 {
		res.GenieHitRate = float64(gs.Hits) / float64(total)
	}
	res.GenieThroughput = repG.Throughput

	// Baseline: same engine + app, reads cached by exact query text with
	// template-wide invalidation, no CacheGenie.
	model := latency.PaperScaled(opt.scale())
	db, err := sqldb.Open(sqldb.Config{
		BufferPoolPages: expPoolPages, DiskWidth: 2, Latency: model,
		LockTimeout: 10 * time.Second,
	})
	if err != nil {
		return res, err
	}
	tcache := kvcache.New(0)
	var logical kvcache.Cache = tcache
	if model.CacheRoundTrip > 0 {
		logical = kvcache.WithLatency(tcache, model.CacheRoundTrip, latency.RealSleeper{})
	}
	tconn := templateinv.New(db, logical, 0)
	reg := orm.NewRegistry(tconn)
	if err := social.RegisterModels(reg); err != nil {
		return res, err
	}
	if err := reg.CreateTables(); err != nil {
		return res, err
	}
	app, err := social.NewApp(reg, nil, core.Invalidate)
	if err != nil {
		return res, err
	}
	if err := app.Seed(opt.seed(), rand.New(rand.NewSource(43))); err != nil {
		return res, err
	}
	baselineStack := &Stack{Config: StackConfig{Mode: ModeInvalidate}, DB: db, Reg: reg, App: app, Stores: []*kvcache.Store{tcache}, Cache: logical}
	repT, err := Run(baselineStack, opt.runCfg(8, 20, 2.0))
	if err != nil {
		return res, err
	}
	ts := tconn.Stats()
	if total := ts.Hits + ts.Misses; total > 0 {
		res.TemplateHitRate = float64(ts.Hits) / float64(total)
	}
	res.TemplateThroughput = repT.Throughput
	opt.logf("ablation template-inv: genie hit=%.2f (%.1f pages/s)  template hit=%.2f (%.1f pages/s)",
		res.GenieHitRate, res.GenieThroughput, res.TemplateHitRate, res.TemplateThroughput)
	return res, nil
}

// RunMode builds a fresh stack for mode and runs one workload
// configuration — the shared primitive behind the benchmark harness.
func RunMode(opt ExpOptions, mode Mode, clients, writePct int, zipfA float64) (Report, error) {
	st, err := opt.buildStack(mode, 0, 0)
	if err != nil {
		return Report{}, err
	}
	defer st.Close()
	return Run(st, opt.runCfg(clients, writePct, zipfA))
}

// BuildStackForBench exposes the trigger-connection-reuse and cache-cluster
// knobs to the benchmark harness.
func BuildStackForBench(opt ExpOptions, mode Mode, reuseTriggerConns bool, cacheNodes int) (*Stack, error) {
	return BuildStack(StackConfig{
		Mode:                    mode,
		Seed:                    opt.seed(),
		RngSeed:                 42,
		LatencyScale:            opt.scale(),
		BufferPoolPages:         expPoolPages,
		DiskWidth:               2,
		CacheNodes:              cacheNodes,
		Replicas:                opt.Replicas,
		ReuseTriggerConnections: reuseTriggerConns,
		Obs:                     opt.Metrics,
	})
}

// BuildStackForExp6 exposes the invalidation-bus knobs to the benchmark
// harness. Aside from the async override it builds the standard experiment
// stack, so opt's transport settings apply as everywhere else.
func BuildStackForExp6(opt ExpOptions, mode Mode, async bool) (*Stack, error) {
	opt.Async = async
	return opt.buildStack(mode, 0, 0)
}
