package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"cachegenie/internal/cacheproto"
	"cachegenie/internal/cluster"
	"cachegenie/internal/obs"
	"cachegenie/internal/social"
)

// ---------- Experiment 13: hot keys under zipf skew + flash crowd ----------
//
// The replicated tier of Experiments 10-12 balances *keys* across nodes; it
// does nothing about a single key taking a disproportionate share of all
// traffic. This experiment makes that failure mode concrete — a zipf s=1.1
// user popularity plus a flash crowd stampeding one page — and measures the
// three mitigations independently and together:
//
//   - spread:       detected-hot reads rotate over the full replica set
//                   (cluster popularity sampler + rotated routing)
//   - l1:           a small lease-stamped near-cache in each client pool
//                   absorbs hot reads before they reach any node
//   - singleflight: concurrent misses of one key coalesce into a single
//                   database load
//
// Reported per configuration: read-page tail latency (p99/p999 — the tail
// is where one saturated node or a miss stampede shows first), per-node get
// imbalance (max/mean of per-node get counts — the spreading target), and
// the database read loads actually run (the single-flight target).

// Exp13Nodes is the ring size; Exp13Replicas the replication factor hot
// reads can spread over.
const (
	Exp13Nodes    = 4
	Exp13Replicas = 2
)

// Exp13ZipfS is the rank-frequency exponent of the user popularity
// (RunConfig.ZipfS); Exp13FlashPct the share of page loads redirected to
// the viral page (RunConfig.FlashCrowdPct).
const (
	Exp13ZipfS    = 1.1
	Exp13FlashPct = 25
)

// exp13HotKeyWindow / exp13HotKeyThreshold tune the popularity sampler for
// bench-scale runs: small enough that a hot key is flagged within one quick
// phase, high enough that the zipf tail stays cold.
const (
	exp13HotKeyWindow    = 4096
	exp13HotKeyThreshold = 64
)

// exp13L1Entries sizes the per-pool near-cache; a few thousand entries, the
// "absorb hot-key storms, don't mirror the node" shape.
const exp13L1Entries = 4096

// Exp13Mitigations selects which hot-key mitigations a configuration arms.
type Exp13Mitigations struct {
	Spread       bool
	L1           bool
	SingleFlight bool
}

// Name renders the configuration label used in logs and JSON.
func (m Exp13Mitigations) Name() string {
	switch m {
	case Exp13Mitigations{}:
		return "all-off"
	case Exp13Mitigations{Spread: true, L1: true, SingleFlight: true}:
		return "all-on"
	case Exp13Mitigations{Spread: true}:
		return "spread"
	case Exp13Mitigations{L1: true}:
		return "l1"
	case Exp13Mitigations{SingleFlight: true}:
		return "singleflight"
	}
	return fmt.Sprintf("spread=%v,l1=%v,sf=%v", m.Spread, m.L1, m.SingleFlight)
}

// Exp13Configs is the sweep: everything off, each mitigation alone, all on.
func Exp13Configs() []Exp13Mitigations {
	return []Exp13Mitigations{
		{},
		{Spread: true},
		{L1: true},
		{SingleFlight: true},
		{Spread: true, L1: true, SingleFlight: true},
	}
}

// Exp13Point is one configuration's measurement.
type Exp13Point struct {
	Name                       string
	Spread, L1on, SingleFlight bool

	Throughput float64
	Errors     int
	// Read-page latency (LookupBM — the page the flash crowd stampedes).
	ReadMean, ReadP99, ReadP999 time.Duration

	// NodeGets is each node's get count (hits+misses at the store end) in
	// ring order; Imbalance is max/mean over those counts — 1.0 is perfect
	// balance, Exp13Nodes is everything on one node.
	NodeGets  []int64
	Imbalance float64

	// DBReadLoads is how many read-miss database loads actually ran:
	// misses minus the loads that piggybacked on a concurrent leader.
	DBReadLoads int64

	HotKeys cluster.HotKeyStats
	L1Stats cacheproto.L1Stats
	// FlightLeads/FlightShared are the single-flight counters (zero with
	// the mitigation off).
	FlightLeads, FlightShared int64

	// Metrics is the registry dump captured before teardown (the CI bench
	// smoke uploads the all-on point's dump).
	Metrics []byte
}

// Exp13Result is the full Experiment 13 report.
type Exp13Result struct {
	Points []Exp13Point
}

// Point returns the named configuration's measurement, if present.
func (r Exp13Result) Point(name string) (Exp13Point, bool) {
	for _, p := range r.Points {
		if p.Name == name {
			return p, true
		}
	}
	return Exp13Point{}, false
}

// BuildStackForExp13 assembles one Experiment 13 stack: ModeUpdate over
// Exp13Nodes loopback cacheproto servers at R=Exp13Replicas, with the given
// mitigations armed. Remote transport is structural — the L1 near-cache
// fronts a network round trip, and per-node imbalance is only meaningful
// when nodes are actual servers.
func BuildStackForExp13(opt ExpOptions, mit Exp13Mitigations) (*Stack, error) {
	if len(opt.CacheAddrs) > 0 {
		return nil, fmt.Errorf("workload: exp13 reads per-node store counters; it cannot drive external -cache-addrs servers")
	}
	return BuildStack(StackConfig{
		Mode:              ModeUpdate,
		Seed:              opt.seed(),
		RngSeed:           42,
		LatencyScale:      opt.scale(),
		BufferPoolPages:   expPoolPages,
		DiskWidth:         2,
		CacheNodes:        Exp13Nodes,
		Replicas:          Exp13Replicas,
		Transport:         TransportRemote,
		AsyncInvalidation: opt.Async,
		BatchWindow:       opt.BatchWindow,
		HotKeySpread:      mit.Spread,
		HotKeyWindow:      exp13HotKeyWindow,
		HotKeyThreshold:   exp13HotKeyThreshold,
		L1Entries:         l1Entries(mit.L1),
		SingleFlight:      mit.SingleFlight,
		Obs:               opt.Metrics,
	})
}

func l1Entries(on bool) int {
	if on {
		return exp13L1Entries
	}
	return 0
}

// Exp13 runs the zipf + flash-crowd workload once per mitigation
// configuration. Expected shape: all-off concentrates gets on the hot key's
// preferred node (imbalance well above 1) and pays for it in read tail
// latency; spread flattens the imbalance; l1 removes hot reads from the
// wire entirely; singleflight collapses the stampede's database loads to
// ~1 per hot key per miss window; all-on does all three at once.
func Exp13(opt ExpOptions) (Exp13Result, error) {
	var res Exp13Result
	for _, mit := range Exp13Configs() {
		p, err := exp13Point(opt, mit)
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, p)
	}
	if off, ok := res.Point("all-off"); ok {
		if on, ok2 := res.Point("all-on"); ok2 {
			opt.logf("exp13 all-off vs all-on: p999 %v -> %v, imbalance %.2f -> %.2f, db read loads %d -> %d",
				off.ReadP999.Round(time.Microsecond), on.ReadP999.Round(time.Microsecond),
				off.Imbalance, on.Imbalance, off.DBReadLoads, on.DBReadLoads)
		}
	}
	return res, nil
}

func exp13Point(opt ExpOptions, mit Exp13Mitigations) (Exp13Point, error) {
	p := Exp13Point{Name: mit.Name(), Spread: mit.Spread, L1on: mit.L1, SingleFlight: mit.SingleFlight}
	// Fresh registry per point unless the caller supplied one: each point's
	// loopback servers get fresh ports, and stale series would pile up.
	reg := opt.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
		opt.Metrics = reg
	}
	st, err := BuildStackForExp13(opt, mit)
	if err != nil {
		return p, err
	}
	defer st.Close()

	runCfg := opt.runCfg(15, 20, 2.0)
	runCfg.ZipfS = Exp13ZipfS
	runCfg.FlashCrowdPct = Exp13FlashPct
	rep, err := Run(st, runCfg)
	if err != nil {
		return p, err
	}

	p.Throughput = rep.Throughput
	p.Errors = rep.Errors
	read := rep.ByPage[social.PageLookupBM]
	p.ReadMean, p.ReadP99, p.ReadP999 = read.Mean, read.P99, read.P999

	// Per-node get imbalance from the store ends (they count even what the
	// wire never sees — nothing here, but symmetric with exp10's reading).
	var total, max int64
	for _, store := range st.Stores {
		s := store.Stats()
		gets := s.Hits + s.Misses
		p.NodeGets = append(p.NodeGets, gets)
		total += gets
		if gets > max {
			max = gets
		}
	}
	if len(p.NodeGets) > 0 && total > 0 {
		mean := float64(total) / float64(len(p.NodeGets))
		p.Imbalance = float64(max) / mean
	}

	gs := st.Genie.Stats()
	p.FlightLeads, p.FlightShared = gs.FlightLeads, gs.FlightShared
	p.DBReadLoads = gs.Misses - gs.FlightShared
	tier := st.CacheTierStats()
	p.HotKeys = tier.HotKeys
	p.L1Stats = tier.L1

	opt.logf("exp13 %-12s %9.1f pages/s  read p99=%v p999=%v  imbalance=%.2f  db-loads=%d  (spread=%d repairs=%d, l1 hits=%d, sf shared=%d)",
		p.Name, p.Throughput, p.ReadP99.Round(time.Microsecond), p.ReadP999.Round(time.Microsecond),
		p.Imbalance, p.DBReadLoads,
		p.HotKeys.SpreadReads, p.HotKeys.SpreadRepairs, p.L1Stats.Hits, p.FlightShared)

	var dump bytes.Buffer
	if err := reg.WritePrometheus(&dump); err == nil {
		p.Metrics = dump.Bytes()
	}
	return p, nil
}

// ---------- BENCH_exp13.json ----------

// Exp13JSONPoint serializes one configuration.
type Exp13JSONPoint struct {
	Name                  string  `json:"name"`
	Spread                bool    `json:"spread"`
	L1                    bool    `json:"l1"`
	SingleFlight          bool    `json:"singleflight"`
	ThroughputPagesPerSec float64 `json:"throughput_pages_per_sec"`
	Errors                int     `json:"errors"`
	ReadMeanMs            float64 `json:"read_mean_ms"`
	ReadP99Ms             float64 `json:"read_p99_ms"`
	ReadP999Ms            float64 `json:"read_p999_ms"`
	NodeGets              []int64 `json:"node_gets"`
	Imbalance             float64 `json:"imbalance_max_over_mean"`
	DBReadLoads           int64   `json:"db_read_loads"`
	HotKeyObserved        int64   `json:"hotkey_observed"`
	HotKeyFlagged         int64   `json:"hotkey_flagged"`
	SpreadReads           int64   `json:"spread_reads"`
	SpreadRepairs         int64   `json:"spread_repairs"`
	L1Hits                int64   `json:"l1_hits"`
	L1Misses              int64   `json:"l1_misses"`
	L1Invalidations       int64   `json:"l1_invalidations"`
	FlightLeads           int64   `json:"singleflight_leads"`
	FlightShared          int64   `json:"singleflight_shared"`
}

// Exp13JSON is the BENCH_exp13.json document.
type Exp13JSON struct {
	Experiment    string           `json:"experiment"`
	Nodes         int              `json:"nodes"`
	Replicas      int              `json:"replicas"`
	ZipfS         float64          `json:"zipf_s"`
	FlashCrowdPct int              `json:"flash_crowd_pct"`
	Points        []Exp13JSONPoint `json:"points"`
}

// WriteExp13JSON records an Experiment 13 run as JSON at path (the CI bench
// smoke uploads BENCH_*.json files as workflow artifacts).
func WriteExp13JSON(path string, r Exp13Result) error {
	doc := Exp13JSON{
		Experiment: "exp13-hot-keys", Nodes: Exp13Nodes, Replicas: Exp13Replicas,
		ZipfS: Exp13ZipfS, FlashCrowdPct: Exp13FlashPct,
	}
	for _, p := range r.Points {
		doc.Points = append(doc.Points, Exp13JSONPoint{
			Name:                  p.Name,
			Spread:                p.Spread,
			L1:                    p.L1on,
			SingleFlight:          p.SingleFlight,
			ThroughputPagesPerSec: p.Throughput,
			Errors:                p.Errors,
			ReadMeanMs:            ms(p.ReadMean),
			ReadP99Ms:             ms(p.ReadP99),
			ReadP999Ms:            ms(p.ReadP999),
			NodeGets:              p.NodeGets,
			Imbalance:             p.Imbalance,
			DBReadLoads:           p.DBReadLoads,
			HotKeyObserved:        p.HotKeys.Observed,
			HotKeyFlagged:         p.HotKeys.Flagged,
			SpreadReads:           p.HotKeys.SpreadReads,
			SpreadRepairs:         p.HotKeys.SpreadRepairs,
			L1Hits:                p.L1Stats.Hits,
			L1Misses:              p.L1Stats.Misses,
			L1Invalidations:       p.L1Stats.Invalidations,
			FlightLeads:           p.FlightLeads,
			FlightShared:          p.FlightShared,
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("workload: marshal %s: %w", path, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
