package workload

import (
	"math/rand"
	"testing"
)

func TestUserSamplerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewUserSampler(50, 2.0, rng)
	for i := 0; i < 5000; i++ {
		u := s.Sample(rng)
		if u < 1 || u > 50 {
			t.Fatalf("user %d out of range", u)
		}
	}
}

// TestUserSamplerSkewDirection pins the paper's §5.1 parameterization: a
// LOWER zipf parameter concentrates sessions on fewer users (heavier tail
// of the per-user session-count distribution), which is what makes the
// cached systems faster at a=1.2 than a=2.0 in Figure 3b.
func TestUserSamplerSkewDirection(t *testing.T) {
	share := func(a float64) float64 {
		// Average over several draws to smooth sampling noise.
		total := 0.0
		for seed := int64(0); seed < 10; seed++ {
			s := NewUserSampler(500, a, rand.New(rand.NewSource(seed)))
			total += s.TopUserShare()
		}
		return total / 10
	}
	lowA := share(1.2)  // heavy-tailed counts: a few power users
	highA := share(2.0) // most users have one session
	if lowA <= highA {
		t.Fatalf("top-user share: a=1.2 gives %.4f, a=2.0 gives %.4f; want low-a more concentrated",
			lowA, highA)
	}
}

func TestUserSamplerCoversAllUsers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewUserSampler(20, 2.0, rng)
	seen := map[int]bool{}
	for i := 0; i < 20000; i++ {
		seen[s.Sample(rng)] = true
	}
	// With a=2.0 weights are near-uniform (mostly 1), so every user should
	// appear.
	if len(seen) != 20 {
		t.Fatalf("only %d/20 users sampled", len(seen))
	}
}
