package workload

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReplicatedStackFansOutWrites: a Replicas=2 loopback stack stores
// every cache entry on both of its replicas — checked at the store ends, so
// the fan-out is proven on the wire path, not just in-process.
func TestReplicatedStackFansOutWrites(t *testing.T) {
	st, err := BuildStackForExp10(tinyOpts(), 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	if st.Ring == nil || st.Ring.Replicas() != 2 {
		t.Fatalf("stack ring replicas = %v", st.Ring)
	}
	ring := st.Ring.Ring()
	key := "exp10-fanout-probe"
	st.Cache.Set(key, []byte("v"), 0)
	reps := ring.ReplicasFor(key)
	if len(reps) != 2 || reps[0] == reps[1] {
		t.Fatalf("ReplicasFor = %v", reps)
	}
	held := 0
	for i, store := range st.Stores {
		if _, ok := store.GetQuiet(key); ok {
			held++
			inSet := false
			for _, ni := range reps {
				if ring.NodeID(ni) == st.Pools[i].Addr() {
					inSet = true
				}
			}
			if !inSet {
				t.Fatalf("key held on non-replica node %d", i)
			}
		}
	}
	if held != 2 {
		t.Fatalf("key held on %d nodes, want 2", held)
	}
}

// TestExp10ReplicatedFailoverTimeline is the acceptance run: with R=2 the
// hit rate rides through the node kill (>= 0.90, vs the ~0.80 R=1 collapse
// exp8 established) and the staleness scan after FlushInvalidations finds
// no divergent or orphaned replicas.
func TestExp10ReplicatedFailoverTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("six full workload phases over TCP")
	}
	res, err := Exp10(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	r1, ok := res.Timeline(1)
	if !ok {
		t.Fatal("no R=1 timeline")
	}
	r2, ok := res.Timeline(Exp10Replicas)
	if !ok {
		t.Fatal("no R=2 timeline")
	}
	for _, tl := range res.Timelines {
		for _, p := range []Exp8Phase{tl.Healthy, tl.Degraded, tl.Recovered} {
			if p.Throughput <= 0 {
				t.Fatalf("R=%d phase %s has no throughput: %+v", tl.Replicas, p.Name, p)
			}
		}
		if tl.DivergentKeys != 0 || tl.OrphanKeys != 0 {
			t.Fatalf("R=%d staleness scan dirty: %d divergent, %d orphaned of %d",
				tl.Replicas, tl.DivergentKeys, tl.OrphanKeys, tl.ScannedKeys)
		}
		if tl.ScannedKeys == 0 {
			t.Fatalf("R=%d staleness scan saw no keys", tl.Replicas)
		}
	}
	if r2.Degraded.HitRate < 0.90 {
		t.Fatalf("R=2 degraded hit rate = %.3f, want >= 0.90", r2.Degraded.HitRate)
	}
	if r2.Degraded.HitRate <= r1.Degraded.HitRate {
		t.Fatalf("R=2 degraded hit %.3f not above R=1's %.3f",
			r2.Degraded.HitRate, r1.Degraded.HitRate)
	}
	if r2.Replica.FailoverReads == 0 {
		t.Fatal("R=2 timeline recorded no failover reads")
	}
	if r2.Handoff.Copied == 0 {
		t.Fatal("rejoin handoff copied nothing — the revived node started cold")
	}
}

func TestExp10RejectsExternalAddrs(t *testing.T) {
	opt := tinyOpts()
	opt.CacheAddrs = []string{"127.0.0.1:1"}
	if _, err := BuildStackForExp10(opt, 2); err == nil {
		t.Fatal("exp10 accepted external cache addrs it cannot kill")
	}
}

func TestWriteExp10JSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_exp10.json")
	res := Exp10Result{Timelines: []Exp10Timeline{
		{
			Replicas: 1,
			Healthy:  Exp8Phase{Name: "healthy", Throughput: 100, HitRate: 0.94},
			Degraded: Exp8Phase{Name: "degraded", Throughput: 70, HitRate: 0.80},
		},
		{
			Replicas:    2,
			Healthy:     Exp8Phase{Name: "healthy", Throughput: 98, HitRate: 0.94},
			Degraded:    Exp8Phase{Name: "degraded", Throughput: 90, HitRate: 0.93},
			ScannedKeys: 1234,
		},
	}}
	res.Timelines[1].Replica.FailoverReads = 42
	if err := WriteExp10JSON(path, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"exp10-replicated-failover"`, `"replicas": 1`, `"replicas": 2`,
		`"failover_reads": 42`, `"scanned_keys": 1234`, `"divergent_keys": 0`,
	} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("artifact missing %s:\n%s", want, data)
		}
	}
}
