package workload

import (
	"math"
	"math/rand"
	"testing"

	"cachegenie/internal/social"
)

func TestZipfBounds(t *testing.T) {
	z := NewZipf(100, 2.0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		r := z.Sample(rng)
		if r < 1 || r > 100 {
			t.Fatalf("sample %d out of range", r)
		}
	}
}

func TestZipfSkewByParameter(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	frac := func(a float64) float64 {
		z := NewZipf(1000, a)
		hits := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if z.Sample(rng) == 1 {
				hits++
			}
		}
		return float64(hits) / n
	}
	skewed := frac(2.0)
	flat := frac(1.1)
	// With a=2.0, rank 1 has probability 1/zeta(2) ~= 0.61; with a=1.1 far
	// less. The paper's Experiment 3 varies exactly this.
	if skewed < 0.5 {
		t.Fatalf("a=2.0 rank-1 mass = %.3f, want > 0.5", skewed)
	}
	if flat > skewed/2 {
		t.Fatalf("a=1.1 rank-1 mass %.3f not much flatter than a=2.0 %.3f", flat, skewed)
	}
}

func TestZipfMatchesAnalyticDistribution(t *testing.T) {
	const n = 50
	const a = 2.0
	z := NewZipf(n, a)
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, n+1)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Sample(rng)]++
	}
	var zeta float64
	for i := 1; i <= n; i++ {
		zeta += math.Pow(float64(i), -a)
	}
	for _, rank := range []int{1, 2, 5, 10} {
		want := math.Pow(float64(rank), -a) / zeta
		got := float64(counts[rank]) / draws
		if math.Abs(got-want) > 0.02 {
			t.Errorf("rank %d: got %.4f, want %.4f", rank, got, want)
		}
	}
}

func smallSeed() social.SeedConfig {
	return social.SeedConfig{
		Users: 40, UniqueBookmarks: 20, MaxBookmarksPer: 3,
		MaxFriendsPer: 3, MaxInvitesPer: 2, MaxWallPosts: 4,
	}
}

func TestBuildStackAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeNoCache, ModeInvalidate, ModeUpdate} {
		t.Run(mode.String(), func(t *testing.T) {
			st, err := BuildStack(StackConfig{Mode: mode, Seed: smallSeed(), RngSeed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if (st.Genie == nil) != (mode == ModeNoCache) {
				t.Fatalf("mode %s genie presence wrong", mode)
			}
			if st.App.NumUsers != 40 {
				t.Fatalf("users = %d", st.App.NumUsers)
			}
		})
	}
}

func TestBuildStackMultiNodeCache(t *testing.T) {
	st, err := BuildStack(StackConfig{
		Mode: ModeUpdate, Seed: smallSeed(), CacheNodes: 3, CacheBytes: 3 << 20, RngSeed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Stores) != 3 {
		t.Fatalf("stores = %d", len(st.Stores))
	}
	// Drive a little traffic and confirm keys spread over nodes.
	rep, err := Run(st, RunConfig{Clients: 2, Sessions: 3, PagesPerSession: 5, WritePct: 20, ZipfA: 1.3, RngSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors > 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	nodesWithKeys := 0
	for _, s := range st.Stores {
		if s.Len() > 0 {
			nodesWithKeys++
		}
	}
	if nodesWithKeys < 2 {
		t.Fatalf("keys on %d nodes, want spread", nodesWithKeys)
	}
}

func TestRunProducesReport(t *testing.T) {
	st, err := BuildStack(StackConfig{Mode: ModeUpdate, Seed: smallSeed(), RngSeed: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{Clients: 4, Sessions: 5, PagesPerSession: 6, WritePct: 20, ZipfA: 2.0, WarmupSessions: 4, RngSeed: 9}
	rep, err := Run(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantPages := 4 * 5 * (6 + 2) // clients x sessions x (pages + login/logout)
	if rep.Pages != wantPages {
		t.Fatalf("pages = %d, want %d", rep.Pages, wantPages)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	if rep.Throughput <= 0 {
		t.Fatal("throughput not computed")
	}
	for _, p := range []social.PageType{social.PageLogin, social.PageLogout} {
		if rep.ByPage[p].Count != 4*5 {
			t.Fatalf("%s count = %d", p, rep.ByPage[p].Count)
		}
	}
}

func TestRunReadOnlyWorkloadHasNoWrites(t *testing.T) {
	st, err := BuildStack(StackConfig{Mode: ModeUpdate, Seed: smallSeed(), RngSeed: 10})
	if err != nil {
		t.Fatal(err)
	}
	before := st.DB.Stats()
	_, err = Run(st, RunConfig{Clients: 2, Sessions: 4, PagesPerSession: 6, WritePct: 0, ZipfA: 2.0, RngSeed: 11})
	if err != nil {
		t.Fatal(err)
	}
	after := st.DB.Stats()
	// Login/Logout still write last_login; the mix itself must add no
	// inserts beyond those updates.
	if after.Inserts != before.Inserts {
		t.Fatalf("read-only run inserted rows: %d -> %d", before.Inserts, after.Inserts)
	}
}

func TestCachedModesBeatNoCacheWithInjectedLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("latency-injected comparison")
	}
	// With the paper-calibrated latency model (scaled down 50x so this test
	// stays fast) and enough clients to saturate the database, the cached
	// stack must outperform NoCache — the headline result's direction. The
	// full magnitude sweep lives in the benchmark harness (Experiment 1).
	run := func(mode Mode) float64 {
		st, err := BuildStack(StackConfig{
			Mode: mode, Seed: smallSeed(), RngSeed: 12,
			LatencyScale: 50, CacheBytes: 0, DiskWidth: 2, BufferPoolPages: 128,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(st, RunConfig{
			Clients: 15, Sessions: 4, PagesPerSession: 8, WritePct: 20,
			// a=1.3 concentrates the workload (see UserSampler), giving the
			// cached stack a decisive margin that stays stable under
			// machine-load noise.
			ZipfA: 1.3, WarmupSessions: 30, RngSeed: 13,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Errors > 0 {
			t.Fatalf("%s errors = %d", mode, rep.Errors)
		}
		return rep.Throughput
	}
	nc := run(ModeNoCache)
	upd := run(ModeUpdate)
	if upd <= nc {
		t.Fatalf("Update (%.1f pages/s) did not beat NoCache (%.1f pages/s)", upd, nc)
	}
}
