package workload

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"cachegenie/internal/cacheproto"
	"cachegenie/internal/obs"
)

// ---------- Experiment 8: node failure and live ring membership ----------

// Exp8Nodes is the ring size Experiment 8 deploys, matching Experiment 7 so
// the healthy phase is directly comparable.
const Exp8Nodes = 4

// Exp8KillIndex is the node Experiment 8 kills mid-run.
const Exp8KillIndex = 1

// exp8ProbeInterval is the breaker probe cadence the experiment configures:
// fast enough that recovery is visible inside a short run, slow enough that
// probing is not itself a load.
const exp8ProbeInterval = 25 * time.Millisecond

// exp8SampleKeys sizes the keyspace sample used to measure remap fractions.
const exp8SampleKeys = 4000

// Exp8Phase is one workload pass of the failure timeline.
type Exp8Phase struct {
	Name       string
	Throughput float64
	// HitRate is the Genie read-path hit rate during this phase only
	// (cumulative counters are differenced across the phase).
	HitRate float64
	MeanLat time.Duration
	Errors  int
}

// Exp8Result is the full Experiment 8 report.
type Exp8Result struct {
	// The failure timeline: all nodes up; one node killed (breaker armed);
	// the dead node removed from the ring; the node revived, cold, and
	// re-added.
	Healthy  Exp8Phase
	Degraded Exp8Phase
	Removed  Exp8Phase
	Rejoined Exp8Phase

	// Per-op Get latency against the dead node: with the breaker open every
	// op short-circuits in-process; with the breaker disabled every op pays
	// a fresh failed dial — the pre-resilience behaviour.
	FailFastP50, FailFastP99   time.Duration
	DialStormP50, DialStormP99 time.Duration

	// RemapFraction is the share of sampled keys whose owner changed when
	// the dead node left the ring (expect ~1/Exp8Nodes); RejoinExact reports
	// whether re-adding the node under the same identity restored the
	// original assignment for every sampled key.
	RemapFraction float64
	RejoinExact   bool

	// Breaker accounting on the killed node's pool over the degraded phase,
	// and the unreachable-node count the tier stats reported while it was
	// down.
	BreakerTrips     int64
	FailFastOps      int64
	UnreachableNodes int
}

// BuildStackForExp8 assembles the Experiment 8 stack: ModeUpdate over
// Exp8Nodes self-launched loopback cacheproto servers with the breaker
// armed at its default threshold and a fast probe interval. Experiment 8
// has to kill servers, so external CacheAddrs are rejected.
func BuildStackForExp8(opt ExpOptions) (*Stack, error) {
	if len(opt.CacheAddrs) > 0 {
		return nil, fmt.Errorf("workload: exp8 kills cache nodes mid-run; it cannot drive external -cache-addrs servers")
	}
	return BuildStack(StackConfig{
		Mode:              ModeUpdate,
		Seed:              opt.seed(),
		RngSeed:           42,
		LatencyScale:      opt.scale(),
		BufferPoolPages:   expPoolPages,
		DiskWidth:         2,
		CacheNodes:        Exp8Nodes,
		Replicas:          opt.Replicas,
		Transport:         TransportRemote,
		ProbeInterval:     exp8ProbeInterval,
		AsyncInvalidation: opt.Async,
		BatchWindow:       opt.BatchWindow,
		Obs:               opt.Metrics,
	})
}

// Exp8 runs the node-failure timeline and measures what the resilience
// machinery buys: fail-fast latency versus the per-op dial storm, hit-rate
// collapse and recovery, and the ~1/N remap bound on membership change.
func Exp8(opt ExpOptions) (Exp8Result, error) {
	var res Exp8Result
	st, err := BuildStackForExp8(opt)
	if err != nil {
		return res, err
	}
	defer st.Close()
	if st.Ring == nil {
		return res, fmt.Errorf("workload: exp8 stack has no ring manager")
	}

	runCfg := opt.runCfg(15, 40, 2.0)
	phase := func(name string) (Exp8Phase, error) {
		before := st.Genie.Stats()
		rep, err := Run(st, runCfg)
		if err != nil {
			return Exp8Phase{}, err
		}
		after := st.Genie.Stats()
		p := Exp8Phase{
			Name: name, Throughput: rep.Throughput,
			MeanLat: rep.MeanLatency(), Errors: rep.Errors,
		}
		if total := (after.Hits - before.Hits) + (after.Misses - before.Misses); total > 0 {
			p.HitRate = float64(after.Hits-before.Hits) / float64(total)
		}
		opt.logf("exp8  %-9s %9.1f pages/s  hit=%.2f  mean=%v  errors=%d  breakers: %s",
			name, p.Throughput, p.HitRate, p.MeanLat.Round(time.Microsecond), p.Errors,
			st.CacheTierStats().HealthLine())
		return p, nil
	}

	// Record the healthy ownership of a keyspace sample for the remap
	// measurements.
	ownersHealthy := make(map[string]string, exp8SampleKeys)
	for i := 0; i < exp8SampleKeys; i++ {
		k := fmt.Sprintf("exp8-sample-%d", i)
		ownersHealthy[k] = st.Ring.OwnerID(k)
	}

	if res.Healthy, err = phase("healthy"); err != nil {
		return res, err
	}

	// Kill one node. Routing still targets it, so its key share degrades to
	// misses; the breaker turns each of those from a failed dial into an
	// in-process short-circuit.
	deadID := st.Ring.NodeIDs()[Exp8KillIndex]
	deadPool := st.Pools[Exp8KillIndex]
	if err := st.KillNode(Exp8KillIndex); err != nil {
		return res, err
	}
	if res.Degraded, err = phase("degraded"); err != nil {
		return res, err
	}
	res.UnreachableNodes = st.CacheTierStats().UnreachableNodes
	ps := deadPool.Stats()
	res.BreakerTrips = ps.Trips
	res.FailFastOps = ps.FailFast

	// Per-op comparison on the dead address: breaker fail-fast vs the
	// pre-resilience dial storm.
	res.FailFastP50, res.FailFastP99 = timeGets(deadPool)
	storm := cacheproto.NewPoolWithConfig(cacheproto.PoolConfig{
		Addr: deadPool.Addr(), DisableBreaker: true,
	})
	res.DialStormP50, res.DialStormP99 = timeGets(storm)
	_ = storm.Close()
	opt.logf("exp8  dead-node op latency: fail-fast p99=%v  dial-storm p99=%v (%0.fx)",
		res.FailFastP99, res.DialStormP99, ratio(res.DialStormP99, res.FailFastP99))

	// Membership change: drop the dead node. Only its key share remaps.
	if err := st.Ring.RemoveNode(deadID); err != nil {
		return res, err
	}
	moved, survivorMoved := 0, 0
	for k, owner := range ownersHealthy {
		now := st.Ring.OwnerID(k)
		if now != owner {
			moved++
			if owner != deadID {
				survivorMoved++
			}
		}
	}
	if survivorMoved > 0 {
		return res, fmt.Errorf("workload: exp8 remap touched %d keys on surviving nodes", survivorMoved)
	}
	res.RemapFraction = float64(moved) / float64(len(ownersHealthy))
	opt.logf("exp8  RemoveNode(%s): %.3f of keys remapped (~1/%d expected), survivors untouched",
		deadID, res.RemapFraction, Exp8Nodes)
	if res.Removed, err = phase("removed"); err != nil {
		return res, err
	}

	// Recovery: revive the process (cold) and rejoin under the same
	// identity; the stable ids reproduce the healthy assignment exactly.
	if err := st.ReviveNode(Exp8KillIndex); err != nil {
		return res, err
	}
	waitHealthy(deadPool, 5*time.Second)
	if err := st.Ring.AddNode(deadID, deadPool); err != nil {
		return res, err
	}
	res.RejoinExact = true
	for k, owner := range ownersHealthy {
		if st.Ring.OwnerID(k) != owner {
			res.RejoinExact = false
			break
		}
	}
	if res.Rejoined, err = phase("rejoined"); err != nil {
		return res, err
	}
	opt.logf("exp8  rejoin restored original ownership: %v  (breaker trips=%d, fail-fast ops=%d, unreachable during outage=%d)",
		res.RejoinExact, res.BreakerTrips, res.FailFastOps, res.UnreachableNodes)
	return res, nil
}

// timeGets issues per-op Gets against the pool and returns p50/p99 latency
// from an obs histogram (within one bucket of the exact order statistic).
func timeGets(p *cacheproto.Pool) (p50, p99 time.Duration) {
	const ops = 200
	var h obs.Histogram
	for i := 0; i < ops; i++ {
		start := time.Now()
		p.Get(fmt.Sprintf("exp8-probe-%d", i))
		h.ObserveSince(start)
	}
	s := h.Snapshot()
	return time.Duration(s.Quantile(0.50)), time.Duration(s.Quantile(0.99))
}

// waitHealthy polls until the pool's breaker closes or the deadline passes;
// the caller's next phase tolerates either (ops just stay degraded).
func waitHealthy(p *cacheproto.Pool, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if p.State() == cacheproto.BreakerClosed {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// ---------- BENCH_exp8.json ----------

// Exp8JSONPhase serializes one phase; durations flatten to milliseconds so
// the artifact diffs meaningfully across CI runs.
type Exp8JSONPhase struct {
	Name                  string  `json:"name"`
	ThroughputPagesPerSec float64 `json:"throughput_pages_per_sec"`
	HitRate               float64 `json:"hit_rate"`
	MeanLatMs             float64 `json:"mean_lat_ms"`
	Errors                int     `json:"errors"`
}

// Exp8JSON is the BENCH_exp8.json document.
type Exp8JSON struct {
	Experiment       string          `json:"experiment"`
	Phases           []Exp8JSONPhase `json:"phases"`
	FailFastP50Us    float64         `json:"fail_fast_p50_us"`
	FailFastP99Us    float64         `json:"fail_fast_p99_us"`
	DialStormP50Us   float64         `json:"dial_storm_p50_us"`
	DialStormP99Us   float64         `json:"dial_storm_p99_us"`
	RemapFraction    float64         `json:"remap_fraction"`
	RejoinExact      bool            `json:"rejoin_exact"`
	BreakerTrips     int64           `json:"breaker_trips"`
	FailFastOps      int64           `json:"fail_fast_ops"`
	UnreachableNodes int             `json:"unreachable_nodes"`
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1000 }

// WriteExp8JSON records an Experiment 8 run as JSON at path (the CI bench
// smoke uploads BENCH_*.json files as workflow artifacts).
func WriteExp8JSON(path string, r Exp8Result) error {
	doc := Exp8JSON{
		Experiment:       "exp8-node-failure",
		FailFastP50Us:    us(r.FailFastP50),
		FailFastP99Us:    us(r.FailFastP99),
		DialStormP50Us:   us(r.DialStormP50),
		DialStormP99Us:   us(r.DialStormP99),
		RemapFraction:    r.RemapFraction,
		RejoinExact:      r.RejoinExact,
		BreakerTrips:     r.BreakerTrips,
		FailFastOps:      r.FailFastOps,
		UnreachableNodes: r.UnreachableNodes,
	}
	for _, p := range []Exp8Phase{r.Healthy, r.Degraded, r.Removed, r.Rejoined} {
		doc.Phases = append(doc.Phases, Exp8JSONPhase{
			Name:                  p.Name,
			ThroughputPagesPerSec: p.Throughput,
			HitRate:               p.HitRate,
			MeanLatMs:             ms(p.MeanLat),
			Errors:                p.Errors,
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("workload: marshal %s: %w", path, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
