package workload

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"cachegenie/internal/cacheproto"
	"cachegenie/internal/cluster"
	"cachegenie/internal/kvcache"
	"cachegenie/internal/loadctl"
	"cachegenie/internal/obs"
)

// Experiment 11: coordinated distributed load generation. The ROADMAP's
// saturation problem — one 1-core genieload box cannot outrun the tier, so
// exp9's committed artifact flatlines at ~1x — is answered by pointing N
// worker processes at one tier in lockstep (internal/loadctl) and merging
// their per-worker latency snapshots exact-bucket into true aggregate
// quantiles. This file holds both halves: TierLoad, the loadctl.Runner a
// genieload worker process runs, and Exp11, an in-process harness that
// spawns coordinator + workers over loopback so the whole instrument runs
// under `go test`.

// Experiment 11 tier/workload defaults (the CI distributed-smoke job and
// the in-process harness share them).
const (
	Exp11Nodes      = 2
	Exp11Keys       = 4096
	Exp11ValueBytes = 128
	Exp11WritePct   = 10
)

// exp11OpTimeout bounds every cache round trip and preflight dial a worker
// makes: a wedged node must surface as a counted error, not a hung run.
const exp11OpTimeout = 5 * time.Second

// PreflightCacheAddrs dials every cache node once and reports every
// unreachable one by address. genieload calls it before entering warmup
// (both standalone and inside TierLoad.Prepare) so a bad -cache-addrs list
// fails loudly up front instead of surfacing as a silent zero-hit run.
func PreflightCacheAddrs(addrs []string, timeout time.Duration) error {
	if len(addrs) == 0 {
		return errors.New("workload: no cache addresses given")
	}
	if timeout <= 0 {
		timeout = exp11OpTimeout
	}
	var errs []error
	for _, addr := range addrs {
		c, err := cacheproto.DialTimeout(addr, timeout)
		if err != nil {
			errs = append(errs, fmt.Errorf("cache node %s unreachable: %w", addr, err))
			continue
		}
		_ = c.Close()
	}
	return errors.Join(errs...)
}

// TierLoad is the loadctl.Runner a genieload worker runs: it drives an
// externally launched cache tier (geniecache -nodes N) with a mixed
// get/set workload. Writes stay inside the worker's owned key slice;
// reads roam the whole keyspace, which is exactly why the warmup barrier
// exists — every key has been seeded by its owner before anyone measures.
type TierLoad struct {
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
	// Reg, when non-nil, has the worker's pools register their metrics.
	Reg *obs.Registry
	// AddrOverride, when non-empty, replaces the spec's cache addresses —
	// for workers that reach the same tier via different addresses (NAT,
	// split-horizon DNS). Must list the nodes in the same order as the
	// spec so every worker's ring agrees on key placement.
	AddrOverride []string

	mu     sync.Mutex
	pools  []*cacheproto.Pool
	cache  kvcache.Cache
	keys   []string
	value  []byte
	closed bool
}

func (t *TierLoad) logf(format string, args ...any) {
	if t.Logf != nil {
		t.Logf(format, args...)
	}
}

// Prepare dials the tier (failing fast with per-node errors — the
// coordinator aborts the whole run on any worker's ERR prepare) and builds
// the pooled clients plus the replica-aware ring to route through.
func (t *TierLoad) Prepare(spec loadctl.Spec) error {
	dialAddrs := spec.CacheAddrs
	if len(t.AddrOverride) > 0 {
		if len(t.AddrOverride) != len(spec.CacheAddrs) {
			return fmt.Errorf("workload: -cache-addrs override lists %d nodes, spec has %d",
				len(t.AddrOverride), len(spec.CacheAddrs))
		}
		dialAddrs = t.AddrOverride
	}
	if err := PreflightCacheAddrs(dialAddrs, exp11OpTimeout); err != nil {
		return err
	}
	if spec.Clients <= 0 || spec.Keys <= 0 {
		return fmt.Errorf("workload: bad spec: clients=%d keys=%d", spec.Clients, spec.Keys)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	nodes := make([]kvcache.Cache, 0, len(dialAddrs))
	for i, addr := range dialAddrs {
		pool := cacheproto.NewPoolWithConfig(cacheproto.PoolConfig{
			Addr:      addr,
			MaxIdle:   spec.Clients,
			MaxConns:  2 * spec.Clients,
			OpTimeout: exp11OpTimeout,
		})
		if t.Reg != nil {
			pool.RegisterMetrics(t.Reg, fmt.Sprintf(`node="%d"`, i))
		}
		t.pools = append(t.pools, pool)
		nodes = append(nodes, pool)
	}
	if len(nodes) == 1 {
		t.cache = nodes[0]
	} else {
		// Ring IDs come from the spec, not the dialed addresses, so every
		// worker agrees on key placement even when one reaches the tier
		// through overridden addresses.
		ring, err := cluster.NewManager(spec.CacheAddrs, nodes, cluster.WithReplicas(spec.Replicas))
		if err != nil {
			return err
		}
		t.cache = ring
	}
	// One flusher is enough; every Prepare completes before the warmup
	// barrier releases, so no seeded key can be lost to this.
	if spec.WorkerIndex == 0 {
		t.cache.FlushAll()
	}
	t.keys = make([]string, spec.Keys)
	for i := range t.keys {
		t.keys[i] = fmt.Sprintf("exp11:k%06d", i)
	}
	t.value = bytes.Repeat([]byte{'v'}, spec.ValueBytes)
	return nil
}

// Warmup seeds the worker's owned key slice, then runs unmeasured mixed
// load for the rest of the warmup window to fill connection pools.
func (t *TierLoad) Warmup(spec loadctl.Spec) error {
	lo, hi := spec.KeyRange()
	deadline := time.Now().Add(spec.WarmupDuration())
	for i := lo; i < hi; i++ {
		t.cache.Set(t.keys[i], t.value, 0)
	}
	t.logf("exp11: worker %d seeded keys [%d,%d)", spec.WorkerIndex, lo, hi)
	if time.Until(deadline) > 0 {
		t.drive(spec, time.Until(deadline))
	}
	return nil
}

// Measure runs the measured window and returns this worker's counters and
// latency snapshot. Errors are operations the pools short-circuited or
// failed (breaker fail-fasts, dial failures, discarded connections).
func (t *TierLoad) Measure(spec loadctl.Spec) (loadctl.Result, error) {
	before := t.poolErrors()
	start := time.Now()
	res := t.drive(spec, spec.MeasureDuration())
	res.ElapsedNs = time.Since(start).Nanoseconds()
	res.Errors = t.poolErrors() - before
	if res.Ops == 0 {
		return res, errors.New("workload: measured zero operations")
	}
	return res, nil
}

// poolErrors sums the pools' failure counters (fail-fast short circuits,
// dial failures, connections discarded after an op error).
func (t *TierLoad) poolErrors() int64 {
	var n int64
	for _, p := range t.pools {
		s := p.Stats()
		n += s.FailFast + s.DialFails + s.Discards
	}
	return n
}

// drive runs spec.Clients goroutines of mixed load for d and merges their
// per-client latency histograms (contention-free while hot, exact-bucket
// merged after, same idiom as exp9's load loop).
func (t *TierLoad) drive(spec loadctl.Spec, d time.Duration) loadctl.Result {
	lo, hi := spec.KeyRange()
	deadline := time.Now().Add(d)
	hists := make([]*obs.Histogram, spec.Clients)
	type counters struct{ ops, hits, misses int64 }
	per := make([]counters, spec.Clients)
	var wg sync.WaitGroup
	for cl := 0; cl < spec.Clients; cl++ {
		hists[cl] = &obs.Histogram{}
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			h := hists[cl]
			c := &per[cl]
			// Deterministic per-client LCG, distinct across workers.
			r := uint32(spec.Seed) + uint32(spec.WorkerIndex*1024+cl+1)*2654435761 + 12345
			for time.Now().Before(deadline) {
				r = r*1664525 + 1013904223
				write := int(r%100) < spec.WritePct
				r = r*1664525 + 1013904223
				var key string
				if write && hi > lo {
					key = t.keys[lo+int(r)%(hi-lo)]
				} else {
					key = t.keys[int(r)%len(t.keys)]
				}
				t0 := time.Now()
				if write && hi > lo {
					t.cache.Set(key, t.value, 0)
				} else if _, ok := t.cache.Get(key); ok {
					c.hits++
				} else {
					c.misses++
				}
				h.Observe(time.Since(t0).Nanoseconds())
				c.ops++
			}
		}(cl)
	}
	wg.Wait()
	merged := &obs.Histogram{}
	var res loadctl.Result
	for cl := 0; cl < spec.Clients; cl++ {
		merged.Merge(hists[cl])
		res.Ops += per[cl].ops
		res.Hits += per[cl].hits
		res.Misses += per[cl].misses
	}
	res.Hist = merged.Snapshot()
	return res
}

// Close releases the pools. Idempotent — the worker loop calls it on every
// exit path.
func (t *TierLoad) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	for _, p := range t.pools {
		_ = p.Close()
	}
}

// Exp11Point is one coordinated run at a given worker count.
type Exp11Point struct {
	Workers             int       `json:"worker_count"`
	ClientsPerWorker    int       `json:"clients_per_worker"`
	Ops                 int64     `json:"ops"`
	Errors              int64     `json:"errors"`
	ElapsedMs           float64   `json:"elapsed_ms"`
	AggOpsPerSec        float64   `json:"agg_ops_per_sec"`
	BestWorkerOpsPerSec float64   `json:"best_worker_ops_per_sec"`
	BestWorkerID        string    `json:"best_worker_id"`
	PerWorkerOpsPerSec  []float64 `json:"per_worker_ops_per_sec"`
	HitRate             float64   `json:"hit_rate"`
	P50us               float64   `json:"p50_us"`
	P99us               float64   `json:"p99_us"`
	P999us              float64   `json:"p999_us"`
}

// Exp11PointFromMerged flattens a coordinator's merged run into the
// artifact row. Both the in-process harness and genieload's coordinator
// mode go through this, so BENCH_exp11.json has one shape everywhere.
func Exp11PointFromMerged(m *loadctl.Merged) Exp11Point {
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	p := Exp11Point{
		Workers:             m.Spec.Workers,
		ClientsPerWorker:    m.Spec.Clients,
		Ops:                 m.Ops,
		Errors:              m.Errors,
		ElapsedMs:           float64(m.Elapsed.Nanoseconds()) / 1e6,
		AggOpsPerSec:        m.AggOpsPerSec,
		BestWorkerOpsPerSec: m.BestWorkerOpsPerSec,
		BestWorkerID:        m.BestWorkerID,
		HitRate:             m.HitRate(),
		P50us:               us(m.Hist.Quantile(0.5)),
		P99us:               us(m.Hist.Quantile(0.99)),
		P999us:              us(m.Hist.Quantile(0.999)),
	}
	for _, r := range m.Results {
		p.PerWorkerOpsPerSec = append(p.PerWorkerOpsPerSec, r.OpsPerSec())
	}
	return p
}

// Exp11RegisterMerged loads a merged run into a metrics registry: the
// aggregate latency distribution plus run counters, labelled by worker
// count, so the coordinator's .prom dump carries the same quantiles as
// the JSON artifact.
func Exp11RegisterMerged(reg *obs.Registry, m *loadctl.Merged) {
	labels := fmt.Sprintf(`workers="%d"`, m.Spec.Workers)
	h := reg.Histogram("cachegenie_coordinated_op_latency_seconds", labels,
		"Merged per-op latency across all workers of one coordinated run.", obs.UnitNanoseconds)
	h.AddSnapshot(m.Hist)
	reg.Counter("cachegenie_coordinated_ops_total", labels,
		"Operations summed across workers.").Add(m.Ops)
	reg.Counter("cachegenie_coordinated_errors_total", labels,
		"Worker-side cache errors summed across workers.").Add(m.Errors)
	reg.Gauge("cachegenie_coordinated_workers", labels,
		"Worker processes contributing to the merged run.").Set(int64(m.Spec.Workers))
}

// Exp11Result is the saturation sweep artifact.
type Exp11Result struct {
	Nodes    int          `json:"nodes"`
	Replicas int          `json:"replicas"`
	Points   []Exp11Point `json:"points"`
	// Metrics is the coordinator registry's Prometheus dump (written
	// alongside the JSON artifact, not embedded in it).
	Metrics []byte `json:"-"`
}

// Exp11WorkerCounts is the sweep's worker axis.
func Exp11WorkerCounts(quick bool) []int {
	if quick {
		return []int{1, 2}
	}
	return []int{1, 2, 4}
}

// exp11Spec is the workload every point of the sweep runs.
func exp11Spec(opt ExpOptions, clients int) loadctl.Spec {
	warmup, measure := int64(400), int64(1500)
	if opt.Quick {
		warmup, measure = 120, 350
	}
	return loadctl.Spec{
		Experiment: "exp11",
		Clients:    clients,
		WarmupMs:   warmup,
		MeasureMs:  measure,
		Keys:       Exp11Keys,
		ValueBytes: Exp11ValueBytes,
		WritePct:   Exp11WritePct,
		Seed:       42,
		Replicas:   2,
	}
}

// exp11Tier launches a loopback geniecache-shaped tier: real cacheproto
// servers over TCP, one per node. Returns the addresses and a teardown.
func exp11Tier(nodes int) ([]string, func(), error) {
	addrs := make([]string, 0, nodes)
	servers := make([]*cacheproto.Server, 0, nodes)
	teardown := func() {
		for _, s := range servers {
			_ = s.Close()
		}
	}
	for i := 0; i < nodes; i++ {
		srv := cacheproto.NewServer(kvcache.New(0))
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			teardown()
			return nil, nil, fmt.Errorf("workload: exp11 cache node %d: %w", i, err)
		}
		servers = append(servers, srv)
		addrs = append(addrs, addr)
	}
	return addrs, teardown, nil
}

// Exp11 runs the coordinated saturation sweep fully in-process: per worker
// count W it launches a fresh loopback tier, a coordinator, and W worker
// goroutines (each a real loadctl.RunWorker over TCP), then merges. The
// same code paths a multi-machine run exercises — protocol, barriers,
// histogram wire encoding — just with loopback for the network.
func Exp11(opt ExpOptions) (Exp11Result, error) {
	clients := 4
	if opt.Quick {
		clients = 2
	}
	reg := opt.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	res := Exp11Result{Nodes: Exp11Nodes, Replicas: 2}
	for _, w := range Exp11WorkerCounts(opt.Quick) {
		m, err := exp11RunOnce(opt, w, clients)
		if err != nil {
			return res, fmt.Errorf("workload: exp11 workers=%d: %w", w, err)
		}
		Exp11RegisterMerged(reg, m)
		p := Exp11PointFromMerged(m)
		res.Points = append(res.Points, p)
		opt.logf("exp11 workers=%d clients=%d  %9.0f ops/s agg (best single %.0f)  p50=%.0fµs p99=%.0fµs hit=%.3f",
			w, clients, p.AggOpsPerSec, p.BestWorkerOpsPerSec, p.P50us, p.P99us, p.HitRate)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		return res, err
	}
	res.Metrics = buf.Bytes()
	return res, nil
}

// exp11RunOnce is one point: tier + coordinator + W in-process workers.
func exp11RunOnce(opt ExpOptions, workers, clients int) (*loadctl.Merged, error) {
	addrs, teardown, err := exp11Tier(Exp11Nodes)
	if err != nil {
		return nil, err
	}
	defer teardown()

	coord := loadctl.NewCoordinator(loadctl.CoordinatorConfig{
		JoinTimeout:    30 * time.Second,
		BarrierTimeout: 30 * time.Second,
	})
	caddr, err := coord.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer coord.Close()

	spec := exp11Spec(opt, clients)
	spec.CacheAddrs = addrs

	workerErrs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, workerErrs[i] = loadctl.RunWorker(caddr,
				loadctl.WorkerConfig{ID: fmt.Sprintf("w%d", i)}, &TierLoad{})
		}(i)
	}
	m, err := coord.Run(spec, workers)
	wg.Wait()
	if err != nil {
		return nil, err
	}
	if err := errors.Join(workerErrs...); err != nil {
		return nil, err
	}
	return m, nil
}

// WriteExp11JSON renders the sweep to the benchmark artifact consumed by
// CI's distributed-smoke assertions (jq checks worker_count and that
// agg_ops_per_sec exceeds best_worker_ops_per_sec).
func WriteExp11JSON(path string, res Exp11Result) error {
	out := struct {
		Experiment  string       `json:"experiment"`
		Description string       `json:"description"`
		Nodes       int          `json:"nodes"`
		Replicas    int          `json:"replicas"`
		Points      []Exp11Point `json:"points"`
	}{
		Experiment: "exp11",
		Description: "Coordinated distributed load: N genieload workers drive one cache tier in " +
			"lockstep; per-worker latency histograms are merged exact-bucket into aggregate quantiles.",
		Nodes:    res.Nodes,
		Replicas: res.Replicas,
		Points:   res.Points,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
