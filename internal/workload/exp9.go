package workload

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"cachegenie/internal/cacheproto"
	"cachegenie/internal/kvcache"
	"cachegenie/internal/obs"
)

// ---------- Experiment 9: single-node multi-core scaling ----------
//
// Every earlier experiment scales the system out (more nodes, batching,
// fan-out); Experiment 9 scales one node up. It pits the pre-striping store
// (WithShards(1): one mutex, one LRU mutated even by reads) against the
// lock-striped store at increasing client concurrency, on both the
// in-process ("local") and the real-TCP ("remote") paths, and records
// throughput, tail latency, and allocations per operation. On a multi-core
// runner the single mutex flatlines where the paper's throughput curves
// should keep climbing; the striped store keeps scaling — memcached's lock
// striping reproduced as an artifact, not a claim.

// Exp9ValueBytes / Exp9Keys size the dataset: a few thousand small values,
// comfortably in-memory, so the measurement isolates locking and allocation
// rather than eviction.
const (
	Exp9ValueBytes = 128
	Exp9Keys       = 4096
)

// Exp9WritePct is the write share of the op mix. 10% writes keeps the
// global-LRU read bump the dominant contention source, matching the
// read-mostly shape of the paper's workload.
const Exp9WritePct = 10

// exp9SampleEvery thins per-op latency sampling so the timer itself does
// not dominate a ~200ns operation.
const exp9SampleEvery = 16

// Exp9Clients returns the client-concurrency sweep.
func Exp9Clients(quick bool) []int {
	if quick {
		return []int{1, 16, 64}
	}
	return []int{1, 4, 16, 64}
}

// Exp9Point is one (transport, shards, clients) measurement.
type Exp9Point struct {
	Transport   string // "local" (in-process store) or "remote" (TCP + pool)
	Shards      int
	Clients     int
	Ops         int64
	OpsPerSec   float64
	P50         time.Duration
	P99         time.Duration
	NsPerOp     float64
	AllocsPerOp float64
}

// Exp9Result is the full Experiment 9 report.
type Exp9Result struct {
	// GOMAXPROCS and NumCPU qualify the curve: scaling with cores can only
	// show on a runner that has them, so the artifact records what it ran on.
	GOMAXPROCS    int
	NumCPU        int
	ShardedShards int // stripe count the "sharded" configuration used
	Points        []Exp9Point
}

// Speedup returns sharded/1-shard throughput for a transport and client
// count (0 when either point is missing).
func (r Exp9Result) Speedup(transport string, clients int) float64 {
	var base, sharded float64
	for _, p := range r.Points {
		if p.Transport != transport || p.Clients != clients {
			continue
		}
		if p.Shards == 1 {
			base = p.OpsPerSec
		} else {
			sharded = p.OpsPerSec
		}
	}
	if base <= 0 {
		return 0
	}
	return sharded / base
}

// exp9Ops sizes the per-point op count: enough for a stable rate, bounded
// so the full sweep stays in benchmark-smoke territory.
func exp9Ops(quick, remote bool) int64 {
	if remote {
		// Remote ops cost a real TCP round trip (~10µs on loopback); the
		// count drops so each point still finishes in about a second.
		if quick {
			return 40_000
		}
		return 120_000
	}
	if quick {
		return 400_000
	}
	return 1_200_000
}

// exp9Run drives one measurement point: clients goroutines issue a 90/10
// get/set mix over a shared keyspace against cache, with deterministic
// per-client LCG key choice, thinned latency sampling, and allocation
// accounting across the run.
func exp9Run(cache kvcache.Cache, clients int, totalOps int64) Exp9Point {
	keys := make([]string, Exp9Keys)
	val := make([]byte, Exp9ValueBytes)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := range keys {
		keys[i] = fmt.Sprintf("exp9-key-%04d", i)
		cache.Set(keys[i], val, 0)
	}
	perClient := totalOps / int64(clients)
	if perClient < 1 {
		perClient = 1
	}
	ops := perClient * int64(clients)
	// One histogram per client, allocated before the MemStats baseline so the
	// fixed bucket arrays never show up in AllocsPerOp; Observe itself is
	// allocation-free. Exact-bucket Merge afterwards yields the aggregate
	// distribution the sorted-sample concatenation used to.
	hists := make([]*obs.Histogram, clients)
	for i := range hists {
		hists[i] = obs.NewHistogram()
	}

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Deterministic per-client LCG: no shared rand, no per-op alloc.
			r := uint32(id+1)*2654435761 + 12345
			h := hists[id]
			for i := int64(0); i < perClient; i++ {
				r = r*1664525 + 1013904223
				k := keys[r%Exp9Keys]
				timed := i%exp9SampleEvery == 0
				var t0 time.Time
				if timed {
					t0 = time.Now()
				}
				if r%100 < Exp9WritePct {
					cache.Set(k, val, 0)
				} else {
					cache.Get(k)
				}
				if timed {
					h.ObserveSince(t0)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	merged := obs.NewHistogram()
	for _, h := range hists {
		merged.Merge(h)
	}
	pt := Exp9Point{
		Clients:     clients,
		Ops:         ops,
		OpsPerSec:   float64(ops) / elapsed.Seconds(),
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(ops),
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(ops),
	}
	if s := merged.Snapshot(); s.Count > 0 {
		pt.P50 = time.Duration(s.Quantile(0.50))
		pt.P99 = time.Duration(s.Quantile(0.99))
	}
	return pt
}

// Exp9 runs the core-scaling sweep: {1-shard baseline, striped} x client
// concurrency x {local, remote} transports.
func Exp9(opt ExpOptions) (Exp9Result, error) {
	res := Exp9Result{
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		ShardedShards: kvcache.DefaultShards(),
	}
	shardCfgs := []int{1, res.ShardedShards}
	for _, transport := range []string{"local", "remote"} {
		for _, shards := range shardCfgs {
			for _, clients := range Exp9Clients(opt.Quick) {
				store := kvcache.New(0, kvcache.WithShards(shards))
				var cache kvcache.Cache = store
				var cleanup func()
				if transport == "remote" {
					srv := cacheproto.NewServer(store)
					addr, err := srv.Listen("127.0.0.1:0")
					if err != nil {
						return res, fmt.Errorf("workload: exp9 cache node: %w", err)
					}
					pool := cacheproto.NewPoolWithConfig(cacheproto.PoolConfig{
						Addr:      addr,
						MaxIdle:   clients,
						MaxConns:  2 * clients,
						OpTimeout: 5 * time.Second,
					})
					cache = pool
					cleanup = func() { _ = pool.Close(); _ = srv.Close() }
				}
				pt := exp9Run(cache, clients, exp9Ops(opt.Quick, transport == "remote"))
				pt.Transport = transport
				pt.Shards = shards
				if cleanup != nil {
					cleanup()
				}
				res.Points = append(res.Points, pt)
				opt.logf("exp9  %-6s shards=%-3d clients=%-3d %12.0f ops/s  p50=%-8v p99=%-8v %.1f ns/op  %.3f allocs/op",
					pt.Transport, pt.Shards, pt.Clients, pt.OpsPerSec,
					pt.P50, pt.P99, pt.NsPerOp, pt.AllocsPerOp)
			}
		}
	}
	for _, transport := range []string{"local", "remote"} {
		maxC := Exp9Clients(opt.Quick)
		c := maxC[len(maxC)-1]
		opt.logf("exp9  %-6s sharded/1-shard speedup at %d clients: %.2fx (gomaxprocs=%d)",
			transport, c, res.Speedup(transport, c), res.GOMAXPROCS)
	}
	return res, nil
}

// ---------- BENCH_exp9.json ----------

// Exp9JSONPoint serializes one point; durations flatten to microseconds so
// the artifact diffs meaningfully across CI runs.
type Exp9JSONPoint struct {
	Transport   string  `json:"transport"`
	Shards      int     `json:"shards"`
	Clients     int     `json:"clients"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	P50Us       float64 `json:"p50_us"`
	P99Us       float64 `json:"p99_us"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Exp9JSONSpeedup is one sharded-vs-baseline ratio.
type Exp9JSONSpeedup struct {
	Transport string  `json:"transport"`
	Clients   int     `json:"clients"`
	Speedup   float64 `json:"sharded_over_1shard"`
}

// Exp9JSON is the BENCH_exp9.json document.
type Exp9JSON struct {
	Experiment    string            `json:"experiment"`
	GOMAXPROCS    int               `json:"gomaxprocs"`
	NumCPU        int               `json:"num_cpu"`
	ShardedShards int               `json:"sharded_shards"`
	WritePct      int               `json:"write_pct"`
	ValueBytes    int               `json:"value_bytes"`
	Keys          int               `json:"keys"`
	Points        []Exp9JSONPoint   `json:"points"`
	Speedups      []Exp9JSONSpeedup `json:"speedups"`
}

// WriteExp9JSON records an Experiment 9 sweep as JSON at path (the CI bench
// smoke uploads BENCH_*.json files as workflow artifacts).
func WriteExp9JSON(path string, r Exp9Result) error {
	doc := Exp9JSON{
		Experiment:    "exp9-core-scaling",
		GOMAXPROCS:    r.GOMAXPROCS,
		NumCPU:        r.NumCPU,
		ShardedShards: r.ShardedShards,
		WritePct:      Exp9WritePct,
		ValueBytes:    Exp9ValueBytes,
		Keys:          Exp9Keys,
	}
	seen := map[[2]interface{}]bool{}
	for _, p := range r.Points {
		doc.Points = append(doc.Points, Exp9JSONPoint{
			Transport:   p.Transport,
			Shards:      p.Shards,
			Clients:     p.Clients,
			OpsPerSec:   p.OpsPerSec,
			P50Us:       us(p.P50),
			P99Us:       us(p.P99),
			NsPerOp:     p.NsPerOp,
			AllocsPerOp: p.AllocsPerOp,
		})
		key := [2]interface{}{p.Transport, p.Clients}
		if !seen[key] {
			seen[key] = true
			if sp := r.Speedup(p.Transport, p.Clients); sp > 0 {
				doc.Speedups = append(doc.Speedups, Exp9JSONSpeedup{
					Transport: p.Transport, Clients: p.Clients, Speedup: sp,
				})
			}
		}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("workload: marshal %s: %w", path, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
