// Crash-drill schema: the tables, triggers and cache-key layout shared by
// Experiment 12 (in-process and CI phases) and `geniedb -drill-schema`. The
// triggers mirror every row write into the cache synchronously — the paper's
// trigger-maintained consistency — which is exactly what makes a mid-write
// SIGKILL interesting: trigger effects of an uncommitted transaction are
// already visible in the cache when the database dies, and only the
// recovery-epoch flush reconciles the two tiers.
package workload

import (
	"fmt"
	"sync"

	"cachegenie/internal/kvcache"
	"cachegenie/internal/sqldb"
)

// DrillTables is the number of item tables the crash drill spreads writes
// across. Writers on a single table serialize on its exclusive table lock,
// so several tables are needed for concurrent committers to actually
// coalesce in the WAL group-commit batch.
const DrillTables = 4

// DrillKeyPrefix namespaces the drill's cache keys.
const DrillKeyPrefix = "drill:"

// DrillTableName returns the i'th drill table name.
func DrillTableName(i int) string { return fmt.Sprintf("items%d", i) }

// DrillKey is the cache key mirroring one row: drill:<table>:<pk>.
func DrillKey(table string, pk int64) string {
	return fmt.Sprintf("%s%s:%d", DrillKeyPrefix, table, pk)
}

// ParseDrillKey inverts DrillKey; ok is false for foreign keys.
func ParseDrillKey(key string) (table string, pk int64, ok bool) {
	var i int
	if n, err := fmt.Sscanf(key, DrillKeyPrefix+"items%d:%d", &i, &pk); err != nil || n != 2 {
		return "", 0, false
	}
	return DrillTableName(i), pk, true
}

// InstallDrillSchema creates the drill tables on db (idempotent — existing
// tables are kept, which is what a restart after a crash needs) and installs
// cache-maintenance triggers: INSERT/UPDATE set drill:<table>:<pk> to the
// row's val column, DELETE removes it.
func InstallDrillSchema(db *sqldb.DB, cache kvcache.Cache) error {
	for i := 0; i < DrillTables; i++ {
		name := DrillTableName(i)
		if _, err := db.Schema(name); err != nil {
			if _, err := db.Exec(fmt.Sprintf("CREATE TABLE %s (val TEXT)", name)); err != nil {
				return fmt.Errorf("workload: create drill table %s: %w", name, err)
			}
		}
		set := func(q sqldb.Queryer, ev sqldb.TriggerEvent) error {
			pk := ev.New[ev.Schema.PKIndex].I
			val := ev.New[ev.Schema.ColIndex("val")].S
			cache.Set(DrillKey(ev.Table, pk), []byte(val), 0)
			return nil
		}
		del := func(q sqldb.Queryer, ev sqldb.TriggerEvent) error {
			cache.Delete(DrillKey(ev.Table, ev.Old[ev.Schema.PKIndex].I))
			return nil
		}
		for _, tr := range []sqldb.Trigger{
			{Name: "drill_ins", Table: name, Op: sqldb.TrigInsert, Fn: set},
			{Name: "drill_upd", Table: name, Op: sqldb.TrigUpdate, Fn: set},
			{Name: "drill_del", Table: name, Op: sqldb.TrigDelete, Fn: del},
		} {
			db.DropTrigger(tr.Table, tr.Name)
			if err := db.CreateTrigger(tr); err != nil {
				return fmt.Errorf("workload: trigger %s on %s: %w", tr.Name, tr.Table, err)
			}
		}
	}
	return nil
}

// EpochGuard is the workload stack's reaction to a database crash recovery:
// it remembers the last recovery epoch it has seen and, when the epoch
// advances (the database came back from an unclean shutdown and may have
// discarded uncommitted work whose trigger effects already reached the
// cache), flushes the whole cache tier so it repopulates from the recovered
// database.
type EpochGuard struct {
	mu    sync.Mutex
	last  uint64
	flush func()
}

// NewEpochGuard starts tracking from epoch initial; flush is invoked (once
// per advance) when the observed epoch moves past it.
func NewEpochGuard(initial uint64, flush func()) *EpochGuard {
	return &EpochGuard{last: initial, flush: flush}
}

// Observe reports the current epoch; returns true if it advanced and the
// flush was triggered.
func (g *EpochGuard) Observe(epoch uint64) bool {
	g.mu.Lock()
	advanced := epoch > g.last
	if advanced {
		g.last = epoch
	}
	g.mu.Unlock()
	if advanced {
		g.flush()
	}
	return advanced
}
