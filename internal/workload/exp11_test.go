package workload

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cachegenie/internal/loadctl"
	"cachegenie/internal/obs"
)

// TestExp11CoordinatedMergeIdentity is the acceptance check: a coordinator
// plus two real workers over loopback TCP must produce merged aggregate
// quantiles identical to merging the per-worker histograms directly. Each
// worker's RunWorker return value is its locally built result — the
// pre-wire truth — so comparing the coordinator's merge against merging
// those directly proves the wire encoding and coordinator-side merge add
// zero drift.
func TestExp11CoordinatedMergeIdentity(t *testing.T) {
	addrs, teardown, err := exp11Tier(Exp11Nodes)
	if err != nil {
		t.Fatal(err)
	}
	defer teardown()

	coord := loadctl.NewCoordinator(loadctl.CoordinatorConfig{
		JoinTimeout:    30 * time.Second,
		BarrierTimeout: 30 * time.Second,
		Logf:           t.Logf,
	})
	caddr, err := coord.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	spec := exp11Spec(ExpOptions{Quick: true}, 2)
	spec.CacheAddrs = addrs

	const workers = 2
	local := make([]loadctl.Result, workers)
	workerErrs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			local[i], workerErrs[i] = loadctl.RunWorker(caddr,
				loadctl.WorkerConfig{ID: fmt.Sprintf("w%d", i)}, &TierLoad{})
		}(i)
	}
	m, err := coord.Run(spec, workers)
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinated run: %v", err)
	}
	for i, werr := range workerErrs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}

	// Merge the workers' local (never-serialized) histograms directly.
	var direct obs.HistSnapshot
	var wantOps, wantHits, wantMisses int64
	for _, r := range local {
		direct.Add(r.Hist)
		wantOps += r.Ops
		wantHits += r.Hits
		wantMisses += r.Misses
	}
	if m.Hist.Count == 0 {
		t.Fatal("merged histogram is empty")
	}
	if m.Hist.Count != direct.Count || m.Hist.Sum != direct.Sum || m.Hist.Max != direct.Max {
		t.Fatalf("merged header = (%d,%d,%d), direct = (%d,%d,%d)",
			m.Hist.Count, m.Hist.Sum, m.Hist.Max, direct.Count, direct.Sum, direct.Max)
	}
	for i := range direct.Buckets {
		if m.Hist.Buckets[i] != direct.Buckets[i] {
			t.Fatalf("bucket %d: merged %d, direct %d", i, m.Hist.Buckets[i], direct.Buckets[i])
		}
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		if got, want := m.Hist.Quantile(q), direct.Quantile(q); got != want {
			t.Errorf("q%.3f: merged %d, direct %d", q, got, want)
		}
	}
	if m.Ops != wantOps || m.Hits != wantHits || m.Misses != wantMisses {
		t.Errorf("merged counters = (%d,%d,%d), direct = (%d,%d,%d)",
			m.Ops, m.Hits, m.Misses, wantOps, wantHits, wantMisses)
	}

	p := Exp11PointFromMerged(m)
	if p.Workers != workers || len(p.PerWorkerOpsPerSec) != workers {
		t.Errorf("point has workers=%d per_worker=%d, want %d", p.Workers, len(p.PerWorkerOpsPerSec), workers)
	}
	// Warmup seeded the whole keyspace, so measured reads should mostly hit.
	if p.HitRate < 0.9 {
		t.Errorf("hit rate %.3f, want > 0.9 (keyspace was seeded during warmup)", p.HitRate)
	}
}

func TestExp11QuickSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("coordinated sweep runs ~1s of wall-clock load")
	}
	reg := obs.NewRegistry()
	res, err := Exp11(ExpOptions{Quick: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	counts := Exp11WorkerCounts(true)
	if len(res.Points) != len(counts) {
		t.Fatalf("got %d points, want %d", len(res.Points), len(counts))
	}
	for i, p := range res.Points {
		if p.Workers != counts[i] {
			t.Errorf("point %d worker_count = %d, want %d", i, p.Workers, counts[i])
		}
		if p.Ops == 0 || p.AggOpsPerSec <= 0 {
			t.Errorf("point %d measured no load: %+v", i, p)
		}
		if p.AggOpsPerSec < p.BestWorkerOpsPerSec {
			t.Errorf("point %d aggregate %.0f below best single worker %.0f",
				i, p.AggOpsPerSec, p.BestWorkerOpsPerSec)
		}
	}
	if len(res.Metrics) == 0 || !strings.Contains(string(res.Metrics), "cachegenie_coordinated_op_latency_seconds") {
		t.Error("prometheus dump missing the coordinated latency series")
	}
}

func TestWriteExp11JSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_exp11.json")
	res := Exp11Result{
		Nodes:    2,
		Replicas: 2,
		Points: []Exp11Point{{
			Workers: 2, ClientsPerWorker: 4, Ops: 1000,
			AggOpsPerSec: 5000, BestWorkerOpsPerSec: 3000, BestWorkerID: "w1",
			PerWorkerOpsPerSec: []float64{2000, 3000},
			HitRate:            0.95, P50us: 40, P99us: 200, P999us: 400,
		}},
	}
	if err := WriteExp11JSON(path, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Experiment string `json:"experiment"`
		Points     []struct {
			Workers int     `json:"worker_count"`
			Agg     float64 `json:"agg_ops_per_sec"`
			Best    float64 `json:"best_worker_ops_per_sec"`
		} `json:"points"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if got.Experiment != "exp11" || len(got.Points) != 1 {
		t.Fatalf("artifact = %+v", got)
	}
	if got.Points[0].Workers != 2 || got.Points[0].Agg <= got.Points[0].Best {
		t.Errorf("artifact point = %+v, want worker_count=2 and agg > best", got.Points[0])
	}
}

func TestPreflightCacheAddrs(t *testing.T) {
	addrs, teardown, err := exp11Tier(1)
	if err != nil {
		t.Fatal(err)
	}
	defer teardown()

	if err := PreflightCacheAddrs(addrs, time.Second); err != nil {
		t.Errorf("preflight of a live node failed: %v", err)
	}
	if err := PreflightCacheAddrs(nil, time.Second); err == nil {
		t.Error("preflight accepted an empty address list")
	}
	// One live node, one dead: the error must name the dead one only.
	dead := "127.0.0.1:1"
	err = PreflightCacheAddrs([]string{addrs[0], dead}, 500*time.Millisecond)
	if err == nil {
		t.Fatal("preflight of a dead node succeeded")
	}
	if !strings.Contains(err.Error(), dead) {
		t.Errorf("error %q does not name the dead node %s", err, dead)
	}
	if strings.Contains(err.Error(), addrs[0]) {
		t.Errorf("error %q names the healthy node %s", err, addrs[0])
	}
}

// TestTierLoadPrepareFailsOnUnreachableTier pins the fix for the silent
// startup failure: a worker pointed at an unreachable tier must error in
// Prepare (which the worker loop reports as ERR prepare, aborting the whole
// coordinated run) rather than limping into warmup.
func TestTierLoadPrepareFailsOnUnreachableTier(t *testing.T) {
	tl := &TierLoad{}
	defer tl.Close()
	spec := exp11Spec(ExpOptions{Quick: true}, 2)
	spec.CacheAddrs = []string{"127.0.0.1:1"}
	err := tl.Prepare(spec)
	if err == nil {
		t.Fatal("Prepare succeeded against an unreachable tier")
	}
	if !strings.Contains(err.Error(), "127.0.0.1:1") {
		t.Errorf("error %q does not name the unreachable node", err)
	}
}
