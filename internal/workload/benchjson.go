package workload

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Exp7JSONPoint is the serialized form of one Exp7Point; durations flatten
// to milliseconds so the artifact diffs meaningfully across CI runs.
type Exp7JSONPoint struct {
	Transport             string  `json:"transport"`
	Async                 bool    `json:"async"`
	ThroughputPagesPerSec float64 `json:"throughput_pages_per_sec"`
	WriteMeanMs           float64 `json:"write_mean_ms"`
	WriteP99Ms            float64 `json:"write_p99_ms"`
	BusFlushes            int64   `json:"bus_flushes"`
	BusApplied            int64   `json:"bus_applied"`
	BusCoalesced          int64   `json:"bus_coalesced"`
	BusQueueFullStalls    int64   `json:"bus_queue_full_stalls"`
	BusStallMs            float64 `json:"bus_stall_ms"`
}

// Exp7JSON is the BENCH_exp7.json document.
type Exp7JSON struct {
	Experiment string          `json:"experiment"`
	Points     []Exp7JSONPoint `json:"points"`
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// WriteExp7JSON records an Experiment 7 sweep as JSON at path (the CI bench
// smoke uploads BENCH_*.json files as workflow artifacts).
func WriteExp7JSON(path string, pts []Exp7Point) error {
	doc := Exp7JSON{Experiment: "exp7-remote-cluster"}
	for _, p := range pts {
		doc.Points = append(doc.Points, Exp7JSONPoint{
			Transport:             p.Transport.String(),
			Async:                 p.Async,
			ThroughputPagesPerSec: p.Throughput,
			WriteMeanMs:           ms(p.MeanWriteLat),
			WriteP99Ms:            ms(p.P99WriteLat),
			BusFlushes:            p.Bus.Flushes,
			BusApplied:            p.Bus.Applied,
			BusCoalesced:          p.Bus.Coalesced,
			BusQueueFullStalls:    p.Bus.QueueFullStalls,
			BusStallMs:            ms(p.Bus.StallTime),
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("workload: marshal %s: %w", path, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
