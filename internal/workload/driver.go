package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cachegenie/internal/obs"
	"cachegenie/internal/social"
	"cachegenie/internal/sqldb"
)

// RunConfig drives one experiment run (paper §5.1 defaults: 15 clients,
// 100 sessions each, 10 page loads per session, 20% write pages, zipf 2.0).
type RunConfig struct {
	Clients         int
	Sessions        int // per client
	PagesPerSession int
	// WritePct is the percentage of write pages (CreateBM + AcceptFR) in
	// the mix; reads split LookupBM:LookupFBM = 5:3 and writes split
	// CreateBM:AcceptFR = 1:1, preserving the paper's 50:30:10:10 default
	// at WritePct = 20.
	WritePct int
	ZipfA    float64
	// ZipfS, when > 0, replaces the paper's duality-form ZipfA sampler with
	// a direct rank-frequency zipf: user rank r is drawn with probability
	// proportional to r^-s. This is the hot-key engineering knob — s = 1.1
	// concentrates a large share of all sessions on a handful of celebrity
	// users, the skew the spreading/L1/single-flight mitigations target —
	// whereas ZipfA expresses the paper's sessions-per-user model (§5.1).
	ZipfS float64
	// FlashCrowdPct redirects that percentage of in-session page loads to a
	// single page — a LookupBM of the flash-crowd user — regardless of which
	// user the session belongs to. It models the everyone-loads-one-page
	// stampede (a link going viral): one key takes FlashCrowdPct% of all
	// traffic on top of whatever the zipf tail sends it. 0 disables.
	FlashCrowdPct int
	// WarmupSessions run before measurement starts (paper: warm-up with 40
	// parallel clients x 100 sessions; scale down).
	WarmupSessions int
	RngSeed        int64
}

// flashCrowdUser is the user whose bookmark page a flash crowd stampedes
// (rank 1 — the most popular user under any zipf, so the crowd lands on an
// already-hot key, the worst case for one node).
const flashCrowdUser = 1

// DefaultRun returns paper-shaped defaults scaled for quick execution.
func DefaultRun() RunConfig {
	return RunConfig{
		Clients:         15,
		Sessions:        10,
		PagesPerSession: 10,
		WritePct:        20,
		ZipfA:           2.0,
		WarmupSessions:  30,
		RngSeed:         42,
	}
}

// PageStats summarizes one page type's latencies.
type PageStats struct {
	Count int
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	// P999 is the tail the hot-key experiments watch: a stampede that
	// queues on one node or one DB query shows up here long before it
	// moves P99.
	P999 time.Duration
	Max  time.Duration
}

// Report is the outcome of a run.
type Report struct {
	Mode       Mode
	Elapsed    time.Duration
	Pages      int
	Errors     int
	Retries    int
	Throughput float64 // page loads per second (wall clock)
	// VirtualElapsed adds the time a CountingSleeper absorbed, when one is
	// used; 0 otherwise.
	ByPage map[social.PageType]PageStats
}

// MeanLatency is the count-weighted mean page latency across page types
// (the Fig 2b series).
func (r Report) MeanLatency() time.Duration {
	var total time.Duration
	n := 0
	for _, st := range r.ByPage {
		total += st.Mean * time.Duration(st.Count)
		n += st.Count
	}
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}

// String renders a compact single-line summary.
func (r Report) String() string {
	return fmt.Sprintf("%-10s %8.1f pages/s  (%d pages, %d errors, %v)",
		r.Mode, r.Throughput, r.Pages, r.Errors, r.Elapsed.Round(time.Millisecond))
}

// recorder accumulates latencies per page type into obs histograms: memory
// stays O(buckets) per page type however many ops run (the raw-slice
// predecessor held every sample — hundreds of MB at millions of ops), and
// quantiles come from the bucketed distribution (within one bucket, ~±3.2%
// relative, of the exact order statistic). Max stays exact.
type recorder struct {
	mu     sync.Mutex
	byPage map[social.PageType]*obs.Histogram
}

func newRecorder() *recorder {
	return &recorder{byPage: make(map[social.PageType]*obs.Histogram)}
}

func (r *recorder) hist(p social.PageType) *obs.Histogram {
	r.mu.Lock()
	h := r.byPage[p]
	if h == nil {
		h = obs.NewHistogram()
		r.byPage[p] = h
	}
	r.mu.Unlock()
	return h
}

func (r *recorder) record(p social.PageType, d time.Duration) {
	r.hist(p).Observe(int64(d))
}

func (r *recorder) stats() map[social.PageType]PageStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[social.PageType]PageStats, len(r.byPage))
	for p, h := range r.byPage {
		s := h.Snapshot()
		if s.Count == 0 {
			continue
		}
		out[p] = PageStats{
			Count: int(s.Count),
			Mean:  time.Duration(s.Mean()),
			P50:   time.Duration(s.Quantile(0.50)),
			P95:   time.Duration(s.Quantile(0.95)),
			P99:   time.Duration(s.Quantile(0.99)),
			P999:  time.Duration(s.Quantile(0.999)),
			Max:   time.Duration(s.Max),
		}
	}
	return out
}

// mix samples page types per the configured write percentage.
type mix struct {
	writePct int
}

func (m mix) sample(rng *rand.Rand) social.PageType {
	if rng.Intn(100) < m.writePct {
		if rng.Intn(2) == 0 {
			return social.PageCreateBM
		}
		return social.PageAcceptFR
	}
	// Reads split 5:3 between LookupBM and LookupFBM.
	if rng.Intn(8) < 5 {
		return social.PageLookupBM
	}
	return social.PageLookupFBM
}

// Run executes the workload against the stack and reports metrics.
func Run(stack *Stack, cfg RunConfig) (Report, error) {
	if cfg.Clients <= 0 || cfg.Sessions <= 0 {
		return Report{}, errors.New("workload: RunConfig needs Clients and Sessions")
	}
	if cfg.PagesPerSession <= 0 {
		cfg.PagesPerSession = 10
	}
	if cfg.ZipfA <= 0 {
		cfg.ZipfA = 2.0
	}
	users := stack.App.NumUsers
	if users == 0 {
		return Report{}, errors.New("workload: stack not seeded")
	}
	var sampler interface{ Sample(*rand.Rand) int }
	if cfg.ZipfS > 0 {
		sampler = NewZipf(users, cfg.ZipfS)
	} else {
		sampler = NewUserSampler(users, cfg.ZipfA, rand.New(rand.NewSource(cfg.RngSeed+31)))
	}
	var seq atomic.Int64
	seq.Store(1 << 20) // clear of seed-assigned sequence space

	session := func(rng *rand.Rand, rec *recorder, errs, retries *atomic.Int64) {
		uid := int64(sampler.Sample(rng))
		pages := make([]social.PageType, 0, cfg.PagesPerSession+2)
		pages = append(pages, social.PageLogin)
		m := mix{writePct: cfg.WritePct}
		for i := 0; i < cfg.PagesPerSession; i++ {
			pages = append(pages, m.sample(rng))
		}
		pages = append(pages, social.PageLogout)
		for _, p := range pages {
			pageUID := uid
			if cfg.FlashCrowdPct > 0 && p != social.PageLogin && p != social.PageLogout &&
				rng.Intn(100) < cfg.FlashCrowdPct {
				// Flash crowd: this page load is everyone hitting the same
				// viral page, whoever this session belongs to.
				p = social.PageLookupBM
				pageUID = flashCrowdUser
			}
			start := time.Now()
			err := stack.App.RunPage(p, pageUID, seq.Add(1))
			if err != nil && errors.Is(err, sqldb.ErrLockTimeout) {
				// Deadlock victim: retry once (paper §3.3 proposes exactly
				// timeout-based deadlock resolution).
				if retries != nil {
					retries.Add(1)
				}
				err = stack.App.RunPage(p, pageUID, seq.Add(1))
			}
			if err != nil && errs != nil {
				errs.Add(1)
			}
			if rec != nil {
				rec.record(p, time.Since(start))
			}
		}
	}

	// Warm-up (unrecorded).
	if cfg.WarmupSessions > 0 {
		var wg sync.WaitGroup
		per := (cfg.WarmupSessions + cfg.Clients - 1) / cfg.Clients
		for c := 0; c < cfg.Clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.RngSeed + int64(c)*7919))
				for s := 0; s < per; s++ {
					session(rng, nil, nil, nil)
				}
			}(c)
		}
		wg.Wait()
		if stack.Genie != nil {
			stack.Genie.FlushInvalidations() // warm-up maintenance stays out of the measured window
		}
	}

	rec := newRecorder()
	var errCount, retryCount atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.RngSeed + 1000003 + int64(c)*104729))
			for s := 0; s < cfg.Sessions; s++ {
				session(rng, rec, &errCount, &retryCount)
			}
		}(c)
	}
	wg.Wait()
	if stack.Genie != nil {
		// Async mode: the drain is part of the measured work, so throughput
		// never counts maintenance the cache hasn't absorbed yet.
		stack.Genie.FlushInvalidations()
	}
	elapsed := time.Since(start)

	byPage := rec.stats()
	pages := 0
	for _, st := range byPage {
		pages += st.Count
	}
	rep := Report{
		Mode:       stack.Config.Mode,
		Elapsed:    elapsed,
		Pages:      pages,
		Errors:     int(errCount.Load()),
		Retries:    int(retryCount.Load()),
		Throughput: float64(pages) / elapsed.Seconds(),
		ByPage:     byPage,
	}
	return rep, nil
}
