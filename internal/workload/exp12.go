// Experiment 12: crash recovery and recovery-epoch cache invalidation.
//
// The drill: a write-heavy run over the drill schema (cache-maintenance
// triggers mirroring every row into the cache) is killed mid-flight — the
// database dies with acknowledged group-committed transactions in the WAL
// and with open transactions whose trigger effects have already reached the
// cache. On restart, recovery must restore exactly the committed prefix
// (zero lost acknowledged writes, zero resurrected uncommitted writes), and
// the recovery-epoch bump must flush the cache tier so stranded trigger
// effects of discarded transactions cannot be served.
//
// The in-process form (`genieload -experiment exp12`) runs the whole
// timeline in one process against a temp data directory, using DB.Crash to
// stand in for SIGKILL, and sweeps the committed-transaction count to
// measure recovery wall clock against log length. The external form splits
// into `-exp12-phase load` (drive a real geniedb over dbproto until the
// driver kills it) and `-exp12-phase verify` (after restart, audit the
// recovered database and the real cache tier against the load phase's
// acknowledgement journal) — CI's crash-drill job wires these around a real
// kill -9.
package workload

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cachegenie/internal/cacheproto"
	"cachegenie/internal/dbproto"
	"cachegenie/internal/kvcache"
	"cachegenie/internal/sqldb"
)

// exp12DoomedVal prefixes values written by transactions that are
// deliberately never committed; recovery must not resurrect any row whose
// val carries it.
const exp12DoomedVal = "doomed"

// Exp12Point is one crash/recover cycle's outcome.
type Exp12Point struct {
	TargetTxns             int     `json:"target_txns"`
	AckedWrites            int     `json:"acked_writes"`
	DoomedTxns             int     `json:"doomed_txns"`
	ReplayedTxns           int     `json:"replayed_txns"`
	ReplayedRecords        int     `json:"replayed_records"`
	UncommittedTxns        int     `json:"uncommitted_txns"`
	RecoveryMs             float64 `json:"recovery_ms"`
	EpochBefore            uint64  `json:"epoch_before"`
	EpochAfter             uint64  `json:"epoch_after"`
	LostCommitted          int     `json:"lost_committed"`
	ResurrectedUncommitted int     `json:"resurrected_uncommitted"`
	ViolationsNoFlush      int     `json:"violations_no_flush"`
	ViolationsWithFlush    int     `json:"violations_with_flush"`
}

// Exp12Result is the experiment's full output.
type Exp12Result struct {
	Mode   string       `json:"mode"` // "inprocess" or "external"
	Points []Exp12Point `json:"points"`
}

// drillQuerier is the read access both the in-process DB and the dbproto
// client give the auditors.
type drillQuerier interface {
	Query(sql string, args ...sqldb.Value) (*sqldb.ResultSet, error)
}

// DrillWrite is one acknowledged row in the load journal.
type DrillWrite struct {
	Table string `json:"table"`
	PK    int64  `json:"pk"`
	Val   string `json:"val"`
}

// Exp12State is the journal the load phase hands the verify phase across
// the crash.
type Exp12State struct {
	EpochAtLoad uint64       `json:"epoch_at_load"`
	Acked       []DrillWrite `json:"acked"`
	DoomedTxns  int          `json:"doomed_txns"`
}

// drillRowVal fetches table/pk's val column; ok=false when the row is gone.
func drillRowVal(q drillQuerier, table string, pk int64) (string, bool, error) {
	rs, err := q.Query(fmt.Sprintf("SELECT val FROM %s WHERE id = $1", table), sqldb.I64(pk))
	if err != nil {
		return "", false, err
	}
	if len(rs.Rows) == 0 {
		return "", false, nil
	}
	return rs.Rows[0][0].S, true, nil
}

// countLostCommitted returns how many acknowledged writes the recovered
// database is missing (or holds with the wrong value). Durability demands 0.
func countLostCommitted(q drillQuerier, acked []DrillWrite) (int, error) {
	lost := 0
	for _, w := range acked {
		val, ok, err := drillRowVal(q, w.Table, w.PK)
		if err != nil {
			return 0, err
		}
		if !ok || val != w.Val {
			lost++
		}
	}
	return lost, nil
}

// countResurrected returns how many rows from never-committed transactions
// the recovered database serves. Atomicity demands 0.
func countResurrected(q drillQuerier) (int, error) {
	res := 0
	for i := 0; i < DrillTables; i++ {
		rs, err := q.Query(fmt.Sprintf("SELECT val FROM %s", DrillTableName(i)))
		if err != nil {
			return 0, err
		}
		for _, row := range rs.Rows {
			if strings.HasPrefix(row[0].S, exp12DoomedVal) {
				res++
			}
		}
	}
	return res, nil
}

// countCacheViolations audits the cache tier against the recovered
// database: a drill key whose row is gone (a discarded transaction's
// trigger effect) or whose value disagrees is a consistency violation.
func countCacheViolations(q drillQuerier, keys []string, get func(string) ([]byte, bool)) (int, error) {
	violations := 0
	for _, key := range keys {
		table, pk, ok := ParseDrillKey(key)
		if !ok {
			continue
		}
		cval, ok := get(key)
		if !ok {
			continue // evicted/flushed between listing and read
		}
		dval, ok, err := drillRowVal(q, table, pk)
		if err != nil {
			return 0, err
		}
		if !ok || dval != string(cval) {
			violations++
		}
	}
	return violations, nil
}

func drillKeys(keys []string) []string {
	out := keys[:0:0]
	for _, k := range keys {
		if strings.HasPrefix(k, DrillKeyPrefix) {
			out = append(out, k)
		}
	}
	return out
}

// exp12Cycle runs one in-process load/crash/recover/audit cycle.
func exp12Cycle(opt ExpOptions, target int) (Exp12Point, error) {
	var p Exp12Point
	p.TargetTxns = target

	dir, err := os.MkdirTemp("", "exp12-")
	if err != nil {
		return p, err
	}
	defer os.RemoveAll(dir)

	cfg := sqldb.Config{DataDir: dir, BufferPoolPages: 2048}
	db, err := sqldb.Open(cfg)
	if err != nil {
		return p, err
	}
	p.EpochBefore = db.Epoch()
	cache := kvcache.New(0)
	if err := InstallDrillSchema(db, cache); err != nil {
		return p, err
	}

	// Write-heavy load: concurrent committers across the drill tables so
	// the group-commit writer actually batches fsyncs. Every acknowledged
	// insert goes in the journal; the database owes us those rows forever.
	const writers = 8
	var (
		committed atomic.Int64
		mu        sync.Mutex
		acked     []DrillWrite
		wg        sync.WaitGroup
		werr      atomic.Value
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000*target + w)))
			for seq := 0; committed.Add(1) <= int64(target); seq++ {
				table := DrillTableName(rng.Intn(DrillTables))
				val := fmt.Sprintf("w%d-%d", w, seq)
				res, err := db.Exec(fmt.Sprintf("INSERT INTO %s (val) VALUES ($1)", table), sqldb.Str(val))
				if err != nil {
					werr.Store(err)
					return
				}
				mu.Lock()
				acked = append(acked, DrillWrite{Table: table, PK: res.LastInsertID, Val: val})
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if err, _ := werr.Load().(error); err != nil {
		return p, fmt.Errorf("exp12: load: %w", err)
	}
	p.AckedWrites = len(acked)

	// Open transactions that will never commit: their triggers have
	// already pushed values into the cache — the stranded state the epoch
	// flush exists to clean up. One per table: a second open transaction
	// on the same table would block on its exclusive lock.
	const doomed = DrillTables
	for i := 0; i < doomed; i++ {
		tx := db.Begin()
		table := DrillTableName(i)
		if _, err := tx.Exec(fmt.Sprintf("INSERT INTO %s (val) VALUES ($1)", table),
			sqldb.Str(fmt.Sprintf("%s-%d", exp12DoomedVal, i))); err != nil {
			return p, fmt.Errorf("exp12: doomed txn: %w", err)
		}
		// Deliberately neither committed nor rolled back: Crash takes the
		// process down with the transaction open.
	}
	p.DoomedTxns = doomed

	db.Crash() // SIGKILL stand-in: no snapshot, no WAL drain

	db2, err := sqldb.Open(cfg)
	if err != nil {
		return p, fmt.Errorf("exp12: reopen: %w", err)
	}
	defer db2.Close()
	rec := db2.Recovery()
	p.ReplayedTxns = rec.ReplayedTxns
	p.ReplayedRecords = rec.ReplayedRecords
	p.UncommittedTxns = rec.UncommittedTxns
	p.RecoveryMs = float64(rec.DurationNanos) / 1e6
	p.EpochAfter = db2.Epoch()

	if p.LostCommitted, err = countLostCommitted(db2, acked); err != nil {
		return p, err
	}
	if p.ResurrectedUncommitted, err = countResurrected(db2); err != nil {
		return p, err
	}
	keys := drillKeys(cache.Keys())
	if p.ViolationsNoFlush, err = countCacheViolations(db2, keys, cache.Get); err != nil {
		return p, err
	}
	// The stack's reaction: epoch advanced, flush the tier.
	guard := NewEpochGuard(p.EpochBefore, cache.FlushAll)
	guard.Observe(db2.Epoch())
	if p.ViolationsWithFlush, err = countCacheViolations(db2, drillKeys(cache.Keys()), cache.Get); err != nil {
		return p, err
	}
	return p, nil
}

// Exp12 runs the in-process crash drill across a sweep of committed-
// transaction counts, measuring recovery wall clock against log length and
// auditing durability, atomicity and cache consistency at each point.
func Exp12(opt ExpOptions) (Exp12Result, error) {
	targets := []int{250, 1000, 4000}
	if opt.Quick {
		targets = []int{100, 400}
	}
	res := Exp12Result{Mode: "inprocess"}
	for _, target := range targets {
		p, err := exp12Cycle(opt, target)
		if err != nil {
			return res, err
		}
		opt.logf("exp12: %d txns committed, %d wal records replayed in %.1fms; "+
			"epoch %d->%d; lost=%d resurrected=%d violations: %d before flush, %d after",
			p.AckedWrites, p.ReplayedRecords, p.RecoveryMs, p.EpochBefore, p.EpochAfter,
			p.LostCommitted, p.ResurrectedUncommitted, p.ViolationsNoFlush, p.ViolationsWithFlush)
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// WriteExp12JSON writes the BENCH_exp12.json artifact.
func WriteExp12JSON(path string, res Exp12Result) error {
	out := struct {
		Experiment  string `json:"experiment"`
		Description string `json:"description"`
		Exp12Result
	}{
		Experiment: "exp12",
		Description: "Crash drill: write-heavy load killed mid-run; recovery must restore exactly " +
			"the committed prefix and the recovery-epoch bump must flush stranded cache state.",
		Exp12Result: res,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Exp12Load is the external drill's load phase: drive a real geniedb over
// dbproto with concurrent autocommit inserts plus a few deliberately
// never-committed transactions, journaling every acknowledged write to
// statePath. The driver is expected to SIGKILL the database mid-run;
// writers stop on the first connection error and that is success, not
// failure — the journal is what the verify phase audits after restart.
func Exp12Load(dbAddr, statePath string, writers int, d time.Duration, logf func(string, ...any)) error {
	if writers <= 0 {
		writers = 8
	}
	probe, err := dbproto.Dial(dbAddr)
	if err != nil {
		return fmt.Errorf("exp12 load: %w", err)
	}
	epoch, err := probe.Epoch()
	if err != nil {
		return fmt.Errorf("exp12 load: epoch: %w", err)
	}
	defer probe.Close()

	// One doomed transaction, opened first so its trigger effect is in the
	// cache well before the kill lands. It holds the last drill table's
	// exclusive lock until the database dies, so that table is reserved
	// for it — the committing writers spread over the others.
	const doomed = 1
	doomedTable := DrillTableName(DrillTables - 1)
	{
		c, err := dbproto.Dial(dbAddr)
		if err != nil {
			return fmt.Errorf("exp12 load: %w", err)
		}
		defer c.Close()
		if err := c.Begin(); err != nil {
			return fmt.Errorf("exp12 load: %w", err)
		}
		if _, err := c.Exec(fmt.Sprintf("INSERT INTO %s (val) VALUES ($1)", doomedTable),
			sqldb.Str(exp12DoomedVal+"-ext")); err != nil {
			return fmt.Errorf("exp12 load: doomed insert: %w", err)
		}
		// Held open, never committed; the kill (or our exit) discards it.
	}

	var (
		mu    sync.Mutex
		acked []DrillWrite
		wg    sync.WaitGroup
	)
	deadline := time.Now().Add(d)
	for w := 0; w < writers; w++ {
		c, err := dbproto.Dial(dbAddr)
		if err != nil {
			return fmt.Errorf("exp12 load: %w", err)
		}
		wg.Add(1)
		go func(w int, c *dbproto.Client) {
			defer wg.Done()
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for seq := 0; time.Now().Before(deadline); seq++ {
				table := DrillTableName(rng.Intn(DrillTables - 1))
				val := fmt.Sprintf("w%d-%d", w, seq)
				res, err := c.Exec(fmt.Sprintf("INSERT INTO %s (val) VALUES ($1)", table), sqldb.Str(val))
				if err != nil {
					return // database died under us — the drill's whole point
				}
				mu.Lock()
				acked = append(acked, DrillWrite{Table: table, PK: res.LastInsertID, Val: val})
				mu.Unlock()
			}
		}(w, c)
	}
	wg.Wait()
	if len(acked) == 0 {
		return errors.New("exp12 load: no writes were acknowledged — drill never got going")
	}
	logf("exp12 load: %d acknowledged writes, %d doomed txns, epoch %d", len(acked), doomed, epoch)
	data, err := json.MarshalIndent(Exp12State{EpochAtLoad: epoch, Acked: acked, DoomedTxns: doomed}, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(statePath, append(data, '\n'), 0o644)
}

// Exp12Verify is the external drill's audit phase, run against the
// restarted geniedb and the live cache tier.
func Exp12Verify(dbAddr string, cacheAddrs []string, statePath string, logf func(string, ...any)) (Exp12Result, error) {
	res := Exp12Result{Mode: "external"}
	data, err := os.ReadFile(statePath)
	if err != nil {
		return res, fmt.Errorf("exp12 verify: %w", err)
	}
	var state Exp12State
	if err := json.Unmarshal(data, &state); err != nil {
		return res, fmt.Errorf("exp12 verify: state: %w", err)
	}
	c, err := dbproto.Dial(dbAddr)
	if err != nil {
		return res, fmt.Errorf("exp12 verify: %w", err)
	}
	defer c.Close()

	var p Exp12Point
	p.AckedWrites = len(state.Acked)
	p.DoomedTxns = state.DoomedTxns
	p.EpochBefore = state.EpochAtLoad
	if p.EpochAfter, err = c.Epoch(); err != nil {
		return res, err
	}
	rec, err := c.Recovery()
	if err != nil {
		return res, err
	}
	p.ReplayedTxns = rec.ReplayedTxns
	p.ReplayedRecords = rec.ReplayedRecords
	p.UncommittedTxns = rec.UncommittedTxns
	p.RecoveryMs = float64(rec.DurationNanos) / 1e6

	if p.LostCommitted, err = countLostCommitted(c, state.Acked); err != nil {
		return res, err
	}
	if p.ResurrectedUncommitted, err = countResurrected(c); err != nil {
		return res, err
	}

	pools := make([]*cacheproto.Pool, len(cacheAddrs))
	for i, addr := range cacheAddrs {
		pools[i] = cacheproto.NewPool(addr, 2)
		defer pools[i].Close()
	}
	var keys []string
	for _, pool := range pools {
		ks, err := pool.Keys()
		if err != nil {
			return res, fmt.Errorf("exp12 verify: cache keys from %s: %w", pool.Addr(), err)
		}
		keys = append(keys, drillKeys(ks)...)
	}
	get := func(key string) ([]byte, bool) {
		for _, pool := range pools {
			if v, ok := pool.Get(key); ok {
				return v, true
			}
		}
		return nil, false
	}
	if p.ViolationsNoFlush, err = countCacheViolations(c, keys, get); err != nil {
		return res, err
	}

	// The stack's reaction to the epoch bump: flush the whole tier.
	guard := NewEpochGuard(state.EpochAtLoad, func() {
		for _, pool := range pools {
			pool.FlushAll()
		}
	})
	flushed := guard.Observe(p.EpochAfter)
	keys = keys[:0]
	for _, pool := range pools {
		ks, err := pool.Keys()
		if err != nil {
			return res, err
		}
		keys = append(keys, drillKeys(ks)...)
	}
	if p.ViolationsWithFlush, err = countCacheViolations(c, keys, get); err != nil {
		return res, err
	}
	logf("exp12 verify: epoch %d->%d (flushed=%v), %d replayed txns in %.1fms; "+
		"lost=%d resurrected=%d violations: %d before flush, %d after",
		p.EpochBefore, p.EpochAfter, flushed, p.ReplayedTxns, p.RecoveryMs,
		p.LostCommitted, p.ResurrectedUncommitted, p.ViolationsNoFlush, p.ViolationsWithFlush)
	res.Points = append(res.Points, p)
	return res, nil
}
