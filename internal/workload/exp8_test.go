package workload

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cachegenie/internal/cacheproto"
)

func buildExp8TestStack(t *testing.T) *Stack {
	t.Helper()
	st, err := BuildStackForExp8(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	return st
}

func TestStackKillAndReviveNode(t *testing.T) {
	st := buildExp8TestStack(t)
	addr := st.Pools[1].Addr()

	// Healthy: the node answers over the wire.
	if _, err := st.Pools[1].ServerStats(); err != nil {
		t.Fatalf("healthy node unreachable: %v", err)
	}
	st.Stores[1].Set("warm", []byte("v"), 0)

	if err := st.KillNode(1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Pools[1].ServerStats(); err == nil {
		t.Fatal("killed node still reachable")
	}
	if err := st.ReviveNode(1); err != nil {
		t.Fatal(err)
	}
	// Use a fresh pool for the liveness check: the original one may be mid
	// breaker-recovery, which is its own test below.
	probe := cacheproto.NewPool(addr, 1)
	defer probe.Close()
	if _, err := probe.ServerStats(); err != nil {
		t.Fatalf("revived node unreachable: %v", err)
	}
	// The revived node came back cold.
	if _, ok := st.Stores[1].Get("warm"); ok {
		t.Fatal("revived node kept pre-crash entries")
	}

	if err := st.KillNode(99); err == nil {
		t.Fatal("KillNode out of range accepted")
	}
	if err := st.ReviveNode(-1); err == nil {
		t.Fatal("ReviveNode out of range accepted")
	}
}

func TestCacheTierStatsCountsUnreachableNodes(t *testing.T) {
	st := buildExp8TestStack(t)
	if got := st.CacheTierStats().UnreachableNodes; got != 0 {
		t.Fatalf("healthy tier reports %d unreachable nodes", got)
	}
	if err := st.KillNode(2); err != nil {
		t.Fatal(err)
	}
	ts := st.CacheTierStats()
	if ts.UnreachableNodes != 1 {
		t.Fatalf("unreachable = %d, want 1", ts.UnreachableNodes)
	}
	// The loopback stores keep aggregating even while the wire is down.
	st.Stores[0].Set("x", []byte("v"), 0)
	if st.CacheTierStats().Sets == 0 {
		t.Fatal("store-side counters lost")
	}
	if err := st.ReviveNode(2); err != nil {
		t.Fatal(err)
	}
	// The pool on node 2 may need its breaker to close before the probe
	// succeeds again; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st.CacheTierStats().UnreachableNodes == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node still unreachable after revive: %+v", st.CacheTierStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestExp8NodeFailureTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("four full workload phases over TCP")
	}
	res, err := Exp8(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Exp8Phase{res.Healthy, res.Degraded, res.Removed, res.Rejoined} {
		if p.Throughput <= 0 {
			t.Fatalf("phase %s has no throughput: %+v", p.Name, p)
		}
	}
	if res.BreakerTrips == 0 {
		t.Fatalf("breaker never tripped: %+v", res)
	}
	if res.FailFastOps == 0 {
		t.Fatalf("no op ever failed fast: %+v", res)
	}
	if res.UnreachableNodes != 1 {
		t.Fatalf("unreachable during outage = %d, want 1", res.UnreachableNodes)
	}
	// The acceptance criterion: fail-fast ops skip the per-op dial penalty.
	if res.FailFastP99 >= res.DialStormP99 {
		t.Fatalf("fail-fast p99 %v not below dial-storm p99 %v", res.FailFastP99, res.DialStormP99)
	}
	// ~1/N of keys remap when the dead node leaves.
	if res.RemapFraction < 0.10 || res.RemapFraction > 0.45 {
		t.Fatalf("remap fraction = %.3f, want ~%.2f", res.RemapFraction, 1.0/Exp8Nodes)
	}
	if !res.RejoinExact {
		t.Fatal("rejoin did not restore the original assignment")
	}
}

func TestExp8RejectsExternalAddrs(t *testing.T) {
	opt := tinyOpts()
	opt.CacheAddrs = []string{"127.0.0.1:1"}
	if _, err := BuildStackForExp8(opt); err == nil {
		t.Fatal("exp8 accepted external cache addrs it cannot kill")
	}
}

func TestWriteExp8JSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_exp8.json")
	res := Exp8Result{
		Healthy:       Exp8Phase{Name: "healthy", Throughput: 100, HitRate: 0.9},
		Degraded:      Exp8Phase{Name: "degraded", Throughput: 70, HitRate: 0.6},
		Removed:       Exp8Phase{Name: "removed", Throughput: 90, HitRate: 0.8},
		Rejoined:      Exp8Phase{Name: "rejoined", Throughput: 99, HitRate: 0.88},
		FailFastP99:   150 * time.Nanosecond,
		DialStormP99:  80 * time.Microsecond,
		RemapFraction: 0.26,
		RejoinExact:   true,
		BreakerTrips:  1,
	}
	if err := WriteExp8JSON(path, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"exp8-node-failure"`, `"degraded"`, `"rejoined"`,
		`"remap_fraction": 0.26`, `"rejoin_exact": true`, `"fail_fast_p99_us": 0.15`,
	} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("artifact missing %s:\n%s", want, data)
		}
	}
}
