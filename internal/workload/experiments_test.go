package workload

import (
	"testing"

	"cachegenie/internal/social"
)

// tinyOpts makes experiment functions run in well under a second each.
func tinyOpts() ExpOptions {
	return ExpOptions{
		Quick:        true,
		LatencyScale: 1000, // near-zero injected latency
		Seed: social.SeedConfig{
			Users: 30, UniqueBookmarks: 15, MaxBookmarksPer: 3,
			MaxFriendsPer: 3, MaxInvitesPer: 2, MaxWallPosts: 4,
		},
	}
}

func TestEffortMatchesPaperAccounting(t *testing.T) {
	rep, err := Effort()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CachedObjects != 14 {
		t.Fatalf("cached objects = %d, want 14 (paper §5.2)", rep.CachedObjects)
	}
	if rep.Triggers != 45 {
		t.Fatalf("triggers = %d, want 45 (paper: 48 for its class mix)", rep.Triggers)
	}
	// The paper reports ~1720 generated lines; the generator should land
	// within ±30%.
	if rep.GeneratedLines < 1200 || rep.GeneratedLines > 2300 {
		t.Fatalf("generated lines = %d, want ~1720 +/- 30%%", rep.GeneratedLines)
	}
	if rep.AppLinesChanged != 14 {
		t.Fatalf("app lines changed = %d", rep.AppLinesChanged)
	}
}

func TestMicroLookupRatioDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	res, err := MicroLookup(ExpOptions{LatencyScale: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.DBLookup <= res.CacheLookup {
		t.Fatalf("db lookup %v not slower than cache lookup %v", res.DBLookup, res.CacheLookup)
	}
	// Magnitude claims live in the benchmark harness (run on an idle
	// machine); under concurrent test load only the direction is stable.
	if res.Ratio < 1.2 {
		t.Fatalf("ratio = %.1f; db lookup should be clearly slower", res.Ratio)
	}
}

func TestMicroTriggerLadderDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	res, err := MicroTrigger(ExpOptions{LatencyScale: 20})
	if err != nil {
		t.Fatal(err)
	}
	// The connect trigger must be clearly slower than the plain insert —
	// the paper's dominant trigger cost.
	if res.ConnectTrigger < res.PlainInsert+res.PlainInsert/4 {
		t.Fatalf("connect trigger %v vs plain %v: connection cost invisible",
			res.ConnectTrigger, res.PlainInsert)
	}
	if res.PerCacheOp <= 0 {
		t.Fatal("per-op cost not measured")
	}
}

func TestRunModeSmoke(t *testing.T) {
	opt := tinyOpts()
	rep, err := RunMode(opt, ModeUpdate, 3, 20, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors > 0 || rep.Pages == 0 {
		t.Fatalf("rep = %+v", rep)
	}
	if rep.MeanLatency() <= 0 {
		t.Fatal("mean latency not computed")
	}
}

func TestExp5TriggerToggleWorks(t *testing.T) {
	if testing.Short() {
		t.Skip("four full stack runs")
	}
	opt := tinyOpts()
	res, err := Exp5(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	for _, r := range res {
		if r.WithTriggers <= 0 || r.WithoutTriggers <= 0 {
			t.Fatalf("%+v", r)
		}
	}
}

func TestExp4EvictionsAppearAtSmallSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("four full stack runs")
	}
	opt := tinyOpts()
	pts, err := Exp4(opt, []int64{8 << 10, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var small, large Exp4Point
	for _, p := range pts {
		if p.Mode != ModeUpdate {
			continue
		}
		if p.CacheBytes == 8<<10 {
			small = p
		} else {
			large = p
		}
	}
	if small.Evictions == 0 {
		t.Fatal("tiny cache saw no evictions")
	}
	if large.HitRate < small.HitRate {
		t.Fatalf("hit rate did not improve with cache size: %.2f -> %.2f",
			small.HitRate, large.HitRate)
	}
}

func TestAblationTemplateHitRateLower(t *testing.T) {
	if testing.Short() {
		t.Skip("two full stack runs")
	}
	res, err := AblationTemplateInvalidation(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	// CacheGenie invalidates only affected keys; the template baseline
	// wipes whole templates. Its hit rate must be strictly lower.
	if res.TemplateHitRate >= res.GenieHitRate {
		t.Fatalf("template hit rate %.3f >= genie hit rate %.3f",
			res.TemplateHitRate, res.GenieHitRate)
	}
}

func TestBuildStackForBenchKnobs(t *testing.T) {
	opt := tinyOpts()
	st, err := BuildStackForBench(opt, ModeUpdate, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Stores) != 2 {
		t.Fatalf("stores = %d", len(st.Stores))
	}
	if !st.Config.ReuseTriggerConnections {
		t.Fatal("reuse knob not applied")
	}
	rep, err := Run(st, RunConfig{Clients: 2, Sessions: 2, PagesPerSession: 4, WritePct: 20, ZipfA: 2.0, RngSeed: 5})
	if err != nil || rep.Errors > 0 {
		t.Fatalf("rep=%+v err=%v", rep, err)
	}
}

func TestExp6AsyncInvalidationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("four full stack runs")
	}
	res, err := Exp6(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("points = %d, want 4", len(res))
	}
	for _, p := range res {
		if p.Throughput <= 0 {
			t.Fatalf("%+v", p)
		}
		if p.Async {
			if p.Bus.Enqueued == 0 {
				t.Fatalf("async point saw no bus traffic: %+v", p)
			}
			if p.Bus.Applied+p.Bus.Coalesced != p.Bus.Enqueued {
				t.Fatalf("bus did not drain fully: %+v", p.Bus)
			}
		} else if p.Bus.Enqueued != 0 {
			t.Fatalf("sync point reports bus traffic: %+v", p)
		}
	}
}

func TestAsyncStackRunsCleanly(t *testing.T) {
	opt := tinyOpts()
	st, err := BuildStackForExp6(opt, ModeUpdate, true)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(st, RunConfig{Clients: 3, Sessions: 3, PagesPerSession: 6, WritePct: 40, ZipfA: 2.0, WarmupSessions: 3, RngSeed: 17})
	if err != nil || rep.Errors > 0 {
		t.Fatalf("rep=%+v err=%v", rep, err)
	}
	bs := st.Genie.InvStats()
	if bs.Enqueued == 0 || bs.Applied+bs.Coalesced != bs.Enqueued {
		t.Fatalf("bus stats = %+v", bs)
	}
	if rep.ByPage[social.PageCreateBM].P99 < rep.ByPage[social.PageCreateBM].P50 {
		t.Fatalf("percentiles inverted: %+v", rep.ByPage[social.PageCreateBM])
	}
	st.Genie.Close()
}
