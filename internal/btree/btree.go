// Package btree implements an in-memory B+tree with byte-string keys and
// int64 values. It backs the secondary indexes of the SQL engine and the
// database-versus-cache lookup microbenchmark (paper §5.3).
//
// Keys are compared with bytes.Compare, so callers that need composite or
// typed keys must use an order-preserving encoding (see the sqldb package).
// The tree is not safe for concurrent use; the engine serializes access.
package btree

import (
	"bytes"
	"fmt"
)

// DefaultOrder is the default maximum number of children per internal node.
const DefaultOrder = 64

// Tree is a B+tree mapping []byte keys to int64 values. Keys are unique;
// inserting an existing key replaces its value. The zero value is not usable;
// call New.
type Tree struct {
	order int
	root  node
	size  int
}

// New returns an empty tree with the given order (maximum children per
// internal node). Orders below 4 are raised to 4.
func New(order int) *Tree {
	if order < 4 {
		order = 4
	}
	return &Tree{order: order, root: &leafNode{}}
}

// Len reports the number of keys stored in the tree.
func (t *Tree) Len() int { return t.size }

// node is either *leafNode or *innerNode.
type node interface {
	// firstKey returns the smallest key in the subtree.
	firstKey() []byte
}

type leafNode struct {
	keys [][]byte
	vals []int64
	next *leafNode
	prev *leafNode
}

func (l *leafNode) firstKey() []byte {
	if len(l.keys) == 0 {
		return nil
	}
	return l.keys[0]
}

type innerNode struct {
	// keys[i] is the smallest key in children[i+1]'s subtree; len(children)
	// == len(keys)+1.
	keys     [][]byte
	children []node
}

func (in *innerNode) firstKey() []byte { return in.children[0].firstKey() }

// search returns the index of the first key >= k in keys.
func search(keys [][]byte, k []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns the child to descend into for key k.
func (in *innerNode) childIndex(k []byte) int {
	// Descend into children[i] where keys[i-1] <= k < keys[i].
	lo, hi := 0, len(in.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(in.keys[mid], k) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under key, and whether it was present.
func (t *Tree) Get(key []byte) (int64, bool) {
	n := t.root
	for {
		switch x := n.(type) {
		case *innerNode:
			n = x.children[x.childIndex(key)]
		case *leafNode:
			i := search(x.keys, key)
			if i < len(x.keys) && bytes.Equal(x.keys[i], key) {
				return x.vals[i], true
			}
			return 0, false
		}
	}
}

// Set inserts key with value v, replacing any existing value. It reports
// whether a new key was inserted (false means replaced).
func (t *Tree) Set(key []byte, v int64) bool {
	k := append([]byte(nil), key...) // tree owns its keys
	newChild, splitKey, inserted := t.insert(t.root, k, v)
	if newChild != nil {
		t.root = &innerNode{
			keys:     [][]byte{splitKey},
			children: []node{t.root, newChild},
		}
	}
	if inserted {
		t.size++
	}
	return inserted
}

// insert adds k/v under n. If n splits, it returns the new right sibling and
// the smallest key of that sibling.
func (t *Tree) insert(n node, k []byte, v int64) (node, []byte, bool) {
	switch x := n.(type) {
	case *leafNode:
		i := search(x.keys, k)
		if i < len(x.keys) && bytes.Equal(x.keys[i], k) {
			x.vals[i] = v
			return nil, nil, false
		}
		x.keys = append(x.keys, nil)
		copy(x.keys[i+1:], x.keys[i:])
		x.keys[i] = k
		x.vals = append(x.vals, 0)
		copy(x.vals[i+1:], x.vals[i:])
		x.vals[i] = v
		if len(x.keys) < t.order {
			return nil, nil, true
		}
		// Split leaf.
		mid := len(x.keys) / 2
		right := &leafNode{
			keys: append([][]byte(nil), x.keys[mid:]...),
			vals: append([]int64(nil), x.vals[mid:]...),
			next: x.next,
			prev: x,
		}
		if x.next != nil {
			x.next.prev = right
		}
		x.keys = x.keys[:mid:mid]
		x.vals = x.vals[:mid:mid]
		x.next = right
		return right, right.keys[0], true
	case *innerNode:
		ci := x.childIndex(k)
		newChild, splitKey, inserted := t.insert(x.children[ci], k, v)
		if newChild == nil {
			return nil, nil, inserted
		}
		x.keys = append(x.keys, nil)
		copy(x.keys[ci+1:], x.keys[ci:])
		x.keys[ci] = splitKey
		x.children = append(x.children, nil)
		copy(x.children[ci+2:], x.children[ci+1:])
		x.children[ci+1] = newChild
		if len(x.children) <= t.order {
			return nil, nil, inserted
		}
		// Split inner node: middle key moves up.
		mid := len(x.keys) / 2
		upKey := x.keys[mid]
		right := &innerNode{
			keys:     append([][]byte(nil), x.keys[mid+1:]...),
			children: append([]node(nil), x.children[mid+1:]...),
		}
		x.keys = x.keys[:mid:mid]
		x.children = x.children[: mid+1 : mid+1]
		return right, upKey, inserted
	}
	panic("btree: unknown node type")
}

// Delete removes key from the tree and reports whether it was present.
func (t *Tree) Delete(key []byte) bool {
	deleted := t.delete(t.root, key)
	if deleted {
		t.size--
	}
	// Collapse a root inner node with a single child.
	if in, ok := t.root.(*innerNode); ok && len(in.children) == 1 {
		t.root = in.children[0]
	}
	return deleted
}

// minLeafKeys is the minimum fill for a non-root leaf.
func (t *Tree) minLeafKeys() int { return (t.order - 1) / 2 }

// minInnerChildren is the minimum fill for a non-root inner node.
func (t *Tree) minInnerChildren() int { return (t.order + 1) / 2 }

func (t *Tree) delete(n node, k []byte) bool {
	switch x := n.(type) {
	case *leafNode:
		i := search(x.keys, k)
		if i >= len(x.keys) || !bytes.Equal(x.keys[i], k) {
			return false
		}
		x.keys = append(x.keys[:i], x.keys[i+1:]...)
		x.vals = append(x.vals[:i], x.vals[i+1:]...)
		return true
	case *innerNode:
		ci := x.childIndex(k)
		if !t.delete(x.children[ci], k) {
			return false
		}
		t.rebalance(x, ci)
		return true
	}
	panic("btree: unknown node type")
}

// rebalance fixes up child ci of parent after a deletion may have left it
// underfull, by borrowing from or merging with a sibling.
func (t *Tree) rebalance(parent *innerNode, ci int) {
	child := parent.children[ci]
	switch c := child.(type) {
	case *leafNode:
		if len(c.keys) >= t.minLeafKeys() {
			return
		}
		// Try borrowing from left sibling.
		if ci > 0 {
			left := parent.children[ci-1].(*leafNode)
			if len(left.keys) > t.minLeafKeys() {
				last := len(left.keys) - 1
				c.keys = append([][]byte{left.keys[last]}, c.keys...)
				c.vals = append([]int64{left.vals[last]}, c.vals...)
				left.keys = left.keys[:last]
				left.vals = left.vals[:last]
				parent.keys[ci-1] = c.keys[0]
				return
			}
		}
		// Try borrowing from right sibling.
		if ci < len(parent.children)-1 {
			right := parent.children[ci+1].(*leafNode)
			if len(right.keys) > t.minLeafKeys() {
				c.keys = append(c.keys, right.keys[0])
				c.vals = append(c.vals, right.vals[0])
				right.keys = right.keys[1:]
				right.vals = right.vals[1:]
				parent.keys[ci] = right.keys[0]
				return
			}
		}
		// Merge with a sibling.
		if ci > 0 {
			left := parent.children[ci-1].(*leafNode)
			left.keys = append(left.keys, c.keys...)
			left.vals = append(left.vals, c.vals...)
			left.next = c.next
			if c.next != nil {
				c.next.prev = left
			}
			parent.keys = append(parent.keys[:ci-1], parent.keys[ci:]...)
			parent.children = append(parent.children[:ci], parent.children[ci+1:]...)
		} else {
			right := parent.children[ci+1].(*leafNode)
			c.keys = append(c.keys, right.keys...)
			c.vals = append(c.vals, right.vals...)
			c.next = right.next
			if right.next != nil {
				right.next.prev = c
			}
			parent.keys = append(parent.keys[:ci], parent.keys[ci+1:]...)
			parent.children = append(parent.children[:ci+1], parent.children[ci+2:]...)
		}
	case *innerNode:
		if len(c.children) >= t.minInnerChildren() {
			return
		}
		if ci > 0 {
			left := parent.children[ci-1].(*innerNode)
			if len(left.children) > t.minInnerChildren() {
				// Rotate right through the parent separator.
				lastChild := left.children[len(left.children)-1]
				lastKey := left.keys[len(left.keys)-1]
				c.children = append([]node{lastChild}, c.children...)
				c.keys = append([][]byte{parent.keys[ci-1]}, c.keys...)
				parent.keys[ci-1] = lastKey
				left.children = left.children[:len(left.children)-1]
				left.keys = left.keys[:len(left.keys)-1]
				return
			}
		}
		if ci < len(parent.children)-1 {
			right := parent.children[ci+1].(*innerNode)
			if len(right.children) > t.minInnerChildren() {
				// Rotate left through the parent separator.
				c.children = append(c.children, right.children[0])
				c.keys = append(c.keys, parent.keys[ci])
				parent.keys[ci] = right.keys[0]
				right.children = right.children[1:]
				right.keys = right.keys[1:]
				return
			}
		}
		if ci > 0 {
			left := parent.children[ci-1].(*innerNode)
			left.keys = append(left.keys, parent.keys[ci-1])
			left.keys = append(left.keys, c.keys...)
			left.children = append(left.children, c.children...)
			parent.keys = append(parent.keys[:ci-1], parent.keys[ci:]...)
			parent.children = append(parent.children[:ci], parent.children[ci+1:]...)
		} else {
			right := parent.children[ci+1].(*innerNode)
			c.keys = append(c.keys, parent.keys[ci])
			c.keys = append(c.keys, right.keys...)
			c.children = append(c.children, right.children...)
			parent.keys = append(parent.keys[:ci], parent.keys[ci+1:]...)
			parent.children = append(parent.children[:ci+1], parent.children[ci+2:]...)
		}
	}
}

// Iterator walks keys in ascending order. It is invalidated by mutation.
type Iterator struct {
	leaf *leafNode
	idx  int
	hi   []byte // exclusive upper bound; nil means unbounded
}

// Valid reports whether the iterator currently points at an entry.
func (it *Iterator) Valid() bool {
	if it.leaf == nil || it.idx >= len(it.leaf.keys) {
		return false
	}
	if it.hi != nil && bytes.Compare(it.leaf.keys[it.idx], it.hi) >= 0 {
		return false
	}
	return true
}

// Key returns the current key. The caller must not modify it.
func (it *Iterator) Key() []byte { return it.leaf.keys[it.idx] }

// Value returns the current value.
func (it *Iterator) Value() int64 { return it.leaf.vals[it.idx] }

// Next advances the iterator.
func (it *Iterator) Next() {
	it.idx++
	for it.leaf != nil && it.idx >= len(it.leaf.keys) {
		it.leaf = it.leaf.next
		it.idx = 0
	}
}

// Scan returns an iterator positioned at the first key >= lo, bounded
// exclusively by hi (nil hi means unbounded).
func (t *Tree) Scan(lo, hi []byte) *Iterator {
	n := t.root
	for {
		switch x := n.(type) {
		case *innerNode:
			if lo == nil {
				n = x.children[0]
			} else {
				n = x.children[x.childIndex(lo)]
			}
		case *leafNode:
			it := &Iterator{leaf: x, hi: hi}
			if lo != nil {
				it.idx = search(x.keys, lo)
			}
			for it.leaf != nil && it.idx >= len(it.leaf.keys) {
				it.leaf = it.leaf.next
				it.idx = 0
			}
			return it
		}
	}
}

// Ascend calls fn for every key/value pair in ascending order until fn
// returns false.
func (t *Tree) Ascend(fn func(key []byte, v int64) bool) {
	for it := t.Scan(nil, nil); it.Valid(); it.Next() {
		if !fn(it.Key(), it.Value()) {
			return
		}
	}
}

// Min returns the smallest key, or nil if the tree is empty.
func (t *Tree) Min() []byte {
	it := t.Scan(nil, nil)
	if !it.Valid() {
		return nil
	}
	return it.Key()
}

// Max returns the largest key, or nil if the tree is empty.
func (t *Tree) Max() []byte {
	n := t.root
	for {
		switch x := n.(type) {
		case *innerNode:
			n = x.children[len(x.children)-1]
		case *leafNode:
			// The rightmost leaf can transiently be empty only when the tree
			// is empty (root leaf).
			if len(x.keys) == 0 {
				return nil
			}
			return x.keys[len(x.keys)-1]
		}
	}
}

// check validates tree invariants; used by tests.
func (t *Tree) check() error {
	count := 0
	var prev []byte
	t.Ascend(func(k []byte, _ int64) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			panic(fmt.Sprintf("btree: keys out of order: %q >= %q", prev, k))
		}
		prev = k
		count++
		return true
	})
	if count != t.size {
		return fmt.Errorf("btree: size mismatch: counted %d, recorded %d", count, t.size)
	}
	return nil
}
