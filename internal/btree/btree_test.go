package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

func TestEmptyTree(t *testing.T) {
	tr := New(8)
	if tr.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", tr.Len())
	}
	if _, ok := tr.Get(key(1)); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if tr.Delete(key(1)) {
		t.Fatal("Delete on empty tree returned true")
	}
	if tr.Min() != nil || tr.Max() != nil {
		t.Fatal("Min/Max on empty tree should be nil")
	}
	if it := tr.Scan(nil, nil); it.Valid() {
		t.Fatal("iterator on empty tree should be invalid")
	}
}

func TestSetGet(t *testing.T) {
	tr := New(8)
	const n = 1000
	for i := 0; i < n; i++ {
		if !tr.Set(key(i), int64(i)) {
			t.Fatalf("Set(%d) reported replace on fresh key", i)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len() = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Get(key(i))
		if !ok || v != int64(i) {
			t.Fatalf("Get(%d) = %d,%v; want %d,true", i, v, ok, i)
		}
	}
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
}

func TestSetReplaces(t *testing.T) {
	tr := New(4)
	tr.Set(key(7), 1)
	if tr.Set(key(7), 2) {
		t.Fatal("second Set of same key reported insert")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", tr.Len())
	}
	if v, _ := tr.Get(key(7)); v != 2 {
		t.Fatalf("Get = %d, want 2", v)
	}
}

func TestDeleteAll(t *testing.T) {
	for _, order := range []int{4, 5, 8, 64} {
		t.Run(fmt.Sprintf("order=%d", order), func(t *testing.T) {
			tr := New(order)
			const n = 500
			for i := 0; i < n; i++ {
				tr.Set(key(i), int64(i))
			}
			// Delete in a scrambled order.
			perm := rand.New(rand.NewSource(42)).Perm(n)
			for j, i := range perm {
				if !tr.Delete(key(i)) {
					t.Fatalf("Delete(%d) = false", i)
				}
				if tr.Delete(key(i)) {
					t.Fatalf("second Delete(%d) = true", i)
				}
				if tr.Len() != n-j-1 {
					t.Fatalf("Len() = %d after %d deletes", tr.Len(), j+1)
				}
				if err := tr.check(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestScanRange(t *testing.T) {
	tr := New(6)
	for i := 0; i < 100; i += 2 { // even keys only
		tr.Set(key(i), int64(i))
	}
	// Scan [10, 20) should see 10,12,...,18.
	var got []int64
	for it := tr.Scan(key(10), key(20)); it.Valid(); it.Next() {
		got = append(got, it.Value())
	}
	want := []int64{10, 12, 14, 16, 18}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Scan starting between keys lands on the next key.
	it := tr.Scan(key(11), nil)
	if !it.Valid() || it.Value() != 12 {
		t.Fatalf("Scan(11) starts at %v, want 12", it.Value())
	}
}

func TestMinMax(t *testing.T) {
	tr := New(4)
	for _, i := range []int{5, 3, 9, 1, 7} {
		tr.Set(key(i), int64(i))
	}
	if !bytes.Equal(tr.Min(), key(1)) {
		t.Fatalf("Min = %q", tr.Min())
	}
	if !bytes.Equal(tr.Max(), key(9)) {
		t.Fatalf("Max = %q", tr.Max())
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New(4)
	for i := 0; i < 50; i++ {
		tr.Set(key(i), int64(i))
	}
	seen := 0
	tr.Ascend(func(k []byte, v int64) bool {
		seen++
		return seen < 10
	})
	if seen != 10 {
		t.Fatalf("Ascend visited %d, want 10", seen)
	}
}

// TestAgainstSortedMap drives the tree and a reference map with a random op
// sequence and checks full equivalence after every operation batch.
func TestAgainstSortedMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New(5)
	ref := map[string]int64{}
	for step := 0; step < 5000; step++ {
		k := key(rng.Intn(400))
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Int63()
			tr.Set(k, v)
			ref[string(k)] = v
		case 2:
			delTree := tr.Delete(k)
			_, inRef := ref[string(k)]
			if delTree != inRef {
				t.Fatalf("step %d: Delete(%q) = %v, ref has %v", step, k, delTree, inRef)
			}
			delete(ref, string(k))
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len() = %d, ref %d", tr.Len(), len(ref))
	}
	// Ordered walk must match sorted reference keys.
	refKeys := make([]string, 0, len(ref))
	for k := range ref {
		refKeys = append(refKeys, k)
	}
	sort.Strings(refKeys)
	i := 0
	tr.Ascend(func(k []byte, v int64) bool {
		if string(k) != refKeys[i] {
			t.Fatalf("walk[%d] = %q, want %q", i, k, refKeys[i])
		}
		if v != ref[refKeys[i]] {
			t.Fatalf("walk[%d] value = %d, want %d", i, v, ref[refKeys[i]])
		}
		i++
		return true
	})
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEquivalence is a property test: for any key multiset, Get after a
// sequence of Sets returns the last written value.
func TestQuickEquivalence(t *testing.T) {
	f := func(keys []uint16, vals []int64) bool {
		tr := New(4)
		ref := map[string]int64{}
		for i, k := range keys {
			var v int64
			if i < len(vals) {
				v = vals[i]
			}
			kb := key(int(k))
			tr.Set(kb, v)
			ref[string(kb)] = v
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get([]byte(k))
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeleteSubset: deleting any subset leaves exactly the complement.
func TestQuickDeleteSubset(t *testing.T) {
	f := func(keys []uint8, delMask []bool) bool {
		tr := New(4)
		present := map[string]bool{}
		for _, k := range keys {
			kb := key(int(k))
			tr.Set(kb, int64(k))
			present[string(kb)] = true
		}
		for i, k := range keys {
			if i < len(delMask) && delMask[i] {
				kb := key(int(k))
				tr.Delete(kb)
				delete(present, string(kb))
			}
		}
		if tr.Len() != len(present) {
			return false
		}
		for k := range present {
			if _, ok := tr.Get([]byte(k)); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyOwnership(t *testing.T) {
	tr := New(4)
	k := []byte("mutate-me")
	tr.Set(k, 1)
	k[0] = 'X' // caller mutates its buffer; tree must be unaffected
	if _, ok := tr.Get([]byte("mutate-me")); !ok {
		t.Fatal("tree key was aliased to caller buffer")
	}
}

func BenchmarkTreeLookup(b *testing.B) {
	tr := New(DefaultOrder)
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Set(key(i), int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(key(i % n))
	}
}

func BenchmarkTreeInsert(b *testing.B) {
	tr := New(DefaultOrder)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Set(key(i), int64(i))
	}
}
