// Package templateinv implements the template-based query-result caching
// baseline CacheGenie is contrasted with (GlobeCBC, paper §2 and Table 1):
// SELECT results are cached under their exact query text, and a write
// invalidates every cached result whose query *template* conflicts with the
// update — i.e. cached entries for user 42 AND user 43 both die when either
// is written, because they share a template. CacheGenie's trigger-based
// scheme invalidates only the affected keys; the ablation benchmark
// measures the hit-ratio difference.
//
// Conn wraps any database connection (it satisfies orm.Conn), so the whole
// social application runs unmodified on this baseline.
package templateinv

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cachegenie/internal/kvcache"
	"cachegenie/internal/sqldb"
	"cachegenie/internal/sqlparse"
)

// Conn is a caching database connection with template-based invalidation.
type Conn struct {
	inner interface {
		Exec(sql string, args ...sqldb.Value) (sqldb.Result, error)
		Query(sql string, args ...sqldb.Value) (*sqldb.ResultSet, error)
	}
	cache kvcache.Cache
	ttl   time.Duration

	mu sync.Mutex
	// keysByTemplate tracks which exact-query keys exist per template, so a
	// conflicting write can invalidate them all.
	keysByTemplate map[string]map[string]struct{}
	// templatesByTable maps a table name to the query templates that read
	// it (conflict detection is by table overlap, the conservative variant
	// of template matching).
	templatesByTable map[string]map[string]struct{}

	hits           atomic.Int64
	misses         atomic.Int64
	invalidations  atomic.Int64 // keys invalidated
	templateWipes  atomic.Int64 // templates wiped
	uncacheable    atomic.Int64
	parseFailures  atomic.Int64
	writesObserved atomic.Int64
}

// Stats is a snapshot of baseline counters.
type Stats struct {
	Hits          int64
	Misses        int64
	Invalidations int64
	TemplateWipes int64
}

// New wraps inner with a template-invalidation cache. ttl of 0 means no
// expiry.
func New(inner interface {
	Exec(sql string, args ...sqldb.Value) (sqldb.Result, error)
	Query(sql string, args ...sqldb.Value) (*sqldb.ResultSet, error)
}, cache kvcache.Cache, ttl time.Duration) *Conn {
	return &Conn{
		inner:            inner,
		cache:            cache,
		ttl:              ttl,
		keysByTemplate:   make(map[string]map[string]struct{}),
		templatesByTable: make(map[string]map[string]struct{}),
	}
}

// Stats returns the counters.
func (c *Conn) Stats() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
		TemplateWipes: c.templateWipes.Load(),
	}
}

// queryKey renders the exact query (template + argument values) as a cache
// key.
func queryKey(template string, args []sqldb.Value) string {
	var sb strings.Builder
	sb.WriteString("tq:")
	sb.WriteString(template)
	for _, a := range args {
		sb.WriteString("|")
		sb.WriteString(a.String())
	}
	return sb.String()
}

// selectTables lists the tables a parsed SELECT reads.
func selectTables(sel *sqlparse.Select) []string {
	out := []string{sel.From}
	for _, j := range sel.Joins {
		out = append(out, j.Table)
	}
	return out
}

// Query implements the read path: exact-match result caching.
func (c *Conn) Query(sql string, args ...sqldb.Value) (*sqldb.ResultSet, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		c.parseFailures.Add(1)
		return c.inner.Query(sql, args...)
	}
	sel, ok := st.(*sqlparse.Select)
	if !ok {
		c.uncacheable.Add(1)
		return c.inner.Query(sql, args...)
	}
	template := sqlparse.Template(sel)
	key := queryKey(template, args)
	if raw, found := c.cache.Get(key); found {
		rs, err := decodeResultSet(raw)
		if err == nil {
			c.hits.Add(1)
			return rs, nil
		}
		c.cache.Delete(key)
	}
	c.misses.Add(1)
	rs, err := c.inner.Query(sql, args...)
	if err != nil {
		return nil, err
	}
	c.cache.Set(key, encodeResultSet(rs), c.ttl)
	c.mu.Lock()
	keys, ok := c.keysByTemplate[template]
	if !ok {
		keys = make(map[string]struct{})
		c.keysByTemplate[template] = keys
		for _, table := range selectTables(sel) {
			byTable, ok := c.templatesByTable[table]
			if !ok {
				byTable = make(map[string]struct{})
				c.templatesByTable[table] = byTable
			}
			byTable[template] = struct{}{}
		}
	}
	keys[key] = struct{}{}
	c.mu.Unlock()
	return rs, nil
}

// Exec implements the write path: run the statement, then invalidate every
// cached result of every query template that conflicts (reads a table this
// statement writes).
func (c *Conn) Exec(sql string, args ...sqldb.Value) (sqldb.Result, error) {
	res, err := c.inner.Exec(sql, args...)
	if err != nil {
		return res, err
	}
	st, perr := sqlparse.Parse(sql)
	if perr != nil {
		return res, nil
	}
	var table string
	switch w := st.(type) {
	case *sqlparse.Insert:
		table = w.Table
	case *sqlparse.Update:
		table = w.Table
	case *sqlparse.Delete:
		table = w.Table
	default:
		return res, nil
	}
	c.writesObserved.Add(1)
	c.mu.Lock()
	var doomedKeys []string
	for template := range c.templatesByTable[table] {
		keys := c.keysByTemplate[template]
		if len(keys) == 0 {
			continue
		}
		c.templateWipes.Add(1)
		for k := range keys {
			doomedKeys = append(doomedKeys, k)
		}
		delete(c.keysByTemplate, template)
	}
	// Templates stay registered under their tables so repopulated keys are
	// tracked again (keysByTemplate entry recreated on next Query).
	c.mu.Unlock()
	for _, k := range doomedKeys {
		c.cache.Delete(k)
		c.invalidations.Add(1)
	}
	return res, nil
}

// encodeResultSet serializes a result set for the cache.
func encodeResultSet(rs *sqldb.ResultSet) []byte {
	var out []byte
	var tmp [binary.MaxVarintLen64]byte
	put := func(n uint64) {
		l := binary.PutUvarint(tmp[:], n)
		out = append(out, tmp[:l]...)
	}
	put(uint64(len(rs.Columns)))
	for _, col := range rs.Columns {
		put(uint64(len(col)))
		out = append(out, col...)
	}
	put(uint64(len(rs.Rows)))
	for _, r := range rs.Rows {
		enc := sqldb.EncodeRow(nil, r)
		put(uint64(len(enc)))
		out = append(out, enc...)
	}
	return out
}

// decodeResultSet parses an encodeResultSet payload.
func decodeResultSet(b []byte) (*sqldb.ResultSet, error) {
	take := func() (uint64, error) {
		n, l := binary.Uvarint(b)
		if l <= 0 {
			return 0, fmt.Errorf("templateinv: truncated payload")
		}
		b = b[l:]
		return n, nil
	}
	rs := &sqldb.ResultSet{}
	ncols, err := take()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < ncols; i++ {
		l, err := take()
		if err != nil {
			return nil, err
		}
		if uint64(len(b)) < l {
			return nil, fmt.Errorf("templateinv: truncated column name")
		}
		rs.Columns = append(rs.Columns, string(b[:l]))
		b = b[l:]
	}
	nrows, err := take()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nrows; i++ {
		l, err := take()
		if err != nil {
			return nil, err
		}
		if uint64(len(b)) < l {
			return nil, fmt.Errorf("templateinv: truncated row")
		}
		row, err := sqldb.DecodeRow(b[:l])
		if err != nil {
			return nil, err
		}
		rs.Rows = append(rs.Rows, row)
		b = b[l:]
	}
	return rs, nil
}
