package templateinv

import (
	"testing"

	"cachegenie/internal/kvcache"
	"cachegenie/internal/sqldb"
)

func newConn(t *testing.T) (*Conn, *sqldb.DB, *kvcache.Store) {
	t.Helper()
	db := sqldb.MustOpen(sqldb.Config{})
	if _, err := db.Exec("CREATE TABLE profiles (user_id INT NOT NULL, bio TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE INDEX idx_p ON profiles (user_id)"); err != nil {
		t.Fatal(err)
	}
	cache := kvcache.New(0)
	return New(db, cache, 0), db, cache
}

func TestQueryCachesExactMatches(t *testing.T) {
	c, db, _ := newConn(t)
	_, _ = db.Exec("INSERT INTO profiles (user_id, bio) VALUES (42, 'a')")
	sel := "SELECT * FROM profiles WHERE user_id = $1"
	before := db.Stats().Selects
	for i := 0; i < 3; i++ {
		rs, err := c.Query(sel, sqldb.I64(42))
		if err != nil || len(rs.Rows) != 1 || rs.Rows[0][2].S != "a" {
			t.Fatalf("i=%d rs=%+v err=%v", i, rs, err)
		}
	}
	if got := db.Stats().Selects - before; got != 1 {
		t.Fatalf("SELECTs = %d, want 1", got)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDifferentArgsAreDifferentKeys(t *testing.T) {
	c, db, _ := newConn(t)
	_, _ = db.Exec("INSERT INTO profiles (user_id, bio) VALUES (1, 'a')")
	_, _ = db.Exec("INSERT INTO profiles (user_id, bio) VALUES (2, 'b')")
	sel := "SELECT bio FROM profiles WHERE user_id = $1"
	r1, _ := c.Query(sel, sqldb.I64(1))
	r2, _ := c.Query(sel, sqldb.I64(2))
	if r1.Rows[0][0].S != "a" || r2.Rows[0][0].S != "b" {
		t.Fatalf("r1=%v r2=%v", r1.Rows, r2.Rows)
	}
}

// TestTemplateWideInvalidation is the baseline's defining (bad) behaviour:
// updating user 1 invalidates the cached entries of BOTH user 1 and user 2,
// because they share a query template (paper §2: "all cached results
// belonging to the corresponding query template are invalidated").
func TestTemplateWideInvalidation(t *testing.T) {
	c, _, _ := newConn(t)
	_, _ = c.Exec("INSERT INTO profiles (user_id, bio) VALUES (1, 'a')")
	_, _ = c.Exec("INSERT INTO profiles (user_id, bio) VALUES (2, 'b')")
	sel := "SELECT bio FROM profiles WHERE user_id = $1"
	_, _ = c.Query(sel, sqldb.I64(1))
	_, _ = c.Query(sel, sqldb.I64(2))

	missesBefore := c.Stats().Misses
	if _, err := c.Exec("UPDATE profiles SET bio = 'a2' WHERE user_id = 1"); err != nil {
		t.Fatal(err)
	}
	// Both entries must be gone: two fresh misses.
	r1, _ := c.Query(sel, sqldb.I64(1))
	r2, _ := c.Query(sel, sqldb.I64(2))
	if r1.Rows[0][0].S != "a2" || r2.Rows[0][0].S != "b" {
		t.Fatalf("r1=%v r2=%v", r1.Rows, r2.Rows)
	}
	if got := c.Stats().Misses - missesBefore; got != 2 {
		t.Fatalf("misses after invalidation = %d, want 2 (template-wide wipe)", got)
	}
	if c.Stats().Invalidations < 2 {
		t.Fatalf("invalidations = %d", c.Stats().Invalidations)
	}
}

func TestNeverStaleThroughBaseline(t *testing.T) {
	c, _, _ := newConn(t)
	sel := "SELECT bio FROM profiles WHERE user_id = $1"
	_, _ = c.Exec("INSERT INTO profiles (user_id, bio) VALUES (7, 'v1')")
	r, _ := c.Query(sel, sqldb.I64(7))
	if r.Rows[0][0].S != "v1" {
		t.Fatal("initial read wrong")
	}
	for i, update := range []string{"v2", "v3", "v4"} {
		if _, err := c.Exec("UPDATE profiles SET bio = $1 WHERE user_id = 7", sqldb.Str(update)); err != nil {
			t.Fatal(err)
		}
		r, err := c.Query(sel, sqldb.I64(7))
		if err != nil || r.Rows[0][0].S != update {
			t.Fatalf("round %d: got %v, want %s", i, r.Rows, update)
		}
	}
}

func TestUnparsableAndNonSelectPassThrough(t *testing.T) {
	c, db, _ := newConn(t)
	_, _ = db.Exec("INSERT INTO profiles (user_id, bio) VALUES (1, 'a')")
	// COUNT queries cache too (they are SELECTs).
	rs, err := c.Query("SELECT COUNT(*) FROM profiles WHERE user_id = 1")
	if err != nil || rs.Rows[0][0].I != 1 {
		t.Fatalf("count = %+v err=%v", rs, err)
	}
	// Exec of DDL passes through without panicking the invalidator.
	if _, err := c.Exec("CREATE TABLE extra (x INT)"); err != nil {
		t.Fatal(err)
	}
}

func TestJoinQueriesInvalidatedByEitherTable(t *testing.T) {
	c, db, _ := newConn(t)
	_, _ = db.Exec("CREATE TABLE friends (from_user_id INT, to_user_id INT)")
	_, _ = db.Exec("INSERT INTO friends (from_user_id, to_user_id) VALUES (1, 2)")
	_, _ = db.Exec("INSERT INTO profiles (user_id, bio) VALUES (2, 'friend')")
	sel := "SELECT profiles.bio FROM friends JOIN profiles ON profiles.user_id = friends.to_user_id WHERE friends.from_user_id = $1"
	r, err := c.Query(sel, sqldb.I64(1))
	if err != nil || len(r.Rows) != 1 {
		t.Fatalf("join query: %+v err=%v", r, err)
	}
	// A write to either underlying table invalidates the join result.
	missesBefore := c.Stats().Misses
	_, _ = c.Exec("UPDATE profiles SET bio = 'renamed' WHERE user_id = 2")
	r, _ = c.Query(sel, sqldb.I64(1))
	if r.Rows[0][0].S != "renamed" {
		t.Fatalf("stale join result: %v", r.Rows)
	}
	if c.Stats().Misses == missesBefore {
		t.Fatal("join result not invalidated by target-table write")
	}
}

func TestResultSetCodec(t *testing.T) {
	rs := &sqldb.ResultSet{
		Columns: []string{"id", "bio"},
		Rows: []sqldb.Row{
			{sqldb.I64(1), sqldb.Str("hello")},
			{sqldb.I64(2), sqldb.NullOf(sqldb.TypeText)},
		},
	}
	dec, err := decodeResultSet(encodeResultSet(rs))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Columns) != 2 || dec.Columns[1] != "bio" {
		t.Fatalf("columns = %v", dec.Columns)
	}
	if len(dec.Rows) != 2 || dec.Rows[0][1].S != "hello" || !dec.Rows[1][1].Null {
		t.Fatalf("rows = %+v", dec.Rows)
	}
	if _, err := decodeResultSet([]byte{0xff}); err == nil {
		t.Fatal("garbage decoded")
	}
}
