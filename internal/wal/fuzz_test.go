package wal

import (
	"bytes"
	"testing"
)

// FuzzWALRecordDecode shakes the record decoder with arbitrary bytes: it
// must never panic, never over-read, and must round-trip exactly what
// AppendRecord produced when the input happens to be a valid encoding.
func FuzzWALRecordDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecord(nil, Record{Type: TypeBegin, Txn: 1}))
	f.Add(AppendRecord(nil, Record{Type: TypeCommit, Txn: 1 << 40}))
	f.Add(AppendRecord(nil, Record{Type: TypeClient, Txn: 42, Payload: []byte("insert items 7")}))
	multi := AppendRecord(nil, Record{Type: TypeBegin, Txn: 3})
	multi = AppendRecord(multi, Record{Type: TypeClient + 1, Txn: 3, Payload: bytes.Repeat([]byte{0}, 300)})
	f.Add(AppendRecord(multi, Record{Type: TypeCommit, Txn: 3}))
	torn := AppendRecord(nil, Record{Type: TypeClient, Txn: 9, Payload: []byte("torn")})
	f.Add(torn[:len(torn)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v with consumed=%d, want 0", err, n)
			}
			return
		}
		if n < headerSize || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		if len(rec.Payload) != n-headerSize {
			t.Fatalf("payload %d bytes, consumed %d", len(rec.Payload), n)
		}
		// Re-encoding what decoded must reproduce the consumed bytes.
		re := AppendRecord(nil, rec)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, data[:n])
		}
	})
}
