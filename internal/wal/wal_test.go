package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func payloadRec(t Type, p string) Record { return Record{Type: t, Payload: []byte(p)} }

func commitN(t *testing.T, w *Writer, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		err := w.Commit(int64(i+1), []Record{payloadRec(TypeClient, fmt.Sprintf("op-%d", i+1))})
		if err != nil {
			t.Fatalf("commit %d: %v", i+1, err)
		}
	}
}

func replayTxns(t *testing.T, dir string) (map[int64]string, ReplayStats) {
	t.Helper()
	got := map[int64]string{}
	stats, err := ReplayCommitted(dir, 0, false, func(txn int64, recs []Record) error {
		var b bytes.Buffer
		for _, r := range recs {
			b.Write(r.Payload)
		}
		got[txn] = b.String()
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, stats
}

func TestRecordRoundTrip(t *testing.T) {
	var buf []byte
	recs := []Record{
		{Type: TypeBegin, Txn: 7},
		{Type: TypeClient, Txn: 7, Payload: []byte("hello")},
		{Type: TypeClient + 3, Txn: 7, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
		{Type: TypeCommit, Txn: 7},
	}
	for _, r := range recs {
		buf = AppendRecord(buf, r)
	}
	off := 0
	for i, want := range recs {
		got, n, err := DecodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Type != want.Type || got.Txn != want.Txn || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	buf := AppendRecord(nil, Record{Type: TypeClient, Txn: 1, Payload: []byte("payload")})
	for i := range buf {
		mutated := append([]byte(nil), buf...)
		mutated[i] ^= 0xFF
		if _, _, err := DecodeRecord(mutated); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
	for cut := 1; cut < len(buf); cut++ {
		if _, _, err := DecodeRecord(buf[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", cut)
		}
	}
}

func TestWriterReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir}, 0)
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, w, 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, stats := replayTxns(t, dir)
	if stats.Txns != 10 || stats.TornTail {
		t.Fatalf("stats = %+v, want 10 txns, no tear", stats)
	}
	for i := 1; i <= 10; i++ {
		if got[int64(i)] != fmt.Sprintf("op-%d", i) {
			t.Fatalf("txn %d payload = %q", i, got[int64(i)])
		}
	}
}

func TestTornTailStopsAtPrefix(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir}, 0)
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, w, 5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, SegmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-way through the last transaction's records.
	if err := os.WriteFile(seg, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	got, stats := replayTxns(t, dir)
	if !stats.TornTail {
		t.Fatalf("stats = %+v, want torn tail", stats)
	}
	if len(got) != 4 {
		t.Fatalf("replayed %d txns after tear, want exact prefix 4", len(got))
	}
}

func TestRepairTruncatesTearAndDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force one txn per segment.
	w, err := NewWriter(Config{Dir: dir, SegmentBytes: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, w, 3)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("segments = %v, err %v, want >= 3", segs, err)
	}
	// Corrupt the middle segment: everything after it must be dropped.
	mid := segs[1]
	data, _ := os.ReadFile(mid.Path)
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(mid.Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var replayed int
	stats, err := ReplayCommitted(dir, 0, true, func(int64, []Record) error {
		replayed++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.TornTail || replayed != 1 {
		t.Fatalf("stats=%+v replayed=%d, want torn tail and exact prefix 1", stats, replayed)
	}
	after, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range after {
		if s.Seq > mid.Seq {
			t.Fatalf("segment %d survived repair", s.Seq)
		}
	}
	// A second replay over the repaired log is clean.
	_, stats2 := replayTxns(t, dir)
	if stats2.TornTail || stats2.Txns != 1 {
		t.Fatalf("post-repair stats = %+v, want clean 1-txn prefix", stats2)
	}
}

func TestUncommittedSuffixDiscarded(t *testing.T) {
	dir := t.TempDir()
	buf := AppendRecord(nil, Record{Type: TypeBegin, Txn: 1})
	buf = AppendRecord(buf, Record{Type: TypeClient, Txn: 1, Payload: []byte("committed")})
	buf = AppendRecord(buf, Record{Type: TypeCommit, Txn: 1})
	buf = AppendRecord(buf, Record{Type: TypeBegin, Txn: 2})
	buf = AppendRecord(buf, Record{Type: TypeClient, Txn: 2, Payload: []byte("doomed")})
	// No commit for txn 2, no physical tear.
	if err := os.WriteFile(filepath.Join(dir, SegmentName(1)), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	got, stats := replayTxns(t, dir)
	if stats.TornTail {
		t.Fatalf("clean log misclassified as torn: %+v", stats)
	}
	if stats.Uncommitted != 1 || len(got) != 1 || got[1] == "" {
		t.Fatalf("got=%v stats=%+v, want txn 1 only with 1 uncommitted discard", got, stats)
	}
}

func TestSegmentRotationAndWatermark(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir, SegmentBytes: 128}, 0)
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, w, 20)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	if w.Seq() != segs[len(segs)-1].Seq {
		t.Fatalf("Seq() = %d, last segment = %d", w.Seq(), segs[len(segs)-1].Seq)
	}
	// Replaying after the watermark of the first segment skips its txns.
	var skipped, all int
	if _, err := ReplayCommitted(dir, segs[0].Seq, false, func(int64, []Record) error { skipped++; return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayCommitted(dir, 0, false, func(int64, []Record) error { all++; return nil }); err != nil {
		t.Fatal(err)
	}
	if all != 20 || skipped >= all {
		t.Fatalf("all=%d afterFirst=%d, want watermark to skip txns", all, skipped)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	var m Metrics
	w, err := NewWriter(Config{Dir: dir, GroupMax: 64, Metrics: &m}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers*per)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				txn := int64(g*per + i + 1)
				errs <- w.Commit(txn, []Record{payloadRec(TypeClient, fmt.Sprintf("w%d-%d", g, i))})
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := m.Commits.Load(); got != workers*per {
		t.Fatalf("commit counter = %d, want %d", got, workers*per)
	}
	if m.GroupTxns.Count() == 0 || m.GroupTxns.Count() > workers*per {
		t.Fatalf("group histogram count = %d, want (0, %d]", m.GroupTxns.Count(), workers*per)
	}
	got, stats := replayTxns(t, dir)
	if len(got) != workers*per || stats.TornTail {
		t.Fatalf("replayed %d txns (stats %+v), want %d", len(got), stats, workers*per)
	}
}

func TestCommitAfterCloseAndAbort(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir}, 0)
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, w, 1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(99, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("commit after close = %v, want ErrClosed", err)
	}
	if err := w.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close = %v, want ErrClosed", err)
	}

	w2, err := NewWriter(Config{Dir: t.TempDir()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	w2.Abort()
	if err := w2.Commit(1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("commit after abort = %v, want ErrClosed", err)
	}
}
