package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by Commit after the writer has been closed or
// aborted.
var ErrClosed = errors.New("wal: writer closed")

// Config configures a Writer.
type Config struct {
	// Dir is the segment directory (created if absent).
	Dir string
	// SegmentBytes rotates to a new segment once the current one reaches
	// this size (default 64 MiB).
	SegmentBytes int64
	// GroupMax caps how many commits one fsync may absorb (default 128).
	GroupMax int
	// NoSync skips fsync (tests and deliberate durability-off runs).
	NoSync bool
	// Metrics, when non-nil, receives fsync latency, group size, and
	// byte/commit counts.
	Metrics *Metrics
}

type commitReq struct {
	buf  []byte
	done chan error
}

// Writer is the group-commit appender. Concurrent Commit calls funnel into
// a single goroutine that batches their records into the current segment
// and issues one fsync per batch; every committer in the batch shares that
// fsync's durability.
type Writer struct {
	cfg   Config
	reqCh chan *commitReq

	mu      sync.Mutex // guards closed, pairs sender entry with shutdown
	closed  bool
	senders sync.WaitGroup
	loop    sync.WaitGroup
	aborted atomic.Bool

	// Loop-goroutine state; read by others only after Close/Abort.
	f    *os.File
	size int64
	seq  atomic.Uint64
}

// NewWriter opens the writer appending to a fresh segment numbered
// startSeq. Recovery passes the sequence after the last segment on disk so
// a reborn writer never appends into a segment replay has already
// consumed.
func NewWriter(cfg Config, startSeq uint64) (*Writer, error) {
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 64 << 20
	}
	if cfg.GroupMax <= 0 {
		cfg.GroupMax = 128
	}
	if startSeq == 0 {
		startSeq = 1
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	w := &Writer{
		cfg:   cfg,
		reqCh: make(chan *commitReq, cfg.GroupMax),
	}
	if err := w.openSegment(startSeq); err != nil {
		return nil, err
	}
	w.loop.Add(1)
	go w.run()
	return w, nil
}

func (w *Writer) openSegment(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(w.cfg.Dir, SegmentName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if w.f != nil {
		_ = w.f.Close()
	}
	w.f = f
	w.size = 0
	w.seq.Store(seq)
	if m := w.cfg.Metrics; m != nil {
		m.Segments.Inc()
	}
	return nil
}

// Seq returns the current (highest) segment sequence number. Stable only
// after Close/Abort; the clean-shutdown snapshot uses it as its watermark.
func (w *Writer) Seq() uint64 { return w.seq.Load() }

// Commit appends txn's payload records — wrapped in Begin/Commit framing —
// and blocks until they are durable (fsynced, possibly as part of a larger
// group). Safe for concurrent use.
func (w *Writer) Commit(txn int64, recs []Record) error {
	buf := AppendRecord(nil, Record{Type: TypeBegin, Txn: txn})
	for _, r := range recs {
		r.Txn = txn
		buf = AppendRecord(buf, r)
	}
	buf = AppendRecord(buf, Record{Type: TypeCommit, Txn: txn})

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	w.senders.Add(1)
	w.mu.Unlock()
	req := &commitReq{buf: buf, done: make(chan error, 1)}
	w.reqCh <- req
	w.senders.Done()
	return <-req.done
}

// run is the group-commit loop: take one request, drain whatever else is
// already queued (up to GroupMax), write the batch, fsync once, answer
// everyone.
func (w *Writer) run() {
	defer w.loop.Done()
	for req := range w.reqCh {
		batch := []*commitReq{req}
		for len(batch) < w.cfg.GroupMax {
			var more *commitReq
			select {
			case more = <-w.reqCh:
			default:
			}
			if more == nil {
				break
			}
			batch = append(batch, more)
		}
		w.flush(batch)
	}
}

// flush writes and fsyncs one batch, then answers its committers.
func (w *Writer) flush(batch []*commitReq) {
	if w.aborted.Load() {
		for _, r := range batch {
			r.done <- ErrClosed
		}
		return
	}
	if w.size >= w.cfg.SegmentBytes {
		if err := w.openSegment(w.seq.Load() + 1); err != nil {
			for _, r := range batch {
				r.done <- err
			}
			return
		}
	}
	var err error
	var wrote int64
	for _, r := range batch {
		if err == nil {
			_, werr := w.f.Write(r.buf)
			if werr != nil {
				err = fmt.Errorf("wal: append: %w", werr)
			} else {
				wrote += int64(len(r.buf))
			}
		}
	}
	w.size += wrote
	if err == nil && !w.cfg.NoSync {
		err = w.fsync()
	}
	if m := w.cfg.Metrics; m != nil {
		m.GroupTxns.Observe(int64(len(batch)))
		if err == nil {
			m.Commits.Add(int64(len(batch)))
			m.Bytes.Add(wrote)
		}
	}
	for _, r := range batch {
		r.done <- err
	}
}

func (w *Writer) fsync() error {
	m := w.cfg.Metrics
	if m == nil {
		return w.f.Sync()
	}
	start := nowFunc()
	err := w.f.Sync()
	m.FsyncLatency.ObserveSince(start)
	return err
}

// shutdown stops accepting commits and waits for the loop to drain. Every
// request enqueued before shutdown is answered: written and fsynced on the
// graceful path, ErrClosed after Abort.
func (w *Writer) shutdown() bool {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return false
	}
	w.closed = true
	w.mu.Unlock()
	w.senders.Wait()
	close(w.reqCh)
	w.loop.Wait()
	return true
}

// Close drains pending commits, fsyncs the tail, and releases the segment
// file. Commit calls racing with Close either complete durably or return
// ErrClosed.
func (w *Writer) Close() error {
	if !w.shutdown() {
		return ErrClosed
	}
	var err error
	if !w.cfg.NoSync {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abort is the crash path: stop immediately without draining or fsyncing.
// Pending and future commits fail with ErrClosed — their transactions were
// never durable, exactly as if the process had been SIGKILLed.
func (w *Writer) Abort() {
	w.aborted.Store(true)
	if !w.shutdown() {
		return
	}
	_ = w.f.Close()
}
