// Package wal implements a segmented, CRC-checked, append-only redo log
// with group commit. The engine (package sqldb) appends one record batch
// per transaction — framed by Begin/Commit marker records the writer adds —
// and a single writer goroutine coalesces concurrent commits into one
// fsync, amortizing durability cost across committers (the classic group
// commit optimization).
//
// Record layout (little-endian):
//
//	crc    uint32  — IEEE CRC32 over everything after the length field
//	length uint32  — payload length in bytes
//	type   uint8
//	txn    int64
//	payload
//
// Recovery streams segments in order and replays only transactions whose
// Commit record is present and intact, stopping cleanly at the first torn
// or corrupt record: a crash mid-append can never surface a partial
// transaction.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Type tags a record. Values below TypeClient are reserved for the log's
// own transaction framing; the embedding engine defines its payload record
// types from TypeClient up and the log treats their payloads as opaque.
type Type uint8

// Reserved framing types.
const (
	TypeBegin  Type = 1
	TypeCommit Type = 2
	// TypeClient is the first type value available to the embedding engine.
	TypeClient Type = 16
)

// Record is one log record.
type Record struct {
	Type    Type
	Txn     int64
	Payload []byte
}

const (
	// headerSize is crc(4) + length(4) + type(1) + txn(8).
	headerSize = 17
	// MaxRecordBytes bounds a single record's payload; a length field
	// above it is treated as corruption, not an allocation request.
	MaxRecordBytes = 16 << 20
)

// Decode errors. Both mean "stop replaying here"; they are distinguished so
// tests can assert the torn-tail classification.
var (
	// ErrShortRecord reports a stream ending mid-record (torn tail).
	ErrShortRecord = errors.New("wal: short record")
	// ErrCorruptRecord reports a CRC mismatch or an insane length field.
	ErrCorruptRecord = errors.New("wal: corrupt record")
)

// AppendRecord appends r's encoding to dst and returns the extended slice.
func AppendRecord(dst []byte, r Record) []byte {
	start := len(dst)
	var h [headerSize]byte
	binary.LittleEndian.PutUint32(h[4:8], uint32(len(r.Payload)))
	h[8] = byte(r.Type)
	binary.LittleEndian.PutUint64(h[9:17], uint64(r.Txn))
	dst = append(dst, h[:]...)
	dst = append(dst, r.Payload...)
	crc := crc32.ChecksumIEEE(dst[start+8:])
	binary.LittleEndian.PutUint32(dst[start:start+4], crc)
	return dst
}

// DecodeRecord parses one record from the front of b, returning the record
// and the number of bytes it occupied. ErrShortRecord means b ends
// mid-record; ErrCorruptRecord means the bytes present fail validation.
// The returned payload aliases b.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < headerSize {
		return Record{}, 0, ErrShortRecord
	}
	plen := binary.LittleEndian.Uint32(b[4:8])
	if plen > MaxRecordBytes {
		return Record{}, 0, fmt.Errorf("%w: payload length %d", ErrCorruptRecord, plen)
	}
	total := headerSize + int(plen)
	if len(b) < total {
		return Record{}, 0, ErrShortRecord
	}
	if crc32.ChecksumIEEE(b[8:total]) != binary.LittleEndian.Uint32(b[0:4]) {
		return Record{}, 0, fmt.Errorf("%w: crc mismatch", ErrCorruptRecord)
	}
	return Record{
		Type:    Type(b[8]),
		Txn:     int64(binary.LittleEndian.Uint64(b[9:17])),
		Payload: b[headerSize:total],
	}, total, nil
}

// Segment is one log file.
type Segment struct {
	Seq  uint64
	Path string
}

// SegmentName renders the file name for a segment sequence number.
func SegmentName(seq uint64) string { return fmt.Sprintf("%016d.wal", seq) }

// ListSegments returns the segments in dir in ascending sequence order.
// Files that do not parse as segment names are ignored.
func ListSegments(dir string) ([]Segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []Segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var seq uint64
		if n, err := fmt.Sscanf(e.Name(), "%d.wal", &seq); n != 1 || err != nil {
			continue
		}
		segs = append(segs, Segment{Seq: seq, Path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	return segs, nil
}

// FileStats reports what ReadFile found in one record stream.
type FileStats struct {
	Records int
	Bytes   int64
	// Torn reports the stream ended mid-record or failed a CRC; the bytes
	// counted are the clean prefix before the tear.
	Torn bool
}

// ReadFile decodes the record stream in one file, calling fn per intact
// record. A torn or corrupt tail sets stats.Torn and stops the read without
// error; an fn error aborts the read and is returned.
func ReadFile(path string, fn func(Record) error) (FileStats, error) {
	var stats FileStats
	data, err := os.ReadFile(path)
	if err != nil {
		return stats, err
	}
	off := 0
	for off < len(data) {
		rec, n, err := DecodeRecord(data[off:])
		if err != nil {
			stats.Torn = true
			return stats, nil
		}
		if err := fn(rec); err != nil {
			return stats, err
		}
		off += n
		stats.Records++
		stats.Bytes = int64(off)
	}
	return stats, nil
}

// ReplayStats reports what a recovery pass found.
type ReplayStats struct {
	// Segments is the number of segment files examined (after the
	// afterSeq watermark).
	Segments int
	// LastSeq is the highest segment sequence seen on disk, including
	// segments skipped by the watermark (0 when the directory is empty).
	LastSeq uint64
	// Records counts intact records decoded; Txns counts committed
	// transactions delivered to fn.
	Records int
	Txns    int
	// Uncommitted counts transactions with records in the clean prefix
	// but no commit record — discarded, by design.
	Uncommitted int
	// MaxTxn is the highest transaction id seen in any intact record.
	MaxTxn int64
	// TornTail reports the replay stopped at a torn or corrupt record.
	TornTail bool
}

// ReplayCommitted replays every fully committed transaction in dir's
// segments, in log order, skipping segments at or below afterSeq (the
// snapshot watermark). fn receives the transaction's payload records in
// append order. Replay stops cleanly at the first torn or corrupt record;
// when repair is true the torn segment is truncated to its clean prefix and
// any later segments are removed, so subsequent appends extend a consistent
// log.
func ReplayCommitted(dir string, afterSeq uint64, repair bool, fn func(txn int64, recs []Record) error) (ReplayStats, error) {
	var stats ReplayStats
	segs, err := ListSegments(dir)
	if err != nil {
		return stats, err
	}
	pending := make(map[int64][]Record)
	for i, seg := range segs {
		if seg.Seq > stats.LastSeq {
			stats.LastSeq = seg.Seq
		}
		if seg.Seq <= afterSeq {
			continue
		}
		stats.Segments++
		fstats, err := ReadFile(seg.Path, func(rec Record) error {
			stats.Records++
			if rec.Txn > stats.MaxTxn {
				stats.MaxTxn = rec.Txn
			}
			switch rec.Type {
			case TypeBegin:
				pending[rec.Txn] = nil
			case TypeCommit:
				recs := pending[rec.Txn]
				delete(pending, rec.Txn)
				stats.Txns++
				return fn(rec.Txn, recs)
			default:
				// Payload aliases the file buffer; copy so fn-retained
				// records survive the next segment read.
				cp := Record{Type: rec.Type, Txn: rec.Txn, Payload: append([]byte(nil), rec.Payload...)}
				pending[rec.Txn] = append(pending[rec.Txn], cp)
			}
			return nil
		})
		if err != nil {
			return stats, err
		}
		if fstats.Torn {
			stats.TornTail = true
			if repair {
				if err := os.Truncate(seg.Path, fstats.Bytes); err != nil {
					return stats, fmt.Errorf("wal: truncating torn segment %s: %w", seg.Path, err)
				}
				for _, later := range segs[i+1:] {
					if err := os.Remove(later.Path); err != nil {
						return stats, fmt.Errorf("wal: removing post-tear segment %s: %w", later.Path, err)
					}
				}
			}
			break
		}
	}
	stats.Uncommitted = len(pending)
	return stats, nil
}
