package wal

import (
	"time"

	"cachegenie/internal/obs"
)

// nowFunc is indirected for tests that pin fsync timing.
var nowFunc = time.Now

// Metric names, under the repo's cachegenie_* naming rules.
const (
	metricFsyncSeconds  = "cachegenie_wal_fsync_seconds"
	metricGroupTxns     = "cachegenie_wal_group_commit_txns"
	metricCommitsTotal  = "cachegenie_wal_commits_total"
	metricBytesTotal    = "cachegenie_wal_appended_bytes_total"
	metricSegmentsTotal = "cachegenie_wal_segments_opened_total"
)

// Metrics is the writer's always-on instrumentation block. The zero value
// is usable; Register exposes it on an obs.Registry.
type Metrics struct {
	// FsyncLatency is per-group fsync latency in nanoseconds.
	FsyncLatency obs.Histogram
	// GroupTxns is the number of commits each fsync absorbed — the group
	// commit amortization factor.
	GroupTxns obs.Histogram
	// Commits counts durably committed transactions; Bytes counts log
	// bytes appended; Segments counts segment files opened.
	Commits  obs.Counter
	Bytes    obs.Counter
	Segments obs.Counter
}

// Register exposes the metrics on reg (nil-safe).
func (m *Metrics) Register(reg *obs.Registry) {
	if m == nil || reg == nil {
		return
	}
	reg.RegisterHistogram(metricFsyncSeconds, "",
		"WAL group-commit fsync latency", obs.UnitNanoseconds, &m.FsyncLatency)
	reg.RegisterHistogram(metricGroupTxns, "",
		"transactions coalesced per WAL fsync", obs.UnitNone, &m.GroupTxns)
	reg.RegisterCounter(metricCommitsTotal, "",
		"transactions durably committed to the WAL", &m.Commits)
	reg.RegisterCounter(metricBytesTotal, "",
		"bytes appended to the WAL", &m.Bytes)
	reg.RegisterCounter(metricSegmentsTotal, "",
		"WAL segment files opened", &m.Segments)
}
