package hotkey

import (
	"fmt"
	"sync"
	"testing"
)

func TestHotKeyFlagged(t *testing.T) {
	d := New(Config{Window: 1 << 20, Threshold: 64})
	hotHash := Hash("celebrity:bookmarks")
	// Background traffic: many distinct keys, each observed a few times —
	// none should cross the threshold.
	for i := 0; i < 2000; i++ {
		h := Hash(fmt.Sprintf("user:%d", i))
		for j := 0; j < 4; j++ {
			d.Observe(h)
		}
	}
	if d.Hot(hotHash) {
		t.Fatalf("key flagged hot before any traffic (estimate %d)", d.Estimate(hotHash))
	}
	var hot bool
	for i := 0; i < 200; i++ {
		hot = d.Observe(hotHash)
	}
	if !hot {
		t.Fatalf("key not flagged after 200 observations at threshold 64 (estimate %d)", d.Estimate(hotHash))
	}
	st := d.Stats()
	if st.Observed != 2000*4+200 {
		t.Fatalf("Observed = %d, want %d", st.Observed, 2000*4+200)
	}
	if st.Flagged == 0 || st.Flagged > 200 {
		t.Fatalf("Flagged = %d, want in (0, 200]", st.Flagged)
	}
}

func TestColdKeysStayCold(t *testing.T) {
	d := New(Config{Window: 1 << 20, Threshold: 256})
	// Uniform traffic over many keys: with 4096 cells and 8k distinct keys
	// observed 8 times each, no estimate should approach 256.
	flagged := 0
	for i := 0; i < 8192; i++ {
		h := Hash(fmt.Sprintf("key:%d", i))
		for j := 0; j < 8; j++ {
			if d.Observe(h) {
				flagged++
			}
		}
	}
	if flagged != 0 {
		t.Fatalf("%d uniform observations flagged hot; sketch far too collision-prone", flagged)
	}
}

func TestDecayCoolsOff(t *testing.T) {
	d := New(Config{Window: 1 << 20, Threshold: 64})
	h := Hash("flash:page")
	for i := 0; i < 256; i++ {
		d.Observe(h)
	}
	if !d.Hot(h) {
		t.Fatalf("key not hot after 256 observations (estimate %d)", d.Estimate(h))
	}
	// Three halvings: 256 -> 128 -> 64 -> 32, below threshold.
	d.Decay()
	d.Decay()
	d.Decay()
	if d.Hot(h) {
		t.Fatalf("key still hot after three decay sweeps (estimate %d)", d.Estimate(h))
	}
	if got := d.Stats().Decays; got != 3 {
		t.Fatalf("Decays = %d, want 3", got)
	}
}

func TestWindowTriggersDecay(t *testing.T) {
	d := New(Config{Window: 512, Threshold: 64})
	h := Hash("k")
	for i := 0; i < 2048; i++ {
		d.Observe(h)
	}
	if got := d.Stats().Decays; got < 3 {
		t.Fatalf("Decays = %d after 4 windows of observations, want >= 3", got)
	}
	// The key received every observation; decay must not have erased it.
	if !d.Hot(h) {
		t.Fatalf("persistently hot key lost across decays (estimate %d)", d.Estimate(h))
	}
}

// TestConcurrentObserveDecay is the -race drill: hammering Observe from
// many goroutines while another forces decay sweeps must be data-race
// free and keep the counters coherent.
func TestConcurrentObserveDecay(t *testing.T) {
	d := New(Config{Window: 1024, Threshold: 32})
	const goroutines = 8
	const perG = 4096
	stop := make(chan struct{})
	var decayer sync.WaitGroup
	decayer.Add(1)
	go func() {
		defer decayer.Done()
		for {
			select {
			case <-stop:
				return
			default:
				d.Decay()
			}
		}
	}()
	var observers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		observers.Add(1)
		go func(g int) {
			defer observers.Done()
			hot := Hash("hot-key")
			for i := 0; i < perG; i++ {
				if i%4 == 0 {
					d.Observe(hot)
				} else {
					d.Observe(Hash(fmt.Sprintf("key:%d:%d", g, i)))
				}
			}
		}(g)
	}
	observers.Wait()
	close(stop)
	decayer.Wait()
	st := d.Stats()
	if st.Observed != goroutines*perG {
		t.Fatalf("Observed = %d, want %d", st.Observed, goroutines*perG)
	}
}

func TestEstimateSaturates(t *testing.T) {
	d := New(Config{Window: 1 << 62, Threshold: 8})
	h := Hash("k")
	for i := 0; i < 100; i++ {
		d.Observe(h)
	}
	if est := d.Estimate(h); est < 100 {
		t.Fatalf("Estimate = %d, want >= 100 (count-min never undercounts)", est)
	}
}

func BenchmarkHotKeyObserve(b *testing.B) {
	d := New(Config{})
	h := Hash("celebrity:bookmarks")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(h + uint64(i&1023))
	}
}

func BenchmarkHotKeyHash(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Hash("genie:social:LookupBM:12345")
	}
}
