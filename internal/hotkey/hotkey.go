// Package hotkey detects disproportionately popular cache keys.
//
// Real social workloads are zipfian: one celebrity's bookmark list hashes
// to one shard of one node and caps the whole cluster. Before anything can
// spread or coalesce that traffic it has to be *noticed*, cheaply, on the
// read path itself — a detector that allocates or locks would cost more
// than the skew it measures.
//
// Detector is a count-min sketch with periodic decay: a small fixed grid
// of atomic counters, each observation incrementing one cell per row, the
// minimum over the rows estimating the key's count in the current window.
// Collisions only ever inflate the estimate, so the sketch can mistake a
// cold key for hot (harmless: a spread read of a cold key is just a read)
// but never lets a genuinely hot key hide. Every Window observations the
// cells are halved in place, so a key that cools off stops being flagged
// within about one window.
//
// Observe is allocation-free and lock-free; the decay sweep runs inline on
// the observation that crosses the window boundary (no background
// goroutine to own or stop) and races benignly with concurrent
// increments — a lost increment during the sweep is noise well inside the
// sketch's error bound.
package hotkey

import "sync/atomic"

const (
	rows    = 4
	cols    = 1024 // power of two so indexing is a mask, not a modulo
	colMask = cols - 1

	// cellCap saturates a cell instead of letting it wrap. With default
	// sizing a cell cannot exceed ~2 windows of increments between decays,
	// so the cap only matters for absurd Window values.
	cellCap = 1 << 30
)

// Defaults for Config's zero values.
const (
	// DefaultWindow is how many observations pass between decay sweeps.
	DefaultWindow = 8192
	// DefaultThreshold flags a key once its estimated count within the
	// current window reaches this value — 256/8192 is ~3% of all traffic
	// concentrated on one key, far above what a balanced ring sees per key
	// and far below what a zipf s=1.1 celebrity or a flash crowd produces.
	DefaultThreshold = 256
)

// Config sizes a Detector. The zero value picks the defaults.
type Config struct {
	// Window is the number of observations between decay sweeps; the
	// sketch estimates per-window counts. Default DefaultWindow.
	Window uint64
	// Threshold is the estimated per-window count at which a key is
	// flagged hot. Default DefaultThreshold.
	Threshold uint32
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.Threshold == 0 {
		c.Threshold = DefaultThreshold
	}
	return c
}

// Stats counts detector activity; all fields are cumulative.
type Stats struct {
	// Observed is the total number of observations.
	Observed int64
	// Flagged is how many observations were judged hot at observation
	// time (per-access, not per-distinct-key — a key hot for a thousand
	// reads counts a thousand times, which is exactly the volume a
	// mitigation acts on).
	Flagged int64
	// Decays is how many decay sweeps have run.
	Decays int64
}

// Detector is a sampled count-min popularity sketch with decay. The zero
// value is not usable; build one with New.
type Detector struct {
	cfg   Config
	cells [rows * cols]atomic.Uint32
	// window counts observations since the last decay sweep.
	window   atomic.Uint64
	observed atomic.Int64
	flagged  atomic.Int64
	decays   atomic.Int64
}

// New builds a Detector; zero Config fields take the defaults.
func New(cfg Config) *Detector {
	return &Detector{cfg: cfg.withDefaults()}
}

// Hash is an allocation-free FNV-1a over key with a murmur3-style
// finalizer — the same mixing the cluster ring uses for key placement, so
// callers that already routed a key can reuse one hash for both.
//
//genie:hotpath
func Hash(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// HashBytes is Hash over a byte slice — the wire server's parsed key
// fields never become strings on the hot path.
//
//genie:hotpath
func HashBytes(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Observe records one access to the key hashed to h (see Hash) and reports
// whether that key is currently flagged hot. Lock-free and allocation-free;
// safe for any number of concurrent callers.
//
//genie:hotpath
func (d *Detector) Observe(h uint64) bool {
	d.observed.Add(1)
	// Kirsch-Mitzenmacher: rows index with h1 + r*h2 instead of r
	// independent hashes; h is already finalizer-mixed so its halves are
	// independent enough.
	h2 := h>>32 | h<<32
	est := uint32(cellCap)
	for r := 0; r < rows; r++ {
		c := &d.cells[r*cols+int((h+uint64(r)*h2)&colMask)]
		v := c.Load()
		if v < cellCap {
			v = c.Add(1)
		}
		if v < est {
			est = v
		}
	}
	hot := est >= d.cfg.Threshold
	if hot {
		d.flagged.Add(1)
	}
	if d.window.Add(1) >= d.cfg.Window {
		d.maybeDecay()
	}
	return hot
}

// Estimate returns the sketch's current per-window count estimate for the
// key hashed to h, without recording an access.
func (d *Detector) Estimate(h uint64) uint32 {
	h2 := h>>32 | h<<32
	est := uint32(cellCap)
	for r := 0; r < rows; r++ {
		if v := d.cells[r*cols+int((h+uint64(r)*h2)&colMask)].Load(); v < est {
			est = v
		}
	}
	return est
}

// Hot reports whether the key hashed to h is currently flagged, without
// recording an access.
func (d *Detector) Hot(h uint64) bool { return d.Estimate(h) >= d.cfg.Threshold }

// Threshold reports the effective hot threshold.
func (d *Detector) Threshold() uint32 { return d.cfg.Threshold }

// Stats returns cumulative detector counters.
func (d *Detector) Stats() Stats {
	return Stats{
		Observed: d.observed.Load(),
		Flagged:  d.flagged.Load(),
		Decays:   d.decays.Load(),
	}
}

// Decay forces a decay sweep regardless of window position (tests; the
// normal sweep rides the observation that crosses the window boundary).
func (d *Detector) Decay() {
	d.window.Store(0)
	d.sweep()
}

// maybeDecay runs the sweep if this caller wins the window reset; the
// losers' observations simply land in the fresh window.
func (d *Detector) maybeDecay() {
	w := d.window.Load()
	if w < d.cfg.Window {
		return
	}
	if !d.window.CompareAndSwap(w, 0) {
		return
	}
	d.sweep()
}

// sweep halves every cell in place. An increment racing the sweep can be
// lost (Load/Store, not a CAS loop) — benign, the sketch overestimates by
// design and the next window absorbs the noise.
func (d *Detector) sweep() {
	d.decays.Add(1)
	for i := range d.cells {
		if v := d.cells[i].Load(); v != 0 {
			d.cells[i].Store(v / 2)
		}
	}
}
