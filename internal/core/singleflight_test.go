package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cachegenie/internal/kvcache"
	"cachegenie/internal/latency"
	"cachegenie/internal/orm"
	"cachegenie/internal/sqldb"
)

// TestFlightGroupCoalesces: while a load is in flight, every do() of the
// same key parks and shares the leader's result — exactly one load runs.
func TestFlightGroupCoalesces(t *testing.T) {
	fg := newFlightGroup()
	var loads atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _, _ = fg.do("k", func() (any, error) {
			close(started)
			<-release
			loads.Add(1)
			return "value", nil
		})
	}()
	<-started

	const waiters = 16
	var wg sync.WaitGroup
	results := make([]string, waiters)
	shareds := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := fg.do("k", func() (any, error) {
				loads.Add(1)
				return "value", nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			results[i] = v.(string)
			shareds[i] = shared
		}(i)
	}
	// Give the waiters time to park on the in-flight call, then let the
	// leader finish.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("%d loads ran, want exactly 1", n)
	}
	for i := range results {
		if results[i] != "value" || !shareds[i] {
			t.Fatalf("waiter %d: result %q shared=%v", i, results[i], shareds[i])
		}
	}
}

// TestFlightGroupSharesError: a failed load fails every parked waiter with
// the leader's error — nobody hangs, nobody re-runs the load inside the
// same flight.
func TestFlightGroupSharesError(t *testing.T) {
	fg := newFlightGroup()
	boom := errors.New("db down")
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _, _ = fg.do("k", func() (any, error) {
			close(started)
			<-release
			return nil, boom
		})
	}()
	<-started
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = fg.do("k", func() (any, error) {
				t.Error("waiter ran its own load inside the leader's flight")
				return nil, nil
			})
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != boom {
			t.Fatalf("waiter %d: err = %v, want the leader's error", i, err)
		}
	}
}

// TestFlightGroupForgetsFinishedCalls: the flight is per miss, not forever —
// a later do() of the same key runs a fresh load.
func TestFlightGroupForgetsFinishedCalls(t *testing.T) {
	fg := newFlightGroup()
	var loads int
	for i := 0; i < 3; i++ {
		v, shared, err := fg.do("k", func() (any, error) {
			loads++
			return loads, nil
		})
		if err != nil || shared || v.(int) != i+1 {
			t.Fatalf("call %d: v=%v shared=%v err=%v", i, v, shared, err)
		}
	}
}

// stampedeStack builds a stack with injected DB latency and single-flight
// enabled, so concurrent misses genuinely overlap in time.
func stampedeStack(t *testing.T) (*sqldb.DB, *orm.Registry, *Genie) {
	t.Helper()
	db := sqldb.MustOpen(sqldb.Config{Latency: latency.Model{DBRoundTrip: 20 * time.Millisecond}})
	reg := orm.NewRegistry(db)
	reg.MustRegister(&orm.ModelDef{
		Name:  "Wall",
		Table: "wall",
		Fields: []orm.FieldDef{
			{Name: "user_id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "content", Type: sqldb.TypeText},
		},
		Indexes: [][]string{{"user_id"}},
	})
	if err := reg.CreateTables(); err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{Registry: reg, DB: db, Cache: kvcache.New(0), SingleFlight: true})
	if err != nil {
		t.Fatal(err)
	}
	return db, reg, g
}

// TestSingleFlightStampede: a flash crowd stampeding one evicted page costs
// the database one SELECT, not one per request. This is the -race drill for
// the coalesced miss path too.
func TestSingleFlightStampede(t *testing.T) {
	const crowd = 32
	db, reg, g := stampedeStack(t)
	co, err := g.Cacheable(Spec{
		Name: "wall_page", Class: FeatureQuery, MainModel: "Wall",
		WhereFields: []string{"user_id"}, Strategy: UpdateInPlace,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Insert("Wall", orm.Fields{"user_id": 7, "content": "celebrity post"}); err != nil {
		t.Fatal(err)
	}
	// The insert's trigger may have populated the key; knock it out so the
	// crowd hits a cold key.
	g.Cache().Delete(co.MakeKey(sqldb.I64(7)))
	selBefore := db.Stats().Selects

	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < crowd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			rows, err := co.Rows(sqldb.I64(7))
			if err != nil {
				t.Errorf("reader %d: %v", i, err)
				return
			}
			if len(rows) != 1 || rows[0][2].S != "celebrity post" {
				t.Errorf("reader %d: rows = %v", i, rows)
			}
		}(i)
	}
	close(start)
	wg.Wait()

	if got := db.Stats().Selects - selBefore; got != 1 {
		t.Fatalf("stampede of %d cost %d SELECTs, want 1", crowd, got)
	}
	st := g.Stats()
	if st.FlightLeads != 1 || st.FlightShared != crowd-1 {
		t.Fatalf("FlightLeads = %d, FlightShared = %d, want 1 and %d", st.FlightLeads, st.FlightShared, crowd-1)
	}
	if st.Misses != crowd {
		t.Fatalf("Misses = %d, want %d (every request missed, one loaded)", st.Misses, crowd)
	}
}
