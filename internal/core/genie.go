package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cachegenie/internal/cluster"
	"cachegenie/internal/invbus"
	"cachegenie/internal/kvcache"
	"cachegenie/internal/latency"
	"cachegenie/internal/orm"
	"cachegenie/internal/sqldb"
)

// Config wires a Genie into an application stack.
type Config struct {
	// Registry is the ORM whose reads CacheGenie intercepts.
	Registry *orm.Registry
	// DB is the engine triggers are installed into. It must be the same
	// database the Registry's connection reaches.
	DB *sqldb.DB
	// Cache is the caching layer (in-process store, protocol client, or
	// cluster ring).
	Cache kvcache.Cache

	// TriggerConnectCost models opening a fresh connection from a trigger
	// to the cache, the dominant trigger overhead the paper measures
	// (§5.3: connection setup doubles INSERT latency). Charged once per
	// trigger firing unless ReuseTriggerConnections is set.
	TriggerConnectCost time.Duration
	// ReuseTriggerConnections enables the paper's proposed optimization of
	// keeping trigger->cache connections open (§5.3 future work); it
	// eliminates TriggerConnectCost.
	ReuseTriggerConnections bool
	// Sleeper implements time passage for injected costs (default real).
	Sleeper latency.Sleeper

	// AsyncInvalidation routes all trigger→cache maintenance (and read-path
	// repopulation, so per-key ordering holds between the two) through the
	// asynchronous batching invalidation bus (internal/invbus) instead of
	// one synchronous round trip per cache op. Writes stop waiting on cache
	// maintenance; in exchange the cache may lag the database by a bounded
	// staleness window of roughly BatchWindow plus queueing delay. Call
	// FlushInvalidations to drain when read-your-triggered-writes matters.
	AsyncInvalidation bool
	// BatchWindow is how long a bus worker coalesces ops before flushing
	// (0 = the bus default, 1ms). Only meaningful with AsyncInvalidation.
	BatchWindow time.Duration

	// SingleFlight coalesces concurrent cache-miss loads of the same key
	// into one database query: the first miss runs the query, every
	// concurrent miss of that key waits for it and shares the result. A
	// flash crowd stampeding one invalidated page then costs the database
	// ~1 query per hot key per miss window instead of one per request.
	// Waiters receive the leader's row slices and must treat them as
	// read-only (the same contract cache hits already carry).
	SingleFlight bool

	// DefaultTTL bounds the lifetime of all cached entries (0 = none).
	DefaultTTL time.Duration
	// Disabled creates the Genie without intercepting reads or installing
	// triggers (the NoCache baseline uses the same wiring).
	Disabled bool
}

// Stats counts Genie activity.
type Stats struct {
	Hits            int64 // reads served from cache
	Misses          int64 // reads that fell through and repopulated
	TriggerUpdates  int64 // in-place cache updates from triggers
	TriggerDeletes  int64 // invalidations from triggers
	TriggerSkips    int64 // trigger found key absent and quit
	Recomputes      int64 // top-K reserve exhausted, full recompute
	CasRetries      int64 // CAS conflicts retried
	PopulateRefused int64 // Add lost to a concurrent populate
	FlightLeads     int64 // misses that ran the database load (single-flight leader)
	FlightShared    int64 // misses that waited on a concurrent load and shared its result
}

// Genie is the CacheGenie middleware instance.
type Genie struct {
	reg     *orm.Registry
	db      *sqldb.DB
	cache   kvcache.Cache
	sleeper latency.Sleeper
	cfg     Config
	// bus is non-nil in async mode; triggers and repopulation publish to it
	// instead of issuing per-op cache round trips.
	bus *invbus.Bus
	// flights is non-nil with Config.SingleFlight; miss loads coalesce
	// through it.
	flights *flightGroup

	mu      sync.Mutex
	objects map[string]*CachedObject
	// byModel indexes transparent cached objects by main model name for
	// interceptor dispatch.
	byModel map[string][]*CachedObject

	hits            atomic.Int64
	misses          atomic.Int64
	trigUpdates     atomic.Int64
	trigDeletes     atomic.Int64
	trigSkips       atomic.Int64
	recomputes      atomic.Int64
	casRetries      atomic.Int64
	populateRefused atomic.Int64
	flightLeads     atomic.Int64
	flightShared    atomic.Int64
}

// New creates a Genie and installs it as the registry's read interceptor
// (unless cfg.Disabled).
func New(cfg Config) (*Genie, error) {
	if cfg.Registry == nil || cfg.DB == nil || cfg.Cache == nil {
		return nil, fmt.Errorf("core: Config needs Registry, DB and Cache")
	}
	if cfg.Sleeper == nil {
		cfg.Sleeper = latency.RealSleeper{}
	}
	g := &Genie{
		reg:     cfg.Registry,
		db:      cfg.DB,
		cache:   cfg.Cache,
		sleeper: cfg.Sleeper,
		cfg:     cfg,
		objects: make(map[string]*CachedObject),
		byModel: make(map[string][]*CachedObject),
	}
	if cfg.SingleFlight {
		g.flights = newFlightGroup()
	}
	if cfg.AsyncInvalidation && !cfg.Disabled {
		connect := cfg.TriggerConnectCost
		if cfg.ReuseTriggerConnections {
			connect = 0
		}
		g.bus = invbus.New(invbus.Config{
			Cache:       cfg.Cache,
			BatchWindow: cfg.BatchWindow,
			ConnectCost: connect,
			Sleeper:     cfg.Sleeper,
		})
	}
	if !cfg.Disabled {
		cfg.Registry.SetInterceptor(g)
	}
	return g, nil
}

// FlushInvalidations drains the invalidation bus: every trigger op
// published before the call is applied to the cache when it returns. No-op
// in synchronous mode.
func (g *Genie) FlushInvalidations() {
	if g.bus != nil {
		g.bus.Flush()
	}
}

// Close drains and stops the invalidation bus (no-op in synchronous mode).
// Trigger firings after Close fall back to synchronous cache maintenance.
func (g *Genie) Close() {
	if g.bus != nil {
		g.bus.Close()
	}
}

// InvStats returns the invalidation bus's counters (zero in sync mode),
// including the backpressure series: QueueFullStalls and StallTime expose
// how often — and for how long — writers blocked on full shard queues.
func (g *Genie) InvStats() invbus.Stats {
	if g.bus == nil {
		return invbus.Stats{}
	}
	return g.bus.Stats()
}

// Stats returns a snapshot of counters.
func (g *Genie) Stats() Stats {
	return Stats{
		Hits:            g.hits.Load(),
		Misses:          g.misses.Load(),
		TriggerUpdates:  g.trigUpdates.Load(),
		TriggerDeletes:  g.trigDeletes.Load(),
		TriggerSkips:    g.trigSkips.Load(),
		Recomputes:      g.recomputes.Load(),
		CasRetries:      g.casRetries.Load(),
		PopulateRefused: g.populateRefused.Load(),
		FlightLeads:     g.flightLeads.Load(),
		FlightShared:    g.flightShared.Load(),
	}
}

// Cache returns the caching layer the Genie writes to.
func (g *Genie) Cache() kvcache.Cache { return g.cache }

// ReplicaStats reports the replica-routing counters (failover reads, read
// repairs, unhealthy-replica skips) when the Genie's cache is — or wraps,
// through any chain of Unwrap()-able decorators — a replicated cluster
// ring; the zero value otherwise. This is the Genie-level view of what the
// breaker-aware failover path did on behalf of its reads.
func (g *Genie) ReplicaStats() cluster.ReplicaStats {
	c := g.cache
	for {
		if rs, ok := c.(cluster.ReplicaStatsReporter); ok {
			return rs.ReplicaStats()
		}
		u, ok := c.(interface{ Unwrap() kvcache.Cache })
		if !ok {
			return cluster.ReplicaStats{}
		}
		c = u.Unwrap()
	}
}

// Objects returns the registered cached objects sorted by name.
func (g *Genie) Objects() []*CachedObject {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*CachedObject, 0, len(g.objects))
	for _, co := range g.objects {
		out = append(out, co)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].spec.Name < out[b].spec.Name })
	return out
}

// chargeTriggerConnect models the trigger opening its cache connection.
func (g *Genie) chargeTriggerConnect() {
	if !g.cfg.ReuseTriggerConnections && g.cfg.TriggerConnectCost > 0 {
		g.sleeper.Sleep(g.cfg.TriggerConnectCost)
	}
}

// populate stores a freshly computed entry after a read miss. In async mode
// the Add rides the bus so it serializes after any trigger ops already
// queued for the key — applying it directly would let a stale queued
// update land on top of (or a queued incr double-count against) the fresh
// database-derived value.
func (g *Genie) populate(key string, enc []byte, ttl time.Duration) {
	if g.bus != nil {
		g.bus.Publish(invbus.Op{Kind: invbus.OpCasUpdate, Key: key, Update: func(c kvcache.Cache) {
			if !c.Add(key, enc, ttl) {
				g.populateRefused.Add(1)
			}
		}})
		return
	}
	if !g.cache.Add(key, enc, ttl) {
		g.populateRefused.Add(1)
	}
}

// flightDo runs a miss load, coalescing it through the single-flight group
// when one is configured (Config.SingleFlight) and directly otherwise, and
// keeps the lead/shared accounting.
func (g *Genie) flightDo(key string, fn func() (any, error)) (any, error) {
	if g.flights == nil {
		return fn()
	}
	v, shared, err := g.flights.do(key, fn)
	if shared {
		g.flightShared.Add(1)
	} else {
		g.flightLeads.Add(1)
	}
	return v, err
}

// dropKey removes a corrupt or unparseable entry, via the bus when async.
func (g *Genie) dropKey(key string) {
	if g.bus != nil {
		g.bus.Publish(invbus.Op{Kind: invbus.OpDelete, Key: key})
		return
	}
	g.cache.Delete(key)
}

// CachedObject is one declared cached object: an instance of a cache class
// bound to a model and lookup fields.
type CachedObject struct {
	g     *Genie
	spec  Spec
	model *orm.Model
	// linkThrough is set for LinkQuery.
	linkThrough *orm.Model
	// colIdx maps field name -> position in the model's schema order.
	colIdx map[string]int
	// throughIdx maps through-model field name -> position (LinkQuery).
	throughIdx map[string]int
	// sql is the derived query template (paper: "query generation").
	sql string
	// triggers are the generated triggers (installed in the DB).
	triggers []sqldb.Trigger
}

// Spec returns the object's declaration.
func (co *CachedObject) Spec() Spec { return co.spec }

// QueryTemplate returns the derived SQL template for cache misses.
func (co *CachedObject) QueryTemplate() string { return co.sql }

// Triggers returns the generated triggers (with Source listings).
func (co *CachedObject) Triggers() []sqldb.Trigger { return co.triggers }

// MakeKey builds the cache key for the given lookup values.
func (co *CachedObject) MakeKey(vals ...sqldb.Value) string {
	parts := make([]string, 0, len(vals)+2)
	parts = append(parts, "cg", co.spec.Name)
	for _, v := range vals {
		parts = append(parts, keyValue(v))
	}
	return strings.Join(parts, ":")
}

func fieldIndex(m *orm.Model) map[string]int {
	idx := make(map[string]int, len(m.Fields)+1)
	for i, n := range m.FieldNames() {
		idx[n] = i
	}
	return idx
}

// Cacheable declares a cached object: it derives the query template,
// generates and installs the triggers, and (unless the spec is Opaque)
// arms transparent interception for matching ORM queries. This is the
// paper's cacheable(...) entry point.
func (g *Genie) Cacheable(spec Spec) (*CachedObject, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	model, err := g.reg.Model(spec.MainModel)
	if err != nil {
		return nil, err
	}
	co := &CachedObject{g: g, spec: spec, model: model, colIdx: fieldIndex(model)}
	for _, f := range spec.WhereFields {
		if spec.Class == LinkQuery {
			break // validated against the through model below
		}
		if _, ok := co.colIdx[f]; !ok {
			return nil, fmt.Errorf("core: %s: model %s has no field %q", spec.Name, model.Name, f)
		}
	}
	if spec.Class == TopKQuery {
		if _, ok := co.colIdx[spec.SortField]; !ok {
			return nil, fmt.Errorf("core: %s: model %s has no sort field %q", spec.Name, model.Name, spec.SortField)
		}
	}
	if spec.Class == LinkQuery {
		through, err := g.reg.Model(spec.Link.ThroughModel)
		if err != nil {
			return nil, err
		}
		co.linkThrough = through
		co.throughIdx = fieldIndex(through)
		for _, f := range []string{spec.Link.SourceField, spec.Link.JoinField} {
			if _, ok := co.throughIdx[f]; !ok {
				return nil, fmt.Errorf("core: %s: through model %s has no field %q", spec.Name, through.Name, f)
			}
		}
		if _, ok := co.colIdx[spec.Link.TargetField]; !ok {
			return nil, fmt.Errorf("core: %s: model %s has no field %q", spec.Name, model.Name, spec.Link.TargetField)
		}
	}
	co.sql = co.buildQueryTemplate()

	g.mu.Lock()
	if _, dup := g.objects[spec.Name]; dup {
		g.mu.Unlock()
		return nil, fmt.Errorf("core: cached object %q already declared", spec.Name)
	}
	g.objects[spec.Name] = co
	if !spec.Opaque {
		g.byModel[model.Name] = append(g.byModel[model.Name], co)
	}
	g.mu.Unlock()

	if !g.cfg.Disabled {
		if err := co.installTriggers(); err != nil {
			return nil, err
		}
	} else {
		// Still generate sources so effort metrics work in baseline mode.
		co.triggers = co.generateTriggers()
	}
	return co, nil
}

// buildQueryTemplate derives the SQL issued on cache misses.
func (co *CachedObject) buildQueryTemplate() string {
	cols := make([]string, 0, len(co.model.Fields)+1)
	for _, c := range co.model.FieldNames() {
		cols = append(cols, co.model.Table+"."+c)
	}
	colList := strings.Join(cols, ", ")
	where := make([]string, len(co.spec.WhereFields))
	switch co.spec.Class {
	case LinkQuery:
		l := co.spec.Link
		return fmt.Sprintf("SELECT %s FROM %s JOIN %s ON %s.%s = %s.%s WHERE %s.%s = $1",
			colList, co.linkThrough.Table, co.model.Table,
			co.model.Table, l.TargetField, co.linkThrough.Table, l.JoinField,
			co.linkThrough.Table, l.SourceField)
	case CountQuery:
		for i, f := range co.spec.WhereFields {
			where[i] = fmt.Sprintf("%s.%s = $%d", co.model.Table, f, i+1)
		}
		return fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s",
			co.model.Table, strings.Join(where, " AND "))
	case TopKQuery:
		for i, f := range co.spec.WhereFields {
			where[i] = fmt.Sprintf("%s.%s = $%d", co.model.Table, f, i+1)
		}
		dir := ""
		if co.spec.SortDesc {
			dir = " DESC"
		}
		return fmt.Sprintf("SELECT %s FROM %s WHERE %s ORDER BY %s.%s%s LIMIT %d",
			colList, co.model.Table, strings.Join(where, " AND "),
			co.model.Table, co.spec.SortField, dir, co.spec.K+co.spec.reserve())
	default: // FeatureQuery
		for i, f := range co.spec.WhereFields {
			where[i] = fmt.Sprintf("%s.%s = $%d", co.model.Table, f, i+1)
		}
		return fmt.Sprintf("SELECT %s FROM %s WHERE %s",
			colList, co.model.Table, strings.Join(where, " AND "))
	}
}

// ttl returns the object's entry TTL.
func (co *CachedObject) ttl() time.Duration {
	if co.spec.Strategy == Expiry {
		return co.spec.TTL
	}
	if co.spec.TTL > 0 {
		return co.spec.TTL
	}
	return co.g.cfg.DefaultTTL
}

// Rows evaluates the cached object for the given lookup values, reading the
// cache first and populating it from the database on a miss (the paper's
// evaluate()). Valid for FeatureQuery, LinkQuery and TopKQuery.
func (co *CachedObject) Rows(vals ...sqldb.Value) ([]sqldb.Row, error) {
	if co.spec.Class == CountQuery {
		return nil, fmt.Errorf("core: %s is a CountQuery; call Count", co.spec.Name)
	}
	key := co.MakeKey(vals...)
	if raw, ok := co.g.cache.Get(key); ok {
		p, err := decodePayload(raw)
		if err == nil {
			co.g.hits.Add(1)
			rows := p.rows
			if co.spec.Class == TopKQuery && len(rows) > co.spec.K {
				rows = rows[:co.spec.K]
			}
			return rows, nil
		}
		// Corrupt entry: drop it and fall through to the database.
		co.g.dropKey(key)
	}
	co.g.misses.Add(1)
	v, err := co.g.flightDo(key, func() (any, error) {
		rows, exhaustive, err := co.fetchFromDB(co.g.reg.Conn(), vals)
		if err != nil {
			return nil, err
		}
		enc := encodePayload(payload{exhaustive: exhaustive, rows: rows})
		co.g.populate(key, enc, co.ttl())
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	rows := v.([]sqldb.Row)
	if co.spec.Class == TopKQuery && len(rows) > co.spec.K {
		rows = rows[:co.spec.K]
	}
	return rows, nil
}

// Count evaluates a CountQuery object.
func (co *CachedObject) Count(vals ...sqldb.Value) (int64, error) {
	if co.spec.Class != CountQuery {
		return 0, fmt.Errorf("core: %s is not a CountQuery", co.spec.Name)
	}
	key := co.MakeKey(vals...)
	if raw, ok := co.g.cache.Get(key); ok {
		if n, ok := parseCount(raw); ok {
			co.g.hits.Add(1)
			return n, nil
		}
		co.g.dropKey(key)
	}
	co.g.misses.Add(1)
	v, err := co.g.flightDo(key, func() (any, error) {
		args := make([]sqldb.Value, len(vals))
		copy(args, vals)
		rs, err := co.g.reg.Conn().Query(co.sql, args...)
		if err != nil {
			return nil, err
		}
		n := rs.Rows[0][0].I
		co.g.populate(key, []byte(fmt.Sprintf("%d", n)), co.ttl())
		return n, nil
	})
	if err != nil {
		return 0, err
	}
	return v.(int64), nil
}

// fetchFromDB runs the query template over q.
func (co *CachedObject) fetchFromDB(q interface {
	Query(sql string, args ...sqldb.Value) (*sqldb.ResultSet, error)
}, vals []sqldb.Value) (rows []sqldb.Row, exhaustive bool, err error) {
	args := make([]sqldb.Value, len(vals))
	copy(args, vals)
	rs, err := q.Query(co.sql, args...)
	if err != nil {
		return nil, false, err
	}
	exhaustive = true
	if co.spec.Class == TopKQuery {
		exhaustive = len(rs.Rows) < co.spec.K+co.spec.reserve()
	}
	return rs.Rows, exhaustive, nil
}

func parseCount(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var n int64
	neg := false
	i := 0
	if b[0] == '-' {
		neg, i = true, 1
	}
	for ; i < len(b); i++ {
		if b[i] < '0' || b[i] > '9' {
			return 0, false
		}
		n = n*10 + int64(b[i]-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}

// ---------- orm.Interceptor ----------

var _ orm.Interceptor = (*Genie)(nil)

// InterceptRows implements orm.Interceptor: FeatureQuery, TopKQuery and
// LinkQuery patterns are served from the cache.
func (g *Genie) InterceptRows(d *orm.QueryDescriptor) ([]sqldb.Row, bool, error) {
	g.mu.Lock()
	candidates := g.byModel[d.Model.Name]
	g.mu.Unlock()
	for _, co := range candidates {
		switch co.spec.Class {
		case FeatureQuery:
			if d.Kind != orm.KindRows || d.Join != nil || len(d.Order) > 0 || d.Limit >= 0 {
				continue
			}
			vals, ok := d.EqFilterValues(co.spec.WhereFields)
			if !ok {
				continue
			}
			rows, err := co.Rows(vals...)
			return rows, true, err
		case TopKQuery:
			if d.Kind != orm.KindRows || d.Join != nil || d.Limit <= 0 || d.Limit > co.spec.K {
				continue
			}
			if len(d.Order) != 1 || d.Order[0].Field != co.spec.SortField || d.Order[0].Desc != co.spec.SortDesc {
				continue
			}
			vals, ok := d.EqFilterValues(co.spec.WhereFields)
			if !ok {
				continue
			}
			rows, err := co.Rows(vals...)
			if err == nil && len(rows) > d.Limit {
				rows = rows[:d.Limit]
			}
			return rows, true, err
		case LinkQuery:
			if d.Kind != orm.KindRows || d.Join == nil || len(d.Order) > 0 || d.Limit >= 0 {
				continue
			}
			l := co.spec.Link
			if d.Join.ThroughModel != l.ThroughModel || d.Join.SourceField != l.SourceField ||
				d.Join.JoinField != l.JoinField || d.Join.TargetField != l.TargetField {
				continue
			}
			vals, ok := d.EqFilterValues([]string{l.SourceField})
			if !ok {
				continue
			}
			rows, err := co.Rows(vals...)
			return rows, true, err
		}
	}
	return nil, false, nil
}

// InterceptCount implements orm.Interceptor for CountQuery patterns.
func (g *Genie) InterceptCount(d *orm.QueryDescriptor) (int64, bool, error) {
	g.mu.Lock()
	candidates := g.byModel[d.Model.Name]
	g.mu.Unlock()
	for _, co := range candidates {
		if co.spec.Class != CountQuery || d.Join != nil {
			continue
		}
		vals, ok := d.EqFilterValues(co.spec.WhereFields)
		if !ok {
			continue
		}
		n, err := co.Count(vals...)
		return n, true, err
	}
	return 0, false, nil
}
