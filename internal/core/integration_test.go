package core

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"cachegenie/internal/cacheproto"
	"cachegenie/internal/cluster"
	"cachegenie/internal/kvcache"
	"cachegenie/internal/orm"
	"cachegenie/internal/sqldb"
)

// TestGenieOverRemoteCache runs CacheGenie against a cache reached through
// the memcached text protocol over TCP, exactly as the paper deploys it:
// triggers talk to a remote cache server.
func TestGenieOverRemoteCache(t *testing.T) {
	store := kvcache.New(0)
	srv := cacheproto.NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	cli, err := cacheproto.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cli.Close() })

	db := sqldb.MustOpen(sqldb.Config{})
	reg := orm.NewRegistry(db)
	reg.MustRegister(&orm.ModelDef{
		Name: "Profile", Table: "profiles",
		Fields: []orm.FieldDef{
			{Name: "user_id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "bio", Type: sqldb.TypeText},
		},
		Indexes: [][]string{{"user_id"}},
	})
	if err := reg.CreateTables(); err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{Registry: reg, DB: db, Cache: cli})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Cacheable(Spec{
		Name: "profile_remote", Class: FeatureQuery, MainModel: "Profile",
		WhereFields: []string{"user_id"},
	}); err != nil {
		t.Fatal(err)
	}

	_, _ = reg.Insert("Profile", orm.Fields{"user_id": 9, "bio": "v1"})
	o, err := reg.Objects("Profile").Filter("user_id", 9).Get()
	if err != nil || o.Str("bio") != "v1" {
		t.Fatalf("o=%v err=%v", o, err)
	}
	// The entry must physically live in the remote store.
	if _, ok := store.Get("cg:profile_remote:9"); !ok {
		t.Fatal("entry not in remote store")
	}
	// Trigger-driven update crosses the wire too.
	_, _ = reg.Objects("Profile").Filter("user_id", 9).Update(orm.Fields{"bio": "v2"})
	selBefore := db.Stats().Selects
	o, _ = reg.Objects("Profile").Filter("user_id", 9).Get()
	if o.Str("bio") != "v2" {
		t.Fatalf("bio = %q", o.Str("bio"))
	}
	if db.Stats().Selects != selBefore {
		t.Fatal("read after update hit the database")
	}
}

// TestGenieOverCacheCluster runs CacheGenie against a consistent-hash ring
// of three stores (the paper's "single logical cache across many cache
// servers").
func TestGenieOverCacheCluster(t *testing.T) {
	stores := []*kvcache.Store{kvcache.New(0), kvcache.New(0), kvcache.New(0)}
	ring, err := cluster.NewRing([]kvcache.Cache{stores[0], stores[1], stores[2]})
	if err != nil {
		t.Fatal(err)
	}
	db := sqldb.MustOpen(sqldb.Config{})
	reg := orm.NewRegistry(db)
	reg.MustRegister(&orm.ModelDef{
		Name: "Profile", Table: "profiles",
		Fields: []orm.FieldDef{
			{Name: "user_id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "bio", Type: sqldb.TypeText},
		},
		Indexes: [][]string{{"user_id"}},
	})
	if err := reg.CreateTables(); err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{Registry: reg, DB: db, Cache: ring})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Cacheable(Spec{
		Name: "profile_ring", Class: FeatureQuery, MainModel: "Profile",
		WhereFields: []string{"user_id"},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 60; i++ {
		_, _ = reg.Insert("Profile", orm.Fields{"user_id": i, "bio": fmt.Sprintf("b%d", i)})
		if _, err := reg.Objects("Profile").Filter("user_id", i).Get(); err != nil {
			t.Fatal(err)
		}
	}
	// Keys spread across nodes, no duplicates.
	total := 0
	nodesUsed := 0
	for _, s := range stores {
		if n := s.Len(); n > 0 {
			nodesUsed++
			total += n
		}
	}
	if nodesUsed < 2 || total != 60 {
		t.Fatalf("keys on %d nodes, total %d (want spread, 60)", nodesUsed, total)
	}
	// Updates route to the right node.
	_, _ = reg.Objects("Profile").Filter("user_id", 30).Update(orm.Fields{"bio": "fresh"})
	o, _ := reg.Objects("Profile").Filter("user_id", 30).Get()
	if o.Str("bio") != "fresh" {
		t.Fatalf("bio = %q", o.Str("bio"))
	}
}

// TestCacheRestartColdStart simulates the cache server restarting (flush):
// the system must degrade to database reads and repopulate, never serving
// wrong data.
func TestCacheRestartColdStart(t *testing.T) {
	s := newStack(t)
	s.cacheable(t, profileSpec(UpdateInPlace))
	for i := 1; i <= 10; i++ {
		_, _ = s.reg.Insert("Profile", orm.Fields{"user_id": i, "bio": fmt.Sprintf("b%d", i)})
		_, _ = s.reg.Objects("Profile").Filter("user_id", i).Get()
	}
	s.cache.FlushAll() // cache restart

	for i := 1; i <= 10; i++ {
		o, err := s.reg.Objects("Profile").Filter("user_id", i).Get()
		if err != nil || o.Str("bio") != fmt.Sprintf("b%d", i) {
			t.Fatalf("user %d after restart: %v %v", i, o, err)
		}
	}
	// And writes after the restart keep everything consistent again.
	_, _ = s.reg.Objects("Profile").Filter("user_id", 5).Update(orm.Fields{"bio": "post-restart"})
	o, _ := s.reg.Objects("Profile").Filter("user_id", 5).Get()
	if o.Str("bio") != "post-restart" {
		t.Fatalf("bio = %q", o.Str("bio"))
	}
}

// TestConcurrentWritersCasStorm hammers one top-K key from many goroutines;
// the CAS retry path must keep the list exactly consistent with the DB.
func TestConcurrentWritersCasStorm(t *testing.T) {
	s := newStack(t)
	s.cacheable(t, topkSpec(10, 3))
	base := time.Unix(9e5, 0)
	// Warm the key.
	postAt(s, t, 7, "seed", base)
	if _, err := wallQS(s, 7, 10).All(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 30; i++ {
				_, err := s.reg.Insert("Wall", orm.Fields{
					"user_id": 7, "content": fmt.Sprintf("g%d-%d", g, i),
					"date_posted": base.Add(time.Duration(rng.Intn(1e6)) * time.Millisecond),
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	cached, err := wallQS(s, 7, 10).All()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := wallQS(s, 7, 10).NoCache().All()
	if err != nil {
		t.Fatal(err)
	}
	if len(cached) != len(direct) {
		t.Fatalf("cached %d rows, db %d rows", len(cached), len(direct))
	}
	for i := range cached {
		if cached[i].ID() != direct[i].ID() {
			t.Fatalf("row %d: cached id %d, db id %d", i, cached[i].ID(), direct[i].ID())
		}
	}
}

// TestTriggerSourceListingsAreComplete sanity-checks the generated trigger
// programs: every trigger has a listing mentioning its table, op and the
// cache operations it performs.
func TestTriggerSourceListingsAreComplete(t *testing.T) {
	s := newStack(t)
	objects := []*CachedObject{
		s.cacheable(t, profileSpec(UpdateInPlace)),
		s.cacheable(t, Spec{
			Name: "wall_count", Class: CountQuery, MainModel: "Wall",
			WhereFields: []string{"user_id"},
		}),
		s.cacheable(t, topkSpec(5, 2)),
		s.cacheable(t, linkSpec()),
	}
	for _, co := range objects {
		for _, tr := range co.Triggers() {
			src := tr.Source
			if len(src) == 0 {
				t.Fatalf("%s: empty source", tr.Name)
			}
			for _, want := range []string{tr.Table, "cache", co.Spec().Name} {
				if !strings.Contains(src, want) {
					t.Errorf("%s: source does not mention %q", tr.Name, want)
				}
			}
		}
	}
}
