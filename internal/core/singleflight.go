package core

import "sync"

// flightGroup coalesces concurrent cache-miss loads of the same key into a
// single database query: the first goroutine to miss becomes the leader and
// runs the load; every goroutine that misses the same key while the load is
// in flight parks on the leader's call and shares its result (value or
// error). A flash crowd stampeding one evicted page then costs the database
// exactly one query per hot key per miss window instead of one per request
// — the read storm the paper's trigger-maintained cache otherwise forwards
// straight to the weakest tier.
//
// Scoped per key and per miss: once the leader finishes, the call is
// forgotten and the next miss starts a fresh one, so a key that keeps
// missing (a write-heavy key whose trigger keeps invalidating it) still
// converges on fresh values instead of pinning one stale load forever.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when val/err are set
	val  any
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn for key, unless a call for key is already in flight, in which
// case it waits for that call and returns its result. shared reports
// whether the result came from another goroutine's load — waiters must
// treat a shared value as read-only.
func (f *flightGroup) do(key string, fn func() (any, error)) (v any, shared bool, err error) {
	f.mu.Lock()
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	c.val, c.err = fn()
	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}
