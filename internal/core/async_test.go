package core

import (
	"testing"
	"time"

	"cachegenie/internal/kvcache"
	"cachegenie/internal/orm"
	"cachegenie/internal/sqldb"
)

// newAsyncStack builds the standard test stack with the invalidation bus
// armed (async trigger propagation).
func newAsyncStack(t testing.TB, strategy Strategy) *stack {
	t.Helper()
	db := sqldb.MustOpen(sqldb.Config{})
	reg := orm.NewRegistry(db)
	reg.MustRegister(&orm.ModelDef{
		Name:  "Profile",
		Table: "profiles",
		Fields: []orm.FieldDef{
			{Name: "user_id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "bio", Type: sqldb.TypeText},
		},
		Indexes: [][]string{{"user_id"}},
	})
	reg.MustRegister(&orm.ModelDef{
		Name:  "Wall",
		Table: "wall",
		Fields: []orm.FieldDef{
			{Name: "user_id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "content", Type: sqldb.TypeText},
			{Name: "date_posted", Type: sqldb.TypeTime},
		},
		Indexes: [][]string{{"user_id"}},
	})
	if err := reg.CreateTables(); err != nil {
		t.Fatal(err)
	}
	cache := kvcache.New(0)
	g, err := New(Config{
		Registry: reg, DB: db, Cache: cache,
		AsyncInvalidation: true, BatchWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	s := &stack{db: db, reg: reg, cache: cache, g: g}
	s.cacheable(t, Spec{
		Name: "profile", Class: FeatureQuery, MainModel: "Profile",
		WhereFields: []string{"user_id"}, Strategy: strategy,
	})
	s.cacheable(t, Spec{
		Name: "wall_count", Class: CountQuery, MainModel: "Wall",
		WhereFields: []string{"user_id"}, Strategy: strategy,
	})
	return s
}

func TestAsyncUpdateInPlaceConvergesAfterFlush(t *testing.T) {
	s := newAsyncStack(t, UpdateInPlace)

	if _, err := s.reg.Insert("Profile", orm.Fields{"user_id": 1, "bio": "v1"}); err != nil {
		t.Fatal(err)
	}
	s.g.FlushInvalidations()

	// Populate the cache (miss -> DB -> async Add), then drain so the entry
	// is actually resident.
	rows, err := s.reg.Objects("Profile").Filter("user_id", 1).All()
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows=%d err=%v", len(rows), err)
	}
	s.g.FlushInvalidations()
	if st := s.g.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}

	// A write's trigger ops ride the bus; after draining, the cached entry
	// must reflect the update and serve it as a hit.
	if _, err := s.reg.Objects("Profile").Filter("user_id", 1).Update(orm.Fields{"bio": "v2"}); err != nil {
		t.Fatal(err)
	}
	s.g.FlushInvalidations()
	rows, err = s.reg.Objects("Profile").Filter("user_id", 1).All()
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows=%d err=%v", len(rows), err)
	}
	if got := rows[0].Str("bio"); got != "v2" {
		t.Fatalf("cached bio = %q, want v2", got)
	}
	st := s.g.Stats()
	if st.Hits < 1 {
		t.Fatalf("read not served from cache: %+v", st)
	}
	if st.TriggerUpdates < 1 {
		t.Fatalf("trigger update never applied: %+v", st)
	}
	if bs := s.g.InvStats(); bs.Enqueued == 0 || bs.Applied+bs.Coalesced != bs.Enqueued {
		t.Fatalf("bus stats inconsistent: %+v", bs)
	}
}

func TestAsyncCountIncrementsSerializeWithPopulate(t *testing.T) {
	s := newAsyncStack(t, UpdateInPlace)
	ts := time.Unix(1000, 0)

	// Seed two posts, populate the count, then interleave inserts with the
	// pending populate — per-key FIFO on the bus must keep the count exact.
	for i := 0; i < 2; i++ {
		if _, err := s.reg.Insert("Wall", orm.Fields{"user_id": 7, "content": "x", "date_posted": ts}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := s.reg.Objects("Wall").Filter("user_id", 7).Count()
	if err != nil || n != 2 {
		t.Fatalf("count=%d err=%v", n, err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.reg.Insert("Wall", orm.Fields{"user_id": 7, "content": "y", "date_posted": ts}); err != nil {
			t.Fatal(err)
		}
	}
	s.g.FlushInvalidations()
	n, err = s.reg.Objects("Wall").Filter("user_id", 7).Count()
	if err != nil || n != 5 {
		t.Fatalf("count after async incrs = %d (err=%v), want 5", n, err)
	}
}

func TestAsyncInvalidateStrategyDropsKeys(t *testing.T) {
	s := newAsyncStack(t, Invalidate)

	if _, err := s.reg.Insert("Profile", orm.Fields{"user_id": 3, "bio": "a"}); err != nil {
		t.Fatal(err)
	}
	s.g.FlushInvalidations()
	if _, err := s.reg.Objects("Profile").Filter("user_id", 3).All(); err != nil {
		t.Fatal(err)
	}
	s.g.FlushInvalidations()

	if _, err := s.reg.Objects("Profile").Filter("user_id", 3).Update(orm.Fields{"bio": "b"}); err != nil {
		t.Fatal(err)
	}
	s.g.FlushInvalidations()
	rows, err := s.reg.Objects("Profile").Filter("user_id", 3).All()
	if err != nil || len(rows) != 1 || rows[0].Str("bio") != "b" {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
	if st := s.g.Stats(); st.TriggerDeletes == 0 {
		t.Fatalf("no invalidations recorded: %+v", st)
	}
}

func TestAsyncDisabledHasNoBus(t *testing.T) {
	s := newStack(t)
	if bs := s.g.InvStats(); bs != (s.g.InvStats()) || bs.Enqueued != 0 {
		t.Fatalf("sync genie reports bus activity: %+v", bs)
	}
	// Flush/Close are harmless no-ops in sync mode.
	s.g.FlushInvalidations()
	s.g.Close()
}
