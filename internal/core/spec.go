// Package core implements CacheGenie, the paper's contribution: declarative
// caching abstractions ("cache classes") for the query patterns ORMs
// generate, with automatic cache management. A programmer declares cached
// objects with Cacheable; CacheGenie then
//
//  1. derives the SQL query template for each cached object,
//  2. generates and installs database triggers (INSERT/UPDATE/DELETE on
//     every underlying table) that keep the cached data consistent — by
//     invalidating affected keys or incrementally updating them in place,
//  3. transparently intercepts matching ORM reads and serves them from the
//     cache, populating it from the database on a miss.
//
// The four cache classes are the paper's (§3.1): FeatureQuery (rows of one
// table by indexed columns), LinkQuery (relationship traversal through a
// join table), CountQuery (COUNT(*) by indexed columns), and TopKQuery
// (top-K rows by a sort column, maintained incrementally with a reserve).
package core

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Class identifies a cache class.
type Class int

// Cache classes.
const (
	FeatureQuery Class = iota + 1
	LinkQuery
	CountQuery
	TopKQuery
)

var classNames = map[Class]string{
	FeatureQuery: "FeatureQuery",
	LinkQuery:    "LinkQuery",
	CountQuery:   "CountQuery",
	TopKQuery:    "TopKQuery",
}

// String implements fmt.Stringer.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Strategy is the cache-consistency strategy for a cached object (§3.1):
// update the cached entry in place (default), invalidate it, or let it
// expire on a TTL.
type Strategy int

// Strategies.
const (
	UpdateInPlace Strategy = iota
	Invalidate
	Expiry
)

var strategyNames = map[Strategy]string{
	UpdateInPlace: "update-in-place",
	Invalidate:    "invalidate",
	Expiry:        "expiry",
}

// String implements fmt.Stringer.
func (s Strategy) String() string { return strategyNames[s] }

// Link describes a LinkQuery's relationship chain: rows of the target model
// reached from a source value through a relation table. The paper's example
// — "the interest groups a user belongs to" — is
//
//	Link{ThroughModel: "Membership", SourceField: "user_id",
//	     JoinField: "group_id", TargetModel: "Group", TargetField: "id"}
type Link struct {
	// ThroughModel is the relation model (its table gets triggers too).
	ThroughModel string
	// SourceField is the through column the lookup value matches.
	SourceField string
	// JoinField is the through column joined to the target.
	JoinField string
	// TargetField is the target-model column joined (usually "id").
	TargetField string
}

// Spec declares one cached object — the arguments of the paper's
// cacheable(...) call.
type Spec struct {
	// Name uniquely identifies the cached object and prefixes its keys.
	Name string
	// Class selects the cache class.
	Class Class
	// MainModel is the model whose rows are cached (for LinkQuery, the
	// target model).
	MainModel string
	// WhereFields are the indexing columns (the paper's where_fields). For
	// LinkQuery this must be exactly {Link.SourceField}.
	WhereFields []string
	// Strategy is the consistency strategy (default update-in-place).
	Strategy Strategy
	// TTL applies to Expiry strategy (and optionally bounds other
	// strategies; 0 = no expiry).
	TTL time.Duration
	// Opaque disables transparent interception for this object; the
	// programmer calls Rows/Count on the CachedObject explicitly
	// (the paper's use_transparently=False opt-out, §3.3).
	Opaque bool

	// Link configures LinkQuery.
	Link *Link

	// SortField, SortDesc, K and Reserve configure TopKQuery. Reserve is
	// the number of extra rows kept beyond K to absorb deletes without
	// recomputation (paper §3.2, "plus a few more"); 0 means DefaultReserve.
	SortField string
	SortDesc  bool
	K         int
	Reserve   int
}

// DefaultReserve is the top-K reserve used when Spec.Reserve is 0.
const DefaultReserve = 5

// validate checks the spec for structural problems.
func (s *Spec) validate() error {
	if s.Name == "" {
		return errors.New("core: spec needs a Name")
	}
	if strings.ContainsAny(s.Name, ": ") {
		return fmt.Errorf("core: spec name %q must not contain ':' or spaces", s.Name)
	}
	if s.MainModel == "" {
		return errors.New("core: spec needs a MainModel")
	}
	switch s.Class {
	case FeatureQuery, CountQuery:
		if len(s.WhereFields) == 0 {
			return fmt.Errorf("core: %s %q needs WhereFields", s.Class, s.Name)
		}
		if s.Link != nil {
			return fmt.Errorf("core: %s %q must not set Link", s.Class, s.Name)
		}
	case TopKQuery:
		if len(s.WhereFields) == 0 {
			return fmt.Errorf("core: TopKQuery %q needs WhereFields", s.Name)
		}
		if s.SortField == "" {
			return fmt.Errorf("core: TopKQuery %q needs SortField", s.Name)
		}
		if s.K <= 0 {
			return fmt.Errorf("core: TopKQuery %q needs K > 0", s.Name)
		}
	case LinkQuery:
		if s.Link == nil {
			return fmt.Errorf("core: LinkQuery %q needs Link", s.Name)
		}
		if s.Link.ThroughModel == "" || s.Link.SourceField == "" ||
			s.Link.JoinField == "" || s.Link.TargetField == "" {
			return fmt.Errorf("core: LinkQuery %q has an incomplete Link", s.Name)
		}
		if len(s.WhereFields) != 1 || s.WhereFields[0] != s.Link.SourceField {
			return fmt.Errorf("core: LinkQuery %q WhereFields must be exactly {Link.SourceField}", s.Name)
		}
	default:
		return fmt.Errorf("core: spec %q has unknown class %d", s.Name, int(s.Class))
	}
	if s.Strategy == Expiry && s.TTL <= 0 {
		return fmt.Errorf("core: Expiry strategy for %q needs a TTL", s.Name)
	}
	return nil
}

// reserve returns the effective top-K reserve.
func (s *Spec) reserve() int {
	if s.Reserve > 0 {
		return s.Reserve
	}
	return DefaultReserve
}
