package core

import "cachegenie/internal/obs"

// RegisterMetrics attaches the middleware's counters — and, in async mode,
// the invalidation bus's full instrumentation — to reg. The labels string is
// raw Prometheus label syntax ("" for none).
func (g *Genie) RegisterMetrics(reg *obs.Registry, labels string) {
	if g == nil || reg == nil {
		return
	}
	reg.CounterFunc("cachegenie_genie_hits_total", labels,
		"reads served from cache", g.hits.Load)
	reg.CounterFunc("cachegenie_genie_misses_total", labels,
		"reads that fell through and repopulated", g.misses.Load)
	reg.CounterFunc("cachegenie_genie_trigger_updates_total", labels,
		"in-place cache updates from triggers", g.trigUpdates.Load)
	reg.CounterFunc("cachegenie_genie_trigger_deletes_total", labels,
		"invalidations from triggers", g.trigDeletes.Load)
	reg.CounterFunc("cachegenie_genie_trigger_skips_total", labels,
		"trigger firings that found the key absent and quit", g.trigSkips.Load)
	reg.CounterFunc("cachegenie_genie_recomputes_total", labels,
		"full recomputes after top-K reserve exhaustion", g.recomputes.Load)
	reg.CounterFunc("cachegenie_genie_cas_retries_total", labels,
		"CAS conflicts retried", g.casRetries.Load)
	reg.CounterFunc("cachegenie_genie_populate_refused_total", labels,
		"populates that lost to a concurrent Add", g.populateRefused.Load)
	if g.flights != nil {
		reg.CounterFunc("cachegenie_singleflight_leads_total", labels,
			"miss loads that ran the database query", g.flightLeads.Load)
		reg.CounterFunc("cachegenie_singleflight_shared_total", labels,
			"miss loads coalesced onto a concurrent leader's query", g.flightShared.Load)
	}
	g.bus.RegisterMetrics(reg, labels)
}
