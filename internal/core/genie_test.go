package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cachegenie/internal/kvcache"
	"cachegenie/internal/orm"
	"cachegenie/internal/sqldb"
)

// stack is a full test stack: engine + ORM + cache + genie.
type stack struct {
	db    *sqldb.DB
	reg   *orm.Registry
	cache *kvcache.Store
	g     *Genie
}

func newStack(t testing.TB) *stack {
	t.Helper()
	db := sqldb.MustOpen(sqldb.Config{})
	reg := orm.NewRegistry(db)
	reg.MustRegister(&orm.ModelDef{
		Name:  "Profile",
		Table: "profiles",
		Fields: []orm.FieldDef{
			{Name: "user_id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "bio", Type: sqldb.TypeText},
		},
		Indexes: [][]string{{"user_id"}},
	})
	reg.MustRegister(&orm.ModelDef{
		Name:  "Wall",
		Table: "wall",
		Fields: []orm.FieldDef{
			{Name: "user_id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "content", Type: sqldb.TypeText},
			{Name: "date_posted", Type: sqldb.TypeTime},
		},
		Indexes: [][]string{{"user_id"}},
	})
	reg.MustRegister(&orm.ModelDef{
		Name:  "Group",
		Table: "groups",
		Fields: []orm.FieldDef{
			{Name: "name", Type: sqldb.TypeText, NotNull: true},
		},
	})
	reg.MustRegister(&orm.ModelDef{
		Name:  "Membership",
		Table: "membership",
		Fields: []orm.FieldDef{
			{Name: "user_id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "group_id", Type: sqldb.TypeInt, NotNull: true},
		},
		Indexes: [][]string{{"user_id"}, {"group_id"}},
	})
	if err := reg.CreateTables(); err != nil {
		t.Fatal(err)
	}
	cache := kvcache.New(0)
	g, err := New(Config{Registry: reg, DB: db, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	return &stack{db: db, reg: reg, cache: cache, g: g}
}

func (s *stack) cacheable(t testing.TB, spec Spec) *CachedObject {
	t.Helper()
	co, err := s.g.Cacheable(spec)
	if err != nil {
		t.Fatal(err)
	}
	return co
}

func profileSpec(strategy Strategy) Spec {
	return Spec{
		Name: "user_profile", Class: FeatureQuery, MainModel: "Profile",
		WhereFields: []string{"user_id"}, Strategy: strategy,
	}
}

func TestFeatureQueryTransparentHit(t *testing.T) {
	s := newStack(t)
	s.cacheable(t, profileSpec(UpdateInPlace))
	_, err := s.reg.Insert("Profile", orm.Fields{"user_id": 42, "bio": "hello"})
	if err != nil {
		t.Fatal(err)
	}
	selBefore := s.db.Stats().Selects

	// First read: miss, populates.
	o, err := s.reg.Objects("Profile").Filter("user_id", 42).Get()
	if err != nil || o.Str("bio") != "hello" {
		t.Fatalf("o=%v err=%v", o, err)
	}
	// Second read: must be served from cache (no new SELECT).
	o2, err := s.reg.Objects("Profile").Filter("user_id", 42).Get()
	if err != nil || o2.Str("bio") != "hello" {
		t.Fatal(err)
	}
	if got := s.db.Stats().Selects - selBefore; got != 1 {
		t.Fatalf("SELECTs = %d, want 1 (second read cached)", got)
	}
	st := s.g.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFeatureQueryUpdateInPlace(t *testing.T) {
	s := newStack(t)
	s.cacheable(t, profileSpec(UpdateInPlace))
	_, _ = s.reg.Insert("Profile", orm.Fields{"user_id": 42, "bio": "v1"})

	// Warm the cache.
	if _, err := s.reg.Objects("Profile").Filter("user_id", 42).Get(); err != nil {
		t.Fatal(err)
	}
	// Write through the ORM: the trigger must update the cached entry.
	if _, err := s.reg.Objects("Profile").Filter("user_id", 42).Update(orm.Fields{"bio": "v2"}); err != nil {
		t.Fatal(err)
	}
	selBefore := s.db.Stats().Selects
	o, err := s.reg.Objects("Profile").Filter("user_id", 42).Get()
	if err != nil {
		t.Fatal(err)
	}
	if o.Str("bio") != "v2" {
		t.Fatalf("bio = %q, want updated value from cache", o.Str("bio"))
	}
	if s.db.Stats().Selects != selBefore {
		t.Fatal("read after update hit the database; expected in-place cache update")
	}
	if s.g.Stats().TriggerUpdates == 0 {
		t.Fatal("no trigger updates recorded")
	}
}

func TestFeatureQueryInvalidateStrategy(t *testing.T) {
	s := newStack(t)
	s.cacheable(t, profileSpec(Invalidate))
	_, _ = s.reg.Insert("Profile", orm.Fields{"user_id": 42, "bio": "v1"})
	_, _ = s.reg.Insert("Profile", orm.Fields{"user_id": 43, "bio": "other"})

	// Warm both entries.
	_, _ = s.reg.Objects("Profile").Filter("user_id", 42).Get()
	_, _ = s.reg.Objects("Profile").Filter("user_id", 43).Get()

	// Update user 42: only 42's entry is invalidated (paper §3.2 — unlike
	// template-based schemes, 43 stays cached).
	_, _ = s.reg.Objects("Profile").Filter("user_id", 42).Update(orm.Fields{"bio": "v2"})
	if _, ok := s.cache.Get("cg:user_profile:42"); ok {
		t.Fatal("user 42's entry should be invalidated")
	}
	if _, ok := s.cache.Get("cg:user_profile:43"); !ok {
		t.Fatal("user 43's entry should survive (fine-grained invalidation)")
	}
	// Next read repopulates with fresh data.
	o, err := s.reg.Objects("Profile").Filter("user_id", 42).Get()
	if err != nil || o.Str("bio") != "v2" {
		t.Fatalf("o=%v err=%v", o, err)
	}
}

func TestFeatureQueryInsertAndDeleteMaintainList(t *testing.T) {
	s := newStack(t)
	s.cacheable(t, profileSpec(UpdateInPlace))
	_, _ = s.reg.Insert("Profile", orm.Fields{"user_id": 7, "bio": "a"})
	objs, _ := s.reg.Objects("Profile").Filter("user_id", 7).All()
	if len(objs) != 1 {
		t.Fatalf("warm read = %d", len(objs))
	}
	// Insert another row for the same user; trigger appends to cached list.
	_, _ = s.reg.Insert("Profile", orm.Fields{"user_id": 7, "bio": "b"})
	objs, _ = s.reg.Objects("Profile").Filter("user_id", 7).All()
	if len(objs) != 2 {
		t.Fatalf("after insert = %d rows, want 2 (from cache)", len(objs))
	}
	// Delete one; trigger removes from cached list.
	if _, err := s.reg.Objects("Profile").Filter("id", objs[0].ID()).Delete(); err != nil {
		t.Fatal(err)
	}
	objs, _ = s.reg.Objects("Profile").Filter("user_id", 7).All()
	if len(objs) != 1 {
		t.Fatalf("after delete = %d rows, want 1", len(objs))
	}
}

func TestCountQueryIncrementalUpdates(t *testing.T) {
	s := newStack(t)
	s.cacheable(t, Spec{
		Name: "wall_count", Class: CountQuery, MainModel: "Wall",
		WhereFields: []string{"user_id"},
	})
	for i := 0; i < 3; i++ {
		_, _ = s.reg.Insert("Wall", orm.Fields{"user_id": 1, "content": "x"})
	}
	n, err := s.reg.Objects("Wall").Filter("user_id", 1).Count()
	if err != nil || n != 3 {
		t.Fatalf("count = %d err=%v", n, err)
	}
	// Insert/delete adjust the cached count without a DB read.
	_, _ = s.reg.Insert("Wall", orm.Fields{"user_id": 1, "content": "y"})
	selBefore := s.db.Stats().Selects
	n, _ = s.reg.Objects("Wall").Filter("user_id", 1).Count()
	if n != 4 {
		t.Fatalf("count after insert = %d", n)
	}
	if s.db.Stats().Selects != selBefore {
		t.Fatal("count read hit the database")
	}
	_, _ = s.reg.Objects("Wall").Filter("user_id", 1).FilterOp("id", "<=", 2).Delete()
	n, _ = s.reg.Objects("Wall").Filter("user_id", 1).Count()
	if n != 2 {
		t.Fatalf("count after delete = %d", n)
	}
}

func topkSpec(k, reserve int) Spec {
	return Spec{
		Name: "latest_wall_posts", Class: TopKQuery, MainModel: "Wall",
		WhereFields: []string{"user_id"},
		SortField:   "date_posted", SortDesc: true, K: k, Reserve: reserve,
	}
}

func wallQS(s *stack, userID int, limit int) *orm.QuerySet {
	return s.reg.Objects("Wall").Filter("user_id", userID).OrderBy("-date_posted").Limit(limit)
}

func postAt(s *stack, t testing.TB, userID int, content string, at time.Time) orm.Object {
	o, err := s.reg.Insert("Wall", orm.Fields{
		"user_id": userID, "content": content, "date_posted": at,
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestTopKInsertMaintainsOrder(t *testing.T) {
	s := newStack(t)
	s.cacheable(t, topkSpec(3, 2))
	base := time.Unix(100000, 0)
	for i := 0; i < 5; i++ {
		postAt(s, t, 1, fmt.Sprintf("p%d", i), base.Add(time.Duration(i)*time.Minute))
	}
	objs, err := wallQS(s, 1, 3).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 || objs[0].Str("content") != "p4" {
		t.Fatalf("top = %v", objs)
	}
	// A new newest post must appear at the head, served from cache.
	postAt(s, t, 1, "newest", base.Add(time.Hour))
	selBefore := s.db.Stats().Selects
	objs, _ = wallQS(s, 1, 3).All()
	if objs[0].Str("content") != "newest" {
		t.Fatalf("head = %q", objs[0].Str("content"))
	}
	if s.db.Stats().Selects != selBefore {
		t.Fatal("top-K read hit the database after insert")
	}
	// A post older than the cached window must not disturb the top.
	postAt(s, t, 1, "ancient", base.Add(-time.Hour))
	objs, _ = wallQS(s, 1, 3).All()
	if objs[0].Str("content") != "newest" || len(objs) != 3 {
		t.Fatalf("after old insert: %v", objs)
	}
}

func TestTopKDeleteUsesReserveThenRecomputes(t *testing.T) {
	s := newStack(t)
	s.cacheable(t, topkSpec(3, 1))
	base := time.Unix(200000, 0)
	var posts []orm.Object
	for i := 0; i < 10; i++ {
		posts = append(posts, postAt(s, t, 1, fmt.Sprintf("p%d", i), base.Add(time.Duration(i)*time.Minute)))
	}
	// Warm: cache holds top 4 (K=3 + reserve=1), not exhaustive.
	if _, err := wallQS(s, 1, 3).All(); err != nil {
		t.Fatal(err)
	}
	// Delete the newest: reserve absorbs it, no recompute needed.
	_, _ = s.reg.Objects("Wall").Filter("id", posts[9].ID()).Delete()
	recBefore := s.g.Stats().Recomputes
	objs, _ := wallQS(s, 1, 3).All()
	if len(objs) != 3 || objs[0].Str("content") != "p8" {
		t.Fatalf("after delete: %v", objs)
	}
	if s.g.Stats().Recomputes != recBefore {
		t.Fatal("reserve should have absorbed the first delete")
	}
	// Delete two more: reserve exhausted; trigger must recompute from DB.
	_, _ = s.reg.Objects("Wall").Filter("id", posts[8].ID()).Delete()
	_, _ = s.reg.Objects("Wall").Filter("id", posts[7].ID()).Delete()
	objs, _ = wallQS(s, 1, 3).All()
	if len(objs) != 3 || objs[0].Str("content") != "p6" {
		t.Fatalf("after recompute: %v", objs)
	}
	if s.g.Stats().Recomputes == 0 {
		t.Fatal("expected a recompute")
	}
}

func TestTopKUpdateResorts(t *testing.T) {
	s := newStack(t)
	s.cacheable(t, topkSpec(5, 2))
	base := time.Unix(300000, 0)
	for i := 0; i < 5; i++ {
		postAt(s, t, 1, fmt.Sprintf("p%d", i), base.Add(time.Duration(i)*time.Minute))
	}
	_, _ = wallQS(s, 1, 5).All()
	// Bump p0's timestamp to the top.
	_, err := s.reg.Objects("Wall").Filter("user_id", 1).FilterOp("id", "<=", 1).
		Update(orm.Fields{"date_posted": base.Add(2 * time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	objs, _ := wallQS(s, 1, 5).All()
	if objs[0].Str("content") != "p0" {
		t.Fatalf("head = %q, want p0 after re-sort", objs[0].Str("content"))
	}
}

func linkSpec() Spec {
	return Spec{
		Name: "user_groups", Class: LinkQuery, MainModel: "Group",
		WhereFields: []string{"user_id"},
		Link: &Link{
			ThroughModel: "Membership", SourceField: "user_id",
			JoinField: "group_id", TargetField: "id",
		},
	}
}

func groupsOf(s *stack, userID int64) *orm.QuerySet {
	return s.reg.Objects("Group").
		Via("Membership", "user_id", "group_id", "id").
		Filter("user_id", userID)
}

func TestLinkQueryMembershipChanges(t *testing.T) {
	s := newStack(t)
	s.cacheable(t, linkSpec())
	gGo, _ := s.reg.Insert("Group", orm.Fields{"name": "go"})
	gDB, _ := s.reg.Insert("Group", orm.Fields{"name": "dbs"})
	m1, _ := s.reg.Insert("Membership", orm.Fields{"user_id": 1, "group_id": gGo.ID()})

	objs, err := groupsOf(s, 1).All()
	if err != nil || len(objs) != 1 || objs[0].Str("name") != "go" {
		t.Fatalf("objs=%v err=%v", objs, err)
	}
	// Join a second group: the through-table trigger appends the joined row.
	_, _ = s.reg.Insert("Membership", orm.Fields{"user_id": 1, "group_id": gDB.ID()})
	selBefore := s.db.Stats().Selects
	objs, _ = groupsOf(s, 1).All()
	if len(objs) != 2 {
		t.Fatalf("after join: %d groups", len(objs))
	}
	if s.db.Stats().Selects != selBefore {
		t.Fatal("link read hit the database after membership insert")
	}
	// Leave the first group.
	_, _ = s.reg.Objects("Membership").Filter("id", m1.ID()).Delete()
	objs, _ = groupsOf(s, 1).All()
	if len(objs) != 1 || objs[0].Str("name") != "dbs" {
		t.Fatalf("after leave: %v", objs)
	}
}

func TestLinkQueryTargetUpdatePropagates(t *testing.T) {
	s := newStack(t)
	s.cacheable(t, linkSpec())
	g1, _ := s.reg.Insert("Group", orm.Fields{"name": "oldname"})
	_, _ = s.reg.Insert("Membership", orm.Fields{"user_id": 1, "group_id": g1.ID()})
	_, _ = s.reg.Insert("Membership", orm.Fields{"user_id": 2, "group_id": g1.ID()})
	_, _ = groupsOf(s, 1).All()
	_, _ = groupsOf(s, 2).All()

	// Rename the group: both users' cached lists must reflect it.
	_, err := s.reg.Objects("Group").Filter("id", g1.ID()).Update(orm.Fields{"name": "newname"})
	if err != nil {
		t.Fatal(err)
	}
	for _, uid := range []int64{1, 2} {
		objs, _ := groupsOf(s, uid).All()
		if len(objs) != 1 || objs[0].Str("name") != "newname" {
			t.Fatalf("user %d sees %v", uid, objs)
		}
	}
	// Delete the group entirely.
	_, _ = s.reg.Objects("Group").Filter("id", g1.ID()).Delete()
	objs, _ := groupsOf(s, 1).All()
	if len(objs) != 0 {
		t.Fatalf("after group delete: %v", objs)
	}
}

func TestOpaqueObjectNotIntercepted(t *testing.T) {
	s := newStack(t)
	spec := profileSpec(UpdateInPlace)
	spec.Opaque = true
	co := s.cacheable(t, spec)
	_, _ = s.reg.Insert("Profile", orm.Fields{"user_id": 5, "bio": "x"})

	// Transparent path must go to the DB both times.
	selBefore := s.db.Stats().Selects
	_, _ = s.reg.Objects("Profile").Filter("user_id", 5).Get()
	_, _ = s.reg.Objects("Profile").Filter("user_id", 5).Get()
	if got := s.db.Stats().Selects - selBefore; got != 2 {
		t.Fatalf("SELECTs = %d, want 2 (opaque object not intercepted)", got)
	}
	// Manual evaluation uses the cache.
	rows, err := co.Rows(sqldb.I64(5))
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
	rows, _ = co.Rows(sqldb.I64(5))
	if len(rows) != 1 || s.g.Stats().Hits != 1 {
		t.Fatal("manual evaluate should hit the cache")
	}
}

func TestExpiryStrategyInstallsNoTriggers(t *testing.T) {
	s := newStack(t)
	spec := profileSpec(Expiry)
	spec.TTL = time.Minute
	co := s.cacheable(t, spec)
	if len(co.Triggers()) != 0 {
		t.Fatalf("expiry object installed %d triggers", len(co.Triggers()))
	}
	if n := len(s.db.Triggers("profiles", sqldb.TrigInsert)); n != 0 {
		t.Fatalf("%d DB triggers installed", n)
	}
}

func TestTriggerGenerationCounts(t *testing.T) {
	s := newStack(t)
	feature := s.cacheable(t, profileSpec(UpdateInPlace))
	link := s.cacheable(t, linkSpec())
	if n := len(feature.Triggers()); n != 3 {
		t.Fatalf("feature triggers = %d, want 3", n)
	}
	if n := len(link.Triggers()); n != 6 {
		t.Fatalf("link triggers = %d, want 6 (3 per underlying table)", n)
	}
	if lines := feature.TriggerSourceLines(); lines < 20 {
		t.Fatalf("feature trigger source only %d lines", lines)
	}
	for _, tr := range link.Triggers() {
		if tr.Source == "" {
			t.Fatalf("trigger %s has no source listing", tr.Name)
		}
	}
}

func TestDuplicateSpecRejected(t *testing.T) {
	s := newStack(t)
	s.cacheable(t, profileSpec(UpdateInPlace))
	if _, err := s.g.Cacheable(profileSpec(UpdateInPlace)); err == nil {
		t.Fatal("duplicate cached object accepted")
	}
}

func TestSpecValidation(t *testing.T) {
	s := newStack(t)
	bad := []Spec{
		{},
		{Name: "x"},
		{Name: "x", MainModel: "Profile"},
		{Name: "x", Class: FeatureQuery, MainModel: "Profile"},
		{Name: "x:y", Class: FeatureQuery, MainModel: "Profile", WhereFields: []string{"user_id"}},
		{Name: "x", Class: TopKQuery, MainModel: "Wall", WhereFields: []string{"user_id"}},
		{Name: "x", Class: LinkQuery, MainModel: "Group", WhereFields: []string{"user_id"}},
		{Name: "x", Class: FeatureQuery, MainModel: "Profile", WhereFields: []string{"no_such_field"}},
		{Name: "x", Class: FeatureQuery, MainModel: "NoModel", WhereFields: []string{"user_id"}},
		{Name: "x", Class: FeatureQuery, MainModel: "Profile", WhereFields: []string{"user_id"}, Strategy: Expiry},
	}
	for i, spec := range bad {
		if _, err := s.g.Cacheable(spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestEvictionFallsBackToDatabase(t *testing.T) {
	db := sqldb.MustOpen(sqldb.Config{})
	reg := orm.NewRegistry(db)
	reg.MustRegister(&orm.ModelDef{
		Name: "Profile", Table: "profiles",
		Fields: []orm.FieldDef{
			{Name: "user_id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "bio", Type: sqldb.TypeText},
		},
		Indexes: [][]string{{"user_id"}},
	})
	if err := reg.CreateTables(); err != nil {
		t.Fatal(err)
	}
	cache := kvcache.New(600) // tiny: a couple of entries
	g, err := New(Config{Registry: reg, DB: db, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Cacheable(profileSpec(UpdateInPlace)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		_, _ = reg.Insert("Profile", orm.Fields{"user_id": i, "bio": fmt.Sprintf("b%d", i)})
	}
	// Read all, forcing evictions, then read them back: answers must stay
	// correct via DB fallback.
	for round := 0; round < 2; round++ {
		for i := 1; i <= 20; i++ {
			o, err := reg.Objects("Profile").Filter("user_id", i).Get()
			if err != nil || o.Str("bio") != fmt.Sprintf("b%d", i) {
				t.Fatalf("round %d user %d: %v %v", round, i, o, err)
			}
		}
	}
	if cache.Stats().Evictions == 0 {
		t.Fatal("test did not exercise eviction")
	}
}

// TestNeverStaleProperty is the paper's core consistency claim: readers may
// see dirty (uncommitted) data but never stale data. After any committed
// write sequence, cached reads equal database reads.
func TestNeverStaleProperty(t *testing.T) {
	for _, strategy := range []Strategy{UpdateInPlace, Invalidate} {
		t.Run(strategy.String(), func(t *testing.T) {
			s := newStack(t)
			s.cacheable(t, profileSpec(strategy))
			s.cacheable(t, Spec{
				Name: "wall_count", Class: CountQuery, MainModel: "Wall",
				WhereFields: []string{"user_id"}, Strategy: strategy,
			})
			s.cacheable(t, topkSpec(5, 2))

			rng := rand.New(rand.NewSource(31))
			base := time.Unix(500000, 0)
			var wallIDs []int64
			for step := 0; step < 800; step++ {
				uid := 1 + rng.Intn(5)
				switch rng.Intn(10) {
				case 0, 1:
					_, _ = s.reg.Insert("Profile", orm.Fields{"user_id": uid, "bio": fmt.Sprintf("s%d", step)})
				case 2:
					_, _ = s.reg.Objects("Profile").Filter("user_id", uid).Update(orm.Fields{"bio": fmt.Sprintf("u%d", step)})
				case 3:
					_, _ = s.reg.Objects("Profile").Filter("user_id", uid).Delete()
				case 4, 5:
					o, err := s.reg.Insert("Wall", orm.Fields{
						"user_id": uid, "content": fmt.Sprintf("w%d", step),
						"date_posted": base.Add(time.Duration(rng.Intn(100000)) * time.Second),
					})
					if err == nil {
						wallIDs = append(wallIDs, o.ID())
					}
				case 6:
					if len(wallIDs) > 0 {
						id := wallIDs[rng.Intn(len(wallIDs))]
						_, _ = s.reg.Objects("Wall").Filter("id", id).Delete()
					}
				default:
					// Reads: cached result must equal NoCache result.
					objs, err := s.reg.Objects("Profile").Filter("user_id", uid).All()
					if err != nil {
						t.Fatal(err)
					}
					raw, err := s.reg.Objects("Profile").Filter("user_id", uid).NoCache().All()
					if err != nil {
						t.Fatal(err)
					}
					if len(objs) != len(raw) {
						t.Fatalf("step %d: cached %d rows, db %d rows", step, len(objs), len(raw))
					}
					n, _ := s.reg.Objects("Wall").Filter("user_id", uid).Count()
					nRaw, _ := s.reg.Objects("Wall").Filter("user_id", uid).NoCache().Count()
					if n != nRaw {
						t.Fatalf("step %d: cached count %d, db count %d", step, n, nRaw)
					}
					top, err := wallQS(s, uid, 5).All()
					if err != nil {
						t.Fatal(err)
					}
					topRaw, _ := wallQS(s, uid, 5).NoCache().All()
					if len(top) != len(topRaw) {
						t.Fatalf("step %d uid %d: cached top %d, db top %d", step, uid, len(top), len(topRaw))
					}
					for i := range top {
						if top[i].ID() != topRaw[i].ID() {
							t.Fatalf("step %d uid %d: top-k row %d differs: %d vs %d",
								step, uid, i, top[i].ID(), topRaw[i].ID())
						}
					}
				}
			}
		})
	}
}

func TestStatsExposed(t *testing.T) {
	s := newStack(t)
	s.cacheable(t, profileSpec(UpdateInPlace))
	_, _ = s.reg.Insert("Profile", orm.Fields{"user_id": 1, "bio": "x"})
	_, _ = s.reg.Objects("Profile").Filter("user_id", 1).Get()
	_, _ = s.reg.Objects("Profile").Filter("user_id", 1).Get()
	st := s.g.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(s.g.Objects()) != 1 {
		t.Fatalf("objects = %d", len(s.g.Objects()))
	}
}
