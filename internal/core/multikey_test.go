package core

import (
	"testing"

	"cachegenie/internal/orm"
	"cachegenie/internal/sqldb"
)

// TestMultiFieldWhereKey exercises cached objects keyed on two columns
// (like the social app's pending-invitations object) including a TEXT
// column that needs key escaping.
func TestMultiFieldWhereKey(t *testing.T) {
	s := newStack(t)
	db := s.db
	reg := s.reg
	reg.MustRegister(&orm.ModelDef{
		Name:  "Invite",
		Table: "invites",
		Fields: []orm.FieldDef{
			{Name: "to_user_id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "status", Type: sqldb.TypeText, NotNull: true},
			{Name: "message", Type: sqldb.TypeText},
		},
		Indexes: [][]string{{"to_user_id", "status"}},
	})
	if _, err := reg.Conn().Exec("CREATE TABLE invites (id BIGINT PRIMARY KEY, to_user_id BIGINT NOT NULL, status TEXT NOT NULL, message TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Conn().Exec("CREATE INDEX idx_inv ON invites (to_user_id, status)"); err != nil {
		t.Fatal(err)
	}
	co := s.cacheable(t, Spec{
		Name: "invites_by_status", Class: FeatureQuery, MainModel: "Invite",
		WhereFields: []string{"to_user_id", "status"},
	})

	// Status values containing key-delimiter characters must not collide.
	weird := "pending:stage 1"
	weirder := "pending%3Astage 1"
	k1 := co.MakeKey(sqldb.I64(1), sqldb.Str(weird))
	k2 := co.MakeKey(sqldb.I64(1), sqldb.Str(weirder))
	if k1 == k2 {
		t.Fatalf("escaped keys collide: %q", k1)
	}

	_, _ = reg.Insert("Invite", orm.Fields{"to_user_id": 1, "status": weird, "message": "a"})
	_, _ = reg.Insert("Invite", orm.Fields{"to_user_id": 1, "status": "accepted", "message": "b"})

	objs, err := reg.Objects("Invite").Filter("to_user_id", 1).Filter("status", weird).All()
	if err != nil || len(objs) != 1 || objs[0].Str("message") != "a" {
		t.Fatalf("objs=%v err=%v", objs, err)
	}
	// Served from cache on the second read.
	selBefore := db.Stats().Selects
	if _, err := reg.Objects("Invite").Filter("to_user_id", 1).Filter("status", weird).All(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Selects != selBefore {
		t.Fatal("second multi-key read hit the database")
	}
	// Status transition moves the row between keys.
	if _, err := reg.Objects("Invite").Filter("id", objs[0].ID()).
		Update(orm.Fields{"status": "accepted"}); err != nil {
		t.Fatal(err)
	}
	pending, _ := reg.Objects("Invite").Filter("to_user_id", 1).Filter("status", weird).All()
	if len(pending) != 0 {
		t.Fatalf("row did not leave the old key's list: %v", pending)
	}
	accepted, _ := reg.Objects("Invite").Filter("to_user_id", 1).Filter("status", "accepted").All()
	if len(accepted) != 2 {
		t.Fatalf("accepted list has %d rows, want 2", len(accepted))
	}
}

// TestFilterOrderDoesNotMatter: the interceptor matches equality filters by
// field name, not position.
func TestFilterOrderDoesNotMatter(t *testing.T) {
	s := newStack(t)
	s.cacheable(t, Spec{
		Name: "wall_by_user_sender", Class: FeatureQuery, MainModel: "Wall",
		WhereFields: []string{"user_id", "content"},
	})
	_, _ = s.reg.Insert("Wall", orm.Fields{"user_id": 3, "content": "x"})

	if _, err := s.reg.Objects("Wall").Filter("user_id", 3).Filter("content", "x").All(); err != nil {
		t.Fatal(err)
	}
	selBefore := s.db.Stats().Selects
	// Reversed filter order must hit the same cache entry.
	if _, err := s.reg.Objects("Wall").Filter("content", "x").Filter("user_id", 3).All(); err != nil {
		t.Fatal(err)
	}
	if s.db.Stats().Selects != selBefore {
		t.Fatal("reversed filter order missed the cache")
	}
}

// TestCountQueryNegativeGuard: counts can legitimately pass through zero
// when triggered deletes race reads; verify Incr handles negative deltas on
// a zero count without corrupting the entry.
func TestCountQueryDownToZero(t *testing.T) {
	s := newStack(t)
	s.cacheable(t, Spec{
		Name: "wall_count0", Class: CountQuery, MainModel: "Wall",
		WhereFields: []string{"user_id"},
	})
	o, _ := s.reg.Insert("Wall", orm.Fields{"user_id": 9, "content": "only"})
	n, _ := s.reg.Objects("Wall").Filter("user_id", 9).Count()
	if n != 1 {
		t.Fatalf("count = %d", n)
	}
	_, _ = s.reg.Objects("Wall").Filter("id", o.ID()).Delete()
	n, _ = s.reg.Objects("Wall").Filter("user_id", 9).Count()
	if n != 0 {
		t.Fatalf("count after delete = %d", n)
	}
	// And back up.
	_, _ = s.reg.Insert("Wall", orm.Fields{"user_id": 9, "content": "again"})
	n, _ = s.reg.Objects("Wall").Filter("user_id", 9).Count()
	if n != 1 {
		t.Fatalf("count after reinsert = %d", n)
	}
}
