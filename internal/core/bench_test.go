package core

import (
	"fmt"
	"testing"
	"time"

	"cachegenie/internal/orm"
)

// BenchmarkCachedReadVsDirect contrasts the intercepted cache-hit path with
// the NoCache direct path for the same query, in-process (no injected
// latency): the middleware's own overhead.
func BenchmarkCachedReadVsDirect(b *testing.B) {
	b.Run("cached", func(b *testing.B) {
		s := newStack(b)
		s.cacheable(b, profileSpec(UpdateInPlace))
		_, _ = s.reg.Insert("Profile", orm.Fields{"user_id": 1, "bio": "x"})
		if _, err := s.reg.Objects("Profile").Filter("user_id", 1).Get(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.reg.Objects("Profile").Filter("user_id", 1).Get(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		s := newStack(b)
		_, _ = s.reg.Insert("Profile", orm.Fields{"user_id": 1, "bio": "x"})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.reg.Objects("Profile").Filter("user_id", 1).Get(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTriggerMaintenanceWrite measures the write-side cost of cache
// maintenance per strategy.
func BenchmarkTriggerMaintenanceWrite(b *testing.B) {
	for _, strategy := range []Strategy{UpdateInPlace, Invalidate} {
		b.Run(strategy.String(), func(b *testing.B) {
			s := newStack(b)
			s.cacheable(b, profileSpec(strategy))
			_, _ = s.reg.Insert("Profile", orm.Fields{"user_id": 1, "bio": "x"})
			if _, err := s.reg.Objects("Profile").Filter("user_id", 1).Get(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.reg.Objects("Profile").Filter("user_id", 1).
					Update(orm.Fields{"bio": fmt.Sprintf("v%d", i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTopKTriggerInsert measures the ordered-list maintenance on the
// paper's running example.
func BenchmarkTopKTriggerInsert(b *testing.B) {
	s := newStack(b)
	s.cacheable(b, topkSpec(20, 5))
	base := time.Unix(1e6, 0)
	postAt(s, b, 1, "seed", base)
	if _, err := wallQS(s, 1, 20).All(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.reg.Insert("Wall", orm.Fields{
			"user_id": 1, "content": "p",
			"date_posted": base.Add(time.Duration(i) * time.Second),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPayloadCodec measures the cache payload round trip for a
// typical 20-row top-K list.
func BenchmarkPayloadCodec(b *testing.B) {
	s := newStack(b)
	s.cacheable(b, topkSpec(20, 5))
	base := time.Unix(1e6, 0)
	for i := 0; i < 25; i++ {
		postAt(s, b, 1, fmt.Sprintf("post-%d", i), base.Add(time.Duration(i)*time.Minute))
	}
	rows, err := wallQS(s, 1, 20).NoCache().All()
	if err != nil {
		b.Fatal(err)
	}
	m, _ := s.reg.Model("Wall")
	p := payload{exhaustive: false}
	for _, o := range rows {
		p.rows = append(p.rows, s.reg.ObjectToRow(m, o))
	}
	enc := encodePayload(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc2 := encodePayload(p)
		if _, err := decodePayload(enc2); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(enc)))
}
