package core

import (
	"fmt"
	"strings"

	"cachegenie/internal/invbus"
	"cachegenie/internal/kvcache"
	"cachegenie/internal/sqldb"
)

// maxCasRetries bounds the gets/cas retry loop in update-in-place triggers.
// On exhaustion the trigger falls back to invalidating the key, which is
// always safe.
const maxCasRetries = 16

// installTriggers generates this object's triggers and installs them in the
// database engine.
func (co *CachedObject) installTriggers() error {
	co.triggers = co.generateTriggers()
	for _, tr := range co.triggers {
		if err := co.g.db.CreateTrigger(tr); err != nil {
			return fmt.Errorf("core: installing trigger %s: %w", tr.Name, err)
		}
	}
	return nil
}

// generateTriggers builds the trigger set for the cached object: three
// triggers (INSERT/UPDATE/DELETE) on every table underlying the cached
// query (paper §3.2). Expiry-strategy objects need no triggers.
func (co *CachedObject) generateTriggers() []sqldb.Trigger {
	if co.spec.Strategy == Expiry {
		return nil
	}
	mk := func(table string, op sqldb.TriggerOp, fn sqldb.TriggerFunc, reads ...string) sqldb.Trigger {
		return sqldb.Trigger{
			Name:        fmt.Sprintf("cg_%s_%s_%s", co.spec.Name, table, opSuffix(op)),
			Table:       table,
			Op:          op,
			Fn:          fn,
			Source:      co.triggerSource(table, op),
			ReadsTables: reads,
		}
	}
	var out []sqldb.Trigger
	switch co.spec.Class {
	case FeatureQuery:
		t := co.model.Table
		out = append(out,
			mk(t, sqldb.TrigInsert, co.featureTrigger(sqldb.TrigInsert)),
			mk(t, sqldb.TrigUpdate, co.featureTrigger(sqldb.TrigUpdate)),
			mk(t, sqldb.TrigDelete, co.featureTrigger(sqldb.TrigDelete)),
		)
	case CountQuery:
		t := co.model.Table
		out = append(out,
			mk(t, sqldb.TrigInsert, co.countTrigger(sqldb.TrigInsert)),
			mk(t, sqldb.TrigUpdate, co.countTrigger(sqldb.TrigUpdate)),
			mk(t, sqldb.TrigDelete, co.countTrigger(sqldb.TrigDelete)),
		)
	case TopKQuery:
		t := co.model.Table
		// Delete and update may recompute the list from the trigger's own
		// table; the statement already holds it exclusively.
		out = append(out,
			mk(t, sqldb.TrigInsert, co.topkTrigger(sqldb.TrigInsert)),
			mk(t, sqldb.TrigUpdate, co.topkTrigger(sqldb.TrigUpdate), t),
			mk(t, sqldb.TrigDelete, co.topkTrigger(sqldb.TrigDelete), t),
		)
	case LinkQuery:
		th := co.linkThrough.Table
		tg := co.model.Table
		// Relation-table triggers fetch joined target rows; target-table
		// triggers reverse-map through the relation table.
		out = append(out,
			mk(th, sqldb.TrigInsert, co.linkThroughTrigger(sqldb.TrigInsert), tg),
			mk(th, sqldb.TrigUpdate, co.linkThroughTrigger(sqldb.TrigUpdate), tg),
			mk(th, sqldb.TrigDelete, co.linkThroughTrigger(sqldb.TrigDelete), tg),
			mk(tg, sqldb.TrigInsert, co.linkTargetTrigger(sqldb.TrigInsert), th),
			mk(tg, sqldb.TrigUpdate, co.linkTargetTrigger(sqldb.TrigUpdate), th),
			mk(tg, sqldb.TrigDelete, co.linkTargetTrigger(sqldb.TrigDelete), th),
		)
	}
	return out
}

func opSuffix(op sqldb.TriggerOp) string {
	switch op {
	case sqldb.TrigInsert:
		return "ins"
	case sqldb.TrigUpdate:
		return "upd"
	default:
		return "del"
	}
}

// keyFromRow builds the cache key from a row using the given field index.
func (co *CachedObject) keyFromRow(row sqldb.Row, idx map[string]int, fields []string) string {
	vals := make([]sqldb.Value, len(fields))
	for i, f := range fields {
		vals[i] = row[idx[f]]
	}
	return co.MakeKey(vals...)
}

// whereValsFromRow extracts the lookup values from a main-model row.
func (co *CachedObject) whereValsFromRow(row sqldb.Row) []sqldb.Value {
	vals := make([]sqldb.Value, len(co.spec.WhereFields))
	for i, f := range co.spec.WhereFields {
		vals[i] = row[co.colIdx[f]]
	}
	return vals
}

// invalidateKey deletes a key (the invalidate strategy's whole job). In
// async mode the delete rides the invalidation bus; redundant pending
// deletes of the same key coalesce there into one.
func (co *CachedObject) invalidateKey(key string) {
	g := co.g
	if g.bus != nil {
		g.bus.Publish(invbus.Op{Kind: invbus.OpDelete, Key: key, Done: func(r invbus.Result) {
			if r.Found {
				g.trigDeletes.Add(1)
			} else {
				g.trigSkips.Add(1)
			}
		}})
		return
	}
	g.chargeTriggerConnect()
	if g.cache.Delete(key) {
		g.trigDeletes.Add(1)
	} else {
		g.trigSkips.Add(1)
	}
}

// casMutate applies the paper's gets -> modify -> cas exchange against key:
// synchronously (after charging the trigger's connection cost), or as a
// CAS-update descriptor on the invalidation bus in async mode, where the
// shard worker runs it amortized and in per-key publish order.
func (co *CachedObject) casMutate(key string, fn func(p *payload) bool) {
	g := co.g
	if g.bus != nil {
		g.bus.Publish(invbus.Op{Kind: invbus.OpCasUpdate, Key: key, Update: func(c kvcache.Cache) {
			co.casLoop(c, key, fn)
		}})
		return
	}
	g.chargeTriggerConnect()
	co.casLoop(g.cache, key, fn)
}

// casLoop is the gets -> modify -> cas retry loop. fn mutates the decoded
// payload and reports whether anything changed. If the key is absent the
// trigger quits (the paper's behaviour: uncached entries are repopulated on
// the next read miss). Retries on CAS conflicts; falls back to invalidation
// if the conflict persists.
func (co *CachedObject) casLoop(c kvcache.Cache, key string, fn func(p *payload) bool) {
	g := co.g
	for attempt := 0; ; attempt++ {
		raw, tok, ok := c.Gets(key)
		if !ok {
			g.trigSkips.Add(1)
			return
		}
		p, err := decodePayload(raw)
		if err != nil {
			c.Delete(key)
			g.trigDeletes.Add(1)
			return
		}
		if !fn(&p) {
			return
		}
		switch c.Cas(key, encodePayload(p), co.ttl(), tok) {
		case kvcache.CasStored:
			g.trigUpdates.Add(1)
			return
		case kvcache.CasNotFound:
			g.trigSkips.Add(1)
			return
		case kvcache.CasConflict:
			g.casRetries.Add(1)
			if attempt >= maxCasRetries {
				c.Delete(key)
				g.trigDeletes.Add(1)
				return
			}
		}
	}
}

// ---------- FeatureQuery ----------

// featureTrigger keeps "rows of M where WhereFields = vals" entries in sync.
// Feature payloads are always exhaustive, so rows can be edited in place.
func (co *CachedObject) featureTrigger(op sqldb.TriggerOp) sqldb.TriggerFunc {
	return func(q sqldb.Queryer, ev sqldb.TriggerEvent) error {
		switch op {
		case sqldb.TrigInsert:
			key := co.keyFromRow(ev.New, co.colIdx, co.spec.WhereFields)
			if co.spec.Strategy == Invalidate {
				co.invalidateKey(key)
				return nil
			}
			co.casMutate(key, func(p *payload) bool {
				if findRowByPK(p.rows, rowPK(ev.New)) >= 0 {
					return false
				}
				p.rows = append(p.rows, ev.New)
				return true
			})
		case sqldb.TrigDelete:
			key := co.keyFromRow(ev.Old, co.colIdx, co.spec.WhereFields)
			if co.spec.Strategy == Invalidate {
				co.invalidateKey(key)
				return nil
			}
			co.casMutate(key, func(p *payload) bool {
				i := findRowByPK(p.rows, rowPK(ev.Old))
				if i < 0 {
					return false
				}
				p.rows = removeRowAt(p.rows, i)
				return true
			})
		case sqldb.TrigUpdate:
			oldKey := co.keyFromRow(ev.Old, co.colIdx, co.spec.WhereFields)
			newKey := co.keyFromRow(ev.New, co.colIdx, co.spec.WhereFields)
			if co.spec.Strategy == Invalidate {
				co.invalidateKey(oldKey)
				if newKey != oldKey {
					co.invalidateKey(newKey)
				}
				return nil
			}
			if oldKey == newKey {
				co.casMutate(newKey, func(p *payload) bool {
					i := findRowByPK(p.rows, rowPK(ev.New))
					if i < 0 {
						p.rows = append(p.rows, ev.New)
					} else {
						p.rows[i] = ev.New
					}
					return true
				})
				return nil
			}
			co.casMutate(oldKey, func(p *payload) bool {
				i := findRowByPK(p.rows, rowPK(ev.Old))
				if i < 0 {
					return false
				}
				p.rows = removeRowAt(p.rows, i)
				return true
			})
			co.casMutate(newKey, func(p *payload) bool {
				if findRowByPK(p.rows, rowPK(ev.New)) >= 0 {
					return false
				}
				p.rows = append(p.rows, ev.New)
				return true
			})
		}
		return nil
	}
}

// ---------- CountQuery ----------

// countTrigger maintains COUNT(*) entries with atomic increments; counts
// need no CAS because Incr is atomic at the cache.
func (co *CachedObject) countTrigger(op sqldb.TriggerOp) sqldb.TriggerFunc {
	bump := func(key string, delta int64) {
		g := co.g
		if co.spec.Strategy == Invalidate {
			co.invalidateKey(key)
			return
		}
		if g.bus != nil {
			// Adjacent pending increments on the same key merge on the bus.
			g.bus.Publish(invbus.Op{Kind: invbus.OpIncr, Key: key, Delta: delta, Done: func(r invbus.Result) {
				if r.Found {
					g.trigUpdates.Add(1)
				} else {
					g.trigSkips.Add(1)
				}
			}})
			return
		}
		g.chargeTriggerConnect()
		if _, ok := g.cache.Incr(key, delta); ok {
			g.trigUpdates.Add(1)
		} else {
			g.trigSkips.Add(1)
		}
	}
	return func(q sqldb.Queryer, ev sqldb.TriggerEvent) error {
		switch op {
		case sqldb.TrigInsert:
			bump(co.keyFromRow(ev.New, co.colIdx, co.spec.WhereFields), 1)
		case sqldb.TrigDelete:
			bump(co.keyFromRow(ev.Old, co.colIdx, co.spec.WhereFields), -1)
		case sqldb.TrigUpdate:
			oldKey := co.keyFromRow(ev.Old, co.colIdx, co.spec.WhereFields)
			newKey := co.keyFromRow(ev.New, co.colIdx, co.spec.WhereFields)
			if oldKey != newKey {
				bump(oldKey, -1)
				bump(newKey, 1)
			}
		}
		return nil
	}
}

// ---------- TopKQuery ----------

// sortCompare orders a before b per the spec's sort direction. Ties keep
// insertion order (stable).
func (co *CachedObject) sortBefore(a, b sqldb.Value) bool {
	c := sqldb.Compare(a, b)
	if co.spec.SortDesc {
		return c > 0
	}
	return c < 0
}

func (co *CachedObject) sortVal(row sqldb.Row) sqldb.Value {
	return row[co.colIdx[co.spec.SortField]]
}

// topkInsertLocked inserts row into the ordered list, returning whether the
// payload changed.
func (co *CachedObject) topkInsert(p *payload, row sqldb.Row) bool {
	limit := co.spec.K + co.spec.reserve()
	pos := len(p.rows)
	for i, r := range p.rows {
		if co.sortBefore(co.sortVal(row), co.sortVal(r)) {
			pos = i
			break
		}
	}
	if pos == len(p.rows) {
		if len(p.rows) >= limit && !p.exhaustive {
			// Row sorts below the cached window; the window is unaffected.
			return false
		}
		p.rows = append(p.rows, row)
	} else {
		p.rows = insertRowAt(p.rows, pos, row)
	}
	if len(p.rows) > limit {
		p.rows = p.rows[:limit]
		p.exhaustive = false
	}
	return true
}

// recomputeTopK refreshes the whole list from the database — the paper's
// fallback when the reserve is exhausted by deletes.
func (co *CachedObject) recomputeTopK(q sqldb.Queryer, key string, vals []sqldb.Value) {
	rows, exhaustive, err := co.fetchFromDB(q, vals)
	if err != nil {
		// Can't recompute: drop the key so readers repopulate.
		co.g.cache.Delete(key)
		co.g.trigDeletes.Add(1)
		return
	}
	co.g.recomputes.Add(1)
	co.g.cache.Set(key, encodePayload(payload{exhaustive: exhaustive, rows: rows}), co.ttl())
	co.g.trigUpdates.Add(1)
}

// topkRemoveAndRepair removes old's row from key's cached list and repairs
// reserve exhaustion. In sync mode the repair recomputes the list inside the
// trigger's own transaction (the paper's fallback); in async mode that
// transaction is gone by the time the bus applies the op, so the key is
// dropped instead and the next read miss repopulates it.
func (co *CachedObject) topkRemoveAndRepair(q sqldb.Queryer, key string, old sqldb.Row) {
	g := co.g
	remove := func(p *payload, need *bool) bool {
		i := findRowByPK(p.rows, rowPK(old))
		if i < 0 {
			return false
		}
		p.rows = removeRowAt(p.rows, i)
		if len(p.rows) < co.spec.K && !p.exhaustive {
			*need = true
		}
		return true
	}
	if g.bus != nil {
		g.bus.Publish(invbus.Op{Kind: invbus.OpCasUpdate, Key: key, Update: func(c kvcache.Cache) {
			need := false
			co.casLoop(c, key, func(p *payload) bool { return remove(p, &need) })
			if need && c.Delete(key) {
				g.trigDeletes.Add(1)
			}
		}})
		return
	}
	g.chargeTriggerConnect()
	need := false
	co.casLoop(g.cache, key, func(p *payload) bool { return remove(p, &need) })
	if need {
		co.recomputeTopK(q, key, co.whereValsFromRow(old))
	}
}

func (co *CachedObject) topkTrigger(op sqldb.TriggerOp) sqldb.TriggerFunc {
	return func(q sqldb.Queryer, ev sqldb.TriggerEvent) error {
		switch op {
		case sqldb.TrigInsert:
			key := co.keyFromRow(ev.New, co.colIdx, co.spec.WhereFields)
			if co.spec.Strategy == Invalidate {
				co.invalidateKey(key)
				return nil
			}
			co.casMutate(key, func(p *payload) bool {
				if findRowByPK(p.rows, rowPK(ev.New)) >= 0 {
					return false
				}
				return co.topkInsert(p, ev.New)
			})
		case sqldb.TrigDelete:
			key := co.keyFromRow(ev.Old, co.colIdx, co.spec.WhereFields)
			if co.spec.Strategy == Invalidate {
				co.invalidateKey(key)
				return nil
			}
			co.topkRemoveAndRepair(q, key, ev.Old)
		case sqldb.TrigUpdate:
			oldKey := co.keyFromRow(ev.Old, co.colIdx, co.spec.WhereFields)
			newKey := co.keyFromRow(ev.New, co.colIdx, co.spec.WhereFields)
			if co.spec.Strategy == Invalidate {
				co.invalidateKey(oldKey)
				if newKey != oldKey {
					co.invalidateKey(newKey)
				}
				return nil
			}
			if oldKey != newKey {
				// Moved between lists: delete from old, insert into new.
				co.topkRemoveAndRepair(q, oldKey, ev.Old)
				co.casMutate(newKey, func(p *payload) bool {
					if findRowByPK(p.rows, rowPK(ev.New)) >= 0 {
						return false
					}
					return co.topkInsert(p, ev.New)
				})
				return nil
			}
			co.casMutate(newKey, func(p *payload) bool {
				i := findRowByPK(p.rows, rowPK(ev.New))
				if i < 0 {
					return false
				}
				if sqldb.Compare(co.sortVal(ev.Old), co.sortVal(ev.New)) == 0 {
					// Sort position unchanged: update the row in place
					// (the paper: "UPDATE triggers simply update the
					// corresponding post if it finds it in the cached list").
					p.rows[i] = ev.New
					return true
				}
				p.rows = removeRowAt(p.rows, i)
				co.topkInsert(p, ev.New)
				return true
			})
		}
		return nil
	}
}

// ---------- LinkQuery ----------

// linkFetchTarget reads the target row(s) joined by joinVal, using the
// enclosing transaction so locks are shared.
func (co *CachedObject) linkFetchTarget(q sqldb.Queryer, joinVal sqldb.Value) ([]sqldb.Row, error) {
	cols := make([]string, 0, len(co.model.Fields)+1)
	for _, c := range co.model.FieldNames() {
		cols = append(cols, c)
	}
	sql := fmt.Sprintf("SELECT %s FROM %s WHERE %s = $1",
		strings.Join(cols, ", "), co.model.Table, co.spec.Link.TargetField)
	rs, err := q.Query(sql, joinVal)
	if err != nil {
		return nil, err
	}
	return rs.Rows, nil
}

// linkSources finds the source values whose cached lists contain the target
// row joined by joinVal (reverse lookup through the relation table).
func (co *CachedObject) linkSources(q sqldb.Queryer, joinVal sqldb.Value) ([]sqldb.Value, error) {
	l := co.spec.Link
	sql := fmt.Sprintf("SELECT %s FROM %s WHERE %s = $1",
		l.SourceField, co.linkThrough.Table, l.JoinField)
	rs, err := q.Query(sql, joinVal)
	if err != nil {
		return nil, err
	}
	out := make([]sqldb.Value, len(rs.Rows))
	for i, r := range rs.Rows {
		out[i] = r[0]
	}
	return out, nil
}

// targetFieldVal extracts the joined column from a target row.
func (co *CachedObject) targetFieldVal(row sqldb.Row) sqldb.Value {
	return row[co.colIdx[co.spec.Link.TargetField]]
}

// linkThroughTrigger reacts to relation-table changes: a membership insert
// adds the joined target row to the source's cached list.
func (co *CachedObject) linkThroughTrigger(op sqldb.TriggerOp) sqldb.TriggerFunc {
	l := co.spec.Link
	srcIdx := func() int { return co.throughIdx[l.SourceField] }
	jfIdx := func() int { return co.throughIdx[l.JoinField] }

	addTo := func(q sqldb.Queryer, srcVal, joinVal sqldb.Value) error {
		key := co.MakeKey(srcVal)
		if co.spec.Strategy == Invalidate {
			co.invalidateKey(key)
			return nil
		}
		// Fetch the joined target row before entering the CAS loop; the
		// enclosing statement's lock keeps it stable.
		targets, err := co.linkFetchTarget(q, joinVal)
		if err != nil {
			return err
		}
		if len(targets) == 0 {
			return nil // dangling reference; nothing joins
		}
		co.casMutate(key, func(p *payload) bool {
			for _, t := range targets {
				p.rows = append(p.rows, t)
			}
			return len(targets) > 0
		})
		return nil
	}
	removeFrom := func(srcVal, joinVal sqldb.Value) {
		key := co.MakeKey(srcVal)
		if co.spec.Strategy == Invalidate {
			co.invalidateKey(key)
			return
		}
		co.casMutate(key, func(p *payload) bool {
			for i, r := range p.rows {
				if sqldb.Equal(co.targetFieldVal(r), joinVal) {
					p.rows = removeRowAt(p.rows, i)
					return true
				}
			}
			return false
		})
	}

	return func(q sqldb.Queryer, ev sqldb.TriggerEvent) error {
		switch op {
		case sqldb.TrigInsert:
			return addTo(q, ev.New[srcIdx()], ev.New[jfIdx()])
		case sqldb.TrigDelete:
			removeFrom(ev.Old[srcIdx()], ev.Old[jfIdx()])
		case sqldb.TrigUpdate:
			oldSrc, newSrc := ev.Old[srcIdx()], ev.New[srcIdx()]
			oldJF, newJF := ev.Old[jfIdx()], ev.New[jfIdx()]
			if sqldb.Compare(oldSrc, newSrc) == 0 && sqldb.Compare(oldJF, newJF) == 0 {
				return nil
			}
			removeFrom(oldSrc, oldJF)
			return addTo(q, newSrc, newJF)
		}
		return nil
	}
}

// linkTargetTrigger reacts to target-table changes; it reverse-maps the row
// to affected source lists through the relation table.
func (co *CachedObject) linkTargetTrigger(op sqldb.TriggerOp) sqldb.TriggerFunc {
	forEachSource := func(q sqldb.Queryer, joinVal sqldb.Value, apply func(key string)) error {
		sources, err := co.linkSources(q, joinVal)
		if err != nil {
			return err
		}
		seen := map[string]bool{}
		for _, src := range sources {
			key := co.MakeKey(src)
			if seen[key] {
				continue
			}
			seen[key] = true
			apply(key)
		}
		return nil
	}
	return func(q sqldb.Queryer, ev sqldb.TriggerEvent) error {
		switch op {
		case sqldb.TrigInsert:
			// A fresh target row joins any pre-existing relation rows that
			// reference it (relation inserted before target).
			return forEachSource(q, co.targetFieldVal(ev.New), func(key string) {
				if co.spec.Strategy == Invalidate {
					co.invalidateKey(key)
					return
				}
				co.casMutate(key, func(p *payload) bool {
					if findRowByPK(p.rows, rowPK(ev.New)) >= 0 {
						return false
					}
					p.rows = append(p.rows, ev.New)
					return true
				})
			})
		case sqldb.TrigUpdate:
			return forEachSource(q, co.targetFieldVal(ev.Old), func(key string) {
				if co.spec.Strategy == Invalidate {
					co.invalidateKey(key)
					return
				}
				co.casMutate(key, func(p *payload) bool {
					changed := false
					for i, r := range p.rows {
						if rowPK(r) == rowPK(ev.New) {
							p.rows[i] = ev.New
							changed = true
						}
					}
					return changed
				})
			})
		case sqldb.TrigDelete:
			return forEachSource(q, co.targetFieldVal(ev.Old), func(key string) {
				if co.spec.Strategy == Invalidate {
					co.invalidateKey(key)
					return
				}
				co.casMutate(key, func(p *payload) bool {
					changed := false
					for i := len(p.rows) - 1; i >= 0; i-- {
						if rowPK(p.rows[i]) == rowPK(ev.Old) {
							p.rows = removeRowAt(p.rows, i)
							changed = true
						}
					}
					return changed
				})
			})
		}
		return nil
	}
}
