package core

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"cachegenie/internal/sqldb"
)

// payload is the cached value for row-valued cached objects: the raw result
// rows plus, for top-K lists, whether the list is exhaustive (contains every
// matching row in the database, so deletes never require recomputation).
type payload struct {
	exhaustive bool
	rows       []sqldb.Row
}

const payloadVersion = 1

// encodePayload serializes a payload for the cache.
func encodePayload(p payload) []byte {
	out := make([]byte, 0, 64)
	out = append(out, payloadVersion)
	if p.exhaustive {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(p.rows)))
	out = append(out, tmp[:n]...)
	for _, r := range p.rows {
		enc := sqldb.EncodeRow(nil, r)
		n := binary.PutUvarint(tmp[:], uint64(len(enc)))
		out = append(out, tmp[:n]...)
		out = append(out, enc...)
	}
	return out
}

// decodePayload parses an encodePayload value.
func decodePayload(b []byte) (payload, error) {
	var p payload
	if len(b) < 2 {
		return p, fmt.Errorf("core: payload too short (%d bytes)", len(b))
	}
	if b[0] != payloadVersion {
		return p, fmt.Errorf("core: payload version %d unsupported", b[0])
	}
	p.exhaustive = b[1] == 1
	b = b[2:]
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return p, fmt.Errorf("core: bad payload row count")
	}
	b = b[n:]
	p.rows = make([]sqldb.Row, 0, count)
	for i := uint64(0); i < count; i++ {
		l, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < l {
			return p, fmt.Errorf("core: truncated payload row %d", i)
		}
		b = b[n:]
		row, err := sqldb.DecodeRow(b[:l])
		if err != nil {
			return p, err
		}
		b = b[l:]
		p.rows = append(p.rows, row)
	}
	return p, nil
}

// keyEscape makes a value safe for embedding in a cache key.
func keyEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, " ", "%20")
	return s
}

// keyValue renders one lookup value for a cache key.
func keyValue(v sqldb.Value) string {
	if v.Null {
		return "~null~"
	}
	switch v.Type {
	case sqldb.TypeInt, sqldb.TypeBool, sqldb.TypeTime:
		return strconv.FormatInt(v.I, 10)
	case sqldb.TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return keyEscape(v.S)
	}
}

// rowPK extracts the primary key from a row in model schema order (the PK is
// always column 0 for ORM-managed tables).
func rowPK(r sqldb.Row) int64 { return r[0].I }

// findRowByPK returns the index of the row with the given primary key,
// or -1.
func findRowByPK(rows []sqldb.Row, pk int64) int {
	for i, r := range rows {
		if rowPK(r) == pk {
			return i
		}
	}
	return -1
}

// removeRowAt deletes index i preserving order.
func removeRowAt(rows []sqldb.Row, i int) []sqldb.Row {
	return append(rows[:i:i], rows[i+1:]...)
}

// insertRowAt inserts r at index i preserving order.
func insertRowAt(rows []sqldb.Row, i int, r sqldb.Row) []sqldb.Row {
	rows = append(rows, nil)
	copy(rows[i+1:], rows[i:])
	rows[i] = r
	return rows
}
