package sqlparse

import (
	"fmt"
	"strings"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmt()
	// String renders the statement back to SQL (normalized); used for
	// logging and for the template-based invalidation baseline, which keys
	// on query templates.
	String() string
}

// ColumnRef names a column, optionally qualified by table.
type ColumnRef struct {
	Table  string // empty if unqualified
	Column string
}

// String implements fmt.Stringer.
func (c ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// Literal is a typed constant value in the AST.
type Literal struct {
	// Kind is one of "int", "float", "string", "bool", "null".
	Kind   string
	Int    int64
	Float  float64
	Str    string
	Bool   bool
	Negate bool // set for unary minus on numbers
}

// String implements fmt.Stringer.
func (l Literal) String() string {
	switch l.Kind {
	case "int":
		if l.Negate {
			return fmt.Sprintf("-%d", l.Int)
		}
		return fmt.Sprintf("%d", l.Int)
	case "float":
		if l.Negate {
			return fmt.Sprintf("-%g", l.Float)
		}
		return fmt.Sprintf("%g", l.Float)
	case "string":
		return "'" + strings.ReplaceAll(l.Str, "'", "''") + "'"
	case "bool":
		if l.Bool {
			return "TRUE"
		}
		return "FALSE"
	case "null":
		return "NULL"
	}
	return "?"
}

// Expr is a scalar expression: a literal, parameter, column reference, or
// col +/- literal (the arithmetic needed for incremental count updates).
type Expr struct {
	// Exactly one of the following is set.
	Lit   *Literal
	Param int        // 1-based parameter index; 0 means unset
	Col   *ColumnRef // column reference

	// Optional arithmetic: Col (Op) operand, with Op in {+, -}. The
	// operand is either a literal or a parameter.
	Op           byte // '+', '-', or 0
	Operand      *Literal
	OperandParam int // 1-based parameter index; 0 means Operand is set
}

// String implements fmt.Stringer.
func (e Expr) String() string {
	switch {
	case e.Lit != nil:
		return e.Lit.String()
	case e.Param != 0:
		return fmt.Sprintf("$%d", e.Param)
	case e.Col != nil:
		s := e.Col.String()
		if e.Op != 0 {
			if e.OperandParam != 0 {
				s = fmt.Sprintf("%s %c $%d", s, e.Op, e.OperandParam)
			} else {
				s = fmt.Sprintf("%s %c %s", s, e.Op, e.Operand.String())
			}
		}
		return s
	}
	return "<nil>"
}

// CompareOp is a comparison operator in a predicate.
type CompareOp int

// Comparison operators.
const (
	OpEq CompareOp = iota
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
)

var opNames = map[CompareOp]string{
	OpEq: "=", OpNeq: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
}

// String implements fmt.Stringer.
func (o CompareOp) String() string { return opNames[o] }

// Predicate is a boolean WHERE-clause tree.
type Predicate interface {
	pred()
	String() string
}

// Compare is `col op expr`.
type Compare struct {
	Col ColumnRef
	Op  CompareOp
	Rhs Expr
}

func (*Compare) pred() {}

// String implements fmt.Stringer.
func (c *Compare) String() string {
	return fmt.Sprintf("%s %s %s", c.Col, c.Op, c.Rhs)
}

// In is `col IN (e1, e2, ...)`.
type In struct {
	Col  ColumnRef
	List []Expr
}

func (*In) pred() {}

// String implements fmt.Stringer.
func (i *In) String() string {
	parts := make([]string, len(i.List))
	for j, e := range i.List {
		parts[j] = e.String()
	}
	return fmt.Sprintf("%s IN (%s)", i.Col, strings.Join(parts, ", "))
}

// IsNull is `col IS [NOT] NULL`.
type IsNull struct {
	Col ColumnRef
	Not bool
}

func (*IsNull) pred() {}

// String implements fmt.Stringer.
func (n *IsNull) String() string {
	if n.Not {
		return fmt.Sprintf("%s IS NOT NULL", n.Col)
	}
	return fmt.Sprintf("%s IS NULL", n.Col)
}

// And is a conjunction.
type And struct{ L, R Predicate }

func (*And) pred() {}

// String implements fmt.Stringer.
func (a *And) String() string { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }

// Or is a disjunction.
type Or struct{ L, R Predicate }

func (*Or) pred() {}

// String implements fmt.Stringer.
func (o *Or) String() string { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }

// JoinClause is `JOIN table ON left = right`.
type JoinClause struct {
	Table string
	Left  ColumnRef
	Right ColumnRef
}

// OrderBy is one ORDER BY term.
type OrderBy struct {
	Col  ColumnRef
	Desc bool
}

// Select is a SELECT statement.
type Select struct {
	// Columns selected; empty plus Star=true means `*`. CountStar means
	// `COUNT(*)` (Columns then empty).
	Columns   []ColumnRef
	Star      bool
	CountStar bool
	From      string
	Joins     []JoinClause
	Where     Predicate
	Order     []OrderBy
	Limit     int // -1 when absent
	Offset    int // 0 when absent
}

func (*Select) stmt() {}

// String implements fmt.Stringer.
func (s *Select) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	switch {
	case s.CountStar:
		sb.WriteString("COUNT(*)")
	case s.Star:
		sb.WriteString("*")
	default:
		for i, c := range s.Columns {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.String())
		}
	}
	sb.WriteString(" FROM ")
	sb.WriteString(s.From)
	for _, j := range s.Joins {
		fmt.Fprintf(&sb, " JOIN %s ON %s = %s", j.Table, j.Left, j.Right)
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(s.Where.String())
	}
	if len(s.Order) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.Order {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Col.String())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", s.Limit)
	}
	if s.Offset > 0 {
		fmt.Fprintf(&sb, " OFFSET %d", s.Offset)
	}
	return sb.String()
}

// Insert is an INSERT statement.
type Insert struct {
	Table   string
	Columns []string
	Values  []Expr
	// Returning lists columns to return from the inserted row (used by the
	// ORM to learn auto-assigned IDs). Only plain column names.
	Returning []string
}

func (*Insert) stmt() {}

// String implements fmt.Stringer.
func (ins *Insert) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "INSERT INTO %s (%s) VALUES (", ins.Table, strings.Join(ins.Columns, ", "))
	for i, v := range ins.Values {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteString(")")
	if len(ins.Returning) > 0 {
		fmt.Fprintf(&sb, " RETURNING %s", strings.Join(ins.Returning, ", "))
	}
	return sb.String()
}

// Assignment is one SET clause of an UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

// Update is an UPDATE statement.
type Update struct {
	Table string
	Set   []Assignment
	Where Predicate
}

func (*Update) stmt() {}

// String implements fmt.Stringer.
func (u *Update) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "UPDATE %s SET ", u.Table)
	for i, a := range u.Set {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s = %s", a.Column, a.Value.String())
	}
	if u.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(u.Where.String())
	}
	return sb.String()
}

// Delete is a DELETE statement.
type Delete struct {
	Table string
	Where Predicate
}

func (*Delete) stmt() {}

// String implements fmt.Stringer.
func (d *Delete) String() string {
	s := "DELETE FROM " + d.Table
	if d.Where != nil {
		s += " WHERE " + d.Where.String()
	}
	return s
}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       string // INT, BIGINT, TEXT, BOOL, FLOAT, TIMESTAMP
	NotNull    bool
	PrimaryKey bool
}

// CreateTable is a CREATE TABLE statement.
type CreateTable struct {
	Table   string
	Columns []ColumnDef
}

func (*CreateTable) stmt() {}

// String implements fmt.Stringer.
func (c *CreateTable) String() string {
	parts := make([]string, len(c.Columns))
	for i, col := range c.Columns {
		s := col.Name + " " + col.Type
		if col.PrimaryKey {
			s += " PRIMARY KEY"
		}
		if col.NotNull {
			s += " NOT NULL"
		}
		parts[i] = s
	}
	return fmt.Sprintf("CREATE TABLE %s (%s)", c.Table, strings.Join(parts, ", "))
}

// CreateIndex is a CREATE [UNIQUE] INDEX statement.
type CreateIndex struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

func (*CreateIndex) stmt() {}

// String implements fmt.Stringer.
func (c *CreateIndex) String() string {
	u := ""
	if c.Unique {
		u = "UNIQUE "
	}
	return fmt.Sprintf("CREATE %sINDEX %s ON %s (%s)", u, c.Name, c.Table, strings.Join(c.Columns, ", "))
}

// Begin starts a transaction.
type Begin struct{}

func (*Begin) stmt() {}

// String implements fmt.Stringer.
func (*Begin) String() string { return "BEGIN" }

// Commit commits a transaction.
type Commit struct{}

func (*Commit) stmt() {}

// String implements fmt.Stringer.
func (*Commit) String() string { return "COMMIT" }

// Rollback aborts a transaction.
type Rollback struct{}

func (*Rollback) stmt() {}

// String implements fmt.Stringer.
func (*Rollback) String() string { return "ROLLBACK" }

// Template returns the statement's *query template*: its SQL text with every
// literal and parameter replaced by '?'. Template-based invalidation systems
// (GlobeCBC, paper §2) match update templates against cached-query templates;
// our baseline in internal/templateinv keys on this.
func Template(s Statement) string {
	switch st := s.(type) {
	case *Select:
		c := *st
		c.Where = templatePred(st.Where)
		return c.String()
	case *Insert:
		c := *st
		vals := make([]Expr, len(st.Values))
		for i := range vals {
			vals[i] = Expr{Param: i + 1}
		}
		c.Values = vals
		s2 := c.String()
		return paramWipe(s2)
	case *Update:
		c := *st
		set := make([]Assignment, len(st.Set))
		for i, a := range st.Set {
			set[i] = Assignment{Column: a.Column, Value: Expr{Param: i + 1}}
		}
		c.Set = set
		c.Where = templatePred(st.Where)
		return paramWipe(c.String())
	case *Delete:
		c := *st
		c.Where = templatePred(st.Where)
		return paramWipe(c.String())
	default:
		return s.String()
	}
}

// paramWipe replaces $N placeholders with '?' so templates with different
// parameter numbering compare equal.
func paramWipe(s string) string {
	var sb strings.Builder
	i := 0
	for i < len(s) {
		if s[i] == '$' {
			sb.WriteByte('?')
			i++
			for i < len(s) && isDigit(s[i]) {
				i++
			}
			continue
		}
		sb.WriteByte(s[i])
		i++
	}
	return sb.String()
}

func templatePred(p Predicate) Predicate {
	switch q := p.(type) {
	case nil:
		return nil
	case *Compare:
		return &Compare{Col: q.Col, Op: q.Op, Rhs: Expr{Param: 1}}
	case *In:
		return &In{Col: q.Col, List: []Expr{{Param: 1}}}
	case *IsNull:
		return q
	case *And:
		return &And{L: templatePred(q.L), R: templatePred(q.R)}
	case *Or:
		return &Or{L: templatePred(q.L), R: templatePred(q.R)}
	}
	return p
}
