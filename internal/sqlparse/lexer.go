// Package sqlparse implements the SQL dialect understood by the sqldb
// engine: a lexer, an AST, and a recursive-descent parser covering the
// statements an ORM emits (CREATE TABLE/INDEX, SELECT with joins, ORDER BY
// and LIMIT, INSERT, UPDATE, DELETE, and transaction control).
//
// The dialect is the subset of PostgreSQL that Django generates for the
// query patterns CacheGenie caches (paper §3.1): feature queries, link
// (join) queries, count queries, and top-K queries.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokParam // $1, $2, ... or ?
	TokLParen
	TokRParen
	TokComma
	TokDot
	TokStar
	TokSemi
	TokEq
	TokNeq
	TokLt
	TokLe
	TokGt
	TokGe
	TokPlus
	TokMinus
)

var kindNames = map[TokenKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokKeyword: "keyword",
	TokNumber: "number", TokString: "string", TokParam: "parameter",
	TokLParen: "'('", TokRParen: "')'", TokComma: "','", TokDot: "'.'",
	TokStar: "'*'", TokSemi: "';'", TokEq: "'='", TokNeq: "'!='",
	TokLt: "'<'", TokLe: "'<='", TokGt: "'>'", TokGe: "'>='",
	TokPlus: "'+'", TokMinus: "'-'",
}

// String implements fmt.Stringer.
func (k TokenKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is one lexical token. Text holds the raw text (keywords are
// upper-cased; identifiers are lower-cased; string literals are unquoted).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the input
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "INDEX": true, "UNIQUE": true, "ON": true, "JOIN": true,
	"INNER": true, "ORDER": true, "BY": true, "ASC": true, "DESC": true,
	"LIMIT": true, "OFFSET": true, "COUNT": true, "AS": true,
	"PRIMARY": true, "KEY": true, "NULL": true, "TRUE": true, "FALSE": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "DROP": true,
	"INT": true, "BIGINT": true, "TEXT": true, "BOOL": true, "BOOLEAN": true,
	"FLOAT": true, "DOUBLE": true, "TIMESTAMP": true, "DATE": true,
	"VARCHAR": true, "IS": true, "RETURNING": true, "DEFAULT": true,
}

// SyntaxError describes a lexing or parsing failure.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sql syntax error at offset %d: %s", e.Pos, e.Msg)
}

func errf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Lex tokenizes input.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	paramSeq := 0
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, Token{TokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, Token{TokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, Token{TokComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, Token{TokDot, ".", i})
			i++
		case c == '*':
			toks = append(toks, Token{TokStar, "*", i})
			i++
		case c == ';':
			toks = append(toks, Token{TokSemi, ";", i})
			i++
		case c == '+':
			toks = append(toks, Token{TokPlus, "+", i})
			i++
		case c == '=':
			toks = append(toks, Token{TokEq, "=", i})
			i++
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{TokNeq, "!=", i})
				i += 2
			} else {
				return nil, errf(i, "unexpected '!'")
			}
		case c == '<':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{TokLe, "<=", i})
				i += 2
			} else if i+1 < n && input[i+1] == '>' {
				toks = append(toks, Token{TokNeq, "<>", i})
				i += 2
			} else {
				toks = append(toks, Token{TokLt, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{TokGe, ">=", i})
				i += 2
			} else {
				toks = append(toks, Token{TokGt, ">", i})
				i++
			}
		case c == '?':
			toks = append(toks, Token{TokParam, fmt.Sprintf("%d", paramSeq+1), i})
			paramSeq++
			i++
		case c == '$':
			j := i + 1
			for j < n && isDigit(input[j]) {
				j++
			}
			if j == i+1 {
				return nil, errf(i, "bare '$'")
			}
			toks = append(toks, Token{TokParam, input[i+1 : j], i})
			i = j
		case c == '\'':
			var sb strings.Builder
			j := i + 1
			closed := false
			for j < n {
				if input[j] == '\'' {
					if j+1 < n && input[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					closed = true
					j++
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			if !closed {
				return nil, errf(i, "unterminated string literal")
			}
			toks = append(toks, Token{TokString, sb.String(), i})
			i = j
		case c == '-':
			if i+1 < n && input[i+1] == '-' { // line comment
				for i < n && input[i] != '\n' {
					i++
				}
				continue
			}
			toks = append(toks, Token{TokMinus, "-", i})
			i++
		case isDigit(c):
			j := i
			for j < n && (isDigit(input[j]) || input[j] == '.') {
				j++
			}
			toks = append(toks, Token{TokNumber, input[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentRune(rune(input[j])) {
				j++
			}
			word := input[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{TokKeyword, up, i})
			} else {
				toks = append(toks, Token{TokIdent, strings.ToLower(word), i})
			}
			i = j
		default:
			return nil, errf(i, "unexpected character %q", c)
		}
	}
	toks = append(toks, Token{TokEOF, "", n})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
