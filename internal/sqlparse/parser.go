package sqlparse

import (
	"strconv"
	"strings"
)

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokSemi {
		p.next()
	}
	if p.peek().Kind != TokEOF {
		return nil, errf(p.peek().Pos, "trailing input after statement: %q", p.peek().Text)
	}
	return st, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

// acceptKw consumes the next token if it is the given keyword.
func (p *parser) acceptKw(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return errf(p.peek().Pos, "expected %s, got %q", kw, p.peek().Text)
	}
	return nil
}

func (p *parser) expect(k TokenKind) (Token, error) {
	if t := p.peek(); t.Kind == k {
		return p.next(), nil
	}
	return Token{}, errf(p.peek().Pos, "expected %s, got %q", k, p.peek().Text)
}

// ident accepts an identifier; some keywords double as identifiers in
// column positions (e.g. a column named "date" or "count"), so we accept a
// small allowlist of keywords too.
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.Kind == TokIdent {
		p.next()
		return t.Text, nil
	}
	if t.Kind == TokKeyword {
		switch t.Text {
		case "DATE", "COUNT", "KEY", "ORDER", "DEFAULT":
			p.next()
			return strings.ToLower(t.Text), nil
		}
	}
	return "", errf(t.Pos, "expected identifier, got %q", t.Text)
}

func (p *parser) statement() (Statement, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return nil, errf(t.Pos, "expected statement keyword, got %q", t.Text)
	}
	switch t.Text {
	case "SELECT":
		return p.selectStmt()
	case "INSERT":
		return p.insertStmt()
	case "UPDATE":
		return p.updateStmt()
	case "DELETE":
		return p.deleteStmt()
	case "CREATE":
		return p.createStmt()
	case "BEGIN":
		p.next()
		return &Begin{}, nil
	case "COMMIT":
		p.next()
		return &Commit{}, nil
	case "ROLLBACK":
		p.next()
		return &Rollback{}, nil
	}
	return nil, errf(t.Pos, "unsupported statement %q", t.Text)
}

// columnRef parses ident [. ident].
func (p *parser) columnRef() (ColumnRef, error) {
	first, err := p.ident()
	if err != nil {
		return ColumnRef{}, err
	}
	if p.peek().Kind == TokDot {
		p.next()
		second, err := p.ident()
		if err != nil {
			return ColumnRef{}, err
		}
		return ColumnRef{Table: first, Column: second}, nil
	}
	return ColumnRef{Column: first}, nil
}

func (p *parser) selectStmt() (Statement, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	switch {
	case p.peek().Kind == TokStar:
		p.next()
		sel.Star = true
	case p.peek().Kind == TokKeyword && p.peek().Text == "COUNT":
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokStar); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		sel.CountStar = true
	default:
		for {
			c, err := p.columnRef()
			if err != nil {
				return nil, err
			}
			sel.Columns = append(sel.Columns, c)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	from, err := p.ident()
	if err != nil {
		return nil, err
	}
	sel.From = from
	for {
		if p.acceptKw("INNER") {
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.acceptKw("JOIN") {
			break
		}
		jt, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		left, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokEq); err != nil {
			return nil, err
		}
		right, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, JoinClause{Table: jt, Left: left, Right: right})
	}
	if p.acceptKw("WHERE") {
		w, err := p.predicate()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.columnRef()
			if err != nil {
				return nil, err
			}
			ob := OrderBy{Col: c}
			if p.acceptKw("DESC") {
				ob.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			sel.Order = append(sel.Order, ob)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}
	if p.acceptKw("LIMIT") {
		n, err := p.intLiteral()
		if err != nil {
			return nil, err
		}
		sel.Limit = int(n)
	}
	if p.acceptKw("OFFSET") {
		n, err := p.intLiteral()
		if err != nil {
			return nil, err
		}
		sel.Offset = int(n)
	}
	return sel, nil
}

func (p *parser) intLiteral() (int64, error) {
	t, err := p.expect(TokNumber)
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, errf(t.Pos, "bad integer %q", t.Text)
	}
	return n, nil
}

// predicate parses OR-separated conjunctions.
func (p *parser) predicate() (Predicate, error) {
	left, err := p.conjunction()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		right, err := p.conjunction()
		if err != nil {
			return nil, err
		}
		left = &Or{L: left, R: right}
	}
	return left, nil
}

func (p *parser) conjunction() (Predicate, error) {
	left, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		right, err := p.term()
		if err != nil {
			return nil, err
		}
		left = &And{L: left, R: right}
	}
	return left, nil
}

func (p *parser) term() (Predicate, error) {
	if p.peek().Kind == TokLParen {
		p.next()
		inner, err := p.predicate()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	}
	col, err := p.columnRef()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	switch t.Kind {
	case TokEq, TokNeq, TokLt, TokLe, TokGt, TokGe:
		p.next()
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		op := map[TokenKind]CompareOp{
			TokEq: OpEq, TokNeq: OpNeq, TokLt: OpLt,
			TokLe: OpLe, TokGt: OpGt, TokGe: OpGe,
		}[t.Kind]
		return &Compare{Col: col, Op: op, Rhs: rhs}, nil
	case TokKeyword:
		switch t.Text {
		case "IN":
			p.next()
			if _, err := p.expect(TokLParen); err != nil {
				return nil, err
			}
			var list []Expr
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				if p.peek().Kind != TokComma {
					break
				}
				p.next()
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return &In{Col: col, List: list}, nil
		case "IS":
			p.next()
			not := p.acceptKw("NOT")
			if err := p.expectKw("NULL"); err != nil {
				return nil, err
			}
			return &IsNull{Col: col, Not: not}, nil
		}
	}
	return nil, errf(t.Pos, "expected comparison operator, got %q", t.Text)
}

// expr parses a literal, parameter, or column reference with optional +/-
// literal arithmetic.
func (p *parser) expr() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		lit, err := numberLiteral(t, false)
		if err != nil {
			return Expr{}, err
		}
		return Expr{Lit: lit}, nil
	case TokMinus:
		p.next()
		nt, err := p.expect(TokNumber)
		if err != nil {
			return Expr{}, err
		}
		lit, err := numberLiteral(nt, true)
		if err != nil {
			return Expr{}, err
		}
		return Expr{Lit: lit}, nil
	case TokString:
		p.next()
		return Expr{Lit: &Literal{Kind: "string", Str: t.Text}}, nil
	case TokParam:
		p.next()
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 1 {
			return Expr{}, errf(t.Pos, "bad parameter $%s", t.Text)
		}
		return Expr{Param: n}, nil
	case TokKeyword:
		switch t.Text {
		case "TRUE":
			p.next()
			return Expr{Lit: &Literal{Kind: "bool", Bool: true}}, nil
		case "FALSE":
			p.next()
			return Expr{Lit: &Literal{Kind: "bool", Bool: false}}, nil
		case "NULL":
			p.next()
			return Expr{Lit: &Literal{Kind: "null"}}, nil
		}
	}
	// Column reference, possibly with arithmetic.
	col, err := p.columnRef()
	if err != nil {
		return Expr{}, err
	}
	e := Expr{Col: &col}
	if k := p.peek().Kind; k == TokPlus || k == TokMinus {
		op := byte('+')
		if k == TokMinus {
			op = '-'
		}
		p.next()
		if pt := p.peek(); pt.Kind == TokParam {
			p.next()
			n, err := strconv.Atoi(pt.Text)
			if err != nil || n < 1 {
				return Expr{}, errf(pt.Pos, "bad parameter $%s", pt.Text)
			}
			e.Op = op
			e.OperandParam = n
			return e, nil
		}
		nt, err := p.expect(TokNumber)
		if err != nil {
			return Expr{}, err
		}
		lit, err := numberLiteral(nt, false)
		if err != nil {
			return Expr{}, err
		}
		e.Op = op
		e.Operand = lit
	}
	return e, nil
}

func numberLiteral(t Token, negate bool) (*Literal, error) {
	if strings.Contains(t.Text, ".") {
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad float %q", t.Text)
		}
		if negate {
			f = -f
		}
		return &Literal{Kind: "float", Float: f, Negate: false}, nil
	}
	n, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return nil, errf(t.Pos, "bad integer %q", t.Text)
	}
	if negate {
		n = -n
	}
	return &Literal{Kind: "int", Int: n}, nil
}

func (p *parser) insertStmt() (Statement, error) {
	if err := p.expectKw("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		ins.Columns = append(ins.Columns, c)
		if p.peek().Kind != TokComma {
			break
		}
		p.next()
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		ins.Values = append(ins.Values, e)
		if p.peek().Kind != TokComma {
			break
		}
		p.next()
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if len(ins.Values) != len(ins.Columns) {
		return nil, errf(p.peek().Pos, "INSERT has %d columns but %d values",
			len(ins.Columns), len(ins.Values))
	}
	if p.acceptKw("RETURNING") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Returning = append(ins.Returning, c)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}
	return ins, nil
}

func (p *parser) updateStmt() (Statement, error) {
	if err := p.expectKw("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	up := &Update{Table: table}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokEq); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, Assignment{Column: col, Value: e})
		if p.peek().Kind != TokComma {
			break
		}
		p.next()
	}
	if p.acceptKw("WHERE") {
		w, err := p.predicate()
		if err != nil {
			return nil, err
		}
		up.Where = w
	}
	return up, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	if err := p.expectKw("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.acceptKw("WHERE") {
		w, err := p.predicate()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

func (p *parser) createStmt() (Statement, error) {
	if err := p.expectKw("CREATE"); err != nil {
		return nil, err
	}
	unique := p.acceptKw("UNIQUE")
	switch {
	case p.acceptKw("TABLE"):
		if unique {
			return nil, errf(p.peek().Pos, "UNIQUE TABLE is not a thing")
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		ct := &CreateTable{Table: table}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			typTok := p.next()
			if typTok.Kind != TokKeyword {
				return nil, errf(typTok.Pos, "expected column type, got %q", typTok.Text)
			}
			typ := typTok.Text
			switch typ {
			case "INT", "BIGINT", "TEXT", "BOOL", "BOOLEAN", "FLOAT",
				"DOUBLE", "TIMESTAMP", "DATE", "VARCHAR":
			default:
				return nil, errf(typTok.Pos, "unsupported column type %q", typ)
			}
			if typ == "VARCHAR" && p.peek().Kind == TokLParen {
				// VARCHAR(n): accept and ignore the length.
				p.next()
				if _, err := p.expect(TokNumber); err != nil {
					return nil, err
				}
				if _, err := p.expect(TokRParen); err != nil {
					return nil, err
				}
			}
			cd := ColumnDef{Name: name, Type: typ}
			for {
				if p.acceptKw("PRIMARY") {
					if err := p.expectKw("KEY"); err != nil {
						return nil, err
					}
					cd.PrimaryKey = true
					continue
				}
				if p.acceptKw("NOT") {
					if err := p.expectKw("NULL"); err != nil {
						return nil, err
					}
					cd.NotNull = true
					continue
				}
				break
			}
			ct.Columns = append(ct.Columns, cd)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return ct, nil
	case p.acceptKw("INDEX"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		ci := &CreateIndex{Name: name, Table: table, Unique: unique}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			ci.Columns = append(ci.Columns, c)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return ci, nil
	}
	return nil, errf(p.peek().Pos, "expected TABLE or INDEX after CREATE")
}
