package sqlparse

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return st
}

func TestParseSelectStar(t *testing.T) {
	st := mustParse(t, "SELECT * FROM users WHERE id = 42")
	sel, ok := st.(*Select)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if !sel.Star || sel.From != "users" {
		t.Fatalf("sel = %+v", sel)
	}
	cmp, ok := sel.Where.(*Compare)
	if !ok || cmp.Col.Column != "id" || cmp.Op != OpEq || cmp.Rhs.Lit.Int != 42 {
		t.Fatalf("where = %#v", sel.Where)
	}
}

func TestParseSelectColumns(t *testing.T) {
	st := mustParse(t, "SELECT id, name, email FROM users")
	sel := st.(*Select)
	if len(sel.Columns) != 3 || sel.Columns[1].Column != "name" {
		t.Fatalf("cols = %v", sel.Columns)
	}
}

func TestParseJoinChain(t *testing.T) {
	sql := "SELECT g.id, g.name FROM membership JOIN groups ON membership.group_id = groups.id JOIN users ON membership.user_id = users.id WHERE users.id = $1"
	sel := mustParse(t, sql).(*Select)
	if len(sel.Joins) != 2 {
		t.Fatalf("joins = %v", sel.Joins)
	}
	if sel.Joins[0].Table != "groups" || sel.Joins[0].Left.Table != "membership" {
		t.Fatalf("join[0] = %+v", sel.Joins[0])
	}
	cmp := sel.Where.(*Compare)
	if cmp.Rhs.Param != 1 {
		t.Fatalf("param = %d", cmp.Rhs.Param)
	}
}

func TestParseOrderLimitOffset(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM wall WHERE user_id = 7 ORDER BY date_posted DESC, id ASC LIMIT 20 OFFSET 5").(*Select)
	if len(sel.Order) != 2 || !sel.Order[0].Desc || sel.Order[1].Desc {
		t.Fatalf("order = %+v", sel.Order)
	}
	if sel.Limit != 20 || sel.Offset != 5 {
		t.Fatalf("limit/offset = %d/%d", sel.Limit, sel.Offset)
	}
}

func TestParseCountStar(t *testing.T) {
	sel := mustParse(t, "SELECT COUNT(*) FROM friends WHERE user_id = $1").(*Select)
	if !sel.CountStar {
		t.Fatal("CountStar not set")
	}
}

func TestParseInPredicate(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t WHERE uid IN (1, 2, 3)").(*Select)
	in := sel.Where.(*In)
	if len(in.List) != 3 || in.List[2].Lit.Int != 3 {
		t.Fatalf("in = %+v", in)
	}
}

func TestParseAndOrPrecedence(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t WHERE a = 1 AND b = 2 OR c = 3").(*Select)
	// AND binds tighter: (a=1 AND b=2) OR c=3.
	or, ok := sel.Where.(*Or)
	if !ok {
		t.Fatalf("top = %T", sel.Where)
	}
	if _, ok := or.L.(*And); !ok {
		t.Fatalf("left = %T", or.L)
	}
}

func TestParseParens(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t WHERE a = 1 AND (b = 2 OR c = 3)").(*Select)
	and, ok := sel.Where.(*And)
	if !ok {
		t.Fatalf("top = %T", sel.Where)
	}
	if _, ok := and.R.(*Or); !ok {
		t.Fatalf("right = %T", and.R)
	}
}

func TestParseIsNull(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t WHERE deleted_at IS NULL AND x IS NOT NULL").(*Select)
	and := sel.Where.(*And)
	if n := and.L.(*IsNull); n.Not {
		t.Fatal("left should be IS NULL")
	}
	if n := and.R.(*IsNull); !n.Not {
		t.Fatal("right should be IS NOT NULL")
	}
}

func TestParseInsert(t *testing.T) {
	ins := mustParse(t, "INSERT INTO wall (user_id, content, date_posted) VALUES ($1, 'hi ''there''', 1700000000) RETURNING id").(*Insert)
	if ins.Table != "wall" || len(ins.Columns) != 3 {
		t.Fatalf("ins = %+v", ins)
	}
	if ins.Values[1].Lit.Str != "hi 'there'" {
		t.Fatalf("string literal = %q", ins.Values[1].Lit.Str)
	}
	if len(ins.Returning) != 1 || ins.Returning[0] != "id" {
		t.Fatalf("returning = %v", ins.Returning)
	}
}

func TestParseInsertArityMismatch(t *testing.T) {
	if _, err := Parse("INSERT INTO t (a, b) VALUES (1)"); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestParseUpdateArithmetic(t *testing.T) {
	up := mustParse(t, "UPDATE counters SET n = n + 1, label = 'x' WHERE id = 9").(*Update)
	if len(up.Set) != 2 {
		t.Fatalf("set = %+v", up.Set)
	}
	a := up.Set[0]
	if a.Value.Col == nil || a.Value.Op != '+' || a.Value.Operand.Int != 1 {
		t.Fatalf("assignment = %+v", a)
	}
}

func TestParseDelete(t *testing.T) {
	del := mustParse(t, "DELETE FROM friends WHERE from_user_id = $1 AND to_user_id = $2").(*Delete)
	if del.Table != "friends" {
		t.Fatalf("table = %s", del.Table)
	}
	if _, ok := del.Where.(*And); !ok {
		t.Fatalf("where = %T", del.Where)
	}
}

func TestParseCreateTable(t *testing.T) {
	ct := mustParse(t, `CREATE TABLE wall (
		id BIGINT PRIMARY KEY,
		user_id BIGINT NOT NULL,
		content TEXT,
		score FLOAT,
		posted TIMESTAMP,
		public BOOL
	)`).(*CreateTable)
	if ct.Table != "wall" || len(ct.Columns) != 6 {
		t.Fatalf("ct = %+v", ct)
	}
	if !ct.Columns[0].PrimaryKey || !ct.Columns[1].NotNull {
		t.Fatalf("col flags wrong: %+v", ct.Columns[:2])
	}
}

func TestParseCreateTableVarchar(t *testing.T) {
	ct := mustParse(t, "CREATE TABLE u (name VARCHAR(120) NOT NULL)").(*CreateTable)
	if ct.Columns[0].Type != "VARCHAR" {
		t.Fatalf("type = %s", ct.Columns[0].Type)
	}
}

func TestParseCreateIndex(t *testing.T) {
	ci := mustParse(t, "CREATE UNIQUE INDEX idx_wall_user ON wall (user_id, date_posted)").(*CreateIndex)
	if !ci.Unique || ci.Table != "wall" || len(ci.Columns) != 2 {
		t.Fatalf("ci = %+v", ci)
	}
}

func TestParseTxnControl(t *testing.T) {
	if _, ok := mustParse(t, "BEGIN").(*Begin); !ok {
		t.Fatal("BEGIN")
	}
	if _, ok := mustParse(t, "COMMIT;").(*Commit); !ok {
		t.Fatal("COMMIT")
	}
	if _, ok := mustParse(t, "ROLLBACK").(*Rollback); !ok {
		t.Fatal("ROLLBACK")
	}
}

func TestParseQuestionMarkParams(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t WHERE a = ? AND b = ?").(*Select)
	and := sel.Where.(*And)
	if and.L.(*Compare).Rhs.Param != 1 || and.R.(*Compare).Rhs.Param != 2 {
		t.Fatal("? params not numbered sequentially")
	}
}

func TestParseKeywordishColumnNames(t *testing.T) {
	// "date" and "count" are common column names that are also keywords.
	sel := mustParse(t, "SELECT date, count FROM stats ORDER BY date").(*Select)
	if sel.Columns[0].Column != "date" || sel.Columns[1].Column != "count" {
		t.Fatalf("cols = %v", sel.Columns)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELEC * FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE a >",
		"INSERT INTO t VALUES (1)",
		"UPDATE t SET",
		"CREATE TABLE t (a BLOB)",
		"SELECT * FROM t; SELECT * FROM u",
		"SELECT * FROM t WHERE a = 'unterminated",
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestRoundTripString(t *testing.T) {
	// Statement -> String -> Parse -> String must be a fixed point.
	cases := []string{
		"SELECT * FROM users WHERE id = 42",
		"SELECT id, name FROM users WHERE age >= 18 ORDER BY name LIMIT 10",
		"SELECT COUNT(*) FROM friends WHERE user_id = $1",
		"INSERT INTO t (a, b) VALUES (1, 'x')",
		"UPDATE t SET a = a + 1 WHERE id = 3",
		"DELETE FROM t WHERE a = 1",
	}
	for _, sql := range cases {
		st1 := mustParse(t, sql)
		s1 := st1.String()
		st2 := mustParse(t, s1)
		if s2 := st2.String(); s1 != s2 {
			t.Errorf("not a fixed point:\n  %s\n  %s", s1, s2)
		}
	}
}

func TestTemplate(t *testing.T) {
	a := mustParse(t, "SELECT * FROM users WHERE id = 42")
	b := mustParse(t, "SELECT * FROM users WHERE id = 43")
	c := mustParse(t, "SELECT * FROM users WHERE email = 'x'")
	if Template(a) != Template(b) {
		t.Fatalf("same-template queries differ:\n%s\n%s", Template(a), Template(b))
	}
	if Template(a) == Template(c) {
		t.Fatal("different-template queries match")
	}
	u1 := mustParse(t, "UPDATE profiles SET bio = 'a' WHERE user_id = 1")
	u2 := mustParse(t, "UPDATE profiles SET bio = 'b' WHERE user_id = 2")
	if Template(u1) != Template(u2) {
		t.Fatal("update templates differ")
	}
	if strings.Contains(Template(u1), "'a'") {
		t.Fatal("template leaked literal")
	}
}

func TestLexComments(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t -- trailing comment\nWHERE a = 1").(*Select)
	if sel.Where == nil {
		t.Fatal("comment swallowed WHERE clause")
	}
}
