package kvcache

import (
	"fmt"
	"testing"
	"time"
)

// TestExpiredEntriesFreeMemory verifies that lazily-expired entries release
// their byte accounting so they stop crowding out live data.
func TestExpiredEntriesFreeMemory(t *testing.T) {
	now := time.Unix(5000, 0)
	s := New(0, WithClock(func() time.Time { return now }))
	for i := 0; i < 10; i++ {
		s.Set(fmt.Sprintf("short-%d", i), make([]byte, 100), time.Second)
	}
	used := s.Stats().BytesUsed
	if used == 0 {
		t.Fatal("nothing accounted")
	}
	now = now.Add(time.Minute)
	// Touch each key to reap it.
	for i := 0; i < 10; i++ {
		if _, ok := s.Get(fmt.Sprintf("short-%d", i)); ok {
			t.Fatal("expired entry served")
		}
	}
	if got := s.Stats().BytesUsed; got != 0 {
		t.Fatalf("expired entries still account %d bytes", got)
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d", s.Len())
	}
}

// TestTTLRefreshOnSet verifies that rewriting a key resets its expiry.
func TestTTLRefreshOnSet(t *testing.T) {
	now := time.Unix(6000, 0)
	s := New(0, WithClock(func() time.Time { return now }))
	s.Set("k", []byte("v1"), 10*time.Second)
	now = now.Add(8 * time.Second)
	s.Set("k", []byte("v2"), 10*time.Second) // refresh
	now = now.Add(8 * time.Second)           // 16s after first set, 8s after refresh
	v, ok := s.Get("k")
	if !ok || string(v) != "v2" {
		t.Fatalf("refreshed key gone: %q %v", v, ok)
	}
}

// TestCasOnExpiredKeyIsNotFound: an expired entry must act exactly like a
// deleted one for CAS (triggers fall back to skip, not corrupt).
func TestCasOnExpiredKeyIsNotFound(t *testing.T) {
	now := time.Unix(7000, 0)
	s := New(0, WithClock(func() time.Time { return now }))
	s.Set("k", []byte("v"), time.Second)
	_, tok, ok := s.Gets("k")
	if !ok {
		t.Fatal("fresh Gets failed")
	}
	now = now.Add(time.Minute)
	if r := s.Cas("k", []byte("new"), 0, tok); r != CasNotFound {
		t.Fatalf("Cas on expired key = %v, want NOT_FOUND", r)
	}
}

// TestEvictionPrefersExpiredOverLive is not guaranteed by plain LRU, but
// byte accounting must stay correct through mixed expiry + eviction churn.
func TestMixedExpiryEvictionAccounting(t *testing.T) {
	now := time.Unix(8000, 0)
	capacity := int64(4096)
	s := New(capacity, WithClock(func() time.Time { return now }))
	for i := 0; i < 500; i++ {
		ttl := time.Duration(0)
		if i%3 == 0 {
			ttl = time.Second
		}
		s.Set(fmt.Sprintf("k%d", i), make([]byte, 50+i%100), ttl)
		if i%50 == 0 {
			now = now.Add(2 * time.Second) // expire a wave
		}
		if st := s.Stats(); st.BytesUsed > capacity {
			t.Fatalf("over capacity at step %d: %d > %d", i, st.BytesUsed, capacity)
		}
	}
	// Drain everything and confirm accounting returns to zero.
	s.FlushAll()
	if st := s.Stats(); st.BytesUsed != 0 || s.Len() != 0 {
		t.Fatalf("after flush: %+v len=%d", st, s.Len())
	}
}
