package kvcache

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSetGet(t *testing.T) {
	s := New(0)
	s.Set("a", []byte("1"), 0)
	v, ok := s.Get("a")
	if !ok || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get(missing) = ok")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Sets != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New(0)
	s.Set("k", []byte("abc"), 0)
	v, _ := s.Get("k")
	v[0] = 'X'
	v2, _ := s.Get("k")
	if string(v2) != "abc" {
		t.Fatal("caller mutation leaked into store")
	}
}

func TestAdd(t *testing.T) {
	s := New(0)
	if !s.Add("k", []byte("1"), 0) {
		t.Fatal("first Add failed")
	}
	if s.Add("k", []byte("2"), 0) {
		t.Fatal("second Add succeeded")
	}
	v, _ := s.Get("k")
	if string(v) != "1" {
		t.Fatalf("value = %q", v)
	}
}

func TestDelete(t *testing.T) {
	s := New(0)
	s.Set("k", []byte("1"), 0)
	if !s.Delete("k") {
		t.Fatal("Delete = false")
	}
	if s.Delete("k") {
		t.Fatal("second Delete = true")
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("deleted key still present")
	}
}

func TestCasHappyPath(t *testing.T) {
	s := New(0)
	s.Set("k", []byte("v1"), 0)
	_, tok, ok := s.Gets("k")
	if !ok {
		t.Fatal("Gets failed")
	}
	if r := s.Cas("k", []byte("v2"), 0, tok); r != CasStored {
		t.Fatalf("Cas = %v", r)
	}
	v, _ := s.Get("k")
	if string(v) != "v2" {
		t.Fatalf("value = %q", v)
	}
}

func TestCasConflict(t *testing.T) {
	s := New(0)
	s.Set("k", []byte("v1"), 0)
	_, tok, _ := s.Gets("k")
	s.Set("k", []byte("interloper"), 0)
	if r := s.Cas("k", []byte("v2"), 0, tok); r != CasConflict {
		t.Fatalf("Cas = %v, want conflict", r)
	}
	if s.Stats().CasConflicts != 1 {
		t.Fatal("conflict not counted")
	}
}

func TestCasNotFound(t *testing.T) {
	s := New(0)
	s.Set("k", []byte("v1"), 0)
	_, tok, _ := s.Gets("k")
	s.Delete("k")
	if r := s.Cas("k", []byte("v2"), 0, tok); r != CasNotFound {
		t.Fatalf("Cas = %v, want not-found", r)
	}
}

func TestIncr(t *testing.T) {
	s := New(0)
	s.Set("n", []byte("41"), 0)
	v, ok := s.Incr("n", 1)
	if !ok || v != 42 {
		t.Fatalf("Incr = %d, %v", v, ok)
	}
	v, ok = s.Incr("n", -2)
	if !ok || v != 40 {
		t.Fatalf("Incr(-2) = %d, %v", v, ok)
	}
	if _, ok := s.Incr("missing", 1); ok {
		t.Fatal("Incr on missing key succeeded")
	}
	s.Set("text", []byte("abc"), 0)
	if _, ok := s.Incr("text", 1); ok {
		t.Fatal("Incr on non-numeric succeeded")
	}
}

func TestIncrChangesCasToken(t *testing.T) {
	s := New(0)
	s.Set("n", []byte("1"), 0)
	_, tok, _ := s.Gets("n")
	s.Incr("n", 1)
	if r := s.Cas("n", []byte("99"), 0, tok); r != CasConflict {
		t.Fatalf("Cas after Incr = %v, want conflict", r)
	}
}

func TestExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	s := New(0, WithClock(func() time.Time { return now }))
	s.Set("k", []byte("v"), time.Second)
	if _, ok := s.Get("k"); !ok {
		t.Fatal("fresh key missing")
	}
	now = now.Add(2 * time.Second)
	if _, ok := s.Get("k"); ok {
		t.Fatal("expired key still served")
	}
	if s.Stats().Expired != 1 {
		t.Fatal("expiry not counted")
	}
	// Add after expiry must succeed.
	if !s.Add("k", []byte("v2"), 0) {
		t.Fatal("Add after expiry failed")
	}
}

func TestLRUEviction(t *testing.T) {
	// Capacity for about 3 items of this size. LRU ordering is a per-shard
	// property, so the policy tests pin it on a single stripe.
	itemSize := int64(len("key-0") + 100 + entryOverhead)
	s := New(3*itemSize, WithShards(1))
	val := make([]byte, 100)
	for i := 0; i < 4; i++ {
		s.Set(fmt.Sprintf("key-%d", i), val, 0)
	}
	if _, ok := s.Get("key-0"); ok {
		t.Fatal("LRU victim key-0 still present")
	}
	if _, ok := s.Get("key-3"); !ok {
		t.Fatal("most recent key evicted")
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("evictions not counted")
	}
}

func TestLRUBumpOnGet(t *testing.T) {
	itemSize := int64(len("key-0") + 100 + entryOverhead)
	s := New(3*itemSize, WithShards(1))
	val := make([]byte, 100)
	for i := 0; i < 3; i++ {
		s.Set(fmt.Sprintf("key-%d", i), val, 0)
	}
	s.Get("key-0") // bump oldest to front
	s.Set("key-3", val, 0)
	if _, ok := s.Get("key-0"); !ok {
		t.Fatal("bumped key was evicted")
	}
	if _, ok := s.GetQuiet("key-1"); ok {
		t.Fatal("expected key-1 to be the eviction victim")
	}
}

func TestGetQuietDoesNotBump(t *testing.T) {
	itemSize := int64(len("key-0") + 100 + entryOverhead)
	s := New(3*itemSize, WithShards(1))
	val := make([]byte, 100)
	for i := 0; i < 3; i++ {
		s.Set(fmt.Sprintf("key-%d", i), val, 0)
	}
	s.GetQuiet("key-0") // must NOT save key-0 from eviction
	s.Set("key-3", val, 0)
	if _, ok := s.GetQuiet("key-0"); ok {
		t.Fatal("GetQuiet bumped the LRU")
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	cap := int64(4096)
	s := New(cap)
	for i := 0; i < 200; i++ {
		s.Set(fmt.Sprintf("key-%d", i), make([]byte, i%50), 0)
		if st := s.Stats(); st.BytesUsed > cap {
			t.Fatalf("used %d > capacity %d", st.BytesUsed, cap)
		}
	}
}

func TestQuickCapacityInvariant(t *testing.T) {
	f := func(keys []uint8, sizes []uint16) bool {
		s := New(8192)
		for i, k := range keys {
			var n int
			if i < len(sizes) {
				n = int(sizes[i]) % 2000
			}
			s.Set(fmt.Sprintf("k%d", k), make([]byte, n), 0)
			if s.Stats().BytesUsed > 8192 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFlushAll(t *testing.T) {
	s := New(0)
	for i := 0; i < 10; i++ {
		s.Set(fmt.Sprintf("k%d", i), []byte("v"), 0)
	}
	s.FlushAll()
	if s.Len() != 0 || s.Stats().BytesUsed != 0 {
		t.Fatalf("after flush: len=%d used=%d", s.Len(), s.Stats().BytesUsed)
	}
}

func TestConcurrentCasLinearizable(t *testing.T) {
	// N goroutines each do read-modify-write with CAS retry; final counter
	// must equal total increments.
	s := New(0)
	s.Set("ctr", []byte("0"), 0)
	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				for {
					v, tok, ok := s.Gets("ctr")
					if !ok {
						t.Error("counter vanished")
						return
					}
					n, _ := parseDecimal(v)
					if s.Cas("ctr", appendDecimal(nil, n+1), 0, tok) == CasStored {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	v, _ := s.Get("ctr")
	n, _ := parseDecimal(v)
	if n != goroutines*perG {
		t.Fatalf("counter = %d, want %d", n, goroutines*perG)
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	s := New(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%37)
				switch i % 4 {
				case 0:
					s.Set(k, []byte(fmt.Sprintf("g%d-%d", g, i)), 0)
				case 1:
					s.Get(k)
				case 2:
					s.Delete(k)
				case 3:
					if v, tok, ok := s.Gets(k); ok {
						s.Cas(k, v, 0, tok)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestParseAppendDecimal(t *testing.T) {
	cases := []int64{0, 1, -1, 42, -42, 1<<62 - 1}
	for _, n := range cases {
		b := appendDecimal(nil, n)
		got, ok := parseDecimal(b)
		if !ok || got != n {
			t.Fatalf("round trip %d -> %q -> %d, %v", n, b, got, ok)
		}
	}
	if _, ok := parseDecimal(nil); ok {
		t.Fatal("empty parse succeeded")
	}
	if _, ok := parseDecimal([]byte("-")); ok {
		t.Fatal("bare minus parse succeeded")
	}
}

func BenchmarkStoreGet(b *testing.B) {
	s := New(0)
	s.Set("bench", make([]byte, 256), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get("bench")
	}
}

func BenchmarkStoreSet(b *testing.B) {
	s := New(1 << 24)
	val := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Set(fmt.Sprintf("key-%d", i%10000), val, 0)
	}
}

func BenchmarkStoreCasCycle(b *testing.B) {
	s := New(0)
	s.Set("k", []byte("0"), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, tok, _ := s.Gets("k")
		s.Cas("k", v, 0, tok)
	}
}
