// Package kvcache implements the caching layer of the paper's stack: a
// memcached-semantics in-memory key-value store with LRU eviction under a
// byte-capacity budget, TTL expiry, and compare-and-swap (the memcached
// gets/cas pair CacheGenie's update-in-place triggers rely on, §3.2).
//
// The Cache interface is implemented by *Store (in-process), by the
// cacheproto TCP client (remote server), and by the cluster consistent-hash
// ring (one logical cache over many servers), so every layer of the system
// is interchangeable in tests and experiments.
//
// The Store is lock-striped the way memcached is: keys hash onto N
// independent shards (N defaults to the next power of two >= 4x GOMAXPROCS,
// overridable with WithShards), each owning its map, LRU list, slice of the
// byte budget, and statistics. Concurrent operations on different shards
// never contend, so a single node scales with cores instead of serializing
// every read on one global mutex and LRU list.
package kvcache

import (
	"container/list"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// CasResult reports the outcome of a compare-and-swap.
type CasResult int

// CAS outcomes, mirroring memcached's STORED / EXISTS / NOT_FOUND.
const (
	CasStored   CasResult = iota // swap succeeded
	CasConflict                  // token stale: someone wrote in between
	CasNotFound                  // key vanished (deleted or evicted)
)

// String implements fmt.Stringer.
func (r CasResult) String() string {
	switch r {
	case CasStored:
		return "STORED"
	case CasConflict:
		return "EXISTS"
	case CasNotFound:
		return "NOT_FOUND"
	}
	return "UNKNOWN"
}

// Cache is the operation set CacheGenie needs from its caching layer.
type Cache interface {
	// Get returns the value under key.
	Get(key string) ([]byte, bool)
	// Gets returns the value and a CAS token for a later Cas.
	Gets(key string) ([]byte, uint64, bool)
	// Set unconditionally stores value with a TTL (0 = no expiry).
	Set(key string, value []byte, ttl time.Duration)
	// Add stores value only if key is absent; reports whether it stored.
	Add(key string, value []byte, ttl time.Duration) bool
	// Cas stores value only if the key's token still equals cas.
	Cas(key string, value []byte, ttl time.Duration, cas uint64) CasResult
	// Delete removes key; reports whether it was present.
	Delete(key string) bool
	// Incr atomically adds delta to a decimal-integer value; reports the
	// new value, or ok=false if the key is absent or non-numeric.
	Incr(key string, delta int64) (int64, bool)
	// FlushAll empties the cache.
	FlushAll()
}

// Stats are cumulative counters plus current occupancy.
type Stats struct {
	Hits         int64
	Misses       int64
	Sets         int64
	Deletes      int64
	Evictions    int64
	Expired      int64
	CasConflicts int64
	Items        int64
	BytesUsed    int64
	BytesLimit   int64
}

// HitRate returns hits/(hits+misses), or 0 with no traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entryOverhead approximates per-item bookkeeping bytes, as memcached's
// item header does.
const entryOverhead = 64

// Expiry-sweep pacing: every sweepEveryWrites writes a shard walks up to
// sweepScanEntries entries from its LRU tail, reaping expired ones. Lazy
// expiry alone lets a dead entry squat on the byte budget until someone
// touches its key; on TTL-heavy workloads those squatters would evict live
// keys. The sweep amortizes to <1 extra entry visit per write.
const (
	sweepEveryWrites = 64
	sweepScanEntries = 32
)

type entry struct {
	key     string
	value   []byte
	casID   uint64
	expires int64 // unixnano; 0 = never
	lruEl   *list.Element
}

// size charges the value's backing-array capacity, not its length: buffer
// reuse can leave cap > len, and a budget that only counted len would let
// real memory drift above the configured limit.
func (e *entry) size() int64 {
	return int64(len(e.key) + cap(e.value) + entryOverhead)
}

// exactCopy allocates value's exact size (append's size-class rounding
// would otherwise make cap — and therefore the accounted bytes — slightly
// workload-dependent).
func exactCopy(value []byte) []byte {
	out := make([]byte, len(value))
	copy(out, value)
	return out
}

// shard is one lock stripe: an independent map + LRU + byte budget. The pad
// keeps hot shard headers on separate cache lines.
type shard struct {
	// The shard lock is pure-compute territory: one goroutine blocking
	// inside it stalls every key that hashes here (lockscope-enforced).
	//
	//genie:nonblocking
	mu         sync.Mutex
	items      map[string]*entry
	lru        *list.List // front = most recently used
	capacity   int64      // bytes; 0 = unbounded
	used       int64
	stats      Stats
	writeCount int // paces the amortized expiry sweep
	_          [32]byte
}

// Store is the in-process cache server. It is safe for concurrent use:
// operations lock only the shard owning their key.
type Store struct {
	shards []shard
	mask   uint32
	casSeq atomic.Uint64 // global so CAS tokens stay unique across shards
	now    func() time.Time
}

// Option configures a Store.
type Option func(*storeConfig)

type storeConfig struct {
	now    func() time.Time
	shards int
}

// WithClock injects a time source (tests).
func WithClock(now func() time.Time) Option {
	return func(c *storeConfig) { c.now = now }
}

// WithShards overrides the lock-stripe count (rounded up to a power of
// two). n <= 0 keeps the DefaultShards auto-sizing, matching the CLI
// flags' "0 = auto" semantics so callers can pass a knob through
// unconditionally. Shards=1 is the pre-striping store — one mutex, one
// LRU — kept as the scaling baseline for Experiment 9.
func WithShards(n int) Option {
	return func(c *storeConfig) {
		if n > 0 {
			c.shards = n
		}
	}
}

// DefaultShards is the stripe count New picks when WithShards is not given:
// the next power of two >= 4x GOMAXPROCS, so that even with every core in
// the store the probability of two operations colliding on a stripe stays
// low, and never below 4.
func DefaultShards() int {
	return nextPow2(4 * runtime.GOMAXPROCS(0))
}

func nextPow2(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// minShardBytes is the smallest per-shard byte budget worth striping down
// to: a few entries' worth. Without the floor, a core-rich host (large
// DefaultShards) would split a small capacity into slices below a single
// entry's size, making every entry instantly evict itself.
const minShardBytes = 2048

// New creates a store with the given byte capacity (0 = unbounded). The
// capacity splits evenly across shards, the way memcached slabs split
// across its lock stripes; the stripe count is capped so each shard keeps
// at least minShardBytes of budget.
func New(capacityBytes int64, opts ...Option) *Store {
	cfg := storeConfig{now: time.Now, shards: DefaultShards()}
	for _, o := range opts {
		o(&cfg)
	}
	n := nextPow2(cfg.shards)
	if capacityBytes > 0 {
		for n > 1 && capacityBytes/int64(n) < minShardBytes {
			n >>= 1
		}
	}
	s := &Store{
		shards: make([]shard, n),
		mask:   uint32(n - 1),
		now:    cfg.now,
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.items = make(map[string]*entry)
		sh.lru = list.New()
		if capacityBytes > 0 {
			// Distribute the budget with the remainder spread over the first
			// shards so the per-shard sum is exactly the requested total.
			sh.capacity = capacityBytes / int64(n)
			if int64(i) < capacityBytes%int64(n) {
				sh.capacity++
			}
		}
	}
	return s
}

var _ Cache = (*Store)(nil)

// NumShards reports the lock-stripe count.
func (s *Store) NumShards() int { return len(s.shards) }

// fnv1a32 hashes key bytes without allocating; the same function serves
// string and []byte keys so both entry points agree on shard placement.
func fnv1a32(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h
}

func fnv1a32Bytes(key []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h
}

func (s *Store) shardFor(key string) *shard {
	return &s.shards[fnv1a32(key)&s.mask]
}

func (s *Store) shardForBytes(key []byte) *shard {
	return &s.shards[fnv1a32Bytes(key)&s.mask]
}

// shardIndex exposes placement to in-package tests.
func (s *Store) shardIndex(key string) int {
	return int(fnv1a32(key) & s.mask)
}

// ---------- per-shard internals (caller holds sh.mu) ----------

// expiredLocked reports and reaps an expired entry.
//
//genie:hotpath
func (s *Store) expiredLocked(sh *shard, e *entry) bool {
	if e.expires == 0 || s.now().UnixNano() < e.expires {
		return false
	}
	removeLocked(sh, e)
	sh.stats.Expired++
	return true
}

//genie:hotpath
func removeLocked(sh *shard, e *entry) {
	delete(sh.items, e.key)
	sh.lru.Remove(e.lruEl)
	sh.used -= e.size()
}

// get is the shared lookup; bump controls LRU promotion. The paper notes
// that trigger touches bump keys even though the application is not "using"
// them, and suggests a modified LRU; GetQuiet exposes that policy.
//
//genie:hotpath
func (s *Store) get(sh *shard, key string, bump bool) (*entry, bool) {
	e, ok := sh.items[key]
	if !ok {
		sh.stats.Misses++
		return nil, false
	}
	if s.expiredLocked(sh, e) {
		sh.stats.Misses++
		return nil, false
	}
	if bump {
		sh.lru.MoveToFront(e.lruEl)
	}
	sh.stats.Hits++
	return e, true
}

// getBytes is get for a []byte key; the map lookup converts without
// allocating (compiler-recognized pattern), keeping the protocol hot path
// allocation-free.
//
//genie:hotpath
func (s *Store) getBytes(sh *shard, key []byte, bump bool) (*entry, bool) {
	e, ok := sh.items[string(key)]
	if !ok {
		sh.stats.Misses++
		return nil, false
	}
	if s.expiredLocked(sh, e) {
		sh.stats.Misses++
		return nil, false
	}
	if bump {
		sh.lru.MoveToFront(e.lruEl)
	}
	sh.stats.Hits++
	return e, true
}

func (s *Store) ttlToExpiry(ttl time.Duration) int64 {
	if ttl <= 0 {
		return 0
	}
	return s.now().Add(ttl).UnixNano()
}

// overwriteValue copies value into dst's backing array when it is a
// reasonable fit, and allocates a fresh exact-size buffer when dst's
// capacity is far larger than needed: buffer reuse must not pin an entry's
// historical peak size against a budget that only accounts its current
// length.
//
//genie:hotpath
func overwriteValue(dst, value []byte) []byte {
	if cap(dst) >= len(value) && cap(dst) <= 4*len(value)+64 {
		return append(dst[:0], value...)
	}
	return append(make([]byte, 0, len(value)), value...)
}

// setLocked writes key=value, creating or replacing, and evicts to fit. An
// existing entry's value buffer is reused when it has (reasonable)
// capacity, so steady overwrite traffic does not allocate.
//
//genie:hotpath
func (s *Store) setLocked(sh *shard, key string, value []byte, ttl time.Duration, bump bool) {
	seq := s.casSeq.Add(1)
	if e, ok := sh.items[key]; ok {
		sh.used -= e.size()
		e.value = overwriteValue(e.value, value)
		e.casID = seq
		e.expires = s.ttlToExpiry(ttl)
		sh.used += e.size()
		if bump {
			sh.lru.MoveToFront(e.lruEl)
		}
	} else {
		e := &entry{
			key:     key,
			value:   exactCopy(value),
			casID:   seq,
			expires: s.ttlToExpiry(ttl),
		}
		e.lruEl = sh.lru.PushFront(e)
		sh.items[key] = e
		sh.used += e.size()
	}
	sh.stats.Sets++
	s.afterWriteLocked(sh)
}

// setBytesLocked is setLocked for a []byte key: overwrites look the key up
// without converting, so only a first-time insert pays the string copy.
//
//genie:hotpath
func (s *Store) setBytesLocked(sh *shard, key, value []byte, ttl time.Duration, bump bool) {
	seq := s.casSeq.Add(1)
	if e, ok := sh.items[string(key)]; ok {
		sh.used -= e.size()
		e.value = overwriteValue(e.value, value)
		e.casID = seq
		e.expires = s.ttlToExpiry(ttl)
		sh.used += e.size()
		if bump {
			sh.lru.MoveToFront(e.lruEl)
		}
	} else {
		e := &entry{
			key:     string(key), //genie:nolint hotpathalloc -- a first-time insert must own its key; overwrites never reach this branch
			value:   exactCopy(value),
			casID:   seq,
			expires: s.ttlToExpiry(ttl),
		}
		e.lruEl = sh.lru.PushFront(e)
		sh.items[e.key] = e
		sh.used += e.size()
	}
	sh.stats.Sets++
	s.afterWriteLocked(sh)
}

// afterWriteLocked runs the post-write maintenance: the paced expiry sweep,
// then eviction back under the shard's budget.
//
//genie:hotpath
func (s *Store) afterWriteLocked(sh *shard) {
	sh.writeCount++
	if sh.writeCount >= sweepEveryWrites {
		sh.writeCount = 0
		s.sweepLocked(sh, sweepScanEntries)
	}
	s.evictLocked(sh)
}

// sweepLocked walks up to maxScan entries from the LRU tail and reaps the
// expired ones. Cold entries sink to the tail, so on TTL-heavy workloads
// this is exactly where dead entries accumulate; the walk is bounded so the
// cost stays amortized-constant per write.
//
//genie:hotpath
func (s *Store) sweepLocked(sh *shard, maxScan int) {
	nowNano := s.now().UnixNano()
	el := sh.lru.Back()
	for i := 0; i < maxScan && el != nil; i++ {
		prev := el.Prev()
		e := el.Value.(*entry)
		if e.expires != 0 && nowNano >= e.expires {
			removeLocked(sh, e)
			sh.stats.Expired++
		}
		el = prev
	}
}

// evictLocked drops LRU-tail entries until the shard fits its budget. A tail
// entry that is already past its TTL counts as expired, not evicted — it was
// dead weight, not live data squeezed out.
//
//genie:hotpath
func (s *Store) evictLocked(sh *shard) {
	if sh.capacity <= 0 {
		return
	}
	nowNano := s.now().UnixNano()
	for sh.used > sh.capacity {
		back := sh.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		removeLocked(sh, e)
		if e.expires != 0 && nowNano >= e.expires {
			sh.stats.Expired++
		} else {
			sh.stats.Evictions++
		}
	}
}

func (s *Store) deleteLocked(sh *shard, key string) bool {
	e, ok := sh.items[key]
	if !ok {
		return false
	}
	expired := s.expiredLocked(sh, e)
	if !expired {
		removeLocked(sh, e)
	}
	sh.stats.Deletes++
	return !expired
}

func (s *Store) incrLocked(sh *shard, key string, delta int64) (int64, bool) {
	e, ok := s.get(sh, key, true)
	if !ok {
		return 0, false
	}
	n, ok := parseDecimal(e.value)
	if !ok {
		return 0, false
	}
	n += delta
	sh.used -= e.size()
	e.value = appendDecimal(e.value[:0], n)
	e.casID = s.casSeq.Add(1)
	sh.used += e.size()
	return n, true
}

// ---------- public string-key operations ----------

// Get implements Cache.
func (s *Store) Get(key string) ([]byte, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := s.get(sh, key, true)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), e.value...), true
}

// GetQuiet is Get without the LRU bump (modified-LRU policy for trigger
// touches).
func (s *Store) GetQuiet(key string) ([]byte, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := s.get(sh, key, false)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), e.value...), true
}

// Gets implements Cache.
func (s *Store) Gets(key string) ([]byte, uint64, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := s.get(sh, key, true)
	if !ok {
		return nil, 0, false
	}
	return append([]byte(nil), e.value...), e.casID, true
}

// GetsQuiet is Gets without the LRU bump.
func (s *Store) GetsQuiet(key string) ([]byte, uint64, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := s.get(sh, key, false)
	if !ok {
		return nil, 0, false
	}
	return append([]byte(nil), e.value...), e.casID, true
}

// Set implements Cache.
func (s *Store) Set(key string, value []byte, ttl time.Duration) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.setLocked(sh, key, value, ttl, true)
}

// SetQuiet is Set without LRU promotion of an existing entry.
func (s *Store) SetQuiet(key string, value []byte, ttl time.Duration) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.setLocked(sh, key, value, ttl, false)
}

// Add implements Cache.
func (s *Store) Add(key string, value []byte, ttl time.Duration) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.items[key]; ok && !s.expiredLocked(sh, e) {
		return false
	}
	s.setLocked(sh, key, value, ttl, true)
	return true
}

// Cas implements Cache.
func (s *Store) Cas(key string, value []byte, ttl time.Duration, cas uint64) CasResult {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.items[key]
	if !ok || s.expiredLocked(sh, e) {
		return CasNotFound
	}
	if e.casID != cas {
		sh.stats.CasConflicts++
		return CasConflict
	}
	s.setLocked(sh, key, value, ttl, true)
	return CasStored
}

// Delete implements Cache.
func (s *Store) Delete(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.deleteLocked(sh, key)
}

// Incr implements Cache.
func (s *Store) Incr(key string, delta int64) (int64, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.incrLocked(sh, key, delta)
}

// FlushAll implements Cache. Shards flush one at a time; concurrent writers
// may land in an already-flushed shard, as with memcached's flush_all.
func (s *Store) FlushAll() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.items = make(map[string]*entry)
		sh.lru.Init()
		sh.used = 0
		sh.mu.Unlock()
	}
}

// Stats returns a snapshot of counters and occupancy aggregated across
// shards. Each shard is snapshotted under its own lock; the aggregate is not
// a single atomic cut across shards (neither were memcached's stats).
func (s *Store) Stats() Stats {
	var agg Stats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st := sh.stats
		st.Items = int64(len(sh.items))
		st.BytesUsed = sh.used
		st.BytesLimit = sh.capacity
		sh.mu.Unlock()
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Sets += st.Sets
		agg.Deletes += st.Deletes
		agg.Evictions += st.Evictions
		agg.Expired += st.Expired
		agg.CasConflicts += st.CasConflicts
		agg.Items += st.Items
		agg.BytesUsed += st.BytesUsed
		agg.BytesLimit += st.BytesLimit
	}
	return agg
}

// ResetStats zeroes the cumulative counters.
func (s *Store) ResetStats() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.stats = Stats{}
		sh.mu.Unlock()
	}
}

// Keys returns a snapshot of the live (unexpired) keys across all shards,
// in no particular order. Each shard is walked under its own lock, so the
// snapshot is per-shard consistent but not a single atomic cut — the same
// deal Stats makes. Cluster key handoff uses this to find the remapped
// share on a prior owner; expired entries are reaped, not listed, so
// handoff never migrates a dead entry.
func (s *Store) Keys() []string {
	out := make([]string, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		nowNano := s.now().UnixNano()
		sh.mu.Lock()
		for k, e := range sh.items {
			if e.expires != 0 && nowNano >= e.expires {
				continue // lazily expired; the sweep or next touch reaps it
			}
			out = append(out, k)
		}
		sh.mu.Unlock()
	}
	return out
}

// Len reports the number of live items.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// ---------- []byte-key operations (protocol hot path) ----------
//
// The cacheproto server parses commands into byte slices pointing at its
// read buffer; converting them to strings per operation would allocate on
// every request. These variants keep the whole request path allocation-free:
// lookups use the compiler's no-copy map access, overwrites reuse the
// entry's value buffer, and reads append into a caller-owned scratch buffer.

// GetsAppendB looks a []byte key up and appends its value to dst, returning
// the extended slice, the entry's CAS token, and whether it was live. The
// only allocation is dst growth, which the caller amortizes by reuse.
//
//genie:hotpath
func (s *Store) GetsAppendB(dst, key []byte) ([]byte, uint64, bool) {
	sh := s.shardForBytes(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := s.getBytes(sh, key, true)
	if !ok {
		return dst, 0, false
	}
	return append(dst, e.value...), e.casID, true
}

// SetB is Set for a []byte key.
//
//genie:hotpath
func (s *Store) SetB(key, value []byte, ttl time.Duration) {
	sh := s.shardForBytes(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.setBytesLocked(sh, key, value, ttl, true)
}

// AddB is Add for a []byte key.
//
//genie:hotpath
func (s *Store) AddB(key, value []byte, ttl time.Duration) bool {
	sh := s.shardForBytes(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.items[string(key)]; ok && !s.expiredLocked(sh, e) {
		return false
	}
	s.setBytesLocked(sh, key, value, ttl, true)
	return true
}

// CasB is Cas for a []byte key.
//
//genie:hotpath
func (s *Store) CasB(key, value []byte, ttl time.Duration, cas uint64) CasResult {
	sh := s.shardForBytes(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.items[string(key)]
	if !ok || s.expiredLocked(sh, e) {
		return CasNotFound
	}
	if e.casID != cas {
		sh.stats.CasConflicts++
		return CasConflict
	}
	s.setBytesLocked(sh, key, value, ttl, true)
	return CasStored
}

// DeleteB is Delete for a []byte key.
//
//genie:hotpath
func (s *Store) DeleteB(key []byte) bool {
	sh := s.shardForBytes(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.items[string(key)]
	if !ok {
		return false
	}
	expired := s.expiredLocked(sh, e)
	if !expired {
		removeLocked(sh, e)
	}
	sh.stats.Deletes++
	return !expired
}

// IncrB is Incr for a []byte key.
//
//genie:hotpath
func (s *Store) IncrB(key []byte, delta int64) (int64, bool) {
	sh := s.shardForBytes(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := s.getBytes(sh, key, true)
	if !ok {
		return 0, false
	}
	n, ok := parseDecimal(e.value)
	if !ok {
		return 0, false
	}
	n += delta
	sh.used -= e.size()
	e.value = appendDecimal(e.value[:0], n)
	e.casID = s.casSeq.Add(1)
	sh.used += e.size()
	return n, true
}

//genie:hotpath
func parseDecimal(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var n int64
	neg := false
	i := 0
	if b[0] == '-' {
		neg = true
		i = 1
		if len(b) == 1 {
			return 0, false
		}
	}
	for ; i < len(b); i++ {
		if b[i] < '0' || b[i] > '9' {
			return 0, false
		}
		n = n*10 + int64(b[i]-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}

//genie:hotpath
func appendDecimal(dst []byte, n int64) []byte {
	if n < 0 {
		dst = append(dst, '-')
		n = -n
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return append(dst, tmp[i:]...)
}
