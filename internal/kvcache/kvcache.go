// Package kvcache implements the caching layer of the paper's stack: a
// memcached-semantics in-memory key-value store with LRU eviction under a
// byte-capacity budget, TTL expiry, and compare-and-swap (the memcached
// gets/cas pair CacheGenie's update-in-place triggers rely on, §3.2).
//
// The Cache interface is implemented by *Store (in-process), by the
// cacheproto TCP client (remote server), and by the cluster consistent-hash
// ring (one logical cache over many servers), so every layer of the system
// is interchangeable in tests and experiments.
package kvcache

import (
	"container/list"
	"sync"
	"time"
)

// CasResult reports the outcome of a compare-and-swap.
type CasResult int

// CAS outcomes, mirroring memcached's STORED / EXISTS / NOT_FOUND.
const (
	CasStored   CasResult = iota // swap succeeded
	CasConflict                  // token stale: someone wrote in between
	CasNotFound                  // key vanished (deleted or evicted)
)

// String implements fmt.Stringer.
func (r CasResult) String() string {
	switch r {
	case CasStored:
		return "STORED"
	case CasConflict:
		return "EXISTS"
	case CasNotFound:
		return "NOT_FOUND"
	}
	return "UNKNOWN"
}

// Cache is the operation set CacheGenie needs from its caching layer.
type Cache interface {
	// Get returns the value under key.
	Get(key string) ([]byte, bool)
	// Gets returns the value and a CAS token for a later Cas.
	Gets(key string) ([]byte, uint64, bool)
	// Set unconditionally stores value with a TTL (0 = no expiry).
	Set(key string, value []byte, ttl time.Duration)
	// Add stores value only if key is absent; reports whether it stored.
	Add(key string, value []byte, ttl time.Duration) bool
	// Cas stores value only if the key's token still equals cas.
	Cas(key string, value []byte, ttl time.Duration, cas uint64) CasResult
	// Delete removes key; reports whether it was present.
	Delete(key string) bool
	// Incr atomically adds delta to a decimal-integer value; reports the
	// new value, or ok=false if the key is absent or non-numeric.
	Incr(key string, delta int64) (int64, bool)
	// FlushAll empties the cache.
	FlushAll()
}

// Stats are cumulative counters plus current occupancy.
type Stats struct {
	Hits         int64
	Misses       int64
	Sets         int64
	Deletes      int64
	Evictions    int64
	Expired      int64
	CasConflicts int64
	Items        int64
	BytesUsed    int64
	BytesLimit   int64
}

// HitRate returns hits/(hits+misses), or 0 with no traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entryOverhead approximates per-item bookkeeping bytes, as memcached's
// item header does.
const entryOverhead = 64

type entry struct {
	key     string
	value   []byte
	casID   uint64
	expires int64 // unixnano; 0 = never
	lruEl   *list.Element
}

func (e *entry) size() int64 {
	return int64(len(e.key) + len(e.value) + entryOverhead)
}

// Store is the in-process cache server. It is safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	items    map[string]*entry
	lru      *list.List // front = most recently used
	capacity int64      // bytes; 0 = unbounded
	used     int64
	casSeq   uint64
	now      func() time.Time
	stats    Stats
}

// Option configures a Store.
type Option func(*Store)

// WithClock injects a time source (tests).
func WithClock(now func() time.Time) Option {
	return func(s *Store) { s.now = now }
}

// New creates a store with the given byte capacity (0 = unbounded).
func New(capacityBytes int64, opts ...Option) *Store {
	s := &Store{
		items:    make(map[string]*entry),
		lru:      list.New(),
		capacity: capacityBytes,
		now:      time.Now,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

var _ Cache = (*Store)(nil)

// expiredLocked reports and reaps an expired entry. Caller holds s.mu.
func (s *Store) expiredLocked(e *entry) bool {
	if e.expires == 0 || s.now().UnixNano() < e.expires {
		return false
	}
	s.removeLocked(e)
	s.stats.Expired++
	return true
}

func (s *Store) removeLocked(e *entry) {
	delete(s.items, e.key)
	s.lru.Remove(e.lruEl)
	s.used -= e.size()
}

func (s *Store) bumpLocked(e *entry) {
	s.lru.MoveToFront(e.lruEl)
}

// get is the shared lookup; bump controls LRU promotion. The paper notes
// that trigger touches bump keys even though the application is not "using"
// them, and suggests a modified LRU; GetQuiet exposes that policy.
func (s *Store) get(key string, bump bool) (*entry, bool) {
	e, ok := s.items[key]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	if s.expiredLocked(e) {
		s.stats.Misses++
		return nil, false
	}
	if bump {
		s.bumpLocked(e)
	}
	s.stats.Hits++
	return e, true
}

// Get implements Cache.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.get(key, true)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), e.value...), true
}

// GetQuiet is Get without the LRU bump (modified-LRU policy for trigger
// touches).
func (s *Store) GetQuiet(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.get(key, false)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), e.value...), true
}

// Gets implements Cache.
func (s *Store) Gets(key string) ([]byte, uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.get(key, true)
	if !ok {
		return nil, 0, false
	}
	return append([]byte(nil), e.value...), e.casID, true
}

// GetsQuiet is Gets without the LRU bump.
func (s *Store) GetsQuiet(key string) ([]byte, uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.get(key, false)
	if !ok {
		return nil, 0, false
	}
	return append([]byte(nil), e.value...), e.casID, true
}

func (s *Store) ttlToExpiry(ttl time.Duration) int64 {
	if ttl <= 0 {
		return 0
	}
	return s.now().Add(ttl).UnixNano()
}

// setLocked writes key=value, creating or replacing, and evicts to fit.
func (s *Store) setLocked(key string, value []byte, ttl time.Duration, bump bool) {
	s.casSeq++
	if e, ok := s.items[key]; ok {
		s.used -= e.size()
		e.value = append([]byte(nil), value...)
		e.casID = s.casSeq
		e.expires = s.ttlToExpiry(ttl)
		s.used += e.size()
		if bump {
			s.bumpLocked(e)
		}
	} else {
		e := &entry{
			key:     key,
			value:   append([]byte(nil), value...),
			casID:   s.casSeq,
			expires: s.ttlToExpiry(ttl),
		}
		e.lruEl = s.lru.PushFront(e)
		s.items[key] = e
		s.used += e.size()
	}
	s.stats.Sets++
	s.evictLocked()
}

func (s *Store) evictLocked() {
	if s.capacity <= 0 {
		return
	}
	for s.used > s.capacity {
		back := s.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		s.removeLocked(e)
		s.stats.Evictions++
	}
}

// Set implements Cache.
func (s *Store) Set(key string, value []byte, ttl time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setLocked(key, value, ttl, true)
}

// SetQuiet is Set without LRU promotion of an existing entry.
func (s *Store) SetQuiet(key string, value []byte, ttl time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setLocked(key, value, ttl, false)
}

// Add implements Cache.
func (s *Store) Add(key string, value []byte, ttl time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.items[key]; ok && !s.expiredLocked(e) {
		return false
	}
	s.setLocked(key, value, ttl, true)
	return true
}

// Cas implements Cache.
func (s *Store) Cas(key string, value []byte, ttl time.Duration, cas uint64) CasResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.items[key]
	if !ok || s.expiredLocked(e) {
		return CasNotFound
	}
	if e.casID != cas {
		s.stats.CasConflicts++
		return CasConflict
	}
	s.setLocked(key, value, ttl, true)
	return CasStored
}

// Delete implements Cache.
func (s *Store) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deleteLocked(key)
}

func (s *Store) deleteLocked(key string) bool {
	e, ok := s.items[key]
	if !ok {
		return false
	}
	expired := s.expiredLocked(e)
	if !expired {
		s.removeLocked(e)
	}
	s.stats.Deletes++
	return !expired
}

// Incr implements Cache.
func (s *Store) Incr(key string, delta int64) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.incrLocked(key, delta)
}

func (s *Store) incrLocked(key string, delta int64) (int64, bool) {
	e, ok := s.get(key, true)
	if !ok {
		return 0, false
	}
	n, ok := parseDecimal(e.value)
	if !ok {
		return 0, false
	}
	n += delta
	s.used -= e.size()
	e.value = appendDecimal(e.value[:0], n)
	s.casSeq++
	e.casID = s.casSeq
	s.used += e.size()
	return n, true
}

// FlushAll implements Cache.
func (s *Store) FlushAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = make(map[string]*entry)
	s.lru.Init()
	s.used = 0
}

// Stats returns a snapshot of counters and occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Items = int64(len(s.items))
	st.BytesUsed = s.used
	st.BytesLimit = s.capacity
	return st
}

// ResetStats zeroes the cumulative counters.
func (s *Store) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}

// Len reports the number of live items.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

func parseDecimal(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var n int64
	neg := false
	i := 0
	if b[0] == '-' {
		neg = true
		i = 1
		if len(b) == 1 {
			return 0, false
		}
	}
	for ; i < len(b); i++ {
		if b[i] < '0' || b[i] > '9' {
			return 0, false
		}
		n = n*10 + int64(b[i]-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}

func appendDecimal(dst []byte, n int64) []byte {
	if n < 0 {
		dst = append(dst, '-')
		n = -n
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return append(dst, tmp[i:]...)
}
