package kvcache

import "cachegenie/internal/obs"

// RegisterMetrics attaches live counter/gauge views over the store's striped
// statistics to reg under a node label ("" omits it). The views aggregate
// Stats() at scrape time, so the store's hot path carries no extra cost
// between scrapes; re-registering (a rebuilt store under the same node name)
// rebinds the series.
func (s *Store) RegisterMetrics(reg *obs.Registry, node string) {
	if s == nil || reg == nil {
		return
	}
	labels := ""
	if node != "" {
		labels = `node="` + node + `"`
	}
	view := func(f func(Stats) int64) func() int64 {
		return func() int64 { return f(s.Stats()) }
	}
	reg.CounterFunc("cachegenie_store_hits_total", labels,
		"get requests served from the cache", view(func(st Stats) int64 { return st.Hits }))
	reg.CounterFunc("cachegenie_store_misses_total", labels,
		"get requests that found nothing", view(func(st Stats) int64 { return st.Misses }))
	reg.CounterFunc("cachegenie_store_sets_total", labels,
		"unconditional stores", view(func(st Stats) int64 { return st.Sets }))
	reg.CounterFunc("cachegenie_store_deletes_total", labels,
		"deletes that removed a live entry", view(func(st Stats) int64 { return st.Deletes }))
	reg.CounterFunc("cachegenie_store_evictions_total", labels,
		"entries evicted by the LRU byte budget", view(func(st Stats) int64 { return st.Evictions }))
	reg.CounterFunc("cachegenie_store_expired_total", labels,
		"entries dropped at read time past their TTL", view(func(st Stats) int64 { return st.Expired }))
	reg.CounterFunc("cachegenie_store_cas_conflicts_total", labels,
		"compare-and-swaps refused on a stale token", view(func(st Stats) int64 { return st.CasConflicts }))
	reg.GaugeFunc("cachegenie_store_items", labels,
		"live entries", view(func(st Stats) int64 { return st.Items }))
	reg.GaugeFunc("cachegenie_store_used_bytes", labels,
		"bytes of keys and values resident", view(func(st Stats) int64 { return st.BytesUsed }))
	reg.GaugeFunc("cachegenie_store_limit_bytes", labels,
		"configured byte budget", view(func(st Stats) int64 { return st.BytesLimit }))
}
