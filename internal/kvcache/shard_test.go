package kvcache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestShardCountDefaultsAndRounding(t *testing.T) {
	if n := New(0).NumShards(); n != DefaultShards() {
		t.Fatalf("default shards = %d, want %d", n, DefaultShards())
	}
	if DefaultShards() < 4 {
		t.Fatalf("DefaultShards() = %d, want >= 4", DefaultShards())
	}
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 9: 16, 64: 64}
	for in, want := range cases {
		if n := New(0, WithShards(in)).NumShards(); n != want {
			t.Fatalf("WithShards(%d) -> %d shards, want %d", in, n, want)
		}
	}
	// n <= 0 means "auto" (the flags' 0 = auto semantics).
	for _, in := range []int{0, -3} {
		if n := New(0, WithShards(in)).NumShards(); n != DefaultShards() {
			t.Fatalf("WithShards(%d) -> %d shards, want default %d", in, n, DefaultShards())
		}
	}
}

func TestShardDistributionBalance(t *testing.T) {
	s := New(0, WithShards(8))
	const keys = 10_000
	counts := make([]int, s.NumShards())
	for i := 0; i < keys; i++ {
		counts[s.shardIndex(fmt.Sprintf("balance-key-%d", i))]++
	}
	mean := keys / len(counts)
	for i, c := range counts {
		// FNV-1a over distinct keys should stay within a generous 2x band of
		// the mean; a broken hash (or mask) collapses whole shards to zero.
		if c < mean/2 || c > mean*2 {
			t.Fatalf("shard %d holds %d of %d keys (mean %d): %v", i, c, keys, mean, counts)
		}
	}
}

func TestShardCountClampedBySmallCapacity(t *testing.T) {
	// A 16KB cache must not stripe so finely that one shard's budget drops
	// below a few entries — on a many-core host DefaultShards would
	// otherwise make larger entries uncacheable.
	s := New(16<<10, WithShards(256))
	if n := s.NumShards(); int64(n) > (16<<10)/minShardBytes {
		t.Fatalf("16KB store got %d shards", n)
	}
	// Every shard can hold at least one modest entry end to end.
	s.Set("clamp-probe", make([]byte, 512), 0)
	if _, ok := s.Get("clamp-probe"); !ok {
		t.Fatal("512B entry uncacheable in a 16KB store")
	}
	// Unbounded stores stripe freely.
	if n := New(0, WithShards(256)).NumShards(); n != 256 {
		t.Fatalf("unbounded store clamped to %d shards", n)
	}
}

func TestOverwriteShrinksOversizedBuffer(t *testing.T) {
	// An entry overwritten with a much smaller value must not pin its
	// historical peak-size backing array: the budget accounts the current
	// length, so retained capacity has to track it.
	s := New(0, WithShards(1))
	s.Set("k", make([]byte, 64<<10), 0)
	s.Set("k", []byte("tiny"), 0)
	sh := &s.shards[0]
	sh.mu.Lock()
	c := cap(sh.items["k"].value)
	sh.mu.Unlock()
	if c > 1024 {
		t.Fatalf("shrunken value retains %d bytes of capacity", c)
	}
	// Same-size overwrites still reuse the buffer (the zero-alloc path).
	s.Set("k2", make([]byte, 256), 0)
	sh.mu.Lock()
	before := &sh.items["k2"].value[0]
	sh.mu.Unlock()
	s.Set("k2", make([]byte, 256), 0)
	sh.mu.Lock()
	after := &sh.items["k2"].value[0]
	sh.mu.Unlock()
	if before != after {
		t.Fatal("same-size overwrite reallocated the value buffer")
	}
}

func TestBudgetAccountsRetainedCapacity(t *testing.T) {
	// When overwrite reuse keeps an oversized backing array (shrink within
	// the 4x bound), the byte budget must charge the capacity actually
	// held, not the shorter current length — otherwise a bounded store's
	// real memory drifts above its configured limit.
	s := New(0, WithShards(1))
	s.Set("k", make([]byte, 64<<10), 0)
	peak := s.Stats().BytesUsed
	s.Set("k", make([]byte, 20<<10), 0) // 64KB cap is within 4*20KB+64: reused
	st := s.Stats()
	if st.BytesUsed != peak {
		t.Fatalf("retained 64KB capacity accounted as %d (peak was %d)", st.BytesUsed, peak)
	}
	sh := &s.shards[0]
	sh.mu.Lock()
	c := cap(sh.items["k"].value)
	sh.mu.Unlock()
	if c != 64<<10 {
		t.Fatalf("expected reuse of the 64KB buffer, cap = %d", c)
	}
}

func TestShardCapacitySplitExact(t *testing.T) {
	for _, total := range []int64{1 << 20, 1<<20 + 3, 12345} {
		s := New(total, WithShards(8))
		if got := s.Stats().BytesLimit; got != total {
			t.Fatalf("capacity %d split sums to %d", total, got)
		}
	}
}

func TestCrossShardApplyBatch(t *testing.T) {
	s := New(0, WithShards(16))
	var ops []BatchOp
	var wantVals []string
	const n = 200
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("batch-key-%d", i)
		s.Set("seed-"+k, []byte("x"), 0) // interleave pre-existing state
		ops = append(ops,
			BatchOp{Kind: BatchSet, Key: k, Value: []byte(fmt.Sprintf("v%d", i))},
			BatchOp{Kind: BatchDelete, Key: "seed-" + k},
			BatchOp{Kind: BatchDelete, Key: "missing-" + k},
		)
		wantVals = append(wantVals, fmt.Sprintf("v%d", i))
	}
	// Same-key sequencing must survive the shard grouping: later ops on one
	// key run after earlier ones.
	ops = append(ops,
		BatchOp{Kind: BatchSet, Key: "ctr", Value: []byte("5")},
		BatchOp{Kind: BatchIncr, Key: "ctr", Delta: 10},
		BatchOp{Kind: BatchDelete, Key: "batch-key-0"},
	)
	res := s.ApplyBatch(ops)
	for i := 0; i < n; i++ {
		if !res[3*i].Found {
			t.Fatalf("set %d not reported", i)
		}
		if !res[3*i+1].Found {
			t.Fatalf("delete of live seed %d not reported", i)
		}
		if res[3*i+2].Found {
			t.Fatalf("delete of missing key %d reported found", i)
		}
	}
	last := res[len(res)-2]
	if !last.Found || last.Value != 15 {
		t.Fatalf("incr after set in same batch = %+v, want 15", last)
	}
	if !res[len(res)-1].Found {
		t.Fatal("delete after set in same batch missed")
	}
	if _, ok := s.Get("batch-key-0"); ok {
		t.Fatal("same-batch delete did not run after the set")
	}
	for i := 1; i < n; i++ {
		v, ok := s.Get(fmt.Sprintf("batch-key-%d", i))
		if !ok || string(v) != wantVals[i] {
			t.Fatalf("batch-key-%d = %q, %v", i, v, ok)
		}
		if _, ok := s.Get(fmt.Sprintf("seed-batch-key-%d", i)); ok {
			t.Fatalf("seed %d survived its batched delete", i)
		}
	}
}

func TestCrossShardFlushAll(t *testing.T) {
	s := New(0, WithShards(8))
	for i := 0; i < 500; i++ {
		s.Set(fmt.Sprintf("flush-key-%d", i), []byte("v"), 0)
	}
	occupied := 0
	for i := range s.shards {
		if len(s.shards[i].items) > 0 {
			occupied++
		}
	}
	if occupied < 2 {
		t.Fatalf("only %d shards occupied before flush; test is vacuous", occupied)
	}
	s.FlushAll()
	if s.Len() != 0 {
		t.Fatalf("len after flush = %d", s.Len())
	}
	if st := s.Stats(); st.BytesUsed != 0 || st.Items != 0 {
		t.Fatalf("stats after flush: %+v", st)
	}
}

func TestPerShardEvictionIsolation(t *testing.T) {
	// Two keys on different shards; fill one shard past its budget. The
	// other shard's resident key must be untouched — eviction pressure is a
	// per-stripe affair.
	s := New(8*1024, WithShards(4))
	victimShard := s.shardIndex("pinned-key")
	s.Set("pinned-key", make([]byte, 64), 0)
	filler := 0
	for i := 0; filler < 200; i++ {
		k := fmt.Sprintf("filler-%d", i)
		if s.shardIndex(k) == victimShard {
			continue // keep the pressure off the pinned key's shard
		}
		s.Set(k, make([]byte, 64), 0)
		filler++
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under pressure: %+v", st)
	}
	if _, ok := s.Get("pinned-key"); !ok {
		t.Fatal("eviction pressure on other shards evicted the pinned key")
	}
	// And per-shard accounting holds: no shard over its slice of the budget.
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		used, cap := sh.used, sh.capacity
		sh.mu.Unlock()
		if used > cap {
			t.Fatalf("shard %d over budget: %d > %d", i, used, cap)
		}
	}
}

func TestCasTokensUniqueAcrossShards(t *testing.T) {
	s := New(0, WithShards(8))
	seen := map[uint64]string{}
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("cas-key-%d", i)
		s.Set(k, []byte("v"), 0)
		_, tok, ok := s.Gets(k)
		if !ok {
			t.Fatalf("Gets(%s) missed", k)
		}
		if prev, dup := seen[tok]; dup {
			t.Fatalf("cas token %d reused by %s and %s", tok, prev, k)
		}
		seen[tok] = k
	}
}

// TestShardedStoreRace is the -race exercise for the striped store: every
// mutating operation class runs concurrently across a keyspace spanning all
// shards, including cross-shard batches and flushes.
func TestShardedStoreRace(t *testing.T) {
	s := New(1<<18, WithShards(8))
	keys := make([]string, 128)
	for i := range keys {
		keys[i] = fmt.Sprintf("race-key-%d", i)
	}
	iters := 300
	if testing.Short() {
		iters = 100
	}
	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := keys[(g*31+i)%len(keys)]
				switch i % 8 {
				case 0:
					s.Set(k, []byte("val"), 0)
				case 1:
					s.Get(k)
				case 2:
					s.Delete(k)
				case 3:
					if v, tok, ok := s.Gets(k); ok {
						s.Cas(k, v, 0, tok)
					}
				case 4:
					s.Add(k, []byte("1"), time.Millisecond)
					s.Incr(k, 1)
				case 5:
					s.ApplyBatch([]BatchOp{
						{Kind: BatchSet, Key: k, Value: []byte("b")},
						{Kind: BatchDelete, Key: keys[(g*7+i)%len(keys)]},
						{Kind: BatchIncr, Key: "shared-ctr", Delta: 1},
					})
				case 6:
					s.Stats()
					s.Len()
				case 7:
					if i%64 == 0 {
						s.FlushAll()
					} else {
						s.GetQuiet(k)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// Post-churn invariants: accounting is non-negative and consistent.
	st := s.Stats()
	if st.BytesUsed < 0 || st.Items < 0 {
		t.Fatalf("corrupt accounting after churn: %+v", st)
	}
}

// TestExpirySweepReclaimsDeadBytes is the lazy-expiry capacity-leak
// regression: expired entries nobody touches again must stop occupying the
// byte budget once write traffic paces the sweep — before the sweep, they
// squatted until a capacity crunch evicted LIVE keys around them.
func TestExpirySweepReclaimsDeadBytes(t *testing.T) {
	now := time.Unix(9000, 0)
	s := New(0, WithShards(1), WithClock(func() time.Time { return now }))
	// A wave of short-TTL entries, old enough to sink to the LRU tail.
	const dead = 200
	for i := 0; i < dead; i++ {
		s.Set(fmt.Sprintf("dead-%d", i), make([]byte, 100), time.Second)
	}
	deadBytes := s.Stats().BytesUsed
	if deadBytes == 0 {
		t.Fatal("nothing accounted")
	}
	now = now.Add(time.Minute) // the whole wave is dead
	// Write traffic on OTHER keys paces the sweep; nobody touches dead-*.
	// Each sweepEveryWrites writes reap up to sweepScanEntries tail entries,
	// so this many overwrites clear the whole wave with room to spare.
	writes := (dead/sweepScanEntries + 2) * sweepEveryWrites
	for i := 0; i < writes; i++ {
		s.Set("live", []byte("v"), 0)
	}
	st := s.Stats()
	if st.Expired != dead {
		t.Fatalf("sweep reaped %d of %d dead entries: %+v", st.Expired, dead, st)
	}
	liveSize := int64(len("live") + 1 + entryOverhead)
	if st.BytesUsed != liveSize {
		t.Fatalf("dead entries still squat %d bytes (was %d, live key is %d): %+v",
			st.BytesUsed, deadBytes, liveSize, st)
	}
}

// TestExpirySweepProtectsLiveKeys is the user-visible half of the same
// regression: under capacity pressure, dead entries must be reclaimed as
// expired rather than forcing live keys out as evictions.
func TestExpirySweepProtectsLiveKeys(t *testing.T) {
	now := time.Unix(9500, 0)
	itemSize := int64(len("live-00") + 100 + entryOverhead)
	s := New(40*itemSize, WithShards(1), WithClock(func() time.Time { return now }))
	// 30 dead-to-be entries fill most of the budget...
	for i := 0; i < 30; i++ {
		s.Set(fmt.Sprintf("dead-%02d", i), make([]byte, 100), time.Second)
	}
	now = now.Add(time.Minute)
	// ...then 10 live keys arrive plus enough churn on one hot key to pace
	// the sweep. Capacity fits all 10 live keys only if the dead wave's
	// bytes come back.
	for i := 0; i < 10; i++ {
		s.Set(fmt.Sprintf("live-%02d", i), make([]byte, 100), 0)
	}
	for i := 0; i < 2*sweepEveryWrites; i++ {
		s.Set("hot", make([]byte, 100), 0)
	}
	for i := 0; i < 10; i++ {
		if _, ok := s.Get(fmt.Sprintf("live-%02d", i)); !ok {
			t.Fatalf("live-%02d evicted while expired entries squatted (stats %+v)", i, s.Stats())
		}
	}
	if st := s.Stats(); st.Evictions > 0 {
		t.Fatalf("live keys paid evictions for dead weight: %+v", st)
	}
}

// TestEvictionCountsExpiredTailAsExpired: an LRU-tail entry that is already
// past its TTL when pressure removes it is accounted Expired, not Evicted.
func TestEvictionCountsExpiredTailAsExpired(t *testing.T) {
	now := time.Unix(9700, 0)
	itemSize := int64(len("a-0") + 100 + entryOverhead)
	s := New(3*itemSize, WithShards(1), WithClock(func() time.Time { return now }))
	s.Set("a-0", make([]byte, 100), time.Second)
	s.Set("a-1", make([]byte, 100), 0)
	s.Set("a-2", make([]byte, 100), 0)
	now = now.Add(time.Minute) // a-0, at the tail, is now dead
	s.Set("a-3", make([]byte, 100), 0)
	st := s.Stats()
	if st.Evictions != 0 || st.Expired != 1 {
		t.Fatalf("expired tail misaccounted: %+v", st)
	}
}

func BenchmarkStoreShardedParallel(b *testing.B) {
	for _, shards := range []int{1, DefaultShards()} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := New(0, WithShards(shards))
			keys := make([]string, 1024)
			val := make([]byte, 128)
			for i := range keys {
				keys[i] = fmt.Sprintf("bench-key-%d", i)
				s.Set(keys[i], val, 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				r := uint32(12345)
				for pb.Next() {
					r = r*1664525 + 1013904223
					k := keys[r%1024]
					if r%10 == 0 {
						s.Set(k, val, 0)
					} else {
						s.Get(k)
					}
				}
			})
		})
	}
}
