package kvcache

import (
	"testing"
	"time"

	"cachegenie/internal/latency"
)

func TestStoreApplyBatch(t *testing.T) {
	s := New(0)
	s.Set("old", []byte("x"), 0)
	s.Set("ctr", []byte("41"), 0)
	res := s.ApplyBatch([]BatchOp{
		{Kind: BatchSet, Key: "a", Value: []byte("va")},
		{Kind: BatchIncr, Key: "ctr", Delta: 1},
		{Kind: BatchDelete, Key: "old"},
		{Kind: BatchDelete, Key: "missing"},
		{Kind: BatchIncr, Key: "missing", Delta: 1},
	})
	want := []BatchResult{
		{Found: true},
		{Found: true, Value: 42},
		{Found: true},
		{Found: false},
		{Found: false},
	}
	for i, w := range want {
		if res[i] != w {
			t.Fatalf("op %d: result %+v, want %+v", i, res[i], w)
		}
	}
	if v, ok := s.Get("a"); !ok || string(v) != "va" {
		t.Fatalf("a = %q/%v", v, ok)
	}
	if v, _ := s.Get("ctr"); string(v) != "42" {
		t.Fatalf("ctr = %q", v)
	}
	if _, ok := s.Get("old"); ok {
		t.Fatal("old not deleted")
	}
}

func TestApplyBatchOnFallback(t *testing.T) {
	s := New(0)
	var c Cache = plainCache{s}
	res := ApplyBatchOn(c, []BatchOp{
		{Kind: BatchSet, Key: "k", Value: []byte("v")},
		{Kind: BatchDelete, Key: "k"},
	})
	if !res[0].Found || !res[1].Found {
		t.Fatalf("results = %+v", res)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("k survived")
	}
}

// plainCache hides the Store's batch entry point: embedding the interface
// (not *Store) keeps ApplyBatch out of the wrapper's method set, so
// ApplyBatchOn must take the per-op fallback path.
type plainCache struct{ Cache }

func TestLatencyCacheBatchChargesOneRoundTrip(t *testing.T) {
	s := New(0)
	sleeper := &latency.CountingSleeper{}
	lc := WithLatency(s, time.Millisecond, sleeper)
	ops := make([]BatchOp, 50)
	for i := range ops {
		ops[i] = BatchOp{Kind: BatchSet, Key: "k", Value: []byte("v")}
	}
	lc.ApplyBatch(ops)
	if got := sleeper.Calls(); got != 1 {
		t.Fatalf("round trips charged = %d, want 1 for the whole batch", got)
	}
}
