package kvcache

import (
	"time"

	"cachegenie/internal/latency"
)

// LatencyCache wraps a Cache and charges a fixed round-trip cost per
// operation, simulating a cache reached over the network. The experiment
// harness wraps the in-process Store with the paper's measured ~0.2 ms
// memcached round-trip (§5.3).
type LatencyCache struct {
	inner   Cache
	rtt     time.Duration
	sleeper latency.Sleeper
}

// WithLatency decorates inner with a per-operation round-trip charge.
func WithLatency(inner Cache, rtt time.Duration, sleeper latency.Sleeper) *LatencyCache {
	if sleeper == nil {
		sleeper = latency.RealSleeper{}
	}
	return &LatencyCache{inner: inner, rtt: rtt, sleeper: sleeper}
}

var _ Cache = (*LatencyCache)(nil)

// Unwrap returns the wrapped cache, letting callers reach through the
// latency decoration for capabilities the Cache interface doesn't carry
// (core.Genie walks the chain to find the cluster ring's replica stats).
func (l *LatencyCache) Unwrap() Cache { return l.inner }

func (l *LatencyCache) charge() { l.sleeper.Sleep(l.rtt) }

// Get implements Cache.
func (l *LatencyCache) Get(key string) ([]byte, bool) {
	l.charge()
	return l.inner.Get(key)
}

// Gets implements Cache.
func (l *LatencyCache) Gets(key string) ([]byte, uint64, bool) {
	l.charge()
	return l.inner.Gets(key)
}

// Set implements Cache.
func (l *LatencyCache) Set(key string, value []byte, ttl time.Duration) {
	l.charge()
	l.inner.Set(key, value, ttl)
}

// Add implements Cache.
func (l *LatencyCache) Add(key string, value []byte, ttl time.Duration) bool {
	l.charge()
	return l.inner.Add(key, value, ttl)
}

// Cas implements Cache.
func (l *LatencyCache) Cas(key string, value []byte, ttl time.Duration, cas uint64) CasResult {
	l.charge()
	return l.inner.Cas(key, value, ttl, cas)
}

// Delete implements Cache.
func (l *LatencyCache) Delete(key string) bool {
	l.charge()
	return l.inner.Delete(key)
}

// Incr implements Cache.
func (l *LatencyCache) Incr(key string, delta int64) (int64, bool) {
	l.charge()
	return l.inner.Incr(key, delta)
}

// FlushAll implements Cache.
func (l *LatencyCache) FlushAll() {
	l.charge()
	l.inner.FlushAll()
}
