package kvcache

import "time"

// BatchOpKind discriminates the mutations that can ride in a batch.
type BatchOpKind int

// Batchable mutations. CAS is deliberately absent: a compare-and-swap is
// read-dependent and must run as its own gets/cas exchange; the invalidation
// bus executes those individually between batched segments.
const (
	BatchDelete BatchOpKind = iota
	BatchSet
	BatchIncr
	// BatchAdd stores only if the key is absent, like Cache.Add. Cluster
	// key-handoff warmup rides on it: a batch of adds copies a remapped
	// share to its new owner without clobbering any fresher value a
	// concurrent write already landed there.
	BatchAdd
)

// String implements fmt.Stringer.
func (k BatchOpKind) String() string {
	switch k {
	case BatchDelete:
		return "delete"
	case BatchSet:
		return "set"
	case BatchIncr:
		return "incr"
	case BatchAdd:
		return "add"
	}
	return "unknown"
}

// BatchOp is one mutation in a batch.
type BatchOp struct {
	Kind  BatchOpKind
	Key   string
	Value []byte        // BatchSet / BatchAdd payload
	TTL   time.Duration // BatchSet / BatchAdd entry lifetime (0 = no expiry)
	Delta int64         // BatchIncr increment (may be negative)
}

// BatchResult reports one op's outcome, positionally matching the batch.
type BatchResult struct {
	// Found is true when a delete removed a live entry or an incr found a
	// numeric entry; sets always report true.
	Found bool
	// Value is the post-increment value for BatchIncr.
	Value int64
}

// BatchApplier is implemented by caches that can apply many mutations in a
// single exchange: the in-process Store (one lock acquisition), the
// cacheproto client (one pipelined round trip), the cluster ring (one
// sub-batch per owning node), and the latency wrapper (one round-trip
// charge). The invalidation bus flushes through this interface.
type BatchApplier interface {
	ApplyBatch(ops []BatchOp) []BatchResult
}

// ApplyBatchOn applies ops to c, using its native batch entry point when it
// has one and falling back to per-op calls otherwise.
func ApplyBatchOn(c Cache, ops []BatchOp) []BatchResult {
	if ba, ok := c.(BatchApplier); ok {
		return ba.ApplyBatch(ops)
	}
	out := make([]BatchResult, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case BatchSet:
			c.Set(op.Key, op.Value, op.TTL)
			out[i] = BatchResult{Found: true}
		case BatchAdd:
			out[i] = BatchResult{Found: c.Add(op.Key, op.Value, op.TTL)}
		case BatchIncr:
			n, ok := c.Incr(op.Key, op.Delta)
			out[i] = BatchResult{Found: ok, Value: n}
		default:
			out[i] = BatchResult{Found: c.Delete(op.Key)}
		}
	}
	return out
}

var _ BatchApplier = (*Store)(nil)

// ApplyBatch implements BatchApplier with one lock acquisition per involved
// shard: ops group by owning shard (a counting sort, preserving each
// shard's op order — ops on the same key always hit the same shard), then
// each group applies under a single lock hold. A batch that lands on one
// shard costs exactly one acquisition, as the un-striped store did; a batch
// spanning shards contends with nothing outside the shards it touches.
func (s *Store) ApplyBatch(ops []BatchOp) []BatchResult {
	out := make([]BatchResult, len(ops))
	if len(ops) == 0 {
		return out
	}
	if len(s.shards) == 1 {
		sh := &s.shards[0]
		sh.mu.Lock()
		for i := range ops {
			out[i] = s.applyOpLocked(sh, &ops[i])
		}
		sh.mu.Unlock()
		return out
	}
	// Batches smaller than the shard count skip the grouping machinery:
	// their ops mostly land on distinct shards anyway, so per-op lock
	// acquisitions cost less than allocating O(NumShards) bookkeeping (the
	// common invalidation-bus flush is a handful of ops), and per-key
	// ordering is position order either way.
	if len(ops) <= 8 || len(ops) < len(s.shards) {
		for i := range ops {
			sh := s.shardFor(ops[i].Key)
			sh.mu.Lock()
			out[i] = s.applyOpLocked(sh, &ops[i])
			sh.mu.Unlock()
		}
		return out
	}
	// Counting sort of op indices by shard.
	shardOf := make([]uint32, len(ops))
	counts := make([]int32, len(s.shards))
	for i := range ops {
		si := fnv1a32(ops[i].Key) & s.mask
		shardOf[i] = si
		counts[si]++
	}
	starts := make([]int32, len(s.shards))
	var sum int32
	for i, c := range counts {
		starts[i] = sum
		sum += c
	}
	order := make([]int32, len(ops))
	next := append([]int32(nil), starts...)
	for i := range ops {
		si := shardOf[i]
		order[next[si]] = int32(i)
		next[si]++
	}
	for si := range s.shards {
		if counts[si] == 0 {
			continue
		}
		sh := &s.shards[si]
		sh.mu.Lock()
		for _, idx := range order[starts[si]:next[si]] {
			out[idx] = s.applyOpLocked(sh, &ops[idx])
		}
		sh.mu.Unlock()
	}
	return out
}

// applyOpLocked executes one batch op on its shard. Caller holds sh.mu.
func (s *Store) applyOpLocked(sh *shard, op *BatchOp) BatchResult {
	switch op.Kind {
	case BatchSet:
		s.setLocked(sh, op.Key, op.Value, op.TTL, true)
		return BatchResult{Found: true}
	case BatchAdd:
		if e, ok := sh.items[op.Key]; ok && !s.expiredLocked(sh, e) {
			return BatchResult{}
		}
		s.setLocked(sh, op.Key, op.Value, op.TTL, true)
		return BatchResult{Found: true}
	case BatchIncr:
		n, ok := s.incrLocked(sh, op.Key, op.Delta)
		return BatchResult{Found: ok, Value: n}
	default:
		return BatchResult{Found: s.deleteLocked(sh, op.Key)}
	}
}

var _ BatchApplier = (*LatencyCache)(nil)

// ApplyBatch implements BatchApplier: the whole batch costs one round trip —
// the amortization the invalidation bus exists to exploit.
func (l *LatencyCache) ApplyBatch(ops []BatchOp) []BatchResult {
	l.charge()
	return ApplyBatchOn(l.inner, ops)
}
