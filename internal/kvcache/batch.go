package kvcache

import "time"

// BatchOpKind discriminates the mutations that can ride in a batch.
type BatchOpKind int

// Batchable mutations. CAS is deliberately absent: a compare-and-swap is
// read-dependent and must run as its own gets/cas exchange; the invalidation
// bus executes those individually between batched segments.
const (
	BatchDelete BatchOpKind = iota
	BatchSet
	BatchIncr
)

// String implements fmt.Stringer.
func (k BatchOpKind) String() string {
	switch k {
	case BatchDelete:
		return "delete"
	case BatchSet:
		return "set"
	case BatchIncr:
		return "incr"
	}
	return "unknown"
}

// BatchOp is one mutation in a batch.
type BatchOp struct {
	Kind  BatchOpKind
	Key   string
	Value []byte        // BatchSet payload
	TTL   time.Duration // BatchSet entry lifetime (0 = no expiry)
	Delta int64         // BatchIncr increment (may be negative)
}

// BatchResult reports one op's outcome, positionally matching the batch.
type BatchResult struct {
	// Found is true when a delete removed a live entry or an incr found a
	// numeric entry; sets always report true.
	Found bool
	// Value is the post-increment value for BatchIncr.
	Value int64
}

// BatchApplier is implemented by caches that can apply many mutations in a
// single exchange: the in-process Store (one lock acquisition), the
// cacheproto client (one pipelined round trip), the cluster ring (one
// sub-batch per owning node), and the latency wrapper (one round-trip
// charge). The invalidation bus flushes through this interface.
type BatchApplier interface {
	ApplyBatch(ops []BatchOp) []BatchResult
}

// ApplyBatchOn applies ops to c, using its native batch entry point when it
// has one and falling back to per-op calls otherwise.
func ApplyBatchOn(c Cache, ops []BatchOp) []BatchResult {
	if ba, ok := c.(BatchApplier); ok {
		return ba.ApplyBatch(ops)
	}
	out := make([]BatchResult, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case BatchSet:
			c.Set(op.Key, op.Value, op.TTL)
			out[i] = BatchResult{Found: true}
		case BatchIncr:
			n, ok := c.Incr(op.Key, op.Delta)
			out[i] = BatchResult{Found: ok, Value: n}
		default:
			out[i] = BatchResult{Found: c.Delete(op.Key)}
		}
	}
	return out
}

var _ BatchApplier = (*Store)(nil)

// ApplyBatch implements BatchApplier under a single lock acquisition.
func (s *Store) ApplyBatch(ops []BatchOp) []BatchResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]BatchResult, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case BatchSet:
			s.setLocked(op.Key, op.Value, op.TTL, true)
			out[i] = BatchResult{Found: true}
		case BatchIncr:
			n, ok := s.incrLocked(op.Key, op.Delta)
			out[i] = BatchResult{Found: ok, Value: n}
		default:
			out[i] = BatchResult{Found: s.deleteLocked(op.Key)}
		}
	}
	return out
}

var _ BatchApplier = (*LatencyCache)(nil)

// ApplyBatch implements BatchApplier: the whole batch costs one round trip —
// the amortization the invalidation bus exists to exploit.
func (l *LatencyCache) ApplyBatch(ops []BatchOp) []BatchResult {
	l.charge()
	return ApplyBatchOn(l.inner, ops)
}
