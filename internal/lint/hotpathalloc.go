package lint

import (
	"go/ast"
	"go/types"
)

// HotPathAlloc flags allocating constructs inside functions whose doc
// comment carries //genie:hotpath — the zero-allocation protocol paths
// (cacheproto server/client request handling, the kvcache []byte entry
// points, obs recording). The -benchmem CI gate measures the property at
// runtime; this analyzer catches the mistake at merge time, in branches a
// benchmark may not cover.
//
// Flagged:
//   - any call into package fmt (fmt.Errorf on a hot branch is the classic
//     regression);
//   - string(b) / []byte(s) conversions, except string(b) in the
//     compiler-recognized non-allocating contexts (switch tag, ==/!=
//     comparison, map index);
//   - function literals (closure capture allocates);
//   - string concatenation with +;
//   - passing a non-pointer-shaped concrete value where an interface is
//     expected (boxing allocates; pointers do not).
//
// Deliberately not flagged: make/append/new and composite literals —
// buffer growth is amortized by reuse and is exactly what the -benchmem
// gate measures; forbidding it statically would outlaw the reusable-buffer
// idiom the hot path is built on.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocating constructs in //genie:hotpath functions",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !funcDocHasMarker(fn, "hotpath") {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Info
	var parents []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in hot path: the captured environment allocates")
			return // don't descend; one finding per literal
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				// Report the outermost + of a concat chain once.
				outerConcat := false
				if len(parents) > 0 {
					if pb, ok := parents[len(parents)-1].(*ast.BinaryExpr); ok && pb.Op.String() == "+" {
						outerConcat = true
					}
				}
				if tv, ok := info.Types[n]; ok && isStringType(tv.Type) && tv.Value == nil && !outerConcat {
					pass.Reportf(n.Pos(), "string concatenation allocates in hot path")
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, n, parents)
		}
		parents = append(parents, n)
		ast.Inspect(n, func(child ast.Node) bool {
			if child == n || child == nil {
				return child == n
			}
			walk(child)
			return false
		})
		parents = parents[:len(parents)-1]
	}
	walk(fn.Body)
}

func checkHotCall(pass *Pass, call *ast.CallExpr, parents []ast.Node) {
	info := pass.Info
	// Type conversion?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.Types[call.Args[0]].Type
		if src == nil {
			return
		}
		switch {
		case isStringType(dst) && isByteSlice(src):
			if !conversionContextFree(call, parents) {
				pass.Reportf(call.Pos(), "string([]byte) conversion escapes and allocates; keep hot-path keys as []byte")
			}
		case isByteSlice(dst) && isStringType(src):
			pass.Reportf(call.Pos(), "[]byte(string) conversion allocates per call; hoist to a package-level var")
		}
		return
	}
	// fmt.* call?
	if path := calleePkgPath(info, call); path == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s allocates (formatting, boxing); use strconv.Append* / errors.New", calleeName(call))
		return
	}
	// Interface boxing in call args.
	sigTV, ok := info.Types[call.Fun]
	if !ok || sigTV.IsType() {
		return
	}
	sig, ok := sigTV.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var paramT types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if s, ok := last.(*types.Slice); ok {
				paramT = s.Elem()
			}
		case i < sig.Params().Len():
			paramT = sig.Params().At(i).Type()
		}
		if paramT == nil || !types.IsInterface(paramT) {
			continue
		}
		argTV, ok := info.Types[arg]
		if !ok || argTV.Type == nil {
			continue
		}
		at := argTV.Type
		if types.IsInterface(at) || isPointerShaped(at) || argTV.IsNil() {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
			continue
		}
		pass.Reportf(arg.Pos(), "passing %s where %s is expected boxes the value (allocates); pass a pointer or avoid the interface", at, paramT)
	}
}

// conversionContextFree reports whether a string([]byte) conversion sits in
// a context the compiler compiles without allocating: a switch tag, one
// side of ==/!=, or a map index.
func conversionContextFree(call *ast.CallExpr, parents []ast.Node) bool {
	if len(parents) == 0 {
		return false
	}
	switch p := parents[len(parents)-1].(type) {
	case *ast.SwitchStmt:
		return p.Tag == call
	case *ast.BinaryExpr:
		op := p.Op.String()
		return op == "==" || op == "!="
	case *ast.IndexExpr:
		return p.Index == call
	case *ast.CaseClause:
		return true
	}
	return false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}
