package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, typechecked package (non-test files only: the
// invariants genielint encodes are production-path properties, and test
// files legitimately sleep, block, and allocate).
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Export     string
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") in dir with `go list -export`,
// parses every matched package's non-test files, and typechecks them
// against the compiler export data of their dependencies. It is a
// dependency-free stand-in for x/tools' go/packages driver: `go list`
// does the build-system work (module resolution, compile), and go/types
// does the rest.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exportFiles := map[string]string{}
	var targets []*listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exportFiles[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.Name != "" {
			cp := p
			targets = append(targets, &cp)
		}
	}

	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exportFiles[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}

	var pkgs []*Package
	for _, p := range targets {
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{
			Importer: importer.ForCompiler(fset, "gc", lookup),
			Error:    func(error) {}, // collect what we can; first hard error below
		}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: typechecking %s: %w", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  p.ImportPath,
			Name:  p.Name,
			Dir:   p.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}
