package lint_test

import (
	"regexp"
	"testing"

	"cachegenie/internal/lint"
)

// The fixture harness mirrors x/tools' analysistest: each fixture package
// under testdata/src carries `// want `+"`regex`"+` comments on the lines
// where diagnostics are expected; the test fails on any unmatched want and
// any unexpected diagnostic.

var (
	wantRe    = regexp.MustCompile(`want\s+(.+)$`)
	wantTokRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

type wantDiag struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func runFixture(t *testing.T, a *lint.Analyzer, pkg string) {
	t.Helper()
	pkgs, err := lint.Load("testdata/src", "./"+pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want exactly 1", len(pkgs))
	}
	p := pkgs[0]
	diags, err := lint.Run(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	var wants []*wantDiag
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				for _, tok := range wantTokRe.FindAllString(m[1], -1) {
					re, err := regexp.Compile(tok[1 : len(tok)-1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, tok, err)
					}
					wants = append(wants, &wantDiag{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q matched no diagnostic", w.file, w.line, w.re)
		}
	}
}

func TestHotPathAllocFixture(t *testing.T)   { runFixture(t, lint.HotPathAlloc, "hotpath") }
func TestLockScopeFixture(t *testing.T)      { runFixture(t, lint.LockScope, "lockscope") }
func TestNetDeadlineFixture(t *testing.T)    { runFixture(t, lint.NetDeadline, "cacheproto") }
func TestNetDeadlineGobFixture(t *testing.T) { runFixture(t, lint.NetDeadline, "dbproto") }
func TestObsNamingFixture(t *testing.T)      { runFixture(t, lint.ObsNaming, "obsfix") }
func TestLabelCardinalityFixture(t *testing.T) {
	runFixture(t, lint.LabelCardinality, "labelcard")
}
func TestNolintFixture(t *testing.T)   { runFixture(t, lint.HotPathAlloc, "nolintfix") }
func TestGoroLeakFixture(t *testing.T) { runFixture(t, lint.GoroLeak, "goroleak") }
