package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// NetDeadline enforces the PR 7 invariant in the wire-protocol packages
// (cacheproto, loadctl, dbproto): every raw network read or write —
// net.Conn Read/Write, bufio.Reader/bufio.Writer methods, io.ReadFull,
// gob.Encoder.Encode/gob.Decoder.Decode — must be
// dominated, earlier in the same function, by a deadline arm: a direct
// SetDeadline/SetReadDeadline/SetWriteDeadline, or a call to a helper whose
// name mentions Deadline or OpTimeout (armDeadline, withOpTimeout).
//
// Helpers that perform I/O on behalf of already-armed callers opt out with
// //genie:deadlinearmed <why> in their doc comment; the annotation is the
// audit trail for "my caller armed the clock". Without a deadline, one
// stalled peer pins a goroutine (and whatever buffers/locks it holds)
// forever — the slow-client wedge the server's per-request deadlines exist
// to prevent.
var NetDeadline = &Analyzer{
	Name: "netdeadline",
	Doc:  "network reads/writes in cacheproto and loadctl must be deadline-armed",
	Run:  runNetDeadline,
}

// netDeadlinePkgs are the package names (not paths, so fixtures match) the
// analyzer patrols: the ones that own long-lived wire connections.
var netDeadlinePkgs = map[string]bool{
	"cacheproto": true,
	"loadctl":    true,
	"dbproto":    true,
}

// gobMethodRecv are gob codec types whose Encode/Decode block on the
// underlying connection — the wire I/O of the dbproto protocol.
var gobMethodRecv = map[string]bool{
	"gob.Encoder": true,
	"gob.Decoder": true,
}

// ioMethodNames are bufio.Reader/bufio.Writer methods that move bytes to or
// from the underlying connection (shared with lockscope's blocking-call
// rule).
var ioMethodNames = map[string]bool{
	"Read": true, "ReadByte": true, "ReadBytes": true, "ReadSlice": true,
	"ReadString": true, "ReadLine": true, "ReadRune": true,
	"Write": true, "WriteByte": true, "WriteString": true, "WriteRune": true,
	"Flush": true, "Peek": true, "Discard": true,
}

func runNetDeadline(pass *Pass) error {
	if !netDeadlinePkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || funcDocHasMarker(fn, "deadlinearmed") {
				continue
			}
			checkDeadlineFunc(pass, fn)
		}
	}
	return nil
}

func checkDeadlineFunc(pass *Pass, fn *ast.FuncDecl) {
	// Pass 1: positions of deadline arms in this function.
	var arms []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := calleeName(call); strings.Contains(name, "Deadline") || strings.Contains(name, "OpTimeout") {
			arms = append(arms, call.Pos())
		}
		return true
	})
	armedBefore := func(pos token.Pos) bool {
		for _, a := range arms {
			if a < pos {
				return true
			}
		}
		return false
	}

	// Pass 2: flag unguarded I/O calls.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // goroutines/closures are separate control flow
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		var what string
		switch {
		case isNetConnExpr(pass.Info, call) && (name == "Read" || name == "Write"):
			what = "net.Conn " + name
		case blockingMethodRecv[recvTypeName(pass.Info, call)] && ioMethodNames[name]:
			what = recvTypeName(pass.Info, call) + "." + name
		case calleePkgPath(pass.Info, call) == "io" && name == "ReadFull":
			what = "io.ReadFull"
		case gobMethodRecv[recvTypeName(pass.Info, call)] && (name == "Encode" || name == "Decode"):
			what = recvTypeName(pass.Info, call) + "." + name
		default:
			return true
		}
		if !armedBefore(call.Pos()) {
			pass.Reportf(call.Pos(), "%s without an earlier Set*Deadline/OpTimeout arm in this function; a stalled peer pins this goroutine forever (annotate //genie:deadlinearmed if the caller arms it)", what)
		}
		return true
	})
}
