package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoroLeak flags `go` statements that spawn a goroutine with no visible
// lifetime tie: nothing in the spawned body (or, for `go f()` / `go x.m()`
// on an in-package function, in that function's body) shows how the
// goroutine ever stops. Accepted evidence of a tie:
//
//   - a WaitGroup Done call (the spawner, or a Close/Wait elsewhere, joins
//     it);
//   - a channel receive, select, or range over a channel (it parks on a
//     channel the owner closes or signals — the WAL group-commit writer's
//     `for req := range reqCh` is the motivating shape);
//   - a context Err/Deadline check or an Accept/Serve loop (it exits when
//     the context is cancelled or the listener closes);
//   - a send on a channel the spawning function visibly receives from (the
//     `done := make(chan T); go func() { ...; done <- v }(); <-done` join).
//
// A goroutine without any of these outlives every reference to it: it
// cannot be flushed on shutdown, holds its captures forever, and turns
// clean process exit into `kill`. Deliberately process-lifetime goroutines
// opt out with //genie:nolint goroleak -- <why>.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "go statements must show how the goroutine stops (WaitGroup Done, channel receive/select/range, Accept/Serve loop)",
	Run:  runGoroLeak,
}

// goroTieCallees are callee names that count as lifetime evidence on their
// own: joining a WaitGroup, watching a context, or looping on a listener
// that the owner closes to stop the goroutine.
var goroTieCallees = map[string]bool{
	"Done": true, "Accept": true, "Serve": true, "Err": true,
}

func runGoroLeak(pass *Pass) error {
	decls := packageFuncDecls(pass)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			recvChans := receivedChannels(pass, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if goroTied(pass, g.Call, decls, recvChans, 0) {
					return true
				}
				pass.Reportf(g.Pos(), "goroutine's lifetime is not visibly tied to its owner (no WaitGroup Done, channel receive/select/range, or Accept/Serve loop in the spawned body, and no send on a channel the spawner receives from); it cannot be joined on shutdown (annotate //genie:nolint goroleak if it is deliberately process-lifetime)")
				return true
			})
		}
	}
	return nil
}

// receivedChannels collects the channel objects a function body visibly
// receives from (<-ch, range ch, or a select case on ch): a goroutine that
// sends on one of these is joined by its spawner.
func receivedChannels(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	chans := make(map[types.Object]bool)
	record := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				chans[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				record(n.X)
			}
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					record(n.X)
				}
			}
		}
		return true
	})
	return chans
}

// packageFuncDecls indexes this package's function declarations by their
// types object, so `go x.run()` can be chased into run's body.
func packageFuncDecls(pass *Pass) map[types.Object]*ast.FuncDecl {
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Name != nil {
				if obj := pass.Info.Defs[fn.Name]; obj != nil {
					decls[obj] = fn
				}
			}
		}
	}
	return decls
}

// goroTied reports whether the spawned call shows lifetime evidence,
// chasing one level of in-package indirection (`go w.run()` → run's body).
func goroTied(pass *Pass, call *ast.CallExpr, decls map[types.Object]*ast.FuncDecl, recvChans map[types.Object]bool, depth int) bool {
	if depth > 2 {
		return false
	}
	// go func() { ... }(): inspect the literal body directly.
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return bodyShowsTie(pass, lit.Body, decls, recvChans, depth)
	}
	// go f(...) / go x.m(...): chase an in-package declaration.
	if fn := calleeDecl(pass, call, decls); fn != nil && fn.Body != nil {
		return bodyShowsTie(pass, fn.Body, decls, recvChans, depth)
	}
	// Out-of-package callee (go io.Copy(...), go conn.Close()): nothing to
	// inspect, demand an explicit nolint.
	return false
}

func calleeDecl(pass *Pass, call *ast.CallExpr, decls map[types.Object]*ast.FuncDecl) *ast.FuncDecl {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return nil
	}
	return decls[obj]
}

// bodyShowsTie scans one function body for lifetime evidence. Calls to
// other in-package functions are chased one more level so a goroutine body
// that just dispatches (`go func() { s.loop() }()`) still resolves.
func bodyShowsTie(pass *Pass, body *ast.BlockStmt, decls map[types.Object]*ast.FuncDecl, recvChans map[types.Object]bool, depth int) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			tied = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				tied = true
			}
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					tied = true
				}
			}
		case *ast.SendStmt:
			if id, ok := n.Chan.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil && recvChans[obj] {
					tied = true
				}
			}
		case *ast.CallExpr:
			name := calleeName(n)
			if goroTieCallees[name] || strings.Contains(name, "Deadline") {
				tied = true
				return false
			}
			if fn := calleeDecl(pass, n, decls); fn != nil && fn.Body != nil && depth < 2 {
				if bodyShowsTie(pass, fn.Body, decls, recvChans, depth+1) {
					tied = true
				}
			}
		}
		return !tied
	})
	return tied
}
