package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockScope enforces two mutex disciplines:
//
//  1. Every sync.Mutex/RWMutex Lock()/RLock() must have a matching
//     Unlock()/RUnlock() on the same receiver somewhere in the same
//     function (direct or deferred). Lock/unlock pairs split across
//     functions ("caller unlocks") are how shard locks leak.
//
//  2. Mutex fields or variables annotated //genie:nonblocking (the shard
//     and pool data locks — anything a request path contends on) must not
//     be held across blocking calls: channel sends/receives, select,
//     time.Sleep, net dials, raw conn/bufio I/O, or WaitGroup.Wait. One
//     goroutine sleeping inside a shard lock stalls every key that hashes
//     there — the latency cliff the striped store exists to avoid.
//
// The held region is approximated conservatively in source order: from the
// Lock to the first matching non-deferred Unlock (or to the end of the
// function when the Unlock is deferred). Branch-heavy manual unlock
// patterns (the pool's checkout loop) therefore stay quiet, while the
// common defer-scoped shape is checked end to end. sync.Cond.Wait is
// exempt: it releases the mutex while blocked.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc:  "mutex Lock/Unlock pairing and no blocking calls under //genie:nonblocking mutexes",
	Run:  runLockScope,
}

var lockPairs = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

func runLockScope(pass *Pass) error {
	nonblocking := collectNonblockingMutexes(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLockScopeFunc(pass, fn, nonblocking)
		}
	}
	return nil
}

// collectNonblockingMutexes finds mutex struct fields and package-level
// vars whose declaration carries //genie:nonblocking.
func collectNonblockingMutexes(pass *Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(names []*ast.Ident, doc, line *ast.CommentGroup) {
		if !commentGroupHasMarker(doc, "nonblocking") && !commentGroupHasMarker(line, "nonblocking") {
			return
		}
		for _, name := range names {
			if obj := pass.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					mark(field.Names, field.Doc, field.Comment)
				}
			case *ast.ValueSpec:
				mark(n.Names, n.Doc, n.Comment)
			}
			return true
		})
	}
	return out
}

func commentGroupHasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := c.Text
		if len(text) >= 2 && (containsMarker(text, marker)) {
			return true
		}
	}
	return false
}

func containsMarker(text, marker string) bool {
	for i := 0; i+len("genie:")+len(marker) <= len(text); i++ {
		if text[i:i+len("genie:")] == "genie:" && text[i+len("genie:"):i+len("genie:")+len(marker)] == marker {
			return true
		}
	}
	return false
}

// lockEvent is one Lock/Unlock call site within a function, in source order.
type lockEvent struct {
	pos      token.Pos
	recv     string // receiver text, e.g. "sh.mu"
	name     string // Lock | RLock | Unlock | RUnlock
	deferred bool
	obj      types.Object // field/var object of the mutex, if resolvable
}

func checkLockScopeFunc(pass *Pass, fn *ast.FuncDecl, nonblocking map[types.Object]bool) {
	var events []lockEvent
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		deferred := false
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.DeferStmt:
			call = n.Call
			deferred = true
		case *ast.CallExpr:
			call = n
		default:
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if _, isLock := lockPairs[name]; !isLock && name != "Unlock" && name != "RUnlock" {
			return true
		}
		if rt := recvTypeName(pass.Info, call); rt != "sync.Mutex" && rt != "sync.RWMutex" {
			return true
		}
		events = append(events, lockEvent{
			pos:      call.Pos(),
			recv:     exprText(sel.X),
			name:     name,
			deferred: deferred,
			obj:      mutexObject(pass.Info, sel.X),
		})
		return !deferred // a deferred Unlock's args need no walk
	})
	if len(events) == 0 {
		return
	}

	for _, ev := range events {
		unlockName, isLock := lockPairs[ev.name]
		if !isLock {
			continue
		}
		// Rule 1: a matching Unlock on the same receiver, somewhere in the
		// same function.
		end := token.Pos(0)
		haveDeferred := false
		for _, other := range events {
			if other.recv != ev.recv || other.name != unlockName || other.pos <= ev.pos {
				continue
			}
			if other.deferred {
				haveDeferred = true
				continue
			}
			end = other.pos
			break
		}
		if end == 0 && !haveDeferred {
			pass.Reportf(ev.pos, "%s.%s() without a matching %s in this function; lock/unlock pairs must not straddle function boundaries", ev.recv, ev.name, unlockName)
			continue
		}
		// Rule 2: nothing blocking while an annotated mutex is held.
		if ev.obj == nil || !nonblocking[ev.obj] {
			continue
		}
		if end == 0 {
			end = fn.Body.End() // deferred unlock: held to function exit
		}
		reportBlockingBetween(pass, fn, ev, end)
	}
}

// mutexObject resolves the mutex expression ("sh.mu") to the field or var
// object of its final selector.
func mutexObject(info *types.Info, x ast.Expr) types.Object {
	switch x := x.(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			return sel.Obj()
		}
		return info.Uses[x.Sel]
	case *ast.ParenExpr:
		return mutexObject(info, x.X)
	}
	return nil
}

// blockingFuncs maps package path → function names that block.
var blockingFuncs = map[string]map[string]bool{
	"time": {"Sleep": true, "After": false /* returning a chan is fine */},
	"net":  {"Dial": true, "DialTimeout": true, "Listen": true, "ListenPacket": true},
}

// blockingMethodRecv are receiver types whose I/O methods block on the
// network (or a peer's read pace).
var blockingMethodRecv = map[string]bool{
	"bufio.Reader": true,
	"bufio.Writer": true,
}

func reportBlockingBetween(pass *Pass, fn *ast.FuncDecl, ev lockEvent, end token.Pos) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() <= ev.pos || n.Pos() >= end {
			// Still descend: a node can start before ev.pos but contain the
			// held region.
			return n.End() > ev.pos
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a goroutine body launched under the lock runs later
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send while %s is held (//genie:nonblocking); a full channel stalls every waiter on this mutex", ev.recv)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive while %s is held (//genie:nonblocking)", ev.recv)
			}
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select while %s is held (//genie:nonblocking)", ev.recv)
			return false
		case *ast.CallExpr:
			name := calleeName(n)
			if pkg := calleePkgPath(pass.Info, n); pkg != "" {
				if fns, ok := blockingFuncs[pkg]; ok && fns[name] {
					pass.Reportf(n.Pos(), "%s.%s while %s is held (//genie:nonblocking)", pkg, name, ev.recv)
					return true
				}
			}
			rt := recvTypeName(pass.Info, n)
			switch {
			case rt == "sync.WaitGroup" && name == "Wait":
				pass.Reportf(n.Pos(), "WaitGroup.Wait while %s is held (//genie:nonblocking)", ev.recv)
			case isNetConnExpr(pass.Info, n) && (name == "Read" || name == "Write"):
				pass.Reportf(n.Pos(), "net.Conn %s while %s is held (//genie:nonblocking)", name, ev.recv)
			case blockingMethodRecv[rt] && ioMethodNames[name]:
				pass.Reportf(n.Pos(), "%s.%s (network I/O) while %s is held (//genie:nonblocking)", rt, name, ev.recv)
			}
		}
		return true
	})
}

// isNetConnExpr reports whether a method call's receiver implements or is
// net.Conn (interface receivers resolve through Selections).
func isNetConnExpr(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net" && (obj.Name() == "Conn" || obj.Name() == "TCPConn")
}
