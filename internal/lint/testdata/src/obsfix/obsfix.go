// Package obsfix exercises the obsnaming analyzer.
package obsfix

import (
	"fmt"

	"fixtures/obs"
)

func register(reg *obs.Registry, node string, id int) {
	reg.Counter("cachegenie_good_ops_total", `node="a"`, "ok")
	reg.Counter("genieload_ops_total", "", "bad prefix")                      // want `must match cachegenie_`
	reg.Counter("cachegenie_good_ops", "", "no suffix")                       // want `must end in _total`
	reg.Gauge("cachegenie_stalls_total", "", "gauge as counter")              // want `must not end in _total`
	reg.GaugeFunc("cachegenie_lag_nanos", "", "raw nanos", nil)               // want `non-base unit "nanos"`
	reg.Gauge("cachegenie_bytes_used", "", "unit mid-name")                   // want `must be the final suffix`
	reg.Counter("cachegenie_"+node+"_total", "", "dynamic")                   // want `compile-time string constant`
	reg.Counter("cachegenie_keyed_total", `key="abc"`, "per-key")             // want `label key "key"`
	reg.Counter("cachegenie_fmt_total", fmt.Sprintf(`shard="%d"`, id), "fmt") // want `label key "shard"`
	reg.Histogram("cachegenie_wait_seconds", "", "ok", obs.UnitNanoseconds)
	reg.Histogram("cachegenie_wait", "", "nanos histogram", obs.UnitNanoseconds)     // want `not named _seconds`
	reg.RegisterHistogram("cachegenie_sizes_seconds", "", "none", obs.UnitNone, nil) // want `registered UnitNone`
	reg.GaugeFuncUnit("cachegenie_lag_seconds", "", "scaled", obs.UnitNanoseconds, nil)
}

func shardLabels(s string) string {
	return `shard="` + s + `"`
}

func registerHelper(reg *obs.Registry) {
	reg.Counter("cachegenie_helper_total", shardLabels("x"), "helper") // want `label key "shard"`
}

func registerLocal(reg *obs.Registry, node string) {
	labels := ""
	if node != "" {
		labels = `host="` + node + `"`
	}
	reg.Counter("cachegenie_local_total", labels, "local") // want `label key "host"`
}

func registerNodeLocal(reg *obs.Registry, node string) {
	labels := ""
	if node != "" {
		labels = `node="` + node + `"`
	}
	reg.Counter("cachegenie_node_total", labels, "bounded key: fine")
}
