// Package obs is a minimal stand-in for cachegenie/internal/obs so the
// obsnaming fixtures resolve an obs.Registry receiver; the analyzer matches
// on package name + type name, not import path.
package obs

// Unit mirrors the real registry's value-scaling enum.
type Unit int

const (
	UnitNone Unit = iota
	UnitNanoseconds
)

type Histogram struct{}

type Registry struct{}

func (r *Registry) Counter(name, labels, help string)                                    {}
func (r *Registry) Gauge(name, labels, help string)                                      {}
func (r *Registry) CounterFunc(name, labels, help string, fn func() int64)               {}
func (r *Registry) GaugeFunc(name, labels, help string, fn func() int64)                 {}
func (r *Registry) GaugeFuncUnit(name, labels, help string, unit Unit, fn func() int64)  {}
func (r *Registry) Histogram(name, labels, help string, unit Unit) *Histogram            { return nil }
func (r *Registry) RegisterHistogram(name, labels, help string, unit Unit, h *Histogram) {}
