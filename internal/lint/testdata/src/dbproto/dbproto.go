// Package dbproto exercises the netdeadline analyzer's gob codec coverage:
// Encoder.Encode and Decoder.Decode move bytes over the connection and
// need the same deadline discipline as raw reads and writes.
package dbproto

import (
	"encoding/gob"
	"net"
	"time"
)

type session struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func (s *session) recvBad(v any) error {
	return s.dec.Decode(v) // want `gob\.Decoder\.Decode without an earlier`
}

func (s *session) sendBad(v any) error {
	return s.enc.Encode(v) // want `gob\.Encoder\.Encode without an earlier`
}

func (s *session) armDeadline() {
	_ = s.conn.SetDeadline(time.Now().Add(time.Second))
}

func (s *session) roundTripGood(req, resp any) error {
	s.armDeadline()
	if err := s.enc.Encode(req); err != nil {
		return err
	}
	return s.dec.Decode(resp)
}

// recvHelper performs I/O on behalf of callers that already armed the
// per-request deadline.
//
//genie:deadlinearmed callers arm the per-request deadline before decoding
func (s *session) recvHelper(v any) error {
	return s.dec.Decode(v)
}
