// Package nolintfix exercises //genie:nolint suppression handling (run
// under the hotpathalloc analyzer).
package nolintfix

import "fmt"

//genie:hotpath
func suppressed(b []byte) string {
	//genie:nolint hotpathalloc -- first-time insert pays the key copy
	k := string(b)
	s := fmt.Sprint(k) //genie:nolint hotpathalloc -- cold error branch
	return s
}

//genie:hotpath
func unsuppressed(b []byte) string {
	//genie:nolint hotpathalloc want `malformed suppression`
	k := string(b) // want `string\(\[\]byte\) conversion`
	return k
}

//genie:hotpath
func suppressAll(b []byte) string {
	//genie:nolint all -- demo of the catch-all form
	return string(b)
}
