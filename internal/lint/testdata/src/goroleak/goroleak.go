// Package goroleak exercises the goroutine-leak analyzer. The tied cases
// mirror the repository's real shapes: the WAL group-commit writer's
// range-over-request-channel loop, accept loops, WaitGroup joins, and the
// done-channel handoff.
package goroleak

import (
	"net"
	"sync"
	"time"
)

type writer struct {
	reqCh chan int
	wg    sync.WaitGroup
}

// run is the WAL group-commit shape: the goroutine parks on the request
// channel and exits when the owner closes it.
func (w *writer) run() {
	for req := range w.reqCh {
		_ = req
	}
}

func (w *writer) startTiedViaMethod() {
	go w.run() // range over reqCh ties the lifetime
}

func (w *writer) startTiedViaWaitGroup() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		time.Sleep(time.Millisecond)
	}()
}

func startTiedViaSelect(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
}

func startTiedViaAccept(ln net.Listener) {
	go func() {
		for {
			conn, err := ln.Accept() // owner closes ln to stop us
			if err != nil {
				return
			}
			_ = conn.Close()
		}
	}()
}

func startTiedViaDoneChannel() string {
	done := make(chan string, 1)
	go func() {
		done <- "result" // spawner receives below
	}()
	return <-done
}

func startLeakyLoop() {
	go func() { // want `goroutine's lifetime is not visibly tied`
		for {
			time.Sleep(time.Second)
		}
	}()
}

func sleepForever() {
	for {
		time.Sleep(time.Hour)
	}
}

func startLeakyViaFunc() {
	go sleepForever() // want `goroutine's lifetime is not visibly tied`
}

func startLeakySendNobodyReceives(orphan chan int) {
	go func() { // want `goroutine's lifetime is not visibly tied`
		orphan <- 1 // the spawner never receives: this park IS the leak
	}()
}

func startAnnotated() {
	//genie:nolint goroleak -- deliberately process-lifetime for the fixture
	go func() {
		for {
			time.Sleep(time.Second)
		}
	}()
}
