// Package labelcard exercises the labelcardinality analyzer: label VALUES
// interpolated into a registration's labels argument must trace to bounded
// sources — request-sized data (wire keys, payload bytes) must never become
// a label value.
package labelcard

import (
	"fmt"
	"strconv"
	"strings"

	"fixtures/obs"
)

var opNames = [...]string{`op="get"`, `op="set"`, `op="delete"`}

// Bounded sources: constants, constant-array indexing, integers however
// they are formatted.
func registerBounded(reg *obs.Registry, i, k int) {
	reg.Counter("cachegenie_const_total", `node="a"`, "constant")
	reg.Counter("cachegenie_idx_total", opNames[k], "index into constant array")
	reg.Counter("cachegenie_int_total", fmt.Sprintf(`node="%d"`, i), "formatted integer")
	reg.Counter("cachegenie_itoa_total", `node="`+strconv.Itoa(i)+`"`, "itoa integer")
}

// The flagship leak: a wire key interpolated straight into the value.
func registerKeyBytes(reg *obs.Registry, key []byte) {
	reg.Counter("cachegenie_key_total", `op="`+string(key)+`"`, "per-key") // want `unbounded label value`
}

// The hole hides behind an in-package helper; flagged at the registration.
func keyLabels(k string) string { return `op="` + k + `"` }

func registerViaHelper(reg *obs.Registry, raw []byte) {
	reg.Counter("cachegenie_helper_total", keyLabels(string(raw)), "helper") // want `unbounded label value`
}

// A parameter is as bounded as its call sites: this one is reachable with
// request bytes, so the registration is flagged.
func registerNode(reg *obs.Registry, node string) {
	reg.Counter("cachegenie_node_total", `node="`+node+`"`, "param") // want `unbounded label value`
}

func stampKey(reg *obs.Registry, wire []byte) {
	registerNode(reg, string(wire))
}

// Same shape, but every caller passes a bounded value: clean.
func registerShard(reg *obs.Registry, shard string) {
	reg.Gauge("cachegenie_shard_depth", `op="`+shard+`"`, "bounded callers")
}

func wireShards(reg *obs.Registry) {
	for i := 0; i < 4; i++ {
		registerShard(reg, strconv.Itoa(i))
	}
}

// A local variable carries the taint too.
func registerLocal(reg *obs.Registry, payload []byte) {
	labels := `op="` + string(payload) + `"`
	reg.Counter("cachegenie_local_total", labels, "local") // want `unbounded label value`
}

// A labels parameter with no in-package callers is the caller's contract —
// deferred, not flagged (same best-effort stance as obsnaming).
func RegisterMerged(reg *obs.Registry, labels string) {
	reg.Counter("cachegenie_merged_total", labels, "deferred to callers")
}

// An in-package method body is traced like a helper function.
type shardSet struct{}

func (shardSet) name() string { return "s0" }

func registerMethodHelper(reg *obs.Registry, s shardSet) {
	reg.Counter("cachegenie_method_total", `node="`+s.name()+`"`, "constant method")
}

// A foreign method's result is untraceable: left alone.
func registerOpaque(reg *obs.Registry, b *strings.Builder) {
	reg.Counter("cachegenie_opaque_total", `node="`+b.String()+`"`, "untraceable")
}
