// Package lockscope exercises the lockscope analyzer.
package lockscope

import (
	"sync"
	"time"
)

type shard struct {
	//genie:nonblocking
	mu   sync.Mutex
	ch   chan int
	data map[string]int
}

func (s *shard) leak() {
	s.mu.Lock() // want `without a matching Unlock`
	s.data["k"] = 1
}

func (s *shard) ok() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data["k"] = 2
}

func (s *shard) sleepy() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while s\.mu is held`
}

func (s *shard) sendy() {
	s.mu.Lock()
	s.ch <- 1 // want `channel send while s\.mu is held`
	s.mu.Unlock()
}

func (s *shard) afterUnlock() {
	s.mu.Lock()
	s.data["k"] = 3
	s.mu.Unlock()
	s.ch <- 2 // released first: fine
}

func (s *shard) goroutineUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond) // separate goroutine: fine
	}()
}

type bus struct {
	mu   sync.RWMutex
	subs []chan int
}

// publish sends under RLock on an unannotated mutex: allowed by design.
func (b *bus) publish(v int) {
	b.mu.RLock()
	for _, ch := range b.subs {
		ch <- v
	}
	b.mu.RUnlock()
}

func (b *bus) badRead() int {
	b.mu.RLock() // want `without a matching RUnlock`
	return len(b.subs)
}

type plain struct {
	mu sync.Mutex
}

// fine sleeps under an unannotated mutex: only //genie:nonblocking mutexes
// get the blocking-call rule.
func (p *plain) fine() {
	p.mu.Lock()
	defer p.mu.Unlock()
	time.Sleep(time.Millisecond)
}
