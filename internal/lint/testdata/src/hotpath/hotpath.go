// Package hotpath exercises the hotpathalloc analyzer.
package hotpath

import "fmt"

//genie:hotpath
func hot(b []byte, s string) string {
	_ = fmt.Sprintf("x %d", len(b)) // want `fmt\.Sprintf allocates`
	k := string(b)                  // want `string\(\[\]byte\) conversion`
	_ = []byte(s)                   // want `\[\]byte\(string\) conversion`
	f := func() {}                  // want `closure in hot path`
	f()
	return k + s // want `string concatenation`
}

// allowedContexts: the compiler-recognized non-allocating string([]byte)
// uses must stay quiet.
//
//genie:hotpath
func allowedContexts(m map[string]int, b []byte) int {
	switch string(b) {
	case "x":
		return 1
	}
	if string(b) == "y" {
		return 2
	}
	return m[string(b)]
}

func sink(v any) {}

//genie:hotpath
func boxing(n int, p *int) {
	sink(n) // want `boxes the value`
	sink(p)
}

// cold is unannotated: everything here is fine.
func cold(b []byte) string {
	return fmt.Sprintf("%s!", string(b))
}
