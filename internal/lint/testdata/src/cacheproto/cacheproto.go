// Package cacheproto exercises the netdeadline analyzer, which patrols
// packages named cacheproto and loadctl.
package cacheproto

import (
	"bufio"
	"net"
	"time"
)

type wire struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

func (x *wire) readLineBad() ([]byte, error) {
	return x.r.ReadSlice('\n') // want `bufio\.Reader\.ReadSlice without an earlier`
}

func (x *wire) readLineGood() ([]byte, error) {
	if err := x.c.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return nil, err
	}
	return x.r.ReadSlice('\n')
}

// readLineHelper performs I/O on behalf of callers that already armed the
// per-op deadline.
//
//genie:deadlinearmed callers arm the per-op deadline before dispatching
func (x *wire) readLineHelper() ([]byte, error) {
	return x.r.ReadSlice('\n')
}

func (x *wire) flushBad() error {
	return x.w.Flush() // want `bufio\.Writer\.Flush without an earlier`
}

func (x *wire) armDeadline() {
	_ = x.c.SetDeadline(time.Now().Add(time.Second))
}

func (x *wire) writeGood(p []byte) error {
	x.armDeadline()
	if _, err := x.w.Write(p); err != nil {
		return err
	}
	return x.w.Flush()
}

func (x *wire) rawBad(p []byte) (int, error) {
	return x.c.Read(p) // want `net\.Conn Read without an earlier`
}
