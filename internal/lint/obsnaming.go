package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// ObsNaming enforces the internal/obs metric-hygiene rules at every
// registration call site (Counter, Gauge, Histogram, *Func, Register*):
//
//   - names are compile-time constants matching cachegenie_[a-z0-9_]+ — a
//     dynamic name is how per-key series (unbounded cardinality) sneak in;
//   - unit suffixes: "seconds"/"bytes" only as the final token (optionally
//     before "total"), never non-base units (nanos, millis, ...) — the
//     registry renders nanosecond-held series as float seconds, so the
//     name must say _seconds;
//   - counters end _total, gauges do not;
//   - histogram/gauge registrations taking an obs.Unit must agree with the
//     name: UnitNanoseconds ⇔ _seconds suffix;
//   - label keys come from the bounded allowlist (node, op, tier, workers).
//     Labels are traced through constants, in-package helpers, Sprintf
//     formats, and simple local assignments; an untraceable labels
//     expression is left alone.
var ObsNaming = &Analyzer{
	Name: "obsnaming",
	Doc:  "metric names/units/labels must follow the cachegenie_* hygiene rules",
	Run:  runObsNaming,
}

var metricNameRe = regexp.MustCompile(`^cachegenie_[a-z0-9]+(_[a-z0-9]+)*$`)

// registryMethods maps obs.Registry method → kind.
var registryMethods = map[string]string{
	"Counter": "counter", "CounterFunc": "counter", "RegisterCounter": "counter",
	"Gauge": "gauge", "GaugeFunc": "gauge", "RegisterGauge": "gauge",
	"GaugeFuncUnit": "gauge",
	"Histogram":     "histogram", "RegisterHistogram": "histogram",
}

// nonBaseUnits are tokens that mean "you stored a raw integer and named the
// storage unit"; Prometheus wants base units in the rendered name.
var nonBaseUnits = map[string]string{
	"nanos": "_seconds", "nanoseconds": "_seconds", "ns": "_seconds",
	"micros": "_seconds", "microseconds": "_seconds", "us": "_seconds",
	"millis": "_seconds", "milliseconds": "_seconds", "ms": "_seconds",
	"kb": "_bytes", "mb": "_bytes", "kib": "_bytes", "mib": "_bytes",
}

// allowedLabelKeys is the bounded label vocabulary. Anything else — above
// all a per-key or per-address label — is a cardinality leak.
var allowedLabelKeys = map[string]bool{
	"node": true, "op": true, "tier": true, "workers": true,
}

func runObsNaming(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, ok := registryMethods[calleeName(call)]
			if !ok || recvTypeName(pass.Info, call) != "obs.Registry" || len(call.Args) < 2 {
				return true
			}
			checkMetricName(pass, call, kind)
			checkLabelArg(pass, call.Args[1])
			return true
		})
	}
	return nil
}

func checkMetricName(pass *Pass, call *ast.CallExpr, kind string) {
	nameArg := call.Args[0]
	tv, ok := pass.Info.Types[nameArg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(nameArg.Pos(), "metric name must be a compile-time string constant so the series set stays auditable")
		return
	}
	name := constant.StringVal(tv.Value)
	if !metricNameRe.MatchString(name) {
		pass.Reportf(nameArg.Pos(), "metric name %q must match cachegenie_[a-z0-9_]+", name)
		return
	}
	tokens := strings.Split(name, "_")
	last := tokens[len(tokens)-1]
	for i, tok := range tokens {
		if base, bad := nonBaseUnits[tok]; bad {
			pass.Reportf(nameArg.Pos(), "metric name %q uses non-base unit %q; store what you like, but name the rendered base unit (%s)", name, tok, base)
			return
		}
		if (tok == "seconds" || tok == "bytes") && i != len(tokens)-1 && !(i == len(tokens)-2 && last == "total") {
			pass.Reportf(nameArg.Pos(), "metric name %q: unit %q must be the final suffix (optionally before _total)", name, tok)
			return
		}
	}
	switch kind {
	case "counter":
		if last != "total" {
			pass.Reportf(nameArg.Pos(), "counter %q must end in _total", name)
		}
	case "gauge", "histogram":
		if last == "total" {
			pass.Reportf(nameArg.Pos(), "%s %q must not end in _total (that suffix means monotonic counter)", kind, name)
		}
	}
	checkUnitAgreement(pass, call, name)
}

// checkUnitAgreement cross-checks an obs.Unit argument against the name
// suffix: values held in nanoseconds render as seconds, so the series name
// must end _seconds — and vice versa.
func checkUnitAgreement(pass *Pass, call *ast.CallExpr, name string) {
	for _, arg := range call.Args {
		tv, ok := pass.Info.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		named, ok := tv.Type.(*types.Named)
		if !ok || named.Obj().Name() != "Unit" || named.Obj().Pkg() == nil {
			continue
		}
		if tv.Value == nil {
			return // dynamic unit: nothing to prove statically
		}
		v, _ := constant.Int64Val(tv.Value)
		hasSeconds := strings.HasSuffix(name, "_seconds") || strings.HasSuffix(name, "_seconds_total")
		if v != 0 && !hasSeconds {
			pass.Reportf(arg.Pos(), "metric %q holds nanoseconds (rendered as seconds) but is not named _seconds", name)
		}
		if v == 0 && hasSeconds {
			pass.Reportf(arg.Pos(), "metric %q is named _seconds but registered UnitNone; values will render as raw integers", name)
		}
		return
	}
}

var labelKeyRe = regexp.MustCompile(`([A-Za-z0-9_]+)="`)

// checkLabelArg extracts label keys from the labels expression and checks
// them against the allowlist. Tracing is best-effort over the shapes the
// repo uses: string constants and concats of them, fmt.Sprintf with a
// constant format, calls to small in-package helpers, and a local variable's
// visible assignments.
func checkLabelArg(pass *Pass, arg ast.Expr) {
	for _, frag := range labelFragments(pass, arg, 0) {
		for _, m := range labelKeyRe.FindAllStringSubmatch(frag, -1) {
			key := m[1]
			if !allowedLabelKeys[key] {
				pass.Reportf(arg.Pos(), "label key %q is not in the bounded label set (node, op, tier, workers); unbounded label values explode series cardinality", key)
			}
		}
	}
}

// labelFragments collects the constant string pieces an expression can
// contribute to a labels value. depth caps helper/assignment recursion.
func labelFragments(pass *Pass, e ast.Expr, depth int) []string {
	if e == nil || depth > 3 {
		return nil
	}
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return []string{constant.StringVal(tv.Value)}
	}
	switch e := e.(type) {
	case *ast.BinaryExpr: // `node="` + node + `"`
		return append(labelFragments(pass, e.X, depth), labelFragments(pass, e.Y, depth)...)
	case *ast.ParenExpr:
		return labelFragments(pass, e.X, depth)
	case *ast.CallExpr:
		if calleePkgPath(pass.Info, e) == "fmt" && len(e.Args) > 0 {
			return labelFragments(pass, e.Args[0], depth+1) // Sprintf const format
		}
		return helperReturnFragments(pass, e, depth)
	case *ast.Ident:
		return identAssignFragments(pass, e, depth)
	}
	return nil
}

// helperReturnFragments resolves a call to an in-package helper (nodeLabels,
// opLabels) to the fragments of its return expressions.
func helperReturnFragments(pass *Pass, call *ast.CallExpr, depth int) []string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.Info.Uses[id]
	if obj == nil || obj.Pkg() != pass.Pkg {
		return nil
	}
	var out []string
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != id.Name || fd.Recv != nil || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if ret, ok := n.(*ast.ReturnStmt); ok {
					for _, r := range ret.Results {
						out = append(out, labelFragments(pass, r, depth+1)...)
					}
				}
				return true
			})
		}
	}
	return out
}

// identAssignFragments resolves a local labels variable through every
// assignment to it in the enclosing file.
func identAssignFragments(pass *Pass, id *ast.Ident, depth int) []string {
	obj := pass.Info.Uses[id]
	if obj == nil {
		return nil
	}
	var out []string
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range asg.Lhs {
				l, ok := lhs.(*ast.Ident)
				if !ok || i >= len(asg.Rhs) {
					continue
				}
				if pass.Info.Defs[l] == obj || pass.Info.Uses[l] == obj {
					out = append(out, labelFragments(pass, asg.Rhs[i], depth+1)...)
				}
			}
			return true
		})
	}
	return out
}
