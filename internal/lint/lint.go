// Package lint is genielint: a suite of go/ast + go/types driven static
// analyzers that turn this repository's review-time conventions into
// machine-checked invariants. The design mirrors golang.org/x/tools/go/
// analysis (Analyzer / Pass / Diagnostic, want-comment fixtures) but is
// built entirely on the standard library so the module stays
// dependency-free: packages are loaded with `go list -export` and
// typechecked against compiler export data (internal/lint/load.go).
//
// Shipped analyzers (see cmd/genielint):
//
//   - goroleak: `go` statements must show how the goroutine stops — a
//     WaitGroup Done, a channel receive/select/range, an Accept/Serve
//     loop, or a send the spawner receives.
//   - hotpathalloc: forbids allocating constructs in functions marked
//     //genie:hotpath (the zero-allocation protocol paths).
//   - labelcardinality: label values at metric registration sites must
//     trace to bounded sources (constants, indices, node identity) — a
//     wire key or payload interpolated into a label explodes series
//     cardinality.
//   - lockscope: every Lock needs a same-function Unlock, and mutexes
//     marked //genie:nonblocking must not be held across blocking calls.
//   - netdeadline: in the wire-protocol packages, raw reads and writes
//     must be dominated by a deadline arm (or carry //genie:deadlinearmed).
//   - obsnaming: metric registrations must follow the cachegenie_* naming
//     and unit-suffix rules with label keys from a bounded set.
//
// False positives are suppressed in place with
//
//	//genie:nolint <analyzer>[,<analyzer>] -- <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory: a suppression without one is itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check, in the shape of x/tools' analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's load results into an analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics (after //genie:nolint filtering), sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := collectNolint(pkg.Fset, pkg.Files, &diags)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		diags = sup.filter(diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// nolintRe parses "//genie:nolint a,b -- reason". The reason after "--" is
// required; see collectNolint.
var nolintRe = regexp.MustCompile(`^//\s*genie:nolint\s+([a-z0-9_,]+)\s*(--\s*(.*))?$`)

// suppressions maps file → line → set of analyzer names suppressed there.
type suppressions map[string]map[int]map[string]bool

// collectNolint gathers //genie:nolint comments. A suppression covers its
// own line and, when it is the only thing on its line, the line below it. A
// malformed suppression (no "-- reason") is reported as a diagnostic so
// undocumented escapes can't accumulate.
func collectNolint(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) suppressions {
	sup := suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, "//genie:nolint") && !strings.HasPrefix(text, "// genie:nolint") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := nolintRe.FindStringSubmatch(text)
				if m == nil || strings.TrimSpace(m[3]) == "" {
					*diags = append(*diags, Diagnostic{
						Analyzer: "nolint",
						Pos:      pos,
						Message:  `malformed suppression: want "//genie:nolint <analyzer>[,<analyzer>] -- <reason>"`,
					})
					continue
				}
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					sup[pos.Filename] = byLine
				}
				names := map[string]bool{}
				for _, n := range strings.Split(m[1], ",") {
					names[strings.TrimSpace(n)] = true
				}
				lines := []int{pos.Line}
				if pos.Column == 1 || onlyCommentOnLine(fset, f, c) {
					lines = append(lines, pos.Line+1)
				}
				for _, ln := range lines {
					if byLine[ln] == nil {
						byLine[ln] = map[string]bool{}
					}
					for n := range names {
						byLine[ln][n] = true
					}
				}
			}
		}
	}
	return sup
}

// onlyCommentOnLine reports whether c starts its source line (a standalone
// comment, which then also suppresses the line below).
func onlyCommentOnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	var onLine bool
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || onLine {
			return false
		}
		if fset.Position(n.Pos()).Line == pos.Line && n.Pos() < c.Pos() {
			if _, isFile := n.(*ast.File); !isFile {
				onLine = true
				return false
			}
		}
		return true
	})
	return !onLine
}

func (s suppressions) filter(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if byLine, ok := s[d.Pos.Filename]; ok {
			if names, ok := byLine[d.Pos.Line]; ok && (names[d.Analyzer] || names["all"]) {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// ---------- shared AST/type helpers used by the analyzers ----------

// funcDocHasMarker reports whether a function's doc comment contains the
// given //genie:<marker> directive.
func funcDocHasMarker(fn *ast.FuncDecl, marker string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(c.Text)
		if strings.HasPrefix(text, "//genie:"+marker) || strings.HasPrefix(text, "// genie:"+marker) {
			return true
		}
	}
	return false
}

// calleeName returns the called function/method's bare name for a call
// expression ("Lock", "Sleep", "armDeadline"), or "".
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// calleePkgPath returns the defining package path of the called function,
// or "" (builtins, type conversions, locals).
func calleePkgPath(info *types.Info, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	obj := info.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// recvTypeName resolves a method call's receiver type to "pkgname.Type"
// (pointers stripped), or "".
func recvTypeName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return ""
	}
	t := tv.Type
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name()
}

// exprText renders a (small) expression back to source-ish text; used to
// pair Lock/Unlock receivers ("sh.mu", "p.mu").
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprText(e.X)
	case *ast.StarExpr:
		return "*" + exprText(e.X)
	case *ast.IndexExpr:
		return exprText(e.X) + "[...]"
	case *ast.CallExpr:
		return exprText(e.Fun) + "(...)"
	}
	return "?"
}

// isPointerShaped reports whether values of t box into an interface without
// a heap allocation (pointer-shaped runtime representation).
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
