package lint

// All returns the full genielint suite in the order diagnostics are
// attributed when several fire on one line.
func All() []*Analyzer {
	return []*Analyzer{GoroLeak, HotPathAlloc, LabelCardinality, LockScope, NetDeadline, ObsNaming}
}
