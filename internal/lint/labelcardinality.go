package lint

import (
	"go/ast"
	"go/types"
)

// LabelCardinality proves — best-effort, the obsnaming stance — that no
// obs.Registry registration site is reachable with an unbounded label
// *value*. ObsNaming bounds the label key vocabulary; this analyzer bounds
// what flows into the values, because a per-key or per-payload value under
// an allowed key ("op" stamped with the cache key, say) explodes series
// cardinality just as surely as a rogue key does.
//
// Every non-constant expression interpolated into the labels argument is
// traced to its sources:
//
//   - bounded: compile-time constants, anything integer- or bool-typed
//     (node indices, shard and worker counts — finite by configuration),
//     indexing into constant composite literals, strconv/fmt over bounded
//     operands, in-package helpers and methods whose returns are bounded,
//     and parameters every visible in-package call site feeds bounded
//     arguments;
//   - unbounded: string(...) conversions of byte/rune slices (wire keys,
//     payloads — request-sized data), and anything that reaches one through
//     helpers, locals, or call-site arguments;
//   - everything else (foreign calls, cross-package parameters) is the
//     caller's documented contract and is left alone.
//
// Only provably unbounded flows are reported.
var LabelCardinality = &Analyzer{
	Name: "labelcardinality",
	Doc:  "label values at metric registration sites must trace to bounded sources",
	Run:  runLabelCardinality,
}

func runLabelCardinality(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ok := registryMethods[calleeName(call)]; !ok ||
				recvTypeName(pass.Info, call) != "obs.Registry" || len(call.Args) < 2 {
				return true
			}
			tr := &valueTracer{pass: pass, seen: map[types.Object]bool{}}
			if bnd, why := tr.trace(call.Args[1], 0); bnd == bndUnbounded {
				pass.Reportf(call.Args[1].Pos(),
					"unbounded label value: %s; every distinct value is a new series, so label values must trace to bounded sources (constants, indices, node identity)", why)
			}
			return true
		})
	}
	return nil
}

type boundedness int

const (
	bndBounded boundedness = iota
	bndUnknown             // untraceable: deferred to the caller's contract
	bndUnbounded
)

func joinBnd(a, b boundedness, aWhy, bWhy string) (boundedness, string) {
	if b > a {
		return b, bWhy
	}
	return a, aWhy
}

// valueTracer walks label-value dataflow. seen breaks reference cycles
// through parameters and locals; maxTraceDepth caps helper/call-site
// recursion the same way obsnaming's fragment tracing does.
type valueTracer struct {
	pass *Pass
	seen map[types.Object]bool
}

const maxTraceDepth = 4

func (t *valueTracer) trace(e ast.Expr, depth int) (boundedness, string) {
	if e == nil || depth > maxTraceDepth {
		return bndUnknown, ""
	}
	if tv, ok := t.pass.Info.Types[e]; ok {
		if tv.Value != nil {
			return bndBounded, ""
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); ok &&
			b.Info()&(types.IsInteger|types.IsBoolean) != 0 {
			return bndBounded, ""
		}
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return t.trace(e.X, depth)
	case *ast.BinaryExpr:
		xb, xw := t.trace(e.X, depth)
		yb, yw := t.trace(e.Y, depth)
		return joinBnd(xb, yb, xw, yw)
	case *ast.CompositeLit:
		bnd, why := bndBounded, ""
		for _, el := range e.Elts {
			eb, ew := t.trace(el, depth)
			bnd, why = joinBnd(bnd, eb, why, ew)
		}
		return bnd, why
	case *ast.IndexExpr:
		// Indexing yields an element of the indexed collection; the index
		// itself cannot widen the value set.
		return t.trace(e.X, depth)
	case *ast.CallExpr:
		return t.traceCall(e, depth)
	case *ast.Ident:
		return t.traceIdent(e, depth)
	}
	return bndUnknown, ""
}

func (t *valueTracer) traceCall(call *ast.CallExpr, depth int) (boundedness, string) {
	// Type conversion: string(x) over a byte/rune slice is the flagship
	// leak — it is how request-sized data (wire keys, payloads) becomes a
	// string. Other conversions trace their operand.
	if tv, ok := t.pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if at, ok := t.pass.Info.Types[call.Args[0]]; ok && at.Type != nil {
			if _, isSlice := at.Type.Underlying().(*types.Slice); isSlice {
				return bndUnbounded, "string(" + exprText(call.Args[0]) + ") converts request-sized data"
			}
		}
		return t.trace(call.Args[0], depth)
	}
	switch calleePkgPath(t.pass.Info, call) {
	case "fmt", "strconv":
		// Formatting never widens the value set beyond its operands.
		bnd, why := bndBounded, ""
		for _, a := range call.Args {
			ab, aw := t.trace(a, depth)
			bnd, why = joinBnd(bnd, ab, why, aw)
		}
		return bnd, why
	}
	// In-package helper or method: its returns are the value.
	if fd := t.calleeDecl(call); fd != nil && fd.Body != nil {
		bnd, why := bndBounded, ""
		found := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			found = true
			for _, r := range ret.Results {
				rb, rw := t.trace(r, depth+1)
				bnd, why = joinBnd(bnd, rb, why, rw)
			}
			return true
		})
		if !found {
			return bndUnknown, ""
		}
		if why == "" {
			why = "helper " + fd.Name.Name + " returns an unbounded value"
		}
		return bnd, why
	}
	return bndUnknown, ""
}

func (t *valueTracer) traceIdent(id *ast.Ident, depth int) (boundedness, string) {
	obj := t.pass.Info.Uses[id]
	if obj == nil || t.seen[obj] {
		return bndUnknown, ""
	}
	t.seen[obj] = true
	defer delete(t.seen, obj)

	if fd, idx := t.paramOwner(obj); fd != nil {
		return t.traceParam(fd, idx, id.Name, depth)
	}
	// Local variable: as bounded as everything ever assigned to it
	// (including its declaration).
	bnd, why := bndBounded, ""
	found := false
	for _, f := range t.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					l, ok := lhs.(*ast.Ident)
					if !ok || i >= len(n.Rhs) {
						continue
					}
					if t.pass.Info.Defs[l] == obj || t.pass.Info.Uses[l] == obj {
						found = true
						ab, aw := t.trace(n.Rhs[i], depth+1)
						bnd, why = joinBnd(bnd, ab, why, aw)
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if t.pass.Info.Defs[name] == obj && i < len(n.Values) {
						found = true
						vb, vw := t.trace(n.Values[i], depth+1)
						bnd, why = joinBnd(bnd, vb, why, vw)
					}
				}
			}
			return true
		})
	}
	if !found {
		return bndUnknown, ""
	}
	return bnd, why
}

// traceParam resolves a function parameter through every visible in-package
// call site: the parameter is reachable with whatever its callers pass. No
// visible call sites means the boundedness is the (cross-package) caller's
// contract — deferred.
func (t *valueTracer) traceParam(fd *ast.FuncDecl, idx int, name string, depth int) (boundedness, string) {
	fobj := t.pass.Info.Defs[fd.Name]
	if fobj == nil {
		return bndUnknown, ""
	}
	bnd, why := bndBounded, ""
	found := false
	for _, f := range t.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || calleeObj(t.pass.Info, call) != fobj || idx >= len(call.Args) {
				return true
			}
			found = true
			ab, aw := t.trace(call.Args[idx], depth+1)
			if aw == "" && ab == bndUnbounded {
				aw = "a call site passes an unbounded value"
			}
			if ab == bndUnbounded && aw != "" {
				aw = "parameter " + name + " is reachable with an unbounded value (" + aw + ")"
			}
			bnd, why = joinBnd(bnd, ab, why, aw)
			return true
		})
	}
	if !found {
		return bndUnknown, ""
	}
	return bnd, why
}

// paramOwner finds the FuncDecl that declares obj as a parameter and obj's
// flat index among the parameters (receiver excluded, matching call-site
// argument positions).
func (t *valueTracer) paramOwner(obj types.Object) (*ast.FuncDecl, int) {
	for _, f := range t.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Type.Params == nil {
				continue
			}
			idx := 0
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					if t.pass.Info.Defs[name] == obj {
						return fd, idx
					}
					idx++
				}
				if len(field.Names) == 0 {
					idx++
				}
			}
		}
	}
	return nil, 0
}

// calleeObj resolves a call's target to its types object (functions and
// methods alike), or nil.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// calleeDecl finds the in-package FuncDecl a call targets, or nil.
func (t *valueTracer) calleeDecl(call *ast.CallExpr) *ast.FuncDecl {
	obj := calleeObj(t.pass.Info, call)
	if obj == nil || obj.Pkg() != t.pass.Pkg {
		return nil
	}
	for _, f := range t.pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && t.pass.Info.Defs[fd.Name] == obj {
				return fd
			}
		}
	}
	return nil
}
