package cluster

import (
	"fmt"
	"sync"
	"testing"

	"cachegenie/internal/kvcache"
)

func newTestManager(t *testing.T, n int) (*Manager, []string, []*kvcache.Store) {
	t.Helper()
	ids := make([]string, n)
	stores := make([]*kvcache.Store, n)
	nodes := make([]kvcache.Cache, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("10.0.0.%d:11311", i+1) // address-shaped stable ids
		stores[i] = kvcache.New(0)
		nodes[i] = stores[i]
	}
	m, err := NewManager(ids, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return m, ids, stores
}

// TestRemoveNodeRemapsOnlyItsShare is the regression test for the
// index-based vnode hashing bug: removing one node must remap only the keys
// that node owned (~1/N of them), and every key owned by a survivor must
// keep its owner. Under the old "node-<index>-vn-<v>" scheme, removing node
// k renumbered all successors and remapped roughly (N-k-1)/N of the
// keyspace on nodes that never moved.
func TestRemoveNodeRemapsOnlyItsShare(t *testing.T) {
	const nodes = 4
	const keys = 8000
	m, ids, _ := newTestManager(t, nodes)

	before := make(map[string]string, keys)
	ownedByVictim := 0
	victim := ids[1]
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = m.OwnerID(k)
		if before[k] == victim {
			ownedByVictim++
		}
	}
	if err := m.RemoveNode(victim); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for k, owner := range before {
		now := m.OwnerID(k)
		if owner == victim {
			if now == victim {
				t.Fatalf("%s still routed to the removed node", k)
			}
			moved++
			continue
		}
		if now != owner {
			t.Fatalf("%s moved %s -> %s although its owner never left", k, owner, now)
		}
	}
	if moved != ownedByVictim {
		t.Fatalf("moved %d keys, victim owned %d", moved, ownedByVictim)
	}
	frac := float64(moved) / float64(keys)
	// The victim's share should be ~1/4; allow generous balance slack.
	if frac < 0.10 || frac > 0.45 {
		t.Fatalf("remap fraction = %.3f, want ~%.2f", frac, 1.0/nodes)
	}
}

// TestRejoinRestoresOwnership: adding a node back under the same identity
// reproduces the exact pre-leave assignment — stable ids make rejoin
// deterministic, so a revived node reclaims precisely its old keys.
func TestRejoinRestoresOwnership(t *testing.T) {
	const keys = 2000
	m, ids, stores := newTestManager(t, 4)
	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = m.OwnerID(k)
	}
	if err := m.RemoveNode(ids[2]); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode(ids[2], stores[2]); err != nil {
		t.Fatal(err)
	}
	for k, owner := range before {
		if now := m.OwnerID(k); now != owner {
			t.Fatalf("%s owner after rejoin = %s, want %s", k, now, owner)
		}
	}
}

func TestManagerMembershipErrors(t *testing.T) {
	m, ids, stores := newTestManager(t, 2)
	if err := m.AddNode(ids[0], stores[0]); err == nil {
		t.Fatal("duplicate AddNode accepted")
	}
	if err := m.AddNode("fresh", nil); err == nil {
		t.Fatal("nil cache accepted")
	}
	if err := m.RemoveNode("unknown"); err == nil {
		t.Fatal("RemoveNode of unknown id accepted")
	}
	if err := m.RemoveNode(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveNode(ids[1]); err == nil {
		t.Fatal("removed the last node")
	}
	if n := m.NumNodes(); n != 1 {
		t.Fatalf("NumNodes = %d, want 1", n)
	}
	if got := m.NodeIDs(); len(got) != 1 || got[0] != ids[1] {
		t.Fatalf("NodeIDs = %v", got)
	}
	if _, ok := m.Node(ids[1]); !ok {
		t.Fatal("surviving node not found by id")
	}
	if _, ok := m.Node(ids[0]); ok {
		t.Fatal("removed node still registered")
	}
}

func TestManagerServesCacheInterface(t *testing.T) {
	m, _, _ := newTestManager(t, 3)
	m.Set("k", []byte("v1"), 0)
	if v, ok := m.Get("k"); !ok || string(v) != "v1" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	v, tok, ok := m.Gets("k")
	if !ok || string(v) != "v1" {
		t.Fatalf("Gets = %q, %v", v, ok)
	}
	if r := m.Cas("k", []byte("v2"), 0, tok); r != kvcache.CasStored {
		t.Fatalf("Cas = %v", r)
	}
	if !m.Add("other", []byte("x"), 0) {
		t.Fatal("Add = false")
	}
	m.Set("n", []byte("5"), 0)
	if n, ok := m.Incr("n", 2); !ok || n != 7 {
		t.Fatalf("Incr = %d, %v", n, ok)
	}
	if !m.Delete("n") {
		t.Fatal("Delete = false")
	}
	res := m.ApplyBatch([]kvcache.BatchOp{
		{Kind: kvcache.BatchSet, Key: "b1", Value: []byte("x")},
		{Kind: kvcache.BatchDelete, Key: "k"},
	})
	if !res[0].Found || !res[1].Found {
		t.Fatalf("batch = %+v", res)
	}
	m.FlushAll()
	if _, ok := m.Get("b1"); ok {
		t.Fatal("FlushAll left entries")
	}
}

// TestManagerConcurrentTrafficDuringMembershipChange churns membership while
// client goroutines hammer the ring. Correctness bar: no panics, no races
// (run under -race), and keys written after the churn settles are all
// readable. Values written before or during a membership change may be lost
// to remapping — that is the consistent-hashing deal, not a bug.
func TestManagerConcurrentTrafficDuringMembershipChange(t *testing.T) {
	m, ids, stores := newTestManager(t, 4)
	spare := kvcache.New(0)

	stop := make(chan struct{})
	var traffic sync.WaitGroup
	for g := 0; g < 4; g++ {
		traffic.Add(1)
		go func(g int) {
			defer traffic.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("g%d-%d", g, i%256)
				switch i % 4 {
				case 0:
					m.Set(k, []byte("v"), 0)
				case 1:
					m.Get(k)
				case 2:
					m.ApplyBatch([]kvcache.BatchOp{
						{Kind: kvcache.BatchSet, Key: k, Value: []byte("b")},
						{Kind: kvcache.BatchDelete, Key: fmt.Sprintf("g%d-%d", g, (i+7)%256)},
					})
				default:
					m.Delete(k)
				}
				i++
			}
		}(g)
	}

	for round := 0; round < 20; round++ {
		if err := m.RemoveNode(ids[3]); err != nil {
			t.Error(err)
			break
		}
		if err := m.AddNode("spare", spare); err != nil {
			t.Error(err)
			break
		}
		if err := m.RemoveNode("spare"); err != nil {
			t.Error(err)
			break
		}
		if err := m.AddNode(ids[3], stores[3]); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	traffic.Wait()

	if n := m.NumNodes(); n != 4 {
		t.Fatalf("NumNodes after churn = %d, want 4", n)
	}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("settled-%d", i)
		m.Set(k, []byte("v"), 0)
		if _, ok := m.Get(k); !ok {
			t.Fatalf("%s unreadable after churn settled", k)
		}
	}
}
