package cluster

import "cachegenie/internal/obs"

// RegisterMetrics attaches the ring's replica-routing counters to reg. The
// labels string is raw Prometheus label syntax ("" for none). The counters
// are shared across Manager ring rebuilds, so registering once covers the
// topology's whole lifetime.
func (r *Ring) RegisterMetrics(reg *obs.Registry, labels string) {
	if r == nil || reg == nil {
		return
	}
	reg.CounterFunc("cachegenie_cluster_failover_reads_total", labels,
		"reads served by a non-preferred replica", r.counters.failover.Load)
	reg.CounterFunc("cachegenie_cluster_read_repairs_total", labels,
		"failover hits copied back onto the preferred replica", r.counters.repairs.Load)
	reg.CounterFunc("cachegenie_cluster_skipped_unhealthy_total", labels,
		"replicas skipped because their breaker was open", r.counters.skipped.Load)
	if hr := r.hot; hr != nil {
		reg.CounterFunc("cachegenie_hotkey_observed_total", labels,
			"reads observed by the popularity sampler", func() int64 { return hr.det.Stats().Observed })
		reg.CounterFunc("cachegenie_hotkey_flagged_total", labels,
			"reads judged hot at observation time", func() int64 { return hr.det.Stats().Flagged })
		reg.CounterFunc("cachegenie_hotkey_decays_total", labels,
			"popularity-sampler decay sweeps", func() int64 { return hr.det.Stats().Decays })
		reg.CounterFunc("cachegenie_hotkey_spread_reads_total", labels,
			"hot-key reads served through the rotated replica order", hr.spread.Load)
		reg.CounterFunc("cachegenie_hotkey_spread_repairs_total", labels,
			"rotated reads that repaired a replica missing the hot value", hr.repairs.Load)
	}
}

// RegisterMetrics attaches the manager's replica-routing and membership-
// change handoff counters to reg.
func (m *Manager) RegisterMetrics(reg *obs.Registry, labels string) {
	if m == nil || reg == nil {
		return
	}
	m.Ring().RegisterMetrics(reg, labels)
	reg.CounterFunc("cachegenie_cluster_handoff_drained_total", labels,
		"keys deleted from nodes that no longer replicate them", m.handoffDrained.Load)
	reg.CounterFunc("cachegenie_cluster_handoff_copied_total", labels,
		"keys copied to newly responsible nodes before the drain", m.handoffCopied.Load)
	reg.CounterFunc("cachegenie_cluster_handoff_skipped_nodes_total", labels,
		"nodes a handoff pass could not enumerate", m.handoffSkipped.Load)
}
