package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"cachegenie/internal/hotkey"
	"cachegenie/internal/kvcache"
)

// countingNode counts Gets so the tests can see where reads actually land.
type countingNode struct {
	kvcache.Cache
	gets atomic.Int64
}

func (c *countingNode) Get(key string) ([]byte, bool) {
	c.gets.Add(1)
	return c.Cache.Get(key)
}

func newHotRing(t *testing.T, n, replicas int, cfg hotkey.Config) (*Ring, []*countingNode) {
	t.Helper()
	counted := make([]*countingNode, n)
	nodes := make([]kvcache.Cache, n)
	for i := range nodes {
		counted[i] = &countingNode{Cache: kvcache.New(0)}
		nodes[i] = counted[i]
	}
	r, err := NewRing(nodes, WithReplicas(replicas), WithHotKeySpreading(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return r, counted
}

// TestHotReadSpreading: once a key crosses the hot threshold its reads
// rotate over the full replica set instead of hammering the preferred
// replica, and the stats show the spreading.
func TestHotReadSpreading(t *testing.T) {
	const reads = 2000
	r, counted := newHotRing(t, 4, 2, hotkey.Config{Window: 1 << 20, Threshold: 64})
	key := "celebrity:bookmarks"
	r.Set(key, []byte("v"), 0)
	set := r.ReplicasFor(key)
	if len(set) != 2 {
		t.Fatalf("ReplicasFor = %v, want 2 replicas", set)
	}
	baseline := make([]int64, len(counted))
	for i, c := range counted {
		baseline[i] = c.gets.Load()
	}
	for i := 0; i < reads; i++ {
		if v, ok := r.Get(key); !ok || string(v) != "v" {
			t.Fatalf("read %d: got %q/%v, want v/true", i, v, ok)
		}
	}
	onPref := counted[set[0]].gets.Load() - baseline[set[0]]
	onSecond := counted[set[1]].gets.Load() - baseline[set[1]]
	if onPref+onSecond < reads {
		t.Fatalf("replica set served %d+%d of %d reads", onPref, onSecond, reads)
	}
	// Pre-threshold reads all land preferred; after that the rotation
	// should split roughly evenly. Require the second replica to carry at
	// least a third — far above the zero it gets preferred-first.
	if onSecond < reads/3 {
		t.Fatalf("second replica served %d of %d reads; spreading not engaged (preferred %d)", onSecond, reads, onPref)
	}
	st := r.HotKeyStats()
	if st.Observed < reads {
		t.Fatalf("Observed = %d, want >= %d", st.Observed, reads)
	}
	if st.SpreadReads == 0 || st.Flagged == 0 {
		t.Fatalf("SpreadReads = %d, Flagged = %d, want both > 0", st.SpreadReads, st.Flagged)
	}
	// Non-replica nodes saw none of this key's reads.
	for i, c := range counted {
		if i == set[0] || i == set[1] {
			continue
		}
		if got := c.gets.Load() - baseline[i]; got != 0 {
			t.Fatalf("non-replica node %d served %d reads", i, got)
		}
	}
}

// TestColdKeysKeepPreferredRouting: below the threshold reads stay
// preferred-first, so CAS-coherence-sensitive traffic is untouched.
func TestColdKeysKeepPreferredRouting(t *testing.T) {
	r, counted := newHotRing(t, 4, 2, hotkey.Config{Window: 1 << 20, Threshold: 1 << 20})
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		r.Set(key, []byte("v"), 0)
		set := r.ReplicasFor(key)
		before := counted[set[1]].gets.Load()
		if _, ok := r.Get(key); !ok {
			t.Fatalf("miss on %s", key)
		}
		if got := counted[set[1]].gets.Load() - before; got != 0 {
			t.Fatalf("cold key %s read the non-preferred replica %d times", key, got)
		}
	}
	if st := r.HotKeyStats(); st.SpreadReads != 0 {
		t.Fatalf("SpreadReads = %d for all-cold traffic, want 0", st.SpreadReads)
	}
}

// TestSpreadReadRepairsMissingReplica: a rotated read that falls through a
// replica missing the hot value repairs it, so the spread capacity heals
// instead of half the rotated reads degrading to fall-throughs.
func TestSpreadReadRepairsMissingReplica(t *testing.T) {
	r, _ := newHotRing(t, 4, 2, hotkey.Config{Window: 1 << 20, Threshold: 16})
	key := "celebrity:bookmarks"
	r.Set(key, []byte("v"), 0)
	set := r.ReplicasFor(key)
	// Make it hot first, then knock the value out of one replica only.
	for i := 0; i < 64; i++ {
		r.Get(key)
	}
	r.nodes[set[1]].(*countingNode).Cache.Delete(key)
	for i := 0; i < 8; i++ {
		if _, ok := r.Get(key); !ok {
			t.Fatalf("hot read missed with one replica still holding the value")
		}
	}
	if _, ok := r.nodes[set[1]].(*countingNode).Cache.(*kvcache.Store).Get(key); !ok {
		t.Fatalf("missing replica was not repaired by rotated reads")
	}
	if st := r.HotKeyStats(); st.SpreadRepairs == 0 {
		t.Fatalf("SpreadRepairs = 0 after repairing a knocked-out replica")
	}
}

// TestHotSpreadingSurvivesRebuild: Manager membership changes must carry
// the sampler and its counters into the rebuilt ring.
func TestHotSpreadingSurvivesRebuild(t *testing.T) {
	nodes := make([]kvcache.Cache, 3)
	ids := make([]string, 3)
	for i := range nodes {
		nodes[i] = kvcache.New(0)
		ids[i] = fmt.Sprintf("n%d", i)
	}
	m, err := NewManager(ids, nodes, WithReplicas(2), WithHotKeySpreading(hotkey.Config{Window: 1 << 20, Threshold: 16}))
	if err != nil {
		t.Fatal(err)
	}
	key := "hot"
	m.Set(key, []byte("v"), 0)
	for i := 0; i < 64; i++ {
		m.Get(key)
	}
	before := m.HotKeyStats()
	if before.Observed == 0 || before.Flagged == 0 {
		t.Fatalf("sampler idle before rebuild: %+v", before)
	}
	if err := m.AddNode("n3", kvcache.New(0)); err != nil {
		t.Fatal(err)
	}
	after := m.HotKeyStats()
	if after.Observed < before.Observed || after.Flagged < before.Flagged {
		t.Fatalf("hot-key counters went backwards across rebuild: %+v -> %+v", before, after)
	}
	m.Set(key, []byte("v"), 0)
	for i := 0; i < 64; i++ {
		if _, ok := m.Get(key); !ok {
			t.Fatalf("hot read missed after rebuild")
		}
	}
	if final := m.HotKeyStats(); final.Observed <= after.Observed {
		t.Fatalf("sampler stopped observing after rebuild: %+v", final)
	}
}

// TestHotSpreadingConcurrent is the -race drill over the rotated read
// path: concurrent hot reads, writes and a membership change.
func TestHotSpreadingConcurrent(t *testing.T) {
	nodes := make([]kvcache.Cache, 4)
	ids := make([]string, 4)
	for i := range nodes {
		nodes[i] = kvcache.New(0)
		ids[i] = fmt.Sprintf("n%d", i)
	}
	m, err := NewManager(ids, nodes, WithReplicas(2), WithHotKeySpreading(hotkey.Config{Window: 2048, Threshold: 16}))
	if err != nil {
		t.Fatal(err)
	}
	key := "hot"
	m.Set(key, []byte("v"), 0)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				switch {
				case i%64 == 0:
					m.Set(key, []byte("v"), 0)
				default:
					m.Get(key)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := m.RemoveNode("n3"); err != nil {
			t.Error(err)
		}
		if err := m.AddNode("n3", kvcache.New(0)); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
}
