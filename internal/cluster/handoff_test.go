package cluster

import (
	"fmt"
	"testing"

	"cachegenie/internal/kvcache"
)

// TestHandoffWarmupOnAddNode: when a node joins, every key remapping to it
// is copied from its prior owner (warmup) and the prior owner's now-orphaned
// copy is deleted — the join migrates the share instead of starting it cold
// and leaving debris behind.
func TestHandoffWarmupOnAddNode(t *testing.T) {
	storeA, storeB := kvcache.New(0), kvcache.New(0)
	m, err := NewManager([]string{"A"}, []kvcache.Cache{storeA})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 300
	for i := 0; i < keys; i++ {
		m.Set(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("v%d", i)), 0)
	}
	if err := m.AddNode("B", storeB); err != nil {
		t.Fatal(err)
	}
	movedToB := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		onA, _ := storeA.GetQuiet(k)
		onB, okB := storeB.GetQuiet(k)
		switch m.OwnerID(k) {
		case "B":
			movedToB++
			if !okB || string(onB) != fmt.Sprintf("v%d", i) {
				t.Fatalf("%s not warmed onto B: %q/%v", k, onB, okB)
			}
			if onA != nil {
				t.Fatalf("%s still on prior owner A after handoff", k)
			}
		case "A":
			if _, okA := storeA.GetQuiet(k); !okA {
				t.Fatalf("%s lost from its unchanged owner", k)
			}
			if okB {
				t.Fatalf("%s leaked onto B although A owns it", k)
			}
		}
	}
	if movedToB == 0 {
		t.Fatal("no keys remapped to the joining node — test proves nothing")
	}
	hs := m.HandoffStats()
	if hs.Copied != int64(movedToB) || hs.Drained != int64(movedToB) {
		t.Fatalf("handoff stats = %+v, want %d copied and drained", hs, movedToB)
	}
	if hs.SkippedNodes != 0 {
		t.Fatalf("skipped nodes = %d on an all-enumerable ring", hs.SkippedNodes)
	}
}

// TestHandoffDrainOnRemoveNode: a graceful leave migrates the leaver's
// whole share to the survivors and empties the leaver, so nothing on it can
// go stale while it is out of the ring.
func TestHandoffDrainOnRemoveNode(t *testing.T) {
	m, ids, stores := newTestManager(t, 2)
	const keys = 300
	for i := 0; i < keys; i++ {
		m.Set(fmt.Sprintf("key-%d", i), []byte("v"), 0)
	}
	if err := m.RemoveNode(ids[1]); err != nil {
		t.Fatal(err)
	}
	if n := stores[1].Len(); n != 0 {
		t.Fatalf("leaver still holds %d keys after drain", n)
	}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		if _, ok := m.Get(k); !ok {
			t.Fatalf("%s lost in the leave (should have been copied to the survivor)", k)
		}
	}
}

// unlistableNode hides a store's Keys method, standing in for a node that
// cannot be enumerated (a dead process, or a server without the keys
// command).
type unlistableNode struct{ kvcache.Cache }

// TestHandoffPreventsStaleResurface is the regression test for the orphan
// scenario the PR-3 Manager documented as its known hole: a key's copy left
// on a node that was out of the ring while the key was rewritten must not
// resurface when the node rejoins — even when the node could not be drained
// at leave time (it was dead). AddNode flushes the rejoiner before it
// re-enters the ring (pre-join contents are invalidation-orphaned by
// construction — enumerability doesn't matter, FlushAll is in the Cache
// interface), then the handoff copy lands the prior owner's fresh value.
func TestHandoffPreventsStaleResurface(t *testing.T) {
	storeA, storeB := kvcache.New(0), kvcache.New(0)
	nodeB := &unlistableNode{Cache: storeB}
	m, err := NewManager([]string{"A", "B"}, []kvcache.Cache{storeA, nodeB})
	if err != nil {
		t.Fatal(err)
	}
	// Find keys B owns, write v1 everywhere.
	var bKeys []string
	for i := 0; len(bKeys) < 20; i++ {
		k := fmt.Sprintf("stale-%d", i)
		if m.OwnerID(k) == "B" {
			bKeys = append(bKeys, k)
		}
	}
	for _, k := range bKeys {
		m.Set(k, []byte("v1"), 0)
	}
	// B "dies": RemoveNode cannot drain it (unlistable), so its copies stay.
	if err := m.RemoveNode("B"); err != nil {
		t.Fatal(err)
	}
	if m.HandoffStats().SkippedNodes == 0 {
		t.Fatal("unlistable leaver was not counted as skipped")
	}
	for _, k := range bKeys {
		if _, ok := storeB.GetQuiet(k); !ok {
			t.Fatalf("%s drained from an unlistable node — the test setup is wrong", k)
		}
	}
	// The keys are rewritten while B is out: B's copies are now stale.
	for _, k := range bKeys {
		m.Set(k, []byte("v2"), 0)
	}
	// B rejoins, still holding v1. The handoff copy pass must overwrite it.
	if err := m.AddNode("B", nodeB); err != nil {
		t.Fatal(err)
	}
	for _, k := range bKeys {
		if v, ok := m.Get(k); !ok || string(v) != "v2" {
			t.Fatalf("%s = %q/%v after rejoin — pre-outage value resurfaced", k, v, ok)
		}
		if v, ok := storeB.GetQuiet(k); !ok || string(v) != "v2" {
			t.Fatalf("%s on rejoined node = %q/%v, want the fresh copy", k, v, ok)
		}
	}
}

// TestHandoffDropsPreLeaveLeftovers: a rejoining node holding debris from
// before its outage has it dropped (the pre-join flush) rather than left
// orphaned beyond invalidation's reach, regardless of whether the current
// ring maps those keys to it.
func TestHandoffDropsPreLeaveLeftovers(t *testing.T) {
	storeA, storeB := kvcache.New(0), kvcache.New(0)
	m, err := NewManager([]string{"A"}, []kvcache.Cache{storeA})
	if err != nil {
		t.Fatal(err)
	}
	// Debris on B from "before its outage": keys that will belong to A
	// even after B joins.
	var aKeys []string
	probe, _ := NewRingIDs([]string{"A", "B"}, []kvcache.Cache{storeA, storeB})
	for i := 0; len(aKeys) < 20; i++ {
		k := fmt.Sprintf("debris-%d", i)
		if probe.OwnerID(k) == "A" {
			aKeys = append(aKeys, k)
			storeB.Set(k, []byte("ancient"), 0)
			m.Set(k, []byte("fresh"), 0)
		}
	}
	if err := m.AddNode("B", storeB); err != nil {
		t.Fatal(err)
	}
	for _, k := range aKeys {
		if _, ok := storeB.GetQuiet(k); ok {
			t.Fatalf("%s survived on B although A owns it — orphan not drained", k)
		}
		if v, ok := m.Get(k); !ok || string(v) != "fresh" {
			t.Fatalf("%s = %q/%v", k, v, ok)
		}
	}
}

// TestHandoffWarmupDisabled: WithHandoffWarmup(false) keeps the
// drain-and-delete consistency fix but skips the copies — remapped keys
// start cold on their new owner.
func TestHandoffWarmupDisabled(t *testing.T) {
	storeA, storeB := kvcache.New(0), kvcache.New(0)
	m, err := NewManager([]string{"A"}, []kvcache.Cache{storeA}, WithHandoffWarmup(false))
	if err != nil {
		t.Fatal(err)
	}
	const keys = 100
	for i := 0; i < keys; i++ {
		m.Set(fmt.Sprintf("key-%d", i), []byte("v"), 0)
	}
	if err := m.AddNode("B", storeB); err != nil {
		t.Fatal(err)
	}
	if storeB.Len() != 0 {
		t.Fatalf("warmup disabled but B holds %d keys", storeB.Len())
	}
	hs := m.HandoffStats()
	if hs.Copied != 0 || hs.Drained == 0 {
		t.Fatalf("handoff stats = %+v, want drain without copies", hs)
	}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		if m.OwnerID(k) == "A" {
			if _, ok := m.Get(k); !ok {
				t.Fatalf("%s lost from its unchanged owner", k)
			}
		}
	}
}

// TestReplicatedManagerHandoff: with R=2 on three nodes, a leave keeps every
// key fully replicated on the survivors and a rejoin restores the original
// replica sets with warm copies — end to end through the Manager.
func TestReplicatedManagerHandoff(t *testing.T) {
	ids := []string{"A", "B", "C"}
	stores := []*kvcache.Store{kvcache.New(0), kvcache.New(0), kvcache.New(0)}
	m, err := NewManager(ids, []kvcache.Cache{stores[0], stores[1], stores[2]}, WithReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	const keys = 200
	for i := 0; i < keys; i++ {
		m.Set(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("v%d", i)), 0)
	}
	if err := m.RemoveNode("B"); err != nil {
		t.Fatal(err)
	}
	if n := stores[1].Len(); n != 0 {
		t.Fatalf("leaver holds %d keys after drain", n)
	}
	byID := map[string]*kvcache.Store{"A": stores[0], "B": stores[1], "C": stores[2]}
	check := func() {
		t.Helper()
		ring := m.Ring()
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("key-%d", i)
			owners := map[string]bool{}
			for _, ni := range ring.ReplicasFor(k) {
				owners[ring.NodeID(ni)] = true
			}
			for id, s := range byID {
				_, ok := s.GetQuiet(k)
				if owners[id] && !ok {
					t.Fatalf("%s missing on replica %s", k, id)
				}
				if !owners[id] && ok {
					t.Fatalf("%s orphaned on non-replica %s", k, id)
				}
			}
		}
	}
	check()
	if err := m.AddNode("B", stores[1]); err != nil {
		t.Fatal(err)
	}
	check()
}
