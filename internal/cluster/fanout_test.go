package cluster

import (
	"fmt"
	"testing"
	"time"

	"cachegenie/internal/kvcache"
	"cachegenie/internal/latency"
)

// latencyRing builds a ring of n in-process stores each wrapped with a real
// per-operation round-trip charge, modelling n remote nodes.
func latencyRing(tb testing.TB, n int, rtt time.Duration) (*Ring, []kvcache.BatchOp) {
	tb.Helper()
	nodes := make([]kvcache.Cache, n)
	for i := range nodes {
		nodes[i] = kvcache.WithLatency(kvcache.New(0), rtt, latency.RealSleeper{})
	}
	r, err := NewRing(nodes)
	if err != nil {
		tb.Fatal(err)
	}
	// Enough keys that every node owns a slice of the batch.
	ops := make([]kvcache.BatchOp, 64)
	for i := range ops {
		ops[i] = kvcache.BatchOp{Kind: kvcache.BatchSet, Key: fmt.Sprintf("key-%d", i), Value: []byte("v")}
	}
	owners := map[int]bool{}
	for _, op := range ops {
		owners[r.NodeFor(op.Key)] = true
	}
	if len(owners) != n {
		tb.Fatalf("batch covers %d/%d nodes; enlarge it", len(owners), n)
	}
	return r, ops
}

// TestApplyBatchFanOutParallel is the remote-tier latency contract: a batch
// spanning k latency-wrapped nodes must cost ~max-node round trip (the
// sub-batches run concurrently), not the sum of all k. With 4 nodes at 40ms
// each, sequential fan-out costs >= 160ms; parallel costs ~40ms. The 100ms
// threshold leaves a 2.5x scheduling margin while still ruling the
// sequential shape out.
func TestApplyBatchFanOutParallel(t *testing.T) {
	const nodes = 4
	const rtt = 40 * time.Millisecond
	r, ops := latencyRing(t, nodes, rtt)
	start := time.Now()
	res := r.ApplyBatch(ops)
	elapsed := time.Since(start)
	for i, b := range res {
		if !b.Found {
			t.Fatalf("op %d not applied", i)
		}
	}
	if elapsed >= nodes*rtt {
		t.Fatalf("ApplyBatch took %v, the sequential sum (%v): fan-out is serialized", elapsed, nodes*rtt)
	}
	if elapsed >= 100*time.Millisecond {
		t.Fatalf("ApplyBatch took %v, want ~%v (max-node, not sum-of-node)", elapsed, rtt)
	}
}

// TestFlushAllFanOutParallel pins the same property for FlushAll.
func TestFlushAllFanOutParallel(t *testing.T) {
	const nodes = 4
	const rtt = 40 * time.Millisecond
	r, _ := latencyRing(t, nodes, rtt)
	start := time.Now()
	r.FlushAll()
	if elapsed := time.Since(start); elapsed >= 100*time.Millisecond {
		t.Fatalf("FlushAll took %v, want ~%v", elapsed, rtt)
	}
}

// BenchmarkRingApplyBatchFanOut measures a 64-op batch over 4 nodes, each
// charging a real 5ms round trip. Sequential fan-out would floor at 20ms/op
// batch; the parallel fan-out floors at ~5ms — the reported fanout-speedup
// metric is sum-of-node over observed (≈4 when fully parallel, ≈1 when
// serialized).
func BenchmarkRingApplyBatchFanOut(b *testing.B) {
	const nodes = 4
	const rtt = 5 * time.Millisecond
	r, ops := latencyRing(b, nodes, rtt)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		r.ApplyBatch(ops)
	}
	perBatch := time.Since(start) / time.Duration(b.N)
	b.ReportMetric(float64(perBatch.Microseconds())/1000, "ms/batch")
	if perBatch > 0 {
		b.ReportMetric(float64(nodes*rtt)/float64(perBatch), "fanout-speedup")
	}
}
