package cluster

import (
	"fmt"
	"sync"
	"time"

	"cachegenie/internal/kvcache"
)

// Manager is a consistent-hash ring with live membership. It implements
// kvcache.Cache and kvcache.BatchApplier exactly like Ring, but AddNode and
// RemoveNode change membership while traffic flows: each mutation rebuilds
// an immutable Ring under the write lock and swaps it in, and every
// operation routes through the ring current at its start.
//
// Because vnode positions hash from stable node identities (see Ring), a
// membership change of one node remaps only that node's ~1/N share of keys;
// every other key keeps its owner. Remapped keys simply start cold on their
// new node — the consistent-hashing bargain, no data migration.
//
// Operations already in flight when membership changes may still reach the
// old owner; for a cache that is indistinguishable from a stale entry's
// normal miss-and-repopulate cycle.
//
// Consistency caveat: a remapped key's copy on its old owner is not deleted
// — and from then on invalidations route only to the new owner, so the old
// copy is orphaned from trigger maintenance. If a LATER membership change
// remaps the key back (a node leaving and rejoining twice, say), the
// orphaned copy can resurface with a value from before the intervening
// writes. Entries written with a TTL bound that staleness; entries without
// one do not. Deployments that churn membership and need the trigger
// guarantee should flush rejoining nodes (Stack.ReviveNode does) and flush
// survivors — or cap TTLs — around repeated changes; key handoff that
// deletes the remapped share from the old owner is the planned fix
// (ROADMAP).
type Manager struct {
	mu    sync.RWMutex
	ring  *Ring
	ids   []string                 // membership in join order
	nodes map[string]kvcache.Cache // id → cache
}

var (
	_ kvcache.Cache        = (*Manager)(nil)
	_ kvcache.BatchApplier = (*Manager)(nil)
)

// NewManager builds a mutable ring over the given caches with stable node
// identities (see NewRingIDs for the constraints).
func NewManager(ids []string, nodes []kvcache.Cache) (*Manager, error) {
	ring, err := NewRingIDs(ids, nodes)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		ring:  ring,
		ids:   append([]string(nil), ids...),
		nodes: make(map[string]kvcache.Cache, len(ids)),
	}
	for i, id := range ids {
		m.nodes[id] = nodes[i]
	}
	return m, nil
}

// Ring returns the current immutable ring snapshot. Routing decisions made
// against it stay internally consistent even if membership changes after.
func (m *Manager) Ring() *Ring {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.ring
}

// NumNodes reports current membership size.
func (m *Manager) NumNodes() int { return m.Ring().NumNodes() }

// NodeIDs returns the current membership in join order.
func (m *Manager) NodeIDs() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]string(nil), m.ids...)
}

// OwnerID returns the stable identity of the node currently owning key.
func (m *Manager) OwnerID(key string) string { return m.Ring().OwnerID(key) }

// Node returns the cache registered under id, if any.
func (m *Manager) Node(id string) (kvcache.Cache, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c, ok := m.nodes[id]
	return c, ok
}

// AddNode joins a node to the ring under a stable identity. Only the ~1/N
// key share the new node's vnodes claim changes owner.
func (m *Manager) AddNode(id string, c kvcache.Cache) error {
	if c == nil {
		return fmt.Errorf("cluster: nil cache for node %q", id)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.nodes[id]; dup {
		return fmt.Errorf("cluster: node %q already in the ring", id)
	}
	ids := append(append([]string(nil), m.ids...), id)
	nodes := make([]kvcache.Cache, 0, len(ids))
	for _, existing := range m.ids {
		nodes = append(nodes, m.nodes[existing])
	}
	nodes = append(nodes, c)
	ring, err := NewRingIDs(ids, nodes)
	if err != nil {
		return err
	}
	m.ids = ids
	m.nodes[id] = c
	m.ring = ring
	return nil
}

// RemoveNode leaves id's node out of the ring; its ~1/N key share remaps to
// the survivors and every other key keeps its owner. The last node cannot be
// removed — a ring with no nodes cannot route.
func (m *Manager) RemoveNode(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.nodes[id]; !ok {
		return fmt.Errorf("cluster: node %q not in the ring", id)
	}
	if len(m.ids) == 1 {
		return fmt.Errorf("cluster: cannot remove the last node %q", id)
	}
	ids := make([]string, 0, len(m.ids)-1)
	nodes := make([]kvcache.Cache, 0, len(m.ids)-1)
	for _, existing := range m.ids {
		if existing == id {
			continue
		}
		ids = append(ids, existing)
		nodes = append(nodes, m.nodes[existing])
	}
	ring, err := NewRingIDs(ids, nodes)
	if err != nil {
		return err
	}
	m.ids = ids
	delete(m.nodes, id)
	m.ring = ring
	return nil
}

// Get implements kvcache.Cache.
func (m *Manager) Get(key string) ([]byte, bool) { return m.Ring().Get(key) }

// Gets implements kvcache.Cache.
func (m *Manager) Gets(key string) ([]byte, uint64, bool) { return m.Ring().Gets(key) }

// Set implements kvcache.Cache.
func (m *Manager) Set(key string, value []byte, ttl time.Duration) {
	m.Ring().Set(key, value, ttl)
}

// Add implements kvcache.Cache.
func (m *Manager) Add(key string, value []byte, ttl time.Duration) bool {
	return m.Ring().Add(key, value, ttl)
}

// Cas implements kvcache.Cache.
func (m *Manager) Cas(key string, value []byte, ttl time.Duration, cas uint64) kvcache.CasResult {
	return m.Ring().Cas(key, value, ttl, cas)
}

// Delete implements kvcache.Cache.
func (m *Manager) Delete(key string) bool { return m.Ring().Delete(key) }

// Incr implements kvcache.Cache.
func (m *Manager) Incr(key string, delta int64) (int64, bool) { return m.Ring().Incr(key, delta) }

// FlushAll implements kvcache.Cache.
func (m *Manager) FlushAll() { m.Ring().FlushAll() }

// ApplyBatch implements kvcache.BatchApplier: the whole batch routes through
// one ring snapshot, so a concurrent membership change cannot split it
// inconsistently.
func (m *Manager) ApplyBatch(ops []kvcache.BatchOp) []kvcache.BatchResult {
	return m.Ring().ApplyBatch(ops)
}
