package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cachegenie/internal/kvcache"
)

// Manager is a consistent-hash ring with live membership. It implements
// kvcache.Cache and kvcache.BatchApplier exactly like Ring, but AddNode and
// RemoveNode change membership while traffic flows: each mutation rebuilds
// an immutable Ring under the write lock and swaps it in, and every
// operation routes through the ring current at its start.
//
// Because vnode positions hash from stable node identities (see Ring), a
// membership change of one node remaps only that node's ~1/N share of keys;
// every other key keeps its owner.
//
// Operations already in flight when membership changes may still reach the
// old owner; for a cache that is indistinguishable from a stale entry's
// normal miss-and-repopulate cycle.
//
// Pinned snapshots. Each Manager op method fetches the current ring once
// and routes the whole op through it, so a single Get or ApplyBatch can
// never be split across two memberships. A *sequence* of ops can: a
// Gets→Cas pair issued through the Manager re-fetches the ring per call, so
// a membership change between the two can route them to different nodes —
// the Cas then fails with NOT_FOUND (the new node has no such token) and
// the caller retries, which is safe but wasted work. Read-modify-write
// sequences that want one consistent routing should pin a snapshot with
// Ring() and issue both calls against it; the snapshot is immutable and
// remains valid (old-owner reads degrade to ordinary misses after a
// remap, never to wrong answers).
//
// Key handoff. A membership change leaves remapped keys' copies behind on
// their prior owners, where trigger invalidations — which route through the
// *new* ring — can no longer reach them; a later change remapping a key
// back would resurface a pre-change value. Two mechanisms close the hole.
// AddNode flushes the joining node before it enters the ring (pre-join
// contents are unreachable by trigger maintenance by construction, and the
// node receives no traffic yet, so the flush cannot catch a fresh write).
// Then each membership change runs a handoff pass after swapping rings:
// every reachable node that can enumerate its keys (in-process stores and
// cacheproto pools both can) is scanned, keys whose replica set grew are
// copied to the newly responsible nodes (warmup, always as add-if-absent
// so a racing fresh write wins; disable with WithHandoffWarmup(false)),
// keys a node no longer replicates are deleted from it, and debris owned
// under neither the old nor the live ring is dropped. The pass runs
// outside the membership lock, concurrently with traffic; a racing write
// can re-create a copy the drain just removed, which the next change's
// pass cleans again. Nodes that cannot be enumerated (dead, or no key
// listing) are skipped and counted in HandoffStats.
type Manager struct {
	// mu guards membership state; routing reads it per op, so nothing under
	// it may block (handoff I/O runs under handoffMu instead).
	//
	//genie:nonblocking
	mu    sync.RWMutex
	ring  *Ring
	ids   []string                 // membership in join order
	nodes map[string]kvcache.Cache // id → cache
	cfg   ringConfig

	// handoffMu serializes handoff passes: two concurrent membership
	// changes must not judge the same keys against different ring pairs —
	// an interleaved pass could copy a key to a node the *other* change
	// already routed it away from, creating exactly the orphan handoff
	// exists to remove. Each pass re-reads the current ring under this
	// lock, so the last pass always settles the tier against the final
	// membership.
	handoffMu sync.Mutex

	handoffDrained atomic.Int64
	handoffCopied  atomic.Int64
	handoffSkipped atomic.Int64
}

var (
	_ kvcache.Cache        = (*Manager)(nil)
	_ kvcache.BatchApplier = (*Manager)(nil)
)

// NewManager builds a mutable ring over the given caches with stable node
// identities (see NewRingIDs for the constraints). WithReplicas applies to
// every ring the manager builds; the effective R is re-clamped to the node
// count on each membership change.
func NewManager(ids []string, nodes []kvcache.Cache, opts ...Option) (*Manager, error) {
	cfg := defaultRingConfig()
	for _, o := range opts {
		o(&cfg)
	}
	ring, err := NewRingIDs(ids, nodes, opts...)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		ring:  ring,
		ids:   append([]string(nil), ids...),
		nodes: make(map[string]kvcache.Cache, len(ids)),
		cfg:   cfg,
	}
	for i, id := range ids {
		m.nodes[id] = nodes[i]
	}
	return m, nil
}

// Ring returns the current immutable ring snapshot. Routing decisions made
// against it stay internally consistent even if membership changes after —
// this is the pinning mechanism for read-modify-write sequences (see the
// type comment): issue the Gets and the Cas against one snapshot and they
// cannot straddle a membership change.
func (m *Manager) Ring() *Ring {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.ring
}

// NumNodes reports current membership size.
func (m *Manager) NumNodes() int { return m.Ring().NumNodes() }

// Replicas reports the current effective replication factor.
func (m *Manager) Replicas() int { return m.Ring().Replicas() }

// NodeIDs returns the current membership in join order.
func (m *Manager) NodeIDs() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]string(nil), m.ids...)
}

// OwnerID returns the stable identity of the node currently owning key.
func (m *Manager) OwnerID(key string) string { return m.Ring().OwnerID(key) }

// Node returns the cache registered under id, if any.
func (m *Manager) Node(id string) (kvcache.Cache, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c, ok := m.nodes[id]
	return c, ok
}

// ReplicaStats implements ReplicaStatsReporter; the counters survive
// membership-change ring rebuilds.
func (m *Manager) ReplicaStats() ReplicaStats { return m.Ring().ReplicaStats() }

// HotKeyStats implements HotKeyStatsReporter; the sampler and rotation
// counters survive membership-change ring rebuilds.
func (m *Manager) HotKeyStats() HotKeyStats { return m.Ring().HotKeyStats() }

// HandoffStats counts membership-change key-handoff activity.
type HandoffStats struct {
	// Drained is how many keys handoff deleted from nodes that no longer
	// replicate them (including stale pre-leave leftovers on rejoiners).
	Drained int64
	// Copied is how many keys were copied to a newly responsible node
	// before the prior owner's copy was dropped (warmup).
	Copied int64
	// SkippedNodes counts nodes a handoff pass could not enumerate —
	// unreachable (dead at RemoveNode time, typically) or without key
	// listing support. Their keys stay behind; a TTL or the next
	// successful pass bounds the staleness.
	SkippedNodes int64
}

// HandoffStats returns cumulative handoff counters.
func (m *Manager) HandoffStats() HandoffStats {
	return HandoffStats{
		Drained:      m.handoffDrained.Load(),
		Copied:       m.handoffCopied.Load(),
		SkippedNodes: m.handoffSkipped.Load(),
	}
}

// AddNode joins a node to the ring under a stable identity. Only the ~1/N
// key share the new node's vnodes claim changes owner; the handoff pass
// then migrates that share (copy to the new owner, delete from the old) so
// no orphaned copies stay behind.
//
// The joining node is flushed before it enters the ring: anything it holds
// pre-join is unreachable by trigger maintenance by construction (no
// invalidation routes to a non-member), so a rejoiner's pre-outage copies
// would be resurfacing hazards, and the flush happens while the node still
// receives no traffic — no fresh write can be caught in it. Warm state
// comes from the handoff copies, not from whatever the node remembers.
func (m *Manager) AddNode(id string, c kvcache.Cache) error {
	if c == nil {
		return fmt.Errorf("cluster: nil cache for node %q", id)
	}
	c.FlushAll()
	m.mu.Lock()
	if _, dup := m.nodes[id]; dup {
		m.mu.Unlock()
		return fmt.Errorf("cluster: node %q already in the ring", id)
	}
	ids := append(append([]string(nil), m.ids...), id)
	nodes := make([]kvcache.Cache, 0, len(ids))
	for _, existing := range m.ids {
		nodes = append(nodes, m.nodes[existing])
	}
	nodes = append(nodes, c)
	old := m.ring
	ring, err := m.rebuildLocked(ids, nodes)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	m.ids = ids
	m.nodes[id] = c
	m.ring = ring
	m.mu.Unlock()
	m.handoff(old, "", nil)
	return nil
}

// RemoveNode leaves id's node out of the ring; its ~1/N key share remaps to
// the survivors and every other key keeps its owner. The handoff pass then
// drains the leaver (when it is still reachable — a graceful leave), copying
// its share to the new owners and deleting it, so a later rejoin cannot
// resurface pre-leave values. The last node cannot be removed — a ring with
// no nodes cannot route.
func (m *Manager) RemoveNode(id string) error {
	m.mu.Lock()
	if _, ok := m.nodes[id]; !ok {
		m.mu.Unlock()
		return fmt.Errorf("cluster: node %q not in the ring", id)
	}
	if len(m.ids) == 1 {
		m.mu.Unlock()
		return fmt.Errorf("cluster: cannot remove the last node %q", id)
	}
	ids := make([]string, 0, len(m.ids)-1)
	nodes := make([]kvcache.Cache, 0, len(m.ids)-1)
	for _, existing := range m.ids {
		if existing == id {
			continue
		}
		ids = append(ids, existing)
		nodes = append(nodes, m.nodes[existing])
	}
	old := m.ring
	leaver := m.nodes[id]
	ring, err := m.rebuildLocked(ids, nodes)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	m.ids = ids
	delete(m.nodes, id)
	m.ring = ring
	m.mu.Unlock()
	m.handoff(old, id, leaver)
	return nil
}

// rebuildLocked builds a replacement ring carrying the manager's options
// and the existing replica/hot-key counters forward. Caller holds m.mu.
func (m *Manager) rebuildLocked(ids []string, nodes []kvcache.Cache) (*Ring, error) {
	ring, err := NewRingIDs(ids, nodes, WithReplicas(m.cfg.replicas))
	if err != nil {
		return nil, err
	}
	ring.counters = m.ring.counters
	ring.hot = m.ring.hot
	return ring, nil
}

// keyList enumerates a node's keys: in-process stores list directly,
// cacheproto pools over the wire; anything else is unenumerable.
func keyList(c kvcache.Cache) ([]string, bool) {
	switch n := c.(type) {
	case interface{ Keys() ([]string, error) }:
		keys, err := n.Keys()
		return keys, err == nil
	case interface{ Keys() []string }:
		return n.Keys(), true
	}
	return nil, false
}

// handoff migrates remapped key shares after a membership change (see the
// type comment). old is the pre-change ring snapshot; extra, when non-nil,
// is a node no longer in the ring (RemoveNode's leaver) that still needs
// draining. Passes serialize on handoffMu and judge placement against the
// ring current when the pass starts, so back-to-back membership changes
// settle against the final membership instead of racing each other.
func (m *Manager) handoff(old *Ring, extraID string, extra kvcache.Cache) {
	m.handoffMu.Lock()
	defer m.handoffMu.Unlock()
	next := m.Ring()
	type scanned struct {
		id   string
		node kvcache.Cache
		keys []string
	}
	var nodes []scanned
	for i, id := range next.ids {
		keys, ok := keyList(next.nodes[i])
		if !ok {
			m.handoffSkipped.Add(1)
			continue
		}
		nodes = append(nodes, scanned{id: id, node: next.nodes[i], keys: keys})
	}
	if extra != nil {
		rejoined := false
		for _, id := range next.ids {
			if id == extraID {
				rejoined = true // re-added before this pass ran; scanned above
				break
			}
		}
		if !rejoined {
			if keys, ok := keyList(extra); ok {
				nodes = append(nodes, scanned{id: extraID, node: extra, keys: keys})
			} else {
				m.handoffSkipped.Add(1)
			}
		}
	}

	scannedIDs := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		scannedIDs[n.id] = true
	}
	nextNode := make(map[string]kvcache.Cache, len(next.ids))
	for i, id := range next.ids {
		nextNode[id] = next.nodes[i]
	}
	replicaIDs := func(r *Ring, key string) []string {
		var buf [maxStackReplicas]int
		set := r.replicasAppend(key, buf[:0])
		out := make([]string, len(set))
		for i, ni := range set {
			out[i] = r.ids[ni]
		}
		return out
	}
	contains := func(ids []string, id string) bool {
		for _, have := range ids {
			if have == id {
				return true
			}
		}
		return false
	}

	// Phase 1 — drop stale leftovers: a key held by a node that replicates
	// it under NEITHER the old nor the live ring is debris from an earlier
	// membership, unreachable by invalidation; it goes before the copy
	// phase. A key the node holds and owns under the live ring but not the
	// old one is kept untouched: it can only be traffic that landed after
	// the ring swap (pre-join contents were flushed by AddNode), which is
	// fresher than anything this pass could copy — deleting it here would
	// turn the phase-2 copy into a stale resurrection. After this loop
	// n.keys holds only the keys the node held under the old ring, the
	// phase-2 copy-source candidates.
	for i := range nodes {
		n := &nodes[i]
		var stale, legit []string
		for _, k := range n.keys {
			switch {
			case contains(replicaIDs(old, k), n.id):
				legit = append(legit, k)
			case !contains(replicaIDs(next, k), n.id):
				stale = append(stale, k)
			}
		}
		if len(stale) > 0 {
			deleteKeys(n.node, stale)
			m.handoffDrained.Add(int64(len(stale)))
		}
		n.keys = legit
	}

	// Phase 2 — warm the newly responsible nodes: every key whose NEW
	// replica set gained members it did not have under the old ring gets
	// copied to them, by one designated holder — the most-preferred old
	// replica that the pass could enumerate (with replication a change can
	// grow a key's set without any holder losing it, e.g. a removed node's
	// share gaining a fresh second replica, so "the node losing the key
	// copies it" would miss exactly the replication repairs that matter).
	// Every copy rides as an Add, never a Set: a joining node was flushed
	// before entering the ring and phase 1 removed any other debris, so
	// the only value an Add can lose to is one a concurrent write landed
	// after the ring swap — which is fresher and must win. Copied entries
	// carry no TTL (not recoverable from a get); they stay maintained
	// because invalidations route to their new owners. Copies accumulate
	// per target and flush as pipelined batches, so a remote rejoin warmup
	// costs round trips per chunk, not per key.
	//
	// Phase 3 — drain: a key is deleted from every legitimate holder the
	// new ring no longer lists as a replica, closing the orphaned-copy
	// consistency hole documented on the type.
	copies := make(map[string][]kvcache.BatchOp)
	for i := range nodes {
		n := &nodes[i]
		var moved []string
		for _, k := range n.keys {
			oldSet := replicaIDs(old, k)
			newSet := replicaIDs(next, k)
			if m.cfg.handoffWarmup {
				designated := ""
				for _, id := range oldSet {
					if scannedIDs[id] {
						designated = id
						break
					}
				}
				if designated == n.id {
					var copied bool
					var v []byte
					for _, id := range newSet {
						if contains(oldSet, id) {
							continue // already held it; nothing to warm
						}
						if !copied {
							v, copied = n.node.Get(k)
							if !copied {
								break // evicted since the scan; nothing to copy
							}
						}
						copies[id] = append(copies[id], kvcache.BatchOp{Kind: kvcache.BatchAdd, Key: k, Value: v})
						m.handoffCopied.Add(1)
					}
				}
			}
			if !contains(newSet, n.id) {
				moved = append(moved, k)
			}
		}
		if len(moved) > 0 {
			deleteKeys(n.node, moved)
			m.handoffDrained.Add(int64(len(moved)))
		}
	}
	for id, ops := range copies {
		applyChunked(nextNode[id], ops)
	}
}

// handoffChunk bounds one pipelined handoff batch: big enough to amortize
// the round trip, small enough that a drain or warmup never pins one huge
// mop exchange (or its values) in memory.
const handoffChunk = 512

// applyChunked applies ops to one node in pipelined chunks, so a remote
// drain or warmup costs one round trip per chunk instead of one per key.
func applyChunked(c kvcache.Cache, ops []kvcache.BatchOp) {
	for len(ops) > 0 {
		n := len(ops)
		if n > handoffChunk {
			n = handoffChunk
		}
		kvcache.ApplyBatchOn(c, ops[:n])
		ops = ops[n:]
	}
}

// deleteKeys removes keys from one node, batched via applyChunked.
func deleteKeys(c kvcache.Cache, keys []string) {
	ops := make([]kvcache.BatchOp, len(keys))
	for i, k := range keys {
		ops[i] = kvcache.BatchOp{Kind: kvcache.BatchDelete, Key: k}
	}
	applyChunked(c, ops)
}

// Get implements kvcache.Cache.
func (m *Manager) Get(key string) ([]byte, bool) { return m.Ring().Get(key) }

// Gets implements kvcache.Cache. The token is only coherent with a Cas
// routed through the same membership; pin with Ring() when that matters
// (see the type comment).
func (m *Manager) Gets(key string) ([]byte, uint64, bool) { return m.Ring().Gets(key) }

// Set implements kvcache.Cache.
func (m *Manager) Set(key string, value []byte, ttl time.Duration) {
	m.Ring().Set(key, value, ttl)
}

// Add implements kvcache.Cache.
func (m *Manager) Add(key string, value []byte, ttl time.Duration) bool {
	return m.Ring().Add(key, value, ttl)
}

// Cas implements kvcache.Cache.
func (m *Manager) Cas(key string, value []byte, ttl time.Duration, cas uint64) kvcache.CasResult {
	return m.Ring().Cas(key, value, ttl, cas)
}

// Delete implements kvcache.Cache.
func (m *Manager) Delete(key string) bool { return m.Ring().Delete(key) }

// Incr implements kvcache.Cache.
func (m *Manager) Incr(key string, delta int64) (int64, bool) { return m.Ring().Incr(key, delta) }

// FlushAll implements kvcache.Cache.
func (m *Manager) FlushAll() { m.Ring().FlushAll() }

// ApplyBatch implements kvcache.BatchApplier: the whole batch routes through
// one ring snapshot, so a concurrent membership change cannot split it
// inconsistently.
func (m *Manager) ApplyBatch(ops []kvcache.BatchOp) []kvcache.BatchResult {
	return m.Ring().ApplyBatch(ops)
}
