package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cachegenie/internal/cacheproto"
	"cachegenie/internal/kvcache"
)

func newReplicatedRing(t *testing.T, n, replicas int) (*Ring, []*kvcache.Store) {
	t.Helper()
	stores := make([]*kvcache.Store, n)
	nodes := make([]kvcache.Cache, n)
	for i := range stores {
		stores[i] = kvcache.New(0)
		nodes[i] = stores[i]
	}
	r, err := NewRing(nodes, WithReplicas(replicas))
	if err != nil {
		t.Fatal(err)
	}
	return r, stores
}

// TestReplicasForDistinct: the replica set is always R distinct nodes (R
// clamped to N), preference-first, with the preferred replica equal to the
// single-owner NodeFor — even where one node's vnodes cluster consecutively
// on the ring, the walk collapses them instead of listing a node twice.
func TestReplicasForDistinct(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		for _, req := range []int{1, 2, 3, n + 3} {
			r, _ := newReplicatedRing(t, n, req)
			want := req
			if want < 1 {
				want = 1
			}
			if want > n {
				want = n
			}
			if r.Replicas() != want {
				t.Fatalf("n=%d req=%d: Replicas() = %d, want %d", n, req, r.Replicas(), want)
			}
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%d", i)
				set := r.ReplicasFor(k)
				if len(set) != want {
					t.Fatalf("n=%d req=%d: ReplicasFor(%s) = %v, want %d nodes", n, req, k, set, want)
				}
				if set[0] != r.NodeFor(k) {
					t.Fatalf("preferred replica %d != NodeFor %d", set[0], r.NodeFor(k))
				}
				seen := map[int]bool{}
				for _, ni := range set {
					if ni < 0 || ni >= n {
						t.Fatalf("replica index %d out of range", ni)
					}
					if seen[ni] {
						t.Fatalf("ReplicasFor(%s) = %v has duplicate node %d", k, set, ni)
					}
					seen[ni] = true
				}
			}
		}
	}
}

// TestReplicatedWritesReachAllReplicas: sets, deletes and increments fan out
// to exactly the key's replica set — every replica holds the value, no
// non-replica does.
func TestReplicatedWritesReachAllReplicas(t *testing.T) {
	r, stores := newReplicatedRing(t, 3, 2)
	const keys = 200
	for i := 0; i < keys; i++ {
		r.Set(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("v%d", i)), 0)
	}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		owners := map[int]bool{}
		for _, ni := range r.ReplicasFor(k) {
			owners[ni] = true
		}
		for ni, s := range stores {
			v, ok := s.GetQuiet(k)
			if ok != owners[ni] {
				t.Fatalf("%s: present=%v on node %d, replicas %v", k, ok, ni, r.ReplicasFor(k))
			}
			if ok && string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("%s on node %d = %q", k, ni, v)
			}
		}
	}

	// Incr reaches every replica and reports the preferred result.
	r.Set("ctr", []byte("5"), 0)
	if n, ok := r.Incr("ctr", 3); !ok || n != 8 {
		t.Fatalf("Incr = %d, %v", n, ok)
	}
	for _, ni := range r.ReplicasFor("ctr") {
		if v, ok := stores[ni].GetQuiet("ctr"); !ok || string(v) != "8" {
			t.Fatalf("ctr on replica %d = %q, %v", ni, v, ok)
		}
	}

	// Delete removes every copy and reports presence.
	if !r.Delete("key-0") {
		t.Fatal("Delete = false for a present key")
	}
	for ni, s := range stores {
		if _, ok := s.GetQuiet("key-0"); ok {
			t.Fatalf("key-0 survived delete on node %d", ni)
		}
	}
	if r.Delete("key-0") {
		t.Fatal("second Delete = true")
	}

	// Add fans out too.
	if !r.Add("added", []byte("a"), 0) {
		t.Fatal("Add = false")
	}
	for _, ni := range r.ReplicasFor("added") {
		if _, ok := stores[ni].GetQuiet("added"); !ok {
			t.Fatalf("added missing on replica %d", ni)
		}
	}
	if r.Add("added", []byte("b"), 0) {
		t.Fatal("second Add = true")
	}
}

// TestInvalidationDeleteReachesAllReplicas is the regression test for the
// trigger-maintenance contract under replication: a delete riding a batch —
// the invalidation bus's flush path — must remove every replica's copy, not
// just the preferred one.
func TestInvalidationDeleteReachesAllReplicas(t *testing.T) {
	r, stores := newReplicatedRing(t, 4, 3)
	var ops []kvcache.BatchOp
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("inv-%d", i)
		r.Set(k, []byte("v"), 0)
		ops = append(ops, kvcache.BatchOp{Kind: kvcache.BatchDelete, Key: k})
	}
	res := r.ApplyBatch(ops)
	for i, br := range res {
		if !br.Found {
			t.Fatalf("delete %d reported not found", i)
		}
	}
	for ni, s := range stores {
		if s.Len() != 0 {
			t.Fatalf("node %d still holds %d entries after replicated invalidation", ni, s.Len())
		}
	}
}

// TestReplicatedApplyBatchOrdering: per-key op order is preserved on every
// replica (same final state everywhere) and results come back in input
// order from the preferred replica.
func TestReplicatedApplyBatchOrdering(t *testing.T) {
	r, stores := newReplicatedRing(t, 3, 2)
	var ops []kvcache.BatchOp
	const keys = 16
	for round := 0; round < 8; round++ {
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("ord-%d", i)
			ops = append(ops,
				kvcache.BatchOp{Kind: kvcache.BatchSet, Key: k, Value: []byte(fmt.Sprintf("%d", round*10))},
				kvcache.BatchOp{Kind: kvcache.BatchIncr, Key: k, Delta: 1},
			)
		}
	}
	res := r.ApplyBatch(ops)
	if len(res) != len(ops) {
		t.Fatalf("results = %d, want %d", len(res), len(ops))
	}
	for oi, op := range ops {
		if op.Kind == kvcache.BatchIncr && !res[oi].Found {
			t.Fatalf("incr %d lost its preceding set", oi)
		}
	}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("ord-%d", i)
		want := "71" // last round: set 70 then incr
		for _, ni := range r.ReplicasFor(k) {
			v, ok := stores[ni].GetQuiet(k)
			if !ok || string(v) != want {
				t.Fatalf("%s on replica %d = %q/%v, want %q", k, ni, v, ok, want)
			}
		}
	}
}

// flakyNode wraps a store with a switchable health report, standing in for
// a pool whose breaker opened.
type flakyNode struct {
	kvcache.Cache
	healthy atomic.Bool
}

func (f *flakyNode) Healthy() bool { return f.healthy.Load() }

// TestBreakerAwareFailoverAndReadRepair drives the read path through both
// failover shapes: an unhealthy preferred replica is skipped before any
// lookup (no repair attempted at it while its breaker is open), and a
// healthy-but-cold preferred replica is repopulated from the failover hit.
func TestBreakerAwareFailoverAndReadRepair(t *testing.T) {
	stores := []*kvcache.Store{kvcache.New(0), kvcache.New(0)}
	flaky := []*flakyNode{{Cache: stores[0]}, {Cache: stores[1]}}
	flaky[0].healthy.Store(true)
	flaky[1].healthy.Store(true)
	r, err := NewRing([]kvcache.Cache{flaky[0], flaky[1]}, WithReplicas(2))
	if err != nil {
		t.Fatal(err)
	}

	// A key whose preferred replica is node 0 keeps the scenario readable.
	key := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("failover-%d", i)
		if r.NodeFor(k) == 0 {
			key = k
			break
		}
	}
	r.Set(key, []byte("v1"), 0)

	// Open breaker on the preferred replica: the read must skip it without
	// touching it and serve from the second replica — and must not try to
	// repair a node whose breaker is open.
	flaky[0].healthy.Store(false)
	stores[0].Delete(key) // simulate the node's copy being gone with it
	if v, ok := r.Get(key); !ok || string(v) != "v1" {
		t.Fatalf("failover Get = %q, %v", v, ok)
	}
	st := r.ReplicaStats()
	if st.FailoverReads != 1 || st.SkippedUnhealthy == 0 {
		t.Fatalf("stats after skip-failover = %+v", st)
	}
	if st.ReadRepairs != 0 {
		t.Fatalf("read-repaired an open-breaker node: %+v", st)
	}
	if _, ok := stores[0].GetQuiet(key); ok {
		t.Fatal("value appeared on the unhealthy node")
	}

	// Gets routes to the first healthy replica so a Cas with its token
	// lands on the same node.
	v, tok, ok := r.Gets(key)
	if !ok || string(v) != "v1" {
		t.Fatalf("Gets under open breaker = %q, %v", v, ok)
	}
	if res := r.Cas(key, []byte("v2"), 0, tok); res != kvcache.CasStored {
		t.Fatalf("Cas with failover token = %v", res)
	}

	// Preferred replica healthy again but cold (revived): the next failover
	// hit read-repairs it. (The Cas propagation above re-Set the key on
	// node 0 — clear it again to model the cold restart.)
	stores[0].Delete(key)
	flaky[0].healthy.Store(true)
	if v, ok := r.Get(key); !ok || string(v) != "v2" {
		t.Fatalf("Get after recovery = %q, %v", v, ok)
	}
	st = r.ReplicaStats()
	if st.FailoverReads != 2 || st.ReadRepairs != 1 {
		t.Fatalf("stats after read-repair = %+v", st)
	}
	if v, ok := stores[0].GetQuiet(key); !ok || string(v) != "v2" {
		t.Fatalf("preferred replica not repaired: %q, %v", v, ok)
	}

	// With the repaired copy in place the read is a plain preferred-replica
	// hit again.
	if v, ok := r.Get(key); !ok || string(v) != "v2" {
		t.Fatalf("Get after repair = %q, %v", v, ok)
	}
	if got := r.ReplicaStats().FailoverReads; got != 2 {
		t.Fatalf("FailoverReads grew to %d on a healthy read", got)
	}
}

// TestReplicatedFailoverKilledNodeRace runs concurrent replicated traffic
// through real cacheproto pools while one of the two nodes is killed:
// no panics or races (run under -race), every key stays readable via its
// surviving replica, and the ring records failover reads.
func TestReplicatedFailoverKilledNodeRace(t *testing.T) {
	stores := make([]*kvcache.Store, 2)
	servers := make([]*cacheproto.Server, 2)
	pools := make([]*cacheproto.Pool, 2)
	nodes := make([]kvcache.Cache, 2)
	ids := make([]string, 2)
	for i := range stores {
		stores[i] = kvcache.New(0)
		servers[i] = cacheproto.NewServer(stores[i])
		addr, err := servers[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		pools[i] = cacheproto.NewPoolWithConfig(cacheproto.PoolConfig{
			Addr:          addr,
			FailThreshold: 2,
			ProbeInterval: 10 * time.Millisecond,
			OpTimeout:     2 * time.Second,
		})
		nodes[i] = pools[i]
		ids[i] = addr
	}
	defer func() {
		for i := range pools {
			_ = pools[i].Close()
			_ = servers[i].Close()
		}
	}()
	r, err := NewRingIDs(ids, nodes, WithReplicas(2))
	if err != nil {
		t.Fatal(err)
	}

	const keys = 64
	for i := 0; i < keys; i++ {
		r.Set(fmt.Sprintf("race-%d", i), []byte(fmt.Sprintf("v%d", i)), 0)
	}
	if err := servers[0].Close(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("race-%d", (g*53+i)%keys)
				switch i % 3 {
				case 0:
					r.Get(k)
				case 1:
					r.Set(k, []byte("w"), 0)
				default:
					r.ApplyBatch([]kvcache.BatchOp{{Kind: kvcache.BatchSet, Key: k, Value: []byte("b")}})
				}
			}
		}(g)
	}
	wg.Wait()

	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("race-%d", i)
		if _, ok := r.Get(k); !ok {
			t.Fatalf("%s unreadable with one of two replicas dead", k)
		}
	}
	st := r.ReplicaStats()
	if st.FailoverReads == 0 {
		t.Fatalf("no failover reads recorded: %+v", st)
	}
}
