// Package cluster spreads cache keys over multiple cache servers with
// consistent hashing, giving CacheGenie the paper's "single logical cache
// across many cache servers" property (§2, contrast with SI-cache whose
// per-server caches duplicate data and shrink effective capacity).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"cachegenie/internal/kvcache"
)

// virtualNodes is how many ring positions each server occupies; more
// positions smooth the key distribution.
const virtualNodes = 128

// Ring is a consistent-hash ring of caches. It implements kvcache.Cache, so
// the rest of the system cannot tell one server from many. Ring is immutable
// after construction; Manager rebuilds one to change membership.
//
// Every node has a stable string identity, and vnode positions hash from
// that identity — never from the node's index. That is what makes membership
// change cheap: a node's positions depend only on its own id, so removing
// one node deletes only its vnodes and only its ~1/N share of keys remaps.
// (The original index-based scheme hashed "node-<i>-vn-<v>": removing node k
// renumbered every successor, remapping keys on nodes that never moved.)
type Ring struct {
	ids    []string
	nodes  []kvcache.Cache
	hashes []uint64 // sorted ring positions
	owner  []int    // owner[i] = node index for hashes[i]
}

var _ kvcache.Cache = (*Ring)(nil)

// NewRing builds a ring over the given caches (at least one), assigning the
// default identities "node-0".."node-N-1" in order. Fine for a fixed
// membership; callers that will add or remove nodes should use NewRingIDs
// (or Manager) with identities that survive renumbering — a server address,
// for instance.
func NewRing(nodes []kvcache.Cache) (*Ring, error) {
	ids := make([]string, len(nodes))
	for i := range nodes {
		ids[i] = fmt.Sprintf("node-%d", i)
	}
	return NewRingIDs(ids, nodes)
}

// NewRingIDs builds a ring over the given caches with explicit stable node
// identities. ids and nodes correspond by index; ids must be unique and
// non-empty.
func NewRingIDs(ids []string, nodes []kvcache.Cache) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if len(ids) != len(nodes) {
		return nil, fmt.Errorf("cluster: %d ids for %d nodes", len(ids), len(nodes))
	}
	seen := make(map[string]struct{}, len(ids))
	for _, id := range ids {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty node id")
		}
		if _, dup := seen[id]; dup {
			return nil, fmt.Errorf("cluster: duplicate node id %q", id)
		}
		seen[id] = struct{}{}
	}
	r := &Ring{ids: ids, nodes: nodes}
	for ni, id := range ids {
		for v := 0; v < virtualNodes; v++ {
			h := hash64(fmt.Sprintf("%s-vn-%d", id, v))
			r.hashes = append(r.hashes, h)
			r.owner = append(r.owner, ni)
		}
	}
	// Sort positions and owners together.
	idx := make([]int, len(r.hashes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return r.hashes[idx[a]] < r.hashes[idx[b]] })
	hashes := make([]uint64, len(idx))
	owner := make([]int, len(idx))
	for i, j := range idx {
		hashes[i] = r.hashes[j]
		owner[i] = r.owner[j]
	}
	r.hashes, r.owner = hashes, owner
	return r, nil
}

// hash64 is FNV-1a with a murmur3-style finalizer; bare FNV clusters badly
// on sequential keys ("key-1", "key-2", ...), which is exactly what cache
// keys look like.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// NodeFor returns the index of the node owning key.
func (r *Ring) NodeFor(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owner[i]
}

func (r *Ring) pick(key string) kvcache.Cache { return r.nodes[r.NodeFor(key)] }

// NumNodes reports ring membership size.
func (r *Ring) NumNodes() int { return len(r.nodes) }

// NodeID returns the stable identity of the node at index i.
func (r *Ring) NodeID(i int) string { return r.ids[i] }

// NodeIDs returns the stable identities in node-index order.
func (r *Ring) NodeIDs() []string { return append([]string(nil), r.ids...) }

// OwnerID returns the stable identity of the node owning key.
func (r *Ring) OwnerID(key string) string { return r.ids[r.NodeFor(key)] }

// Get implements kvcache.Cache.
func (r *Ring) Get(key string) ([]byte, bool) { return r.pick(key).Get(key) }

// Gets implements kvcache.Cache.
func (r *Ring) Gets(key string) ([]byte, uint64, bool) { return r.pick(key).Gets(key) }

// Set implements kvcache.Cache.
func (r *Ring) Set(key string, value []byte, ttl time.Duration) {
	r.pick(key).Set(key, value, ttl)
}

// Add implements kvcache.Cache.
func (r *Ring) Add(key string, value []byte, ttl time.Duration) bool {
	return r.pick(key).Add(key, value, ttl)
}

// Cas implements kvcache.Cache.
func (r *Ring) Cas(key string, value []byte, ttl time.Duration, cas uint64) kvcache.CasResult {
	return r.pick(key).Cas(key, value, ttl, cas)
}

// Delete implements kvcache.Cache.
func (r *Ring) Delete(key string) bool { return r.pick(key).Delete(key) }

// Incr implements kvcache.Cache.
func (r *Ring) Incr(key string, delta int64) (int64, bool) { return r.pick(key).Incr(key, delta) }

var _ kvcache.BatchApplier = (*Ring)(nil)

// ApplyBatch implements kvcache.BatchApplier: one logical batch fans out as
// one sub-batch per owning node, preserving the batch's relative op order
// within each node and reassembling results in input order. The sub-batches
// run concurrently, one goroutine per owning node, so a batch that spans the
// ring costs the slowest node's round trip rather than the sum of all of
// them — with remote nodes this is what keeps invalidation-bus flush latency
// flat as the ring grows.
func (r *Ring) ApplyBatch(ops []kvcache.BatchOp) []kvcache.BatchResult {
	if len(ops) == 0 {
		return nil
	}
	// Fast path: a batch wholly owned by one node forwards as-is.
	first := r.NodeFor(ops[0].Key)
	single := true
	for _, op := range ops[1:] {
		if r.NodeFor(op.Key) != first {
			single = false
			break
		}
	}
	if single {
		return kvcache.ApplyBatchOn(r.nodes[first], ops)
	}
	byNode := make(map[int][]int)
	for i, op := range ops {
		n := r.NodeFor(op.Key)
		byNode[n] = append(byNode[n], i)
	}
	out := make([]kvcache.BatchResult, len(ops))
	var wg sync.WaitGroup
	for n, idxs := range byNode {
		wg.Add(1)
		go func(n int, idxs []int) {
			defer wg.Done()
			sub := make([]kvcache.BatchOp, len(idxs))
			for j, i := range idxs {
				sub[j] = ops[i]
			}
			res := kvcache.ApplyBatchOn(r.nodes[n], sub)
			// idxs are disjoint across nodes, so writes into out don't race.
			for j, i := range idxs {
				out[i] = res[j]
			}
		}(n, idxs)
	}
	wg.Wait()
	return out
}

// FlushAll implements kvcache.Cache; it flushes every node, concurrently for
// the same reason ApplyBatch fans out: max-node rather than sum-of-node cost.
func (r *Ring) FlushAll() {
	var wg sync.WaitGroup
	for _, n := range r.nodes {
		wg.Add(1)
		go func(n kvcache.Cache) {
			defer wg.Done()
			n.FlushAll()
		}(n)
	}
	wg.Wait()
}
