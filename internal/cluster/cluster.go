// Package cluster spreads cache keys over multiple cache servers with
// consistent hashing, giving CacheGenie the paper's "single logical cache
// across many cache servers" property (§2, contrast with SI-cache whose
// per-server caches duplicate data and shrink effective capacity).
package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cachegenie/internal/hotkey"
	"cachegenie/internal/kvcache"
)

// virtualNodes is how many ring positions each server occupies; more
// positions smooth the key distribution.
const virtualNodes = 128

// HealthReporter is implemented by cache nodes that know whether they are
// worth talking to right now. cacheproto.Pool reports its circuit-breaker
// state through it; in-process stores don't implement it and are treated as
// always healthy. The ring consults it before dialing: a read skips an
// open-breaker replica without paying even the fail-fast round trip, and a
// failover hit repopulates the preferred replica once it is healthy again.
type HealthReporter interface {
	Healthy() bool
}

// nodeHealthy treats nodes without a HealthReporter as healthy.
func nodeHealthy(c kvcache.Cache) bool {
	if hr, ok := c.(HealthReporter); ok {
		return hr.Healthy()
	}
	return true
}

// Option configures a Ring or Manager.
type Option func(*ringConfig)

type ringConfig struct {
	replicas      int
	handoffWarmup bool
	hotkey        *hotkey.Config
}

func defaultRingConfig() ringConfig {
	return ringConfig{replicas: 1, handoffWarmup: true}
}

// WithReplicas sets the replication factor R: every key lives on the first R
// distinct nodes walking the ring from its hash position. Writes, deletes,
// increments and batch sub-ops fan out to all R replicas in parallel; reads
// try the replicas in preference order, skipping nodes whose HealthReporter
// says their breaker is open, and repopulate the preferred replica after a
// failover hit. R <= 0 or 1 keeps the single-owner routing every experiment
// before 10 ran; R larger than the node count is clamped to it.
func WithReplicas(r int) Option {
	return func(c *ringConfig) {
		if r > 1 {
			c.replicas = r
		}
	}
}

// WithHandoffWarmup controls whether Manager's membership-change key handoff
// copies a remapped key to its new owners before deleting it from the prior
// one (default true). Disabling it keeps the drain-and-delete consistency
// fix but lets the new owners start cold.
func WithHandoffWarmup(on bool) Option {
	return func(c *ringConfig) { c.handoffWarmup = on }
}

// WithHotKeySpreading attaches a popularity sampler (hotkey.Detector) to
// the ring's read path: every Get is observed, and reads for keys the
// sampler flags hot rotate round-robin across the key's full replica set
// instead of always landing on the preferred replica — a celebrity key's
// read load then divides by R instead of capping one node. Writes,
// deletes and CAS keep their existing routing, so per-key linearization
// and trigger-invalidation fan-out are untouched; a replica found missing
// the hot value during a rotated read is repaired with an add-if-absent,
// the same bounded-staleness mechanism failover reads use. With R == 1
// detection still runs (the counters show the skew) but reads cannot
// spread. Zero cfg fields take the hotkey package defaults.
func WithHotKeySpreading(cfg hotkey.Config) Option {
	return func(c *ringConfig) { c.hotkey = &cfg }
}

// ReplicaStats counts replica-set routing activity. The counters live with
// the Manager (or the Ring it was built from) and survive membership-change
// ring rebuilds.
type ReplicaStats struct {
	// FailoverReads are reads served by a non-preferred replica (the
	// preferred one was skipped as unhealthy or missed).
	FailoverReads int64
	// ReadRepairs are failover hits copied back onto the preferred replica.
	ReadRepairs int64
	// SkippedUnhealthy counts replicas an operation skipped because their
	// breaker was open — the routing work a dead node no longer causes.
	SkippedUnhealthy int64
}

// ReplicaStatsReporter is implemented by Ring and Manager; core.Genie uses
// it to surface replica routing counters without knowing the cache topology.
type ReplicaStatsReporter interface {
	ReplicaStats() ReplicaStats
}

// replicaCounters is the shared atomic backing for ReplicaStats.
type replicaCounters struct {
	failover atomic.Int64
	repairs  atomic.Int64
	skipped  atomic.Int64
}

func (c *replicaCounters) snapshot() ReplicaStats {
	return ReplicaStats{
		FailoverReads:    c.failover.Load(),
		ReadRepairs:      c.repairs.Load(),
		SkippedUnhealthy: c.skipped.Load(),
	}
}

// HotKeyStats counts popularity detection and hot-read spreading. Like
// ReplicaStats, the counters live with the Manager and survive
// membership-change ring rebuilds.
type HotKeyStats struct {
	// Observed/Flagged/Decays mirror the sampler (hotkey.Stats): total
	// reads observed, reads judged hot at observation time, decay sweeps.
	Observed int64
	Flagged  int64
	Decays   int64
	// SpreadReads are hot-key reads served through the rotated replica
	// order instead of preferred-first.
	SpreadReads int64
	// SpreadRepairs are rotated reads that found a replica missing the hot
	// value and repaired it with an add-if-absent.
	SpreadRepairs int64
}

// HotKeyStatsReporter is implemented by Ring and Manager when hot-key
// spreading is enabled; core.Genie uses it to surface the counters without
// knowing the cache topology.
type HotKeyStatsReporter interface {
	HotKeyStats() HotKeyStats
}

// hotRouter bundles the popularity sampler with the rotation state; shared
// across Manager ring rebuilds exactly like replicaCounters.
type hotRouter struct {
	det     *hotkey.Detector
	rr      atomic.Uint64 // round-robin cursor over the replica set
	spread  atomic.Int64
	repairs atomic.Int64
}

func (hr *hotRouter) snapshot() HotKeyStats {
	if hr == nil {
		return HotKeyStats{}
	}
	ds := hr.det.Stats()
	return HotKeyStats{
		Observed:      ds.Observed,
		Flagged:       ds.Flagged,
		Decays:        ds.Decays,
		SpreadReads:   hr.spread.Load(),
		SpreadRepairs: hr.repairs.Load(),
	}
}

// Ring is a consistent-hash ring of caches. It implements kvcache.Cache, so
// the rest of the system cannot tell one server from many. Ring is immutable
// after construction; Manager rebuilds one to change membership.
//
// Every node has a stable string identity, and vnode positions hash from
// that identity — never from the node's index. That is what makes membership
// change cheap: a node's positions depend only on its own id, so removing
// one node deletes only its vnodes and only its ~1/N share of keys remaps.
// (The original index-based scheme hashed "node-<i>-vn-<v>": removing node k
// renumbered every successor, remapping keys on nodes that never moved.)
type Ring struct {
	ids    []string
	nodes  []kvcache.Cache
	hashes []uint64 // sorted ring positions
	owner  []int    // owner[i] = node index for hashes[i]
	// replicas is the effective replication factor R, clamped to [1, N].
	// With replicas == 1 every operation routes exactly as it did before
	// replica sets existed.
	replicas int
	counters *replicaCounters
	// hot, when non-nil, is the popularity sampler + rotation state for
	// hot-read spreading (WithHotKeySpreading).
	hot *hotRouter
}

var _ kvcache.Cache = (*Ring)(nil)

// NewRing builds a ring over the given caches (at least one), assigning the
// default identities "node-0".."node-N-1" in order. Fine for a fixed
// membership; callers that will add or remove nodes should use NewRingIDs
// (or Manager) with identities that survive renumbering — a server address,
// for instance.
func NewRing(nodes []kvcache.Cache, opts ...Option) (*Ring, error) {
	ids := make([]string, len(nodes))
	for i := range nodes {
		ids[i] = fmt.Sprintf("node-%d", i)
	}
	return NewRingIDs(ids, nodes, opts...)
}

// NewRingIDs builds a ring over the given caches with explicit stable node
// identities. ids and nodes correspond by index; ids must be unique and
// non-empty. WithReplicas turns the single-owner ring into one of replica
// sets.
func NewRingIDs(ids []string, nodes []kvcache.Cache, opts ...Option) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if len(ids) != len(nodes) {
		return nil, fmt.Errorf("cluster: %d ids for %d nodes", len(ids), len(nodes))
	}
	seen := make(map[string]struct{}, len(ids))
	for _, id := range ids {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty node id")
		}
		if _, dup := seen[id]; dup {
			return nil, fmt.Errorf("cluster: duplicate node id %q", id)
		}
		seen[id] = struct{}{}
	}
	cfg := defaultRingConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.replicas > len(nodes) {
		cfg.replicas = len(nodes)
	}
	r := &Ring{ids: ids, nodes: nodes, replicas: cfg.replicas, counters: &replicaCounters{}}
	if cfg.hotkey != nil {
		r.hot = &hotRouter{det: hotkey.New(*cfg.hotkey)}
	}
	for ni, id := range ids {
		for v := 0; v < virtualNodes; v++ {
			h := hash64(fmt.Sprintf("%s-vn-%d", id, v))
			r.hashes = append(r.hashes, h)
			r.owner = append(r.owner, ni)
		}
	}
	// Sort positions and owners together.
	idx := make([]int, len(r.hashes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return r.hashes[idx[a]] < r.hashes[idx[b]] })
	hashes := make([]uint64, len(idx))
	owner := make([]int, len(idx))
	for i, j := range idx {
		hashes[i] = r.hashes[j]
		owner[i] = r.owner[j]
	}
	r.hashes, r.owner = hashes, owner
	return r, nil
}

// hash64 is FNV-1a with a murmur3-style finalizer; bare FNV clusters badly
// on sequential keys ("key-1", "key-2", ...), which is exactly what cache
// keys look like. The implementation lives in hotkey.Hash so the routing
// and the popularity sampler share one hash of each key.
func hash64(s string) uint64 { return hotkey.Hash(s) }

// NodeFor returns the index of the node owning key — with replication, the
// key's preferred replica (ReplicasFor(key)[0]).
func (r *Ring) NodeFor(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owner[i]
}

func (r *Ring) pick(key string) kvcache.Cache { return r.nodes[r.NodeFor(key)] }

// Replicas reports the effective replication factor R (clamped to the node
// count).
func (r *Ring) Replicas() int { return r.replicas }

// ReplicasFor returns the key's replica set: the indices of the first R
// *distinct* nodes met walking the ring clockwise from the key's hash
// position, preference order first. Consecutive vnodes of the same node
// collapse, so the set never contains duplicates even when one node's
// vnodes cluster. ReplicasFor(key)[0] == NodeFor(key) always.
func (r *Ring) ReplicasFor(key string) []int {
	return r.replicasAppend(key, make([]int, 0, r.replicas))
}

// replicasAppend is ReplicasFor into a caller-owned buffer (hot paths reuse
// one across a batch).
func (r *Ring) replicasAppend(key string, out []int) []int {
	return r.replicasAppendHash(hash64(key), out)
}

// replicasAppendHash is replicasAppend for callers that already hashed the
// key (the hot-aware read path hashes once for sampler and routing both).
func (r *Ring) replicasAppendHash(h uint64, out []int) []int {
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	for n := 0; n < len(r.hashes) && len(out) < r.replicas; n++ {
		cand := r.owner[(i+n)%len(r.hashes)]
		dup := false
		for _, have := range out {
			if have == cand {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, cand)
		}
	}
	return out
}

// ReplicaStats implements ReplicaStatsReporter.
func (r *Ring) ReplicaStats() ReplicaStats { return r.counters.snapshot() }

// HotKeyStats implements HotKeyStatsReporter; all-zero when hot-key
// spreading is not enabled.
func (r *Ring) HotKeyStats() HotKeyStats { return r.hot.snapshot() }

// eachReplica runs f once per replica node, concurrently when there is more
// than one — the same max-node-not-sum-of-node shape as the batch fan-out,
// so an R-way write costs the slowest replica's round trip.
func (r *Ring) eachReplica(reps []int, f func(ni int, c kvcache.Cache)) {
	if len(reps) == 1 {
		f(reps[0], r.nodes[reps[0]])
		return
	}
	var wg sync.WaitGroup
	for _, ni := range reps[1:] {
		wg.Add(1)
		go func(ni int) {
			defer wg.Done()
			f(ni, r.nodes[ni])
		}(ni)
	}
	f(reps[0], r.nodes[reps[0]])
	wg.Wait()
}

// preferredHealthy returns the position in reps of the first healthy
// replica, counting the skips; falls back to 0 when every replica's breaker
// is open (the preferred replica's pool then fails fast, degrading to a
// miss, which is the correct all-nodes-down behaviour).
func (r *Ring) preferredHealthy(reps []int) int {
	for pos, ni := range reps {
		if nodeHealthy(r.nodes[ni]) {
			if pos > 0 {
				r.counters.skipped.Add(int64(pos))
			}
			return pos
		}
	}
	r.counters.skipped.Add(int64(len(reps)))
	return 0
}

// getReplicated is the R > 1 read path: try replicas in preference order,
// skipping open-breaker nodes before dialing; a hit on a non-preferred
// replica counts as a failover read and is copied back onto the preferred
// replica (read-repair) when that one is healthy. The repair uses Add, not
// Set: if a trigger write beat the repair to the preferred replica, its
// fresher value wins. The repaired entry carries no TTL (the origin TTL is
// not recoverable from a get) — trigger invalidations still reach it, since
// deletes fan out to the whole replica set.
func (r *Ring) getReplicated(key string) ([]byte, bool) {
	var reps [maxStackReplicas]int
	set := r.replicasAppend(key, reps[:0])
	skipped := 0
	for pos, ni := range set {
		node := r.nodes[ni]
		if !nodeHealthy(node) {
			skipped++
			continue
		}
		v, ok := node.Get(key)
		if !ok {
			continue
		}
		if pos > 0 {
			r.counters.failover.Add(1)
			if pref := r.nodes[set[0]]; nodeHealthy(pref) {
				if pref.Add(key, v, 0) {
					r.counters.repairs.Add(1)
				}
			}
		}
		if skipped > 0 {
			r.counters.skipped.Add(int64(skipped))
		}
		return v, true
	}
	if skipped > 0 {
		r.counters.skipped.Add(int64(skipped))
	}
	return nil, false
}

// maxStackReplicas bounds the stack-allocated replica-set buffer; rings
// with more replicas than this spill to the heap per op, which is fine —
// nobody runs R > 8.
const maxStackReplicas = 8

// NumNodes reports ring membership size.
func (r *Ring) NumNodes() int { return len(r.nodes) }

// NodeID returns the stable identity of the node at index i.
func (r *Ring) NodeID(i int) string { return r.ids[i] }

// NodeIDs returns the stable identities in node-index order.
func (r *Ring) NodeIDs() []string { return append([]string(nil), r.ids...) }

// OwnerID returns the stable identity of the node owning key.
func (r *Ring) OwnerID(key string) string { return r.ids[r.NodeFor(key)] }

// Get implements kvcache.Cache. With replication it tries the key's
// replicas in preference order (skipping open breakers) and read-repairs
// the preferred replica after a failover hit. With hot-key spreading
// enabled every read feeds the popularity sampler, and reads for flagged
// keys rotate round-robin over the replica set instead (getSpread).
func (r *Ring) Get(key string) ([]byte, bool) {
	if hr := r.hot; hr != nil {
		h := hash64(key)
		if hr.det.Observe(h) && r.replicas > 1 {
			return r.getSpread(key, h)
		}
		if r.replicas == 1 {
			return r.pick(key).Get(key)
		}
		return r.getReplicated(key)
	}
	if r.replicas == 1 {
		return r.pick(key).Get(key)
	}
	return r.getReplicated(key)
}

// getSpread is the detected-hot read path: the replica set is walked from
// a rotating start position instead of preference order, dividing a hot
// key's read load by R. Open-breaker replicas are skipped before dialing
// just like getReplicated; a healthy replica that missed while a later one
// hit is repaired with an add-if-absent (fresher concurrent writes win),
// restoring full spread capacity and keeping the staleness window the same
// one failover read-repair already has — invalidations fan out to the
// whole replica set either way.
func (r *Ring) getSpread(key string, h uint64) ([]byte, bool) {
	hr := r.hot
	var reps [maxStackReplicas]int
	set := r.replicasAppendHash(h, reps[:0])
	n := len(set)
	start := int(hr.rr.Add(1) % uint64(n))
	skipped := 0
	missed := -1 // first healthy replica that missed, repaired on a later hit
	for i := 0; i < n; i++ {
		ni := set[(start+i)%n]
		node := r.nodes[ni]
		if !nodeHealthy(node) {
			skipped++
			continue
		}
		v, ok := node.Get(key)
		if !ok {
			if missed < 0 {
				missed = ni
			}
			continue
		}
		hr.spread.Add(1)
		if missed >= 0 && r.nodes[missed].Add(key, v, 0) {
			hr.repairs.Add(1)
		}
		if skipped > 0 {
			r.counters.skipped.Add(int64(skipped))
		}
		return v, true
	}
	if skipped > 0 {
		r.counters.skipped.Add(int64(skipped))
	}
	return nil, false
}

// Gets implements kvcache.Cache. A CAS token is only meaningful against the
// node that issued it, so Gets routes to the first *healthy* replica and
// does not fail over on a plain miss — the matching Cas picks the same node
// as long as health holds, which is what makes the gets/cas pair coherent.
// (If health flips between the two calls, the Cas lands on a node with no
// such token and reports NOT_FOUND; callers already treat that as a lost
// race and recompute.)
func (r *Ring) Gets(key string) ([]byte, uint64, bool) {
	if r.replicas == 1 {
		return r.pick(key).Gets(key)
	}
	var reps [maxStackReplicas]int
	set := r.replicasAppend(key, reps[:0])
	return r.nodes[set[r.preferredHealthy(set)]].Gets(key)
}

// Set implements kvcache.Cache; with replication it fans out to all R
// replicas in parallel.
func (r *Ring) Set(key string, value []byte, ttl time.Duration) {
	if r.replicas == 1 {
		r.pick(key).Set(key, value, ttl)
		return
	}
	var reps [maxStackReplicas]int
	r.eachReplica(r.replicasAppend(key, reps[:0]), func(_ int, c kvcache.Cache) {
		c.Set(key, value, ttl)
	})
}

// Add implements kvcache.Cache; with replication it fans out to all R
// replicas and reports the first healthy replica's outcome (replicas that
// already held the key keep their value — the divergence, if any, heals
// through reads preferring the same replica order and through the next
// fan-out write).
func (r *Ring) Add(key string, value []byte, ttl time.Duration) bool {
	if r.replicas == 1 {
		return r.pick(key).Add(key, value, ttl)
	}
	var reps [maxStackReplicas]int
	set := r.replicasAppend(key, reps[:0])
	decider := set[r.preferredHealthy(set)]
	var stored atomic.Bool
	r.eachReplica(set, func(ni int, c kvcache.Cache) {
		ok := c.Add(key, value, ttl)
		if ni == decider {
			stored.Store(ok)
		}
	})
	return stored.Load()
}

// Cas implements kvcache.Cache. The compare-and-swap itself runs against
// the first healthy replica only — the one Gets handed out the token for —
// and on success the winning value propagates to the remaining replicas as
// plain sets (their tokens are from a different sequence and cannot be
// compared against). A concurrent Cas on the same key therefore serializes
// on the preferred replica, which is what makes ring CAS linearizable per
// key while health is stable.
func (r *Ring) Cas(key string, value []byte, ttl time.Duration, cas uint64) kvcache.CasResult {
	if r.replicas == 1 {
		return r.pick(key).Cas(key, value, ttl, cas)
	}
	var reps [maxStackReplicas]int
	set := r.replicasAppend(key, reps[:0])
	pos := r.preferredHealthy(set)
	res := r.nodes[set[pos]].Cas(key, value, ttl, cas)
	if res != kvcache.CasStored {
		return res
	}
	rest := make([]int, 0, len(set)-1)
	for i, ni := range set {
		if i != pos {
			rest = append(rest, ni)
		}
	}
	if len(rest) > 0 {
		r.eachReplica(rest, func(_ int, c kvcache.Cache) {
			c.Set(key, value, ttl)
		})
	}
	return res
}

// Delete implements kvcache.Cache; with replication the delete fans out to
// every replica (trigger invalidations must not leave a stale copy behind)
// and reports whether any replica held the key.
func (r *Ring) Delete(key string) bool {
	if r.replicas == 1 {
		return r.pick(key).Delete(key)
	}
	var reps [maxStackReplicas]int
	var found atomic.Bool
	r.eachReplica(r.replicasAppend(key, reps[:0]), func(_ int, c kvcache.Cache) {
		if c.Delete(key) {
			found.Store(true)
		}
	})
	return found.Load()
}

// Incr implements kvcache.Cache; with replication the increment fans out to
// every replica and the first healthy replica's result is reported. A
// replica that lost the key (eviction, rejoined cold) misses its increment
// — the divergence window documented on the package; reads prefer the same
// replica the result came from.
func (r *Ring) Incr(key string, delta int64) (int64, bool) {
	if r.replicas == 1 {
		return r.pick(key).Incr(key, delta)
	}
	var reps [maxStackReplicas]int
	set := r.replicasAppend(key, reps[:0])
	decider := set[r.preferredHealthy(set)]
	var (
		n  atomic.Int64
		ok atomic.Bool
	)
	r.eachReplica(set, func(ni int, c kvcache.Cache) {
		v, found := c.Incr(key, delta)
		if ni == decider {
			n.Store(v)
			ok.Store(found)
		}
	})
	return n.Load(), ok.Load()
}

var _ kvcache.BatchApplier = (*Ring)(nil)

// ApplyBatch implements kvcache.BatchApplier: one logical batch fans out as
// one sub-batch per owning node, preserving the batch's relative op order
// within each node and reassembling results in input order. The sub-batches
// run concurrently, one goroutine per owning node, so a batch that spans the
// ring costs the slowest node's round trip rather than the sum of all of
// them — with remote nodes this is what keeps invalidation-bus flush latency
// flat as the ring grows.
func (r *Ring) ApplyBatch(ops []kvcache.BatchOp) []kvcache.BatchResult {
	if len(ops) == 0 {
		return nil
	}
	if r.replicas > 1 {
		return r.applyBatchReplicated(ops)
	}
	// Fast path: a batch wholly owned by one node forwards as-is.
	first := r.NodeFor(ops[0].Key)
	single := true
	for _, op := range ops[1:] {
		if r.NodeFor(op.Key) != first {
			single = false
			break
		}
	}
	if single {
		return kvcache.ApplyBatchOn(r.nodes[first], ops)
	}
	byNode := make(map[int][]int)
	for i, op := range ops {
		n := r.NodeFor(op.Key)
		byNode[n] = append(byNode[n], i)
	}
	out := make([]kvcache.BatchResult, len(ops))
	var wg sync.WaitGroup
	for n, idxs := range byNode {
		wg.Add(1)
		go func(n int, idxs []int) {
			defer wg.Done()
			sub := make([]kvcache.BatchOp, len(idxs))
			for j, i := range idxs {
				sub[j] = ops[i]
			}
			res := kvcache.ApplyBatchOn(r.nodes[n], sub)
			// idxs are disjoint across nodes, so writes into out don't race.
			for j, i := range idxs {
				out[i] = res[j]
			}
		}(n, idxs)
	}
	wg.Wait()
	return out
}

// applyBatchReplicated fans each op out to its key's whole replica set: one
// sub-batch per node carrying every op whose replica set contains that node,
// applied concurrently (max-node cost, as in the single-owner path). An op's
// relative order is preserved inside every node's sub-batch, so per-key
// ordering — the invalidation bus's contract — holds on every replica. Each
// op reports the result from the first replica that was healthy when the
// batch was routed; delete results additionally OR across replicas so
// "found" means "some replica held it", matching Ring.Delete.
func (r *Ring) applyBatchReplicated(ops []kvcache.BatchOp) []kvcache.BatchResult {
	healthyNode := make([]bool, len(r.nodes))
	for i, n := range r.nodes {
		healthyNode[i] = nodeHealthy(n)
	}
	byNode := make(map[int][]int)
	decider := make([]int, len(ops))
	var buf [maxStackReplicas]int
	for i := range ops {
		set := r.replicasAppend(ops[i].Key, buf[:0])
		decider[i] = set[0]
		chosen := false
		for _, ni := range set {
			byNode[ni] = append(byNode[ni], i)
			if !chosen && healthyNode[ni] {
				decider[i] = ni
				chosen = true
			}
		}
	}
	out := make([]kvcache.BatchResult, len(ops))
	results := make(map[int][]kvcache.BatchResult, len(byNode))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for n, idxs := range byNode {
		wg.Add(1)
		go func(n int, idxs []int) {
			defer wg.Done()
			sub := make([]kvcache.BatchOp, len(idxs))
			for j, i := range idxs {
				sub[j] = ops[i]
			}
			res := kvcache.ApplyBatchOn(r.nodes[n], sub)
			mu.Lock()
			results[n] = res
			mu.Unlock()
		}(n, idxs)
	}
	wg.Wait()
	for n, idxs := range byNode {
		res := results[n]
		for j, i := range idxs {
			if decider[i] == n {
				found := out[i].Found // a delete may already have OR-ed in
				out[i] = res[j]
				if ops[i].Kind == kvcache.BatchDelete {
					out[i].Found = out[i].Found || found
				}
			} else if ops[i].Kind == kvcache.BatchDelete && res[j].Found {
				out[i].Found = true
			}
		}
	}
	return out
}

// FlushAll implements kvcache.Cache; it flushes every node, concurrently for
// the same reason ApplyBatch fans out: max-node rather than sum-of-node cost.
func (r *Ring) FlushAll() {
	var wg sync.WaitGroup
	for _, n := range r.nodes {
		wg.Add(1)
		go func(n kvcache.Cache) {
			defer wg.Done()
			n.FlushAll()
		}(n)
	}
	wg.Wait()
}
