package cluster

import (
	"fmt"
	"testing"

	"cachegenie/internal/kvcache"
)

func newTestRing(t *testing.T, n int) (*Ring, []*kvcache.Store) {
	t.Helper()
	stores := make([]*kvcache.Store, n)
	nodes := make([]kvcache.Cache, n)
	for i := range stores {
		stores[i] = kvcache.New(0)
		nodes[i] = stores[i]
	}
	r, err := NewRing(nodes)
	if err != nil {
		t.Fatal(err)
	}
	return r, stores
}

func TestRingRequiresNodes(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Fatal("empty ring accepted")
	}
}

func TestRingRoundTrip(t *testing.T) {
	r, _ := newTestRing(t, 3)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		r.Set(k, []byte(fmt.Sprintf("v%d", i)), 0)
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		v, ok := r.Get(k)
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) = %q, %v", k, v, ok)
		}
	}
}

func TestRingStableAssignment(t *testing.T) {
	r, _ := newTestRing(t, 4)
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("key-%d", i)
		if r.NodeFor(k) != r.NodeFor(k) {
			t.Fatal("assignment not deterministic")
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	r, stores := newTestRing(t, 4)
	const keys = 2000
	for i := 0; i < keys; i++ {
		r.Set(fmt.Sprintf("key-%d", i), []byte("v"), 0)
	}
	total := 0
	for i, s := range stores {
		n := s.Len()
		total += n
		// With 128 vnodes, each of 4 nodes should hold 10%..45% of keys.
		if n < keys/10 || n > keys*45/100 {
			t.Errorf("node %d holds %d/%d keys — poor balance", i, n, keys)
		}
	}
	if total != keys {
		t.Fatalf("total %d, want %d (duplicate or lost keys)", total, keys)
	}
}

func TestRingSingleLogicalCacheNoDuplicates(t *testing.T) {
	// The same key always lands on the same node, so the effective capacity
	// is the sum of nodes (unlike per-server caches; paper §2 SI-cache
	// contrast).
	r, stores := newTestRing(t, 3)
	for rep := 0; rep < 10; rep++ {
		r.Set("hot-key", []byte("v"), 0)
	}
	holders := 0
	for _, s := range stores {
		if _, ok := s.Get("hot-key"); ok {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("key present on %d nodes, want exactly 1", holders)
	}
}

func TestRingCasThroughRing(t *testing.T) {
	r, _ := newTestRing(t, 3)
	r.Set("k", []byte("v1"), 0)
	v, tok, ok := r.Gets("k")
	if !ok || string(v) != "v1" {
		t.Fatal("Gets through ring failed")
	}
	if res := r.Cas("k", []byte("v2"), 0, tok); res != kvcache.CasStored {
		t.Fatalf("Cas = %v", res)
	}
}

func TestRingIncrDeleteFlush(t *testing.T) {
	r, stores := newTestRing(t, 2)
	r.Set("n", []byte("5"), 0)
	if v, ok := r.Incr("n", 3); !ok || v != 8 {
		t.Fatalf("Incr = %d, %v", v, ok)
	}
	if !r.Delete("n") {
		t.Fatal("Delete = false")
	}
	r.Set("a", []byte("1"), 0)
	r.Set("b", []byte("2"), 0)
	r.FlushAll()
	for i, s := range stores {
		if s.Len() != 0 {
			t.Fatalf("node %d not flushed", i)
		}
	}
}

func TestRingApplyBatchRoutesToOwners(t *testing.T) {
	r, stores := newTestRing(t, 3)
	var ops []kvcache.BatchOp
	for i := 0; i < 60; i++ {
		ops = append(ops, kvcache.BatchOp{
			Kind: kvcache.BatchSet, Key: fmt.Sprintf("key-%d", i), Value: []byte(fmt.Sprintf("v%d", i)),
		})
	}
	res := r.ApplyBatch(ops)
	if len(res) != len(ops) {
		t.Fatalf("results = %d, want %d", len(res), len(ops))
	}
	// Every key landed on exactly the node the ring routes it to.
	for i := 0; i < 60; i++ {
		k := fmt.Sprintf("key-%d", i)
		owner := r.NodeFor(k)
		for ni, s := range stores {
			_, ok := s.GetQuiet(k)
			if ok != (ni == owner) {
				t.Fatalf("%s: present on node %d (owner %d)", k, ni, owner)
			}
		}
	}
	spread := 0
	for _, s := range stores {
		if s.Len() > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("batch landed on %d nodes, want a spread", spread)
	}
	// Mixed batch: results come back in input order with per-op outcomes.
	mixed := []kvcache.BatchOp{
		{Kind: kvcache.BatchDelete, Key: "key-0"},
		{Kind: kvcache.BatchDelete, Key: "never-existed"},
		{Kind: kvcache.BatchSet, Key: "key-0", Value: []byte("back")},
	}
	mres := r.ApplyBatch(mixed)
	if !mres[0].Found || mres[1].Found || !mres[2].Found {
		t.Fatalf("mixed results = %+v", mres)
	}
	if v, ok := r.Get("key-0"); !ok || string(v) != "back" {
		t.Fatalf("key-0 = %q/%v", v, ok)
	}
}
