package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"cachegenie/internal/latency"
)

func newTestDisk() *Disk {
	return NewDiskModel(latency.Model{}, latency.RealSleeper{}, 1)
}

func TestDiskReadWrite(t *testing.T) {
	d := newTestDisk()
	id := d.Allocate()
	buf := make([]byte, PageSize)
	copy(buf, []byte("hello pages"))
	if err := d.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := d.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, got) {
		t.Fatal("read back different bytes")
	}
	if err := d.Read(PageID(999), got); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("Read(999) err = %v, want ErrPageNotFound", err)
	}
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.Allocs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDiskChargesLatency(t *testing.T) {
	cs := &latency.CountingSleeper{}
	d := NewDiskModel(latency.Model{DiskAccess: time.Millisecond}, cs, 2)
	id := d.Allocate()
	buf := make([]byte, PageSize)
	_ = d.Write(id, buf)
	_ = d.Read(id, buf)
	if got := cs.Total(); got != 2*time.Millisecond {
		t.Fatalf("charged %v, want 2ms", got)
	}
}

func TestBufferPoolHitMiss(t *testing.T) {
	d := newTestDisk()
	bp := NewBufferPool(d, 2)
	a, b, c := d.Allocate(), d.Allocate(), d.Allocate()

	p, err := bp.Pin(a)
	if err != nil {
		t.Fatal(err)
	}
	p[100] = 42
	bp.Unpin(a, true)

	if _, err := bp.Pin(a); err != nil { // hit
		t.Fatal(err)
	}
	bp.Unpin(a, false)

	if _, err := bp.Pin(b); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(b, false)
	if _, err := bp.Pin(c); err != nil { // evicts a (LRU), which is dirty
		t.Fatal(err)
	}
	bp.Unpin(c, false)

	st := bp.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Evictions != 1 || st.Flushes != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// Page a must have been written back: re-pin and check the byte.
	p, err = bp.Pin(a)
	if err != nil {
		t.Fatal(err)
	}
	if p[100] != 42 {
		t.Fatal("dirty page lost on eviction")
	}
	bp.Unpin(a, false)
}

func TestBufferPoolAllPinned(t *testing.T) {
	d := newTestDisk()
	bp := NewBufferPool(d, 1)
	a, b := d.Allocate(), d.Allocate()
	if _, err := bp.Pin(a); err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Pin(b); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("err = %v, want ErrPoolFull", err)
	}
	bp.Unpin(a, false)
	if _, err := bp.Pin(b); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(b, false)
}

func TestBufferPoolResize(t *testing.T) {
	d := newTestDisk()
	bp := NewBufferPool(d, 4)
	for i := 0; i < 4; i++ {
		id := d.Allocate()
		if _, err := bp.Pin(id); err != nil {
			t.Fatal(err)
		}
		bp.Unpin(id, false)
	}
	if bp.Resident() != 4 {
		t.Fatalf("resident = %d", bp.Resident())
	}
	if err := bp.Resize(2); err != nil {
		t.Fatal(err)
	}
	if bp.Resident() != 2 {
		t.Fatalf("after resize resident = %d", bp.Resident())
	}
}

func TestBufferPoolConcurrentSamePage(t *testing.T) {
	d := newTestDisk()
	id := d.Allocate()
	buf := make([]byte, PageSize)
	buf[0] = 7
	if err := d.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	bp := NewBufferPool(d, 8)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := bp.Pin(id)
			if err != nil {
				t.Error(err)
				return
			}
			if p[0] != 7 {
				t.Errorf("read %d, want 7", p[0])
			}
			bp.Unpin(id, false)
		}()
	}
	wg.Wait()
}

func newTestHeap() *HeapFile {
	d := newTestDisk()
	return NewHeapFile(d, NewBufferPool(d, 64))
}

func TestHeapInsertGet(t *testing.T) {
	h := newTestHeap()
	rid, err := h.Insert([]byte("record one"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "record one" {
		t.Fatalf("got %q", got)
	}
}

func TestHeapDelete(t *testing.T) {
	h := newTestHeap()
	rid, _ := h.Insert([]byte("doomed"))
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rid); !errors.Is(err, ErrRecordNotFound) {
		t.Fatalf("Get after delete err = %v", err)
	}
	if err := h.Delete(rid); !errors.Is(err, ErrRecordNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestHeapUpdateInPlaceAndMove(t *testing.T) {
	h := newTestHeap()
	rid, _ := h.Insert(bytes.Repeat([]byte("a"), 100))
	// Shrinking update stays put.
	nrid, err := h.Update(rid, []byte("tiny"))
	if err != nil {
		t.Fatal(err)
	}
	if nrid != rid {
		t.Fatalf("shrinking update moved record: %v -> %v", rid, nrid)
	}
	got, _ := h.Get(nrid)
	if string(got) != "tiny" {
		t.Fatalf("got %q", got)
	}
	// Growing update still fits on the page.
	nrid2, err := h.Update(nrid, bytes.Repeat([]byte("b"), 500))
	if err != nil {
		t.Fatal(err)
	}
	got, _ = h.Get(nrid2)
	if len(got) != 500 || got[0] != 'b' {
		t.Fatalf("grown record wrong: len=%d", len(got))
	}
}

func TestHeapRecordTooLarge(t *testing.T) {
	h := newTestHeap()
	if _, err := h.Insert(make([]byte, MaxRecordSize+1)); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestHeapPageOverflowAllocatesNewPage(t *testing.T) {
	h := newTestHeap()
	rec := bytes.Repeat([]byte("x"), 3000)
	for i := 0; i < 10; i++ {
		if _, err := h.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumPages() < 4 {
		t.Fatalf("expected several pages, got %d", h.NumPages())
	}
	// All ten records must be scannable.
	n := 0
	if err := h.Scan(func(rid RecordID, data []byte) bool {
		if len(data) != 3000 {
			t.Errorf("scan got %d-byte record", len(data))
		}
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("scanned %d records, want 10", n)
	}
}

func TestHeapSlotReuseAfterDelete(t *testing.T) {
	h := newTestHeap()
	rid1, _ := h.Insert([]byte("first"))
	_ = h.Delete(rid1)
	rid2, _ := h.Insert([]byte("second"))
	if rid2.Page != rid1.Page || rid2.Slot != rid1.Slot {
		t.Fatalf("tombstoned slot not reused: %v vs %v", rid1, rid2)
	}
}

func TestHeapCompaction(t *testing.T) {
	h := newTestHeap()
	// Fill a page with ~26 records of ~300 bytes, delete every other one,
	// then insert a record that only fits after compaction.
	var rids []RecordID
	rec := bytes.Repeat([]byte("z"), 300)
	for i := 0; i < 26; i++ {
		rid, err := h.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if h.NumPages() != 1 {
		t.Fatalf("setup expected 1 page, got %d", h.NumPages())
	}
	for i := 0; i < len(rids); i += 2 {
		if err := h.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	big := bytes.Repeat([]byte("B"), 2000)
	rid, err := h.Insert(big)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumPages() != 1 {
		t.Fatalf("compaction should have made room on page 0; pages = %d", h.NumPages())
	}
	got, _ := h.Get(rid)
	if !bytes.Equal(got, big) {
		t.Fatal("record corrupted by compaction")
	}
	// Survivors must be intact too.
	for i := 1; i < len(rids); i += 2 {
		got, err := h.Get(rids[i])
		if err != nil || !bytes.Equal(got, rec) {
			t.Fatalf("survivor %d corrupted: %v", i, err)
		}
	}
}

// TestHeapRandomOps drives the heap against a reference map.
func TestHeapRandomOps(t *testing.T) {
	h := newTestHeap()
	rng := rand.New(rand.NewSource(11))
	ref := map[RecordID][]byte{}
	var ids []RecordID
	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // insert
			rec := make([]byte, 1+rng.Intn(400))
			rng.Read(rec)
			rid, err := h.Insert(rec)
			if err != nil {
				t.Fatal(err)
			}
			if _, dup := ref[rid]; dup {
				t.Fatalf("step %d: duplicate live rid %v", step, rid)
			}
			ref[rid] = rec
			ids = append(ids, rid)
		case op < 8 && len(ids) > 0: // update
			i := rng.Intn(len(ids))
			rid := ids[i]
			if _, ok := ref[rid]; !ok {
				continue
			}
			rec := make([]byte, 1+rng.Intn(600))
			rng.Read(rec)
			nrid, err := h.Update(rid, rec)
			if err != nil {
				t.Fatal(err)
			}
			delete(ref, rid)
			if _, dup := ref[nrid]; dup {
				t.Fatalf("step %d: update moved onto live rid %v", step, nrid)
			}
			ref[nrid] = rec
			ids[i] = nrid
		case len(ids) > 0: // delete
			i := rng.Intn(len(ids))
			rid := ids[i]
			if _, ok := ref[rid]; !ok {
				continue
			}
			if err := h.Delete(rid); err != nil {
				t.Fatal(err)
			}
			delete(ref, rid)
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
		}
	}
	// Verify every live record via Get and via Scan.
	for rid, want := range ref {
		got, err := h.Get(rid)
		if err != nil {
			t.Fatalf("Get(%v): %v", rid, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Get(%v) wrong bytes", rid)
		}
	}
	seen := 0
	_ = h.Scan(func(rid RecordID, data []byte) bool {
		want, ok := ref[rid]
		if !ok {
			t.Fatalf("Scan found unknown rid %v", rid)
		}
		if !bytes.Equal(data, want) {
			t.Fatalf("Scan(%v) wrong bytes", rid)
		}
		seen++
		return true
	})
	if seen != len(ref) {
		t.Fatalf("Scan saw %d records, want %d", seen, len(ref))
	}
}

// Property: inserting any batch of records and reading them back returns the
// same bytes, regardless of sizes.
func TestQuickHeapRoundTrip(t *testing.T) {
	f := func(sizes []uint16) bool {
		h := newTestHeap()
		type pair struct {
			rid RecordID
			rec []byte
		}
		var pairs []pair
		for i, s := range sizes {
			n := int(s) % MaxRecordSize
			rec := bytes.Repeat([]byte{byte(i)}, n)
			rid, err := h.Insert(rec)
			if err != nil {
				return false
			}
			pairs = append(pairs, pair{rid, rec})
		}
		for _, p := range pairs {
			got, err := h.Get(p.rid)
			if err != nil || !bytes.Equal(got, p.rec) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolMissLatencyContention(t *testing.T) {
	// With a width-1 disk and 4 concurrent readers of distinct cold pages,
	// total charged time is still 4 x access latency (queueing), proving the
	// disk models a contended device.
	cs := &latency.CountingSleeper{}
	d := NewDiskModel(latency.Model{DiskAccess: time.Millisecond}, cs, 1)
	bp := NewBufferPool(d, 8)
	ids := []PageID{d.Allocate(), d.Allocate(), d.Allocate(), d.Allocate()}
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id PageID) {
			defer wg.Done()
			if _, err := bp.Pin(id); err != nil {
				t.Error(err)
				return
			}
			bp.Unpin(id, false)
		}(id)
	}
	wg.Wait()
	if cs.Calls() != 4 {
		t.Fatalf("disk charged %d times, want 4", cs.Calls())
	}
}

func BenchmarkHeapInsert(b *testing.B) {
	h := newTestHeap()
	rec := bytes.Repeat([]byte("r"), 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Insert(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeapGet(b *testing.B) {
	h := newTestHeap()
	rec := bytes.Repeat([]byte("r"), 128)
	var rids []RecordID
	for i := 0; i < 1000; i++ {
		rid, _ := h.Insert(rec)
		rids = append(rids, rid)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Get(rids[i%len(rids)]); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = fmt.Sprintf // keep fmt imported for debugging helpers
