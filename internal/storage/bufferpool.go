package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// ErrPoolFull is returned when every frame in the pool is pinned and a new
// page must be brought in.
var ErrPoolFull = errors.New("storage: buffer pool full (all frames pinned)")

// PoolStats are cumulative counters for a BufferPool.
type PoolStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Flushes   int64
}

// frame is one buffer-pool slot.
type frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
	lru   *list.Element // position in the LRU list when unpinned
	ready chan struct{} // closed once the disk read has populated data
	err   error         // read error, valid after ready is closed
}

// BufferPool caches disk pages in a fixed number of frames with LRU
// replacement. Pages pinned by callers are never evicted. The pool is safe
// for concurrent use.
//
// The pool's capacity is the knob the experiment harness turns for the
// "memcached colocated with the database" variant of Experiment 4: giving
// memory to the cache shrinks the DB's pool and raises its miss rate.
type BufferPool struct {
	mu       sync.Mutex
	disk     *Disk
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // of PageID, front = most recent
	stats    PoolStats
}

// NewBufferPool creates a pool with room for capacity pages (minimum 1) on
// top of disk.
func NewBufferPool(disk *Disk, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		frames:   make(map[PageID]*frame, capacity),
		lru:      list.New(),
	}
}

// Capacity returns the pool's frame count.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Resize changes the pool capacity, evicting unpinned pages if it shrinks.
func (bp *BufferPool) Resize(capacity int) error {
	if capacity < 1 {
		capacity = 1
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.capacity = capacity
	for len(bp.frames) > bp.capacity {
		if err := bp.evictLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Pin fetches page id into the pool, pins it, and returns its data buffer.
// The caller must Unpin it exactly once. The buffer may only be accessed
// between Pin and Unpin.
func (bp *BufferPool) Pin(id PageID) ([]byte, error) {
	bp.mu.Lock()
	if f, ok := bp.frames[id]; ok {
		f.pins++
		if f.lru != nil {
			bp.lru.Remove(f.lru)
			f.lru = nil
		}
		bp.stats.Hits++
		bp.mu.Unlock()
		// Another goroutine may still be filling this frame from disk.
		<-f.ready
		if f.err != nil {
			bp.Unpin(id, false)
			return nil, f.err
		}
		return f.data, nil
	}
	bp.stats.Misses++
	for len(bp.frames) >= bp.capacity {
		if err := bp.evictLocked(); err != nil {
			bp.mu.Unlock()
			return nil, err
		}
	}
	f := &frame{id: id, data: make([]byte, PageSize), pins: 1, ready: make(chan struct{})}
	bp.frames[id] = f
	// Release the pool lock during the (slow, simulated) disk read so other
	// goroutines aren't serialized behind it; the frame is already pinned so
	// it cannot be evicted, and late arrivals block on f.ready.
	bp.mu.Unlock()
	f.err = bp.disk.Read(id, f.data)
	close(f.ready)
	if f.err != nil {
		bp.Unpin(id, false)
		return nil, f.err
	}
	return f.data, nil
}

// Unpin releases one pin on page id. If dirty, the page is marked for
// write-back on eviction or flush.
func (bp *BufferPool) Unpin(id PageID, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok || f.pins == 0 {
		panic(fmt.Sprintf("storage: Unpin of unpinned page %d", id))
	}
	f.dirty = f.dirty || dirty
	f.pins--
	if f.pins == 0 {
		f.lru = bp.lru.PushFront(f.id)
	}
}

// evictLocked removes the least-recently-used unpinned page, writing it back
// if dirty. Caller holds bp.mu.
func (bp *BufferPool) evictLocked() error {
	el := bp.lru.Back()
	if el == nil {
		return ErrPoolFull
	}
	id := el.Value.(PageID)
	f := bp.frames[id]
	bp.lru.Remove(el)
	delete(bp.frames, id)
	bp.stats.Evictions++
	if f.dirty {
		bp.stats.Flushes++
		// The write-back must complete before anyone can re-Pin this page
		// (they would read stale bytes from disk), so it happens under the
		// pool lock. Eviction is rare when the hot set fits in the pool.
		if err := bp.disk.Write(id, f.data); err != nil {
			return err
		}
	}
	return nil
}

// FlushAll writes every dirty resident page back to disk.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	var dirty []*frame
	for _, f := range bp.frames {
		if f.dirty {
			dirty = append(dirty, f)
			f.dirty = false
		}
	}
	bp.mu.Unlock()
	for _, f := range dirty {
		if err := bp.disk.Write(f.id, f.data); err != nil {
			return err
		}
		bp.mu.Lock()
		bp.stats.Flushes++
		bp.mu.Unlock()
	}
	return nil
}

// Stats returns a snapshot of the pool counters.
func (bp *BufferPool) Stats() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the counters (used between experiment phases).
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = PoolStats{}
}

// Resident reports how many pages are currently in the pool.
func (bp *BufferPool) Resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}
