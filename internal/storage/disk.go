// Package storage implements the database engine's storage substrate: a
// simulated disk, a pinning LRU buffer pool, and slotted-page heap files.
//
// The paper's evaluation depends on the database being disk-bound under the
// cached configurations and CPU-bound under NoCache (§5.4). The Disk type
// reproduces the disk side of that behaviour: every page access that misses
// the buffer pool is charged a configurable latency and must pass through a
// bounded queue, so concurrent writers contend for "spindles" exactly the
// way the paper's Postgres box contends for its single disk.
package storage

import (
	"errors"
	"fmt"
	"sync"

	"cachegenie/internal/latency"
)

// PageSize is the size of every page in bytes.
const PageSize = 8192

// PageID identifies a page on disk. IDs are dense per Disk.
type PageID int64

// InvalidPage is a sentinel for "no page".
const InvalidPage PageID = -1

// ErrPageNotFound is returned when reading a page that was never allocated.
var ErrPageNotFound = errors.New("storage: page not found")

// DiskStats are cumulative counters for a Disk.
type DiskStats struct {
	Reads  int64
	Writes int64
	Allocs int64
}

// Disk is a simulated block device. Page contents live in memory, but every
// read and write is charged the latency model's DiskAccess cost and must
// acquire one of a bounded number of queue slots, modelling a device that
// serves a limited number of concurrent requests.
type Disk struct {
	mu      sync.Mutex
	pages   map[PageID][]byte
	nextID  PageID
	stats   DiskStats
	queue   chan struct{}
	perOp   func()
	sleeper latency.Sleeper
}

// NewDiskModel creates a disk charging model.DiskAccess per access through
// sleeper, with at most width concurrent requests (width < 1 is treated
// as 1).
func NewDiskModel(model latency.Model, sleeper latency.Sleeper, width int) *Disk {
	if width < 1 {
		width = 1
	}
	if sleeper == nil {
		sleeper = latency.RealSleeper{}
	}
	d := &Disk{
		pages:   make(map[PageID][]byte),
		queue:   make(chan struct{}, width),
		sleeper: sleeper,
	}
	d.perOp = func() {
		if model.DiskAccess > 0 {
			d.queue <- struct{}{}
			sleeper.Sleep(model.DiskAccess)
			<-d.queue
		}
	}
	return d
}

// Allocate reserves a fresh zeroed page and returns its ID. Allocation does
// not touch the simulated device (the page is born in memory, like extending
// a file in the OS page cache).
func (d *Disk) Allocate() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextID
	d.nextID++
	d.pages[id] = make([]byte, PageSize)
	d.stats.Allocs++
	return id
}

// Read copies page id into buf (which must be PageSize long), charging one
// disk access.
func (d *Disk) Read(id PageID, buf []byte) error {
	d.perOp()
	d.mu.Lock()
	src, ok := d.pages[id]
	if ok {
		copy(buf, src)
		d.stats.Reads++
	}
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	return nil
}

// Write stores buf as the contents of page id, charging one disk access.
func (d *Disk) Write(id PageID, buf []byte) error {
	d.perOp()
	d.mu.Lock()
	dst, ok := d.pages[id]
	if ok {
		copy(dst, buf)
		d.stats.Writes++
	}
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	return nil
}

// Stats returns a snapshot of the disk counters.
func (d *Disk) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// NumPages reports how many pages have been allocated.
func (d *Disk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages)
}
