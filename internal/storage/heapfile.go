package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Slotted-page layout:
//
//	offset 0: uint16 numSlots
//	offset 2: uint16 freeHigh   (start of the record data region)
//	offset 4: slot directory, 4 bytes per slot: uint16 recOff, uint16 recLen
//
// Record data is packed downward from the end of the page; the slot
// directory grows upward. recOff == 0 marks a deleted slot (live records can
// never start at offset 0, the header lives there).
const (
	pageHeaderSize = 4
	slotSize       = 4
)

// MaxRecordSize is the largest record a heap file accepts.
const MaxRecordSize = PageSize - pageHeaderSize - slotSize

// ErrRecordTooLarge is returned for records exceeding MaxRecordSize.
var ErrRecordTooLarge = errors.New("storage: record too large")

// ErrRecordNotFound is returned when a RecordID does not name a live record.
var ErrRecordNotFound = errors.New("storage: record not found")

// RecordID names a record in a heap file. IDs are NOT stable across Update;
// callers (the sqldb table) keep their own rowid -> RecordID mapping.
type RecordID struct {
	Page PageID
	Slot uint16
}

// String implements fmt.Stringer.
func (r RecordID) String() string { return fmt.Sprintf("%d.%d", r.Page, r.Slot) }

// HeapFile stores variable-length records in slotted pages backed by a
// buffer pool. Concurrent readers (Get/Scan) are safe with each other;
// mutations (Insert/Update/Delete) require external exclusion against all
// other operations — the sqldb engine provides it with table-level locks.
type HeapFile struct {
	mu    sync.Mutex
	disk  *Disk
	pool  *BufferPool
	pages []PageID
	// free tracks contiguous free bytes per page index so Insert can pick a
	// page without pinning every page.
	free []int
}

// NewHeapFile creates an empty heap file on disk/pool.
func NewHeapFile(disk *Disk, pool *BufferPool) *HeapFile {
	return &HeapFile{disk: disk, pool: pool}
}

func pageNumSlots(p []byte) uint16 { return binary.LittleEndian.Uint16(p[0:2]) }
func pageFreeHigh(p []byte) uint16 { return binary.LittleEndian.Uint16(p[2:4]) }
func setPageNumSlots(p []byte, n uint16) {
	binary.LittleEndian.PutUint16(p[0:2], n)
}
func setPageFreeHigh(p []byte, v uint16) {
	binary.LittleEndian.PutUint16(p[2:4], v)
}
func slotAt(p []byte, i uint16) (off, length uint16) {
	base := pageHeaderSize + int(i)*slotSize
	return binary.LittleEndian.Uint16(p[base : base+2]), binary.LittleEndian.Uint16(p[base+2 : base+4])
}
func setSlotAt(p []byte, i uint16, off, length uint16) {
	base := pageHeaderSize + int(i)*slotSize
	binary.LittleEndian.PutUint16(p[base:base+2], off)
	binary.LittleEndian.PutUint16(p[base+2:base+4], length)
}

// contiguousFree returns the free bytes between the slot directory and the
// record data region, assuming one more slot entry will be needed.
func contiguousFree(p []byte) int {
	n := int(pageNumSlots(p))
	freeLow := pageHeaderSize + n*slotSize
	freeHigh := int(pageFreeHigh(p))
	if freeHigh == 0 {
		freeHigh = PageSize
	}
	return freeHigh - freeLow
}

// totalFree returns the reclaimable free bytes on the page: the contiguous
// region plus holes left by deletes and updates, which compaction can
// recover.
func totalFree(p []byte) int {
	n := int(pageNumSlots(p))
	freeLow := pageHeaderSize + n*slotSize
	live := 0
	for i := uint16(0); i < uint16(n); i++ {
		if off, length := slotAt(p, i); off != 0 {
			live += int(length)
		}
	}
	return PageSize - freeLow - live
}

// Insert appends rec and returns its RecordID.
func (h *HeapFile) Insert(rec []byte) (RecordID, error) {
	if len(rec) > MaxRecordSize {
		return RecordID{}, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(rec))
	}
	need := len(rec) + slotSize
	var (
		p       []byte
		pid     PageID
		pageIdx int
	)
	for {
		h.mu.Lock()
		pageIdx = -1
		for i := len(h.free) - 1; i >= 0; i-- {
			if h.free[i] >= need {
				pageIdx = i
				break
			}
		}
		if pageIdx == -1 {
			id := h.disk.Allocate()
			h.pages = append(h.pages, id)
			h.free = append(h.free, PageSize-pageHeaderSize)
			pageIdx = len(h.pages) - 1
		}
		pid = h.pages[pageIdx]
		h.mu.Unlock()

		var err error
		p, err = h.pool.Pin(pid)
		if err != nil {
			return RecordID{}, err
		}
		if contiguousFree(p) < need {
			compactPage(p)
		}
		if contiguousFree(p) >= need {
			break
		}
		// The free estimate was stale (a concurrent insert won the space);
		// fix it and pick another page.
		h.mu.Lock()
		h.free[pageIdx] = totalFree(p)
		h.mu.Unlock()
		h.pool.Unpin(pid, true) // compaction may have dirtied the page
	}
	defer h.pool.Unpin(pid, true)

	numSlots := pageNumSlots(p)
	freeHigh := pageFreeHigh(p)
	if freeHigh == 0 {
		freeHigh = PageSize
	}
	// Reuse a tombstoned slot if one exists, else append a new one.
	slot := numSlots
	for i := uint16(0); i < numSlots; i++ {
		if off, _ := slotAt(p, i); off == 0 {
			slot = i
			break
		}
	}
	newHigh := freeHigh - uint16(len(rec))
	copy(p[newHigh:freeHigh], rec)
	setPageFreeHigh(p, newHigh)
	setSlotAt(p, slot, newHigh, uint16(len(rec)))
	if slot == numSlots {
		setPageNumSlots(p, numSlots+1)
	}

	h.mu.Lock()
	h.free[pageIdx] = totalFree(p)
	h.mu.Unlock()
	return RecordID{Page: pid, Slot: slot}, nil
}

// compactPage repacks live records to the end of the page, reclaiming holes
// left by deletes and in-place updates.
func compactPage(p []byte) {
	n := pageNumSlots(p)
	type live struct {
		slot uint16
		data []byte
	}
	var recs []live
	for i := uint16(0); i < n; i++ {
		off, length := slotAt(p, i)
		if off == 0 {
			continue
		}
		data := make([]byte, length)
		copy(data, p[off:off+length])
		recs = append(recs, live{slot: i, data: data})
	}
	high := uint16(PageSize)
	for _, r := range recs {
		high -= uint16(len(r.data))
		copy(p[high:], r.data)
		setSlotAt(p, r.slot, high, uint16(len(r.data)))
	}
	setPageFreeHigh(p, high)
}

// Get returns a copy of the record named by rid.
func (h *HeapFile) Get(rid RecordID) ([]byte, error) {
	p, err := h.pool.Pin(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.pool.Unpin(rid.Page, false)
	if rid.Slot >= pageNumSlots(p) {
		return nil, fmt.Errorf("%w: %s", ErrRecordNotFound, rid)
	}
	off, length := slotAt(p, rid.Slot)
	if off == 0 {
		return nil, fmt.Errorf("%w: %s", ErrRecordNotFound, rid)
	}
	out := make([]byte, length)
	copy(out, p[off:off+length])
	return out, nil
}

// Delete tombstones the record named by rid.
func (h *HeapFile) Delete(rid RecordID) error {
	p, err := h.pool.Pin(rid.Page)
	if err != nil {
		return err
	}
	defer h.pool.Unpin(rid.Page, true)
	if rid.Slot >= pageNumSlots(p) {
		return fmt.Errorf("%w: %s", ErrRecordNotFound, rid)
	}
	off, _ := slotAt(p, rid.Slot)
	if off == 0 {
		return fmt.Errorf("%w: %s", ErrRecordNotFound, rid)
	}
	setSlotAt(p, rid.Slot, 0, 0)
	h.noteFree(rid.Page, p)
	return nil
}

// Update replaces the record named by rid with rec, returning the record's
// possibly-new ID (records that no longer fit on their page move).
func (h *HeapFile) Update(rid RecordID, rec []byte) (RecordID, error) {
	if len(rec) > MaxRecordSize {
		return RecordID{}, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(rec))
	}
	p, err := h.pool.Pin(rid.Page)
	if err != nil {
		return RecordID{}, err
	}
	if rid.Slot >= pageNumSlots(p) {
		h.pool.Unpin(rid.Page, false)
		return RecordID{}, fmt.Errorf("%w: %s", ErrRecordNotFound, rid)
	}
	off, length := slotAt(p, rid.Slot)
	if off == 0 {
		h.pool.Unpin(rid.Page, false)
		return RecordID{}, fmt.Errorf("%w: %s", ErrRecordNotFound, rid)
	}
	if len(rec) <= int(length) {
		// Shrinking or same-size update fits in place.
		copy(p[off:], rec)
		setSlotAt(p, rid.Slot, off, uint16(len(rec)))
		h.noteFree(rid.Page, p)
		h.pool.Unpin(rid.Page, true)
		return rid, nil
	}
	if contiguousFree(p) < len(rec) && totalFree(p) >= len(rec) {
		compactPage(p)
		// Compaction moved our record; re-read its offset.
		off, _ = slotAt(p, rid.Slot)
	}
	if contiguousFree(p) >= len(rec) {
		freeHigh := pageFreeHigh(p)
		newHigh := freeHigh - uint16(len(rec))
		copy(p[newHigh:freeHigh], rec)
		setPageFreeHigh(p, newHigh)
		setSlotAt(p, rid.Slot, newHigh, uint16(len(rec)))
		h.noteFree(rid.Page, p)
		h.pool.Unpin(rid.Page, true)
		return rid, nil
	}
	// Does not fit on this page: delete here, insert elsewhere.
	setSlotAt(p, rid.Slot, 0, 0)
	h.noteFree(rid.Page, p)
	h.pool.Unpin(rid.Page, true)
	return h.Insert(rec)
}

// noteFree refreshes the free-space estimate for page pid. Caller has the
// page pinned.
func (h *HeapFile) noteFree(pid PageID, p []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, id := range h.pages {
		if id == pid {
			h.free[i] = totalFree(p)
			return
		}
	}
}

// Scan calls fn for every live record, in page order, until fn returns
// false. The data slice passed to fn is a copy the callee may keep.
func (h *HeapFile) Scan(fn func(rid RecordID, data []byte) bool) error {
	h.mu.Lock()
	pages := append([]PageID(nil), h.pages...)
	h.mu.Unlock()
	for _, pid := range pages {
		p, err := h.pool.Pin(pid)
		if err != nil {
			return err
		}
		n := pageNumSlots(p)
		type rec struct {
			rid  RecordID
			data []byte
		}
		var recs []rec
		for i := uint16(0); i < n; i++ {
			off, length := slotAt(p, i)
			if off == 0 {
				continue
			}
			data := make([]byte, length)
			copy(data, p[off:off+length])
			recs = append(recs, rec{RecordID{Page: pid, Slot: i}, data})
		}
		h.pool.Unpin(pid, false)
		for _, r := range recs {
			if !fn(r.rid, r.data) {
				return nil
			}
		}
	}
	return nil
}

// NumPages reports how many pages the heap file spans.
func (h *HeapFile) NumPages() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.pages)
}
