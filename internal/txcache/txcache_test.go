package txcache

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"cachegenie/internal/kvcache"
)

func newStore(timeout time.Duration) *Store {
	return New(kvcache.New(0), timeout)
}

func TestBasicReadWriteCommit(t *testing.T) {
	s := newStore(0)
	tx := s.Begin()
	if err := tx.Set("k", []byte("v1"), 0); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tx.Get("k")
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := s.Begin()
	v, ok, err = tx2.Get("k")
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get after commit = %q %v %v", v, ok, err)
	}
	_ = tx2.Commit()
}

func TestWriterBlocksReader(t *testing.T) {
	s := newStore(time.Second)
	w := s.Begin()
	if err := w.Set("k", []byte("dirty"), 0); err != nil {
		t.Fatal(err)
	}
	readerDone := make(chan error, 1)
	go func() {
		r := s.Begin()
		_, _, err := r.Get("k")
		if err == nil {
			_ = r.Commit()
		}
		readerDone <- err
	}()
	select {
	case err := <-readerDone:
		t.Fatalf("reader finished while writer uncommitted: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-readerDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("reader did not resume after commit")
	}
}

func TestReaderBlocksWriter(t *testing.T) {
	s := newStore(time.Second)
	r := s.Begin()
	if _, _, err := r.Get("k"); err != nil { // miss still registers the read
		t.Fatal(err)
	}
	writerDone := make(chan error, 1)
	go func() {
		w := s.Begin()
		err := w.Set("k", []byte("x"), 0)
		if err == nil {
			_ = w.Commit()
		}
		writerDone <- err
	}()
	select {
	case <-writerDone:
		t.Fatal("writer proceeded against an uncommitted reader")
	case <-time.After(100 * time.Millisecond):
	}
	_ = r.Commit()
	select {
	case err := <-writerDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("writer did not resume")
	}
}

func TestOwnReadThenWriteUpgrades(t *testing.T) {
	s := newStore(200 * time.Millisecond)
	tx := s.Begin()
	if _, _, err := tx.Get("k"); err != nil {
		t.Fatal(err)
	}
	// The sole reader may upgrade to writer without deadlocking on itself.
	if err := tx.Set("k", []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
}

func TestDeadlockTimeout(t *testing.T) {
	s := newStore(150 * time.Millisecond)
	a := s.Begin()
	b := s.Begin()
	if _, _, err := a.Get("x"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Get("y"); err != nil {
		t.Fatal(err)
	}
	// a wants y (blocked by b's read), b wants x (blocked by a's read):
	// classic deadlock; the timeout must break it.
	errCh := make(chan error, 2)
	go func() { errCh <- a.Set("y", []byte("1"), 0) }()
	go func() { errCh <- b.Set("x", []byte("2"), 0) }()
	deadlocks := 0
	for i := 0; i < 2; i++ {
		select {
		case err := <-errCh:
			if errors.Is(err, ErrDeadlock) {
				deadlocks++
			}
		case <-time.After(2 * time.Second):
			t.Fatal("deadlock not resolved by timeout")
		}
	}
	if deadlocks == 0 {
		t.Fatal("no deadlock error surfaced")
	}
	_ = a.Abort()
	_ = b.Abort()
	dl, _ := s.Stats()
	if dl == 0 {
		t.Fatal("deadlock counter not bumped")
	}
}

func TestAbortRemovesWrittenKeys(t *testing.T) {
	inner := kvcache.New(0)
	s := New(inner, time.Second)
	inner.Set("k", []byte("committed"), 0)
	tx := s.Begin()
	if err := tx.Set("k", []byte("dirty"), 0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	// Aborted writes must not linger: the key is gone so readers go to the
	// database (paper §3.3).
	if _, ok := inner.Get("k"); ok {
		t.Fatal("aborted write left a value in the cache")
	}
	// Locks must be released.
	tx2 := s.Begin()
	if err := tx2.Set("k", []byte("fresh"), 0); err != nil {
		t.Fatal(err)
	}
	_ = tx2.Commit()
}

func TestTxnDoneErrors(t *testing.T) {
	s := newStore(0)
	tx := s.Begin()
	_ = tx.Commit()
	if err := tx.Set("k", nil, 0); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := tx.Get("k"); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("err = %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit err = %v", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatalf("abort after commit should be a no-op, got %v", err)
	}
}

func TestConcurrentReadersShareKey(t *testing.T) {
	s := newStore(time.Second)
	inner := s.inner.(*kvcache.Store)
	inner.Set("k", []byte("v"), 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := s.Begin()
			if _, _, err := tx.Get("k"); err != nil {
				t.Error(err)
			}
			_ = tx.Commit()
		}()
	}
	wg.Wait()
}

// TestSerializableCounter: concurrent read-modify-write transactions with
// deadlock-abort-retry must not lose updates — the serializability the
// paper's design claims.
func TestSerializableCounter(t *testing.T) {
	s := newStore(50 * time.Millisecond)
	boot := s.Begin()
	if err := boot.Set("ctr", []byte("0"), 0); err != nil {
		t.Fatal(err)
	}
	_ = boot.Commit()

	const goroutines = 6
	const perG = 30
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			backoff := func(attempt int) {
				time.Sleep(time.Duration(rng.Intn(1000*(attempt+1))) * time.Microsecond)
			}
			for i := 0; i < perG; i++ {
				for attempt := 0; ; attempt++ {
					tx := s.Begin()
					v, ok, err := tx.Get("ctr")
					if err != nil {
						_ = tx.Abort()
						backoff(attempt)
						continue
					}
					if !ok {
						_ = tx.Abort()
						t.Error("counter vanished")
						return
					}
					n, _ := strconv.Atoi(string(v))
					if err := tx.Set("ctr", []byte(strconv.Itoa(n+1)), 0); err != nil {
						_ = tx.Abort() // deadlock victim: back off and retry
						backoff(attempt)
						continue
					}
					if err := tx.Commit(); err != nil {
						t.Error(err)
						return
					}
					break
				}
			}
		}(g)
	}
	wg.Wait()
	final := s.Begin()
	v, ok, err := final.Get("ctr")
	if err != nil || !ok {
		t.Fatalf("final read: %v %v", ok, err)
	}
	n, _ := strconv.Atoi(string(v))
	if n != goroutines*perG {
		t.Fatalf("counter = %d, want %d (lost updates)", n, goroutines*perG)
	}
	_ = final.Commit()
}

func TestKeyStateGarbageCollected(t *testing.T) {
	s := newStore(0)
	for i := 0; i < 100; i++ {
		tx := s.Begin()
		key := fmt.Sprintf("k%d", i)
		if _, _, err := tx.Get(key); err != nil {
			t.Fatal(err)
		}
		if err := tx.Set(key, []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
		_ = tx.Commit()
	}
	s.mu.Lock()
	n := len(s.keys)
	s.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d key states leaked after commit", n)
	}
}
