// Package txcache implements the full transactional-consistency design the
// paper describes in §3.3 but leaves unimplemented: a cache layer that
// tracks, per key, the uncommitted transactions reading it (readers_k) and
// the uncommitted writer (writer_k), and blocks conflicting accesses
// according to two-phase locking. Deadlocks are resolved with timeouts, as
// the paper proposes for keys spread over many cache servers.
//
// Rules (paper §3.3):
//
//   - A transaction T reading key k blocks while writer_k ∉ {none, T}.
//   - A transaction T writing key k blocks while writer_k ∉ {none, T} or
//     readers_k − {T} ≠ ∅.
//   - Reader/writer registrations persist even for keys that are absent
//     from the cache (invalidated or not yet populated).
//   - On commit, T is removed from all readers/writers and blocked
//     transactions resume.
//   - On abort, T is removed from the readers of keys it read, and every
//     key it wrote is deleted from the cache so subsequent reads go to the
//     database.
package txcache

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"cachegenie/internal/kvcache"
)

// ErrDeadlock is returned when a lock wait exceeds the store's timeout; the
// caller should abort the transaction and retry (timeout-based deadlock
// detection, §3.3).
var ErrDeadlock = errors.New("txcache: lock wait timeout (deadlock suspected)")

// ErrTxnDone is returned when using a committed or aborted transaction.
var ErrTxnDone = errors.New("txcache: transaction already finished")

// keyState tracks the uncommitted readers and writer of one key. It exists
// independently of whether the key currently has a cached value.
type keyState struct {
	readers map[int64]struct{}
	writer  int64 // 0 = none
}

func (ks *keyState) idle() bool { return len(ks.readers) == 0 && ks.writer == 0 }

// Store wraps a cache with per-key two-phase locking.
type Store struct {
	inner   kvcache.Cache
	timeout time.Duration

	mu     sync.Mutex
	cond   *sync.Cond
	keys   map[string]*keyState
	nextID int64

	statDeadlocks int64
	statBlocked   int64
}

// New wraps inner with transaction tracking. timeout bounds lock waits
// (minimum 1ms; default 2s when zero).
func New(inner kvcache.Cache, timeout time.Duration) *Store {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	s := &Store{inner: inner, timeout: timeout, keys: make(map[string]*keyState)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Stats reports deadlock and blocking counts.
func (s *Store) Stats() (deadlocks, blocked int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statDeadlocks, s.statBlocked
}

// Begin starts a cache transaction. The paper has Django and the database
// agree on a transaction id; here the store issues them.
func (s *Store) Begin() *Txn {
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.mu.Unlock()
	return &Txn{s: s, id: id, read: map[string]struct{}{}, wrote: map[string]struct{}{}}
}

// Txn is one cache transaction. It must be used from a single goroutine.
type Txn struct {
	s     *Store
	id    int64
	read  map[string]struct{}
	wrote map[string]struct{}
	done  bool
}

// ID returns the transaction id.
func (t *Txn) ID() int64 { return t.id }

func (s *Store) state(key string) *keyState {
	ks, ok := s.keys[key]
	if !ok {
		ks = &keyState{readers: map[int64]struct{}{}}
		s.keys[key] = ks
	}
	return ks
}

// wait blocks until grant returns true or the timeout fires. Caller holds
// s.mu; grant is evaluated under s.mu.
func (s *Store) wait(grant func() bool) error {
	if grant() {
		return nil
	}
	s.statBlocked++
	deadline := time.Now().Add(s.timeout)
	for !grant() {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			s.statDeadlocks++
			return ErrDeadlock
		}
		timer := time.AfterFunc(remaining, func() {
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		})
		s.cond.Wait()
		timer.Stop()
	}
	return nil
}

// Get reads key within the transaction, blocking out concurrent writers.
// The transaction is registered as a reader of key even on a miss, so a
// later writer cannot slip between this read and the transaction's commit.
func (t *Txn) Get(key string) ([]byte, bool, error) {
	if t.done {
		return nil, false, ErrTxnDone
	}
	s := t.s
	s.mu.Lock()
	ks := s.state(key)
	err := s.wait(func() bool { return ks.writer == 0 || ks.writer == t.id })
	if err != nil {
		s.mu.Unlock()
		return nil, false, fmt.Errorf("%w (reading %q, txn %d)", err, key, t.id)
	}
	ks.readers[t.id] = struct{}{}
	t.read[key] = struct{}{}
	s.mu.Unlock()
	v, ok := s.inner.Get(key)
	return v, ok, nil
}

// acquireWrite blocks until t may write key, then registers it as writer.
func (t *Txn) acquireWrite(key string) error {
	s := t.s
	s.mu.Lock()
	defer s.mu.Unlock()
	ks := s.state(key)
	err := s.wait(func() bool {
		if ks.writer != 0 && ks.writer != t.id {
			return false
		}
		for r := range ks.readers {
			if r != t.id {
				return false
			}
		}
		return true
	})
	if err != nil {
		return fmt.Errorf("%w (writing %q, txn %d)", err, key, t.id)
	}
	// Upgrade: our own read registration is subsumed by the write lock.
	delete(ks.readers, t.id)
	ks.writer = t.id
	t.wrote[key] = struct{}{}
	return nil
}

// Set writes key within the transaction (blocking out readers and writers).
func (t *Txn) Set(key string, value []byte, ttl time.Duration) error {
	if t.done {
		return ErrTxnDone
	}
	if err := t.acquireWrite(key); err != nil {
		return err
	}
	t.s.inner.Set(key, value, ttl)
	return nil
}

// Delete invalidates key within the transaction. Per the paper, the
// reader/writer registration outlives the cached value.
func (t *Txn) Delete(key string) error {
	if t.done {
		return ErrTxnDone
	}
	if err := t.acquireWrite(key); err != nil {
		return err
	}
	t.s.inner.Delete(key)
	return nil
}

// Commit releases the transaction's registrations and wakes waiters.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	t.finish(false)
	return nil
}

// Abort rolls the transaction back: keys it wrote are removed from the
// cache (so subsequent reads fall through to the database), read
// registrations are dropped, and waiters wake.
func (t *Txn) Abort() error {
	if t.done {
		return nil
	}
	t.finish(true)
	return nil
}

func (t *Txn) finish(abort bool) {
	s := t.s
	if abort {
		for key := range t.wrote {
			s.inner.Delete(key)
		}
	}
	s.mu.Lock()
	for key := range t.read {
		if ks, ok := s.keys[key]; ok {
			delete(ks.readers, t.id)
			if ks.idle() {
				delete(s.keys, key)
			}
		}
	}
	for key := range t.wrote {
		if ks, ok := s.keys[key]; ok {
			if ks.writer == t.id {
				ks.writer = 0
			}
			if ks.idle() {
				delete(s.keys, key)
			}
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	t.done = true
}
