// Package loadctl is the control plane for coordinated distributed load
// generation: one coordinator phases N worker processes through a measured
// run in lockstep and merges their results into true aggregate statistics.
//
// The cache tier outruns any single genieload process (the exp9 artifact
// flatlines at ~1x on a one-core client box), so saturation numbers need
// many client machines acting as one instrument. That takes three things a
// lone process gets for free: everyone measuring the same window (barriers),
// one workload spec (broadcast), and one latency distribution (per-worker
// obs.HistSnapshots shipped back and merged exact-bucket, so the aggregate
// p50/p99/p999 equal what a single process observing every op would have
// computed).
//
// The wire protocol reuses cacheproto's idiom — line-based text framing with
// length-prefixed payload blocks — over one TCP connection per worker:
//
//	worker → coordinator:  JOIN <id>
//	coordinator → worker:  SPEC <n>\r\n<n bytes of JSON Spec>\r\n
//	worker → coordinator:  READY <phase>          (barrier arrival)
//	                       ERR <phase> <message>  (abort the whole run)
//	coordinator → worker:  GO <phase>             (barrier release)
//	                       ABORT <message>
//	worker → coordinator:  RESULT <n>\r\n<n bytes of JSON Result>\r\n
//	coordinator → worker:  BYE
//
// Phases run warmup → measure → drain. The drain barrier guarantees every
// worker has stopped generating load before any worker tears down, so one
// worker's teardown can never pollute another's measured tail. A worker
// that dies mid-run (its connection drops) or hangs past a barrier timeout
// aborts the whole run: every surviving worker gets ABORT and the
// coordinator exits non-zero — a partial "aggregate" is worse than none.
package loadctl

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"cachegenie/internal/obs"
)

// Phases, in run order. Prepare is not a barrier — it is the worker-local
// setup (dialing the cache tier) between SPEC and the warmup barrier; its
// name appears in ERR lines when that setup fails.
const (
	PhasePrepare = "prepare"
	PhaseWarmup  = "warmup"
	PhaseMeasure = "measure"
	PhaseDrain   = "drain"
)

// maxLineBytes bounds a control line. Control lines are tens of bytes; a
// longer one is a confused or malicious peer, not a bigger workload.
const maxLineBytes = 4096

// maxPayloadBytes bounds a SPEC/RESULT block. A Result is dominated by the
// sparse histogram encoding (a few KiB); 16 MiB is beyond any honest use.
const maxPayloadBytes = 16 << 20

// Spec is the workload the coordinator broadcasts: every worker runs the
// same experiment against the same cache tier, distinguished only by its
// WorkerIndex (which carves it a private write slice of the keyspace and
// seeds its RNG). Durations travel as integer milliseconds so the JSON is
// stable across platforms.
type Spec struct {
	Experiment string `json:"experiment"`
	// Workers and WorkerIndex are filled by the coordinator per worker:
	// index i of n, in join order.
	Workers     int `json:"workers"`
	WorkerIndex int `json:"worker_index"`
	// Clients is the number of concurrent client goroutines per worker.
	Clients   int   `json:"clients"`
	WarmupMs  int64 `json:"warmup_ms"`
	MeasureMs int64 `json:"measure_ms"`
	// Keys is the global keyspace size. Worker i owns the contiguous write
	// slice KeyRange() of it; reads roam the whole keyspace, which is why
	// the warmup barrier matters — every key has been written by its owner
	// before anyone's measured reads begin.
	Keys       int   `json:"keys"`
	ValueBytes int   `json:"value_bytes"`
	WritePct   int   `json:"write_pct"`
	Seed       int64 `json:"seed"`
	// CacheAddrs is the tier under test (externally launched, e.g.
	// geniecache -nodes N); Replicas is the client-side ring replication
	// factor to route with.
	CacheAddrs []string `json:"cache_addrs"`
	Replicas   int      `json:"replicas"`
}

// WarmupDuration returns the warmup phase length.
func (s Spec) WarmupDuration() time.Duration { return time.Duration(s.WarmupMs) * time.Millisecond }

// MeasureDuration returns the measure phase length.
func (s Spec) MeasureDuration() time.Duration { return time.Duration(s.MeasureMs) * time.Millisecond }

// KeyRange returns this worker's owned slice [lo, hi) of the global
// keyspace — the keys it seeds during warmup and writes to during measure.
// Slices partition [0, Keys) exactly across Workers.
func (s Spec) KeyRange() (lo, hi int) {
	if s.Workers <= 0 {
		return 0, s.Keys
	}
	lo = s.WorkerIndex * s.Keys / s.Workers
	hi = (s.WorkerIndex + 1) * s.Keys / s.Workers
	return lo, hi
}

// Result is one worker's measured contribution, shipped back over the
// control connection after the drain barrier. Hist is the worker's per-op
// latency distribution; its compact text encoding (obs.HistSnapshot's
// TextMarshaler) rides inside the JSON and merges exact-bucket on the
// coordinator.
type Result struct {
	WorkerID    string           `json:"worker_id"`
	WorkerIndex int              `json:"worker_index"`
	Ops         int64            `json:"ops"`
	Errors      int64            `json:"errors"`
	Hits        int64            `json:"hits"`
	Misses      int64            `json:"misses"`
	ElapsedNs   int64            `json:"elapsed_ns"`
	Hist        obs.HistSnapshot `json:"hist"`
}

// OpsPerSec is the worker's own throughput over its own measured window.
func (r Result) OpsPerSec() float64 {
	if r.ElapsedNs <= 0 {
		return 0
	}
	return float64(r.Ops) / (float64(r.ElapsedNs) / 1e9)
}

// Merged is the coordinator's aggregate view of one run.
type Merged struct {
	Spec    Spec
	Results []Result
	// Hist is the exact-bucket merge of every worker's distribution: its
	// quantiles are identical to what a single process observing all ops
	// would have reported.
	Hist obs.HistSnapshot
	// Ops/Errors/Hits/Misses sum across workers.
	Ops, Errors, Hits, Misses int64
	// Elapsed is the slowest worker's measured window; with barriers the
	// windows coincide, so total ops over it is the honest aggregate rate.
	Elapsed time.Duration
	// AggOpsPerSec is the tier's aggregate throughput; the whole point of
	// distribution is that it exceeds BestWorkerOpsPerSec.
	AggOpsPerSec        float64
	BestWorkerOpsPerSec float64
	BestWorkerID        string
}

// HitRate is merged read hits over reads (0 when no reads ran).
func (m *Merged) HitRate() float64 {
	if m.Hits+m.Misses == 0 {
		return 0
	}
	return float64(m.Hits) / float64(m.Hits+m.Misses)
}

// mergeResults folds per-worker results into the aggregate.
func mergeResults(spec Spec, results []Result) *Merged {
	m := &Merged{Spec: spec, Results: results}
	for _, r := range results {
		m.Hist.Add(r.Hist)
		m.Ops += r.Ops
		m.Errors += r.Errors
		m.Hits += r.Hits
		m.Misses += r.Misses
		if d := time.Duration(r.ElapsedNs); d > m.Elapsed {
			m.Elapsed = d
		}
		if ops := r.OpsPerSec(); ops > m.BestWorkerOpsPerSec {
			m.BestWorkerOpsPerSec = ops
			m.BestWorkerID = r.WorkerID
		}
	}
	if m.Elapsed > 0 {
		m.AggOpsPerSec = float64(m.Ops) / m.Elapsed.Seconds()
	}
	return m
}

// ctlWriteTimeout bounds one control-plane write+flush. Control messages
// are small (a line, or a histogram payload of a few KB), so a peer that
// can't drain them within this window is wedged, not slow.
const ctlWriteTimeout = 30 * time.Second

// ctlConn frames control lines and payload blocks over one TCP connection.
// Both ends use it; every read and write arms a deadline so a dead or
// wedged peer surfaces as a timeout error instead of a hang.
type ctlConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

func newCtlConn(c net.Conn) *ctlConn {
	return &ctlConn{conn: c, r: bufio.NewReaderSize(c, maxLineBytes), w: bufio.NewWriter(c)}
}

func (c *ctlConn) close() { _ = c.conn.Close() }

// sendLine writes one space-joined control line and flushes.
func (c *ctlConn) sendLine(parts ...string) error {
	_ = c.conn.SetWriteDeadline(time.Now().Add(ctlWriteTimeout))
	for i, p := range parts {
		if i > 0 {
			c.w.WriteByte(' ')
		}
		c.w.WriteString(p)
	}
	c.w.WriteString("\r\n")
	return c.w.Flush()
}

// sendPayload writes "<verb> <n>\r\n<n bytes>\r\n" and flushes.
func (c *ctlConn) sendPayload(verb string, body []byte) error {
	_ = c.conn.SetWriteDeadline(time.Now().Add(ctlWriteTimeout))
	c.w.WriteString(verb)
	c.w.WriteByte(' ')
	c.w.WriteString(strconv.Itoa(len(body)))
	c.w.WriteString("\r\n")
	c.w.Write(body)
	c.w.WriteString("\r\n")
	return c.w.Flush()
}

// readFields reads one control line within timeout and splits it. A line
// that outgrows the read buffer is malformed by definition (maxLineBytes),
// surfaced as an error rather than resynchronized — control framing, like
// cacheproto's, is not recoverable mid-stream.
func (c *ctlConn) readFields(timeout time.Duration) ([]string, error) {
	_ = c.conn.SetReadDeadline(time.Now().Add(timeout))
	line, err := c.r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		return nil, fmt.Errorf("loadctl: control line exceeds %d bytes", maxLineBytes)
	}
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(strings.TrimRight(string(line), "\r\n"))
	if len(fields) == 0 {
		return nil, fmt.Errorf("loadctl: empty control line")
	}
	return fields, nil
}

// readPayload reads the sized block that follows a "<verb> <n>" line, plus
// its trailing \r\n, within timeout. sizeField is the already-parsed-out
// size token from the verb line.
func (c *ctlConn) readPayload(sizeField string, timeout time.Duration) ([]byte, error) {
	n, err := strconv.Atoi(sizeField)
	if err != nil || n < 0 || n > maxPayloadBytes {
		return nil, fmt.Errorf("loadctl: bad payload size %q", sizeField)
	}
	_ = c.conn.SetReadDeadline(time.Now().Add(timeout))
	body := make([]byte, n+2)
	if _, err := io.ReadFull(c.r, body); err != nil {
		return nil, fmt.Errorf("loadctl: payload truncated: %w", err)
	}
	if body[n] != '\r' || body[n+1] != '\n' {
		return nil, fmt.Errorf("loadctl: payload unterminated")
	}
	return body[:n], nil
}

// sanitizeMsg flattens an error message onto one control line (the framing
// is line-based; an embedded newline would desync the stream).
func sanitizeMsg(msg string) string {
	msg = strings.ReplaceAll(msg, "\r", "")
	msg = strings.ReplaceAll(msg, "\n", "; ")
	if len(msg) > maxLineBytes/2 {
		msg = msg[:maxLineBytes/2] + "..."
	}
	return msg
}
