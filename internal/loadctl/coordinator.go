package loadctl

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Defaults for CoordinatorConfig's timeouts.
const (
	DefaultJoinTimeout    = 60 * time.Second
	DefaultBarrierTimeout = 60 * time.Second
)

// CoordinatorConfig tunes a Coordinator.
type CoordinatorConfig struct {
	// JoinTimeout bounds how long Run waits for the full worker complement
	// to register (0 = DefaultJoinTimeout).
	JoinTimeout time.Duration
	// BarrierTimeout is the slack allowed at each barrier beyond the
	// spec-implied phase duration: the wait for READY measure is
	// BarrierTimeout + warmup duration, for READY drain it is
	// BarrierTimeout + measure duration, and so on. A worker that hasn't
	// arrived within that window aborts the run (0 = DefaultBarrierTimeout).
	BarrierTimeout time.Duration
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c CoordinatorConfig) joinTimeout() time.Duration {
	if c.JoinTimeout <= 0 {
		return DefaultJoinTimeout
	}
	return c.JoinTimeout
}

func (c CoordinatorConfig) barrierTimeout() time.Duration {
	if c.BarrierTimeout <= 0 {
		return DefaultBarrierTimeout
	}
	return c.BarrierTimeout
}

// Coordinator listens for workers and drives runs. Create with
// NewCoordinator, arm with Listen, then Run once per coordinated run.
type Coordinator struct {
	cfg CoordinatorConfig
	ln  net.Listener

	mu     sync.Mutex
	joined chan *workerConn
	closed bool
}

// workerConn is one registered worker's control connection.
type workerConn struct {
	*ctlConn
	id    string
	index int
}

// NewCoordinator creates a coordinator.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	return &Coordinator{cfg: cfg, joined: make(chan *workerConn, 64)}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Listen binds the control port and starts registering workers in the
// background; it returns the bound address (useful with port 0). Workers
// may join before or during Run — registrations queue until a Run claims
// them.
func (c *Coordinator) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("loadctl: coordinator listen %s: %w", addr, err)
	}
	c.ln = ln
	go c.acceptLoop()
	return ln.Addr().String(), nil
}

// Addr returns the bound control address ("" before Listen).
func (c *Coordinator) Addr() string {
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Close stops accepting and tears down any workers that joined but were
// never claimed by a Run.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	var err error
	if c.ln != nil {
		err = c.ln.Close()
	}
	for {
		select {
		case wc := <-c.joined:
			wc.close()
		default:
			return err
		}
	}
}

// acceptLoop registers workers: each accepted connection must open with a
// well-formed JOIN within the join timeout or it is dropped — a malformed
// or silent dialer never wedges the coordinator, it just never joins.
func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go func() {
			wc := newCtlConn(conn)
			fields, err := wc.readFields(c.cfg.joinTimeout())
			if err != nil || len(fields) != 2 || fields[0] != "JOIN" {
				c.logf("loadctl: dropping connection %s: not a JOIN (%v %v)", conn.RemoteAddr(), fields, err)
				wc.close()
				return
			}
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				wc.close()
				return
			}
			select {
			case c.joined <- &workerConn{ctlConn: wc, id: fields[1]}:
				c.logf("loadctl: worker %q joined from %s", fields[1], conn.RemoteAddr())
			default:
				// Registration queue full — far beyond any sane worker count.
				c.logf("loadctl: join queue full, dropping worker %q", fields[1])
				wc.close()
			}
		}()
	}
}

// Run waits for the given worker count to join, broadcasts spec (with
// Workers/WorkerIndex filled per worker, in join order), phases everyone
// through warmup → measure → drain, collects and merges the results. Any
// worker error, death, or barrier timeout aborts the whole run: survivors
// receive ABORT and Run returns a non-nil error naming the culprit.
func (c *Coordinator) Run(spec Spec, workers int) (*Merged, error) {
	if c.ln == nil {
		return nil, errors.New("loadctl: coordinator not listening (call Listen first)")
	}
	if workers <= 0 {
		return nil, fmt.Errorf("loadctl: need a positive worker count, got %d", workers)
	}
	spec.Workers = workers
	conns, err := c.waitJoin(workers)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, wc := range conns {
			wc.close()
		}
	}()

	// Broadcast the spec, each worker stamped with its index.
	for i, wc := range conns {
		sp := spec
		sp.WorkerIndex = i
		wc.index = i
		body, err := json.Marshal(sp)
		if err != nil {
			return nil, fmt.Errorf("loadctl: marshal spec: %w", err)
		}
		if err := wc.sendPayload("SPEC", body); err != nil {
			c.abort(conns, fmt.Sprintf("spec send to worker %q failed", wc.id))
			return nil, fmt.Errorf("loadctl: send spec to worker %q: %w", wc.id, err)
		}
	}
	c.logf("loadctl: %d workers joined, spec broadcast (%d clients x %d workers, measure %v)",
		workers, spec.Clients, workers, spec.MeasureDuration())

	// Barriers. The READY wait for each phase covers the workers' previous
	// phase's work, so the allowance grows by the spec-implied duration.
	slack := c.cfg.barrierTimeout()
	barriers := []struct {
		phase string
		wait  time.Duration
	}{
		{PhaseWarmup, slack}, // covers prepare (dials, keyspace seeding)
		{PhaseMeasure, slack + spec.WarmupDuration()},
		{PhaseDrain, slack + spec.MeasureDuration()},
	}
	for _, b := range barriers {
		if err := c.barrier(conns, b.phase, b.wait); err != nil {
			return nil, err
		}
		c.logf("loadctl: barrier %q released to %d workers", b.phase, workers)
	}

	results, err := c.collect(conns, slack)
	if err != nil {
		return nil, err
	}
	for _, wc := range conns {
		_ = wc.sendLine("BYE")
	}
	m := mergeResults(spec, results)
	c.logf("loadctl: merged %d workers: %.0f ops/s aggregate (best single %.0f by %q), p99=%v",
		workers, m.AggOpsPerSec, m.BestWorkerOpsPerSec, m.BestWorkerID,
		time.Duration(m.Hist.Quantile(0.99)))
	return m, nil
}

// waitJoin claims the next `workers` registrations from the accept loop.
func (c *Coordinator) waitJoin(workers int) ([]*workerConn, error) {
	conns := make([]*workerConn, 0, workers)
	timer := time.NewTimer(c.cfg.joinTimeout())
	defer timer.Stop()
	for len(conns) < workers {
		select {
		case wc := <-c.joined:
			conns = append(conns, wc)
		case <-timer.C:
			for _, wc := range conns {
				_ = wc.sendLine("ABORT", "join timeout: not enough workers")
				wc.close()
			}
			return nil, fmt.Errorf("loadctl: %d of %d workers joined within %v",
				len(conns), workers, c.cfg.joinTimeout())
		}
	}
	return conns, nil
}

// barrier reads READY <phase> from every worker in parallel, then releases
// them all with GO <phase>. Any ERR line, malformed line, dead connection,
// or deadline overrun fails the barrier and aborts the run.
func (c *Coordinator) barrier(conns []*workerConn, phase string, wait time.Duration) error {
	errs := make([]error, len(conns))
	var wg sync.WaitGroup
	for i, wc := range conns {
		wg.Add(1)
		go func(i int, wc *workerConn) {
			defer wg.Done()
			fields, err := wc.readFields(wait)
			switch {
			case err != nil:
				errs[i] = fmt.Errorf("worker %q (index %d) lost before barrier %q: %w", wc.id, wc.index, phase, err)
			case fields[0] == "ERR":
				msg := strings.Join(fields[1:], " ")
				errs[i] = fmt.Errorf("worker %q (index %d) failed: %s", wc.id, wc.index, msg)
			case len(fields) == 2 && fields[0] == "READY" && fields[1] == phase:
				// Arrived.
			default:
				errs[i] = fmt.Errorf("worker %q (index %d) sent %q at barrier %q", wc.id, wc.index, strings.Join(fields, " "), phase)
			}
		}(i, wc)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		c.abort(conns, sanitizeMsg(err.Error()))
		return fmt.Errorf("loadctl: run aborted at barrier %q: %w", phase, err)
	}
	for _, wc := range conns {
		if err := wc.sendLine("GO", phase); err != nil {
			c.abort(conns, fmt.Sprintf("barrier %q release to worker %q failed", phase, wc.id))
			return fmt.Errorf("loadctl: release barrier %q to worker %q: %w", phase, wc.id, err)
		}
	}
	return nil
}

// collect reads every worker's RESULT payload.
func (c *Coordinator) collect(conns []*workerConn, wait time.Duration) ([]Result, error) {
	results := make([]Result, len(conns))
	errs := make([]error, len(conns))
	var wg sync.WaitGroup
	for i, wc := range conns {
		wg.Add(1)
		go func(i int, wc *workerConn) {
			defer wg.Done()
			fields, err := wc.readFields(wait)
			if err != nil {
				errs[i] = fmt.Errorf("worker %q result: %w", wc.id, err)
				return
			}
			if fields[0] == "ERR" {
				errs[i] = fmt.Errorf("worker %q failed: %s", wc.id, strings.Join(fields[1:], " "))
				return
			}
			if len(fields) != 2 || fields[0] != "RESULT" {
				errs[i] = fmt.Errorf("worker %q sent %q, want RESULT", wc.id, strings.Join(fields, " "))
				return
			}
			body, err := wc.readPayload(fields[1], wait)
			if err != nil {
				errs[i] = fmt.Errorf("worker %q result payload: %w", wc.id, err)
				return
			}
			if err := json.Unmarshal(body, &results[i]); err != nil {
				errs[i] = fmt.Errorf("worker %q result decode: %w", wc.id, err)
			}
		}(i, wc)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		c.abort(conns, sanitizeMsg(err.Error()))
		return nil, fmt.Errorf("loadctl: result collection failed: %w", err)
	}
	return results, nil
}

// abort broadcasts ABORT to every worker (best-effort — some may already be
// gone; the others must stop generating load and exit non-zero).
func (c *Coordinator) abort(conns []*workerConn, reason string) {
	for _, wc := range conns {
		_ = wc.sendLine("ABORT", sanitizeMsg(reason))
	}
}
