package loadctl

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"cachegenie/internal/obs"
)

// fakeRunner is a Runner that observes a deterministic latency sample
// instead of generating real load, so tests can compare the coordinator's
// wire-merged histogram against merging the same samples directly.
type fakeRunner struct {
	seed int64

	mu     sync.Mutex
	hist   *obs.Histogram
	phases []string
	closed int

	failPhase string // phase whose Runner hook should error
}

func (f *fakeRunner) record(phase string) error {
	f.mu.Lock()
	f.phases = append(f.phases, phase)
	f.mu.Unlock()
	if f.failPhase == phase {
		return fmt.Errorf("injected %s failure", phase)
	}
	return nil
}

func (f *fakeRunner) Prepare(spec Spec) error { return f.record(PhasePrepare) }
func (f *fakeRunner) Warmup(spec Spec) error  { return f.record(PhaseWarmup) }

func (f *fakeRunner) Measure(spec Spec) (Result, error) {
	if err := f.record(PhaseMeasure); err != nil {
		return Result{}, err
	}
	f.hist = &obs.Histogram{}
	rng := rand.New(rand.NewSource(f.seed))
	var ops int64
	for i := 0; i < 5000; i++ {
		f.hist.Observe(int64(rng.ExpFloat64() * 100e3)) // ~100µs scale
		ops++
	}
	return Result{
		Ops:       ops,
		Hits:      ops - 100,
		Misses:    100,
		Errors:    int64(f.seed % 3),
		ElapsedNs: int64(100+10*f.seed) * int64(time.Millisecond),
		Hist:      f.hist.Snapshot(),
	}, nil
}

func (f *fakeRunner) Close() {
	f.mu.Lock()
	f.closed++
	f.mu.Unlock()
}

func testSpec() Spec {
	return Spec{
		Experiment: "exp11",
		Clients:    4,
		WarmupMs:   5,
		MeasureMs:  20,
		Keys:       1024,
		ValueBytes: 64,
		WritePct:   10,
		Seed:       42,
		CacheAddrs: []string{"127.0.0.1:0"},
		Replicas:   1,
	}
}

func startCoordinator(t *testing.T, cfg CoordinatorConfig) *Coordinator {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	c := NewCoordinator(cfg)
	if _, err := c.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCoordinatedRunMergesExactly(t *testing.T) {
	c := startCoordinator(t, CoordinatorConfig{JoinTimeout: 5 * time.Second, BarrierTimeout: 5 * time.Second})

	const workers = 3
	runners := make([]*fakeRunner, workers)
	results := make([]Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		runners[i] = &fakeRunner{seed: int64(i + 1)}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunWorker(c.Addr(), WorkerConfig{ID: fmt.Sprintf("w%d", i), Logf: t.Logf}, runners[i])
		}(i)
	}

	m, err := c.Run(testSpec(), workers)
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
	}

	// Every worker ran the full phase sequence and closed exactly via the
	// deferred+explicit path (Close is idempotent).
	for i, r := range runners {
		want := []string{PhasePrepare, PhaseWarmup, PhaseMeasure}
		if got := strings.Join(r.phases, ","); got != strings.Join(want, ",") {
			t.Errorf("worker %d phases = %s, want %s", i, got, strings.Join(want, ","))
		}
		if r.closed == 0 {
			t.Errorf("worker %d never closed", i)
		}
	}

	// The coordinator's merge must be bucket-identical to merging the
	// runners' local histograms directly — no wire-induced drift.
	direct := &obs.Histogram{}
	var wantOps int64
	for _, r := range runners {
		direct.Merge(r.hist)
	}
	for _, res := range results {
		wantOps += res.Ops
	}
	ds := direct.Snapshot()
	if m.Hist.Count != ds.Count || m.Hist.Sum != ds.Sum || m.Hist.Max != ds.Max {
		t.Fatalf("merged header = (%d,%d,%d), direct = (%d,%d,%d)",
			m.Hist.Count, m.Hist.Sum, m.Hist.Max, ds.Count, ds.Sum, ds.Max)
	}
	if len(m.Hist.Buckets) != len(ds.Buckets) {
		t.Fatalf("merged has %d buckets, direct %d", len(m.Hist.Buckets), len(ds.Buckets))
	}
	for i := range ds.Buckets {
		if m.Hist.Buckets[i] != ds.Buckets[i] {
			t.Fatalf("bucket %d: merged %d, direct %d", i, m.Hist.Buckets[i], ds.Buckets[i])
		}
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		if got, want := m.Hist.Quantile(q), ds.Quantile(q); got != want {
			t.Errorf("q%.3f: merged %d, direct %d", q, got, want)
		}
	}
	if m.Ops != wantOps {
		t.Errorf("merged ops = %d, want %d", m.Ops, wantOps)
	}
	if m.AggOpsPerSec <= m.BestWorkerOpsPerSec {
		t.Errorf("aggregate %.0f ops/s should exceed best single worker %.0f",
			m.AggOpsPerSec, m.BestWorkerOpsPerSec)
	}
	if got := len(m.Results); got != workers {
		t.Errorf("merged %d results, want %d", got, workers)
	}
	// WorkerIndex assignment partitions the keyspace exactly.
	seen := make(map[int]bool)
	covered := 0
	for _, res := range m.Results {
		if seen[res.WorkerIndex] {
			t.Errorf("worker index %d assigned twice", res.WorkerIndex)
		}
		seen[res.WorkerIndex] = true
		sp := m.Spec
		sp.Workers = workers
		sp.WorkerIndex = res.WorkerIndex
		lo, hi := sp.KeyRange()
		covered += hi - lo
	}
	if covered != m.Spec.Keys {
		t.Errorf("key slices cover %d keys, want %d", covered, m.Spec.Keys)
	}
}

func TestWorkerPrepareFailureAbortsRun(t *testing.T) {
	c := startCoordinator(t, CoordinatorConfig{JoinTimeout: 5 * time.Second, BarrierTimeout: 5 * time.Second})

	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for i := 0; i < 2; i++ {
		r := &fakeRunner{seed: int64(i + 1)}
		if i == 1 {
			r.failPhase = PhasePrepare // e.g. unreachable -cache-addrs
		}
		wg.Add(1)
		go func(i int, r *fakeRunner) {
			defer wg.Done()
			_, workerErrs[i] = RunWorker(c.Addr(), WorkerConfig{ID: fmt.Sprintf("w%d", i)}, r)
		}(i, r)
	}

	_, err := c.Run(testSpec(), 2)
	wg.Wait()
	if err == nil {
		t.Fatal("coordinator run succeeded despite a worker prepare failure")
	}
	if !strings.Contains(err.Error(), "injected prepare failure") {
		t.Errorf("coordinator error %q does not name the worker failure", err)
	}
	// The healthy worker must have been aborted, not left hanging.
	if workerErrs[0] == nil || !strings.Contains(workerErrs[0].Error(), "aborted") {
		t.Errorf("healthy worker error = %v, want abort", workerErrs[0])
	}
	if workerErrs[1] == nil {
		t.Error("failing worker reported success")
	}
}

// rawWorker speaks the protocol by hand up to and including the GO for
// `until`, then returns the open connection so the test can kill it at a
// precise point in the run.
func rawWorker(t *testing.T, addr, id, until string) *ctlConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("raw worker dial: %v", err)
	}
	cc := newCtlConn(conn)
	if err := cc.sendLine("JOIN", id); err != nil {
		t.Fatalf("raw worker join: %v", err)
	}
	if _, err := recvSpec(cc, 5*time.Second); err != nil {
		t.Fatalf("raw worker spec: %v", err)
	}
	for _, phase := range []string{PhaseWarmup, PhaseMeasure, PhaseDrain} {
		if err := cc.sendLine("READY", phase); err != nil {
			t.Fatalf("raw worker ready %s: %v", phase, err)
		}
		fields, err := cc.readFields(10 * time.Second)
		if err != nil || len(fields) != 2 || fields[0] != "GO" {
			t.Fatalf("raw worker barrier %s: %v %v", phase, fields, err)
		}
		if phase == until {
			break
		}
	}
	return cc
}

func TestWorkerDeathMidMeasureAbortsRun(t *testing.T) {
	c := startCoordinator(t, CoordinatorConfig{JoinTimeout: 5 * time.Second, BarrierTimeout: 2 * time.Second})

	var wg sync.WaitGroup
	var healthyErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, healthyErr = RunWorker(c.Addr(), WorkerConfig{ID: "healthy"}, &fakeRunner{seed: 1})
	}()
	wg.Add(1)
	var runErr error
	var done = make(chan *Merged, 1)
	go func() {
		defer wg.Done()
		m, err := c.Run(testSpec(), 2)
		runErr = err
		done <- m
	}()

	// Walk the doomed worker through the measure release, then kill it: it
	// dies mid-measure, before ever reaching the drain barrier.
	cc := rawWorker(t, c.Addr(), "doomed", PhaseMeasure)
	cc.close()

	wg.Wait()
	if m := <-done; m != nil || runErr == nil {
		t.Fatalf("run = (%v, %v), want abort error", m, runErr)
	}
	if !strings.Contains(runErr.Error(), "doomed") {
		t.Errorf("coordinator error %q does not name the dead worker", runErr)
	}
	if healthyErr == nil || !strings.Contains(healthyErr.Error(), "aborted") {
		t.Errorf("healthy worker error = %v, want abort", healthyErr)
	}
}

func TestBarrierTimeoutAbortsRun(t *testing.T) {
	c := startCoordinator(t, CoordinatorConfig{JoinTimeout: 5 * time.Second, BarrierTimeout: 300 * time.Millisecond})

	// One real worker, one that joins and receives the spec but never
	// announces READY.
	var wg sync.WaitGroup
	var healthyErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, healthyErr = RunWorker(c.Addr(), WorkerConfig{ID: "healthy"}, &fakeRunner{seed: 1})
	}()

	conn, err := net.Dial("tcp", c.Addr())
	if err != nil {
		t.Fatalf("silent worker dial: %v", err)
	}
	silent := newCtlConn(conn)
	defer silent.close()
	if err := silent.sendLine("JOIN", "silent"); err != nil {
		t.Fatalf("silent worker join: %v", err)
	}

	start := time.Now()
	runErrc := make(chan error, 1)
	go func() {
		_, err := c.Run(testSpec(), 2)
		runErrc <- err
	}()
	// The silent worker consumes its spec and then says nothing.
	if _, err := recvSpec(silent, 10*time.Second); err != nil {
		t.Fatalf("silent worker spec: %v", err)
	}

	err = <-runErrc
	if err == nil {
		t.Fatal("run succeeded despite a silent worker")
	}
	if !strings.Contains(err.Error(), "silent") {
		t.Errorf("coordinator error %q does not name the silent worker", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("barrier timeout took %v — hung instead of failing fast", elapsed)
	}
	// The silent worker must see the ABORT on its connection.
	fields, err := silent.readFields(5 * time.Second)
	if err != nil || fields[0] != "ABORT" {
		t.Errorf("silent worker read %v %v, want ABORT", fields, err)
	}
	wg.Wait()
	if healthyErr == nil {
		t.Error("healthy worker reported success despite aborted run")
	}
}

func TestJoinTimeout(t *testing.T) {
	c := startCoordinator(t, CoordinatorConfig{JoinTimeout: 400 * time.Millisecond, BarrierTimeout: time.Second})

	conn, err := net.Dial("tcp", c.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	lone := newCtlConn(conn)
	defer lone.close()
	if err := lone.sendLine("JOIN", "lone"); err != nil {
		t.Fatalf("join: %v", err)
	}

	_, err = c.Run(testSpec(), 2)
	if err == nil || !strings.Contains(err.Error(), "1 of 2 workers joined") {
		t.Fatalf("run error = %v, want join timeout naming 1 of 2", err)
	}
	// The worker that did join is told the run is off.
	fields, rerr := lone.readFields(2 * time.Second)
	if rerr != nil || fields[0] != "ABORT" {
		t.Errorf("joined worker read %v %v, want ABORT", fields, rerr)
	}
}

func TestMalformedJoinIsDroppedNotWedging(t *testing.T) {
	c := startCoordinator(t, CoordinatorConfig{JoinTimeout: 5 * time.Second, BarrierTimeout: 5 * time.Second})

	// A connection that speaks garbage instead of JOIN must be dropped
	// without consuming a worker slot or wedging the run.
	garbage, err := net.Dial("tcp", c.Addr())
	if err != nil {
		t.Fatalf("garbage dial: %v", err)
	}
	defer garbage.Close()
	if _, err := garbage.Write([]byte("HELO not-a-join extra fields\r\n")); err != nil {
		t.Fatalf("garbage write: %v", err)
	}
	// An oversized "line" with no newline must also be rejected, not buffered.
	oversize, err := net.Dial("tcp", c.Addr())
	if err != nil {
		t.Fatalf("oversize dial: %v", err)
	}
	defer oversize.Close()
	if _, err := oversize.Write(make([]byte, maxLineBytes+100)); err != nil {
		t.Fatalf("oversize write: %v", err)
	}

	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, workerErrs[i] = RunWorker(c.Addr(), WorkerConfig{ID: fmt.Sprintf("w%d", i)}, &fakeRunner{seed: int64(i + 1)})
		}(i)
	}
	m, err := c.Run(testSpec(), 2)
	wg.Wait()
	if err != nil {
		t.Fatalf("run with garbage dialers present: %v", err)
	}
	if len(m.Results) != 2 {
		t.Fatalf("merged %d results, want 2", len(m.Results))
	}
	for i, werr := range workerErrs {
		if werr != nil {
			t.Errorf("worker %d: %v", i, werr)
		}
	}
}

func TestTruncatedResultFailsRun(t *testing.T) {
	c := startCoordinator(t, CoordinatorConfig{JoinTimeout: 5 * time.Second, BarrierTimeout: time.Second})

	// Hand-drive one worker through all barriers, then send a RESULT whose
	// declared size exceeds the bytes actually sent and close.
	var runErr error
	donec := make(chan struct{})
	go func() {
		defer close(donec)
		_, runErr = c.Run(testSpec(), 1)
	}()
	cc := rawWorker(t, c.Addr(), "liar", PhaseDrain)
	body, _ := json.Marshal(Result{WorkerID: "liar", Ops: 1})
	if err := cc.sendLine("RESULT", fmt.Sprint(len(body)+500)); err != nil {
		t.Fatalf("send lying result header: %v", err)
	}
	cc.w.Write(body) // fewer bytes than declared
	cc.w.Flush()
	cc.close()

	<-donec
	if runErr == nil {
		t.Fatal("run accepted a truncated result")
	}
	if !strings.Contains(runErr.Error(), "liar") {
		t.Errorf("error %q does not name the worker", runErr)
	}
}

func TestBogusVerbAtBarrierFailsRun(t *testing.T) {
	c := startCoordinator(t, CoordinatorConfig{JoinTimeout: 5 * time.Second, BarrierTimeout: time.Second})

	var runErr error
	donec := make(chan struct{})
	go func() {
		defer close(donec)
		_, runErr = c.Run(testSpec(), 1)
	}()
	conn, err := net.Dial("tcp", c.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	cc := newCtlConn(conn)
	defer cc.close()
	if err := cc.sendLine("JOIN", "bogus"); err != nil {
		t.Fatalf("join: %v", err)
	}
	if _, err := recvSpec(cc, 5*time.Second); err != nil {
		t.Fatalf("spec: %v", err)
	}
	if err := cc.sendLine("FLURP", "warmup"); err != nil {
		t.Fatalf("send bogus verb: %v", err)
	}

	<-donec
	if runErr == nil || !strings.Contains(runErr.Error(), "FLURP") {
		t.Fatalf("run error = %v, want rejection naming the bogus verb", runErr)
	}
}

func TestSpecKeyRangePartition(t *testing.T) {
	for _, tc := range []struct{ keys, workers int }{{1024, 1}, {1024, 2}, {1000, 3}, {7, 4}} {
		covered := 0
		prevHi := 0
		for i := 0; i < tc.workers; i++ {
			s := Spec{Keys: tc.keys, Workers: tc.workers, WorkerIndex: i}
			lo, hi := s.KeyRange()
			if lo != prevHi {
				t.Errorf("keys=%d workers=%d index=%d: lo=%d, want %d (contiguous)", tc.keys, tc.workers, i, lo, prevHi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.keys || prevHi != tc.keys {
			t.Errorf("keys=%d workers=%d: covered %d ending at %d", tc.keys, tc.workers, covered, prevHi)
		}
	}
}

func TestWorkerRejectsBadID(t *testing.T) {
	for _, id := range []string{"", "two words", "tab\tid"} {
		if _, err := RunWorker("127.0.0.1:1", WorkerConfig{ID: id}, &fakeRunner{}); err == nil {
			t.Errorf("RunWorker accepted bad ID %q", id)
		}
	}
}
