package loadctl

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"time"
)

// Runner is what a worker process actually runs between barriers. The
// worker loop owns the protocol; the Runner owns the load generation.
// Close must be idempotent — it runs on every exit path, including aborts.
type Runner interface {
	// Prepare dials the cache tier and allocates clients. An error here is
	// reported to the coordinator as ERR prepare and aborts the whole run —
	// this is where an unreachable -cache-addrs node surfaces loudly.
	Prepare(spec Spec) error
	// Warmup seeds the worker's owned key slice and runs unmeasured load.
	Warmup(spec Spec) error
	// Measure runs the measured window and returns this worker's counters
	// and latency snapshot (WorkerID/WorkerIndex are stamped by the loop).
	Measure(spec Spec) (Result, error)
	// Close releases connections. Called after the drain barrier releases,
	// so no worker tears down while another is still measuring.
	Close()
}

// WorkerConfig tunes RunWorker.
type WorkerConfig struct {
	// ID names this worker in coordinator logs and merged results. Must be
	// non-empty and contain no whitespace (it travels on a control line).
	ID string
	// JoinTimeout bounds the dial plus the wait for SPEC
	// (0 = DefaultJoinTimeout).
	JoinTimeout time.Duration
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c WorkerConfig) joinTimeout() time.Duration {
	if c.JoinTimeout <= 0 {
		return DefaultJoinTimeout
	}
	return c.JoinTimeout
}

// RunWorker dials the coordinator, registers, and drives r through one
// coordinated run. It returns the worker's own Result on success; any
// error (local failure, coordinator ABORT, lost connection) is terminal
// for the run and the process should exit non-zero.
func RunWorker(addr string, cfg WorkerConfig, r Runner) (Result, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if len(strings.Fields(cfg.ID)) != 1 {
		return Result{}, fmt.Errorf("loadctl: worker ID %q must be one non-empty whitespace-free token", cfg.ID)
	}

	conn, err := net.DialTimeout("tcp", addr, cfg.joinTimeout())
	if err != nil {
		return Result{}, fmt.Errorf("loadctl: dial coordinator %s: %w", addr, err)
	}
	cc := newCtlConn(conn)
	defer cc.close()
	defer r.Close()

	if err := cc.sendLine("JOIN", cfg.ID); err != nil {
		return Result{}, fmt.Errorf("loadctl: join: %w", err)
	}
	spec, err := recvSpec(cc, cfg.joinTimeout())
	if err != nil {
		return Result{}, err
	}
	lo, hi := spec.KeyRange()
	logf("loadctl: worker %s joined as index %d/%d (clients=%d keys=[%d,%d) of %d, measure %v)",
		cfg.ID, spec.WorkerIndex, spec.Workers, spec.Clients,
		lo, hi, spec.Keys, spec.MeasureDuration())

	// Prepare is worker-local (no barrier): dial the tier now so a bad
	// -cache-addrs fails the run before anyone starts loading.
	if err := r.Prepare(spec); err != nil {
		_ = cc.sendLine("ERR", PhasePrepare, sanitizeMsg(err.Error()))
		return Result{}, fmt.Errorf("loadctl: prepare: %w", err)
	}

	// Warmup barrier, then warmup.
	if err := barrierWait(cc, PhaseWarmup, spec, cfg); err != nil {
		return Result{}, err
	}
	logf("loadctl: worker %s warming up (%v)", cfg.ID, spec.WarmupDuration())
	if err := r.Warmup(spec); err != nil {
		_ = cc.sendLine("ERR", PhaseWarmup, sanitizeMsg(err.Error()))
		return Result{}, fmt.Errorf("loadctl: warmup: %w", err)
	}

	// Measure barrier, then the measured window.
	if err := barrierWait(cc, PhaseMeasure, spec, cfg); err != nil {
		return Result{}, err
	}
	logf("loadctl: worker %s measuring (%v)", cfg.ID, spec.MeasureDuration())
	res, err := r.Measure(spec)
	if err != nil {
		_ = cc.sendLine("ERR", PhaseMeasure, sanitizeMsg(err.Error()))
		return Result{}, fmt.Errorf("loadctl: measure: %w", err)
	}
	res.WorkerID = cfg.ID
	res.WorkerIndex = spec.WorkerIndex

	// Drain barrier: nobody tears down until everyone has stopped measuring.
	if err := barrierWait(cc, PhaseDrain, spec, cfg); err != nil {
		return Result{}, err
	}
	r.Close()

	body, err := json.Marshal(res)
	if err != nil {
		return Result{}, fmt.Errorf("loadctl: marshal result: %w", err)
	}
	if err := cc.sendPayload("RESULT", body); err != nil {
		return Result{}, fmt.Errorf("loadctl: send result: %w", err)
	}
	// Wait for BYE so the coordinator has consumed the result (and any
	// late ABORT from a sibling's failure is surfaced as our failure too).
	fields, err := cc.readFields(cfg.joinTimeout())
	if err != nil {
		return Result{}, fmt.Errorf("loadctl: awaiting BYE: %w", err)
	}
	if fields[0] == "ABORT" {
		return Result{}, abortError(fields)
	}
	if fields[0] != "BYE" {
		return Result{}, fmt.Errorf("loadctl: coordinator sent %v, want BYE", fields)
	}
	logf("loadctl: worker %s done: %d ops (%.0f ops/s)", cfg.ID, res.Ops, res.OpsPerSec())
	return res, nil
}

// recvSpec reads "SPEC <n>" plus its JSON payload.
func recvSpec(cc *ctlConn, timeout time.Duration) (Spec, error) {
	fields, err := cc.readFields(timeout)
	if err != nil {
		return Spec{}, fmt.Errorf("loadctl: awaiting spec: %w", err)
	}
	if fields[0] == "ABORT" {
		return Spec{}, abortError(fields)
	}
	if len(fields) != 2 || fields[0] != "SPEC" {
		return Spec{}, fmt.Errorf("loadctl: coordinator sent %v, want SPEC", fields)
	}
	body, err := cc.readPayload(fields[1], timeout)
	if err != nil {
		return Spec{}, fmt.Errorf("loadctl: spec payload: %w", err)
	}
	var spec Spec
	if err := json.Unmarshal(body, &spec); err != nil {
		return Spec{}, fmt.Errorf("loadctl: spec decode: %w", err)
	}
	return spec, nil
}

// barrierWait announces arrival and blocks for the release. The worker
// waits generously — the coordinator is the one enforcing barrier budgets;
// the worker only needs to notice ABORT or a dead coordinator.
func barrierWait(cc *ctlConn, phase string, spec Spec, cfg WorkerConfig) error {
	if err := cc.sendLine("READY", phase); err != nil {
		return fmt.Errorf("loadctl: announce ready %s: %w", phase, err)
	}
	// Release can take as long as the slowest sibling's previous phase.
	wait := cfg.joinTimeout() + spec.WarmupDuration() + spec.MeasureDuration()
	fields, err := cc.readFields(wait)
	if err != nil {
		return fmt.Errorf("loadctl: awaiting release of barrier %q: %w", phase, err)
	}
	if fields[0] == "ABORT" {
		return abortError(fields)
	}
	if len(fields) != 2 || fields[0] != "GO" || fields[1] != phase {
		return fmt.Errorf("loadctl: coordinator sent %v at barrier %q, want GO", fields, phase)
	}
	return nil
}

func abortError(fields []string) error {
	return fmt.Errorf("loadctl: run aborted by coordinator: %s", joinTail(fields))
}

func joinTail(fields []string) string {
	if len(fields) < 2 {
		return "(no reason given)"
	}
	return strings.Join(fields[1:], " ")
}
