package cacheproto

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"cachegenie/internal/kvcache"
)

// FuzzServerInput drives the server's per-connection dispatch loop over
// arbitrary byte streams, the same socketless harness the hot-path
// benchmarks use. The property under test is narrow: no input may panic
// the parser or hang the loop. Protocol errors (the expected outcome for
// almost every mutated input) are fine; the framing tests in
// robustness_test.go cover their semantics.
func FuzzServerInput(f *testing.F) {
	seeds := []string{
		// Well-formed traffic so mutations start near the grammar.
		"get k\r\n",
		"gets k missing\r\n",
		"set k 0 0 2\r\nhi\r\n",
		"add k2 0 30 2\r\nhi\r\n",
		"cas k 0 0 2 7\r\nhi\r\n",
		"delete k\r\n",
		"incr n 5\r\n",
		"mop 2\r\nget k\r\ndelete k\r\n",
		"stats\r\nkeys\r\nflush_all\r\nquit\r\n",
		// The malformed-input table from TestServerMalformedInput.
		"frobnicate key\r\n",
		"set k 0 0 banana\r\n",
		"set k 0 0 -5\r\n",
		"set k\r\n",
		"mop banana\r\n",
		"mop 3\r\ndelete k\r\n",
		"mop 1\r\nflush_all\r\n",
		"set k 0 0 100\r\nonly-ten-b",
		"set k 0 0 2\r\nhiXX",
		"cas k 0 0 11 notanumber\r\nflush_all\r\n\r\n",
		"set k 0 0 18446744073709551616\r\n",
		// Framing edge cases: bare CR, bare LF, NULs, huge single line.
		"\r\n\r\n\r\n",
		"get k\nget k\n",
		"get \x00\r\n",
		"incr n 99999999999999999999\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		store := kvcache.New(1 << 20)
		store.Set("k", []byte("v1"), 0)
		store.Set("n", []byte("41"), 0)
		c := NewServer(store).newServerConn(
			bufio.NewReader(bytes.NewReader(in)),
			bufio.NewWriter(io.Discard))
		// Finite input guarantees termination (readLine hits EOF), but cap
		// the request count anyway so a loop bug fails fast instead of
		// burning the fuzz budget.
		for i := 0; i < 4096; i++ {
			if !c.serveOne() {
				return
			}
		}
		t.Fatalf("dispatch loop still live after 4096 requests on %d input bytes", len(in))
	})
}
