// Package cacheproto implements a memcached-style text protocol over TCP
// for the kvcache store, plus a client that satisfies kvcache.Cache. The
// paper runs an unmodified memcached 1.4.5 on its own machine; cmd/geniecache
// serves this protocol so the full three-machine deployment can be
// reproduced end to end.
//
// Supported commands (subset of memcached's ASCII protocol):
//
//	get <key>\r\n
//	gets <key>\r\n
//	set <key> <flags> <exptime> <bytes>\r\n<data>\r\n
//	add <key> <flags> <exptime> <bytes>\r\n<data>\r\n
//	cas <key> <flags> <exptime> <bytes> <casid>\r\n<data>\r\n
//	delete <key>\r\n
//	incr <key> <delta>\r\n  (delta may be negative: memcached decr folded in)
//	flush_all\r\n
//	stats\r\n
//	quit\r\n
//
// Plus one extension beyond memcached's command set, used by the
// invalidation bus (internal/invbus) to flush coalesced batches in a single
// round trip:
//
//	mop <count>\r\n
//	<count> sub-commands (set / add / delete / incr, standard form)
//
// The server buffers one result line per sub-command and flushes them with a
// trailing END\r\n, so the whole batch costs one network round trip.
package cacheproto

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"cachegenie/internal/kvcache"
)

// maxValueBytes bounds one value's size (memcached's classic 1 MB object
// limit). An oversized set/add/cas is consumed from the stream and refused
// with CLIENT_ERROR, keeping the connection framed and the server alive —
// without the bound a hostile byte count would make the server allocate it.
const maxValueBytes = 1 << 20

// maxMopOps bounds one pipelined batch. The invalidation bus flushes far
// smaller batches; anything larger is a protocol error, not a workload.
const maxMopOps = 1 << 16

// Server serves the text protocol for a Store.
type Server struct {
	store *kvcache.Store

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
	acceptWG sync.WaitGroup
}

// NewServer wraps store.
func NewServer(store *kvcache.Store) *Server {
	return &Server{store: store, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.acceptWG.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.acceptWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops the server and closes all connections. Safe to call more than
// once; later calls just wait for the teardown to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	wasClosed := s.closed
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil && !wasClosed {
		err = ln.Close()
	}
	s.acceptWG.Wait()
	s.wg.Wait()
	return err
}

// RestartServer builds a fresh Server over store and binds it to addr,
// retrying the bind briefly because a just-closed listener's port can
// linger. The store is flushed first: a revived node comes back cold, the
// way a restarted process would. Shared by the revive paths (the workload
// stack's ReviveNode and geniecache's failure drill).
func RestartServer(store *kvcache.Store, addr string) (*Server, error) {
	store.FlushAll()
	srv := NewServer(store)
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		if _, err = srv.Listen(addr); err == nil {
			return srv, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil, fmt.Errorf("cacheproto: restart server on %s: %w", addr, err)
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		quit, err := s.dispatch(fields, r, w)
		if err != nil {
			fmt.Fprintf(w, "CLIENT_ERROR %s\r\n", err)
		}
		if err := w.Flush(); err != nil || quit {
			return
		}
	}
}

func (s *Server) readData(r *bufio.Reader, n int) ([]byte, error) {
	data := make([]byte, n+2)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, err
	}
	if data[n] != '\r' || data[n+1] != '\n' {
		return nil, errors.New("bad data chunk terminator")
	}
	return data[:n], nil
}

func (s *Server) dispatch(fields []string, r *bufio.Reader, w *bufio.Writer) (quit bool, err error) {
	switch fields[0] {
	case "quit":
		return true, nil
	case "get", "gets":
		if len(fields) < 2 {
			return false, errors.New("get needs a key")
		}
		withCas := fields[0] == "gets"
		for _, key := range fields[1:] {
			val, cas, ok := s.store.Gets(key)
			if !ok {
				continue
			}
			if withCas {
				fmt.Fprintf(w, "VALUE %s 0 %d %d\r\n", key, len(val), cas)
			} else {
				fmt.Fprintf(w, "VALUE %s 0 %d\r\n", key, len(val))
			}
			w.Write(val)
			w.WriteString("\r\n")
		}
		w.WriteString("END\r\n")
		return false, nil
	case "set", "add", "cas":
		want := 5
		if fields[0] == "cas" {
			want = 6
		}
		if len(fields) != want {
			return false, fmt.Errorf("%s needs %d fields", fields[0], want)
		}
		key := fields[1]
		expSecs, err := strconv.Atoi(fields[3])
		if err != nil {
			return false, errors.New("bad exptime")
		}
		n, err := strconv.Atoi(fields[4])
		if err != nil || n < 0 {
			return false, errors.New("bad byte count")
		}
		if n > maxValueBytes {
			// Drain the announced data block so the stream stays framed,
			// then refuse; the connection (and server) live on.
			if _, err := io.CopyN(io.Discard, r, int64(n)+2); err != nil {
				return false, err
			}
			return false, fmt.Errorf("object too large (%d > %d bytes)", n, maxValueBytes)
		}
		data, err := s.readData(r, n)
		if err != nil {
			return false, err
		}
		ttl := time.Duration(expSecs) * time.Second
		if expSecs < 0 {
			// Memcached treats a negative exptime as already expired: the
			// store replies STORED but the entry is never retrievable. The
			// kvcache store treats ttl <= 0 as immortal, so translate to the
			// smallest positive ttl — expired by the time anyone reads it.
			ttl = time.Nanosecond
		}
		switch fields[0] {
		case "set":
			s.store.Set(key, data, ttl)
			w.WriteString("STORED\r\n")
		case "add":
			if s.store.Add(key, data, ttl) {
				w.WriteString("STORED\r\n")
			} else {
				w.WriteString("NOT_STORED\r\n")
			}
		case "cas":
			casID, err := strconv.ParseUint(fields[5], 10, 64)
			if err != nil {
				return false, errors.New("bad cas id")
			}
			switch s.store.Cas(key, data, ttl, casID) {
			case kvcache.CasStored:
				w.WriteString("STORED\r\n")
			case kvcache.CasConflict:
				w.WriteString("EXISTS\r\n")
			case kvcache.CasNotFound:
				w.WriteString("NOT_FOUND\r\n")
			}
		}
		return false, nil
	case "delete":
		if len(fields) != 2 {
			return false, errors.New("delete needs a key")
		}
		if s.store.Delete(fields[1]) {
			w.WriteString("DELETED\r\n")
		} else {
			w.WriteString("NOT_FOUND\r\n")
		}
		return false, nil
	case "incr":
		if len(fields) != 3 {
			return false, errors.New("incr needs key and delta")
		}
		delta, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return false, errors.New("bad delta")
		}
		n, ok := s.store.Incr(fields[1], delta)
		if !ok {
			w.WriteString("NOT_FOUND\r\n")
		} else {
			fmt.Fprintf(w, "%d\r\n", n)
		}
		return false, nil
	case "mop":
		// Every mop-context error closes the connection (quit=true): the
		// client pipelines the whole batch in one flush, so after any abort
		// the unread sub-commands are already in the stream and would be
		// executed as top-level commands if the connection lived on.
		if len(fields) != 2 {
			return true, errors.New("mop needs a count")
		}
		count, err := strconv.Atoi(fields[1])
		if err != nil || count < 0 {
			return true, errors.New("bad mop count")
		}
		if count > maxMopOps {
			return true, fmt.Errorf("mop count %d exceeds limit %d", count, maxMopOps)
		}
		for i := 0; i < count; i++ {
			line, err := r.ReadString('\n')
			if err != nil {
				return true, err
			}
			sub := strings.Fields(strings.TrimRight(line, "\r\n"))
			if len(sub) == 0 {
				return true, errors.New("empty mop sub-command")
			}
			switch sub[0] {
			case "set", "add", "delete", "incr":
				// One result line each; errors abort the batch AND the
				// connection: the batch arrives as one pipelined flush, so
				// after an abort the remaining sub-commands are already in
				// the stream and indistinguishable from fresh top-level
				// commands — executing them would apply ops from a batch the
				// client was told failed. The client discards its end too.
				if _, err := s.dispatch(sub, r, w); err != nil {
					return true, err
				}
			default:
				return true, fmt.Errorf("command %q not allowed in mop", sub[0])
			}
		}
		w.WriteString("END\r\n")
		return false, nil
	case "flush_all":
		s.store.FlushAll()
		w.WriteString("OK\r\n")
		return false, nil
	case "stats":
		st := s.store.Stats()
		fmt.Fprintf(w, "STAT get_hits %d\r\n", st.Hits)
		fmt.Fprintf(w, "STAT get_misses %d\r\n", st.Misses)
		fmt.Fprintf(w, "STAT cmd_set %d\r\n", st.Sets)
		fmt.Fprintf(w, "STAT evictions %d\r\n", st.Evictions)
		fmt.Fprintf(w, "STAT curr_items %d\r\n", st.Items)
		fmt.Fprintf(w, "STAT bytes %d\r\n", st.BytesUsed)
		fmt.Fprintf(w, "STAT limit_maxbytes %d\r\n", st.BytesLimit)
		w.WriteString("END\r\n")
		return false, nil
	}
	return false, fmt.Errorf("unknown command %q", fields[0])
}
