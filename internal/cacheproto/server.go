// Package cacheproto implements a memcached-style text protocol over TCP
// for the kvcache store, plus a client that satisfies kvcache.Cache. The
// paper runs an unmodified memcached 1.4.5 on its own machine; cmd/geniecache
// serves this protocol so the full three-machine deployment can be
// reproduced end to end.
//
// Supported commands (subset of memcached's ASCII protocol):
//
//	get <key>\r\n
//	gets <key>\r\n
//	set <key> <flags> <exptime> <bytes>\r\n<data>\r\n
//	add <key> <flags> <exptime> <bytes>\r\n<data>\r\n
//	cas <key> <flags> <exptime> <bytes> <casid>\r\n<data>\r\n
//	delete <key>\r\n
//	incr <key> <delta>\r\n  (delta may be negative: memcached decr folded in)
//	flush_all\r\n
//	stats\r\n
//	keys\r\n  (KEY <key> per live key then END; cluster key handoff uses it)
//	quit\r\n
//
// Plus one extension beyond memcached's command set, used by the
// invalidation bus (internal/invbus) to flush coalesced batches in a single
// round trip:
//
//	mop <count>\r\n
//	<count> sub-commands (set / add / delete / incr, standard form)
//
// The server buffers one result line per sub-command and flushes them with a
// trailing END\r\n, so the whole batch costs one network round trip.
//
// The request path is allocation-free in steady state: command lines are
// read with a reusable buffer and split into byte-slice fields in place,
// value data lands in a per-connection buffer the store copies from, reads
// append into a per-connection scratch buffer, and responses are assembled
// with strconv.Append* instead of fmt. Combined with the store's []byte-key
// entry points, a get or an overwrite set performs zero heap allocations.
package cacheproto

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strconv"
	"sync"
	"time"

	"cachegenie/internal/hotkey"
	"cachegenie/internal/kvcache"
)

// maxValueBytes bounds one value's size (memcached's classic 1 MB object
// limit). An oversized set/add/cas is consumed from the stream and refused
// with CLIENT_ERROR, keeping the connection framed and the server alive —
// without the bound a hostile byte count would make the server allocate it.
const maxValueBytes = 1 << 20

// maxMopOps bounds one pipelined batch. The invalidation bus flushes far
// smaller batches; anything larger is a protocol error, not a workload.
const maxMopOps = 1 << 16

// retainedValueBuf caps the per-connection value buffer kept between
// requests; a one-off near-limit value doesn't pin its memory forever.
const retainedValueBuf = 64 << 10

// defaultIOTimeout is the per-request I/O budget a new Server starts with;
// see Server.IOTimeout.
const defaultIOTimeout = 30 * time.Second

// Server serves the text protocol for a Store.
type Server struct {
	store *kvcache.Store
	m     *ServerMetrics // always-on; see ServerMetrics

	// IOTimeout bounds the I/O of one in-flight request: once a command
	// line has arrived, the data-block read and the response write must
	// complete within it or the connection is dropped. It does NOT bound
	// the idle wait between requests — persistent connections may sit
	// quiet indefinitely. <= 0 disables the deadline. Set before Listen.
	IOTimeout time.Duration

	// mu guards listener/conn bookkeeping; accept and serve loops run
	// outside it.
	//
	//genie:nonblocking
	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
	acceptWG sync.WaitGroup
}

// NewServer wraps store. The server always carries a hot-key popularity
// sampler (observations are a handful of atomic ops; see hotkey.Detector)
// so per-node skew is visible over stats and /metrics without a restart.
func NewServer(store *kvcache.Store) *Server {
	return &Server{
		store:     store,
		m:         &ServerMetrics{HotKeys: hotkey.New(hotkey.Config{})},
		conns:     make(map[net.Conn]struct{}),
		IOTimeout: defaultIOTimeout,
	}
}

// HotKeyStats reports the server's popularity-sampler counters.
func (s *Server) HotKeyStats() hotkey.Stats { return s.m.HotKeys.Stats() }

// Metrics returns the server's always-on instrumentation, for registry
// attachment or direct inspection.
func (s *Server) Metrics() *ServerMetrics { return s.m }

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.acceptWG.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.acceptWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops the server and closes all connections. Safe to call more than
// once; later calls just wait for the teardown to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	wasClosed := s.closed
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil && !wasClosed {
		err = ln.Close()
	}
	s.acceptWG.Wait()
	s.wg.Wait()
	return err
}

// RestartServer builds a fresh Server over store and binds it to addr,
// retrying the bind briefly because a just-closed listener's port can
// linger. The store is flushed first: a revived node comes back cold, the
// way a restarted process would. Shared by the revive paths (the workload
// stack's ReviveNode and geniecache's failure drill).
func RestartServer(store *kvcache.Store, addr string) (*Server, error) {
	store.FlushAll()
	srv := NewServer(store)
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		if _, err = srv.Listen(addr); err == nil {
			return srv, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil, fmt.Errorf("cacheproto: restart server on %s: %w", addr, err)
}

// serverConn is one connection's request-processing state: every buffer a
// request needs lives here and is reused across requests, so the hot path
// allocates nothing after the first few commands.
type serverConn struct {
	store *kvcache.Store
	r     *bufio.Reader
	w     *bufio.Writer

	// conn/ioTimeout arm the per-request deadline (Server.IOTimeout); both
	// stay zero when benchmarks drive the dispatch loop without a socket.
	conn      net.Conn
	ioTimeout time.Duration

	m *ServerMetrics

	line      []byte   // overflow line assembly (lines longer than the bufio buffer)
	fields    [][]byte // reusable field-slice headers
	subFields [][]byte // separate header buffer for mop sub-commands
	key       []byte   // key copy surviving the data-block read
	val       []byte   // data-block buffer (set/add/cas payloads)
	scratch   []byte   // value bytes fetched from the store (get/gets)
	num       []byte   // strconv.Append* staging
}

// newServerConn assembles the per-connection state over a reader/writer
// pair. Split from serveConn so in-package benchmarks can drive the
// dispatch loop without a socket.
func (s *Server) newServerConn(r *bufio.Reader, w *bufio.Writer) *serverConn {
	return &serverConn{
		store:     s.store,
		m:         s.m,
		r:         r,
		w:         w,
		fields:    make([][]byte, 0, 8),
		subFields: make([][]byte, 0, 8),
		num:       make([]byte, 0, 24),
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	s.m.ConnsOpened.Inc()
	s.m.ActiveConns.Add(1)
	defer s.m.ActiveConns.Add(-1)
	c := s.newServerConn(bufio.NewReader(conn), bufio.NewWriter(conn))
	c.conn = conn
	c.ioTimeout = s.IOTimeout
	for {
		if !c.serveOne() {
			return
		}
	}
}

// armDeadline starts the per-request I/O clock: every read and write until
// clearDeadline must finish within ioTimeout, so a peer that stalls
// mid-request (half-sent payload, unread response) cannot pin this
// goroutine and its buffers forever.
func (c *serverConn) armDeadline() {
	if c.conn == nil || c.ioTimeout <= 0 {
		return
	}
	_ = c.conn.SetDeadline(time.Now().Add(c.ioTimeout))
}

// clearDeadline returns the connection to deadline-free idling between
// requests.
func (c *serverConn) clearDeadline() {
	if c.conn == nil || c.ioTimeout <= 0 {
		return
	}
	_ = c.conn.SetDeadline(time.Time{})
}

// serveOne processes one command; reports whether the connection lives on.
//
//genie:hotpath
func (c *serverConn) serveOne() bool {
	line, err := c.readLine()
	if err != nil {
		return false
	}
	if len(line) == 0 {
		return true
	}
	c.armDeadline()
	defer c.clearDeadline()
	fields := splitFields(line, c.fields[:0])
	c.fields = fields[:0] // keep a grown header buffer for reuse
	if len(fields) == 0 {
		// Whitespace-only line: non-empty, so it wasn't skipped above, but
		// it splits to zero fields. Treat like an empty line.
		return true
	}
	// Classify before dispatch: set/add/cas read their data block mid-dispatch,
	// which refills the bufio buffer and invalidates the field slices.
	kind := classifyCmd(fields[0])
	start := time.Now()
	quit, err := c.dispatch(fields)
	c.m.OpNanos[kind].ObserveSince(start)
	if err != nil {
		c.m.Errors.Inc()
		fmt.Fprintf(c.w, "CLIENT_ERROR %s\r\n", err) //genie:nolint hotpathalloc -- protocol-error branch is cold by definition
	}
	if err := c.w.Flush(); err != nil || quit {
		return false
	}
	return true
}

// readLine returns the next line with its \r\n trimmed. The returned slice
// points into the reader's buffer (or c.line for oversized lines) and is
// valid until the next read from c.r.
func (c *serverConn) readLine() ([]byte, error) {
	return readProtoLine(c.r, &c.line)
}

// readProtoLine reads one \n-terminated line from r without allocating: the
// returned slice points into r's buffer, or into *scratch when the line
// outgrew it (rare slow path, assembled across ReadSlice calls). Shared by
// the server and client connection loops; valid until the next read from r.
//
//genie:deadlinearmed client callers arm the per-op deadline; the server's idle wait between requests is deliberately unbounded
//genie:hotpath
func readProtoLine(r *bufio.Reader, scratch *[]byte) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		*scratch = append((*scratch)[:0], line...)
		for err == bufio.ErrBufferFull {
			line, err = r.ReadSlice('\n')
			*scratch = append(*scratch, line...)
		}
		line = *scratch
	}
	if err != nil {
		return nil, err
	}
	return trimCRLF(line), nil
}

//genie:hotpath
func trimCRLF(line []byte) []byte {
	for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
		line = line[:len(line)-1]
	}
	return line
}

// splitFields splits line on runs of spaces and tabs into dst (reused
// between calls), the in-place equivalent of strings.Fields.
//
//genie:hotpath
func splitFields(line []byte, dst [][]byte) [][]byte {
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		if i > start {
			dst = append(dst, line[start:i])
		}
	}
	return dst
}

// atoi parses a decimal int from b (optionally signed) without allocating.
// Values past int64 range are rejected, not wrapped — a wrapped byte count
// would desync the stream framing (the client's payload would be parsed as
// commands).
//
//genie:hotpath
func atoi(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if b[0] == '-' || b[0] == '+' {
		neg = b[0] == '-'
		i = 1
		if len(b) == 1 {
			return 0, false
		}
	}
	var n int64
	for ; i < len(b); i++ {
		d := b[i] - '0'
		if d > 9 {
			return 0, false
		}
		if n > (math.MaxInt64-int64(d))/10 {
			return 0, false // would overflow (MinInt64 itself is rejected too)
		}
		n = n*10 + int64(d)
	}
	if neg {
		n = -n
	}
	return n, true
}

// atou parses a decimal uint64 without allocating; out-of-range values are
// rejected, not wrapped.
//
//genie:hotpath
func atou(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var n uint64
	for i := 0; i < len(b); i++ {
		d := b[i] - '0'
		if d > 9 {
			return 0, false
		}
		if n > (math.MaxUint64-uint64(d))/10 {
			return 0, false
		}
		n = n*10 + uint64(d)
	}
	return n, true
}

// writeInt / writeUint append a number to the response without fmt. The
// bytes land in the bufio buffer; serveOne's armed deadline bounds the
// flush.
//
//genie:deadlinearmed serveOne arms the per-request deadline before dispatch
//genie:hotpath
func (c *serverConn) writeInt(n int64) {
	c.num = strconv.AppendInt(c.num[:0], n, 10)
	c.w.Write(c.num)
}

//genie:deadlinearmed serveOne arms the per-request deadline before dispatch
//genie:hotpath
func (c *serverConn) writeUint(n uint64) {
	c.num = strconv.AppendUint(c.num[:0], n, 10)
	c.w.Write(c.num)
}

// readData consumes a data block of n bytes plus its \r\n terminator into
// the connection's reusable value buffer.
//
//genie:deadlinearmed serveOne arms the per-request deadline before dispatch
//genie:hotpath
func (c *serverConn) readData(n int) ([]byte, error) {
	need := n + 2
	if cap(c.val) < need {
		c.val = make([]byte, need)
	}
	buf := c.val[:need]
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, err
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return nil, errors.New("bad data chunk terminator")
	}
	if cap(c.val) > retainedValueBuf {
		c.val = nil // don't pin a near-limit buffer on an idle connection
	}
	return buf[:n], nil
}

// dispatch executes one parsed command, writing its response into the
// buffered writer. Cold error branches use fmt/errors by design; the per-op
// hot branches stay allocation-free (measured by the -benchmem CI gate).
//
//genie:deadlinearmed serveOne arms the per-request deadline before dispatch
func (c *serverConn) dispatch(fields [][]byte) (quit bool, err error) {
	w := c.w
	// The switch converts the command bytes without allocating
	// (compiler-recognized pattern).
	switch string(fields[0]) {
	case "quit":
		return true, nil
	case "get", "gets":
		if len(fields) < 2 {
			return false, errors.New("get needs a key")
		}
		withCas := len(fields[0]) == 4 // "gets" vs "get"
		for _, key := range fields[1:] {
			if hk := c.m.HotKeys; hk != nil {
				hk.Observe(hotkey.HashBytes(key))
			}
			var cas uint64
			var ok bool
			c.scratch, cas, ok = c.store.GetsAppendB(c.scratch[:0], key)
			if !ok {
				continue
			}
			val := c.scratch
			w.WriteString("VALUE ")
			w.Write(key)
			w.WriteString(" 0 ")
			c.writeInt(int64(len(val)))
			if withCas {
				w.WriteByte(' ')
				c.writeUint(cas)
			}
			w.WriteString("\r\n")
			w.Write(val)
			w.WriteString("\r\n")
		}
		w.WriteString("END\r\n")
		if cap(c.scratch) > retainedValueBuf {
			c.scratch = nil // as with c.val, don't pin a huge one-off value
		}
		return false, nil
	case "set", "add", "cas":
		isCas := fields[0][0] == 'c'
		want := 5
		if isCas {
			want = 6
		}
		if len(fields) != want {
			return false, fmt.Errorf("%s needs %d fields", fields[0], want)
		}
		expSecs, ok := atoi(fields[3])
		if !ok {
			return false, errors.New("bad exptime")
		}
		n, ok := atoi(fields[4])
		if !ok || n < 0 {
			return false, errors.New("bad byte count")
		}
		if n > maxValueBytes {
			// Drain the announced data block so the stream stays framed,
			// then refuse; the connection (and server) live on.
			if _, err := io.CopyN(io.Discard, c.r, n+2); err != nil {
				return false, err
			}
			return false, fmt.Errorf("object too large (%d > %d bytes)", n, maxValueBytes)
		}
		var casID uint64
		var casOK bool
		if isCas {
			casID, casOK = atou(fields[5])
		}
		op := fields[0][0] // 's' | 'a' | 'c'
		// The data-block read refills the bufio buffer and invalidates the
		// field slices; the key must survive it.
		c.key = append(c.key[:0], fields[1]...)
		data, err := c.readData(int(n))
		if err != nil {
			return false, err
		}
		if isCas && !casOK {
			// Refused only AFTER the announced data block is consumed: an
			// early return would leave the payload in the stream to be
			// executed as top-level commands.
			return false, errors.New("bad cas id")
		}
		ttl := time.Duration(expSecs) * time.Second
		if expSecs < 0 {
			// Memcached treats a negative exptime as already expired: the
			// store replies STORED but the entry is never retrievable. The
			// kvcache store treats ttl <= 0 as immortal, so translate to the
			// smallest positive ttl — expired by the time anyone reads it.
			ttl = time.Nanosecond
		}
		switch op {
		case 's':
			c.store.SetB(c.key, data, ttl)
			w.WriteString("STORED\r\n")
		case 'a':
			if c.store.AddB(c.key, data, ttl) {
				w.WriteString("STORED\r\n")
			} else {
				w.WriteString("NOT_STORED\r\n")
			}
		default:
			switch c.store.CasB(c.key, data, ttl, casID) {
			case kvcache.CasStored:
				w.WriteString("STORED\r\n")
			case kvcache.CasConflict:
				w.WriteString("EXISTS\r\n")
			case kvcache.CasNotFound:
				w.WriteString("NOT_FOUND\r\n")
			}
		}
		return false, nil
	case "delete":
		if len(fields) != 2 {
			return false, errors.New("delete needs a key")
		}
		if c.store.DeleteB(fields[1]) {
			w.WriteString("DELETED\r\n")
		} else {
			w.WriteString("NOT_FOUND\r\n")
		}
		return false, nil
	case "incr":
		if len(fields) != 3 {
			return false, errors.New("incr needs key and delta")
		}
		delta, ok := atoi(fields[2])
		if !ok {
			return false, errors.New("bad delta")
		}
		n, found := c.store.IncrB(fields[1], delta)
		if !found {
			w.WriteString("NOT_FOUND\r\n")
		} else {
			c.writeInt(n)
			w.WriteString("\r\n")
		}
		return false, nil
	case "mop":
		// Every mop-context error closes the connection (quit=true): the
		// client pipelines the whole batch in one flush, so after any abort
		// the unread sub-commands are already in the stream and would be
		// executed as top-level commands if the connection lived on.
		if len(fields) != 2 {
			return true, errors.New("mop needs a count")
		}
		count, ok := atoi(fields[1])
		if !ok || count < 0 {
			return true, errors.New("bad mop count")
		}
		if count > maxMopOps {
			return true, fmt.Errorf("mop count %d exceeds limit %d", count, maxMopOps)
		}
		for i := int64(0); i < count; i++ {
			line, err := c.readLine()
			if err != nil {
				return true, err
			}
			sub := splitFields(line, c.subFields[:0])
			c.subFields = sub[:0]
			if len(sub) == 0 {
				return true, errors.New("empty mop sub-command")
			}
			switch string(sub[0]) {
			case "set", "add", "delete", "incr":
				// One result line each; errors abort the batch AND the
				// connection: the batch arrives as one pipelined flush, so
				// after an abort the remaining sub-commands are already in
				// the stream and indistinguishable from fresh top-level
				// commands — executing them would apply ops from a batch the
				// client was told failed. The client discards its end too.
				if _, err := c.dispatch(sub); err != nil {
					return true, err
				}
			default:
				return true, fmt.Errorf("command %q not allowed in mop", sub[0])
			}
		}
		w.WriteString("END\r\n")
		return false, nil
	case "flush_all":
		c.store.FlushAll()
		w.WriteString("OK\r\n")
		return false, nil
	case "keys":
		// Key enumeration for cluster handoff: one KEY line per live key,
		// END-terminated like a get. Not a memcached command — memcached
		// deliberately refuses key walks on production paths; here the
		// consumer is the membership-change handoff pass, which is itself an
		// O(keys) maintenance operation.
		for _, k := range c.store.Keys() {
			w.WriteString("KEY ")
			w.WriteString(k)
			w.WriteString("\r\n")
		}
		w.WriteString("END\r\n")
		return false, nil
	case "stats":
		st := c.store.Stats()
		fmt.Fprintf(w, "STAT get_hits %d\r\n", st.Hits)
		fmt.Fprintf(w, "STAT get_misses %d\r\n", st.Misses)
		fmt.Fprintf(w, "STAT cmd_set %d\r\n", st.Sets)
		fmt.Fprintf(w, "STAT evictions %d\r\n", st.Evictions)
		fmt.Fprintf(w, "STAT curr_items %d\r\n", st.Items)
		fmt.Fprintf(w, "STAT bytes %d\r\n", st.BytesUsed)
		fmt.Fprintf(w, "STAT limit_maxbytes %d\r\n", st.BytesLimit)
		// Extended stats: still 3-field "STAT <name> <int>" lines, so older
		// parsers (and Client.ServerStats) take them in stride while the
		// workload tier recovers the detail kvcache.Stats used to lose over
		// the wire, plus per-op latency summaries from the server histograms.
		fmt.Fprintf(w, "STAT cmd_delete %d\r\n", st.Deletes)
		fmt.Fprintf(w, "STAT expired %d\r\n", st.Expired)
		fmt.Fprintf(w, "STAT cas_conflicts %d\r\n", st.CasConflicts)
		fmt.Fprintf(w, "STAT server_errors %d\r\n", c.m.Errors.Load())
		fmt.Fprintf(w, "STAT conns_opened %d\r\n", c.m.ConnsOpened.Load())
		fmt.Fprintf(w, "STAT active_conns %d\r\n", c.m.ActiveConns.Load())
		if hk := c.m.HotKeys; hk != nil {
			hst := hk.Stats()
			fmt.Fprintf(w, "STAT hotkey_observed %d\r\n", hst.Observed)
			fmt.Fprintf(w, "STAT hotkey_flagged %d\r\n", hst.Flagged)
			fmt.Fprintf(w, "STAT hotkey_decays %d\r\n", hst.Decays)
		}
		for k := opKind(0); k < opKindCount; k++ {
			snap := c.m.OpNanos[k].Snapshot()
			if snap.Count == 0 {
				continue
			}
			fmt.Fprintf(w, "STAT op_%s_count %d\r\n", opNames[k], snap.Count)
			fmt.Fprintf(w, "STAT op_%s_p50_ns %d\r\n", opNames[k], snap.Quantile(0.50))
			fmt.Fprintf(w, "STAT op_%s_p99_ns %d\r\n", opNames[k], snap.Quantile(0.99))
		}
		w.WriteString("END\r\n")
		return false, nil
	}
	return false, fmt.Errorf("unknown command %q", fields[0])
}
