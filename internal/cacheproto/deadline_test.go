package cacheproto

import (
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// stallingServer accepts connections and then goes silent: it reads and
// discards whatever the client sends but never writes a byte back — the
// wedged-process shape the breaker alone cannot see, because a hung round
// trip never completes to count as a failure.
func stallingServer(t *testing.T) (addr string, accepted *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	accepted = new(atomic.Int64)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepted.Add(1)
			go func(conn net.Conn) {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), accepted
}

// TestClientTimeoutPoisonsConnection: after an op deadline expires, the
// connection's framing is unknown — a late-arriving response for the dead
// op must never be read as a later op's answer (a HIT carrying the wrong
// key's value). The client must poison itself and degrade every later op
// to a fast miss.
func TestClientTimeoutPoisonsConnection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 4096)
		if _, err := conn.Read(buf); err != nil {
			return
		}
		// Answer the first request long after the client's deadline.
		time.Sleep(250 * time.Millisecond)
		_, _ = conn.Write([]byte("VALUE a 0 7\r\npoisons\r\nEND\r\n"))
	}()
	c, err := DialTimeout(ln.Addr().String(), 40*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.conn.Close()
	if _, ok := c.Get("a"); ok {
		t.Fatal("timed-out Get reported a hit")
	}
	time.Sleep(300 * time.Millisecond) // let the stale response arrive
	start := time.Now()
	v, ok := c.Get("b")
	if ok {
		t.Fatalf("Get(b) on a poisoned conn returned a hit: %q (key a's stale value?)", v)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Fatalf("poisoned-conn op took %v, want fail-fast", elapsed)
	}
}

// TestClientOpTimeout: a round trip against a node that accepts but never
// answers must fail within the deadline instead of blocking forever.
func TestClientOpTimeout(t *testing.T) {
	addr, _ := stallingServer(t)
	c, err := DialTimeout(addr, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.conn.Close()
	start := time.Now()
	if _, ok := c.Get("k"); ok {
		t.Fatal("stalled Get reported a hit")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stalled Get took %v, want ~50ms", elapsed)
	}
}

// TestPoolOpTimeoutFeedsBreaker: with OpTimeout armed, ops against a
// stalling node time out, release their checkout slot (MaxConns=1 would
// otherwise deadlock the second op forever), and the accumulated failures
// trip the circuit breaker just as completed failures do.
func TestPoolOpTimeoutFeedsBreaker(t *testing.T) {
	addr, _ := stallingServer(t)
	pool := NewPoolWithConfig(PoolConfig{
		Addr:          addr,
		MaxIdle:       1,
		MaxConns:      1, // one slot: a held checkout blocks everyone else
		FailThreshold: 2,
		ProbeInterval: time.Hour, // keep the breaker open for the assertion
		OpTimeout:     40 * time.Millisecond,
	})
	defer pool.Close()

	start := time.Now()
	for i := 0; i < 2; i++ {
		if _, ok := pool.Get("k"); ok {
			t.Fatalf("op %d: stalled Get reported a hit", i)
		}
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("two stalled ops took %v; timeout did not release the slot", elapsed)
	}
	if st := pool.Stats(); st.State != BreakerOpen {
		t.Fatalf("breaker after %d timeouts: %+v", 2, st)
	}
	if st := pool.Stats(); st.Discards != 2 {
		t.Fatalf("timed-out conns not discarded: %+v", st)
	}
	// Breaker open: the next op fails fast without a network touch.
	start = time.Now()
	if _, ok := pool.Get("k"); ok {
		t.Fatal("open-breaker Get reported a hit")
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Fatalf("fail-fast took %v", elapsed)
	}
}

// TestPoolOpTimeoutHealthyTraffic: deadlines must be invisible on a healthy
// node — every op completes and connections are reused, not discarded.
func TestPoolOpTimeoutHealthyTraffic(t *testing.T) {
	addr, _ := rawServer(t)
	pool := NewPoolWithConfig(PoolConfig{Addr: addr, OpTimeout: 2 * time.Second})
	defer pool.Close()
	for i := 0; i < 20; i++ {
		pool.Set("k", []byte("v"), 0)
		if _, ok := pool.Get("k"); !ok {
			t.Fatalf("op %d missed on a healthy node", i)
		}
	}
	if st := pool.Stats(); st.Discards != 0 || st.Trips != 0 {
		t.Fatalf("healthy traffic under deadline: %+v", st)
	}
}
